package streamgpp_test

import (
	"testing"

	"streamgpp"
)

// TestFacadeEndToEnd drives the whole system through the public API
// only: build a two-kernel program with an indexed scatter, compile,
// run on both contexts, and verify against a regular-loop run.
func TestFacadeEndToEnd(t *testing.T) {
	const n = 20000
	layout := streamgpp.Layout("rec", streamgpp.F("v", 8))

	newArrays := func(m *streamgpp.Machine) (a, b, out *streamgpp.Array, idx *streamgpp.IndexArray) {
		a = streamgpp.NewArray(m, "a", layout, n)
		b = streamgpp.NewArray(m, "b", layout, n)
		out = streamgpp.NewArray(m, "out", layout, n)
		a.Fill(func(i, f int) float64 { return float64(i % 17) })
		b.Fill(func(i, f int) float64 { return float64(i % 23) })
		idx = streamgpp.NewIndexArray(m, "idx", n)
		for i := range idx.Idx {
			idx.Idx[i] = int32((i*7 + 3) % n)
		}
		return
	}

	// Regular.
	mr := streamgpp.NewMachine()
	a1, b1, o1, idx1 := newArrays(mr)
	reg := streamgpp.RunRegular(mr, streamgpp.DefaultExec(), streamgpp.Loop{
		Name: "loop", N: n,
		Ops: func(i int) int64 { return 8 },
		Refs: func(i int, emit func(addr uint64, size int, write bool)) {
			emit(a1.FieldAddr(i, 0), 8, false)
			emit(b1.FieldAddr(i, 0), 8, false)
			emit(o1.FieldAddr(int(idx1.Idx[i]), 0), 8, true)
		},
		Body: func(i int) { o1.Set(int(idx1.Idx[i]), 0, a1.At(i, 0)*2+b1.At(i, 0)) },
	})

	// Stream.
	ms := streamgpp.NewMachine()
	a2, b2, o2, idx2 := newArrays(ms)
	k := &streamgpp.Kernel{Name: "k", OpsPerElem: 8,
		Fn: func(ins, outs []*streamgpp.Stream, start, cnt int) int64 {
			for i := start; i < start+cnt; i++ {
				outs[0].Set(i, 0, ins[0].At(i, 0)*2+ins[1].At(i, 0))
			}
			return 0
		}}
	g := streamgpp.NewGraph("facade")
	as := g.Input(streamgpp.StreamOf("as", n, layout, layout.AllFields()), streamgpp.Bind(a2))
	bs := g.Input(streamgpp.StreamOf("bs", n, layout, layout.AllFields()), streamgpp.Bind(b2))
	os := g.AddKernel(k, []*streamgpp.Edge{as, bs},
		[]*streamgpp.Stream{streamgpp.NewStream("os", n, streamgpp.F("v", 8))})
	g.Output(os[0], streamgpp.Bind(o2).Indexed(idx2))

	prog, err := streamgpp.Compile(g, streamgpp.DefaultOptions(streamgpp.DefaultSRF(ms)))
	if err != nil {
		t.Fatal(err)
	}
	str, err := streamgpp.RunStream(ms, prog, streamgpp.DefaultExec())
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < n; i++ {
		if o1.At(i, 0) != o2.At(i, 0) {
			t.Fatalf("out[%d]: %v vs %v", i, o1.At(i, 0), o2.At(i, 0))
		}
	}
	if reg.Cycles == 0 || str.Cycles == 0 {
		t.Fatal("zero cycles")
	}
	if sp := streamgpp.Speedup(reg, str); sp <= 0 {
		t.Fatalf("speedup %v", sp)
	}
}

// TestFacadeSingleContext exercises the 1-context executor and the
// custom-machine constructor through the facade.
func TestFacadeSingleContext(t *testing.T) {
	cfg := streamgpp.PentiumD8300()
	cfg.L2Bytes = 512 << 10
	m, err := streamgpp.NewMachineWith(cfg)
	if err != nil {
		t.Fatal(err)
	}
	layout := streamgpp.Layout("rec", streamgpp.F("v", 8))
	a := streamgpp.NewArray(m, "a", layout, 5000)
	o := streamgpp.NewArray(m, "o", layout, 5000)
	a.Fill(func(i, f int) float64 { return float64(i) })

	double := &streamgpp.Kernel{Name: "double", OpsPerElem: 2,
		Fn: func(ins, outs []*streamgpp.Stream, start, cnt int) int64 {
			for i := start; i < start+cnt; i++ {
				outs[0].Set(i, 0, 2*ins[0].At(i, 0))
			}
			return 0
		}}
	g := streamgpp.NewGraph("double")
	as := g.Input(streamgpp.StreamOf("as", 5000, layout, layout.AllFields()), streamgpp.Bind(a))
	os := g.AddKernel(double, []*streamgpp.Edge{as},
		[]*streamgpp.Stream{streamgpp.NewStream("os", 5000, streamgpp.F("v", 8))})
	g.Output(os[0], streamgpp.Bind(o))

	srf, err := streamgpp.NewSRF(m, 128<<10)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := streamgpp.Compile(g, streamgpp.DefaultOptions(srf))
	if err != nil {
		t.Fatal(err)
	}
	res, err := streamgpp.RunStream1Ctx(m, prog, streamgpp.DefaultExec())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 {
		t.Fatal("no cycles")
	}
	if o.At(4999, 0) != 9998 {
		t.Fatalf("o[4999] = %v", o.At(4999, 0))
	}
}

// TestFacadeInvalidConfig checks error propagation.
func TestFacadeInvalidConfig(t *testing.T) {
	cfg := streamgpp.PentiumD8300()
	cfg.FreqHz = 0
	if _, err := streamgpp.NewMachineWith(cfg); err == nil {
		t.Fatal("invalid config accepted")
	}
}

// TestFacadeWaitPolicies runs a program under each wait policy.
func TestFacadeWaitPolicies(t *testing.T) {
	for _, pol := range []streamgpp.WaitPolicy{
		streamgpp.PolicyPause, streamgpp.PolicyMwait, streamgpp.PolicyOS,
	} {
		m := streamgpp.NewMachine()
		layout := streamgpp.Layout("rec", streamgpp.F("v", 8))
		a := streamgpp.NewArray(m, "a", layout, 3000)
		o := streamgpp.NewArray(m, "o", layout, 3000)
		inc := &streamgpp.Kernel{Name: "inc", OpsPerElem: 2,
			Fn: func(ins, outs []*streamgpp.Stream, start, cnt int) int64 {
				for i := start; i < start+cnt; i++ {
					outs[0].Set(i, 0, ins[0].At(i, 0)+1)
				}
				return 0
			}}
		g := streamgpp.NewGraph("inc")
		as := g.Input(streamgpp.StreamOf("as", 3000, layout, layout.AllFields()), streamgpp.Bind(a))
		os := g.AddKernel(inc, []*streamgpp.Edge{as},
			[]*streamgpp.Stream{streamgpp.NewStream("os", 3000, streamgpp.F("v", 8))})
		g.Output(os[0], streamgpp.Bind(o))
		prog, err := streamgpp.Compile(g, streamgpp.DefaultOptions(streamgpp.DefaultSRF(m)))
		if err != nil {
			t.Fatal(err)
		}
		cfg := streamgpp.DefaultExec()
		cfg.WaitPolicy = pol
		res, err := streamgpp.RunStream(m, prog, cfg)
		if err != nil {
			t.Fatalf("policy %v: %v", pol, err)
		}
		if res.Cycles == 0 {
			t.Fatalf("policy %v: no cycles", pol)
		}
		if o.At(0, 0) != 1 {
			t.Fatalf("policy %v: wrong result", pol)
		}
	}
}

// TestFacadeFaultInjection drives the robustness layer through the
// public API: a seeded injector faults every kernel a bounded number
// of times, the run absorbs the faults by strip retry, and the
// recovery accounting and replayable trace are visible to the caller.
func TestFacadeFaultInjection(t *testing.T) {
	build := func() (*streamgpp.Machine, *streamgpp.Array) {
		m := streamgpp.NewMachine()
		l := streamgpp.Layout("rec", streamgpp.F("v", 8))
		a := streamgpp.NewArray(m, "a", l, 5000)
		a.Fill(func(i, f int) float64 { return float64(i) })
		o := streamgpp.NewArray(m, "o", l, 5000)
		inc := &streamgpp.Kernel{Name: "inc", OpsPerElem: 1,
			Fn: func(ins, outs []*streamgpp.Stream, start, n int) int64 {
				for i := start; i < start+n; i++ {
					outs[0].Set(i, 0, ins[0].At(i, 0)+1)
				}
				return 0
			}}
		g := streamgpp.NewGraph("flt")
		as := g.Input(streamgpp.StreamOf("as", 5000, l, l.AllFields()), streamgpp.Bind(a))
		os := g.AddKernel(inc, []*streamgpp.Edge{as},
			[]*streamgpp.Stream{streamgpp.NewStream("os", 5000, streamgpp.F("v", 8))})
		g.Output(os[0], streamgpp.Bind(o))
		prog, err := streamgpp.Compile(g, streamgpp.DefaultOptions(streamgpp.DefaultSRF(m)))
		if err != nil {
			t.Fatal(err)
		}
		res, err := streamgpp.RunStream(m, prog, streamgpp.DefaultExec())
		if err != nil {
			t.Fatal(err)
		}
		if res.Recovery.Any() && m.FaultInjector() == nil {
			t.Fatal("recovery activity without an injector")
		}
		_ = res
		return m, o
	}
	// Reference, no faults.
	_, ref := build()

	fcfg, err := streamgpp.ParseFaultSpec("kernel_fault:1")
	if err != nil {
		t.Fatal(err)
	}
	fcfg.Seed = 11
	fcfg.MaxPerKind[streamgpp.FaultKernelFault] = 2
	inj := streamgpp.NewFaultInjector(fcfg)
	streamgpp.SetDefaultFaultInjector(inj)
	defer streamgpp.SetDefaultFaultInjector(nil)

	_, o := build()
	if inj.Injected(streamgpp.FaultKernelFault) != 2 {
		t.Fatalf("injected %d kernel faults, want 2", inj.Injected(streamgpp.FaultKernelFault))
	}
	if inj.TraceString() == "" {
		t.Fatal("no fault trace recorded")
	}
	for i := 0; i < 5000; i++ {
		if o.At(i, 0) != ref.At(i, 0) {
			t.Fatalf("o[%d] wrong after retried faults", i)
		}
	}
}
