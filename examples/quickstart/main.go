// Quickstart: write one computation in both styles — a regular
// interleaved loop and a stream program — run them on the simulated
// Pentium 4, and compare, exactly as §IV-A prescribes.
//
// The computation is a saxpy-like kernel with a short dependent chain
// (≈50 cycles per element, the paper's COMP=1) over arrays much larger
// than the cache: out[i] = chain(2.5*a[i] + b[i]).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"streamgpp"
)

const n = 300_000 // 2.4 MB per array: well beyond the 1 MB L2

func main() {
	layout := streamgpp.Layout("rec", streamgpp.F("v", 8))

	// ---------------- Regular version ----------------
	mReg := streamgpp.NewMachine()
	a1 := streamgpp.NewArray(mReg, "a", layout, n)
	b1 := streamgpp.NewArray(mReg, "b", layout, n)
	o1 := streamgpp.NewArray(mReg, "out", layout, n)
	fill(a1, b1)

	regular := streamgpp.RunRegular(mReg, streamgpp.DefaultExec(), streamgpp.Loop{
		Name: "saxpy", N: n,
		Ops: func(i int) int64 { return 50 },
		Refs: func(i int, emit func(addr uint64, size int, write bool)) {
			emit(a1.FieldAddr(i, 0), 8, false)
			emit(b1.FieldAddr(i, 0), 8, false)
			emit(o1.FieldAddr(i, 0), 8, true)
		},
		Body: func(i int) { o1.Set(i, 0, chain(2.5*a1.At(i, 0)+b1.At(i, 0))) },
	})

	// ---------------- Stream version ----------------
	mStr := streamgpp.NewMachine()
	a2 := streamgpp.NewArray(mStr, "a", layout, n)
	b2 := streamgpp.NewArray(mStr, "b", layout, n)
	o2 := streamgpp.NewArray(mStr, "out", layout, n)
	fill(a2, b2)

	saxpy := &streamgpp.Kernel{
		Name: "saxpy", OpsPerElem: 50,
		Fn: func(ins, outs []*streamgpp.Stream, start, cnt int) int64 {
			for i := start; i < start+cnt; i++ {
				outs[0].Set(i, 0, chain(2.5*ins[0].At(i, 0)+ins[1].At(i, 0)))
			}
			return 0
		},
	}
	g := streamgpp.NewGraph("quickstart")
	as := g.Input(streamgpp.StreamOf("as", n, layout, layout.AllFields()), streamgpp.Bind(a2))
	bs := g.Input(streamgpp.StreamOf("bs", n, layout, layout.AllFields()), streamgpp.Bind(b2))
	os := g.AddKernel(saxpy, []*streamgpp.Edge{as, bs},
		[]*streamgpp.Stream{streamgpp.NewStream("os", n, streamgpp.F("v", 8))})
	g.Output(os[0], streamgpp.Bind(o2))

	prog, err := streamgpp.Compile(g, streamgpp.DefaultOptions(streamgpp.DefaultSRF(mStr)))
	if err != nil {
		panic(err)
	}
	stream, err := streamgpp.RunStream(mStr, prog, streamgpp.DefaultExec())
	if err != nil {
		panic(err)
	}

	// ---------------- Compare ----------------
	for i := 0; i < n; i++ {
		if o1.At(i, 0) != o2.At(i, 0) {
			panic("results differ")
		}
	}
	fmt.Println(mStr.Describe())
	fmt.Printf("regular: %10d cycles (%.2f ms simulated)\n", regular.Cycles,
		1e3*mReg.Config().CyclesToSeconds(regular.Cycles))
	fmt.Printf("stream:  %10d cycles (%.2f ms simulated)\n", stream.Cycles,
		1e3*mStr.Config().CyclesToSeconds(stream.Cycles))
	fmt.Printf("speedup: %.2fx  (results identical across %d elements)\n",
		streamgpp.Speedup(regular, stream), n)
}

// chain is the per-element computation both versions share.
func chain(x float64) float64 {
	for k := 0; k < 10; k++ {
		x = x*0.999 + 0.01
	}
	return x
}

func fill(arrs ...*streamgpp.Array) {
	for _, a := range arrs {
		a.Fill(func(i, f int) float64 { return float64(i%1000) / 999 })
	}
}
