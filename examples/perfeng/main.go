// Performance engineering walkthrough: the diagnostic workflow a
// developer follows to understand and tune a stream program, using the
// public API only:
//
//  1. Advise — the §V-A suitability analysis, before running anything.
//
//  2. Trace  — where the cycles actually went: a per-context timeline
//     and per-operation totals.
//
//  3. Tune   — the stream scheduler's strip-size search.
//
//  4. Export — the same run as metrics (SRF occupancy, queue depth,
//     stall attribution) and a Perfetto-loadable JSON trace.
//
//     go run ./examples/perfeng
package main

import (
	"fmt"
	"os"

	"streamgpp"
)

const n = 120_000

// buildProgram constructs the example pipeline (two kernels, random
// gathers, producer-consumer intermediate) on a fresh machine.
func buildProgram(stripElems int) (*streamgpp.Machine, *streamgpp.Program, *streamgpp.Graph, error) {
	m := streamgpp.NewMachine()
	layout := streamgpp.Layout("rec", streamgpp.F("v", 8))
	a := streamgpp.NewArray(m, "a", layout, n)
	b := streamgpp.NewArray(m, "b", layout, n)
	out := streamgpp.NewArray(m, "out", layout, n)
	a.Fill(func(i, f int) float64 { return float64(i%101) / 100 })
	b.Fill(func(i, f int) float64 { return float64(i%37) / 36 })
	idx := streamgpp.NewIndexArray(m, "idx", n)
	for i := range idx.Idx {
		idx.Idx[i] = int32((i * 17) % n)
	}

	k1 := &streamgpp.Kernel{Name: "mix", OpsPerElem: 40,
		Fn: func(ins, outs []*streamgpp.Stream, start, cnt int) int64 {
			for i := start; i < start+cnt; i++ {
				outs[0].Set(i, 0, ins[0].At(i, 0)*0.7+ins[1].At(i, 0)*0.3)
			}
			return 0
		}}
	k2 := &streamgpp.Kernel{Name: "shape", OpsPerElem: 30,
		Fn: func(ins, outs []*streamgpp.Stream, start, cnt int) int64 {
			for i := start; i < start+cnt; i++ {
				v := ins[0].At(i, 0)
				outs[0].Set(i, 0, v/(1+v*v))
			}
			return 0
		}}

	g := streamgpp.NewGraph("perfeng")
	as := g.Input(streamgpp.StreamOf("as", n, layout, layout.AllFields()), streamgpp.Bind(a).Indexed(idx))
	bs := g.Input(streamgpp.StreamOf("bs", n, layout, layout.AllFields()), streamgpp.Bind(b))
	mids := g.AddKernel(k1, []*streamgpp.Edge{as, bs},
		[]*streamgpp.Stream{streamgpp.NewStream("mids", n, streamgpp.F("v", 8))})
	outs := g.AddKernel(k2, []*streamgpp.Edge{mids[0]},
		[]*streamgpp.Stream{streamgpp.NewStream("outs", n, streamgpp.F("v", 8))})
	g.Output(outs[0], streamgpp.Bind(out))

	opt := streamgpp.DefaultOptions(streamgpp.DefaultSRF(m))
	opt.StripElems = stripElems
	prog, err := streamgpp.Compile(g, opt)
	if err != nil {
		return nil, nil, nil, err
	}
	return m, prog, g, nil
}

func main() {
	// 1. Advise.
	_, _, g, err := buildProgram(0)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rep, err := streamgpp.Advise(g, streamgpp.PentiumD8300())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rep.Render(os.Stdout)
	fmt.Println()

	// 2. Trace one execution, with a metrics registry observing the
	// machine.
	reg := streamgpp.NewMetricsRegistry()
	streamgpp.SetDefaultObserver(reg)
	m, prog, _, err := buildProgram(0)
	// The machine captured the registry at creation; detach the default
	// so the step-3 tuning runs don't pollute the metrics.
	streamgpp.SetDefaultObserver(nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cfg := streamgpp.DefaultExec()
	tr := &streamgpp.Trace{}
	cfg.Trace = tr
	res, err := streamgpp.RunStream(m, prog, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("executed in %d cycles; timeline:\n", res.Cycles)
	tr.Gantt(os.Stdout, 76)
	fmt.Println("\nper-operation totals:")
	tr.Summary(os.Stdout)
	fmt.Println()

	// 3. Tune the strip size.
	auto := prog.Phases[0].StripElems
	tuned, err := streamgpp.TuneStripSize(streamgpp.HalvingCandidates(auto, 256), streamgpp.DefaultExec(),
		func(strip int) (*streamgpp.Machine, *streamgpp.Program, error) {
			mm, pp, _, err := buildProgram(strip)
			return mm, pp, err
		})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("strip-size search (auto = %d elements):\n", auto)
	for strip, cycles := range tuned.Tried {
		label := fmt.Sprintf("%d", strip)
		if strip == 0 {
			label = "auto"
		}
		fmt.Printf("  strip %-6s -> %d cycles\n", label, cycles)
	}
	fmt.Printf("best: strip=%d at %d cycles\n", tuned.StripElems, tuned.Cycles)
	fmt.Println()

	// 4. Export: stall attribution, the recorded metrics, and a
	// Perfetto trace of the step-2 run.
	fmt.Printf("overlap efficiency: %.2f\n", tr.OverlapEfficiency())
	fmt.Println("stall attribution:")
	streamgpp.NewStallReport(res).Render(os.Stdout)
	fmt.Println("\nmetrics:")
	reg.Render(os.Stdout)

	f, err := os.Create("perfeng_trace.json")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := tr.WritePerfetto(f, "perfeng", streamgpp.PentiumD8300().FreqHz/1e6); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	f.Close()
	fmt.Println("\nwrote perfeng_trace.json — open at https://ui.perfetto.dev")
}
