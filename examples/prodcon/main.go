// Producer-consumer pipeline: the paper's Fig. 2 example program,
// written against the public API. Two kernels chained by a direct
// stream — the intermediate never reaches memory — with random gathers
// in and an indexed scatter out.
//
//	d[i]          = a[i] + b[i] + c[i]        (kernel1)
//	y[index5[i]]  = d[i] + x[i]               (kernel2)
//
// The example also shows the diagnostics a performance engineer would
// reach for: the SDF graph, the strip plan, the work-queue high-water
// mark and the SRF residency.
//
//	go run ./examples/prodcon
package main

import (
	"fmt"

	"streamgpp"
)

const n = 200_000

func main() {
	m := streamgpp.NewMachine()
	layout := streamgpp.Layout("rec", streamgpp.F("v", 8))

	a := streamgpp.NewArray(m, "a", layout, n)
	b := streamgpp.NewArray(m, "b", layout, n)
	c := streamgpp.NewArray(m, "c", layout, n)
	x := streamgpp.NewArray(m, "x", layout, n)
	y := streamgpp.NewArray(m, "y", layout, n)
	for _, arr := range []*streamgpp.Array{a, b, c, x} {
		arr.Fill(func(i, f int) float64 { return float64((i*31)%977) / 977 })
	}
	index5 := streamgpp.NewIndexArray(m, "index5", n)
	for i := range index5.Idx {
		index5.Idx[i] = int32((i*131 + 17) % n)
	}

	kernel1 := &streamgpp.Kernel{
		Name: "kernel1", OpsPerElem: 12,
		Fn: func(ins, outs []*streamgpp.Stream, start, cnt int) int64 {
			for i := start; i < start+cnt; i++ {
				outs[0].Set(i, 0, ins[0].At(i, 0)+ins[1].At(i, 0)+ins[2].At(i, 0))
			}
			return 0
		},
	}
	kernel2 := &streamgpp.Kernel{
		Name: "kernel2", OpsPerElem: 10,
		Fn: func(ins, outs []*streamgpp.Stream, start, cnt int) int64 {
			for i := start; i < start+cnt; i++ {
				outs[0].Set(i, 0, ins[0].At(i, 0)+ins[1].At(i, 0))
			}
			return 0
		},
	}

	g := streamgpp.NewGraph("fig2")
	as := g.Input(streamgpp.StreamOf("as", n, layout, layout.AllFields()), streamgpp.Bind(a))
	bs := g.Input(streamgpp.StreamOf("bs", n, layout, layout.AllFields()), streamgpp.Bind(b))
	cs := g.Input(streamgpp.StreamOf("cs", n, layout, layout.AllFields()), streamgpp.Bind(c))
	ds := g.AddKernel(kernel1, []*streamgpp.Edge{as, bs, cs},
		[]*streamgpp.Stream{streamgpp.NewStream("ds", n, streamgpp.F("v", 8))})
	xs := g.Input(streamgpp.StreamOf("xs", n, layout, layout.AllFields()), streamgpp.Bind(x))
	ys := g.AddKernel(kernel2, []*streamgpp.Edge{ds[0], xs},
		[]*streamgpp.Stream{streamgpp.NewStream("ys", n, streamgpp.F("v", 8))})
	g.Output(ys[0], streamgpp.Bind(y).Indexed(index5))

	fmt.Print(g.String())
	fmt.Printf("producer-consumer locality saves %.1f KB of writeback per pass\n\n",
		float64(g.SavedWritebackBytes())/1024)

	srf := streamgpp.DefaultSRF(m)
	prog, err := streamgpp.Compile(g, streamgpp.DefaultOptions(srf))
	if err != nil {
		panic(err)
	}
	fmt.Print(prog.Summary())

	res, err := streamgpp.RunStream(m, prog, streamgpp.DefaultExec())
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nexecuted %d tasks in %d cycles (%.2f ms simulated)\n",
		len(prog.Tasks), res.Cycles, 1e3*m.Config().CyclesToSeconds(res.Cycles))
	fmt.Printf("work-queue high-water mark: %d of %d slots\n",
		res.Queue.MaxOccupancy(), res.Queue.Capacity())
	fmt.Printf("SRF residency after run: %.0f%%\n", 100*srf.Residency(m))

	// Spot-check against a direct computation.
	i := n / 2
	want := a.At(i, 0) + b.At(i, 0) + c.At(i, 0) + x.At(i, 0)
	got := y.At(int(index5.Idx[i]), 0)
	fmt.Printf("spot check y[index5[%d]]: got %.6f want %.6f\n", i, got, want)
}
