// Blast wave: runs the bundled streamFEM application — the
// discontinuous-Galerkin conservation-law solver of §IV-C.1 — in both
// programming styles on the paper's 4816-cell unstructured triangular
// mesh, for all four PDE/polynomial configurations of Fig. 11(a).
//
//	go run ./examples/blastwave
//	go run ./examples/blastwave -config MHD-quad -steps 5
package main

import (
	"flag"
	"fmt"
	"os"

	"streamgpp/internal/apps/fem"
	"streamgpp/internal/exec"
)

func main() {
	config := flag.String("config", "all", "Euler-lin, Euler-quad, MHD-lin, MHD-quad or all")
	steps := flag.Int("steps", 3, "time steps")
	flag.Parse()

	configs := []fem.Params{fem.EulerLin, fem.EulerQuad, fem.MHDLin, fem.MHDQuad}
	if *config != "all" {
		found := false
		for _, p := range configs {
			if p.Name() == *config {
				configs = []fem.Params{p}
				found = true
				break
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "blastwave: unknown config %q\n", *config)
			os.Exit(2)
		}
	}

	fmt.Printf("streamFEM blast wave, 4816 triangular cells, %d step(s)\n\n", *steps)
	fmt.Printf("%-12s %-10s %-12s %-12s %s\n", "config", "cell B", "regular cyc", "stream cyc", "speedup")
	for _, p := range configs {
		p.Steps = *steps
		res, err := fem.Run(p, exec.Defaults())
		if err != nil {
			fmt.Fprintln(os.Stderr, "blastwave:", err)
			os.Exit(1)
		}
		fmt.Printf("%-12s %-10d %-12d %-12d %.2fx\n",
			p.Name(), p.K()*8, res.Regular.Cycles, res.Stream.Cycles, res.Speedup)
	}
	fmt.Println("\nboth styles produce the same blast-wave evolution; the speedup is the")
	fmt.Println("paper's Fig. 11(a) comparison on the simulated Pentium 4.")
}
