// Sparse matrix-vector multiply written against the public API: the
// streamSPAS pattern of Fig. 10(d). The input vector is gathered once
// per non-zero (the duplicating copy the paper discusses), multiplied
// against the sequentially streamed values, and the products
// accumulate into the result through a scatter-add.
//
// Run it at two matrix sizes to see the paper's Fig. 11(d) effect: at
// cache-resident sizes the regular CSR loop wins; as the matrix
// outgrows the cache the stream version recovers.
//
//	go run ./examples/spmv
package main

import (
	"fmt"
	"math/rand"

	"streamgpp"
)

const nnzPerRow = 46 // the paper's ratio

func run(rows int) {
	nnz := rows * nnzPerRow

	// --------- shared matrix construction (banded, FEM-like) ---------
	build := func(m *streamgpp.Machine) (vals, x, y *streamgpp.Array, colIdx, rowOf *streamgpp.IndexArray, rowPtr []int32) {
		l := streamgpp.Layout("v", streamgpp.F("v", 8))
		vals = streamgpp.NewArray(m, "vals", l, nnz)
		x = streamgpp.NewArray(m, "x", l, rows)
		y = streamgpp.NewArray(m, "y", l, rows)
		colIdx = streamgpp.NewIndexArray(m, "colidx", nnz)
		rowOf = streamgpp.NewIndexArray(m, "rowof", nnz)
		rowPtr = make([]int32, rows+1)
		rng := rand.New(rand.NewSource(7))
		// 3D-FEM-like coupling: bandwidth ~ rows^(2/3).
		band := 1
		for band*band*band < rows*rows {
			band++
		}
		if band < nnzPerRow {
			band = nnzPerRow
		}
		k := 0
		for r := 0; r < rows; r++ {
			rowPtr[r] = int32(k)
			for j := 0; j < nnzPerRow; j++ {
				c := r + rng.Intn(2*band+1) - band
				if c < 0 {
					c = -c
				}
				if c >= rows {
					c = 2*rows - 2 - c
				}
				colIdx.Idx[k] = int32(c)
				rowOf.Idx[k] = int32(r)
				vals.Set(k, 0, rng.Float64())
				k++
			}
		}
		rowPtr[rows] = int32(k)
		for i := 0; i < rows; i++ {
			x.Set(i, 0, rng.Float64())
		}
		return
	}

	// --------- regular CSR loop ---------
	mReg := streamgpp.NewMachine()
	vals1, x1, y1, col1, _, ptr1 := build(mReg)
	regular := streamgpp.RunRegular(mReg, streamgpp.DefaultExec(), streamgpp.Loop{
		Name: "csr", N: rows,
		Ops: func(r int) int64 { return int64(ptr1[r+1]-ptr1[r]) * 4 },
		Refs: func(r int, emit func(addr uint64, size int, write bool)) {
			for k := ptr1[r]; k < ptr1[r+1]; k++ {
				emit(col1.ElemAddr(int(k)), 4, false)
				emit(vals1.FieldAddr(int(k), 0), 8, false)
				emit(x1.FieldAddr(int(col1.Idx[k]), 0), 8, false)
			}
			emit(y1.FieldAddr(r, 0), 8, true)
		},
		Body: func(r int) {
			var acc float64
			for k := ptr1[r]; k < ptr1[r+1]; k++ {
				acc += vals1.At(int(k), 0) * x1.At(int(col1.Idx[k]), 0)
			}
			y1.Set(r, 0, acc)
		},
	})

	// --------- stream version ---------
	mStr := streamgpp.NewMachine()
	vals2, x2, y2, col2, rowOf2, _ := build(mStr)
	mul := &streamgpp.Kernel{
		Name: "SpMatVec", OpsPerElem: 4,
		Fn: func(ins, outs []*streamgpp.Stream, start, cnt int) int64 {
			for i := start; i < start+cnt; i++ {
				outs[0].Set(i, 0, ins[0].At(i, 0)*ins[1].At(i, 0))
			}
			return 0
		},
	}
	g := streamgpp.NewGraph("spmv")
	xv := g.Input(streamgpp.StreamOf("xv", nnz, x2.Layout, x2.Layout.AllFields()),
		streamgpp.Bind(x2).Indexed(col2))
	vs := g.Input(streamgpp.StreamOf("vals", nnz, vals2.Layout, vals2.Layout.AllFields()),
		streamgpp.Bind(vals2))
	prod := g.AddKernel(mul, []*streamgpp.Edge{xv, vs},
		[]*streamgpp.Stream{streamgpp.NewStream("prod", nnz, streamgpp.F("p", 8))})
	g.Output(prod[0], streamgpp.Bind(y2).Indexed(rowOf2).Accumulate())

	prog, err := streamgpp.Compile(g, streamgpp.DefaultOptions(streamgpp.DefaultSRF(mStr)))
	if err != nil {
		panic(err)
	}
	stream, err := streamgpp.RunStream(mStr, prog, streamgpp.DefaultExec())
	if err != nil {
		panic(err)
	}

	// --------- compare ---------
	var maxDiff float64
	for r := 0; r < rows; r++ {
		d := y1.At(r, 0) - y2.At(r, 0)
		if d < 0 {
			d = -d
		}
		if d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("rows=%-7d nnz=%-8d regular=%-10d stream=%-10d speedup=%.2fx  (max |Δy| = %.1e)\n",
		rows, nnz, regular.Cycles, stream.Cycles, streamgpp.Speedup(regular, stream), maxDiff)
}

func main() {
	fmt.Println("SpMV, nnz/row = 46 (the paper's ratio):")
	run(2_000)  // x fits easily in cache: the regular loop wins
	run(48_000) // the matrix outgrows the cache: the stream version recovers
}
