// Command streamd serves the simulator as a fault-tolerant job
// service: an HTTP/JSON API with admission control (bounded job queue,
// 429 + Retry-After under saturation), per-job deadlines and fault
// injection, a content-addressed result cache, and graceful SIGTERM
// drain (accepted jobs finish, new ones are rejected, the run ledger
// stays valid).
//
// Usage:
//
//	streamd -addr :8372 -workers 4 -queue 64 -ledger streamd.jsonl
//	streamd -selftest -ledger /tmp/streamd.jsonl
//
// Endpoints (see internal/streamd and the README's "Running streamd"):
//
//	POST /jobs                GET /jobs/{id}         GET /jobs/{id}/result
//	GET  /jobs/{id}/events    GET /jobs/{id}/stream  (SSE live progress)
//	GET  /jobs/{id}/trace     GET /jobs/{id}/coverage
//	GET  /healthz             GET /readyz            GET /statz
//	GET  /metricz             (Prometheus text exposition)
//	GET  /sloz                (SLO burn-rate report, JSON or ?format=text)
//	GET  /debug/pprof/        (live profiling, only with -pprof)
//
// Structured logs (log/slog) go to stderr — one access-log line per
// request and one lifecycle line per job transition, joined to the
// events JSONL and ledger by job_id/config_hash; -logformat picks
// text or json.
//
// -selftest starts a server on a loopback port and drives the
// check.sh smoke against it over real HTTP: submit the quickstart job
// twice, assert the second response is a cache hit with byte-identical
// output, stream a larger job over SSE and assert at least one
// mid-run progress frame arrives before its done event, scrape
// /metricz (including the build-info and Go-runtime telemetry), /sloz
// and a live pprof goroutine profile, read the job's lifecycle event
// log, send the process a real SIGTERM mid-flight, assert the drain
// finished the in-flight job, rejected new work and left a valid
// ledger and event log, and finally gate on goroutine leaks: the
// count must return to its pre-server baseline. Exit 0 means every
// assertion held.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"streamgpp/internal/obs"
	"streamgpp/internal/streamd"
)

func main() {
	addr := flag.String("addr", ":8372", "listen address")
	workers := flag.Int("workers", 4, "job worker pool size")
	queue := flag.Int("queue", 64, "job queue depth (admission bound; full queue → 429)")
	cacheN := flag.Int("cache", 1024, "result cache capacity, entries")
	maxN := flag.Int("maxn", 2_000_000, "largest per-job problem size admitted")
	ledger := flag.String("ledger", "", "append one run-ledger JSONL entry per fresh run; repaired at startup if torn")
	faultSeed := flag.Uint64("faultseed", 1, "base seed for per-job fault-schedule derivation")
	logformat := flag.String("logformat", "text", "structured log encoding on stderr: text or json")
	pprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	selftest := flag.Bool("selftest", false, "run the lifecycle self-test against a loopback server and exit")
	flag.Parse()

	var handler slog.Handler
	switch *logformat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "streamd: -logformat %q: want text or json\n", *logformat)
		os.Exit(2)
	}

	opts := streamd.Options{
		Workers:       *workers,
		QueueDepth:    *queue,
		CacheEntries:  *cacheN,
		MaxN:          *maxN,
		LedgerPath:    *ledger,
		BaseFaultSeed: *faultSeed,
		Logger:        slog.New(handler),
		EnablePprof:   *pprof,
	}

	if *selftest {
		if err := runSelftest(opts); err != nil {
			fmt.Fprintf(os.Stderr, "streamd: selftest: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("streamd: selftest passed")
		return
	}

	s, err := streamd.New(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "streamd: %v\n", err)
		os.Exit(1)
	}
	hs := &http.Server{Addr: *addr, Handler: s.Handler()}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Printf("streamd: listening on %s (workers %d, queue %d)\n", *addr, opts.Workers, opts.QueueDepth)

	select {
	case sig := <-sigc:
		fmt.Printf("streamd: %v: draining (accepted jobs finish, new jobs rejected)\n", sig)
		s.Drain()
		hs.Close()
		st := s.Stats()
		fmt.Printf("streamd: drained clean: %d done, %d timed-out, %d shed, %d failed, %d ledger entries\n",
			st.Done, st.TimedOut, st.Shed, st.Failed, st.LedgerEntries)
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "streamd: %v\n", err)
		os.Exit(1)
	}
}

// runSelftest exercises the full lifecycle over real HTTP and a real
// SIGTERM, as the check.sh smoke.
func runSelftest(opts streamd.Options) error {
	if opts.Workers < 2 {
		opts.Workers = 2 // the drain assertion needs a job in flight while we kill ourselves
	}
	opts.EnablePprof = true // the selftest always fetches a live profile
	// The leak gate's baseline: everything the server and its clients
	// spawn from here on must be gone again after the drain.
	baseGoroutines := runtime.NumGoroutine()
	s, err := streamd.New(opts)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Printf("streamd: selftest server on %s\n", base)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM)

	submit := func(spec string) (streamd.JobStatus, error) {
		resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader([]byte(spec)))
		if err != nil {
			return streamd.JobStatus{}, err
		}
		defer resp.Body.Close()
		var st streamd.JobStatus
		if resp.StatusCode != http.StatusAccepted {
			b, _ := io.ReadAll(resp.Body)
			return st, fmt.Errorf("submit %s: %d: %s", spec, resp.StatusCode, b)
		}
		return st, json.NewDecoder(resp.Body).Decode(&st)
	}
	result := func(id string) (int, []byte, http.Header, error) {
		resp, err := http.Get(base + "/jobs/" + id + "/result?wait=1")
		if err != nil {
			return 0, nil, nil, err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		return resp.StatusCode, b, resp.Header, err
	}

	// 1. Quickstart twice: fresh run, then a byte-identical cache hit.
	const quick = `{"app":"QUICKSTART","n":60000}`
	j1, err := submit(quick)
	if err != nil {
		return err
	}
	code, fresh, hdr1, err := result(j1.ID)
	if err != nil || code != http.StatusOK {
		return fmt.Errorf("fresh quickstart: code %d, err %v: %s", code, err, fresh)
	}
	if hdr1.Get("X-Streamd-Cache") != "miss" {
		return fmt.Errorf("first quickstart served as %q, want miss", hdr1.Get("X-Streamd-Cache"))
	}
	j2, err := submit(quick)
	if err != nil {
		return err
	}
	code, cached, hdr2, err := result(j2.ID)
	if err != nil || code != http.StatusOK {
		return fmt.Errorf("cached quickstart: code %d, err %v", code, err)
	}
	if hdr2.Get("X-Streamd-Cache") != "hit" {
		return fmt.Errorf("second quickstart served as %q, want hit", hdr2.Get("X-Streamd-Cache"))
	}
	if !bytes.Equal(fresh, cached) || hdr1.Get("X-Streamd-Output-Hash") != hdr2.Get("X-Streamd-Output-Hash") {
		return fmt.Errorf("cache hit is not byte-identical to the fresh run")
	}
	fmt.Printf("streamd: selftest cache hit verified (hash %s)\n", hdr2.Get("X-Streamd-Output-Hash"))

	// 2. Live progress over SSE: a bigger job must deliver at least one
	// mid-run progress frame before its done event. Frames only exist
	// while the job runs (the latest replays on connect), so seeing one
	// proves the stream attached mid-run. Distinct seeds keep every
	// attempt a fresh run — a cache hit would finish instantly.
	var sseJob streamd.JobStatus
	var progressFrames int
	for attempt := 1; attempt <= 3 && progressFrames == 0; attempt++ {
		sseJob, err = submit(fmt.Sprintf(`{"app":"GAT-SCAT-COMP","n":%d,"comp":2,"seed":%d}`, 200000*attempt, 100+attempt))
		if err != nil {
			return err
		}
		resp, err := http.Get(base + "/jobs/" + sseJob.ID + "/stream")
		if err != nil {
			return err
		}
		doneSeen := false
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			switch sc.Text() {
			case "event: progress":
				progressFrames++
			case "event: done":
				doneSeen = true
			}
		}
		resp.Body.Close()
		if !doneSeen {
			return fmt.Errorf("SSE stream for %s ended without a done event", sseJob.ID)
		}
	}
	if progressFrames == 0 {
		return fmt.Errorf("SSE streams delivered no mid-run progress frames")
	}
	fmt.Printf("streamd: selftest observed %d mid-run progress frames over SSE\n", progressFrames)

	// 3. The lifecycle event log for that job, via the API.
	resp, err := http.Get(base + "/jobs/" + sseJob.ID + "/events")
	if err != nil {
		return err
	}
	var events []streamd.Event
	err = json.NewDecoder(resp.Body).Decode(&events)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if len(events) < 4 || events[0].Type != "submit" || events[len(events)-1].Type != "terminal" {
		return fmt.Errorf("job %s event log implausible: %d events", sseJob.ID, len(events))
	}

	// 4. /metricz: a parseable Prometheus exposition carrying the job
	// counters and the run-duration histogram.
	resp, err = http.Get(base + "/metricz")
	if err != nil {
		return err
	}
	prom, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	var counterLine string
	families := make(map[string]bool)
	for _, line := range strings.Split(string(prom), "\n") {
		if strings.HasPrefix(line, "streamd_jobs_accepted ") {
			counterLine = line
		}
		// Two families with one name (a PromName flattening collision)
		// make the whole exposition unscrapable — reject it here.
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				return fmt.Errorf("metricz: malformed TYPE line %q", line)
			}
			if families[fields[2]] {
				return fmt.Errorf("metricz: duplicate metric family %q:\n%s", fields[2], prom)
			}
			families[fields[2]] = true
		}
	}
	if counterLine == "" || !strings.Contains(string(prom), "# TYPE streamd_run_ms histogram") {
		return fmt.Errorf("metricz exposition incomplete:\n%s", prom)
	}
	// The self-observation plane rides the same scrape: the build-info
	// gauge and the Go runtime collector's telemetry.
	for _, want := range []string{"streamd_build_info{", "go_goroutines ", "go_heap_inuse_bytes "} {
		if !strings.Contains(string(prom), want) {
			return fmt.Errorf("metricz missing %q:\n%s", want, prom)
		}
	}
	fmt.Printf("streamd: selftest metricz scrape ok (%s)\n", counterLine)

	// 4b. /sloz: the SLO engine evaluates every declared objective with
	// finite burn numbers. (Healthy is not asserted — a slow CI host can
	// legitimately burn the run-latency budget.)
	resp, err = http.Get(base + "/sloz")
	if err != nil {
		return err
	}
	var slorep obs.SLOReport
	err = json.NewDecoder(resp.Body).Decode(&slorep)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("sloz decode: %w", err)
	}
	if len(slorep.Objectives) == 0 {
		return fmt.Errorf("sloz reported no objectives")
	}
	for _, o := range slorep.Objectives {
		if len(o.Windows) == 0 {
			return fmt.Errorf("sloz objective %s has no windows", o.Name)
		}
		for _, w := range o.Windows {
			if w.SLI < 0 || w.SLI > 1 {
				return fmt.Errorf("sloz objective %s window %s: SLI %v out of [0,1]", o.Name, w.Window, w.SLI)
			}
		}
	}
	fmt.Printf("streamd: selftest sloz ok (%d objectives)\n", len(slorep.Objectives))

	// 4c. Live profiling over real HTTP: the goroutine profile must be
	// served and look like one.
	resp, err = http.Get(base + "/debug/pprof/goroutine?debug=1")
	if err != nil {
		return err
	}
	profile, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(profile), "goroutine") {
		return fmt.Errorf("pprof goroutine profile: code %d, %d bytes", resp.StatusCode, len(profile))
	}
	fmt.Printf("streamd: selftest pprof profile fetched (%d bytes)\n", len(profile))

	// 5. Put a job in flight, then SIGTERM ourselves: the drain must
	// finish it, reject new work, and leave the ledger valid.
	j3, err := submit(`{"app":"GAT-SCAT-COMP","n":120000,"comp":2}`)
	if err != nil {
		return err
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		return err
	}
	select {
	case <-sigc:
	case <-time.After(5 * time.Second):
		return fmt.Errorf("SIGTERM never delivered")
	}
	s.Drain()

	code, b, _, err := result(j3.ID)
	if err != nil || code != http.StatusOK {
		return fmt.Errorf("in-flight job after drain: code %d, err %v: %s", code, err, b)
	}
	if _, err := submit(quick); err == nil {
		return fmt.Errorf("submit accepted during drain, want 503")
	}
	resp, err = http.Get(base + "/readyz")
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		return fmt.Errorf("readyz after drain: %d, want 503", resp.StatusCode)
	}
	hs.Close()

	// 6. Ledger: valid JSONL, one entry per fresh run (the cache hit
	// appends nothing). The event log next to it must round-trip too,
	// with its tail whole — Drain closed it after the last worker.
	if opts.LedgerPath != "" {
		entries, stats, err := obs.ReadLedgerStats(opts.LedgerPath)
		if err != nil {
			return fmt.Errorf("post-drain ledger: %w", err)
		}
		if stats.TornTail {
			return fmt.Errorf("post-drain ledger has a torn tail")
		}
		if len(entries) < 2 {
			return fmt.Errorf("post-drain ledger has %d entries, want ≥2", len(entries))
		}
		fmt.Printf("streamd: selftest ledger valid (%d entries)\n", len(entries))
		_, estats, err := streamd.ReadEvents(opts.LedgerPath + ".events")
		if err != nil {
			return fmt.Errorf("post-drain event log: %w", err)
		}
		if estats.TornTail {
			return fmt.Errorf("post-drain event log has a torn tail")
		}
		fmt.Printf("streamd: selftest event log valid (%d events over %d jobs)\n", estats.Events, estats.Jobs)
	}
	st := s.Stats()
	if st.Failed != 0 {
		return fmt.Errorf("selftest jobs failed: %+v", st)
	}

	// 7. Goroutine-leak gate: with the pool drained, the listener closed
	// and the client's keep-alive connections dropped, the goroutine
	// count must return to (near) the pre-server baseline. The slack
	// covers runtime goroutines spawned after the baseline was taken
	// (signal.Notify's watcher, a GC worker); a leaked worker or
	// handler would hold the count well above it.
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(10 * time.Second)
	var after int
	for {
		after = runtime.NumGoroutine()
		if after <= baseGoroutines+3 {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("goroutine-leak gate: %d goroutines long after drain (baseline %d)", after, baseGoroutines)
		}
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Printf("streamd: selftest goroutine-leak gate ok (baseline %d, after drain %d)\n", baseGoroutines, after)
	return nil
}
