package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"streamgpp/internal/obs"
	"streamgpp/internal/streamd"
)

// parseProm must flatten well-formed samples (folding le labels into
// the key) and skip — never panic on — malformed lines, including a
// truncated le label with no closing quote.
func TestParsePromMalformedLines(t *testing.T) {
	in := strings.Join([]string{
		"# HELP streamd_jobs_accepted streamd.jobs_accepted",
		"# TYPE streamd_jobs_accepted counter",
		"streamd_jobs_accepted 3",
		`streamd_run_ms_bucket{le="128"} 2`,
		`streamd_run_ms_bucket{le="+Inf"} 2`,
		`streamd_run_ms_bucket{le="64`,   // truncated label, no closing quote, no value
		`streamd_run_ms_bucket{le="32 1`, // truncated label with a value — must be skipped, not mis-keyed
		"no_value_line",
		"streamd_queue_depth not-a-number",
		"",
	}, "\n")
	m, err := parseProm(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m["streamd_jobs_accepted"] != 3 {
		t.Errorf("counter = %v, want 3", m["streamd_jobs_accepted"])
	}
	if m["streamd_run_ms_bucket_le_128"] != 2 || m["streamd_run_ms_bucket_le_+Inf"] != 2 {
		t.Errorf("bucket keys missing: %v", m)
	}
	for k := range m {
		if strings.Contains(k, "le_32") || strings.Contains(k, "le_64") {
			t.Errorf("malformed bucket line produced key %q", k)
		}
	}
}

// fakeSnapshot builds the three scrape products a render test needs:
// a draining server that has dropped events, one latency histogram's
// quantile gauges, and an SLO report with one breached objective.
func fakeSnapshot() (streamd.Stats, map[string]float64, *obs.SLOReport) {
	st := streamd.Stats{
		UptimeSec:     61,
		Workers:       2,
		QueueDepth:    1,
		Accepted:      5,
		Draining:      true,
		EventsDropped: 7,
		JobsByState:   map[string]int{"done": 4, "running": 1},
	}
	m := map[string]float64{
		"streamd_run_ms_count": 5,
		"streamd_run_ms_p50":   12,
		"streamd_run_ms_p95":   40,
		"streamd_run_ms_p99":   64,
	}
	slo := &obs.SLOReport{
		UptimeSec: 61,
		Healthy:   false,
		Objectives: []obs.SLOStatus{
			{
				SLOObjective: obs.SLOObjective{Name: "run-latency", Target: 0.95},
				Windows: []obs.SLOWindowStatus{
					{Window: "5m", SLI: 0.9, BurnRate: 2, Partial: true},
					{Window: "1h", SLI: 0.9, BurnRate: 2, Partial: true},
				},
				BudgetUsedPct: 200,
				Healthy:       false,
			},
			{
				SLOObjective: obs.SLOObjective{Name: "availability", Target: 0.999},
				Windows: []obs.SLOWindowStatus{
					{Window: "5m", SLI: 1, BurnRate: 0},
					{Window: "1h", SLI: 1, BurnRate: 0},
				},
				Healthy: true,
			},
		},
	}
	return st, m, slo
}

// render must surface readiness, the dropped-event count and the SLO
// budget panel — and stay quiet about all three on a healthy server.
func TestRenderReadinessAndSLOPanel(t *testing.T) {
	st, m, slo := fakeSnapshot()
	var buf bytes.Buffer
	render(&buf, "http://x:1", st, m, slo)
	out := buf.String()
	for _, want := range []string{
		"DRAINING",
		"events-dropped 7",
		"run-latency",
		"availability",
		"burn 5m",
		"BREACH",
		"budget burning",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}

	// Healthy, nothing dropped, no report: none of the alarm strings.
	var quiet bytes.Buffer
	render(&quiet, "http://x:1", streamd.Stats{Workers: 1}, m, nil)
	q := quiet.String()
	if !strings.Contains(q, "READY") {
		t.Errorf("healthy render missing READY:\n%s", q)
	}
	for _, not := range []string{"DRAINING", "events-dropped", "BREACH", "slo"} {
		if strings.Contains(q, not) {
			t.Errorf("healthy render contains %q:\n%s", not, q)
		}
	}
}

// The -once -json snapshot must round-trip: stats, flattened metrics
// and the SLO report under stable keys, with slo null when absent.
func TestWriteSnapshotJSON(t *testing.T) {
	st, m, slo := fakeSnapshot()
	var buf bytes.Buffer
	if err := writeSnapshotJSON(&buf, st, m, slo); err != nil {
		t.Fatal(err)
	}
	var got struct {
		Stats   streamd.Stats      `json:"stats"`
		Metrics map[string]float64 `json:"metrics"`
		SLO     *obs.SLOReport     `json:"slo"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if !got.Stats.Draining || got.Stats.EventsDropped != 7 {
		t.Errorf("stats did not round-trip: %+v", got.Stats)
	}
	if got.Metrics["streamd_run_ms_p99"] != 64 {
		t.Errorf("metrics did not round-trip: %v", got.Metrics)
	}
	if got.SLO == nil || got.SLO.Healthy || len(got.SLO.Objectives) != 2 {
		t.Errorf("slo did not round-trip: %+v", got.SLO)
	}

	buf.Reset()
	if err := writeSnapshotJSON(&buf, st, m, nil); err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	if string(raw["slo"]) != "null" {
		t.Errorf("absent report should encode as null, got %s", raw["slo"])
	}
}
