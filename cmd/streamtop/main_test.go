package main

import (
	"strings"
	"testing"
)

// parseProm must flatten well-formed samples (folding le labels into
// the key) and skip — never panic on — malformed lines, including a
// truncated le label with no closing quote.
func TestParsePromMalformedLines(t *testing.T) {
	in := strings.Join([]string{
		"# HELP streamd_jobs_accepted streamd.jobs_accepted",
		"# TYPE streamd_jobs_accepted counter",
		"streamd_jobs_accepted 3",
		`streamd_run_ms_bucket{le="128"} 2`,
		`streamd_run_ms_bucket{le="+Inf"} 2`,
		`streamd_run_ms_bucket{le="64`, // truncated label, no closing quote, no value
		`streamd_run_ms_bucket{le="32 1`, // truncated label with a value — must be skipped, not mis-keyed
		"no_value_line",
		"streamd_queue_depth not-a-number",
		"",
	}, "\n")
	m, err := parseProm(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m["streamd_jobs_accepted"] != 3 {
		t.Errorf("counter = %v, want 3", m["streamd_jobs_accepted"])
	}
	if m["streamd_run_ms_bucket_le_128"] != 2 || m["streamd_run_ms_bucket_le_+Inf"] != 2 {
		t.Errorf("bucket keys missing: %v", m)
	}
	for k := range m {
		if strings.Contains(k, "le_32") || strings.Contains(k, "le_64") {
			t.Errorf("malformed bucket line produced key %q", k)
		}
	}
}
