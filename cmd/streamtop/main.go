// Command streamtop is a terminal dashboard for a running streamd: it
// polls /statz (structured counters) and /metricz (the Prometheus
// exposition, for the latency quantile gauges) and renders queue
// depth, per-state job occupancy, cache hit rate and the queue-wait /
// admission / run-duration percentiles in place.
//
// Usage:
//
//	streamtop -addr http://localhost:8372
//	streamtop -addr http://localhost:8372 -interval 2s
//	streamtop -once        # one snapshot, no screen control (for pipes)
//
// The dashboard is read-only and clock-neutral by construction: it
// only scrapes endpoints whose handlers never touch a simulated
// clock, so watching a server does not change what it computes.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"streamgpp/internal/streamd"
)

// scrape fetches one /statz + /metricz pair.
func scrape(client *http.Client, base string) (streamd.Stats, map[string]float64, error) {
	var st streamd.Stats
	resp, err := client.Get(base + "/statz")
	if err != nil {
		return st, nil, err
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		return st, nil, fmt.Errorf("decoding /statz: %w", err)
	}

	resp, err = client.Get(base + "/metricz")
	if err != nil {
		return st, nil, err
	}
	metrics, err := parseProm(resp.Body)
	resp.Body.Close()
	if err != nil {
		return st, nil, fmt.Errorf("parsing /metricz: %w", err)
	}
	return st, metrics, nil
}

// parseProm reads a Prometheus text exposition into a flat
// name→value map (unlabelled samples and _bucket/_sum/_count series
// alike; bucket labels are folded into the key as name_bucket_le_B).
func parseProm(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		name, val := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			continue // +Inf etc. in sample position never happens here; skip defensively
		}
		if i := strings.IndexByte(name, '{'); i >= 0 {
			le := ""
			if j := strings.Index(name, `le="`); j >= 0 {
				k := strings.IndexByte(name[j+4:], '"')
				if k < 0 {
					continue // truncated label — skip like other malformed lines
				}
				le = name[j+4 : j+4+k]
			}
			name = name[:i] + "_le_" + le
		}
		out[name] = v
	}
	return out, sc.Err()
}

// fmtDur renders a seconds count as 1h02m03s.
func fmtDur(sec float64) string {
	return time.Duration(sec * float64(time.Second)).Truncate(time.Second).String()
}

// render draws one frame of the dashboard.
func render(w io.Writer, addr string, st streamd.Stats, m map[string]float64) {
	fmt.Fprintf(w, "streamd %s    up %s", addr, fmtDur(st.UptimeSec))
	if st.Draining {
		fmt.Fprintf(w, "    DRAINING")
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "workers %d    queue %d    cache %d entries\n\n", st.Workers, st.QueueDepth, st.CacheEntries)

	fmt.Fprintf(w, "jobs     accepted %-6d rejected %d full / %d draining    panics %d\n",
		st.Accepted, st.RejectedFull, st.RejectedDrain, st.Panics)
	var states []string
	for state := range st.JobsByState {
		states = append(states, state)
	}
	sort.Strings(states)
	fmt.Fprintf(w, "states  ")
	for _, state := range states {
		fmt.Fprintf(w, " %s=%d", state, st.JobsByState[state])
	}
	fmt.Fprintln(w)

	hitRate := 0.0
	if lookups := st.CacheHits + st.CacheMisses; lookups > 0 {
		hitRate = 100 * float64(st.CacheHits) / float64(lookups)
	}
	fmt.Fprintf(w, "cache    %d hits / %d misses (%.1f%% hit rate)    ledger %d entries\n\n",
		st.CacheHits, st.CacheMisses, hitRate, st.LedgerEntries)

	fmt.Fprintf(w, "%-22s %10s %10s %10s %10s\n", "latency (ms)", "p50", "p95", "p99", "count")
	for _, h := range []struct{ label, name string }{
		{"queue wait", "streamd_queue_wait_ms"},
		{"admission", "streamd_admission_ms"},
		{"run duration", "streamd_run_ms"},
	} {
		count, ok := m[h.name+"_count"]
		if !ok {
			fmt.Fprintf(w, "%-22s %10s %10s %10s %10s\n", h.label, "-", "-", "-", "0")
			continue
		}
		fmt.Fprintf(w, "%-22s %10g %10g %10g %10.0f\n",
			h.label, m[h.name+"_p50"], m[h.name+"_p95"], m[h.name+"_p99"], count)
	}
}

func main() {
	addr := flag.String("addr", "http://localhost:8372", "streamd base URL")
	interval := flag.Duration("interval", time.Second, "poll interval")
	once := flag.Bool("once", false, "print one snapshot and exit (no screen control)")
	flag.Parse()

	base := strings.TrimRight(*addr, "/")
	client := &http.Client{Timeout: 5 * time.Second}

	for {
		st, metrics, err := scrape(client, base)
		if err != nil {
			fmt.Fprintf(os.Stderr, "streamtop: %v\n", err)
			if *once {
				os.Exit(1)
			}
			time.Sleep(*interval)
			continue
		}
		if *once {
			render(os.Stdout, base, st, metrics)
			return
		}
		// Home the cursor and clear to end of screen: repaint in place
		// without the flash a full clear causes.
		fmt.Print("\x1b[H\x1b[2J")
		render(os.Stdout, base, st, metrics)
		fmt.Printf("\n(refreshing every %s, ctrl-c to quit)\n", *interval)
		time.Sleep(*interval)
	}
}
