// Command streamtop is a terminal dashboard for a running streamd: it
// polls /statz (structured counters), /metricz (the Prometheus
// exposition, for the latency quantile gauges) and /sloz (the SLO
// burn-rate report) and renders readiness, queue depth, per-state job
// occupancy, cache hit rate, the queue-wait / admission / run-duration
// percentiles and the error-budget panel in place.
//
// Usage:
//
//	streamtop -addr http://localhost:8372
//	streamtop -addr http://localhost:8372 -interval 2s
//	streamtop -once        # one snapshot, no screen control (for pipes)
//	streamtop -once -json  # the same snapshot as one JSON object
//
// The dashboard is read-only and clock-neutral by construction: it
// only scrapes endpoints whose handlers never touch a simulated
// clock, so watching a server does not change what it computes.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"streamgpp/internal/obs"
	"streamgpp/internal/streamd"
)

// scrape fetches one /statz + /metricz + /sloz round. The SLO report
// is best-effort: an older streamd without /sloz still renders, just
// without the budget panel (slo stays nil).
func scrape(client *http.Client, base string) (streamd.Stats, map[string]float64, *obs.SLOReport, error) {
	var st streamd.Stats
	resp, err := client.Get(base + "/statz")
	if err != nil {
		return st, nil, nil, err
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		return st, nil, nil, fmt.Errorf("decoding /statz: %w", err)
	}

	resp, err = client.Get(base + "/metricz")
	if err != nil {
		return st, nil, nil, err
	}
	metrics, err := parseProm(resp.Body)
	resp.Body.Close()
	if err != nil {
		return st, nil, nil, fmt.Errorf("parsing /metricz: %w", err)
	}

	var slo *obs.SLOReport
	if resp, err := client.Get(base + "/sloz"); err == nil {
		if resp.StatusCode == http.StatusOK {
			var rep obs.SLOReport
			if json.NewDecoder(resp.Body).Decode(&rep) == nil {
				slo = &rep
			}
		}
		resp.Body.Close()
	}
	return st, metrics, slo, nil
}

// parseProm reads a Prometheus text exposition into a flat
// name→value map (unlabelled samples and _bucket/_sum/_count series
// alike; bucket labels are folded into the key as name_bucket_le_B).
func parseProm(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		name, val := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			continue // +Inf etc. in sample position never happens here; skip defensively
		}
		if i := strings.IndexByte(name, '{'); i >= 0 {
			le := ""
			if j := strings.Index(name, `le="`); j >= 0 {
				k := strings.IndexByte(name[j+4:], '"')
				if k < 0 {
					continue // truncated label — skip like other malformed lines
				}
				le = name[j+4 : j+4+k]
			}
			name = name[:i] + "_le_" + le
		}
		out[name] = v
	}
	return out, sc.Err()
}

// fmtDur renders a seconds count as 1h02m03s.
func fmtDur(sec float64) string {
	return time.Duration(sec * float64(time.Second)).Truncate(time.Second).String()
}

// render draws one frame of the dashboard.
func render(w io.Writer, addr string, st streamd.Stats, m map[string]float64, slo *obs.SLOReport) {
	ready := "READY"
	if st.Draining {
		ready = "DRAINING"
	}
	fmt.Fprintf(w, "streamd %s    up %s    %s", addr, fmtDur(st.UptimeSec), ready)
	if st.EventsDropped > 0 {
		fmt.Fprintf(w, "    events-dropped %d", st.EventsDropped)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "workers %d    queue %d    cache %d entries\n\n", st.Workers, st.QueueDepth, st.CacheEntries)

	fmt.Fprintf(w, "jobs     accepted %-6d rejected %d full / %d draining    panics %d\n",
		st.Accepted, st.RejectedFull, st.RejectedDrain, st.Panics)
	var states []string
	for state := range st.JobsByState {
		states = append(states, state)
	}
	sort.Strings(states)
	fmt.Fprintf(w, "states  ")
	for _, state := range states {
		fmt.Fprintf(w, " %s=%d", state, st.JobsByState[state])
	}
	fmt.Fprintln(w)

	hitRate := 0.0
	if lookups := st.CacheHits + st.CacheMisses; lookups > 0 {
		hitRate = 100 * float64(st.CacheHits) / float64(lookups)
	}
	fmt.Fprintf(w, "cache    %d hits / %d misses (%.1f%% hit rate)    ledger %d entries\n\n",
		st.CacheHits, st.CacheMisses, hitRate, st.LedgerEntries)

	fmt.Fprintf(w, "%-22s %10s %10s %10s %10s\n", "latency (ms)", "p50", "p95", "p99", "count")
	for _, h := range []struct{ label, name string }{
		{"queue wait", "streamd_queue_wait_ms"},
		{"admission", "streamd_admission_ms"},
		{"run duration", "streamd_run_ms"},
	} {
		count, ok := m[h.name+"_count"]
		if !ok {
			fmt.Fprintf(w, "%-22s %10s %10s %10s %10s\n", h.label, "-", "-", "-", "0")
			continue
		}
		fmt.Fprintf(w, "%-22s %10g %10g %10g %10.0f\n",
			h.label, m[h.name+"_p50"], m[h.name+"_p95"], m[h.name+"_p99"], count)
	}

	if slo != nil {
		fmt.Fprintln(w)
		fmt.Fprintf(w, "%-22s", "slo")
		if len(slo.Objectives) > 0 {
			for _, ws := range slo.Objectives[0].Windows {
				fmt.Fprintf(w, " %10s %10s", "burn "+ws.Window, "sli "+ws.Window)
			}
		}
		fmt.Fprintf(w, " %12s\n", "budget-used")
		for _, st := range slo.Objectives {
			flag := ""
			if !st.Healthy {
				flag = "  BREACH"
			}
			fmt.Fprintf(w, "%-22s", st.Name)
			for _, ws := range st.Windows {
				partial := ""
				if ws.Partial {
					partial = "*"
				}
				fmt.Fprintf(w, " %10s %10s", fmt.Sprintf("%.2f%s", ws.BurnRate, partial), fmt.Sprintf("%.4f", ws.SLI))
			}
			fmt.Fprintf(w, " %11.1f%%%s\n", st.BudgetUsedPct, flag)
		}
		if !slo.Healthy {
			fmt.Fprintln(w, "SLO: error budget burning — see /sloz?format=text")
		}
	}
}

// writeSnapshotJSON emits one machine-readable snapshot: the /statz
// stats, the flattened /metricz samples and the /sloz report (null
// when the server predates the endpoint).
func writeSnapshotJSON(w io.Writer, st streamd.Stats, m map[string]float64, slo *obs.SLOReport) error {
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		Stats   streamd.Stats      `json:"stats"`
		Metrics map[string]float64 `json:"metrics"`
		SLO     *obs.SLOReport     `json:"slo"`
	}{st, m, slo})
}

func main() {
	addr := flag.String("addr", "http://localhost:8372", "streamd base URL")
	interval := flag.Duration("interval", time.Second, "poll interval")
	once := flag.Bool("once", false, "print one snapshot and exit (no screen control)")
	asJSON := flag.Bool("json", false, "with -once, emit the snapshot as one JSON object")
	flag.Parse()

	base := strings.TrimRight(*addr, "/")
	client := &http.Client{Timeout: 5 * time.Second}

	for {
		st, metrics, slo, err := scrape(client, base)
		if err != nil {
			fmt.Fprintf(os.Stderr, "streamtop: %v\n", err)
			if *once {
				os.Exit(1)
			}
			time.Sleep(*interval)
			continue
		}
		if *once {
			if *asJSON {
				if err := writeSnapshotJSON(os.Stdout, st, metrics, slo); err != nil {
					fmt.Fprintf(os.Stderr, "streamtop: %v\n", err)
					os.Exit(1)
				}
				return
			}
			render(os.Stdout, base, st, metrics, slo)
			return
		}
		// Home the cursor and clear to end of screen: repaint in place
		// without the flash a full clear causes.
		fmt.Print("\x1b[H\x1b[2J")
		render(os.Stdout, base, st, metrics, slo)
		fmt.Printf("\n(refreshing every %s, ctrl-c to quit)\n", *interval)
		time.Sleep(*interval)
	}
}
