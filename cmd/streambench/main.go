// Command streambench regenerates the figures of "Stream Programming
// on General-Purpose Processors" (MICRO 2005) on the simulated Pentium
// 4 testbed.
//
// Usage:
//
//	streambench -list
//	streambench -exp fig9
//	streambench -exp all -quick -parallel 8
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"streamgpp/internal/bench"
	"streamgpp/internal/fault"
	"streamgpp/internal/sim"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (fig5, fig6, fig8, fig9, fig11a..fig11d) or 'all'")
	quick := flag.Bool("quick", false, "shrink problem sizes for a fast smoke run")
	list := flag.Bool("list", false, "list experiments and exit")
	parallel := flag.Int("parallel", runtime.NumCPU(),
		"worker goroutines across experiments and table rows (output is byte-identical at any value)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	faultSpec := flag.String("fault", "", "fault injection spec: kind:rate[,kind:rate...] or all:rate")
	faultSeed := flag.Uint64("faultseed", 1, "fault schedule seed (same seed replays the identical fault trace)")
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "streambench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "streambench: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	if *parallel > 0 {
		bench.Parallelism = *parallel
	}

	// Fault injection shares one seeded injector across every machine
	// the experiments build. The draw order — and so the fault schedule
	// — is only deterministic when runs execute in a fixed order, so
	// injection forces the experiment runner sequential.
	var inj *fault.Injector
	if *faultSpec != "" {
		fcfg, err := fault.ParseSpec(*faultSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "streambench: %v\n", err)
			os.Exit(2)
		}
		fcfg.Seed = *faultSeed
		inj = fault.New(fcfg)
		sim.SetDefaultFaultInjector(inj)
		defer sim.SetDefaultFaultInjector(nil)
		bench.Parallelism = 1
	}

	m := sim.MustNew(sim.PentiumD8300())
	fmt.Println(m.Describe())
	fmt.Println()

	fail := func(id string, err error) {
		fmt.Fprintf(os.Stderr, "streambench: %s: %v\n", id, err)
		if inj != nil && inj.Total() > 0 {
			fmt.Fprintf(os.Stderr, "fault trace (replay with -faultseed %d):\n%s", *faultSeed, inj.TraceString())
		}
		os.Exit(1)
	}
	if *exp == "all" {
		if err := bench.RunAll(os.Stdout, *quick); err != nil {
			fail("all", err)
		}
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, ok := bench.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "streambench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			if err := e.Run(os.Stdout, *quick); err != nil {
				fail(e.ID, err)
			}
		}
	}

	if inj != nil {
		fmt.Printf("\nfault injection: %d faults fired over %d draws (seed %d)\n",
			inj.Total(), inj.Draws(), *faultSeed)
		for _, k := range fault.Kinds() {
			if n := inj.Injected(k); n > 0 {
				fmt.Printf("  %-18s %d\n", k, n)
			}
		}
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "streambench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "streambench: %v\n", err)
			os.Exit(1)
		}
	}
}
