// Command streambench regenerates the figures of "Stream Programming
// on General-Purpose Processors" (MICRO 2005) on the simulated Pentium
// 4 testbed.
//
// Usage:
//
//	streambench -list
//	streambench -exp fig9
//	streambench -exp all -quick
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"streamgpp/internal/bench"
	"streamgpp/internal/sim"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (fig5, fig6, fig8, fig9, fig11a..fig11d) or 'all'")
	quick := flag.Bool("quick", false, "shrink problem sizes for a fast smoke run")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	m := sim.MustNew(sim.PentiumD8300())
	fmt.Println(m.Describe())
	fmt.Println()

	run := func(e bench.Experiment) {
		if err := e.Run(os.Stdout, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "streambench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
	}
	if *exp == "all" {
		for _, e := range bench.Experiments() {
			run(e)
		}
		return
	}
	for _, id := range strings.Split(*exp, ",") {
		e, ok := bench.ByID(strings.TrimSpace(id))
		if !ok {
			fmt.Fprintf(os.Stderr, "streambench: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		run(e)
	}
}
