// Command streambench regenerates the figures of "Stream Programming
// on General-Purpose Processors" (MICRO 2005) on the simulated Pentium
// 4 testbed.
//
// Usage:
//
//	streambench -list
//	streambench -exp fig9
//	streambench -exp all -quick -parallel 8
//	streambench -exp quickstart -quick -ledger BENCH_history.jsonl
//	streambench -exp quickstart -quick -compare baseline.jsonl
//	streambench -validate BENCH_history.jsonl
//
// With -ledger, every experiment appends one JSONL entry — wall-clock,
// simulated cycles, metrics snapshot, config and commit — to the named
// run ledger. With -compare, the run's wall-clock medians are gated
// against a baseline ledger by the noise-aware regression gate; a
// confirmed regression renders a verdict table and exits non-zero.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"streamgpp/internal/bench"
	"streamgpp/internal/fault"
	"streamgpp/internal/obs"
	"streamgpp/internal/sim"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (fig5, fig6, fig8, fig9, fig11a..fig11d, stalls, quickstart) or 'all'")
	quick := flag.Bool("quick", false, "shrink problem sizes for a fast smoke run")
	list := flag.Bool("list", false, "list experiments and exit")
	parallel := flag.Int("parallel", runtime.NumCPU(),
		"worker goroutines across experiments and table rows (output is byte-identical at any value)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	faultSpec := flag.String("fault", "", "fault injection spec: kind:rate[,kind:rate...] or all:rate")
	faultSeed := flag.Uint64("faultseed", 1, "fault schedule seed (same seed replays the identical fault trace)")
	nofast := flag.Bool("nofast", false, "disable the bulk fast path (reference timing path; much slower)")
	ledgerPath := flag.String("ledger", "", "append one run-ledger JSONL entry per experiment to this file")
	compare := flag.String("compare", "", "baseline run-ledger JSONL: gate this run's wall-clock against it (exit 3 on regression)")
	repeat := flag.Int("repeat", 3, "timed repetitions per experiment in -ledger/-compare mode")
	validate := flag.String("validate", "", "validate the run-ledger file at this path and exit")
	whatif := flag.String("whatif", "",
		"what-if scenarios over the quickstart workload, e.g. 'ident,dram=0.5,kernel=1.25,strip=0.5,1ctx': predict each analytically on the frozen task DAG, re-run the simulator with the knob changed, and cross-check (exit 3 on disagreement)")
	slowdown := flag.Float64("slowdown", 1.0, "multiply recorded wall-clock by this factor (regression-gate self-test)")
	commit := flag.String("commit", "", "commit id to record in ledger entries (e.g. git describe --always)")
	flag.Parse()

	fatal := func(err error) {
		fmt.Fprintf(os.Stderr, "streambench: %v\n", err)
		os.Exit(1)
	}

	if *validate != "" {
		_, stats, err := obs.ReadLedgerStats(*validate)
		if err != nil {
			fatal(err)
		}
		if stats.TornTail {
			fmt.Printf("%s: warning: torn final line %d skipped (crashed writer)\n", *validate, stats.TornLine)
		}
		fmt.Printf("%s: %d ledger entries, schema v%d, all valid\n", *validate, stats.Entries, obs.LedgerSchema)
		return
	}

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		for _, e := range bench.ExtraExperiments() {
			fmt.Printf("%-10s %s  (not part of 'all')\n", e.ID, e.Title)
		}
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	if *parallel > 0 {
		bench.Parallelism = *parallel
	}
	if *nofast {
		sim.SetDefaultFastPath(false)
		defer sim.SetDefaultFastPath(true)
	}

	// Fault injection arms a per-row injector in the bench runner: every
	// table row derives its own seed from (-faultseed, row key), so the
	// fault schedule each row sees is independent of goroutine draw order
	// and the experiment runner keeps its full parallelism (PR 3 had to
	// force -parallel 1 here when a single global injector was shared).
	faultArmed := *faultSpec != ""
	if faultArmed {
		fcfg, err := fault.ParseSpec(*faultSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "streambench: %v\n", err)
			os.Exit(2)
		}
		fcfg.Seed = *faultSeed
		bench.SetFaultConfig(&fcfg)
		defer bench.SetFaultConfig(nil)
	}

	m := sim.MustNew(sim.PentiumD8300())
	fmt.Println(m.Describe())
	fmt.Println()

	fail := func(id string, err error) {
		fmt.Fprintf(os.Stderr, "streambench: %s: %v\n", id, err)
		if rep := bench.FaultReport(); rep != "" {
			fmt.Fprintf(os.Stderr, "fault state at failure (replay with -faultseed %d):\n%s", *faultSeed, rep)
		}
		os.Exit(1)
	}

	if *whatif != "" {
		runWhatIf(*whatif, *quick, *ledgerPath, *commit, m.Describe(), fatal)
		return
	}

	if *ledgerPath != "" || *compare != "" {
		runMeasured(measureOpts{
			exp: *exp, quick: *quick, repeat: *repeat, slowdown: *slowdown,
			ledger: *ledgerPath, compare: *compare, commit: *commit,
			machineDesc: m.Describe(), fail: fail, fatal: fatal,
		})
		return
	}

	if *exp == "all" {
		if err := bench.RunAll(os.Stdout, *quick); err != nil {
			fail("all", err)
		}
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, ok := bench.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "streambench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			if err := e.Run(os.Stdout, *quick); err != nil {
				fail(e.ID, err)
			}
		}
	}

	if faultArmed {
		if rep := bench.FaultReport(); rep != "" {
			fmt.Printf("\n%s", rep)
		} else {
			fmt.Printf("\nfault injection armed (base seed %d) but no experiment row drew\n", *faultSeed)
		}
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
	}
}

// runWhatIf is the -whatif mode: cross-checked counterfactuals over
// the quickstart workload, with one ledger entry per scenario when
// -ledger is given. A gated scenario whose analytical and empirical
// deltas disagree exits 3, like the regression gate.
func runWhatIf(spec string, quick bool, ledgerPath, commit, machineDesc string, fatal func(error)) {
	specs, err := bench.ParseWhatIf(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "streambench: %v\n", err)
		os.Exit(2)
	}
	t0 := time.Now()
	res, err := bench.RunWhatIf(os.Stdout, quick, specs)
	if err != nil {
		fatal(err)
	}
	wall := time.Since(t0).Nanoseconds()

	if ledgerPath != "" {
		for _, r := range res.Rows {
			verdict := "pass"
			switch {
			case !r.Gated:
				verdict = "info"
			case !r.Pass:
				verdict = "fail"
			}
			entry := obs.LedgerEntry{
				Schema:     obs.LedgerSchema,
				Time:       time.Now().UTC().Format(time.RFC3339),
				Experiment: "whatif/quickstart/" + r.Scenario,
				Config:     machineDesc,
				ConfigHash: obs.Hash(machineDesc, fmt.Sprintf("quick=%v", quick), r.Scenario),
				Commit:     commit,
				FastPath:   sim.DefaultFastPath(),
				Quick:      quick,
				WallNs:     wall,
				SimCycles:  r.Empirical,
				Source:     "streambench",
				Metrics: map[string]float64{
					"whatif.baseline_cycles":   float64(r.Baseline),
					"whatif.analytical_cycles": float64(r.Analytical),
					"whatif.empirical_cycles":  float64(r.Empirical),
					"whatif.analytical_delta":  r.AnalyticalDelta,
					"whatif.empirical_delta":   r.EmpiricalDelta,
					"whatif.diff":              r.Diff,
				},
				Extra: map[string]string{
					"whatif_scenario":  r.Scenario,
					"whatif_verdict":   verdict,
					"whatif_derived":   fmt.Sprintf("%v", r.Derived),
					"whatif_tolerance": fmt.Sprintf("%g", res.Tolerance),
				},
			}
			if err := obs.AppendLedger(ledgerPath, entry); err != nil {
				fatal(err)
			}
		}
		fmt.Printf("\nappended %d ledger entries to %s\n", len(res.Rows), ledgerPath)
	}

	if res.Failed > 0 {
		fmt.Fprintf(os.Stderr, "streambench: %d what-if scenario(s) disagree beyond the %.0f%% tolerance\n",
			res.Failed, 100*res.Tolerance)
		os.Exit(3)
	}
}

// measureOpts parameterises a -ledger/-compare run.
type measureOpts struct {
	exp         string
	quick       bool
	repeat      int
	slowdown    float64
	ledger      string
	compare     string
	commit      string
	machineDesc string
	fail        func(id string, err error)
	fatal       func(err error)
}

// selectExperiments resolves the -exp value to concrete experiments.
func selectExperiments(expFlag string) ([]bench.Experiment, error) {
	if expFlag == "all" {
		return bench.Experiments(), nil
	}
	var out []bench.Experiment
	for _, id := range strings.Split(expFlag, ",") {
		e, ok := bench.ByID(strings.TrimSpace(id))
		if !ok {
			return nil, fmt.Errorf("unknown experiment %q (use -list)", id)
		}
		out = append(out, e)
	}
	return out, nil
}

// runMeasured is the -ledger/-compare mode: each experiment runs
// repeat times under wall-clock timing with a shared metrics registry,
// producing ledger entries that are appended (-ledger) and/or gated
// against a baseline (-compare).
func runMeasured(o measureOpts) {
	exps, err := selectExperiments(o.exp)
	if err != nil {
		fmt.Fprintf(os.Stderr, "streambench: %v\n", err)
		os.Exit(2)
	}
	if o.repeat < 1 {
		o.repeat = 1
	}

	// One registry for all machines: per-experiment metrics come out as
	// snapshot deltas, which needs the experiments to run sequentially.
	reg := obs.NewRegistry()
	sim.SetDefaultObserver(reg)
	defer sim.SetDefaultObserver(nil)

	var entries []obs.LedgerEntry
	for _, e := range exps {
		// One untimed warm-up run per experiment keeps one-off costs —
		// page faults, allocator growth, branch warm-up — out of the
		// timed samples; without it the baseline session reads slower
		// than any later session and the gate's thresholds skew.
		if err := e.Run(io.Discard, o.quick); err != nil {
			o.fail(e.ID, err)
		}
		for rep := 0; rep < o.repeat; rep++ {
			var buf bytes.Buffer
			w := io.Writer(&buf)
			if rep == 0 {
				// The paper tables print once; repetitions are timing-only
				// (their output is byte-identical by construction).
				w = io.MultiWriter(os.Stdout, &buf)
			}
			pre := reg.Snapshot()
			t0 := time.Now()
			runErr := e.Run(w, o.quick)
			wall := time.Since(t0).Nanoseconds()
			if runErr != nil {
				o.fail(e.ID, runErr)
			}
			delta := reg.Snapshot().Delta(pre)
			wall = int64(float64(wall) * o.slowdown)
			simCycles := uint64(delta["sim.run_cycles_total"].Value)
			entry := obs.LedgerEntry{
				Schema:     obs.LedgerSchema,
				Time:       time.Now().UTC().Format(time.RFC3339),
				Experiment: e.ID,
				Config:     o.machineDesc,
				ConfigHash: obs.Hash(o.machineDesc, fmt.Sprintf("quick=%v", o.quick)),
				Commit:     o.commit,
				FastPath:   sim.DefaultFastPath(),
				Quick:      o.quick,
				Parallel:   bench.Parallelism,
				WallNs:     wall,
				SimCycles:  simCycles,
				OutputHash: obs.Hash(buf.String()),
				Metrics:    obs.FlattenSnapshot(delta),
				Source:     "streambench",
			}
			if wall > 0 {
				entry.SimCyclesPerSec = float64(simCycles) / (float64(wall) / 1e9)
			}
			entries = append(entries, entry)
		}
	}

	if o.ledger != "" {
		for _, entry := range entries {
			if err := obs.AppendLedger(o.ledger, entry); err != nil {
				o.fatal(err)
			}
		}
		fmt.Printf("\nappended %d ledger entries to %s\n", len(entries), o.ledger)
	}

	if o.compare != "" {
		baseline, err := obs.ReadLedger(o.compare)
		if err != nil {
			o.fatal(err)
		}
		rep := obs.CompareLedgers(baseline, entries, obs.DefaultGateOptions())
		fmt.Printf("\nregression gate vs %s (%d baseline entries, %d current runs):\n",
			o.compare, len(baseline), len(entries))
		rep.Render(os.Stdout)
		if rep.Regressed {
			fmt.Fprintln(os.Stderr, "streambench: performance regression detected")
			os.Exit(3)
		}
		fmt.Println("no regression detected")
	}
}
