// Command sdfdump renders the Synchronous Data Flow graphs of the
// bundled stream applications (the diagrams of Figs. 3 and 10), the
// compiled strip plans, and a live snapshot of the distributed work
// queue mid-execution (Fig. 7).
//
// Usage:
//
//	sdfdump -app fem            # text rendering + strip plan
//	sdfdump -app cdp -dot       # Graphviz DOT on stdout
//	sdfdump -queue              # Fig. 7 work-queue snapshot
package main

import (
	"flag"
	"fmt"
	"os"

	"streamgpp/internal/advisor"
	"streamgpp/internal/apps/cdp"
	"streamgpp/internal/apps/fem"
	"streamgpp/internal/apps/neo"
	"streamgpp/internal/apps/spas"
	"streamgpp/internal/compiler"
	"streamgpp/internal/sdf"
	"streamgpp/internal/sim"
	"streamgpp/internal/svm"
	"streamgpp/internal/wq"
)

func buildGraph(app string) (*sdf.Graph, *sim.Machine, error) {
	switch app {
	case "fem":
		inst, err := fem.NewInstance(fem.EulerLin)
		if err != nil {
			return nil, nil, err
		}
		return inst.Graph(), inst.M, nil
	case "cdp":
		inst, err := cdp.NewInstance(cdp.Grid6n8192)
		if err != nil {
			return nil, nil, err
		}
		return inst.Graph(), inst.M, nil
	case "neo":
		inst, err := neo.NewInstance(neo.Params{Elements: 32768})
		if err != nil {
			return nil, nil, err
		}
		return inst.Graph(), inst.M, nil
	case "spas":
		inst, err := spas.NewInstance(spas.Params{Rows: 16000, NNZPerRow: spas.PaperNNZPerRow})
		if err != nil {
			return nil, nil, err
		}
		return inst.Graph(), inst.M, nil
	}
	return nil, nil, fmt.Errorf("unknown app %q (fem, cdp, neo, spas)", app)
}

// queueDemo reconstructs the Fig. 7 scenario: the two-kernel example
// program's tasks flowing through the distributed work queue with the
// memory thread running ahead of a slow kernel.
func queueDemo() {
	q := wq.New(wq.DefaultCapacity)
	nop := func(*sim.CPU) {}
	tasks := []wq.Task{
		{ID: 0, Name: "a0", Kind: wq.Gather, Run: nop},
		{ID: 1, Name: "b0", Kind: wq.Gather, Run: nop},
		{ID: 2, Name: "c0", Kind: wq.Gather, Run: nop},
		{ID: 3, Name: "1_0", Kind: wq.KernelRun, Deps: []int{0, 1, 2}, Run: nop},
		{ID: 4, Name: "x0", Kind: wq.Gather, Run: nop},
		{ID: 5, Name: "2_0", Kind: wq.KernelRun, Deps: []int{3, 4}, Run: nop},
		{ID: 6, Name: "y0", Kind: wq.Scatter, Deps: []int{5}, Run: nop},
		{ID: 7, Name: "a1", Kind: wq.Gather, Run: nop},
		{ID: 8, Name: "b1", Kind: wq.Gather, Run: nop},
	}
	for _, t := range tasks {
		if err := q.Enqueue(t); err != nil {
			panic(err)
		}
	}
	// The memory thread drains the gathers of strip 0 and starts on
	// strip 1; kernel1 completes; kernel2 is claimed and still running,
	// so the scatter Sy0 stays blocked — the Fig. 7 moment.
	for i := 0; i < 4; i++ { // Ga0 Gb0 Gc0 Gx0
		slot, _, _ := q.NextReady(wq.MemQueue)
		q.Complete(slot)
	}
	slot, _, _ := q.NextReady(wq.ComputeQueue) // K1_0
	q.Complete(slot)
	q.NextReady(wq.ComputeQueue)          // K2_0 claimed, still executing
	slot, _, _ = q.NextReady(wq.MemQueue) // Ga1
	q.Complete(slot)
	q.NextReady(wq.MemQueue) // Gb1 claimed

	fmt.Println("Fig. 7 snapshot (* = executing, ! = blocked on dependencies):")
	fmt.Print(q.Snapshot())
}

func main() {
	app := flag.String("app", "fem", "application graph to dump (fem, cdp, neo, spas)")
	dot := flag.Bool("dot", false, "emit Graphviz DOT instead of text")
	queue := flag.Bool("queue", false, "show the Fig. 7 distributed work-queue snapshot and exit")
	advise := flag.Bool("advise", false, "run the §V-A streaming-suitability analysis on the graph")
	flag.Parse()

	if *queue {
		queueDemo()
		return
	}

	g, m, err := buildGraph(*app)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdfdump:", err)
		os.Exit(1)
	}
	if *dot {
		fmt.Print(g.Dot())
		return
	}
	fmt.Print(g.String())
	fmt.Printf("producer-consumer edges: %d (%.1f KB of writeback avoided per pass)\n",
		len(g.ProducerConsumerEdges()), float64(g.SavedWritebackBytes())/1024)

	prog, err := compiler.Compile(g, compiler.DefaultOptions(svm.DefaultSRF(m)))
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdfdump: compile:", err)
		os.Exit(1)
	}
	fmt.Println()
	fmt.Print(prog.Summary())

	if *advise {
		rep, err := advisor.Analyze(g, sim.PentiumD8300())
		if err != nil {
			fmt.Fprintln(os.Stderr, "sdfdump: advise:", err)
			os.Exit(1)
		}
		fmt.Println()
		rep.Render(os.Stdout)
	}
}
