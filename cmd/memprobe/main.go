// Command memprobe characterises the simulated machine's memory
// system the way §III-A does: gather/scatter bandwidth as a function
// of record size, access pattern and cacheability hints (Fig. 5), for
// arbitrary parameter combinations.
//
// Usage:
//
//	memprobe                      # the full Fig. 5 sweep
//	memprobe -record 64 -random -nt
//	memprobe -record 16 -write -total 33554432
package main

import (
	"flag"
	"fmt"
	"os"

	"streamgpp/internal/bench"
	"streamgpp/internal/sim"
)

func main() {
	record := flag.Int("record", 0, "record size in bytes (0 = sweep 4..128)")
	random := flag.Bool("random", false, "random (indexed) access instead of sequential")
	write := flag.Bool("write", false, "scatter (stores) instead of gather (loads)")
	nt := flag.Bool("nt", false, "use non-temporal hints")
	total := flag.Uint64("total", 16<<20, "array footprint in bytes")
	flag.Parse()

	cfg := sim.PentiumD8300()
	fmt.Printf("machine: %s\n", sim.MustNew(cfg).Describe())

	if *record == 0 {
		if err := bench.Fig5(os.Stdout, false); err != nil {
			fmt.Fprintln(os.Stderr, "memprobe:", err)
			os.Exit(1)
		}
		return
	}
	p := bench.BandwidthProbe{
		RecordBytes: *record,
		Random:      *random,
		Write:       *write,
		NonTemporal: *nt,
		TotalBytes:  *total,
	}
	kind := "gather"
	if *write {
		kind = "scatter"
	}
	pattern := "sequential"
	if *random {
		pattern = "random"
	}
	hint := "plain"
	if *nt {
		hint = "non-temporal"
	}
	fmt.Printf("%s %s, %d-byte records, %s hints: %.3f GB/s useful\n",
		pattern, kind, *record, hint, p.Run())
}
