package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"streamgpp/internal/apps/micro"
	"streamgpp/internal/exec"
	"streamgpp/internal/obs"
	"streamgpp/internal/sim"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// traceJSON mirrors the trace_event schema enough to audit a trace.
type traceJSON struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

// quickstartTrace runs the quickstart app the way the CLI does —
// registry and timeline attached via the sim defaults — and returns
// the Perfetto export.
func quickstartTrace(t *testing.T) []byte {
	t.Helper()
	reg := obs.NewRegistry()
	sim.SetDefaultObserver(reg)
	defer sim.SetDefaultObserver(nil)
	tl := obs.NewTimeline(obs.DefaultSampleInterval)
	sim.SetDefaultTimeline(tl)
	defer sim.SetDefaultTimeline(nil)

	tr := &exec.Trace{}
	ecfg := exec.Defaults()
	ecfg.Trace = tr
	res, err := micro.RunQuickstart(micro.Params{N: 60000, Comp: 1, Seed: 1}, ecfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WritePerfettoTimeline(&buf, res.Name, sim.PentiumD8300().FreqHz/1e6, tl); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestQuickstartTraceRoundTrip is the golden-file test of the
// streamtrace export path: the quickstart trace must parse back through
// encoding/json, its counter tracks must match testdata/
// quickstart_tracks.golden, and every counter track's timestamps must
// be strictly monotone (Perfetto silently mis-renders unsorted counter
// samples). Run with -update to regenerate the golden file.
func TestQuickstartTraceRoundTrip(t *testing.T) {
	raw := quickstartTrace(t)

	var parsed traceJSON
	if err := json.Unmarshal(raw, &parsed); err != nil {
		t.Fatalf("trace does not round-trip through json.Unmarshal: %v", err)
	}
	if len(parsed.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}

	counterTs := map[string][]float64{}
	sliceCount := 0
	for _, e := range parsed.TraceEvents {
		switch e.Ph {
		case "C":
			counterTs[e.Name] = append(counterTs[e.Name], e.Ts)
		case "X":
			sliceCount++
		}
	}
	if sliceCount == 0 {
		t.Error("trace has no task slices")
	}
	if len(counterTs) < 4 {
		t.Errorf("trace has %d counter tracks, want >= 4: %v", len(counterTs), counterNames(counterTs))
	}
	for name, ts := range counterTs {
		for i := 1; i < len(ts); i++ {
			if ts[i] <= ts[i-1] {
				t.Errorf("counter %q: non-monotone timestamps %v <= %v at index %d",
					name, ts[i], ts[i-1], i)
				break
			}
		}
	}

	got := strings.Join(counterNames(counterTs), "\n") + "\n"
	golden := filepath.Join("testdata", "quickstart_tracks.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("counter track names changed:\ngot:\n%s\nwant:\n%s\n(re-run with -update if intended)", got, want)
	}
}

func counterNames(m map[string][]float64) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// TestQuickstartTraceWithoutTimeline checks the sampling-off export
// still parses and keeps its original single counter track — the
// compatibility mode the pre-timeline tooling expects.
func TestQuickstartTraceWithoutTimeline(t *testing.T) {
	tr := &exec.Trace{}
	ecfg := exec.Defaults()
	ecfg.Trace = tr
	res, err := micro.RunQuickstart(micro.Params{N: 30000, Comp: 1, Seed: 1}, ecfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WritePerfetto(&buf, res.Name, 0); err != nil {
		t.Fatal(err)
	}
	var parsed traceJSON
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, e := range parsed.TraceEvents {
		if e.Ph == "C" {
			names[e.Name] = true
		}
	}
	if len(names) != 1 || !names["wq depth"] {
		t.Errorf("sampling-off trace counter tracks = %v, want just %q", names, "wq depth")
	}
}

// TestAppsListIncludesQuickstart pins the CLI surface: the app table
// must offer the quickstart workload the docs reference.
func TestAppsListIncludesQuickstart(t *testing.T) {
	r, ok := apps["quickstart"]
	if !ok {
		t.Fatal("apps table has no quickstart entry")
	}
	if r.micro != "QUICKSTART" {
		t.Fatalf("quickstart app runs %q, want QUICKSTART", r.micro)
	}
	if _, ok := micro.Runners[r.micro]; !ok {
		t.Fatalf("micro.Runners has no %q", r.micro)
	}
	_ = fmt.Sprintf("%v", r.desc)
}
