// Command streamtrace runs one application or micro-benchmark under
// both programming styles and reports where the stream version's
// cycles went: a Perfetto-loadable trace of every task on every
// hardware context, a text Gantt chart, and a metrics report with
// stall attribution.
//
// Usage:
//
//	streamtrace -list
//	streamtrace -app gatscat -n 200000 -comp 1 -o trace.json
//	streamtrace -app ldst -nodouble        # serialised-pipeline ablation
//	streamtrace -app fem
//	streamtrace -events streamd.jsonl.events   # pretty-print a streamd event log
//	streamtrace -trend BENCH_history.jsonl     # per-experiment ledger trends with anomaly flags
//
// Open the JSON at https://ui.perfetto.dev (or chrome://tracing): track
// ctx0 is the control+compute thread, ctx1 the memory thread, with a
// work-queue depth counter underneath.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"streamgpp/internal/advisor"
	"streamgpp/internal/apps/cdp"
	"streamgpp/internal/apps/fem"
	"streamgpp/internal/apps/micro"
	"streamgpp/internal/apps/neo"
	"streamgpp/internal/apps/spas"
	"streamgpp/internal/covreport"
	"streamgpp/internal/critpath"
	"streamgpp/internal/exec"
	"streamgpp/internal/fault"
	"streamgpp/internal/obs"
	"streamgpp/internal/sdf"
	"streamgpp/internal/sim"
	"streamgpp/internal/streamd"
)

// printEvents renders a streamd lifecycle event log as a table, one
// row per event, with per-event millisecond offsets from server start.
// A torn final line — the crash artifact the log's readers tolerate —
// is noted, not fatal.
func printEvents(w io.Writer, path string) error {
	events, stats, err := streamd.ReadEvents(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-5s %12s  %-10s  %-8s  %-13s  %-9s  %-5s  %s\n",
		"SEQ", "T_MS", "JOB", "TYPE", "APP", "STATE", "CACHE", "DETAIL")
	for _, e := range events {
		var detail []string
		if e.Retries > 0 {
			detail = append(detail, fmt.Sprintf("retries=%d", e.Retries))
		}
		if e.Error != nil {
			detail = append(detail, e.Error.Message)
		}
		fmt.Fprintf(w, "%-5d %12.3f  %-10s  %-8s  %-13s  %-9s  %-5s  %s\n",
			e.Seq, float64(e.TNs)/1e6, e.Job, e.Type, e.App, e.State, e.Cache,
			strings.Join(detail, " "))
	}
	fmt.Fprintf(w, "%d events over %d jobs\n", stats.Events, stats.Jobs)
	if stats.TornTail {
		fmt.Fprintf(w, "note: torn final line %d skipped (writer killed mid-append; repaired on next streamd start)\n", stats.TornLine)
	}
	return nil
}

// printTrend rolls a run ledger up into per-experiment trend rows —
// wall time, simulated throughput and fast-path coverage against
// their run history — flagging the latest run when it sits outside
// the same robust band CompareLedgers uses (MAD-scaled, with a
// relative floor so quiet histories don't alarm on noise).
func printTrend(w io.Writer, path string, asJSON bool) error {
	entries, err := obs.ReadLedger(path)
	if err != nil {
		return err
	}
	rows := obs.TrendReport(entries, obs.DefaultTrendOptions())
	if asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(rows)
	}
	obs.RenderTrend(w, rows)
	return nil
}

// mergeMetrics folds extra flat metric keys into a flattened snapshot.
func mergeMetrics(m, extra map[string]float64) map[string]float64 {
	if m == nil {
		m = map[string]float64{}
	}
	for k, v := range extra {
		m[k] = v
	}
	return m
}

// runner executes one app in both styles and returns the comparison
// plus the stream version's dataflow graph (for advisor calibration).
type runner struct {
	desc  string
	micro string // micro.Runners key, or "" for a full application
	run   func(p micro.Params, ecfg exec.Config) (string, exec.Result, exec.Result, *sdf.Graph, error)
}

func microRunner(key, desc string) runner {
	return runner{desc: desc, micro: key,
		run: func(p micro.Params, ecfg exec.Config) (string, exec.Result, exec.Result, *sdf.Graph, error) {
			r, err := micro.Runners[key](p, ecfg)
			return r.Name, r.Regular, r.Stream, r.Graph, err
		}}
}

var apps = map[string]runner{
	"quickstart": microRunner("QUICKSTART", "the documentation's worked example (axpy-style loop)"),
	"ldst":       microRunner("LD-ST-COMP", "sequential load/compute/store micro-benchmark"),
	"gatscat":    microRunner("GAT-SCAT-COMP", "random gather/compute/scatter micro-benchmark"),
	"prodcon":    microRunner("PROD-CON", "producer-consumer locality micro-benchmark"),
	"fem": {desc: "streamFEM, Euler linear elements",
		run: func(_ micro.Params, ecfg exec.Config) (string, exec.Result, exec.Result, *sdf.Graph, error) {
			r, err := fem.Run(fem.EulerLin, ecfg)
			return "streamFEM " + r.Params.Name(), r.Regular, r.Stream, r.Graph, err
		}},
	"cdp": {desc: "streamCDP blast-wave step",
		run: func(_ micro.Params, ecfg exec.Config) (string, exec.Result, exec.Result, *sdf.Graph, error) {
			r, err := cdp.Run(cdp.Grid4n4096, ecfg)
			return "streamCDP " + r.Params.Name(), r.Regular, r.Stream, r.Graph, err
		}},
	"neo": {desc: "neo-hookean finite elements",
		run: func(p micro.Params, ecfg exec.Config) (string, exec.Result, exec.Result, *sdf.Graph, error) {
			r, err := neo.Run(neo.Params{Elements: 8192, Seed: p.Seed}, ecfg)
			return "neo-hookean", r.Regular, r.Stream, r.Graph, err
		}},
	"spas": {desc: "streamSPAS sparse matrix-vector product",
		run: func(p micro.Params, ecfg exec.Config) (string, exec.Result, exec.Result, *sdf.Graph, error) {
			r, err := spas.Run(spas.Params{Rows: 8192, NNZPerRow: spas.PaperNNZPerRow, Seed: p.Seed}, ecfg)
			return "streamSPAS", r.Regular, r.Stream, r.Graph, err
		}},
}

func main() {
	app := flag.String("app", "gatscat", "application: quickstart, ldst, gatscat, prodcon, fem, cdp, neo, spas")
	n := flag.Int("n", 200000, "elements per array (micro-benchmarks)")
	comp := flag.Int("comp", 1, "COMP knob (micro-benchmarks)")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("o", "", "write Perfetto trace_event JSON to this file")
	nodouble := flag.Bool("nodouble", false, "disable double buffering (micro-benchmarks; serialises the pipeline)")
	width := flag.Int("width", 100, "Gantt chart width in columns")
	list := flag.Bool("list", false, "list applications and exit")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	faultSpec := flag.String("fault", "", "fault injection spec: kind:rate[,kind:rate...] (kinds: "+
		"latency_spike, dropped_wakeup, dropped_dep_clear, enqueue_full, kernel_fault, poisoned_strip; or all:rate)")
	faultSeed := flag.Uint64("faultseed", 1, "fault schedule seed (same seed replays the identical fault trace)")
	sample := flag.Uint64("sample", obs.DefaultSampleInterval,
		"timeline sampling window in simulated cycles (0 disables the timeline sampler)")
	ledgerPath := flag.String("ledger", "", "append this run's summary as one JSONL entry to the run ledger at this path")
	critflag := flag.Bool("critpath", false,
		"reconstruct the stream run's task DAG and report its exact critical path, plus the advisor calibration against it")
	topk := flag.Int("topk", 5, "longest individual critical-path segments to list with -critpath")
	jsonOut := flag.Bool("json", false,
		"emit one machine-readable JSON object (stall report + critical-path summary, ledger flatten conventions) instead of the text report")
	covflag := flag.Bool("coverage", false,
		"report fast-path coverage (which accesses the bulk fast path served, and why the rest bailed) and per-level bandwidth attribution")
	topbails := flag.Int("topbails", 0,
		"with -coverage, also rank the top N bail reasons by estimated lost cycles (bails × mean per-access cost)")
	eventsPath := flag.String("events", "",
		"pretty-print the streamd job lifecycle event log (JSONL) at this path and exit")
	trendPath := flag.String("trend", "",
		"report per-experiment trends over the run ledger (JSONL) at this path and exit (honours -json)")
	flag.Parse()

	if *eventsPath != "" {
		if err := printEvents(os.Stdout, *eventsPath); err != nil {
			fmt.Fprintf(os.Stderr, "streamtrace: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *trendPath != "" {
		if err := printTrend(os.Stdout, *trendPath, *jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "streamtrace: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		var names []string
		for name := range apps {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("%-8s %s\n", name, apps[name].desc)
		}
		return
	}

	r, ok := apps[*app]
	if !ok {
		fmt.Fprintf(os.Stderr, "streamtrace: unknown app %q (use -list)\n", *app)
		os.Exit(2)
	}
	if *nodouble && r.micro == "" {
		fmt.Fprintln(os.Stderr, "streamtrace: -nodouble only applies to the micro-benchmarks")
		os.Exit(2)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "streamtrace: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "streamtrace: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "streamtrace: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "streamtrace: %v\n", err)
			}
		}()
	}

	// Observe every machine the app builds; only the stream run touches
	// the SRF, the work queue and the bulk ops, so the registry reads as
	// the stream version's story.
	reg := obs.NewRegistry()
	sim.SetDefaultObserver(reg)
	defer sim.SetDefaultObserver(nil)

	// The timeline rides the same default-attachment mechanism: only
	// stream-side activity samples into it (bulk memory pipes, SRF, the
	// executors), so the regular baseline leaves no points and the
	// series stay monotone in the stream machine's virtual time.
	var tl *obs.Timeline
	if *sample > 0 {
		tl = obs.NewTimeline(*sample)
		sim.SetDefaultTimeline(tl)
		defer sim.SetDefaultTimeline(nil)
	}

	// Fault injection: every machine the app builds shares one seeded
	// injector, so the run's fault schedule replays from -faultseed.
	var inj *fault.Injector
	if *faultSpec != "" {
		fcfg, err := fault.ParseSpec(*faultSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "streamtrace: %v\n", err)
			os.Exit(2)
		}
		fcfg.Seed = *faultSeed
		inj = fault.New(fcfg)
		sim.SetDefaultFaultInjector(inj)
		defer sim.SetDefaultFaultInjector(nil)
	}

	tr := &exec.Trace{}
	ecfg := exec.Defaults()
	ecfg.Trace = tr
	p := micro.Params{N: *n, Comp: *comp, Seed: *seed, NoDoubleBuffer: *nodouble}

	t0 := time.Now()
	name, regular, stream, graph, err := r.run(p, ecfg)
	wallNs := time.Since(t0).Nanoseconds()
	if err != nil {
		// A *RunError renders the failing task, strip, phase, cycle and
		// any queue diagnosis; the fault trace names what was injected.
		fmt.Fprintf(os.Stderr, "streamtrace: %s: %v\n", *app, err)
		if inj != nil && inj.Total() > 0 {
			fmt.Fprintf(os.Stderr, "fault trace (replay with -faultseed %d):\n%s", *faultSeed, inj.TraceString())
		}
		os.Exit(1)
	}

	// The critical path is reconstructed from the task trace whenever
	// anything downstream wants it: the -critpath report, the -json
	// summary, the ledger entry's critpath metrics, or the Perfetto
	// export's highlighted track.
	var cpath *critpath.Path
	var cgraph *critpath.Graph
	if *critflag || *jsonOut || *ledgerPath != "" || *out != "" {
		cg, err := critpath.Build(tr, stream.Cycles)
		if err != nil {
			fmt.Fprintf(os.Stderr, "streamtrace: critical path: %v\n", err)
			os.Exit(1)
		}
		cgraph = cg
		cpath = cg.CriticalPath()
	}

	// calibration compares the advisor's static estimate with the
	// measured run. The metrics registry observed both styles, but only
	// the stream run drives the bulk operations, so the svm payload
	// counters read as stream-only.
	var calib *advisor.Calibration
	if cpath != nil && graph != nil {
		rep, aerr := advisor.Analyze(graph, sim.PentiumD8300())
		if aerr != nil {
			fmt.Fprintf(os.Stderr, "streamtrace: advisor: %v\n", aerr)
			os.Exit(1)
		}
		by := cpath.ByKind()
		// The advisor predicts one pass over the graph; multi-step apps
		// (streamFEM timesteps, streamCDP solver rounds) execute the
		// same schedule Rounds times, so the whole-run payload counters
		// are normalised to per-round before comparing. Rounds are
		// homogeneous, so the division is exact and the ratio must
		// still come out 1.0.
		rounds := uint64(cgraph.Rounds)
		calib = rep.Calibrate(advisor.Measured{
			GatherBytes:  reg.Counter("svm.gather.array_bytes").Value() / rounds,
			ScatterBytes: reg.Counter("svm.scatter.array_bytes").Value() / rounds,
			PathGather:   by[critpath.SegGather],
			PathKernel:   by[critpath.SegKernel],
			PathScatter:  by[critpath.SegScatter],
			PathWait:     by[critpath.SegDepWait] + by[critpath.SegQueueWait] + by[critpath.SegRecovery],
			PathLength:   cpath.Length,
		})
	}

	flat := obs.FlattenSnapshot(reg.Snapshot())
	var cov *covreport.Report
	if *covflag || *jsonOut || *topbails > 0 {
		c := covreport.New(flat, stream.Cycles, sim.PentiumD8300())
		cov = &c
		if cpath != nil && cov.DominantBail != "" {
			// Dep-wait segments name why the work they waited on was
			// slow, in both the text report and the Perfetto export.
			cpath.AnnotateDepWaits(cov.DominantBail)
		}
	}

	if *jsonOut {
		report := struct {
			App               string               `json:"app"`
			Name              string               `json:"name"`
			RegularCycles     uint64               `json:"regular_cycles"`
			StreamCycles      uint64               `json:"stream_cycles"`
			Speedup           float64              `json:"speedup"`
			OverlapEfficiency float64              `json:"overlap_efficiency"`
			Stalls            exec.StallReport     `json:"stalls"`
			Critpath          map[string]float64   `json:"critpath"`
			CritpathBound     string               `json:"critpath_bound"`
			CritpathByTask    map[string]uint64    `json:"critpath_by_task"`
			Calibration       *advisor.Calibration `json:"calibration,omitempty"`
			Coverage          *covreport.Report    `json:"coverage,omitempty"`
			Metrics           map[string]float64   `json:"metrics"`
		}{
			App: *app, Name: name,
			RegularCycles: regular.Cycles, StreamCycles: stream.Cycles,
			Speedup:           exec.Speedup(regular, stream),
			OverlapEfficiency: tr.OverlapEfficiency(),
			Stalls:            exec.NewStallReport(stream),
			Critpath:          cpath.Flatten(),
			CritpathBound:     cpath.Bound(),
			CritpathByTask:    cpath.ByTask(),
			Calibration:       calib,
			Coverage:          cov,
			Metrics:           flat,
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintf(os.Stderr, "streamtrace: %v\n", err)
			os.Exit(1)
		}
	} else {
		fmt.Printf("%s\n", name)
		fmt.Printf("  regular: %12d cycles\n", regular.Cycles)
		fmt.Printf("  stream:  %12d cycles   (speedup %.2fx)\n",
			stream.Cycles, exec.Speedup(regular, stream))
		fmt.Printf("  gather/kernel overlap efficiency: %.2f\n\n", tr.OverlapEfficiency())

		fmt.Println("Stream timeline:")
		tr.Gantt(os.Stdout, *width)
		fmt.Println()
		tr.Summary(os.Stdout)
		fmt.Println()

		fmt.Println("Stall attribution (stream run):")
		exec.NewStallReport(stream).Render(os.Stdout)
		fmt.Println()

		if *critflag {
			fmt.Println("Critical path (stream run):")
			cpath.Render(os.Stdout, *topk)
			fmt.Println()
			if calib != nil {
				fmt.Println("Advisor calibration (static estimate vs this run):")
				calib.Render(os.Stdout)
				fmt.Println()
			}
		}

		if cov != nil {
			fmt.Println("Fast-path coverage and bandwidth (stream run):")
			cov.Render(os.Stdout)
			if *topbails > 0 {
				cov.RenderTopBails(os.Stdout, *topbails)
			}
			fmt.Println()
		}

		if inj != nil {
			fmt.Println("Fault injection:")
			fmt.Printf("  %s\n", stream.Recovery)
			if inj.Total() > 0 {
				fmt.Printf("  trace (replay with -faultseed %d):\n", *faultSeed)
				for _, line := range strings.Split(strings.TrimRight(inj.TraceString(), "\n"), "\n") {
					fmt.Printf("    %s\n", line)
				}
			}
			fmt.Println()
		}

		if tl != nil {
			fmt.Println("Timeline (cycle-windowed samples, stream run):")
			tl.Render(os.Stdout)
			fmt.Println()
		}

		fmt.Println("Metrics:")
		reg.Render(os.Stdout)
	}

	if *ledgerPath != "" {
		simCycles := regular.Cycles + stream.Cycles
		entry := obs.LedgerEntry{
			Schema:     obs.LedgerSchema,
			Time:       time.Now().UTC().Format(time.RFC3339),
			Experiment: "streamtrace/" + *app,
			Config:     fmt.Sprintf("n=%d comp=%d seed=%d nodouble=%v", *n, *comp, *seed, *nodouble),
			ConfigHash: obs.Hash(fmt.Sprintf("%d/%d/%d/%v", *n, *comp, *seed, *nodouble)),
			FastPath:   sim.DefaultFastPath(),
			WallNs:     wallNs,
			SimCycles:  simCycles,
			Metrics:    mergeMetrics(obs.FlattenSnapshot(reg.Snapshot()), cpath.Flatten()),
			Recovery: map[string]uint64{
				"faults_injected":   stream.Recovery.FaultsInjected,
				"retries":           stream.Recovery.Retries,
				"scrubbed_deps":     stream.Recovery.ScrubbedDeps,
				"wakeup_timeouts":   stream.Recovery.WakeupTimeouts,
				"watchdog_timeouts": stream.Recovery.WatchdogTimeouts,
			},
			Source: "streamtrace",
		}
		if wallNs > 0 {
			entry.SimCyclesPerSec = float64(simCycles) / (float64(wallNs) / 1e9)
		}
		if inj != nil {
			entry.FaultTraceHash = obs.Hash(inj.TraceString())
		}
		if err := obs.AppendLedger(*ledgerPath, entry); err != nil {
			fmt.Fprintf(os.Stderr, "streamtrace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nappended ledger entry to %s\n", *ledgerPath)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "streamtrace: %v\n", err)
			os.Exit(1)
		}
		cyclesPerUsec := sim.PentiumD8300().FreqHz / 1e6
		// The critical path renders as its own highlighted track above
		// the per-context tracks, with flow arrows joining dependent
		// tasks across contexts.
		tracks := map[int]string{critpath.PerfettoTrack: critpath.PerfettoTrackName}
		if err := tr.WritePerfettoExtra(f, name, cyclesPerUsec, tl, tracks, cpath.Spans(critpath.PerfettoTrack)); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "streamtrace: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "streamtrace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s — open at https://ui.perfetto.dev\n", *out)
	}
}
