package cluster

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPartitionCoversExactly(t *testing.T) {
	f := func(rawN uint16, rawK uint8) bool {
		n := int(rawN)%10000 + 1
		k := int(rawK)%8 + 1
		if n < k {
			n = k
		}
		shards, err := Partition(n, k)
		if err != nil {
			return false
		}
		covered := 0
		prev := 0
		for i, s := range shards {
			if s.Lo != prev || s.Hi <= s.Lo || s.Elements != s.Hi-s.Lo || s.Node != i {
				return false
			}
			covered += s.Elements
			prev = s.Hi
		}
		return covered == n && prev == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionBalance(t *testing.T) {
	shards, err := Partition(103, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range shards {
		if s.Elements < 25 || s.Elements > 26 {
			t.Fatalf("imbalanced shard %+v", s)
		}
	}
}

func TestPartitionErrors(t *testing.T) {
	if _, err := Partition(10, 0); err == nil {
		t.Error("0 nodes accepted")
	}
	if _, err := Partition(3, 4); err == nil {
		t.Error("more nodes than elements accepted")
	}
}

func TestLinkTransferCycles(t *testing.T) {
	l := DefaultLink()
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	zero := l.TransferCycles(0)
	if zero != l.LatencyCycles {
		t.Fatalf("empty transfer %d, want latency %d", zero, l.LatencyCycles)
	}
	big := l.TransferCycles(1 << 20)
	if big <= zero {
		t.Fatal("bandwidth term missing")
	}
	bad := LinkConfig{}
	if err := bad.Validate(); err == nil {
		t.Error("zero bandwidth accepted")
	}
}

func TestRunStepMakespan(t *testing.T) {
	link := DefaultLink()
	progs := []Program{
		{Run: func() (uint64, error) { return 100, nil }, HaloBytes: 0},
		{Run: func() (uint64, error) { return 5000, nil }, HaloBytes: 16},
	}
	res, err := RunStep(link, progs)
	if err != nil {
		t.Fatal(err)
	}
	want := 5000 + link.TransferCycles(16)
	if res.Makespan != want {
		t.Fatalf("makespan %d, want %d", res.Makespan, want)
	}
	if res.Nodes[0].CommCyc == 0 && progs[0].HaloBytes > 0 {
		t.Fatal("comm not charged")
	}
}

func TestRunStepSingleNodeNoComm(t *testing.T) {
	res, err := RunStep(DefaultLink(), []Program{{Run: func() (uint64, error) { return 42, nil }, HaloBytes: 100}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes[0].CommCyc != 0 {
		t.Fatal("single node charged communication")
	}
}

func TestRunStepErrors(t *testing.T) {
	if _, err := RunStep(DefaultLink(), nil); err == nil {
		t.Error("empty programs accepted")
	}
	if _, err := RunStep(DefaultLink(), []Program{{}}); err == nil {
		t.Error("nil Run accepted")
	}
	if _, err := RunStep(LinkConfig{}, []Program{{Run: func() (uint64, error) { return 1, nil }}}); err == nil {
		t.Error("invalid link accepted")
	}
}

// The distributed stencil must match the serial reference exactly —
// halo exchange and sharding introduce no numerical difference.
func TestStencilMatchesReference(t *testing.T) {
	const n, steps = 4096, 4
	st, err := NewStencil1D(n, 3, DefaultLink())
	if err != nil {
		t.Fatal(err)
	}
	want := Reference(st.Field, steps)
	for s := 0; s < steps; s++ {
		if _, err := st.Step(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if math.Abs(st.Field[i]-want[i]) > 1e-12 {
			t.Fatalf("field[%d] = %v, want %v", i, st.Field[i], want[i])
		}
	}
}

// Different node counts must agree with each other.
func TestStencilNodeCountInvariance(t *testing.T) {
	const n, steps = 2048, 3
	results := map[int][]float64{}
	for _, nodes := range []int{1, 2, 4} {
		st, err := NewStencil1D(n, nodes, DefaultLink())
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < steps; s++ {
			if _, err := st.Step(); err != nil {
				t.Fatal(err)
			}
		}
		results[nodes] = append([]float64(nil), st.Field...)
	}
	for i := 0; i < n; i++ {
		if results[1][i] != results[2][i] || results[2][i] != results[4][i] {
			t.Fatalf("node counts disagree at %d: %v %v %v", i, results[1][i], results[2][i], results[4][i])
		}
	}
}

func TestStrongScalingImproves(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	const n = 65536
	points, err := StrongScaling(DefaultLink(), 4, func(nodes int) ([]Program, error) {
		st, err := NewStencil1D(n, nodes, DefaultLink())
		if err != nil {
			return nil, err
		}
		progs := make([]Program, nodes)
		for k := range st.nodes {
			nd := st.nodes[k]
			progs[k] = Program{
				HaloBytes: 16,
				Run: func() (uint64, error) {
					return runNode(nd), nil
				},
			}
		}
		return progs, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points %v", points)
	}
	if points[0].Speedup != 1 {
		t.Fatalf("single-node speedup %v", points[0].Speedup)
	}
	for _, p := range points {
		t.Logf("nodes=%d makespan=%d speedup=%.2f eff=%.0f%%", p.Nodes, p.Makespan, p.Speedup, 100*p.Eff)
	}
	// 4 nodes must beat 1 node substantially on a 64K-element stencil.
	if points[3].Speedup < 2.0 {
		t.Errorf("4-node speedup %.2f, want >= 2", points[3].Speedup)
	}
	// And efficiency should decay monotonically-ish (comm overhead).
	if points[3].Eff > points[1].Eff+0.05 {
		t.Errorf("efficiency should not grow with nodes: %v", points)
	}
}

// runNode executes one node's compiled program once.
func runNode(nd *stencilNode) uint64 {
	cyc, err := stepOne(nd)
	if err != nil {
		panic(err)
	}
	return cyc
}
