// Package cluster implements the multi-node Stream Virtual Machine
// execution model the paper scopes out ("The SVM execution model for
// more than one node contains multiple sets of these processors and
// memories and network links to connect the nodes. In this paper, we
// focus only on mapping a single node", §II-B footnote): several
// simulated machines connected by point-to-point links, running
// shards of one stream program with explicit stream transfers between
// steps.
//
// The model is deliberately SPMD: the element space is block-
// partitioned across nodes, each node compiles and runs its shard of
// the SDF program on its own two-context machine, and between steps
// the nodes exchange halo streams over the links. Node simulations are
// independent (each machine has its own virtual clock), so a step's
// makespan is the slowest node plus its communication — the standard
// bulk-synchronous bound.
package cluster

import (
	"fmt"
)

// LinkConfig models one point-to-point network link.
type LinkConfig struct {
	// BytesPerCycle is the link bandwidth in bytes per core cycle of
	// the (homogeneous) nodes.
	BytesPerCycle float64
	// LatencyCycles is the per-message latency.
	LatencyCycles uint64
}

// DefaultLink is a 2 GB/s full-duplex interconnect with ~1 µs latency
// on the 3.4 GHz nodes — an InfiniBand-class link of the paper's era.
func DefaultLink() LinkConfig {
	return LinkConfig{
		BytesPerCycle: 2.0e9 / 3.4e9,
		LatencyCycles: 3400,
	}
}

// Validate reports invalid link parameters.
func (l LinkConfig) Validate() error {
	if l.BytesPerCycle <= 0 {
		return fmt.Errorf("cluster: link bandwidth must be positive")
	}
	return nil
}

// TransferCycles returns the time to move bytes across the link.
func (l LinkConfig) TransferCycles(bytes uint64) uint64 {
	return l.LatencyCycles + uint64(float64(bytes)/l.BytesPerCycle+0.5)
}

// Shard is one node's slice of the global element space.
type Shard struct {
	Node     int
	Lo, Hi   int // global element range [Lo, Hi)
	Elements int
}

// Partition block-partitions n elements across nodes.
func Partition(n, nodes int) ([]Shard, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("cluster: %d nodes", nodes)
	}
	if n < nodes {
		return nil, fmt.Errorf("cluster: cannot partition %d elements across %d nodes", n, nodes)
	}
	out := make([]Shard, nodes)
	base := n / nodes
	rem := n % nodes
	lo := 0
	for i := range out {
		sz := base
		if i < rem {
			sz++
		}
		out[i] = Shard{Node: i, Lo: lo, Hi: lo + sz, Elements: sz}
		lo += sz
	}
	return out, nil
}

// NodeResult reports one node's execution of one step.
type NodeResult struct {
	Shard      Shard
	ComputeCyc uint64 // the node's stream-program execution
	CommCyc    uint64 // its halo exchange
	TotalCyc   uint64
}

// StepResult reports one bulk-synchronous step.
type StepResult struct {
	Nodes    []NodeResult
	Makespan uint64 // slowest node including communication
}

// Program is one node's runnable shard: Run executes the local stream
// program and returns its simulated cycles (or the run's failure);
// HaloBytes is the data the node must exchange with its neighbours
// after the step.
type Program struct {
	Run       func() (uint64, error)
	HaloBytes uint64
}

// RunStep executes one bulk-synchronous step: every node runs its
// shard, then exchanges halos pairwise over the link. Nodes are
// simulated sequentially (each owns an independent virtual clock), so
// the result is deterministic.
func RunStep(link LinkConfig, programs []Program) (StepResult, error) {
	if err := link.Validate(); err != nil {
		return StepResult{}, err
	}
	if len(programs) == 0 {
		return StepResult{}, fmt.Errorf("cluster: no node programs")
	}
	res := StepResult{}
	for i, p := range programs {
		if p.Run == nil {
			return StepResult{}, fmt.Errorf("cluster: node %d has no program", i)
		}
		nr := NodeResult{Shard: Shard{Node: i}}
		cyc, err := p.Run()
		if err != nil {
			return StepResult{}, fmt.Errorf("cluster: node %d: %w", i, err)
		}
		nr.ComputeCyc = cyc
		if len(programs) > 1 && p.HaloBytes > 0 {
			// Exchange with both neighbours (full duplex, overlapped
			// send/receive: one transfer time per neighbour pair).
			nr.CommCyc = link.TransferCycles(p.HaloBytes)
		}
		nr.TotalCyc = nr.ComputeCyc + nr.CommCyc
		if nr.TotalCyc > res.Makespan {
			res.Makespan = nr.TotalCyc
		}
		res.Nodes = append(res.Nodes, nr)
	}
	return res, nil
}

// ScalingPoint is one entry of a strong-scaling study.
type ScalingPoint struct {
	Nodes    int
	Makespan uint64
	Speedup  float64 // single-node makespan / this makespan
	Eff      float64 // Speedup / Nodes
}

// StrongScaling runs the same global problem on 1..maxNodes nodes.
// build must return the per-node programs for the given node count.
func StrongScaling(link LinkConfig, maxNodes int, build func(nodes int) ([]Program, error)) ([]ScalingPoint, error) {
	var out []ScalingPoint
	var single uint64
	for n := 1; n <= maxNodes; n++ {
		progs, err := build(n)
		if err != nil {
			return nil, fmt.Errorf("cluster: building %d-node programs: %w", n, err)
		}
		step, err := RunStep(link, progs)
		if err != nil {
			return nil, err
		}
		if n == 1 {
			single = step.Makespan
		}
		p := ScalingPoint{Nodes: n, Makespan: step.Makespan}
		if step.Makespan > 0 {
			p.Speedup = float64(single) / float64(step.Makespan)
			p.Eff = p.Speedup / float64(n)
		}
		out = append(out, p)
	}
	return out, nil
}
