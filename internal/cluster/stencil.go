package cluster

import (
	"fmt"

	"streamgpp/internal/compiler"
	"streamgpp/internal/exec"
	"streamgpp/internal/sdf"
	"streamgpp/internal/sim"
	"streamgpp/internal/svm"
)

// Stencil1D is a distributed advection stencil — the simplest stream
// program with inter-node communication: each node owns a block of a
// 1D periodic field plus two ghost cells, runs the three-point update
// as a local stream program (multi-index gather of the neighbours,
// kernel, sequential scatter), and exchanges its boundary cells with
// its neighbours after every step.
type Stencil1D struct {
	N     int // global elements
	Nodes int
	Link  LinkConfig

	shards []Shard
	nodes  []*stencilNode
	// Global field state (gathered from node-local arrays after every
	// step for verification).
	Field []float64
}

type stencilNode struct {
	m     *sim.Machine
	phi   *svm.Array // local block + 2 ghosts: [ghostL, lo..hi), ghostR]
	out   *svm.Array // updated local block (no ghosts)
	nbrLo *svm.IndexArray
	nbrHi *svm.IndexArray
	prog  *compiler.Program
	ecfg  exec.Config
	n     int
}

// stencil update: phiNew[i] = phi[i] - c*(phi[i] - phi[i-1]) + d*(phi[i+1] - 2phi[i] + phi[i-1])
const (
	stencilC   = 0.2
	stencilD   = 0.05
	stencilOps = 12
)

func stencilStep(lo, mid, hi float64) float64 {
	return mid - stencilC*(mid-lo) + stencilD*(hi-2*mid+lo)
}

// NewStencil1D builds the distributed problem. The initial field is a
// periodic pulse.
func NewStencil1D(n, nodes int, link LinkConfig) (*Stencil1D, error) {
	shards, err := Partition(n, nodes)
	if err != nil {
		return nil, err
	}
	if err := link.Validate(); err != nil {
		return nil, err
	}
	s := &Stencil1D{N: n, Nodes: nodes, Link: link, shards: shards, Field: make([]float64, n)}
	for i := range s.Field {
		x := float64(i)/float64(n) - 0.3
		s.Field[i] = 1 / (1 + 100*x*x)
	}
	for _, sh := range shards {
		nd, err := newStencilNode(sh)
		if err != nil {
			return nil, err
		}
		s.nodes = append(s.nodes, nd)
	}
	s.scatterGlobal()
	return s, nil
}

func newStencilNode(sh Shard) (*stencilNode, error) {
	m := sim.MustNew(sim.PentiumD8300())
	n := sh.Elements
	l := svm.Layout("phi", svm.F("v", 8))
	nd := &stencilNode{
		m:     m,
		phi:   svm.NewArray(m, "phi", l, n+2), // [0]=left ghost, [n+1]=right ghost
		out:   svm.NewArray(m, "out", l, n),
		nbrLo: svm.NewIndexArray(m, "lo", n),
		nbrHi: svm.NewIndexArray(m, "hi", n),
		ecfg:  exec.Defaults(),
		n:     n,
	}
	for i := 0; i < n; i++ {
		nd.nbrLo.Idx[i] = int32(i)     // phi[1+i-1]
		nd.nbrHi.Idx[i] = int32(i + 2) // phi[1+i+1]
	}

	update := &svm.Kernel{
		Name: "Stencil", OpsPerElem: stencilOps,
		Fn: func(ins, outs []*svm.Stream, start, cnt int) int64 {
			lohi, mid := ins[0], ins[1]
			o := outs[0]
			for i := start; i < start+cnt; i++ {
				o.Set(i, 0, stencilStep(lohi.At(i, 0), mid.At(i, 0), lohi.At(i, 1)))
			}
			return 0
		},
	}
	g := sdf.New(fmt.Sprintf("stencil-node%d", sh.Node))
	lohi := g.Input(svm.NewStream("lohi", n, svm.F("lo", 8), svm.F("hi", 8)),
		sdf.Bind(nd.phi).MultiIndexed(nd.nbrLo, nd.nbrHi))
	// The interior cells themselves stream sequentially from offset 1.
	mids := g.Input(svm.NewStream("mid", n, svm.F("v", 8)), sdf.Bind(nd.phi).Indexed(midIndex(m, n)))
	outs := g.AddKernel(update, []*sdf.Edge{lohi, mids},
		[]*svm.Stream{svm.NewStream("o", n, svm.F("v", 8))})
	g.Output(outs[0], sdf.Bind(nd.out))

	prog, err := compiler.Compile(g, compiler.DefaultOptions(svm.DefaultSRF(m)))
	if err != nil {
		return nil, err
	}
	nd.prog = prog
	return nd, nil
}

// midIndex builds the identity-shifted index [1, 2, ... n].
func midIndex(m *sim.Machine, n int) *svm.IndexArray {
	ix := svm.NewIndexArray(m, "mid", n)
	for i := 0; i < n; i++ {
		ix.Idx[i] = int32(i + 1)
	}
	return ix
}

// scatterGlobal copies the global field into every node's local block
// and refreshes the ghosts (the halo exchange, functionally).
func (s *Stencil1D) scatterGlobal() {
	for k, sh := range s.shards {
		nd := s.nodes[k]
		for i := 0; i < sh.Elements; i++ {
			nd.phi.Set(1+i, 0, s.Field[sh.Lo+i])
		}
		nd.phi.Set(0, 0, s.Field[(sh.Lo-1+s.N)%s.N])
		nd.phi.Set(1+sh.Elements, 0, s.Field[sh.Hi%s.N])
	}
}

// gatherGlobal collects the node-local results into the global field.
func (s *Stencil1D) gatherGlobal() {
	for k, sh := range s.shards {
		nd := s.nodes[k]
		for i := 0; i < sh.Elements; i++ {
			s.Field[sh.Lo+i] = nd.out.At(i, 0)
		}
	}
}

// Step runs one bulk-synchronous step across all nodes and returns its
// timing.
func (s *Stencil1D) Step() (StepResult, error) {
	programs := make([]Program, s.Nodes)
	for k := range s.nodes {
		nd := s.nodes[k]
		programs[k] = Program{
			HaloBytes: 2 * 8, // one boundary cell to each neighbour
			Run: func() (uint64, error) {
				r, err := exec.RunStream2Ctx(nd.m, nd.prog, nd.ecfg)
				return r.Cycles, err
			},
		}
	}
	res, err := RunStep(s.Link, programs)
	if err != nil {
		return res, err
	}
	s.gatherGlobal()
	s.scatterGlobal()
	return res, nil
}

// Reference advances a copy of the field serially, for verification.
func Reference(field []float64, steps int) []float64 {
	n := len(field)
	cur := append([]float64(nil), field...)
	next := make([]float64, n)
	for s := 0; s < steps; s++ {
		for i := 0; i < n; i++ {
			lo := cur[(i-1+n)%n]
			hi := cur[(i+1)%n]
			next[i] = stencilStep(lo, cur[i], hi)
		}
		cur, next = next, cur
	}
	return cur
}

// stepOne runs one node's program once (test/bench helper).
func stepOne(nd *stencilNode) (uint64, error) {
	r, err := exec.RunStream2Ctx(nd.m, nd.prog, nd.ecfg)
	return r.Cycles, err
}

// NodePrograms exposes the per-node programs for external scaling
// studies (cmd/streambench and the benchmarks).
func (s *Stencil1D) NodePrograms() []Program {
	out := make([]Program, s.Nodes)
	for k := range s.nodes {
		nd := s.nodes[k]
		out[k] = Program{HaloBytes: 16, Run: func() (uint64, error) { return stepOne(nd) }}
	}
	return out
}
