// Package covreport builds the fast-path coverage report: why the
// simulator's bulk fast path did or did not serve each access
// (sim/coverage.go's bail taxonomy), and where the run's memory
// traffic went per level (obs.BandwidthReport). The report is a pure
// function of a flattened metrics map, the stream run's cycles and the
// machine configuration, so the same builder serves streamtrace's
// -coverage text/JSON views, streamd's per-job coverage downloads and
// tests — and can re-derive a report from a ledger entry's Metrics
// after the fact. (It lives outside internal/obs because it needs the
// sim bail taxonomy, and sim already imports obs.)
package covreport

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"streamgpp/internal/obs"
	"streamgpp/internal/sim"
)

// Report is the coverage report object (streamtrace's -coverage JSON,
// streamd's /jobs/{id}/coverage body). All counter-valued fields are
// float64 because they come from the flattened gauge map.
type Report struct {
	FastAccesses float64 `json:"fast_accesses"`
	SlowAccesses float64 `json:"slow_accesses"`
	FastPct      float64 `json:"fastpath_pct"`
	BatchedIters float64 `json:"batched_iters"`
	// Bails maps every bail reason (always all of them, so the schema
	// is fixed) to its event count.
	Bails map[string]float64 `json:"bails"`
	// DominantBail names the largest bail counter, "" when no bails.
	DominantBail string `json:"dominant_bail,omitempty"`
	// SeqElems/IndexedElems split the svm layer's gather+scatter
	// elements by access pattern; RunElems counts the indexed elements
	// the run coalescer lowered to AccessBulk (constant-delta index
	// runs), a subset of IndexedElems.
	SeqElems     float64 `json:"seq_elems"`
	IndexedElems float64 `json:"indexed_elems"`
	RunElems     float64 `json:"run_elems"`
	// TopBails ranks the nonzero bail reasons by estimated lost cycles
	// (count × mean per-access occupied cycles), so the next
	// optimization target reads directly off the report. The -topbails
	// flag selects how many the text view prints.
	TopBails []BailCost `json:"top_bails"`
	// Arrays lists per-array traffic, heaviest first.
	Arrays []Array `json:"arrays,omitempty"`
	// Bandwidth is the per-level traffic and roofline summary.
	Bandwidth obs.BandwidthReport `json:"bandwidth"`
}

// Array is one array's traffic split.
type Array struct {
	Name         string  `json:"name"`
	Elems        float64 `json:"elems"`
	IndexedElems float64 `json:"indexed_elems"`
}

// BailCost is one bail reason's estimated optimization value: how many
// simulated cycles the accesses behind its events cost on the slow
// path. The estimate charges every event the run's mean per-access
// occupied cycles — coarse (a window_full event stands for a whole
// declined batch, an indexed event for one access), but it correctly
// separates millions of cheap L1-hit bails from thousands of
// DRAM-bound ones, which a raw count cannot.
type BailCost struct {
	Reason     string  `json:"reason"`
	Count      float64 `json:"count"`
	LostCycles float64 `json:"est_lost_cycles"`
}

// rankBails builds the lost-cycles ranking from the bail counters and
// the run's mean per-access occupied cycles.
func rankBails(bails map[string]float64, bw obs.BandwidthReport, accesses float64) []BailCost {
	perAccess := 0.0
	if accesses > 0 {
		occ := bw.TLBWalkCycles
		for _, row := range bw.Levels {
			occ += row.OccCycles
		}
		perAccess = occ / accesses
	}
	var out []BailCost
	for _, r := range sim.BailReasons() {
		if v := bails[r.String()]; v > 0 {
			out = append(out, BailCost{Reason: r.String(), Count: v, LostCycles: v * perAccess})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].LostCycles > out[j].LostCycles })
	return out
}

// dominantBail returns the largest bail counter's reason name, with
// ties going to the earlier reason in declaration order ("" when every
// counter is zero).
func dominantBail(bails map[string]float64) string {
	best, bestV := "", 0.0
	for _, r := range sim.BailReasons() {
		if v := bails[r.String()]; v > bestV {
			best, bestV = r.String(), v
		}
	}
	return best
}

// New derives the report from a flattened metrics map
// (obs.FlattenSnapshot of the run's registry), the stream run's total
// cycles and the machine configuration (for the roofline peak).
func New(metrics map[string]float64, streamCycles uint64, cfg sim.Config) Report {
	rep := Report{
		FastAccesses: metrics["coverage.fast_accesses"],
		SlowAccesses: metrics["coverage.slow_accesses"],
		FastPct:      metrics["coverage.fastpath_pct"],
		BatchedIters: metrics["coverage.batched_iters"],
		Bails:        map[string]float64{},
		SeqElems:     metrics["svm.gather.seq_elems"] + metrics["svm.scatter.seq_elems"],
		IndexedElems: metrics["svm.gather.indexed_elems"] + metrics["svm.scatter.indexed_elems"],
		RunElems:     metrics["svm.gather.run_elems"] + metrics["svm.scatter.run_elems"],
		Bandwidth: obs.NewBandwidthReport(metrics, streamCycles,
			cfg.BusBytesPerCycle*cfg.BusEff),
	}
	for _, r := range sim.BailReasons() {
		rep.Bails[r.String()] = metrics["coverage.bail."+r.String()]
	}
	rep.DominantBail = dominantBail(rep.Bails)
	rep.TopBails = rankBails(rep.Bails, rep.Bandwidth, rep.FastAccesses+rep.SlowAccesses)
	for key, v := range metrics {
		name, ok := strings.CutPrefix(key, "coverage.array.")
		if !ok {
			continue
		}
		name, ok = strings.CutSuffix(name, ".elems")
		if !ok || strings.HasSuffix(name, ".indexed") {
			continue
		}
		rep.Arrays = append(rep.Arrays, Array{
			Name:         name,
			Elems:        v,
			IndexedElems: metrics["coverage.array."+name+".indexed_elems"],
		})
	}
	sort.Slice(rep.Arrays, func(i, j int) bool {
		if rep.Arrays[i].Elems != rep.Arrays[j].Elems {
			return rep.Arrays[i].Elems > rep.Arrays[j].Elems
		}
		return rep.Arrays[i].Name < rep.Arrays[j].Name
	})
	return rep
}

// Render writes the human-readable coverage report.
func (r Report) Render(w io.Writer) {
	total := r.FastAccesses + r.SlowAccesses
	fmt.Fprintf(w, "  fast path served %.0f of %.0f accesses (%.1f%%), %.0f batched iterations\n",
		r.FastAccesses, total, r.FastPct, r.BatchedIters)
	if r.SeqElems+r.IndexedElems > 0 {
		frac := 0.0
		if r.IndexedElems > 0 {
			frac = 100 * r.RunElems / r.IndexedElems
		}
		fmt.Fprintf(w, "  bulk elements: %.0f sequential, %.0f indexed (%.1f%% coalesced into runs)\n",
			r.SeqElems, r.IndexedElems, frac)
	}
	fmt.Fprintln(w, "  bail reasons (why accesses fell off the fast path):")
	for _, reason := range sim.BailReasons() {
		v := r.Bails[reason.String()]
		if v == 0 {
			continue
		}
		mark := " "
		if reason.String() == r.DominantBail {
			mark = "*"
		}
		fmt.Fprintf(w, "   %s %-14s %12.0f\n", mark, reason.String(), v)
	}
	if r.DominantBail == "" {
		fmt.Fprintln(w, "    (none)")
	} else {
		fmt.Fprintf(w, "  dominant bail: %s\n", r.DominantBail)
	}
	if len(r.Arrays) > 0 {
		fmt.Fprintln(w, "  per-array elements (indexed fraction):")
		for _, a := range r.Arrays {
			frac := 0.0
			if a.Elems > 0 {
				frac = 100 * a.IndexedElems / a.Elems
			}
			fmt.Fprintf(w, "    %-16s %12.0f  %5.1f%% indexed\n", a.Name, a.Elems, frac)
		}
	}
	fmt.Fprintln(w, "  bandwidth by level:")
	r.Bandwidth.Render(w)
}

// RenderTopBails writes the -topbails view: the top n bail reasons
// ranked by estimated lost cycles rather than raw counts.
func (r Report) RenderTopBails(w io.Writer, n int) {
	fmt.Fprintln(w, "  top bails by estimated lost cycles (events × mean per-access occupied cycles):")
	if len(r.TopBails) == 0 {
		fmt.Fprintln(w, "    (none)")
		return
	}
	for i, b := range r.TopBails {
		if i >= n {
			break
		}
		fmt.Fprintf(w, "    %-14s %14.0f events  ~%14.0f cycles\n", b.Reason, b.Count, b.LostCycles)
	}
}
