package covreport

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"streamgpp/internal/apps/micro"
	"streamgpp/internal/exec"
	"streamgpp/internal/obs"
	"streamgpp/internal/sim"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// runCoverage runs one micro-benchmark the way the CLI does (registry
// attached via the sim default) in the given fast-path mode and
// returns the derived coverage report plus the raw flattened metrics.
func runCoverage(t *testing.T, app string, fast bool) (Report, map[string]float64) {
	t.Helper()
	sim.SetDefaultFastPath(fast)
	defer sim.SetDefaultFastPath(true)
	reg := obs.NewRegistry()
	sim.SetDefaultObserver(reg)
	defer sim.SetDefaultObserver(nil)

	res, err := micro.Runners[app](micro.Params{N: 40000, Comp: 1, Seed: 1}, exec.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	flat := obs.FlattenSnapshot(reg.Snapshot())
	return New(flat, res.Stream.Cycles, sim.PentiumD8300()), flat
}

// jsonShape flattens a marshalled JSON value into its sorted key paths
// (array indices collapsed to []), so the golden pins the -coverage
// -json schema — field names and nesting — without pinning workload
// numbers.
func jsonShape(v any) []string {
	var walk func(prefix string, v any, out *[]string)
	walk = func(prefix string, v any, out *[]string) {
		switch x := v.(type) {
		case map[string]any:
			keys := make([]string, 0, len(x))
			for k := range x {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				walk(prefix+"."+k, x[k], out)
			}
		case []any:
			if len(x) > 0 {
				walk(prefix+"[]", x[0], out)
			} else {
				*out = append(*out, prefix+"[]")
			}
		default:
			*out = append(*out, prefix)
		}
	}
	var out []string
	walk("", v, &out)
	sort.Strings(out)
	return out
}

// TestCoverageJSONSchemaGolden pins the -coverage -json object's shape:
// every bail reason key is always present, the bandwidth rows cover
// every level, and field renames fail loudly. Regenerate with -update.
func TestCoverageJSONSchemaGolden(t *testing.T) {
	rep, _ := runCoverage(t, "GAT-SCAT-COMP", true)
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var parsed any
	if err := json.Unmarshal(raw, &parsed); err != nil {
		t.Fatal(err)
	}
	got := strings.Join(jsonShape(parsed), "\n") + "\n"

	golden := filepath.Join("testdata", "coverage_schema.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("-coverage -json schema changed:\ngot:\n%s\nwant:\n%s\n(re-run with -update if intended)", got, want)
	}

	// The schema must enumerate the full bail taxonomy even when a
	// reason never fired — consumers key on the fixed map.
	for _, r := range sim.BailReasons() {
		if _, ok := rep.Bails[r.String()]; !ok {
			t.Errorf("bails map missing reason %q", r)
		}
	}
	if len(rep.Bandwidth.Levels) != len(obs.BandwidthLevels) {
		t.Errorf("bandwidth rows = %d, want %d", len(rep.Bandwidth.Levels), len(obs.BandwidthLevels))
	}
}

// TestCoverageDifferentialFastOnOff runs the same workload in both
// fast-path modes: the coverage split must reflect the mode (that is
// the profiler's whole point), while the mode-invariant facts — access
// totals, element splits and every bandwidth figure — must be
// byte-identical.
func TestCoverageDifferentialFastOnOff(t *testing.T) {
	// LD-ST-COMP streams sequentially (exercising AccessBulk and its
	// disabled-mode bail); GAT-SCAT-COMP is indexed through a random
	// permutation, which defeats run coalescing entirely — the adaptive
	// fast path must then stay out of the way (zero probes, zero fast
	// accesses) and attribute every element to the indexed bail.
	for _, app := range []string{"LD-ST-COMP", "GAT-SCAT-COMP"} {
		t.Run(app, func(t *testing.T) {
			on, onFlat := runCoverage(t, app, true)
			off, offFlat := runCoverage(t, app, false)

			if app == "LD-ST-COMP" {
				if on.FastAccesses == 0 || on.FastPct == 0 {
					t.Errorf("fast-on run reports no fast-path coverage: %+v", on)
				}
			} else {
				// A pure permutation has no constant-delta runs: the
				// profiler must show all indexed elements bailing, and —
				// because probing un-coalescible traffic is pure tax —
				// no fast accesses at all.
				if on.FastAccesses != 0 {
					t.Errorf("fast-on run probed un-coalescible indexed traffic: %+v", on)
				}
				if on.IndexedElems == 0 || on.Bails["indexed"] != float64(on.IndexedElems) {
					t.Errorf("indexed elements not fully attributed: elems=%v bails=%v",
						on.IndexedElems, on.Bails["indexed"])
				}
			}
			if off.FastAccesses != 0 || off.FastPct != 0 {
				t.Errorf("fast-off run reports fast-path coverage: fast=%v pct=%v", off.FastAccesses, off.FastPct)
			}
			if app == "LD-ST-COMP" && off.Bails["disabled"] == 0 {
				t.Error("fast-off sequential run did not count BailDisabled")
			}
			if got, want := on.FastAccesses+on.SlowAccesses, off.FastAccesses+off.SlowAccesses; got != want {
				t.Errorf("access totals diverge: fast-on %v, fast-off %v", got, want)
			}
			if on.SeqElems != off.SeqElems || on.IndexedElems != off.IndexedElems {
				t.Errorf("element splits diverge: on(%v,%v) off(%v,%v)",
					on.SeqElems, on.IndexedElems, off.SeqElems, off.IndexedElems)
			}
			if !reflect.DeepEqual(on.Arrays, off.Arrays) {
				t.Errorf("per-array traffic diverges:\non:  %+v\noff: %+v", on.Arrays, off.Arrays)
			}
			if !reflect.DeepEqual(on.Bandwidth, off.Bandwidth) {
				t.Errorf("bandwidth attribution diverges:\non:  %+v\noff: %+v", on.Bandwidth, off.Bandwidth)
			}
			for k, v := range onFlat {
				if !strings.HasPrefix(k, "bw.") {
					continue
				}
				if ov, ok := offFlat[k]; !ok || ov != v {
					t.Errorf("bw metric %q diverges: fast-on %v, fast-off %v", k, v, offFlat[k])
				}
			}
		})
	}
}

// TestCoverageRenderNamesDominantBail checks the text report names the
// dominant bail reason and the roofline line — the two facts the
// coverage smoke in scripts/check.sh greps for.
func TestCoverageRenderNamesDominantBail(t *testing.T) {
	rep, _ := runCoverage(t, "GAT-SCAT-COMP", true)
	var b strings.Builder
	rep.Render(&b)
	out := b.String()
	if rep.DominantBail == "" {
		t.Fatal("gatscat run has no dominant bail reason")
	}
	if !strings.Contains(out, "dominant bail: "+rep.DominantBail) {
		t.Errorf("render does not name dominant bail %q:\n%s", rep.DominantBail, out)
	}
	if !strings.Contains(out, "roofline") {
		t.Errorf("render missing roofline summary:\n%s", out)
	}
	if rep.Bandwidth.DRAMBytes() == 0 {
		t.Error("run attributed no DRAM bytes")
	}
}

func TestDominantBailTieBreak(t *testing.T) {
	bails := map[string]float64{"no_pin": 5, "indexed": 5, "wc_state": 4}
	// Ties go to the earlier reason in declaration order: indexed (1)
	// beats no_pin (6).
	if got := dominantBail(bails); got != "indexed" {
		t.Errorf("dominantBail = %q, want indexed", got)
	}
	if got := dominantBail(map[string]float64{}); got != "" {
		t.Errorf("dominantBail on empty = %q, want empty", got)
	}
}
