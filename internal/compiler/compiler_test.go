package compiler

import (
	"strings"
	"testing"

	"streamgpp/internal/sdf"
	"streamgpp/internal/sim"
	"streamgpp/internal/svm"
	"streamgpp/internal/wq"
)

func testMachine() *sim.Machine { return sim.MustNew(sim.PentiumD8300()) }

func sumKernel(name string) *svm.Kernel {
	return &svm.Kernel{
		Name:       name,
		OpsPerElem: 8,
		Fn: func(ins, outs []*svm.Stream, start, n int) int64 {
			for i := start; i < start+n; i++ {
				var s float64
				for _, in := range ins {
					s += in.At(i, 0)
				}
				for _, o := range outs {
					o.Set(i, 0, s)
				}
			}
			return 0
		},
	}
}

// pipelineGraph builds a two-kernel single-phase program over n
// elements: out = (a + b) + x.
func pipelineGraph(m *sim.Machine, n int) (*sdf.Graph, *svm.Array, *svm.Array, *svm.Array, *svm.Array) {
	l := svm.Layout("rec", svm.F("v", 8))
	a := svm.NewArray(m, "a", l, n)
	b := svm.NewArray(m, "b", l, n)
	x := svm.NewArray(m, "x", l, n)
	y := svm.NewArray(m, "y", l, n)
	g := sdf.New("pipe")
	as := g.Input(svm.StreamOf("as", n, l, l.AllFields()), sdf.Bind(a))
	bs := g.Input(svm.StreamOf("bs", n, l, l.AllFields()), sdf.Bind(b))
	ds := g.AddKernel(sumKernel("k1"), []*sdf.Edge{as, bs}, []*svm.Stream{svm.NewStream("ds", n, svm.F("v", 8))})
	xs := g.Input(svm.StreamOf("xs", n, l, l.AllFields()), sdf.Bind(x))
	ys := g.AddKernel(sumKernel("k2"), []*sdf.Edge{ds[0], xs}, []*svm.Stream{svm.NewStream("ys", n, svm.F("v", 8))})
	g.Output(ys[0], sdf.Bind(y))
	return g, a, b, x, y
}

func TestCompileBasics(t *testing.T) {
	m := testMachine()
	g, _, _, _, _ := pipelineGraph(m, 10000)
	srf := svm.DefaultSRF(m)
	p, err := Compile(g, DefaultOptions(srf))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Phases) != 1 {
		t.Fatalf("phases %d", len(p.Phases))
	}
	pl := p.Phases[0]
	if pl.StripElems <= 0 || pl.Strips != (10000+pl.StripElems-1)/pl.StripElems {
		t.Fatalf("plan %+v", pl)
	}
	// Tasks: per strip, 3 gathers + 1 fused kernel + 1 scatter.
	want := pl.Strips * 5
	if len(p.Tasks) != want {
		t.Fatalf("tasks %d, want %d", len(p.Tasks), want)
	}
	if !strings.Contains(p.Summary(), "fused") {
		t.Fatalf("summary: %s", p.Summary())
	}
}

func TestCompileWithoutFusionEmitsPerKernelTasks(t *testing.T) {
	m := testMachine()
	g, _, _, _, _ := pipelineGraph(m, 10000)
	srf := svm.DefaultSRF(m)
	opt := DefaultOptions(srf)
	opt.FuseKernels = false
	p, err := Compile(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	pl := p.Phases[0]
	if len(p.Tasks) != pl.Strips*6 { // 3 gathers + 2 kernels + 1 scatter
		t.Fatalf("tasks %d, want %d", len(p.Tasks), pl.Strips*6)
	}
}

// Task IDs must be dense and increasing, and every dependency must
// point backwards.
func TestScheduleDepsPointBackwards(t *testing.T) {
	m := testMachine()
	g, _, _, _, _ := pipelineGraph(m, 50000)
	p, err := Compile(g, DefaultOptions(svm.DefaultSRF(m)))
	if err != nil {
		t.Fatal(err)
	}
	for i, tk := range p.Tasks {
		if tk.ID != i {
			t.Fatalf("task %d has ID %d", i, tk.ID)
		}
		for _, d := range tk.Deps {
			if d >= tk.ID {
				t.Fatalf("task %d depends forward on %d", tk.ID, d)
			}
		}
		if tk.Run == nil {
			t.Fatalf("task %d has no body", tk.ID)
		}
	}
}

// The schedule must flow through a 64-slot queue without distant
// dependencies (a dep further back than the queue window deadlocks the
// control thread).
func TestScheduleDepsWithinQueueWindow(t *testing.T) {
	m := testMachine()
	g, _, _, _, _ := pipelineGraph(m, 100000)
	p, err := Compile(g, DefaultOptions(svm.DefaultSRF(m)))
	if err != nil {
		t.Fatal(err)
	}
	for _, tk := range p.Tasks {
		for _, d := range tk.Deps {
			if tk.ID-d > wq.DefaultCapacity {
				t.Fatalf("task %d depends on %d, %d tasks back (> queue capacity %d)",
					tk.ID, d, tk.ID-d, wq.DefaultCapacity)
			}
		}
	}
}

// Executing the tasks in schedule order must produce exactly the
// reference results (strip-mining covers every element exactly once).
func TestScheduleFunctionalEquivalence(t *testing.T) {
	m := testMachine()
	n := 12345 // deliberately not a multiple of any strip size
	g, a, b, x, y := pipelineGraph(m, n)
	for _, arr := range []*svm.Array{a, b, x} {
		arr.Fill(func(i, f int) float64 { return float64(i%97) + 0.5 })
	}
	p, err := Compile(g, DefaultOptions(svm.DefaultSRF(m)))
	if err != nil {
		t.Fatal(err)
	}
	for _, tk := range p.Tasks {
		tk.Run(nil)
	}
	for i := 0; i < n; i++ {
		want := a.At(i, 0) + b.At(i, 0) + x.At(i, 0)
		if y.At(i, 0) != want {
			t.Fatalf("y[%d] = %v, want %v", i, y.At(i, 0), want)
		}
	}
}

func TestForcedStripSize(t *testing.T) {
	m := testMachine()
	g, _, _, _, _ := pipelineGraph(m, 1000)
	opt := DefaultOptions(svm.DefaultSRF(m))
	opt.StripElems = 100
	p, err := Compile(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if p.Phases[0].StripElems != 100 || p.Phases[0].Strips != 10 {
		t.Fatalf("plan %+v", p.Phases[0])
	}
}

func TestStripLargerThanNClamped(t *testing.T) {
	m := testMachine()
	g, _, _, _, _ := pipelineGraph(m, 10)
	opt := DefaultOptions(svm.DefaultSRF(m))
	opt.StripElems = 1000
	p, err := Compile(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if p.Phases[0].StripElems != 10 || p.Phases[0].Strips != 1 {
		t.Fatalf("plan %+v", p.Phases[0])
	}
}

func TestSRFBuffersWithinCapacityAndDisjoint(t *testing.T) {
	m := testMachine()
	g, _, _, _, _ := pipelineGraph(m, 100000)
	srf := svm.DefaultSRF(m)
	if _, err := Compile(g, DefaultOptions(srf)); err != nil {
		t.Fatal(err)
	}
	allocs := srf.Allocs()
	if len(allocs) != 5*2 { // 5 edges × 2 buffers
		t.Fatalf("allocations %d", len(allocs))
	}
	var total uint64
	for i, a := range allocs {
		total += a.Size
		if a.Base < srf.Region.Base || a.End() > srf.Region.Base+srf.Capacity() {
			t.Fatalf("alloc %d outside SRF", i)
		}
		for j := i + 1; j < len(allocs); j++ {
			b := allocs[j]
			if a.Base < b.End() && b.Base < a.End() {
				t.Fatalf("allocs %d and %d overlap", i, j)
			}
		}
	}
	if total > srf.Capacity() {
		t.Fatalf("allocated %d > capacity %d", total, srf.Capacity())
	}
}

func TestCompileRejectsMissingSRF(t *testing.T) {
	m := testMachine()
	g, _, _, _, _ := pipelineGraph(m, 100)
	if _, err := Compile(g, Options{}); err == nil {
		t.Fatal("nil SRF accepted")
	}
}

func TestCompileRejectsInvalidGraph(t *testing.T) {
	m := testMachine()
	g := sdf.New("empty")
	if _, err := Compile(g, DefaultOptions(svm.DefaultSRF(m))); err == nil {
		t.Fatal("empty graph accepted")
	}
}

func TestCompileRejectsIndexedIntraPhaseHazard(t *testing.T) {
	m := testMachine()
	l := svm.Layout("rec", svm.F("v", 8))
	arr := svm.NewArray(m, "arr", l, 100)
	idx := svm.NewIndexArray(m, "idx", 100)
	g := sdf.New("hazard")
	in := g.Input(svm.StreamOf("in", 100, l, l.AllFields()), sdf.Bind(arr))
	out := g.AddKernel(sumKernel("k"), []*sdf.Edge{in}, []*svm.Stream{svm.NewStream("o", 100, svm.F("v", 8))})
	g.Output(out[0], sdf.Bind(arr).Indexed(idx))
	if _, err := Compile(g, DefaultOptions(svm.DefaultSRF(m))); err == nil {
		t.Fatal("indexed read/write of one array in one phase accepted")
	}
}

func TestCompileAllowsAlignedIntraPhaseUpdate(t *testing.T) {
	// FindMaxAndUpdate-style: sequential gather and sequential scatter
	// of the same array is strip-aligned and safe.
	m := testMachine()
	l := svm.Layout("rec", svm.F("v", 8))
	arr := svm.NewArray(m, "arr", l, 100)
	g := sdf.New("update")
	in := g.Input(svm.StreamOf("in", 100, l, l.AllFields()), sdf.Bind(arr))
	out := g.AddKernel(sumKernel("k"), []*sdf.Edge{in}, []*svm.Stream{svm.NewStream("o", 100, svm.F("v", 8))})
	g.Output(out[0], sdf.Bind(arr))
	if _, err := Compile(g, DefaultOptions(svm.DefaultSRF(m))); err != nil {
		t.Fatal(err)
	}
}

func TestMultiPhaseScheduleBarrier(t *testing.T) {
	m := testMachine()
	l := svm.Layout("rec", svm.F("v", 8))
	src := svm.NewArray(m, "src", l, 4000)
	mid := svm.NewArray(m, "mid", l, 4000)
	dst := svm.NewArray(m, "dst", l, 2000)
	idx := svm.NewIndexArray(m, "idx", 2000)
	for i := range idx.Idx {
		idx.Idx[i] = int32(i * 2)
	}
	g := sdf.New("2phase")
	ss := g.Input(svm.StreamOf("ss", 4000, l, l.AllFields()), sdf.Bind(src))
	k1 := g.AddKernel(sumKernel("k1"), []*sdf.Edge{ss}, []*svm.Stream{svm.NewStream("m", 4000, svm.F("v", 8))})
	g.Output(k1[0], sdf.Bind(mid))
	ms := g.Input(svm.StreamOf("ms", 2000, l, l.AllFields()), sdf.Bind(mid).Indexed(idx))
	k2 := g.AddKernel(sumKernel("k2"), []*sdf.Edge{ms}, []*svm.Stream{svm.NewStream("o", 2000, svm.F("v", 8))})
	g.Output(k2[0], sdf.Bind(dst))

	opt := DefaultOptions(svm.DefaultSRF(m))
	opt.StripElems = 500
	p, err := Compile(g, opt)
	if err != nil {
		t.Fatal(err)
	}

	// Functional check across the barrier.
	src.Fill(func(i, f int) float64 { return float64(i) })
	for _, tk := range p.Tasks {
		tk.Run(nil)
	}
	for i := 0; i < 2000; i++ {
		if dst.At(i, 0) != float64(2*i) {
			t.Fatalf("dst[%d] = %v, want %v", i, dst.At(i, 0), float64(2*i))
		}
	}

	// The first gather of phase 2 must depend on phase-1 tasks.
	var phase2FirstGather *wq.Task
	for i := range p.Tasks {
		if strings.HasPrefix(p.Tasks[i].Name, "ms") {
			phase2FirstGather = &p.Tasks[i]
			break
		}
	}
	if phase2FirstGather == nil {
		t.Fatal("no phase-2 gather found")
	}
	if len(phase2FirstGather.Deps) == 0 {
		t.Fatal("phase-2 gather has no barrier dependencies")
	}
}

func TestDoubleBufferAblation(t *testing.T) {
	m := testMachine()
	g, _, _, _, _ := pipelineGraph(m, 10000)
	srf := svm.DefaultSRF(m)
	opt := DefaultOptions(srf)
	opt.DoubleBuffer = false
	p, err := Compile(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Single-buffered: one buffer per edge.
	if len(srf.Allocs()) != 5 {
		t.Fatalf("single-buffer allocs %d", len(srf.Allocs()))
	}
	_ = p
}
