package compiler

import (
	"strings"
	"testing"

	"streamgpp/internal/sdf"
	"streamgpp/internal/svm"
	"streamgpp/internal/wq"
)

// multiGraph builds a program whose input is a single-pass multi-index
// gather (two index arrays over one array).
func multiGraph(t *testing.T, n int) (*sdf.Graph, *svm.Array, *svm.Array, *svm.IndexArray, *svm.IndexArray, *svm.SRF) {
	t.Helper()
	m := testMachine()
	l := svm.Layout("rec", svm.F("v", 8))
	src := svm.NewArray(m, "src", l, n)
	dst := svm.NewArray(m, "dst", l, n)
	src.Fill(func(i, f int) float64 { return float64(i) })
	i1 := svm.NewIndexArray(m, "i1", n)
	i2 := svm.NewIndexArray(m, "i2", n)
	for i := 0; i < n; i++ {
		i1.Idx[i] = int32((i + 1) % n)
		i2.Idx[i] = int32((i + n - 1) % n)
	}
	k := &svm.Kernel{
		Name: "sub", OpsPerElem: 4,
		Fn: func(ins, outs []*svm.Stream, start, cnt int) int64 {
			for i := start; i < start+cnt; i++ {
				outs[0].Set(i, 0, ins[0].At(i, 0)-ins[0].At(i, 1))
			}
			return 0
		},
	}
	g := sdf.New("multi")
	in := g.Input(svm.NewStream("in", n, svm.F("a", 8), svm.F("b", 8)),
		sdf.Bind(src).MultiIndexed(i1, i2))
	out := g.AddKernel(k, []*sdf.Edge{in}, []*svm.Stream{svm.NewStream("o", n, svm.F("v", 8))})
	g.Output(out[0], sdf.Bind(dst))
	return g, src, dst, i1, i2, svm.DefaultSRF(m)
}

func TestCompiledMultiGatherFunctional(t *testing.T) {
	const n = 5000
	g, src, dst, i1, i2, srf := multiGraph(t, n)
	p, err := Compile(g, DefaultOptions(srf))
	if err != nil {
		t.Fatal(err)
	}
	for _, tk := range p.Tasks {
		tk.Run(nil)
	}
	for i := 0; i < n; i++ {
		want := src.At(int(i1.Idx[i]), 0) - src.At(int(i2.Idx[i]), 0)
		if dst.At(i, 0) != want {
			t.Fatalf("dst[%d] = %v, want %v", i, dst.At(i, 0), want)
		}
	}
}

func TestScheduleTaskNamesCarryStripNumbers(t *testing.T) {
	m := testMachine()
	g, _, _, _, _ := pipelineGraph(m, 10000)
	opt := DefaultOptions(svm.DefaultSRF(m))
	opt.StripElems = 2500
	p, err := Compile(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Expect as#0..as#3 among gathers and ys#0..ys#3 among scatters.
	seen := map[string]bool{}
	for _, tk := range p.Tasks {
		seen[tk.Name] = true
		if tk.Strip < 0 || tk.Strip > 3 || tk.Phase != 0 {
			t.Fatalf("task %s has phase %d strip %d", tk.Name, tk.Phase, tk.Strip)
		}
	}
	for _, want := range []string{"as#0", "as#3", "ys#0", "ys#3", "k1+k2#0"} {
		if !seen[want] {
			t.Fatalf("schedule missing task %q; have %v", want, keys(seen))
		}
	}
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestMaxStripElemsCap(t *testing.T) {
	m := testMachine()
	g, _, _, _, _ := pipelineGraph(m, 100000)
	opt := DefaultOptions(svm.DefaultSRF(m))
	opt.MaxStripElems = 777
	p, err := Compile(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if p.Phases[0].StripElems != 777 {
		t.Fatalf("strip %d, want the 777 cap", p.Phases[0].StripElems)
	}
}

func TestKindsAssignedToQueues(t *testing.T) {
	m := testMachine()
	g, _, _, _, _ := pipelineGraph(m, 10000)
	p, err := Compile(g, DefaultOptions(svm.DefaultSRF(m)))
	if err != nil {
		t.Fatal(err)
	}
	var gathers, kernels, scatters int
	for _, tk := range p.Tasks {
		switch tk.Kind {
		case wq.Gather:
			gathers++
		case wq.KernelRun:
			kernels++
		case wq.Scatter:
			scatters++
		}
	}
	strips := p.Phases[0].Strips
	if gathers != 3*strips || kernels != strips || scatters != strips {
		t.Fatalf("G/K/S = %d/%d/%d for %d strips", gathers, kernels, scatters, strips)
	}
}

func TestSummaryMentionsEveryPhase(t *testing.T) {
	m := testMachine()
	g, _, _, _, _ := pipelineGraph(m, 10000)
	p, err := Compile(g, DefaultOptions(svm.DefaultSRF(m)))
	if err != nil {
		t.Fatal(err)
	}
	s := p.Summary()
	if !strings.Contains(s, "phase 0") || !strings.Contains(s, "tasks") {
		t.Fatalf("summary: %s", s)
	}
}

// Double-buffer dependence structure: the gather of strip s must depend
// on the kernel of strip s-2, never s-1 (that would serialise the
// pipeline).
func TestDoubleBufferDependenceDistance(t *testing.T) {
	m := testMachine()
	g, _, _, _, _ := pipelineGraph(m, 25000)
	opt := DefaultOptions(svm.DefaultSRF(m))
	opt.StripElems = 2500
	p, err := Compile(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[int]wq.Task{}
	for _, tk := range p.Tasks {
		byID[tk.ID] = tk
	}
	for _, tk := range p.Tasks {
		if tk.Kind != wq.Gather || !strings.HasPrefix(tk.Name, "as#") {
			continue
		}
		for _, d := range tk.Deps {
			dep := byID[d]
			if dep.Kind != wq.KernelRun {
				continue
			}
			if dep.Strip != tk.Strip-2 {
				t.Fatalf("gather %s (strip %d) depends on kernel %s (strip %d, want strip-2)",
					tk.Name, tk.Strip, dep.Name, dep.Strip)
			}
		}
	}
}
