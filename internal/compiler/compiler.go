// Package compiler lowers a validated SDF graph to the task schedule
// the paper's hand-compilation produced (§IV-A): it strip-mines every
// stream so the working set of strips fits the SRF, double-buffers the
// strips so gathers overlap kernels, optionally fuses kernels that
// share a strip, selects only the record fields kernels use (that
// happened at graph construction), and emits Gather/Kernel/Scatter
// tasks with bit-vector-ready dependence lists for the distributed work
// queue.
package compiler

import (
	"fmt"
	"strings"

	"streamgpp/internal/sdf"
	"streamgpp/internal/sim"
	"streamgpp/internal/svm"
	"streamgpp/internal/wq"
)

// Options control compilation.
type Options struct {
	// SRF is the stream register file to allocate strips from. Required.
	SRF *svm.SRF
	// StripElems forces a strip size in elements; 0 selects it
	// automatically from the SRF capacity and the phase's stream widths.
	StripElems int
	// DoubleBuffer enables buffer renaming so a strip can be gathered
	// while the previous one is computed on (§II-B). Disabling it is an
	// ablation: every stream gets one buffer and gathers serialise
	// behind the kernels that read them.
	DoubleBuffer bool
	// FuseKernels merges all kernels of a phase into one compute task
	// per strip, eliminating per-kernel dispatch (the paper fuses
	// streamFEM's GatherCell/AdvanceCell this way).
	FuseKernels bool
	// Ops configures the bulk memory operations.
	Ops svm.OpConfig
	// MaxStripElems caps the automatic strip size (0 = no cap).
	MaxStripElems int
	// StripScale rescales the strip size after selection (automatic or
	// forced); 0 or 1 leaves it untouched. Scales below 1 are always
	// safe; scales above 1 can exceed the SRF budget and fail buffer
	// allocation. Used by the what-if machinery to re-run an experiment
	// with smaller strips.
	StripScale float64
}

// DefaultOptions returns the configuration used by the evaluation:
// double buffering on, fusion on, non-temporal bulk ops.
func DefaultOptions(srf *svm.SRF) Options {
	return Options{SRF: srf, DoubleBuffer: true, FuseKernels: true, Ops: svm.DefaultOps()}
}

// Program is a compiled stream program: the ordered task list plus the
// per-phase strip plan.
type Program struct {
	Graph   *sdf.Graph
	Phases  []*PhasePlan
	Tasks   []wq.Task
	Options Options
}

// OutputArrays returns the distinct arrays the program's scatters
// write, in graph order. Gathers and kernels are idempotent, so these
// arrays are the only simulated state a run mutates — the snapshot a
// caller needs to make an aborted run restartable from scratch.
func (p *Program) OutputArrays() []*svm.Array {
	seen := map[*svm.Array]bool{}
	var out []*svm.Array
	for _, e := range p.Graph.Edges {
		if e.Scatter == nil || seen[e.Scatter.Array] {
			continue
		}
		seen[e.Scatter.Array] = true
		out = append(out, e.Scatter.Array)
	}
	return out
}

// PhasePlan records how one phase was strip-mined.
type PhasePlan struct {
	Phase         *sdf.Phase
	StripElems    int
	Strips        int
	BytesPerStrip int
	Fused         bool
}

// Compile lowers the graph. The SRF is Reset and reused across phases
// (phases are separated by barriers, so their strips never coexist).
func Compile(g *sdf.Graph, opt Options) (*Program, error) {
	if opt.SRF == nil {
		return nil, fmt.Errorf("compiler: Options.SRF is required")
	}
	if opt.Ops.MLP == 0 {
		opt.Ops = svm.DefaultOps()
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	phases, err := g.Phases()
	if err != nil {
		return nil, err
	}
	if err := checkIntraPhaseArrayHazards(phases); err != nil {
		return nil, err
	}

	p := &Program{Graph: g, Options: opt}
	sched := &scheduler{prog: p, opt: opt}
	for _, ph := range phases {
		plan, err := planPhase(ph, opt)
		if err != nil {
			return nil, err
		}
		p.Phases = append(p.Phases, plan)
		sched.emitPhase(plan)
	}
	return p, nil
}

// planPhase picks the strip size and allocates SRF buffers for every
// edge of the phase.
func planPhase(ph *sdf.Phase, opt Options) (*PhasePlan, error) {
	edges := ph.Edges()
	bytesPerElem := 0
	for _, e := range edges {
		bytesPerElem += e.Stream.ElemBytes()
	}
	nbuf := 1
	if opt.DoubleBuffer {
		nbuf = 2
	}
	s := opt.StripElems
	if s <= 0 {
		// Reserve the per-buffer alignment slack (each allocation
		// rounds up to a cache line).
		budget := int(opt.SRF.Capacity()) - len(edges)*nbuf*64
		if budget < 0 {
			budget = 0
		}
		s = budget / (bytesPerElem * nbuf)
		if opt.MaxStripElems > 0 && s > opt.MaxStripElems {
			s = opt.MaxStripElems
		}
	}
	if opt.StripScale > 0 && opt.StripScale != 1 {
		s = int(float64(s)*opt.StripScale + 0.5)
	}
	if s > ph.N {
		s = ph.N
	}
	if s < 1 {
		return nil, fmt.Errorf("compiler: phase %d needs %d bytes per element ×%d buffers — too wide for the %d-byte SRF",
			ph.Index, bytesPerElem, nbuf, opt.SRF.Capacity())
	}

	// Allocate the double buffers. The SRF is reused phase to phase.
	opt.SRF.Reset()
	for _, e := range edges {
		bufs := make([]svm.SRFBuf, nbuf)
		for b := range bufs {
			buf, err := opt.SRF.Alloc(fmt.Sprintf("%s.%d", e.Name(), b), uint64(s*e.Stream.ElemBytes()))
			if err != nil {
				return nil, fmt.Errorf("compiler: phase %d strip size %d: %w", ph.Index, s, err)
			}
			bufs[b] = buf
		}
		e.Stream.BindBuffers(bufs)
	}
	return &PhasePlan{
		Phase:         ph,
		StripElems:    s,
		Strips:        ph.Strips(s),
		BytesPerStrip: bytesPerElem * s,
		Fused:         opt.FuseKernels && len(ph.Nodes) > 1,
	}, nil
}

// checkIntraPhaseArrayHazards rejects graphs where a phase gathers from
// an array it also scatters to through an index (the strip alignment
// guarantee only holds for sequential access).
func checkIntraPhaseArrayHazards(phases []*sdf.Phase) error {
	for _, ph := range phases {
		written := map[*svm.Array]*sdf.Edge{}
		for _, e := range ph.Outs {
			written[e.Scatter.Array] = e
		}
		for _, e := range ph.Ins {
			w, ok := written[e.Gather.Array]
			if !ok {
				continue
			}
			if e.Gather.Index != nil || w.Scatter.Index != nil {
				return fmt.Errorf("compiler: phase %d both gathers (%s) and scatters (%s) array %s with indexed access — strips are not alignment-safe; route through a second array",
					ph.Index, e.Name(), w.Name(), e.Gather.Array.Name)
			}
		}
	}
	return nil
}

// scheduler emits the software-pipelined task list.
type scheduler struct {
	prog *Program
	opt  Options

	nextID int
	// IDs of all tasks in the final two strips of the previous phase;
	// transitively these dominate the whole phase (see the buffer-reuse
	// dependence chains), so they form the inter-phase barrier.
	prevBarrier []int
}

func (sc *scheduler) id() int {
	id := sc.nextID
	sc.nextID++
	return id
}

func (sc *scheduler) emitPhase(plan *PhasePlan) {
	ph := plan.Phase
	S := plan.StripElems
	K := plan.Strips
	nbuf := 1
	if sc.opt.DoubleBuffer {
		nbuf = 2
	}

	nodes, _ := orderNodes(ph)

	gatherID := make(map[*sdf.Edge][]int, len(ph.Ins))
	scatterID := make(map[*sdf.Edge][]int, len(ph.Outs))
	kernelID := make(map[*sdf.Node][]int, len(nodes))
	var fusedID []int
	for _, e := range ph.Ins {
		gatherID[e] = make([]int, K)
	}
	for _, e := range ph.Outs {
		scatterID[e] = make([]int, K)
	}
	for _, n := range nodes {
		kernelID[n] = make([]int, K)
	}
	fusedID = make([]int, K)

	var barrier []int
	ops := sc.opt.Ops

	kernelTaskOf := func(n *sdf.Node, strip int) int {
		if plan.Fused {
			return fusedID[strip]
		}
		return kernelID[n][strip]
	}

	for s := 0; s < K; s++ {
		start := s * S
		n := S
		if start+n > ph.N {
			n = ph.N - start
		}
		strip, count := s, n

		// Gathers.
		for _, e := range ph.Ins {
			var deps []int
			// Buffer reuse: wait for the consumers that read this
			// buffer nbuf strips ago.
			if s >= nbuf {
				for _, cons := range e.Consumers {
					deps = append(deps, kernelTaskOf(cons, s-nbuf))
				}
			}
			// Inter-phase barrier (also covers array RAW).
			if s < nbuf {
				deps = append(deps, sc.prevBarrier...)
			}
			id := sc.id()
			gatherID[e][s] = id
			eLocal, b := e, e.Stream.Buffer(strip)
			g := eLocal.Gather
			sc.prog.Tasks = append(sc.prog.Tasks, wq.Task{
				ID:    id,
				Name:  fmt.Sprintf("%s#%d", e.Name(), s),
				Kind:  wq.Gather,
				Phase: ph.Index,
				Strip: s,
				Deps:  dedup(deps),
				Run: func(c *sim.CPU) {
					if len(g.Multi) > 0 {
						svm.GatherMulti(c, ops, eLocal.Stream, start, g.Array, g.Fields, g.Multi, start, count, b)
					} else {
						svm.Gather(c, ops, eLocal.Stream, start, g.Array, g.Fields, start, g.Index, start, count, b)
					}
				},
			})
		}

		// Kernels.
		runKernel := func(node *sdf.Node, c *sim.CPU) {
			ins := make([]*svm.Stream, len(node.Ins))
			for i, e := range node.Ins {
				ins[i] = e.Stream
			}
			outs := make([]*svm.Stream, len(node.Outs))
			for i, e := range node.Outs {
				outs[i] = e.Stream
			}
			node.Kernel.Run(c, ins, outs, start, count)
		}
		kernelDeps := func(node *sdf.Node) []int {
			var deps []int
			for _, e := range node.Ins {
				if e.Gather != nil {
					deps = append(deps, gatherID[e][s])
				} else if e.Producer != nil && !plan.Fused {
					deps = append(deps, kernelTaskOf(e.Producer, s))
				}
			}
			// Output buffer reuse: the scatter that drained this
			// buffer nbuf strips ago must be done.
			if s >= nbuf {
				for _, e := range node.Outs {
					if e.Scatter != nil {
						deps = append(deps, scatterID[e][s-nbuf])
					}
				}
			}
			if s < nbuf {
				deps = append(deps, sc.prevBarrier...)
			}
			return deps
		}

		if plan.Fused {
			var deps []int
			names := make([]string, len(nodes))
			for i, node := range nodes {
				deps = append(deps, kernelDeps(node)...)
				names[i] = node.Name()
			}
			id := sc.id()
			fusedID[s] = id
			nodesLocal := nodes
			sc.prog.Tasks = append(sc.prog.Tasks, wq.Task{
				ID:    id,
				Name:  fmt.Sprintf("%s#%d", strings.Join(names, "+"), s),
				Kind:  wq.KernelRun,
				Phase: ph.Index,
				Strip: s,
				Deps:  dedup(deps),
				Run: func(c *sim.CPU) {
					for _, node := range nodesLocal {
						runKernel(node, c)
					}
				},
			})
		} else {
			for _, node := range nodes {
				id := sc.id()
				kernelID[node][s] = id
				nodeLocal := node
				sc.prog.Tasks = append(sc.prog.Tasks, wq.Task{
					ID:    id,
					Name:  fmt.Sprintf("%s#%d", node.Name(), s),
					Kind:  wq.KernelRun,
					Phase: ph.Index,
					Strip: s,
					Deps:  dedup(kernelDeps(node)),
					Run:   func(c *sim.CPU) { runKernel(nodeLocal, c) },
				})
			}
		}

		// Scatters.
		for _, e := range ph.Outs {
			var deps []int
			if e.Producer != nil {
				deps = append(deps, kernelTaskOf(e.Producer, s))
			} else {
				// A gathered edge scattered straight back (a copy
				// program with no kernel in between is rejected by
				// sdf.Validate, so this is a kernel input being
				// forwarded): depend on its gather.
				deps = append(deps, gatherID[e][s])
			}
			id := sc.id()
			scatterID[e][s] = id
			eLocal, b := e, e.Stream.Buffer(strip)
			sct := eLocal.Scatter
			sc.prog.Tasks = append(sc.prog.Tasks, wq.Task{
				ID:    id,
				Name:  fmt.Sprintf("%s#%d", e.Name(), s),
				Kind:  wq.Scatter,
				Phase: ph.Index,
				Strip: s,
				Deps:  dedup(deps),
				Run: func(c *sim.CPU) {
					svm.Scatter(c, ops, eLocal.Stream, start, sct.Array, sct.Fields, start, sct.Index, start, count, sct.Mode, b)
				},
			})
		}

		// Final strips feed the next phase's barrier.
		if s >= K-nbuf {
			for _, node := range nodes {
				if plan.Fused {
					barrier = append(barrier, fusedID[s])
					break
				}
				barrier = append(barrier, kernelID[node][s])
			}
			for _, e := range ph.Outs {
				barrier = append(barrier, scatterID[e][s])
			}
		}
	}
	sc.prevBarrier = dedup(barrier)
}

// orderNodes returns the phase's kernels in graph topological order.
func orderNodes(ph *sdf.Phase) ([]*sdf.Node, error) {
	// Phase.Nodes is already in the graph's topological order.
	return ph.Nodes, nil
}

func dedup(ids []int) []int {
	if len(ids) < 2 {
		return ids
	}
	seen := make(map[int]bool, len(ids))
	out := ids[:0]
	for _, id := range ids {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

// Summary renders the strip plan, for experiment logs.
func (p *Program) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "program %s: %d tasks, %d phases\n", p.Graph.Name, len(p.Tasks), len(p.Phases))
	for _, pl := range p.Phases {
		fused := ""
		if pl.Fused {
			fused = ", fused"
		}
		fmt.Fprintf(&sb, "  phase %d: N=%d strip=%d (%d strips, %d B/strip%s)\n",
			pl.Phase.Index, pl.Phase.N, pl.StripElems, pl.Strips, pl.BytesPerStrip, fused)
	}
	return sb.String()
}
