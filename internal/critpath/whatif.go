package critpath

import (
	"fmt"
)

// Scenario is one counterfactual over the frozen DAG: per-kind task
// duration multipliers, optionally with the two-context overlap
// removed (the 1ctx counterfactual).
//
// The prediction is COZ-style virtual speedup made exact: task
// durations are rescaled and the schedule is replayed through the DAG.
// Each task's recorded scheduling lag (the gap between its binding
// predecessor's completion and its own start: dispatch latency,
// admission delay) is carried on that binding edge only — slack
// predecessors contribute just their completion, because their
// recorded slack was an artefact of the old timing, not a constraint.
// The identity scenario therefore reproduces the original schedule
// exactly. What rescaling deliberately does NOT model: contention
// changes (a faster memory system changes bus queueing, which changes
// durations beyond the applied scale) and schedule changes (the work
// queue might pick a different ready order). The empirical cross-check
// in bench quantifies that gap.
type Scenario struct {
	Name string
	// Scale multiplies the duration of tasks of each wq.Kind
	// (gather, kernel, scatter). 1.0 leaves a kind untouched.
	Scale [3]float64
	// Serialize predicts the single-context mapping: every task runs
	// in schedule (ID) order on one context with no overlap, keeping
	// dependency edges but dropping the recorded scheduling lags (the
	// sequential executor has no admission or dispatch delay).
	Serialize bool
}

// Identity returns the no-change scenario, which must predict exactly
// the recorded makespan.
func Identity(name string) Scenario {
	return Scenario{Name: name, Scale: [3]float64{1, 1, 1}}
}

// Prediction is the analytical outcome of one scenario.
type Prediction struct {
	Scenario string
	// Baseline is the recorded makespan; Cycles the predicted one.
	Baseline uint64
	Cycles   uint64
	// Delta is (Cycles-Baseline)/Baseline: negative for a predicted
	// speedup. Exactly 0 for the identity scenario.
	Delta float64
}

func (p Prediction) String() string {
	return fmt.Sprintf("%s: %d -> %d cycles (%+.2f%%)", p.Scenario, p.Baseline, p.Cycles, 100*p.Delta)
}

// scaleDur rescales one task duration, rounding to nearest.
func scaleDur(dur uint64, scale float64) uint64 {
	if scale == 1 {
		return dur
	}
	if scale < 0 {
		scale = 0
	}
	return uint64(float64(dur)*scale + 0.5)
}

// newDur returns a node's rescaled duration: the final attempt scaled
// by its kind's factor, the recovery prefix unscaled (retries re-run
// the work, so they scale too — but recovery time is dominated by the
// injected re-executions which the scale already covers; keeping the
// recorded recovery length keeps the identity scenario exact).
func (s Scenario) newDur(n *node) uint64 {
	return scaleDur(n.ev.End-n.runStart, s.Scale[n.ev.Kind]) + (n.runStart - n.ev.Start)
}

// Predict replays the frozen DAG under the scenario and returns the
// predicted makespan. The prediction shifts the recorded makespan by
// the change in the round's last completion, so startup and drain
// cycles outside the task DAG are carried through unchanged.
func (g *Graph) Predict(s Scenario) Prediction {
	p := Prediction{Scenario: s.Name, Baseline: g.Makespan, Cycles: g.Makespan}
	if len(g.nodes) == 0 {
		return p
	}
	newEnd := make([]uint64, len(g.nodes))
	var predLast uint64
	if s.Serialize {
		// Schedule order on one context: admission order is task-ID
		// order, each task starts when its predecessor in the chain
		// and all its dependencies have finished.
		order := make([]int, len(g.nodes))
		for i := range order {
			order[i] = i
		}
		sortByID(g, order)
		prev := g.Base
		for _, i := range order {
			start := prev
			for _, j := range g.nodes[i].deps {
				if newEnd[j] > start {
					start = newEnd[j]
				}
			}
			newEnd[i] = start + s.newDur(&g.nodes[i])
			prev = newEnd[i]
			if newEnd[i] > predLast {
				predLast = newEnd[i]
			}
		}
	} else {
		// Forward pass in topological order. The recorded lag rides
		// the binding edge only; slack predecessors contribute their
		// completion without it. Unchanged durations then reproduce
		// the recorded schedule exactly (the binding edge's end plus
		// lag equals the recorded start, and every slack predecessor
		// finished at or before it).
		for i := range g.nodes {
			n := &g.nodes[i]
			e := n.ev
			start := e.Start // chain heads keep their recorded start
			if binding, _, _, _ := g.bindingPred(n); binding >= 0 {
				start = newEnd[binding] + (e.Start - g.nodes[binding].ev.End)
				if j := n.serial; j >= 0 && newEnd[j] > start {
					start = newEnd[j]
				}
				for _, j := range n.deps {
					if newEnd[j] > start {
						start = newEnd[j]
					}
				}
			}
			newEnd[i] = start + s.newDur(n)
			if newEnd[i] > predLast {
				predLast = newEnd[i]
			}
		}
	}
	shift := int64(predLast) - int64(g.LastEnd)
	pred := int64(g.Makespan) + shift
	if pred < 0 {
		pred = 0
	}
	p.Cycles = uint64(pred)
	if g.Makespan > 0 {
		p.Delta = (float64(p.Cycles) - float64(g.Makespan)) / float64(g.Makespan)
	}
	return p
}

// sortByID orders node indices by task ID (schedule order).
func sortByID(g *Graph, idx []int) {
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && g.nodes[idx[j]].ev.ID < g.nodes[idx[j-1]].ev.ID; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
}

// KindScales derives per-kind duration multipliers from two measured
// per-kind busy totals (exec.Result.KindCycles): the scale that, on
// aggregate, the knob change applied to each task kind. Used by the
// what-if driver for knobs whose per-task effect is not known a priori
// (DRAM latency, strip size). Kinds with no recorded cycles keep 1.
func KindScales(base, changed [3]uint64) [3]float64 {
	var s [3]float64
	for k := range s {
		s[k] = 1
		if base[k] > 0 {
			s[k] = float64(changed[k]) / float64(base[k])
		}
	}
	return s
}
