// Package critpath is the causal profiler over a replayed stream
// execution: it reconstructs the task DAG from exec trace events (the
// recorded dependency edges, same-context serialization and queue
// admission), extracts the exact critical path through the run, and
// attributes its length to gather/kernel/scatter execution, dependency
// waits, queue waits and fault recovery. Because the simulator is
// deterministic the path is exact, not sampled — and the same frozen
// DAG answers counterfactuals (see whatif.go) by rescaling task
// durations and replaying the schedule analytically.
package critpath

import (
	"errors"
	"fmt"
	"sort"

	"streamgpp/internal/exec"
	"streamgpp/internal/wq"
)

// SegKind classifies one interval of the critical path.
type SegKind uint8

// Segment kinds: the three task kinds plus the three ways the path can
// sit idle between tasks.
const (
	SegGather SegKind = iota
	SegKernel
	SegScatter
	// SegDepWait is time the path's next task spent admitted but
	// blocked on a dependency that had not yet completed.
	SegDepWait
	// SegQueueWait is time the path's next task waited on the queue
	// machinery itself: not yet admitted by the control thread, or
	// ready but not yet claimed (dispatch/wakeup latency).
	SegQueueWait
	// SegRecovery is time lost to faulted execution attempts before
	// the task's final successful run.
	SegRecovery

	numSegKinds
)

var segNames = [numSegKinds]string{"gather", "kernel", "scatter", "dep-wait", "queue-wait", "recovery"}

// String returns the segment kind's name.
func (k SegKind) String() string { return segNames[k] }

// SegKinds lists every kind in declaration order, for stable iteration.
func SegKinds() []SegKind {
	out := make([]SegKind, numSegKinds)
	for i := range out {
		out[i] = SegKind(i)
	}
	return out
}

// kindSeg maps a task kind to its execution segment kind.
func kindSeg(k wq.Kind) SegKind {
	switch k {
	case wq.Gather:
		return SegGather
	case wq.KernelRun:
		return SegKernel
	default:
		return SegScatter
	}
}

// Segment is one half-open interval [Start, End) of the critical path.
// Wait and recovery segments carry the task that was waiting (the
// path's next task), so every cycle of the path is attributable.
type Segment struct {
	Kind   SegKind
	Task   string // full task name (strip suffix included)
	TaskID int
	Ctx    int
	Phase  int
	Start  uint64
	End    uint64
	// Note is an optional diagnosis annotation carried into the render
	// and Perfetto export — the coverage profiler tags dep-wait segments
	// with the run's dominant fast-path bail reason, so a viewer sees
	// not just that the path stalled but why the stalled-on work was
	// slow (see AnnotateDepWaits).
	Note string
}

// Cycles returns the segment's length.
func (s Segment) Cycles() uint64 { return s.End - s.Start }

// node is one task of the reconstructed DAG.
type node struct {
	ev       exec.TraceEvent
	runStart uint64 // normalised RunStart (>= ev.Start)
	serial   int    // same-context predecessor index, -1 at chain head
	deps     []int  // dependency predecessor indices
}

// Graph is the task DAG of one analysed round of a traced execution.
type Graph struct {
	nodes []node

	// Base is the earliest queue admission of the round: the cycle the
	// schedule became able to make progress. Path lengths and waits are
	// measured from here.
	Base uint64
	// LastEnd is the last task completion of the round.
	LastEnd uint64
	// Makespan is the caller-supplied wall cycles of the whole run
	// (exec.Result.Cycles; for multi-step apps, the summed steps).
	Makespan uint64
	// Rounds is how many complete schedule executions the raw trace
	// held (multi-step apps re-run the program on a monotone clock;
	// a degraded run re-executes sequentially after an abort). Only
	// the last round is analysed.
	Rounds int
}

// Tasks returns the number of tasks in the analysed round.
func (g *Graph) Tasks() int { return len(g.nodes) }

// ErrEmptyTrace reports a trace with no events to analyse.
var ErrEmptyTrace = errors.New("critpath: empty trace")

// Build reconstructs the task DAG from a recorded trace. makespan is
// the run's total wall cycles (exec.Result.Cycles). Traces holding
// several rounds of the same schedule — multi-step applications, or a
// degraded run's aborted first attempt — are split on task-ID reuse
// and the last complete round is analysed.
func Build(tr *exec.Trace, makespan uint64) (*Graph, error) {
	if tr == nil || len(tr.Events) == 0 {
		return nil, ErrEmptyTrace
	}
	evs := tr.Events

	// The analysed round is the maximal suffix without a repeated task
	// ID: events are recorded at completion, so scanning backward stops
	// exactly at the previous round's last completion. This handles
	// both multi-step traces (every ID repeats each step) and degraded
	// runs (the sequential re-run repeats every ID the aborted attempt
	// completed).
	start := len(evs)
	seen := make(map[int]bool, len(evs))
	for i := len(evs) - 1; i >= 0; i-- {
		if seen[evs[i].ID] {
			break
		}
		seen[evs[i].ID] = true
		start = i
	}
	rounds := 1
	if start > 0 {
		// Count earlier rounds the same way, for reporting.
		for i := start - 1; i >= 0; {
			j := i
			inner := make(map[int]bool)
			for j >= 0 && !inner[evs[j].ID] {
				inner[evs[j].ID] = true
				j--
			}
			rounds++
			i = j
		}
	}

	g := &Graph{Rounds: rounds, Makespan: makespan}
	g.nodes = make([]node, 0, len(evs)-start)
	for _, e := range evs[start:] {
		n := node{ev: e, runStart: e.RunStart, serial: -1}
		if n.runStart < e.Start {
			n.runStart = e.Start // traces without retry provenance
		}
		if e.End < n.runStart {
			return nil, fmt.Errorf("critpath: task %d (%s) ends at %d before it starts at %d",
				e.ID, e.Name, e.End, n.runStart)
		}
		if e.Enqueue > e.Start {
			return nil, fmt.Errorf("critpath: task %d (%s) admitted at %d after it started at %d",
				e.ID, e.Name, e.Enqueue, e.Start)
		}
		g.nodes = append(g.nodes, n)
	}

	// Sort by (Start, End, ID): a topological order — every dependency
	// completes before its dependent starts, and same-context tasks
	// cannot overlap — used by both the path walk and the what-if
	// forward pass.
	sort.Slice(g.nodes, func(i, j int) bool {
		a, b := &g.nodes[i].ev, &g.nodes[j].ev
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.End != b.End {
			return a.End < b.End
		}
		return a.ID < b.ID
	})

	byID := make(map[int]int, len(g.nodes))
	for i := range g.nodes {
		byID[g.nodes[i].ev.ID] = i
	}

	lastOnCtx := map[int]int{}
	g.Base = g.nodes[0].ev.Enqueue
	for i := range g.nodes {
		n := &g.nodes[i]
		e := n.ev
		if e.Enqueue < g.Base {
			g.Base = e.Enqueue
		}
		if e.End > g.LastEnd {
			g.LastEnd = e.End
		}
		for _, d := range e.Deps {
			j, ok := byID[d]
			if !ok || j == i {
				continue // dependency outside the analysed round
			}
			p := &g.nodes[j].ev
			if p.End > e.Start {
				return nil, fmt.Errorf("critpath: task %d (%s) started at %d before dependency %d (%s) completed at %d",
					e.ID, e.Name, e.Start, p.ID, p.Name, p.End)
			}
			n.deps = append(n.deps, j)
		}
		if prev, ok := lastOnCtx[e.Ctx]; ok {
			if g.nodes[prev].ev.End > e.Start {
				return nil, fmt.Errorf("critpath: tasks %d and %d overlap on ctx%d",
					g.nodes[prev].ev.ID, e.ID, e.Ctx)
			}
			n.serial = prev
		}
		lastOnCtx[e.Ctx] = i
	}
	return g, nil
}

// bindingPred returns the predecessor whose completion bound the
// task's start in the recorded schedule: whichever constraint resolved
// last — the same-context predecessor freeing the context, or the
// latest-finishing dependency. Ties go to the serial predecessor (the
// context was the scarcer resource). pred is -1 for a chain head.
// tSer and tDep are the serial and latest-dependency completion
// cycles (0 when absent); depIdx the latest dependency's index (-1
// when the task has none).
func (g *Graph) bindingPred(n *node) (pred int, tSer, tDep uint64, depIdx int) {
	depIdx = -1
	for _, j := range n.deps {
		if end := g.nodes[j].ev.End; depIdx < 0 || end > tDep {
			tDep, depIdx = end, j
		}
	}
	if n.serial >= 0 {
		tSer = g.nodes[n.serial].ev.End
	}
	pred = n.serial
	if n.serial < 0 || (depIdx >= 0 && tDep > tSer) {
		pred = depIdx
	}
	return pred, tSer, tDep, depIdx
}

// Path is the critical path: a contiguous tiling of [Start, End) by
// segments, each cycle attributed to execution, waiting or recovery.
type Path struct {
	Segments []Segment
	// Start and End are absolute cycles (the round's base admission and
	// last completion); Length = End - Start = the sum of the segments.
	Start, End uint64
	Length     uint64
	// Makespan is the run's wall cycles, for the length <= makespan
	// invariant and percentage reporting.
	Makespan uint64
	// MaxCtxBusy is the largest per-context busy total of the round —
	// a lower bound on any schedule's critical path.
	MaxCtxBusy uint64
}

// CriticalPath walks the DAG backward from the last completion,
// following at every task the binding constraint — the predecessor
// (dependency or same-context) that finished last — and classifying
// every gap.
func (g *Graph) CriticalPath() *Path {
	p := &Path{Start: g.Base, End: g.LastEnd, Makespan: g.Makespan}
	if len(g.nodes) == 0 {
		return p
	}
	busy := map[int]uint64{}
	terminal := 0
	for i := range g.nodes {
		e := &g.nodes[i].ev
		busy[e.Ctx] += e.End - e.Start
		t := &g.nodes[terminal].ev
		if e.End > t.End || (e.End == t.End && e.Start > t.Start) {
			terminal = i
		}
	}
	for _, b := range busy {
		if b > p.MaxCtxBusy {
			p.MaxCtxBusy = b
		}
	}

	// Segments are collected walking backward in time, then reversed.
	var segs []Segment
	seg := func(kind SegKind, n *node, start, end uint64) {
		if end > start {
			e := n.ev
			segs = append(segs, Segment{Kind: kind, Task: e.Name, TaskID: e.ID,
				Ctx: e.Ctx, Phase: e.Phase, Start: start, End: end})
		}
	}
	cur := terminal
	for {
		n := &g.nodes[cur]
		e := n.ev
		seg(kindSeg(e.Kind), n, n.runStart, e.End)
		seg(SegRecovery, n, e.Start, n.runStart)

		pred, tSer, tDep, depIdx := g.bindingPred(n)
		if pred < 0 {
			// Chain head: everything back to the round base is queue
			// machinery (admission and dispatch).
			seg(SegQueueWait, n, g.Base, e.Start)
			break
		}
		if boundary := g.nodes[pred].ev.End; e.Start > boundary {
			kind := SegQueueWait
			switch {
			case e.Enqueue > tDep && e.Enqueue > tSer:
				// The task was not even in the queue when its other
				// constraints cleared: admission (the control thread)
				// was the binding constraint.
				kind = SegQueueWait
			case depIdx >= 0 && tDep >= tSer:
				kind = SegDepWait
			}
			seg(kind, n, boundary, e.Start)
		}
		cur = pred
	}
	for i, j := 0, len(segs)-1; i < j; i, j = i+1, j-1 {
		segs[i], segs[j] = segs[j], segs[i]
	}
	p.Segments = segs
	p.Length = p.End - p.Start
	return p
}

// AnnotateDepWaits tags every dependency-wait segment with the given
// note — typically the run's dominant fast-path bail reason from the
// coverage profiler, naming why the work the path waited on was slow.
// An empty note clears the annotations.
func (p *Path) AnnotateDepWaits(note string) {
	for i := range p.Segments {
		if p.Segments[i].Kind == SegDepWait {
			p.Segments[i].Note = note
		}
	}
}

// ByKind sums path cycles per segment kind.
func (p *Path) ByKind() map[SegKind]uint64 {
	out := map[SegKind]uint64{}
	for _, s := range p.Segments {
		out[s.Kind] += s.Cycles()
	}
	return out
}

// ByTask sums path cycles per task base name (strip suffix removed),
// waits included — the per-operation answer to "what is the run waiting
// for".
func (p *Path) ByTask() map[string]uint64 {
	out := map[string]uint64{}
	for _, s := range p.Segments {
		out[exec.BaseName(s.Task)] += s.Cycles()
	}
	return out
}

// ByPhase sums path cycles per schedule phase.
func (p *Path) ByPhase() map[int]uint64 {
	out := map[int]uint64{}
	for _, s := range p.Segments {
		out[s.Phase] += s.Cycles()
	}
	return out
}

// MemCycles returns the path cycles spent executing bulk memory tasks.
func (p *Path) MemCycles() uint64 {
	k := p.ByKind()
	return k[SegGather] + k[SegScatter]
}

// CompCycles returns the path cycles spent executing kernels.
func (p *Path) CompCycles() uint64 { return p.ByKind()[SegKernel] }

// WaitCycles returns the path cycles spent idle (dependency plus queue
// waits) or recovering.
func (p *Path) WaitCycles() uint64 {
	k := p.ByKind()
	return k[SegDepWait] + k[SegQueueWait] + k[SegRecovery]
}

// Bound names the path's limiting resource: "memory" when bulk
// gather/scatter execution dominates kernel execution on the path,
// "compute" otherwise. This is the measured counterpart of the
// advisor's EstMemCycles-vs-EstCompCycles verdict.
func (p *Path) Bound() string {
	if p.MemCycles() >= p.CompCycles() {
		return "memory"
	}
	return "compute"
}
