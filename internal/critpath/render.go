package critpath

import (
	"fmt"
	"io"
	"sort"

	"streamgpp/internal/obs"
)

// PerfettoTrack is the track number the critical path exports to —
// well above the hardware contexts so it renders as its own timeline.
const PerfettoTrack = 9

// PerfettoTrackName labels the critical-path track in the viewer.
const PerfettoTrackName = "critical path"

// Spans converts the path to Perfetto spans on the given track, so the
// longest path renders as a highlighted timeline above the per-context
// tracks: execution segments keep their task name, wait and recovery
// segments are labelled by kind.
func (p *Path) Spans(track int) []obs.Span {
	spans := make([]obs.Span, 0, len(p.Segments))
	for _, s := range p.Segments {
		name := s.Task
		switch s.Kind {
		case SegDepWait, SegQueueWait, SegRecovery:
			name = s.Kind.String() + " (" + s.Task + ")"
		}
		if s.Note != "" {
			name += " [" + s.Note + "]"
		}
		spans = append(spans, obs.Span{
			Name:  name,
			Cat:   "critpath-" + s.Kind.String(),
			Track: track,
			Start: s.Start,
			Dur:   s.Cycles(),
			Args:  map[string]int64{"phase": int64(s.Phase), "ctx": int64(s.Ctx), "task": int64(s.TaskID)},
		})
	}
	return spans
}

// Flatten exports the path summary as flat metric keys, following the
// run-ledger flattening conventions (obs.FlattenSnapshot): dots for
// hierarchy, one float per key.
func (p *Path) Flatten() map[string]float64 {
	out := map[string]float64{
		"critpath.length":       float64(p.Length),
		"critpath.makespan":     float64(p.Makespan),
		"critpath.max_ctx_busy": float64(p.MaxCtxBusy),
		"critpath.segments":     float64(len(p.Segments)),
	}
	if p.Makespan > 0 {
		out["critpath.frac_of_makespan"] = float64(p.Length) / float64(p.Makespan)
	}
	for k, cyc := range p.ByKind() {
		out["critpath.seg."+k.String()] = float64(cyc)
	}
	return out
}

// Render writes the path report: totals, per-kind attribution, the
// per-task table and the topk longest individual segments.
func (p *Path) Render(w io.Writer, topk int) {
	pct := func(cyc uint64) float64 {
		if p.Length == 0 {
			return 0
		}
		return 100 * float64(cyc) / float64(p.Length)
	}
	fmt.Fprintf(w, "critical path: %d cycles", p.Length)
	if p.Makespan > 0 {
		fmt.Fprintf(w, " (%.1f%% of %d-cycle makespan)", 100*float64(p.Length)/float64(p.Makespan), p.Makespan)
	}
	fmt.Fprintf(w, ", %d segments, bound: %s\n", len(p.Segments), p.Bound())

	byKind := p.ByKind()
	fmt.Fprintf(w, "  by kind:")
	for _, k := range SegKinds() {
		if cyc := byKind[k]; cyc > 0 {
			fmt.Fprintf(w, "  %s %d (%.0f%%)", k, cyc, pct(cyc))
		}
	}
	fmt.Fprintln(w)

	type kv struct {
		name string
		cyc  uint64
	}
	var rows []kv
	for name, cyc := range p.ByTask() {
		rows = append(rows, kv{name, cyc})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].cyc != rows[j].cyc {
			return rows[i].cyc > rows[j].cyc
		}
		return rows[i].name < rows[j].name
	})
	fmt.Fprintln(w, "  by task (waits attributed to the waiting task):")
	for _, r := range rows {
		fmt.Fprintf(w, "    %-24s %12d  %5.1f%%\n", r.name, r.cyc, pct(r.cyc))
	}

	if topk > 0 {
		segs := make([]Segment, len(p.Segments))
		copy(segs, p.Segments)
		sort.SliceStable(segs, func(i, j int) bool { return segs[i].Cycles() > segs[j].Cycles() })
		if topk > len(segs) {
			topk = len(segs)
		}
		fmt.Fprintf(w, "  top %d segments:\n", topk)
		for _, s := range segs[:topk] {
			fmt.Fprintf(w, "    %-10s %-20s ctx%d phase%d [%d, %d) %10d cycles",
				s.Kind, s.Task, s.Ctx, s.Phase, s.Start, s.End, s.Cycles())
			if s.Note != "" {
				fmt.Fprintf(w, "  (%s)", s.Note)
			}
			fmt.Fprintln(w)
		}
	}
}
