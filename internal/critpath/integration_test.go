package critpath_test

import (
	"reflect"
	"testing"

	"streamgpp/internal/apps/cdp"
	"streamgpp/internal/apps/fem"
	"streamgpp/internal/apps/micro"
	"streamgpp/internal/apps/neo"
	"streamgpp/internal/apps/spas"
	"streamgpp/internal/critpath"
	"streamgpp/internal/exec"
	"streamgpp/internal/obs"
	"streamgpp/internal/sim"
)

// checkPathInvariants asserts the structural invariants every critical
// path must satisfy against a real run's trace.
func checkPathInvariants(t *testing.T, name string, g *critpath.Graph, p *critpath.Path) {
	t.Helper()
	if p.Length == 0 {
		t.Fatalf("%s: empty critical path", name)
	}
	if p.Length > p.Makespan {
		t.Errorf("%s: path %d cycles exceeds makespan %d", name, p.Length, p.Makespan)
	}
	if p.Length < p.MaxCtxBusy {
		t.Errorf("%s: path %d cycles below max per-context busy %d", name, p.Length, p.MaxCtxBusy)
	}
	var sum uint64
	at := p.Start
	for i, s := range p.Segments {
		if s.Start != at || s.End <= s.Start {
			t.Fatalf("%s: segment %d not contiguous: %+v (expected start %d)", name, i, s, at)
		}
		sum += s.Cycles()
		at = s.End
	}
	if at != p.End || sum != p.Length {
		t.Errorf("%s: segments sum %d end %d, path length %d end %d", name, sum, at, p.Length, p.End)
	}
	if ident := g.Predict(critpath.Identity("ident")); ident.Delta != 0 {
		t.Errorf("%s: identity scenario predicted delta %v, want exactly 0", name, ident.Delta)
	}
}

// runQuickstart traces one quickstart run and builds its graph.
func runQuickstart(t *testing.T) (*critpath.Graph, *critpath.Path) {
	t.Helper()
	tr := &exec.Trace{}
	ecfg := exec.Defaults()
	ecfg.Trace = tr
	res, err := micro.RunQuickstart(micro.Params{N: 50000, Comp: 1, Seed: 1, Observer: obs.NewRegistry()}, ecfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := critpath.Build(tr, res.Stream.Cycles)
	if err != nil {
		t.Fatal(err)
	}
	return g, g.CriticalPath()
}

// TestFastPathIdenticalCriticalPath asserts the cycle-exact bulk fast
// path changes nothing the profiler can see: the reconstructed path and
// its flattened summary are byte-identical with the fast path on and
// off.
func TestFastPathIdenticalCriticalPath(t *testing.T) {
	if testing.Short() {
		t.Skip("slow (reference timing path)")
	}
	_, fast := runQuickstart(t)

	sim.SetDefaultFastPath(false)
	defer sim.SetDefaultFastPath(true)
	_, slow := runQuickstart(t)

	if !reflect.DeepEqual(fast.Segments, slow.Segments) {
		t.Fatalf("critical path differs with fast path off:\nfast: %+v\nslow: %+v", fast.Segments, slow.Segments)
	}
	if !reflect.DeepEqual(fast.Flatten(), slow.Flatten()) {
		t.Fatalf("flattened summary differs: %v vs %v", fast.Flatten(), slow.Flatten())
	}
}

// TestInvariantsOnBundledApps reconstructs the critical path of every
// bundled experiment's stream run and checks the structural invariants
// hold on real traces — multi-phase apps, scatter-adds, multi-step
// solvers included.
func TestInvariantsOnBundledApps(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	type app struct {
		name string
		run  func(ecfg exec.Config) (exec.Result, error)
	}
	cases := []app{
		{"quickstart", func(ecfg exec.Config) (exec.Result, error) {
			r, err := micro.RunQuickstart(micro.Params{N: 50000, Comp: 1, Seed: 1, Observer: obs.NewRegistry()}, ecfg)
			return r.Stream, err
		}},
		{"ldst", func(ecfg exec.Config) (exec.Result, error) {
			r, err := micro.RunLDST(micro.Params{N: 50000, Comp: 1, Seed: 1, Observer: obs.NewRegistry()}, ecfg)
			return r.Stream, err
		}},
		{"gatscat", func(ecfg exec.Config) (exec.Result, error) {
			r, err := micro.RunGATSCAT(micro.Params{N: 50000, Comp: 1, Seed: 1, Observer: obs.NewRegistry()}, ecfg)
			return r.Stream, err
		}},
		{"prodcon", func(ecfg exec.Config) (exec.Result, error) {
			r, err := micro.RunPRODCON(micro.Params{N: 50000, Comp: 1, Seed: 1, Observer: obs.NewRegistry()}, ecfg)
			return r.Stream, err
		}},
		{"prodcon-1ctx", func(ecfg exec.Config) (exec.Result, error) {
			r, err := micro.RunPRODCON(micro.Params{N: 50000, Comp: 1, Seed: 1, SingleCtx: true, Observer: obs.NewRegistry()}, ecfg)
			return r.Stream, err
		}},
		{"fem-euler-lin", func(ecfg exec.Config) (exec.Result, error) {
			p := fem.EulerLin
			p.Steps = 1
			r, err := fem.Run(p, ecfg)
			return r.Stream, err
		}},
		{"cdp-4n4096", func(ecfg exec.Config) (exec.Result, error) {
			r, err := cdp.Run(cdp.Grid4n4096, ecfg)
			return r.Stream, err
		}},
		{"neo-8k", func(ecfg exec.Config) (exec.Result, error) {
			r, err := neo.Run(neo.Params{Elements: 8192, Seed: 1}, ecfg)
			return r.Stream, err
		}},
		{"spas-8k", func(ecfg exec.Config) (exec.Result, error) {
			r, err := spas.Run(spas.Params{Rows: 8192, NNZPerRow: spas.PaperNNZPerRow, Seed: 1}, ecfg)
			return r.Stream, err
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tr := &exec.Trace{}
			ecfg := exec.Defaults()
			ecfg.Trace = tr
			res, err := c.run(ecfg)
			if err != nil {
				t.Fatal(err)
			}
			g, err := critpath.Build(tr, res.Cycles)
			if err != nil {
				t.Fatal(err)
			}
			p := g.CriticalPath()
			checkPathInvariants(t, c.name, g, p)
			t.Logf("%s: path %d/%d cycles (%.1f%%), %d segments, bound %s",
				c.name, p.Length, p.Makespan, 100*float64(p.Length)/float64(p.Makespan),
				len(p.Segments), p.Bound())
		})
	}
}
