package critpath

import (
	"bytes"
	"strings"
	"testing"

	"streamgpp/internal/exec"
	"streamgpp/internal/wq"
)

// handBuilt is a 4-task DAG with a known longest path:
//
//	g0 (ctx1, [0,100))  ─┬→ k0 (ctx0, [100,300))  ─→ s0 (ctx1, [310,360))
//	g1 (ctx1, [100,220)) ┘     (k0 deps g0; s0 deps k0)
//	     (k0 also deps g1 — the later gather binds)
//
// k0 is admitted at 5, starts at 100 — but its binding constraint is
// g1's completion at 220? No: k0 starts at 100, so only g0 gates it.
// The exact layout below keeps wq semantics (deps complete before
// start): k0 deps {g0}, runs [100, 300); g1 is an independent gather
// the path must NOT include; s0 deps {k0}, admitted at 8, starts 310
// — a 10-cycle gap after k0 (queue dispatch, since it was admitted
// long before k0 finished... dep k0 ends 300 >= tSer, so dep-wait? The
// gap classification: s0's Enqueue=8 <= tDep=300, tDep >= tSer (s0's
// serial pred is g1 ending 220), so the gap [300,310) is dep-wait by
// the "dependency resolved last" rule.
//
// Expected path: queue-wait [2,10) + g0 [10,100) + k0 [100,300) +
// dep-wait [300,310) + s0 [310,360). Length 358 from base 2.
func handBuilt() *exec.Trace {
	return &exec.Trace{Events: []exec.TraceEvent{
		{Name: "g0#0", Kind: wq.Gather, Ctx: 1, ID: 0, Enqueue: 2, Start: 10, RunStart: 10, End: 100},
		{Name: "g1#0", Kind: wq.Gather, Ctx: 1, ID: 1, Enqueue: 4, Start: 100, RunStart: 100, End: 220},
		{Name: "k0#0", Kind: wq.KernelRun, Ctx: 0, ID: 2, Enqueue: 6, Start: 100, RunStart: 100, End: 300, Deps: []int{0}},
		{Name: "s0#0", Kind: wq.Scatter, Ctx: 1, ID: 3, Enqueue: 8, Start: 310, RunStart: 310, End: 360, Deps: []int{2}},
	}}
}

func TestGoldenFourTaskDAG(t *testing.T) {
	g, err := Build(handBuilt(), 400)
	if err != nil {
		t.Fatal(err)
	}
	if g.Tasks() != 4 || g.Rounds != 1 {
		t.Fatalf("tasks %d rounds %d", g.Tasks(), g.Rounds)
	}
	if g.Base != 2 || g.LastEnd != 360 {
		t.Fatalf("base %d lastEnd %d", g.Base, g.LastEnd)
	}
	p := g.CriticalPath()
	if p.Length != 358 {
		t.Fatalf("path length %d, want 358", p.Length)
	}
	want := []struct {
		kind SegKind
		task string
		cyc  uint64
	}{
		{SegQueueWait, "g0#0", 8},
		{SegGather, "g0#0", 90},
		{SegKernel, "k0#0", 200},
		{SegDepWait, "s0#0", 10},
		{SegScatter, "s0#0", 50},
	}
	if len(p.Segments) != len(want) {
		t.Fatalf("segments %+v", p.Segments)
	}
	for i, w := range want {
		s := p.Segments[i]
		if s.Kind != w.kind || s.Task != w.task || s.Cycles() != w.cyc {
			t.Fatalf("segment %d = %+v, want %+v", i, s, w)
		}
	}
	// The independent gather g1 is not on the path.
	if _, ok := p.ByTask()["g1"]; ok {
		t.Fatalf("g1 on the path: %v", p.ByTask())
	}
	checkInvariants(t, g, p)
}

// checkInvariants asserts the structural invariants every path must
// satisfy: length <= makespan, >= max per-context busy, contiguous
// segments summing to the length.
func checkInvariants(t *testing.T, g *Graph, p *Path) {
	t.Helper()
	if p.Length > p.Makespan {
		t.Fatalf("path %d cycles exceeds makespan %d", p.Length, p.Makespan)
	}
	if p.Length < p.MaxCtxBusy {
		t.Fatalf("path %d cycles below max ctx busy %d — the path must cover the busiest context", p.Length, p.MaxCtxBusy)
	}
	var sum uint64
	at := p.Start
	for i, s := range p.Segments {
		if s.Start != at {
			t.Fatalf("segment %d starts at %d, previous ended at %d (path not contiguous)", i, s.Start, at)
		}
		if s.End <= s.Start {
			t.Fatalf("segment %d empty or inverted: %+v", i, s)
		}
		sum += s.Cycles()
		at = s.End
	}
	if at != p.End {
		t.Fatalf("last segment ends at %d, path ends at %d", at, p.End)
	}
	if sum != p.Length {
		t.Fatalf("segments sum to %d, path length %d", sum, p.Length)
	}
}

func TestIdentityScenarioIsExact(t *testing.T) {
	g, err := Build(handBuilt(), 400)
	if err != nil {
		t.Fatal(err)
	}
	pred := g.Predict(Identity("ident"))
	if pred.Cycles != 400 || pred.Delta != 0 {
		t.Fatalf("identity predicted %d cycles (delta %v), want exactly the 400-cycle baseline", pred.Cycles, pred.Delta)
	}
}

func TestScenarioRescaling(t *testing.T) {
	g, err := Build(handBuilt(), 400)
	if err != nil {
		t.Fatal(err)
	}
	// Kernels twice as fast: k0 runs [100,200); s0's binding edge (dep
	// on k0, 10-cycle lag) now says 210, but ctx1 is busy with g1 until
	// 220, so s0 runs [220,270). Last end 360->270: predicted 400-90.
	pred := g.Predict(Scenario{Name: "kernel=2", Scale: [3]float64{1, 0.5, 1}})
	if pred.Cycles != 310 {
		t.Fatalf("kernel x2 predicted %d, want 310", pred.Cycles)
	}
	if pred.Delta >= 0 {
		t.Fatalf("speedup scenario predicted non-negative delta %v", pred.Delta)
	}
	// Slower gathers push the whole chain out: g0 [10,190), g1
	// [190,430), k0 (dep g0, zero lag) [190,390), s0 starts at
	// max(binding k0 390+10, serial g1 430) = 430, ends 480.
	// Shift 480-360=+120 -> 520.
	pred = g.Predict(Scenario{Name: "gather=2", Scale: [3]float64{2, 1, 1}})
	if pred.Cycles != 520 {
		t.Fatalf("gather x2 predicted %d, want 520", pred.Cycles)
	}
}

func TestSerializePredictsNoOverlap(t *testing.T) {
	g, err := Build(handBuilt(), 400)
	if err != nil {
		t.Fatal(err)
	}
	// Sequential in ID order from base 2: g0 90 + g1 120 + k0 200 +
	// s0 50 = 460 cycles of work ending at 462; shift 462-360=+102.
	pred := g.Predict(Scenario{Name: "1ctx", Scale: [3]float64{1, 1, 1}, Serialize: true})
	if pred.Cycles != 502 {
		t.Fatalf("serialize predicted %d, want 502", pred.Cycles)
	}
}

func TestBuildRejectsBadTraces(t *testing.T) {
	if _, err := Build(&exec.Trace{}, 0); err == nil {
		t.Fatal("empty trace accepted")
	}
	// Dependent starting before its dependency completes.
	bad := &exec.Trace{Events: []exec.TraceEvent{
		{Name: "a", Ctx: 0, ID: 0, Start: 0, RunStart: 0, End: 100},
		{Name: "b", Ctx: 1, ID: 1, Start: 50, RunStart: 50, End: 150, Deps: []int{0}},
	}}
	if _, err := Build(bad, 200); err == nil {
		t.Fatal("dependency-order violation accepted")
	}
	// Overlapping tasks on one context.
	bad = &exec.Trace{Events: []exec.TraceEvent{
		{Name: "a", Ctx: 0, ID: 0, Start: 0, RunStart: 0, End: 100},
		{Name: "b", Ctx: 0, ID: 1, Start: 50, RunStart: 50, End: 150},
	}}
	if _, err := Build(bad, 200); err == nil {
		t.Fatal("same-context overlap accepted")
	}
}

func TestMultiRoundTraceUsesLastRound(t *testing.T) {
	tr := handBuilt()
	// A second round: the same IDs again, later in time (a multi-step
	// app on a monotone clock).
	for _, e := range handBuilt().Events {
		e.Enqueue += 1000
		e.Start += 1000
		e.RunStart += 1000
		e.End += 1000
		tr.Events = append(tr.Events, e)
	}
	g, err := Build(tr, 800)
	if err != nil {
		t.Fatal(err)
	}
	if g.Rounds != 2 || g.Tasks() != 4 {
		t.Fatalf("rounds %d tasks %d", g.Rounds, g.Tasks())
	}
	if g.Base != 1002 || g.LastEnd != 1360 {
		t.Fatalf("last round not selected: base %d lastEnd %d", g.Base, g.LastEnd)
	}
	p := g.CriticalPath()
	if p.Length != 358 {
		t.Fatalf("path length %d, want 358", p.Length)
	}
	checkInvariants(t, g, p)
}

func TestRecoverySegment(t *testing.T) {
	tr := &exec.Trace{Events: []exec.TraceEvent{
		// A retried gather: claimed at 10, final attempt began at 40.
		{Name: "g#0", Kind: wq.Gather, Ctx: 1, ID: 0, Enqueue: 0, Start: 10, RunStart: 40, End: 100},
	}}
	g, err := Build(tr, 120)
	if err != nil {
		t.Fatal(err)
	}
	p := g.CriticalPath()
	by := p.ByKind()
	if by[SegRecovery] != 30 || by[SegGather] != 60 || by[SegQueueWait] != 10 {
		t.Fatalf("segments %v", by)
	}
	checkInvariants(t, g, p)
	// Rescaling scales the final attempt, not the recovery prefix.
	pred := g.Predict(Scenario{Name: "gather=0.5", Scale: [3]float64{0.5, 1, 1}})
	if pred.Cycles != 90 {
		t.Fatalf("predicted %d, want 90 (30 fewer gather cycles)", pred.Cycles)
	}
}

func TestRenderAndFlatten(t *testing.T) {
	g, err := Build(handBuilt(), 400)
	if err != nil {
		t.Fatal(err)
	}
	p := g.CriticalPath()
	var buf bytes.Buffer
	p.Render(&buf, 3)
	out := buf.String()
	for _, want := range []string{"critical path: 358 cycles", "by kind:", "by task", "top 3 segments", "kernel"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	f := p.Flatten()
	if f["critpath.length"] != 358 || f["critpath.seg.kernel"] != 200 {
		t.Fatalf("flatten %v", f)
	}
	spans := p.Spans(PerfettoTrack)
	if len(spans) != len(p.Segments) {
		t.Fatalf("%d spans for %d segments", len(spans), len(p.Segments))
	}
	for _, s := range spans {
		if s.Track != PerfettoTrack {
			t.Fatalf("span on track %d", s.Track)
		}
	}
}
