package obs

import (
	"strings"
	"testing"
)

func TestBandwidthReportDerivations(t *testing.T) {
	metrics := map[string]float64{
		"bw.l1.bytes":                     8000,
		"bw.l1.cycles":                    4000,
		"bw.l2.bytes":                     2560,
		"bw.l2.cycles":                    500,
		"bw.pf.bytes":                     1280,
		"bw.pf.cycles":                    250,
		"bw.dram.bytes":                   5000,
		"bw.dram.cycles":                  3400,
		"bw.wc.bytes":                     640,
		"bw.wc.cycles":                    80,
		"bw.tlb.walk_cycles":              220,
		"exec.stream2.kind_cycles.kernel": 10000,
	}
	r := NewBandwidthReport(metrics, 10000, 1.5)
	if got := r.DRAMBytes(); got != 5000 {
		t.Errorf("DRAMBytes = %v, want 5000", got)
	}
	if got := r.TotalBytes(); got != 8000+2560+1280+5000+640 {
		t.Errorf("TotalBytes = %v", got)
	}
	if got := r.AchievedBytesPerCycle(); got != 0.5 {
		t.Errorf("AchievedBytesPerCycle = %v, want 0.5", got)
	}
	if got := r.Utilization(); got != 0.5/1.5 {
		t.Errorf("Utilization = %v, want %v", got, 0.5/1.5)
	}
	if got := r.ArithmeticIntensity(); got != 2 {
		t.Errorf("ArithmeticIntensity = %v, want 2", got)
	}
	if got := r.Row("l2"); got.Bytes != 2560 || got.OccCycles != 500 {
		t.Errorf("Row(l2) = %+v", got)
	}
	if got := r.TLBWalkCycles; got != 220 {
		t.Errorf("TLBWalkCycles = %v, want 220", got)
	}

	var b strings.Builder
	r.Render(&b)
	out := b.String()
	for _, want := range []string{"DRAM", "L1 hit", "WC buffer", "TLB walks",
		"roofline", "33.3% utilized", "kernel cycles per DRAM byte"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestBandwidthReportEmptyAndPartial(t *testing.T) {
	// Missing keys (regular-program runs, v1 ledger entries) degrade to
	// zero rows and zero derived figures, never a panic or NaN.
	r := NewBandwidthReport(nil, 0, 0)
	if len(r.Levels) != len(BandwidthLevels) {
		t.Fatalf("expected %d rows, got %d", len(BandwidthLevels), len(r.Levels))
	}
	if r.DRAMBytes() != 0 || r.AchievedBytesPerCycle() != 0 ||
		r.Utilization() != 0 || r.ArithmeticIntensity() != 0 {
		t.Fatalf("empty report not zero: %+v", r)
	}
	var b strings.Builder
	r.Render(&b) // must not divide by zero
	if !strings.Contains(b.String(), "roofline") {
		t.Fatalf("render broke on empty report:\n%s", b.String())
	}

	// stream1 kernel cycles are found when stream2's are absent.
	r = NewBandwidthReport(map[string]float64{
		"bw.dram.bytes":                   100,
		"exec.stream1.kind_cycles.kernel": 400,
	}, 1000, 1.5)
	if got := r.ArithmeticIntensity(); got != 4 {
		t.Errorf("stream1 fallback intensity = %v, want 4", got)
	}
}
