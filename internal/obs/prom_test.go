package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestWritePromGolden pins the exposition byte-for-byte: metric-name
// escaping (dots, spaces, braces, leading digits), HELP/TYPE lines,
// histogram bucket cumulativity and the derived quantile gauges. If
// the encoding changes deliberately, regenerate with
// UPDATE_GOLDEN=1 go test ./internal/obs -run TestWritePromGolden.
func TestWritePromGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("exec.strip_retries").Add(3)
	r.Counter("9starts.with-digit{x}").Inc()
	g := r.Gauge("wq depth")
	g.Set(7)
	g.Set(2)
	h := r.Histogram("streamd.run_ms")
	for _, v := range []float64{0.5, 3, 3, 100} {
		h.Observe(v)
	}
	r.Info("streamd.build_info", map[string]string{
		"goversion": "go1.22.0",
		"revision":  "abc123",
		"weird":     "a\"b\\c\nd",
	})

	var buf bytes.Buffer
	if err := WriteProm(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "prom.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from golden file:\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}

// Bucket cumulativity is a hard invariant scrapers rely on: each
// le="B" sample counts every observation ≤ B, so the series is
// non-decreasing and ends at the total count.
func TestWritePromBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h")
	for v := 1; v <= 300; v++ {
		h.Observe(float64(v))
	}
	var buf bytes.Buffer
	if err := WriteProm(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var last int64 = -1
	var infSeen bool
	for _, line := range strings.Split(buf.String(), "\n") {
		if !strings.HasPrefix(line, "h_bucket{") {
			continue
		}
		fields := strings.Fields(line)
		n, err := strconv.ParseInt(fields[len(fields)-1], 10, 64)
		if err != nil {
			t.Fatalf("unparseable bucket line %q: %v", line, err)
		}
		if n < last {
			t.Fatalf("bucket series decreased: %q after %d", line, last)
		}
		last = n
		if strings.Contains(line, `le="+Inf"`) {
			infSeen = true
			if n != 300 {
				t.Fatalf("+Inf bucket = %d, want total 300", n)
			}
		}
	}
	if !infSeen {
		t.Fatal("no le=\"+Inf\" bucket emitted")
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"exec.strip_retries": "exec_strip_retries",
		"wq depth":           "wq_depth",
		"9lead":              "_9lead",
		"a:b":                "a:b",
		"bw.L1.bytes":        "bw_L1_bytes",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

// Snapshot quantiles must agree with the live instrument's, and both
// must bound the true quantile from above while never exceeding max.
func TestSnapshotQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q")
	for v := 1; v <= 1000; v++ {
		h.Observe(float64(v))
	}
	snap := r.Snapshot()["q"]
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		live, frozen := h.Quantile(q), snap.Quantile(q)
		if live != frozen {
			t.Errorf("q=%v: live %v != snapshot %v", q, live, frozen)
		}
		if frozen > h.Max() {
			t.Errorf("q=%v: quantile %v exceeds max %v", q, frozen, h.Max())
		}
		trueQ := q * 1000
		if frozen < trueQ {
			t.Errorf("q=%v: quantile %v below the true quantile %v (not an upper bound)", q, frozen, trueQ)
		}
	}
	if got := (MetricValue{Kind: KindGauge, Value: 5}).Quantile(0.5); got != 0 {
		t.Errorf("gauge Quantile = %v, want 0", got)
	}
}

// Info metrics render as a constant-1 gauge whose labels are escaped
// per the exposition grammar and emitted in sorted key order.
func TestWritePromInfoEscaping(t *testing.T) {
	r := NewRegistry()
	r.Info("build.info", map[string]string{
		"b": `back\slash`,
		"a": "line\nbreak",
		"c": `quo"te`,
	})
	var buf bytes.Buffer
	if err := WriteProm(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	want := `build_info{a="line\nbreak",b="back\\slash",c="quo\"te"} 1` + "\n"
	if !strings.Contains(buf.String(), want) {
		t.Errorf("info sample missing or misescaped:\n got %q\nwant substring %q", buf.String(), want)
	}
	if !strings.Contains(buf.String(), "# TYPE build_info gauge\n") {
		t.Errorf("info metric missing gauge TYPE line:\n%s", buf.String())
	}
}
