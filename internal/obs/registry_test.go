package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Inc()
	r.Counter("c").Add(4)
	if got := r.Counter("c").Value(); got != 5 {
		t.Fatalf("counter = %d", got)
	}

	g := r.Gauge("g")
	g.Set(10)
	g.Set(3)
	if g.Value() != 3 || g.Max() != 10 {
		t.Fatalf("gauge value %v max %v", g.Value(), g.Max())
	}
	g.SetMax(7)
	if g.Max() != 10 {
		t.Fatal("SetMax lowered the high-water mark")
	}
	g.SetMax(12)
	if g.Max() != 12 || g.Value() != 3 {
		t.Fatalf("SetMax: value %v max %v", g.Value(), g.Max())
	}

	h := r.Histogram("h")
	for _, v := range []float64{1, 2, 4, 8, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 115 || h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("hist count=%d sum=%v min=%v max=%v", h.Count(), h.Sum(), h.Min(), h.Max())
	}
	if h.Mean() != 23 {
		t.Fatalf("mean = %v", h.Mean())
	}
	if q := h.Quantile(0.5); q < 2 || q > 8 {
		t.Fatalf("p50 = %v", q)
	}
	if q := h.Quantile(1); q != 100 {
		t.Fatalf("p100 = %v", q)
	}
}

func TestSnapshotDelta(t *testing.T) {
	r := NewRegistry()
	r.Counter("n").Add(10)
	r.Gauge("g").Set(5)
	r.Histogram("h").Observe(2)
	before := r.Snapshot()

	r.Counter("n").Add(7)
	r.Gauge("g").Set(9)
	r.Histogram("h").Observe(4)
	after := r.Snapshot()

	d := after.Delta(before)
	if d["n"].Value != 7 {
		t.Fatalf("counter delta = %v", d["n"])
	}
	if d["g"].Value != 9 {
		t.Fatalf("gauge passes through: %v", d["g"])
	}
	if d["h"].Count != 1 || d["h"].Sum != 4 {
		t.Fatalf("hist delta = %v", d["h"])
	}

	// The snapshots themselves are frozen.
	if before["n"].Value != 10 || after["n"].Value != 17 {
		t.Fatalf("snapshots moved: %v %v", before["n"], after["n"])
	}
}

func TestNamesAndRender(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.last").Inc()
	r.Counter("a.first").Inc()
	r.Gauge("m.gauge").Set(1.5)
	r.Histogram("m.hist").Observe(3)

	names := r.Snapshot().Names()
	want := []string{"a.first", "m.gauge", "m.hist", "z.last"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}

	var buf bytes.Buffer
	r.Render(&buf)
	out := buf.String()
	for _, n := range want {
		if !strings.Contains(out, n) {
			t.Fatalf("render missing %s:\n%s", n, out)
		}
	}
}
