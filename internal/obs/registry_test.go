package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Inc()
	r.Counter("c").Add(4)
	if got := r.Counter("c").Value(); got != 5 {
		t.Fatalf("counter = %d", got)
	}

	g := r.Gauge("g")
	g.Set(10)
	g.Set(3)
	if g.Value() != 3 || g.Max() != 10 {
		t.Fatalf("gauge value %v max %v", g.Value(), g.Max())
	}
	g.SetMax(7)
	if g.Max() != 10 {
		t.Fatal("SetMax lowered the high-water mark")
	}
	g.SetMax(12)
	if g.Max() != 12 || g.Value() != 3 {
		t.Fatalf("SetMax: value %v max %v", g.Value(), g.Max())
	}

	h := r.Histogram("h")
	for _, v := range []float64{1, 2, 4, 8, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 115 || h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("hist count=%d sum=%v min=%v max=%v", h.Count(), h.Sum(), h.Min(), h.Max())
	}
	if h.Mean() != 23 {
		t.Fatalf("mean = %v", h.Mean())
	}
	if q := h.Quantile(0.5); q < 2 || q > 8 {
		t.Fatalf("p50 = %v", q)
	}
	if q := h.Quantile(1); q != 100 {
		t.Fatalf("p100 = %v", q)
	}
}

func TestSnapshotDelta(t *testing.T) {
	r := NewRegistry()
	r.Counter("n").Add(10)
	r.Gauge("g").Set(5)
	r.Histogram("h").Observe(2)
	before := r.Snapshot()

	r.Counter("n").Add(7)
	r.Gauge("g").Set(9)
	r.Histogram("h").Observe(4)
	after := r.Snapshot()

	d := after.Delta(before)
	if d["n"].Value != 7 {
		t.Fatalf("counter delta = %v", d["n"])
	}
	if d["g"].Value != 9 {
		t.Fatalf("gauge passes through: %v", d["g"])
	}
	if d["h"].Count != 1 || d["h"].Sum != 4 {
		t.Fatalf("hist delta = %v", d["h"])
	}

	// The snapshots themselves are frozen.
	if before["n"].Value != 10 || after["n"].Value != 17 {
		t.Fatalf("snapshots moved: %v %v", before["n"], after["n"])
	}
}

func TestNamesAndRender(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.last").Inc()
	r.Counter("a.first").Inc()
	r.Gauge("m.gauge").Set(1.5)
	r.Histogram("m.hist").Observe(3)

	names := r.Snapshot().Names()
	want := []string{"a.first", "m.gauge", "m.hist", "z.last"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}

	var buf bytes.Buffer
	r.Render(&buf)
	out := buf.String()
	for _, n := range want {
		if !strings.Contains(out, n) {
			t.Fatalf("render missing %s:\n%s", n, out)
		}
	}
}

// bucketQuantile's degenerate inputs: an empty histogram must report 0
// for every quantile (not NaN, not max garbage), and a histogram whose
// samples all land in one bucket must report that bucket's bound capped
// at the observed max for every quantile.
func TestBucketQuantileEmptyAndSingleBucket(t *testing.T) {
	var empty [HistBuckets]uint64
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := bucketQuantile(q, 0, &empty, 0); got != 0 {
			t.Errorf("empty histogram q=%v: got %v, want 0", q, got)
		}
	}

	// All 10 samples in bucket 3 ([4,8)), observed max 7: every
	// quantile must be min(8, 7) = 7 except q=1, which returns max.
	var single [HistBuckets]uint64
	single[3] = 10
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if got := bucketQuantile(q, 10, &single, 7); got != 7 {
			t.Errorf("single-bucket q=%v: got %v, want 7", q, got)
		}
	}

	// Same shape with max above the bucket bound: quantiles stay at the
	// bound (8) until q=1 hands back the true max.
	if got := bucketQuantile(0.5, 10, &single, 100); got != 8 {
		t.Errorf("single-bucket q=0.5 max=100: got %v, want bound 8", got)
	}
	if got := bucketQuantile(1, 10, &single, 100); got != 100 {
		t.Errorf("single-bucket q=1 max=100: got %v, want max 100", got)
	}

	// Bucket 0 (v < 1): bound is 1, still capped by max.
	var low [HistBuckets]uint64
	low[0] = 5
	if got := bucketQuantile(0.5, 5, &low, 0.25); got != 0.25 {
		t.Errorf("bucket-0 q=0.5: got %v, want 0.25", got)
	}
}

// Info metrics snapshot as constant-1 entries carrying their labels,
// pass through Delta untouched, and stay isolated from the source map.
func TestRegistryInfo(t *testing.T) {
	r := NewRegistry()
	src := map[string]string{"goversion": "go1.22.0"}
	r.Info("build.info", src)
	src["goversion"] = "mutated-after-registration"

	snap := r.Snapshot()
	v, ok := snap["build.info"]
	if !ok || v.Kind != KindInfo || v.Value != 1 {
		t.Fatalf("info snapshot = %+v, ok=%v", v, ok)
	}
	if v.Labels["goversion"] != "go1.22.0" {
		t.Errorf("labels aliased caller map: %v", v.Labels)
	}

	d := snap.Delta(snap)
	if dv := d["build.info"]; dv.Kind != KindInfo || dv.Value != 1 {
		t.Errorf("info through Delta = %+v, want unchanged constant 1", dv)
	}

	if flat := FlattenSnapshot(snap); len(flat) != 0 {
		t.Errorf("FlattenSnapshot leaked info metric: %v", flat)
	}
}
