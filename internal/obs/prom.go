package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file implements the pull half of the observability layer's
// service story: a Prometheus text-exposition (version 0.0.4) encoder
// over a registry snapshot. streamd serves it at GET /metricz so any
// scraper — Prometheus itself, curl in check.sh, the streamtop
// dashboard — reads the same registry the simulator and the job
// service write into. The encoding is deterministic (metrics in sorted
// name order, buckets in bound order, shortest-round-trip floats) so a
// golden-file test can pin it byte-for-byte.

// PromName maps a registry metric name onto the Prometheus name
// grammar [a-zA-Z_:][a-zA-Z0-9_:]*: every other rune becomes '_', and
// a leading digit gains a '_' prefix. The mapping is lossy by design
// (dots and underscores collide); the HELP line carries the original
// name so the source instrument stays identifiable.
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		switch {
		case r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z'):
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabelValue escapes a label value per the exposition grammar:
// backslash, double quote and newline are backslash-escaped.
func promLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// promLabels renders a label set as {k="v",...} with sorted keys (so
// the exposition stays deterministic); empty sets render as nothing.
func promLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(PromName(k))
		b.WriteString(`="`)
		b.WriteString(promLabelValue(labels[k]))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// promFloat renders a value in the exposition's number grammar.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promQuantiles are the summary quantiles WriteProm derives from every
// histogram, exposed as <name>_p50/_p95/_p99 gauges beside the bucket
// series (Prometheus forbids mixing histogram and summary sample
// families under one name, so the quantiles get their own).
var promQuantiles = [...]struct {
	suffix string
	q      float64
}{
	{"_p50", 0.50},
	{"_p95", 0.95},
	{"_p99", 0.99},
}

// WriteProm renders the snapshot in Prometheus text exposition format:
// counters and gauges one sample each (gauges also expose their
// high-water mark as <name>_max), histograms as cumulative
// <name>_bucket{le="..."} series over the fixed power-of-two bounds
// (HistBucketBounds) plus <name>_sum, <name>_count and the
// p50/p95/p99 gauges. Empty trailing buckets are elided — the series
// ends at the first bound whose cumulative count reaches the total,
// followed by the mandatory le="+Inf" sample.
func WriteProm(w io.Writer, s Snapshot) error {
	bounds := HistBucketBounds()
	for _, name := range s.Names() {
		v := s[name]
		pn := PromName(name)
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", pn, name); err != nil {
			return err
		}
		switch v.Kind {
		case KindCounter:
			fmt.Fprintf(w, "# TYPE %s counter\n%s %s\n", pn, pn, promFloat(v.Value))
		case KindInfo:
			// Info metrics are the constant-1 gauge-with-labels pattern
			// (…_build_info): the value never moves, the labels carry the
			// facts.
			fmt.Fprintf(w, "# TYPE %s gauge\n%s%s 1\n", pn, pn, promLabels(v.Labels))
		case KindGauge:
			fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", pn, pn, promFloat(v.Value))
			fmt.Fprintf(w, "# TYPE %s_max gauge\n%s_max %s\n", pn, pn, promFloat(v.Max))
		case KindHistogram:
			fmt.Fprintf(w, "# TYPE %s histogram\n", pn)
			var cum uint64
			for i, n := range v.Buckets {
				cum += n
				if math.IsInf(bounds[i], 1) {
					break // the +Inf sample below covers the last bucket
				}
				fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", pn, promFloat(bounds[i]), cum)
				if cum == v.Count {
					break
				}
			}
			fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, v.Count)
			fmt.Fprintf(w, "%s_sum %s\n", pn, promFloat(v.Sum))
			fmt.Fprintf(w, "%s_count %d\n", pn, v.Count)
			for _, pq := range promQuantiles {
				fmt.Fprintf(w, "# TYPE %s%s gauge\n%s%s %s\n",
					pn, pq.suffix, pn, pq.suffix, promFloat(v.Quantile(pq.q)))
			}
		}
	}
	return nil
}
