package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// This file implements the noise-aware performance-regression gate over
// run-ledger entries (ledger.go). Wall-clock on a shared machine is
// noisy, so the gate compares medians and widens its threshold by the
// baseline's own observed dispersion (median absolute deviation): a
// quiet baseline gets a tight gate, a noisy one a loose gate — bounded
// on both sides so a genuine ~20% slowdown always flags and ordinary
// jitter never does.

// GateOptions tunes the regression verdict.
type GateOptions struct {
	// MinRelative is the floor of the allowed slowdown: below this the
	// gate never fires, whatever the MAD says (sub-10% wall-clock
	// deltas are indistinguishable from scheduler noise at these run
	// lengths).
	MinRelative float64
	// MADFactor scales the baseline's relative MAD into the threshold:
	// allowed = 1 + max(MinRelative, MADFactor·MAD/median).
	MADFactor float64
	// MaxRelative caps the allowed slowdown so a pathologically noisy
	// baseline cannot mask a real regression.
	MaxRelative float64
	// MinSamples is how many runs an experiment needs on each side
	// before a verdict is rendered; thinner evidence yields a skipped
	// verdict, never a failure.
	MinSamples int
	// Metrics gates deterministic ledger metrics alongside the noisy
	// wall-clock gate. A metric verdict is skipped — never failed —
	// when either side lacks the key, so pre-coverage (schema v1)
	// baselines remain comparable.
	Metrics []MetricGate
}

// MetricGate bounds the current/baseline ratio of one flattened ledger
// metric (LedgerEntry.Metrics[Key]) per experiment. Metrics from the
// simulator are deterministic, so unlike the wall-clock gate these
// thresholds need no noise model: a clean re-run compares at exactly
// ratio 1. A zero bound disables that side.
type MetricGate struct {
	Key      string  // flattened metric key, e.g. "coverage.fastpath_pct"
	MaxRatio float64 // fire when current/baseline > MaxRatio (0: unbounded)
	MinRatio float64 // fire when current/baseline < MinRatio (0: unbounded)
}

// DefaultGateOptions returns the tuning used by streambench -compare:
// flag ≥ ~18% median slowdowns always, tolerate ≤ 10% always. Three
// metric gates ride along, each evaluated per experiment: fast-path
// coverage may not halve (a strip that stops batching silently runs
// 10–20× more simulated work per access), DRAM traffic may not grow
// past 1.5× (the simulator is bandwidth-bound, so a traffic blow-up is
// a latent slowdown even if wall-clock noise hides it), and DRAM
// occupied cycles may not grow past 1.5× either — occupancy can blow
// up without byte growth (row-buffer locality lost, accesses
// de-coalesced), so the bandwidth-attribution gate needs both axes.
func DefaultGateOptions() GateOptions {
	return GateOptions{
		MinRelative: 0.10, MADFactor: 4, MaxRelative: 0.18, MinSamples: 1,
		Metrics: []MetricGate{
			{Key: "coverage.fastpath_pct", MinRatio: 0.5},
			{Key: "bw.dram.bytes", MaxRatio: 1.5},
			{Key: "bw.dram.cycles", MaxRatio: 1.5},
		},
	}
}

// Verdict is the gate's per-experiment conclusion.
type Verdict struct {
	Experiment     string
	BaselineMedian float64 // ns
	CurrentMedian  float64 // ns
	BaselineRuns   int
	CurrentRuns    int
	Ratio          float64 // current / baseline
	Threshold      float64 // ratio above which the gate fires
	Regressed      bool
	Skipped        bool   // not enough evidence on one side
	Note           string // human-readable explanation
}

// GateReport is the gate's full output.
type GateReport struct {
	Verdicts  []Verdict
	Regressed bool // any verdict regressed
}

// median returns the middle of xs (mean of the middle two when even).
// xs is sorted in place.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// mad returns the median absolute deviation of xs about m, scaled by
// 1.4826 so it estimates a standard deviation under normal noise.
func mad(xs []float64, m float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	devs := make([]float64, len(xs))
	for i, x := range xs {
		devs[i] = math.Abs(x - m)
	}
	return 1.4826 * median(devs)
}

// wallByExperiment groups entries' wall-clock samples by experiment.
func wallByExperiment(entries []LedgerEntry) map[string][]float64 {
	out := map[string][]float64{}
	for _, e := range entries {
		if e.WallNs > 0 {
			out[e.Experiment] = append(out[e.Experiment], float64(e.WallNs))
		}
	}
	return out
}

// metricByExperiment groups one metric's samples by experiment,
// including only entries that carry the key.
func metricByExperiment(entries []LedgerEntry, key string) map[string][]float64 {
	out := map[string][]float64{}
	for _, e := range entries {
		if v, ok := e.Metrics[key]; ok {
			out[e.Experiment] = append(out[e.Experiment], v)
		}
	}
	return out
}

// gateMetric renders one experiment's verdict for one metric gate.
// Experiments where either side lacks the key are silently absent from
// the report (no verdict at all, not even a skip): v1 baselines would
// otherwise drown the table in skip rows.
func gateMetric(name string, g MetricGate, base, cur []float64) (Verdict, bool) {
	if len(base) == 0 || len(cur) == 0 {
		return Verdict{}, false
	}
	v := Verdict{
		Experiment:   name + " [" + g.Key + "]",
		BaselineRuns: len(base), CurrentRuns: len(cur),
		BaselineMedian: median(base), CurrentMedian: median(cur),
	}
	if v.BaselineMedian == 0 {
		// Ratio is undefined; a deterministic metric moving off zero is
		// worth a visible skip (unlike a missing key).
		v.Skipped = true
		v.Note = fmt.Sprintf("baseline %s is zero", g.Key)
		return v, true
	}
	v.Ratio = v.CurrentMedian / v.BaselineMedian
	switch {
	case g.MaxRatio > 0 && v.Ratio > g.MaxRatio:
		v.Threshold = g.MaxRatio
		v.Regressed = true
		v.Note = fmt.Sprintf("%s grew %.2fx (allowed %.2fx)", g.Key, v.Ratio, g.MaxRatio)
	case g.MinRatio > 0 && v.Ratio < g.MinRatio:
		v.Threshold = g.MinRatio
		v.Regressed = true
		v.Note = fmt.Sprintf("%s fell to %.2fx of baseline (floor %.2fx)", g.Key, v.Ratio, g.MinRatio)
	default:
		v.Threshold = g.MaxRatio
		if v.Threshold == 0 {
			v.Threshold = g.MinRatio
		}
		v.Note = fmt.Sprintf("%s steady (%.2fx)", g.Key, v.Ratio)
	}
	return v, true
}

// CompareLedgers gates current against baseline, one verdict per
// experiment present in the baseline (experiments new in current have
// nothing to regress against and are ignored), followed by one verdict
// per (experiment, metric gate) pair where both sides recorded the
// metric. Verdicts come out in experiment-name order.
func CompareLedgers(baseline, current []LedgerEntry, opt GateOptions) GateReport {
	if opt.MinSamples < 1 {
		opt.MinSamples = 1
	}
	base := wallByExperiment(baseline)
	cur := wallByExperiment(current)
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)

	var rep GateReport
	for _, name := range names {
		b, c := base[name], cur[name]
		v := Verdict{Experiment: name, BaselineRuns: len(b), CurrentRuns: len(c)}
		if len(b) < opt.MinSamples || len(c) < opt.MinSamples {
			v.Skipped = true
			v.Note = fmt.Sprintf("insufficient samples (baseline %d, current %d, need %d)",
				len(b), len(c), opt.MinSamples)
			rep.Verdicts = append(rep.Verdicts, v)
			continue
		}
		bm := median(b)
		v.BaselineMedian = bm
		v.CurrentMedian = median(c)
		if bm <= 0 {
			v.Skipped = true
			v.Note = "baseline median is zero"
			rep.Verdicts = append(rep.Verdicts, v)
			continue
		}
		rel := opt.MADFactor * mad(b, bm) / bm
		if rel < opt.MinRelative {
			rel = opt.MinRelative
		}
		if rel > opt.MaxRelative {
			rel = opt.MaxRelative
		}
		v.Threshold = 1 + rel
		v.Ratio = v.CurrentMedian / bm
		v.Regressed = v.Ratio > v.Threshold
		switch {
		case v.Regressed:
			v.Note = fmt.Sprintf("%.0f%% slower than baseline (allowed %.0f%%)",
				100*(v.Ratio-1), 100*(v.Threshold-1))
			rep.Regressed = true
		case v.Ratio < 1:
			v.Note = fmt.Sprintf("%.0f%% faster", 100*(1-v.Ratio))
		default:
			v.Note = fmt.Sprintf("within noise (+%.0f%% ≤ %.0f%%)",
				100*(v.Ratio-1), 100*(v.Threshold-1))
		}
		rep.Verdicts = append(rep.Verdicts, v)
	}
	for _, g := range opt.Metrics {
		mbase := metricByExperiment(baseline, g.Key)
		mcur := metricByExperiment(current, g.Key)
		for _, name := range names {
			if v, ok := gateMetric(name, g, mbase[name], mcur[name]); ok {
				rep.Verdicts = append(rep.Verdicts, v)
				if v.Regressed {
					rep.Regressed = true
				}
			}
		}
	}
	return rep
}

// Render writes the verdict table.
func (rep GateReport) Render(w io.Writer) {
	width := len("experiment")
	for _, v := range rep.Verdicts {
		if len(v.Experiment) > width {
			width = len(v.Experiment)
		}
	}
	fmt.Fprintf(w, "%-*s  %12s  %12s  %7s  %7s  %-4s  %s\n",
		width, "experiment", "baseline", "current", "ratio", "allowed", "ok", "note")
	for _, v := range rep.Verdicts {
		if v.Skipped {
			fmt.Fprintf(w, "%-*s  %12s  %12s  %7s  %7s  %-4s  %s\n",
				width, v.Experiment, "-", "-", "-", "-", "skip", v.Note)
			continue
		}
		ok := "PASS"
		if v.Regressed {
			ok = "FAIL"
		}
		fmt.Fprintf(w, "%-*s  %12.0f  %12.0f  %7.3f  %7.3f  %-4s  %s\n",
			width, v.Experiment, v.BaselineMedian, v.CurrentMedian, v.Ratio, v.Threshold, ok, v.Note)
	}
}
