package obs

import (
	"bytes"
	"strings"
	"testing"
)

// trendEntry builds one minimal ledger entry for trend tests.
func trendEntry(exp string, wallNs int64, cps, cov float64) LedgerEntry {
	return LedgerEntry{
		Schema:          LedgerSchema,
		Experiment:      exp,
		WallNs:          wallNs,
		SimCyclesPerSec: cps,
		Metrics:         map[string]float64{"coverage.fastpath_pct": cov},
	}
}

// A long steady history whose newest run jumps 3x must flag high; the
// steady series beside it must not.
func TestTrendAnomalyHigh(t *testing.T) {
	var entries []LedgerEntry
	wall := []int64{100, 102, 98, 101, 99, 100, 102, 98, 101, 300}
	for _, w := range wall {
		entries = append(entries, trendEntry("fig9", w, 50, 80))
	}
	rows := TrendReport(entries, DefaultTrendOptions())
	if len(rows) != 1 || rows[0].Experiment != "fig9" || rows[0].Runs != 10 {
		t.Fatalf("rows = %+v", rows)
	}
	if !rows[0].Anomalous {
		t.Fatal("3x wall-clock jump not flagged")
	}
	for _, s := range rows[0].Series {
		switch s.Label {
		case "wall_ns":
			if !s.Anomalous || s.Direction != "high" {
				t.Errorf("wall_ns = %+v, want anomalous high", s)
			}
			if s.Latest != 300 || s.Median != 100.5 {
				t.Errorf("wall_ns latest/median = %v/%v, want 300/100.5", s.Latest, s.Median)
			}
		default:
			if s.Anomalous {
				t.Errorf("steady series %s flagged: %+v", s.Label, s)
			}
		}
	}
}

// A drop flags with direction low.
func TestTrendAnomalyLow(t *testing.T) {
	var entries []LedgerEntry
	for _, c := range []float64{50, 51, 49, 50, 50, 10} {
		entries = append(entries, trendEntry("fem", 100, c, 80))
	}
	rows := TrendReport(entries, DefaultTrendOptions())
	var found bool
	for _, s := range rows[0].Series {
		if s.Label == "sim_cycles_per_sec" {
			found = true
			if !s.Anomalous || s.Direction != "low" {
				t.Errorf("throughput collapse = %+v, want anomalous low", s)
			}
		}
	}
	if !found {
		t.Fatal("sim_cycles_per_sec series missing")
	}
}

// Under MinRuns of history there is no "normal" to deviate from: even
// a wild latest value must stay unflagged.
func TestTrendThinHistoryUnflagged(t *testing.T) {
	entries := []LedgerEntry{
		trendEntry("cdp", 100, 50, 80),
		trendEntry("cdp", 100, 50, 80),
		trendEntry("cdp", 900, 50, 80),
	}
	rows := TrendReport(entries, DefaultTrendOptions())
	if rows[0].Anomalous {
		t.Errorf("flagged with only %d runs (MinRuns %d): %+v",
			rows[0].Runs, DefaultTrendOptions().MinRuns, rows[0].Series)
	}
}

// Jitter inside the relative floor must not flag even when the MAD is
// zero (identical history makes any deviation infinitely many MADs).
func TestTrendRelativeFloor(t *testing.T) {
	var entries []LedgerEntry
	for i := 0; i < 8; i++ {
		entries = append(entries, trendEntry("micro", 1000, 50, 80))
	}
	entries = append(entries, trendEntry("micro", 1050, 50, 80)) // +5% < 10% floor
	rows := TrendReport(entries, DefaultTrendOptions())
	for _, s := range rows[0].Series {
		if s.Label == "wall_ns" && s.Anomalous {
			t.Errorf("5%% jitter flagged despite 10%% relative floor: %+v", s)
		}
	}
}

// Entries missing a series (old schema, different tool) are skipped
// per-series, and experiments sort by name.
func TestTrendMissingSeriesAndOrder(t *testing.T) {
	entries := []LedgerEntry{
		{Schema: LedgerSchema, Experiment: "zeta", WallNs: 10},
		{Schema: LedgerSchema, Experiment: "alpha", WallNs: 20},
	}
	rows := TrendReport(entries, DefaultTrendOptions())
	if len(rows) != 2 || rows[0].Experiment != "alpha" || rows[1].Experiment != "zeta" {
		t.Fatalf("rows out of order: %+v", rows)
	}
	for _, row := range rows {
		if len(row.Series) != 1 || row.Series[0].Label != "wall_ns" {
			t.Errorf("%s: series = %+v, want wall_ns only", row.Experiment, row.Series)
		}
	}
}

func TestRenderTrend(t *testing.T) {
	var entries []LedgerEntry
	for _, w := range []int64{100, 100, 100, 100, 400} {
		entries = append(entries, trendEntry("fig11", w, 50, 80))
	}
	var buf bytes.Buffer
	RenderTrend(&buf, TrendReport(entries, DefaultTrendOptions()))
	out := buf.String()
	for _, want := range []string{"fig11", "wall_ns", "ANOMALY(high)"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}

	buf.Reset()
	RenderTrend(&buf, nil)
	if !strings.Contains(buf.String(), "no entries") {
		t.Errorf("empty render = %q", buf.String())
	}
}
