package obs

import (
	"runtime"
	"testing"
)

// A Collect must leave every gauge populated with live process state:
// at minimum one goroutine exists and the heap is nonzero.
func TestRuntimeCollectorGauges(t *testing.T) {
	r := NewRegistry()
	c := NewRuntimeCollector(r)
	c.Collect()

	snap := r.Snapshot()
	for _, name := range []string{
		"go.goroutines", "go.heap.alloc_bytes", "go.heap.inuse_bytes",
		"go.heap.objects", "go.heap.sys_bytes", "go.gc.next_bytes",
	} {
		v, ok := snap[name]
		if !ok || v.Kind != KindGauge {
			t.Fatalf("%s missing from snapshot (%+v)", name, v)
		}
		if v.Value <= 0 {
			t.Errorf("%s = %v, want > 0", name, v.Value)
		}
	}
	if v := snap["go.sched.latency_us"]; v.Kind != KindHistogram || v.Count != 1 {
		t.Errorf("go.sched.latency_us = %+v, want one probe per Collect", v)
	}
}

// Forced GC cycles between Collects must land in the pause histogram
// exactly once each: the second Collect picks up the new cycles, a
// third with no GC in between adds nothing.
func TestRuntimeCollectorGCPauses(t *testing.T) {
	r := NewRegistry()
	c := NewRuntimeCollector(r)
	c.Collect()
	h := r.Histogram("go.gc.pause_us")
	base := h.Count()

	runtime.GC()
	runtime.GC()
	c.Collect()
	after := h.Count()
	if after < base+2 {
		t.Errorf("pause histogram count %d after 2 forced GCs (was %d), want >= +2", after, base)
	}

	var before, now runtime.MemStats
	runtime.ReadMemStats(&before)
	c.Collect()
	got := h.Count()
	runtime.ReadMemStats(&now)
	if before.NumGC == now.NumGC && got != after {
		t.Errorf("pause histogram grew from %d to %d with no GC between Collects", after, got)
	}
}

// BuildInfoLabels must always carry the running Go version; the VCS
// fields depend on how the test binary was built, so only goversion is
// a hard guarantee.
func TestBuildInfoLabels(t *testing.T) {
	labels := BuildInfoLabels()
	if labels["goversion"] != runtime.Version() {
		t.Errorf("goversion = %q, want %q", labels["goversion"], runtime.Version())
	}
}
