package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

// sloT0 is the fixed engine epoch every SLO test hangs times off.
var sloT0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// Golden latency math: 95 requests at 100ms and 5 at 10s against a
// 512ms/99% objective give SLI 0.95 and burn exactly (1-0.95)/0.01 =
// 5.0, with the target quantile at the slow cohort's value.
func TestSLOLatencyBurnGolden(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("streamd.run_ms")
	for i := 0; i < 95; i++ {
		h.Observe(100)
	}
	for i := 0; i < 5; i++ {
		h.Observe(10000)
	}

	obj := SLOObjective{
		Name: "run-latency", Class: SLOLatency,
		Metric: "streamd.run_ms", ThresholdMs: 512, Target: 0.99,
	}
	e := NewSLOEngine(sloT0, []SLOObjective{obj})
	rep := e.Report(sloT0.Add(2*time.Hour), r.Snapshot())

	if len(rep.Objectives) != 1 {
		t.Fatalf("objectives = %d, want 1", len(rep.Objectives))
	}
	st := rep.Objectives[0]
	if math.Abs(st.Budget-0.01) > 1e-12 {
		t.Errorf("budget = %v, want 0.01", st.Budget)
	}
	if len(st.Windows) != 2 {
		t.Fatalf("windows = %d, want default 5m/1h", len(st.Windows))
	}
	for _, ws := range st.Windows {
		if ws.Total != 100 || ws.Bad != 5 {
			t.Errorf("%s: total=%v bad=%v, want 100/5", ws.Window, ws.Total, ws.Bad)
		}
		if ws.SLI != 0.95 {
			t.Errorf("%s: SLI = %v, want 0.95", ws.Window, ws.SLI)
		}
		if ws.BurnRate != 5.0 {
			t.Errorf("%s: burn = %v, want exactly 5.0", ws.Window, ws.BurnRate)
		}
		if ws.QuantileMs != 10000 {
			t.Errorf("%s: q(0.99) = %v, want 10000", ws.Window, ws.QuantileMs)
		}
		if ws.Partial {
			t.Errorf("%s: partial after 2h uptime", ws.Window)
		}
	}
	// Both windows burn > 1 and lifetime budget is blown: breach.
	if st.Healthy || rep.Healthy {
		t.Errorf("healthy = %v/%v, want breach", st.Healthy, rep.Healthy)
	}
	if math.Abs(st.BudgetUsedPct-500) > 1e-9 {
		t.Errorf("budget-used = %v%%, want 500%%", st.BudgetUsedPct)
	}
}

// Golden ratio math: 2 bad out of 1000 against 99.9% gives SLI 0.998
// and burn (1-0.998)/0.001 = 2.0.
func TestSLORatioBurnGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("streamd.http.responses_5xx").Add(2)
	r.Counter("streamd.http.requests").Add(1000)

	obj := SLOObjective{
		Name: "availability", Class: SLORatio,
		Metric: "streamd.http.responses_5xx", Total: "streamd.http.requests",
		Target: 0.999,
	}
	e := NewSLOEngine(sloT0, []SLOObjective{obj})
	st := e.Report(sloT0.Add(2*time.Hour), r.Snapshot()).Objectives[0]
	for _, ws := range st.Windows {
		if ws.Total != 1000 || ws.Bad != 2 {
			t.Errorf("%s: total=%v bad=%v, want 1000/2", ws.Window, ws.Total, ws.Bad)
		}
		if ws.SLI != 0.998 {
			t.Errorf("%s: SLI = %v, want 0.998", ws.Window, ws.SLI)
		}
		// 0.002/0.001: representable exactly enough that the division
		// lands on 2.0 — pin it, the gauge feeds alerts.
		if ws.BurnRate != 2.0 {
			t.Errorf("%s: burn = %v, want 2.0", ws.Window, ws.BurnRate)
		}
	}
	if st.Healthy {
		t.Error("burning 2x on every window must breach")
	}
}

// Windowing: a baseline recorded before the window boundary is
// subtracted out, so old errors stop burning the short window while
// still burning the long one.
func TestSLOWindowBaselines(t *testing.T) {
	r := NewRegistry()
	bad := r.Counter("bad")
	total := r.Counter("total")
	obj := SLOObjective{Name: "avail", Class: SLORatio, Metric: "bad", Total: "total", Target: 0.9}
	e := NewSLOEngine(sloT0, []SLOObjective{obj}, 5*time.Minute, time.Hour)

	// Minute 0-10: 100 requests, 5 bad. Recorded at minute 10.
	bad.Add(5)
	total.Add(100)
	e.Record(sloT0.Add(10*time.Minute), r.Snapshot())

	// Minute 10-30: 100 clean requests. Report at minute 30.
	total.Add(100)
	rep := e.Report(sloT0.Add(30*time.Minute), r.Snapshot())
	ws := rep.Objectives[0].Windows

	// 5m window: baseline is the minute-10 sample (newest at or before
	// minute 25) — only the clean traffic remains.
	if ws[0].Window != "5m" || ws[0].Total != 100 || ws[0].Bad != 0 {
		t.Errorf("5m window = %+v, want total 100 bad 0", ws[0])
	}
	if ws[0].SLI != 1 || ws[0].BurnRate != 0 {
		t.Errorf("5m window SLI/burn = %v/%v, want 1/0", ws[0].SLI, ws[0].BurnRate)
	}

	// 1h window: no sample is old enough, so the baseline is process
	// start and the bad minutes still count; uptime 30m < 1h → partial.
	if ws[1].Window != "1h" || ws[1].Total != 200 || ws[1].Bad != 5 {
		t.Errorf("1h window = %+v, want total 200 bad 5", ws[1])
	}
	if !ws[1].Partial {
		t.Error("1h window not marked partial at 30m uptime")
	}
	// Lifetime bad fraction 5/200 = 25% of budget, and the 5m window is
	// clean: healthy despite the earlier bad minutes.
	if !rep.Objectives[0].Healthy {
		t.Error("objective breached though the 5m window is clean and budget remains")
	}
	if used := rep.Objectives[0].BudgetUsedPct; math.Abs(used-25) > 1e-9 {
		t.Errorf("budget-used = %v%%, want 25%%", used)
	}
}

// No traffic at all: SLI is 1 by convention (nothing failed), burn 0,
// healthy.
func TestSLONoTraffic(t *testing.T) {
	r := NewRegistry()
	objs := []SLOObjective{
		{Name: "lat", Class: SLOLatency, Metric: "streamd.run_ms", ThresholdMs: 100, Target: 0.99},
		{Name: "avail", Class: SLORatio, Metric: "bad", Total: "total", Target: 0.999},
	}
	e := NewSLOEngine(sloT0, objs)
	rep := e.Report(sloT0.Add(time.Minute), r.Snapshot())
	if !rep.Healthy {
		t.Fatal("idle service reported unhealthy")
	}
	for _, st := range rep.Objectives {
		for _, ws := range st.Windows {
			if ws.SLI != 1 || ws.BurnRate != 0 {
				t.Errorf("%s/%s: SLI=%v burn=%v, want 1/0", st.Name, ws.Window, ws.SLI, ws.BurnRate)
			}
		}
	}
}

// Record must thin by minStep and evict history older than the longest
// window (keeping the newest such sample as the baseline).
func TestSLORecordThinsAndEvicts(t *testing.T) {
	r := NewRegistry()
	r.Counter("total").Add(1)
	obj := SLOObjective{Name: "a", Class: SLORatio, Metric: "bad", Total: "total", Target: 0.9}
	e := NewSLOEngine(sloT0, []SLOObjective{obj}, 5*time.Minute, time.Hour)

	snap := r.Snapshot()
	e.Record(sloT0, snap)
	e.Record(sloT0.Add(time.Second), snap) // under minStep (1h/720 = 5s): dropped
	if len(e.samples) != 1 {
		t.Fatalf("samples = %d after sub-step Record, want 1", len(e.samples))
	}
	for m := 1; m <= 180; m++ {
		e.Record(sloT0.Add(time.Duration(m)*time.Minute), snap)
	}
	// Horizon is now-1h = minute 120; everything older must be gone
	// except the newest at-or-before-horizon sample (minute 120).
	if first := e.samples[0].t; first != sloT0.Add(120*time.Minute) {
		t.Errorf("oldest retained sample at %v, want minute 120", first)
	}
	if n := len(e.samples); n != 61 {
		t.Errorf("retained %d samples, want 61 (minutes 120..180)", n)
	}
}

// The human rendering must carry the page-relevant facts: objective
// names, windows, burn values and the breach marker.
func TestSLOReportRender(t *testing.T) {
	r := NewRegistry()
	r.Counter("bad").Add(10)
	r.Counter("total").Add(100)
	obj := SLOObjective{Name: "avail", Class: SLORatio, Metric: "bad", Total: "total", Target: 0.999}
	e := NewSLOEngine(sloT0, []SLOObjective{obj})
	rep := e.Report(sloT0.Add(time.Hour), r.Snapshot())

	var buf bytes.Buffer
	rep.Render(&buf)
	out := buf.String()
	for _, want := range []string{"avail", "5m", "1h", "BREACH", "budget-used"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
