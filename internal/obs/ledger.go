package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
)

// This file implements the durable half of the observability layer: an
// append-only JSONL run ledger. Every benchmark or trace run appends
// one self-describing line — what ran, under which configuration and
// commit, how long it took in wall-clock and simulated cycles, and
// what the metrics and recovery machinery recorded — so performance
// history accumulates across sessions in a greppable, diffable file
// that the regression gate (regress.go) can compare against.

// LedgerSchema is the current entry schema version. Readers accept any
// version in [LedgerMinSchema, LedgerSchema] — older baselines stay
// comparable — and writers always stamp the current version. Bump it
// when a field changes meaning.
//
// History:
//
//	v1: initial schema.
//	v2: Metrics may carry the coverage profiler's flattened keys
//	    (coverage.*, bw.*) alongside the existing exec.*/sim.* ones.
//	    Purely additive — v1 entries remain valid v2 inputs, and the
//	    regression gate's metric checks skip entries (either side)
//	    that lack a gated key.
const LedgerSchema = 2

// LedgerMinSchema is the oldest entry version readers still accept.
const LedgerMinSchema = 1

// LedgerEntry is one run's durable record. All maps use deterministic
// (sorted-key) JSON encoding, so identical runs produce identical lines
// apart from Time/WallNs.
type LedgerEntry struct {
	Schema     int    `json:"schema"`
	Time       string `json:"time,omitempty"` // RFC3339, caller-stamped
	Experiment string `json:"experiment"`
	Config     string `json:"config,omitempty"`      // human-readable config summary
	ConfigHash string `json:"config_hash,omitempty"` // Hash of the canonical config
	Commit     string `json:"commit,omitempty"`      // git describe --always --dirty
	FastPath   bool   `json:"fast_path"`
	Quick      bool   `json:"quick,omitempty"`
	Parallel   int    `json:"parallel,omitempty"`

	WallNs          int64   `json:"wall_ns"`              // host wall-clock for the run
	SimCycles       uint64  `json:"sim_cycles,omitempty"` // total simulated cycles
	SimCyclesPerSec float64 `json:"sim_cycles_per_sec,omitempty"`

	OutputHash     string             `json:"output_hash,omitempty"` // hash of the run's report text
	Metrics        map[string]float64 `json:"metrics,omitempty"`
	Recovery       map[string]uint64  `json:"recovery,omitempty"`
	FaultTraceHash string             `json:"fault_trace_hash,omitempty"`

	Source string            `json:"source,omitempty"` // which tool wrote the line
	Extra  map[string]string `json:"extra,omitempty"`
}

// Validate checks the entry satisfies the schema invariants the gate
// and history tooling rely on.
func (e *LedgerEntry) Validate() error {
	if e.Schema < LedgerMinSchema || e.Schema > LedgerSchema {
		return fmt.Errorf("obs: ledger entry schema %d, want %d..%d", e.Schema, LedgerMinSchema, LedgerSchema)
	}
	if e.Experiment == "" {
		return fmt.Errorf("obs: ledger entry without an experiment name")
	}
	if e.WallNs < 0 {
		return fmt.Errorf("obs: ledger entry %q has negative wall_ns %d", e.Experiment, e.WallNs)
	}
	return nil
}

// Hash returns a short stable FNV-1a hex digest of the given parts —
// the ledger's config/output/fault-trace fingerprint helper.
func Hash(parts ...string) string {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0}) // separator so ("ab","c") != ("a","bc")
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// FlattenSnapshot reduces a metrics snapshot to one representative
// float per instrument for the ledger: counter totals, gauge current
// values and histogram means.
func FlattenSnapshot(s Snapshot) map[string]float64 {
	if len(s) == 0 {
		return nil
	}
	out := make(map[string]float64, len(s))
	for name, v := range s {
		switch v.Kind {
		case KindHistogram:
			out[name] = v.Mean()
		case KindInfo:
			// Constant-1 info metrics carry their facts in labels; a
			// flat 1 would only pollute the ledger.
		default:
			out[name] = v.Value
		}
	}
	return out
}

// AppendLedger validates e and appends it as one JSON line to the file
// at path, creating the file if needed. Appends are atomic at the line
// level for the file sizes at hand (single short write).
func AppendLedger(path string, e LedgerEntry) error {
	if err := e.Validate(); err != nil {
		return err
	}
	line, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("obs: marshalling ledger entry: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("obs: opening ledger: %w", err)
	}
	defer f.Close()
	if _, err := f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("obs: appending to ledger: %w", err)
	}
	return f.Close()
}

// LedgerStats reports what a lenient ledger read encountered beyond
// the entries themselves.
type LedgerStats struct {
	// Entries is how many valid entries were read.
	Entries int
	// TornTail is true when the final line was unparseable JSON — the
	// torn-write signature of a writer killed mid-append — and was
	// skipped rather than failing the read.
	TornTail bool
	// TornLine is the 1-based line number of the skipped tail line.
	TornLine int
}

// ReadLedger parses every entry in the JSONL file at path, oldest
// first. Blank lines are skipped; a malformed or schema-mismatched line
// fails with its line number so a corrupted ledger is diagnosable —
// except a malformed *final* line, which is tolerated as a torn write
// (see ParseLedgerStats).
func ReadLedger(path string) ([]LedgerEntry, error) {
	entries, _, err := ReadLedgerStats(path)
	return entries, err
}

// ReadLedgerStats is ReadLedger plus torn-tail accounting.
func ReadLedgerStats(path string) ([]LedgerEntry, LedgerStats, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, LedgerStats{}, fmt.Errorf("obs: opening ledger: %w", err)
	}
	defer f.Close()
	return ParseLedgerStats(f)
}

// ParseLedger is ReadLedger over an arbitrary reader.
func ParseLedger(r io.Reader) ([]LedgerEntry, error) {
	entries, _, err := ParseLedgerStats(r)
	return entries, err
}

// ParseLedgerStats parses a JSONL ledger, tolerating exactly one kind
// of damage: a final line that does not parse as JSON. That is the
// crash-consistency case — AppendLedger writes line+'\n' in one write,
// so a writer killed mid-append (streamd on SIGKILL, a powered-off
// host) leaves a prefix of the last line and nothing else. Such a tail
// is skipped and counted in LedgerStats rather than failing the whole
// file. Unparseable JSON anywhere *before* the last line, or a
// well-formed line that fails schema Validate, is still a hard error:
// those are corruption, not a torn write. (A crash followed by a
// blind append would glue the next entry onto the torn prefix and turn
// it into mid-file corruption — writers that reopen a ledger should
// call RepairLedger first, as streamd does.)
func ParseLedgerStats(r io.Reader) ([]LedgerEntry, LedgerStats, error) {
	var out []LedgerEntry
	var stats LedgerStats
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineno := 0
	// A JSON parse failure is held pending until we know whether more
	// content follows: at EOF it is a tolerated torn tail, mid-file it
	// is corruption.
	var pendingErr error
	pendingLine := 0
	for sc.Scan() {
		lineno++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if pendingErr != nil {
			return out, stats, fmt.Errorf("obs: ledger line %d: %w", pendingLine, pendingErr)
		}
		var e LedgerEntry
		if err := json.Unmarshal(line, &e); err != nil {
			pendingErr, pendingLine = err, lineno
			continue
		}
		if err := e.Validate(); err != nil {
			return out, stats, fmt.Errorf("obs: ledger line %d: %w", lineno, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return out, stats, fmt.Errorf("obs: reading ledger: %w", err)
	}
	if pendingErr != nil {
		stats.TornTail = true
		stats.TornLine = pendingLine
	}
	stats.Entries = len(out)
	return out, stats, nil
}

// RepairLedger truncates a torn final line from the ledger at path,
// rewriting the file with only its valid entries. It returns whether a
// torn tail was removed. Call before reopening a ledger for appends:
// appending after a torn line would glue two records onto one line and
// turn a recoverable torn write into unrecoverable corruption.
func RepairLedger(path string) (bool, error) {
	entries, stats, err := ReadLedgerStats(path)
	if err != nil {
		return false, err
	}
	if !stats.TornTail {
		return false, nil
	}
	if err := WriteLedger(path, entries); err != nil {
		return true, fmt.Errorf("obs: repairing ledger: %w", err)
	}
	return true, nil
}

// WriteLedger writes entries as JSONL to path, replacing any existing
// file — used to write a fresh baseline for the regression gate.
func WriteLedger(path string, entries []LedgerEntry) error {
	var buf []byte
	for i := range entries {
		if err := entries[i].Validate(); err != nil {
			return err
		}
		line, err := json.Marshal(entries[i])
		if err != nil {
			return fmt.Errorf("obs: marshalling ledger entry: %w", err)
		}
		buf = append(buf, line...)
		buf = append(buf, '\n')
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return fmt.Errorf("obs: writing ledger: %w", err)
	}
	return nil
}

// ValidateLedgerFile checks every line of the ledger at path, returning
// how many entries it holds. The check.sh schema gate calls this. A
// torn final line is tolerated (it is the expected crash artifact, and
// every reader skips it identically); callers wanting to surface the
// warning use ReadLedgerStats.
func ValidateLedgerFile(path string) (int, error) {
	entries, err := ReadLedger(path)
	return len(entries), err
}
