package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
)

// This file implements the durable half of the observability layer: an
// append-only JSONL run ledger. Every benchmark or trace run appends
// one self-describing line — what ran, under which configuration and
// commit, how long it took in wall-clock and simulated cycles, and
// what the metrics and recovery machinery recorded — so performance
// history accumulates across sessions in a greppable, diffable file
// that the regression gate (regress.go) can compare against.

// LedgerSchema is the current entry schema version. Readers accept any
// version in [LedgerMinSchema, LedgerSchema] — older baselines stay
// comparable — and writers always stamp the current version. Bump it
// when a field changes meaning.
//
// History:
//
//	v1: initial schema.
//	v2: Metrics may carry the coverage profiler's flattened keys
//	    (coverage.*, bw.*) alongside the existing exec.*/sim.* ones.
//	    Purely additive — v1 entries remain valid v2 inputs, and the
//	    regression gate's metric checks skip entries (either side)
//	    that lack a gated key.
const LedgerSchema = 2

// LedgerMinSchema is the oldest entry version readers still accept.
const LedgerMinSchema = 1

// LedgerEntry is one run's durable record. All maps use deterministic
// (sorted-key) JSON encoding, so identical runs produce identical lines
// apart from Time/WallNs.
type LedgerEntry struct {
	Schema     int    `json:"schema"`
	Time       string `json:"time,omitempty"` // RFC3339, caller-stamped
	Experiment string `json:"experiment"`
	Config     string `json:"config,omitempty"`      // human-readable config summary
	ConfigHash string `json:"config_hash,omitempty"` // Hash of the canonical config
	Commit     string `json:"commit,omitempty"`      // git describe --always --dirty
	FastPath   bool   `json:"fast_path"`
	Quick      bool   `json:"quick,omitempty"`
	Parallel   int    `json:"parallel,omitempty"`

	WallNs          int64   `json:"wall_ns"`              // host wall-clock for the run
	SimCycles       uint64  `json:"sim_cycles,omitempty"` // total simulated cycles
	SimCyclesPerSec float64 `json:"sim_cycles_per_sec,omitempty"`

	OutputHash     string             `json:"output_hash,omitempty"` // hash of the run's report text
	Metrics        map[string]float64 `json:"metrics,omitempty"`
	Recovery       map[string]uint64  `json:"recovery,omitempty"`
	FaultTraceHash string             `json:"fault_trace_hash,omitempty"`

	Source string            `json:"source,omitempty"` // which tool wrote the line
	Extra  map[string]string `json:"extra,omitempty"`
}

// Validate checks the entry satisfies the schema invariants the gate
// and history tooling rely on.
func (e *LedgerEntry) Validate() error {
	if e.Schema < LedgerMinSchema || e.Schema > LedgerSchema {
		return fmt.Errorf("obs: ledger entry schema %d, want %d..%d", e.Schema, LedgerMinSchema, LedgerSchema)
	}
	if e.Experiment == "" {
		return fmt.Errorf("obs: ledger entry without an experiment name")
	}
	if e.WallNs < 0 {
		return fmt.Errorf("obs: ledger entry %q has negative wall_ns %d", e.Experiment, e.WallNs)
	}
	return nil
}

// Hash returns a short stable FNV-1a hex digest of the given parts —
// the ledger's config/output/fault-trace fingerprint helper.
func Hash(parts ...string) string {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0}) // separator so ("ab","c") != ("a","bc")
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// FlattenSnapshot reduces a metrics snapshot to one representative
// float per instrument for the ledger: counter totals, gauge current
// values and histogram means.
func FlattenSnapshot(s Snapshot) map[string]float64 {
	if len(s) == 0 {
		return nil
	}
	out := make(map[string]float64, len(s))
	for name, v := range s {
		switch v.Kind {
		case KindHistogram:
			out[name] = v.Mean()
		default:
			out[name] = v.Value
		}
	}
	return out
}

// AppendLedger validates e and appends it as one JSON line to the file
// at path, creating the file if needed. Appends are atomic at the line
// level for the file sizes at hand (single short write).
func AppendLedger(path string, e LedgerEntry) error {
	if err := e.Validate(); err != nil {
		return err
	}
	line, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("obs: marshalling ledger entry: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("obs: opening ledger: %w", err)
	}
	defer f.Close()
	if _, err := f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("obs: appending to ledger: %w", err)
	}
	return f.Close()
}

// ReadLedger parses every entry in the JSONL file at path, oldest
// first. Blank lines are skipped; a malformed or schema-mismatched line
// fails with its line number so a corrupted ledger is diagnosable.
func ReadLedger(path string) ([]LedgerEntry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("obs: opening ledger: %w", err)
	}
	defer f.Close()
	return ParseLedger(f)
}

// ParseLedger is ReadLedger over an arbitrary reader.
func ParseLedger(r io.Reader) ([]LedgerEntry, error) {
	var out []LedgerEntry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e LedgerEntry
		if err := json.Unmarshal(line, &e); err != nil {
			return out, fmt.Errorf("obs: ledger line %d: %w", lineno, err)
		}
		if err := e.Validate(); err != nil {
			return out, fmt.Errorf("obs: ledger line %d: %w", lineno, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return out, fmt.Errorf("obs: reading ledger: %w", err)
	}
	return out, nil
}

// WriteLedger writes entries as JSONL to path, replacing any existing
// file — used to write a fresh baseline for the regression gate.
func WriteLedger(path string, entries []LedgerEntry) error {
	var buf []byte
	for i := range entries {
		if err := entries[i].Validate(); err != nil {
			return err
		}
		line, err := json.Marshal(entries[i])
		if err != nil {
			return fmt.Errorf("obs: marshalling ledger entry: %w", err)
		}
		buf = append(buf, line...)
		buf = append(buf, '\n')
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return fmt.Errorf("obs: writing ledger: %w", err)
	}
	return nil
}

// ValidateLedgerFile checks every line of the ledger at path, returning
// how many entries it holds. The check.sh schema gate calls this.
func ValidateLedgerFile(path string) (int, error) {
	entries, err := ReadLedger(path)
	return len(entries), err
}
