package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestWriteTraceEvents(t *testing.T) {
	var buf bytes.Buffer
	err := WriteTraceEvents(&buf, TraceMeta{
		Process:       "test",
		Tracks:        map[int]string{0: "ctx0", 1: "ctx1"},
		CyclesPerUsec: 1000,
	}, []Span{
		{Name: "a#0", Cat: "gather", Track: 1, Start: 0, Dur: 2000, Args: map[string]int64{"strip": 0}},
		{Name: "zero", Cat: "kernel", Track: 0, Start: 2000, Dur: 0},
	}, []CounterPoint{
		{Name: "depth", T: 1000, V: 3},
	})
	if err != nil {
		t.Fatal(err)
	}

	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		OtherData   map[string]any   `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	byPh := map[string]int{}
	for _, e := range f.TraceEvents {
		byPh[e["ph"].(string)]++
	}
	if byPh["M"] != 3 { // process_name + two thread_names
		t.Fatalf("metadata events = %v: %v", byPh, f.TraceEvents)
	}
	if byPh["X"] != 2 || byPh["C"] != 1 {
		t.Fatalf("event mix = %v", byPh)
	}
	for _, e := range f.TraceEvents {
		if e["ph"] != "X" {
			continue
		}
		if dur := e["dur"].(float64); dur <= 0 {
			t.Fatalf("span %v has non-positive dur %v (zero-length spans must stay visible)", e["name"], dur)
		}
	}
	if f.OtherData["cyclesPerUsec"] == nil {
		t.Fatal("otherData lacks cyclesPerUsec")
	}
	// 2000 cycles at 1000 cycles/µs is 2 µs.
	for _, e := range f.TraceEvents {
		if e["name"] == "a#0" && e["dur"].(float64) != 2 {
			t.Fatalf("a#0 dur = %v µs, want 2", e["dur"])
		}
	}
}
