package obs

import (
	"path/filepath"
	"strings"
	"testing"
)

func sampleEntry(exp string, wallNs int64) LedgerEntry {
	return LedgerEntry{
		Schema:     LedgerSchema,
		Experiment: exp,
		Config:     "quick",
		ConfigHash: Hash("quick"),
		FastPath:   true,
		WallNs:     wallNs,
		SimCycles:  1000,
		Metrics:    map[string]float64{"sim.cycles": 1000},
		Recovery:   map[string]uint64{"retries": 0},
		Source:     "test",
	}
}

func TestLedgerAppendReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	want := []LedgerEntry{sampleEntry("fig5", 100), sampleEntry("fig6", 200)}
	for _, e := range want {
		if err := AppendLedger(path, e); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ReadLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("read %d entries, want 2", len(got))
	}
	for i := range want {
		if got[i].Experiment != want[i].Experiment || got[i].WallNs != want[i].WallNs {
			t.Errorf("entry %d = %+v, want %+v", i, got[i], want[i])
		}
		if got[i].Metrics["sim.cycles"] != 1000 {
			t.Errorf("entry %d metrics lost: %+v", i, got[i].Metrics)
		}
	}
}

func TestLedgerValidate(t *testing.T) {
	e := sampleEntry("fig5", 1)
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := e
	bad.Schema = 99
	if err := bad.Validate(); err == nil {
		t.Error("schema mismatch not rejected")
	}
	bad = e
	bad.Experiment = ""
	if err := bad.Validate(); err == nil {
		t.Error("empty experiment not rejected")
	}
	bad = e
	bad.WallNs = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative wall_ns not rejected")
	}
}

func TestLedgerRejectsMalformedLine(t *testing.T) {
	entries, err := ParseLedger(strings.NewReader(
		`{"schema":1,"experiment":"fig5","wall_ns":1}` + "\n" + `{"schema":1` + "\n"))
	if err == nil {
		t.Fatal("malformed line accepted")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error does not name the line: %v", err)
	}
	if len(entries) != 1 {
		t.Fatalf("valid prefix lost: %d entries", len(entries))
	}
}

func TestWriteLedgerAndValidateFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.jsonl")
	if err := WriteLedger(path, []LedgerEntry{sampleEntry("a", 1), sampleEntry("b", 2)}); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateLedgerFile(path)
	if err != nil || n != 2 {
		t.Fatalf("ValidateLedgerFile = %d, %v", n, err)
	}
}

func TestHashStable(t *testing.T) {
	if Hash("ab", "c") == Hash("a", "bc") {
		t.Error("hash ignores part boundaries")
	}
	if Hash("x") != Hash("x") {
		t.Error("hash not deterministic")
	}
	if len(Hash("x")) != 16 {
		t.Errorf("hash length %d, want 16", len(Hash("x")))
	}
}

func TestFlattenSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(5)
	r.Gauge("g").Set(2.5)
	r.Histogram("h").Observe(10)
	r.Histogram("h").Observe(20)
	flat := FlattenSnapshot(r.Snapshot())
	if flat["c"] != 5 || flat["g"] != 2.5 || flat["h"] != 15 {
		t.Fatalf("unexpected flatten: %v", flat)
	}
	if FlattenSnapshot(nil) != nil {
		t.Error("empty snapshot should flatten to nil")
	}
}
