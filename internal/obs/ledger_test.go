package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleEntry(exp string, wallNs int64) LedgerEntry {
	return LedgerEntry{
		Schema:     LedgerSchema,
		Experiment: exp,
		Config:     "quick",
		ConfigHash: Hash("quick"),
		FastPath:   true,
		WallNs:     wallNs,
		SimCycles:  1000,
		Metrics:    map[string]float64{"sim.cycles": 1000},
		Recovery:   map[string]uint64{"retries": 0},
		Source:     "test",
	}
}

func TestLedgerAppendReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	want := []LedgerEntry{sampleEntry("fig5", 100), sampleEntry("fig6", 200)}
	for _, e := range want {
		if err := AppendLedger(path, e); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ReadLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("read %d entries, want 2", len(got))
	}
	for i := range want {
		if got[i].Experiment != want[i].Experiment || got[i].WallNs != want[i].WallNs {
			t.Errorf("entry %d = %+v, want %+v", i, got[i], want[i])
		}
		if got[i].Metrics["sim.cycles"] != 1000 {
			t.Errorf("entry %d metrics lost: %+v", i, got[i].Metrics)
		}
	}
}

func TestLedgerValidate(t *testing.T) {
	e := sampleEntry("fig5", 1)
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := e
	bad.Schema = 99
	if err := bad.Validate(); err == nil {
		t.Error("schema mismatch not rejected")
	}
	bad = e
	bad.Experiment = ""
	if err := bad.Validate(); err == nil {
		t.Error("empty experiment not rejected")
	}
	bad = e
	bad.WallNs = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative wall_ns not rejected")
	}
}

func TestLedgerCrossVersion(t *testing.T) {
	// v1 baselines written before the coverage metrics existed must stay
	// readable under the v2 reader; out-of-range versions must not.
	v1 := sampleEntry("fig5", 100)
	v1.Schema = 1
	if err := v1.Validate(); err != nil {
		t.Fatalf("v1 entry rejected: %v", err)
	}
	v2 := sampleEntry("fig5", 100)
	v2.Metrics["coverage.fastpath_pct"] = 97.5
	v2.Metrics["bw.dram.bytes"] = 1 << 20
	if v2.Schema != 2 {
		t.Fatalf("current schema = %d, want 2", v2.Schema)
	}
	path := filepath.Join(t.TempDir(), "mixed.jsonl")
	for _, e := range []LedgerEntry{v1, v2} {
		if err := AppendLedger(path, e); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ReadLedger(path)
	if err != nil {
		t.Fatalf("mixed-version ledger rejected: %v", err)
	}
	if len(got) != 2 || got[0].Schema != 1 || got[1].Schema != 2 {
		t.Fatalf("round trip lost versions: %+v", got)
	}
	if got[1].Metrics["coverage.fastpath_pct"] != 97.5 {
		t.Fatalf("v2 coverage metrics lost: %+v", got[1].Metrics)
	}
	for _, bad := range []int{0, LedgerSchema + 1} {
		e := sampleEntry("fig5", 100)
		e.Schema = bad
		if err := e.Validate(); err == nil {
			t.Errorf("schema %d accepted", bad)
		}
	}
}

func TestLedgerRejectsMalformedLine(t *testing.T) {
	// Malformed JSON *before* the last line is corruption, not a torn
	// write, and must still fail with its line number.
	entries, err := ParseLedger(strings.NewReader(
		`{"schema":1,"experiment":"fig5","wall_ns":1}` + "\n" +
			`{"schema":1` + "\n" +
			`{"schema":1,"experiment":"fig6","wall_ns":2}` + "\n"))
	if err == nil {
		t.Fatal("mid-file malformed line accepted")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error does not name the line: %v", err)
	}
	if len(entries) != 1 {
		t.Fatalf("valid prefix lost: %d entries", len(entries))
	}
	// A well-formed final line that fails schema validation is also
	// corruption — torn writes truncate JSON, they don't invent valid
	// JSON with bad fields.
	_, err = ParseLedger(strings.NewReader(
		`{"schema":1,"experiment":"fig5","wall_ns":1}` + "\n" +
			`{"schema":99,"experiment":"fig6","wall_ns":2}` + "\n"))
	if err == nil {
		t.Fatal("schema-invalid final line accepted")
	}
}

// TestLedgerToleratesTornTail: a writer killed mid-append (streamd on
// SIGKILL) leaves a prefix of the final line. The read must skip it
// with a counted warning instead of failing the whole file.
func TestLedgerToleratesTornTail(t *testing.T) {
	full := `{"schema":2,"experiment":"fig5","wall_ns":1}`
	for cut := 1; cut < len(full); cut++ {
		torn := full[:cut]
		entries, stats, err := ParseLedgerStats(strings.NewReader(
			full + "\n" + full + "\n" + torn))
		if err != nil {
			t.Fatalf("cut %d: torn tail rejected: %v", cut, err)
		}
		if len(entries) != 2 || stats.Entries != 2 {
			t.Fatalf("cut %d: %d entries, want 2", cut, len(entries))
		}
		if !stats.TornTail || stats.TornLine != 3 {
			t.Fatalf("cut %d: stats = %+v, want torn tail at line 3", cut, stats)
		}
	}
	// An intact file reports no torn tail.
	_, stats, err := ParseLedgerStats(strings.NewReader(full + "\n"))
	if err != nil || stats.TornTail || stats.Entries != 1 {
		t.Fatalf("intact file: stats = %+v, err = %v", stats, err)
	}
}

// TestLedgerTornTailOnDisk writes a partial record the way a killed
// streamd would — a valid ledger plus a truncated final line — and
// checks the whole read/validate/repair path over the actual file.
func TestLedgerTornTailOnDisk(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.jsonl")
	for _, e := range []LedgerEntry{sampleEntry("a", 1), sampleEntry("b", 2)} {
		if err := AppendLedger(path, e); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate the torn write: start appending a third record but cut
	// the write partway through (no trailing newline, truncated JSON).
	line, _ := json.Marshal(sampleEntry("c", 3))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(line[:len(line)/2]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	entries, stats, err := ReadLedgerStats(path)
	if err != nil {
		t.Fatalf("torn ledger rejected: %v", err)
	}
	if len(entries) != 2 || !stats.TornTail || stats.TornLine != 3 {
		t.Fatalf("entries = %d, stats = %+v", len(entries), stats)
	}
	if n, err := ValidateLedgerFile(path); err != nil || n != 2 {
		t.Fatalf("ValidateLedgerFile = %d, %v", n, err)
	}

	// RepairLedger truncates the torn tail so appends are safe again.
	dropped, err := RepairLedger(path)
	if err != nil || !dropped {
		t.Fatalf("RepairLedger = %v, %v", dropped, err)
	}
	if err := AppendLedger(path, sampleEntry("c", 3)); err != nil {
		t.Fatal(err)
	}
	entries, stats, err = ReadLedgerStats(path)
	if err != nil || stats.TornTail || len(entries) != 3 {
		t.Fatalf("after repair+append: %d entries, stats = %+v, err = %v", len(entries), stats, err)
	}
	if dropped, err := RepairLedger(path); err != nil || dropped {
		t.Fatalf("RepairLedger on clean file = %v, %v", dropped, err)
	}
}

func TestWriteLedgerAndValidateFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.jsonl")
	if err := WriteLedger(path, []LedgerEntry{sampleEntry("a", 1), sampleEntry("b", 2)}); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateLedgerFile(path)
	if err != nil || n != 2 {
		t.Fatalf("ValidateLedgerFile = %d, %v", n, err)
	}
}

func TestHashStable(t *testing.T) {
	if Hash("ab", "c") == Hash("a", "bc") {
		t.Error("hash ignores part boundaries")
	}
	if Hash("x") != Hash("x") {
		t.Error("hash not deterministic")
	}
	if len(Hash("x")) != 16 {
		t.Errorf("hash length %d, want 16", len(Hash("x")))
	}
}

func TestFlattenSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(5)
	r.Gauge("g").Set(2.5)
	r.Histogram("h").Observe(10)
	r.Histogram("h").Observe(20)
	flat := FlattenSnapshot(r.Snapshot())
	if flat["c"] != 5 || flat["g"] != 2.5 || flat["h"] != 15 {
		t.Fatalf("unexpected flatten: %v", flat)
	}
	if FlattenSnapshot(nil) != nil {
		t.Error("empty snapshot should flatten to nil")
	}
}
