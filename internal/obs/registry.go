// Package obs is the observability layer shared by the whole stack: a
// registry of named counters, gauges and histograms with
// snapshot-and-delta semantics, plus a Chrome/Perfetto trace_event
// exporter (perfetto.go). The simulator (internal/sim), the stream
// virtual machine (internal/svm), the work queue (internal/wq) and the
// executors (internal/exec) all record into one Registry so a run can
// be explained — memory-bound vs compute-bound vs dependency-wait —
// instead of just timed.
//
// The package deliberately imports nothing from the rest of the repo,
// so every layer can depend on it without cycles. Instruments are not
// internally synchronised: the sim engine serialises the simulated
// threads in virtual time (their channel handoffs establish
// happens-before), so plain field updates are race-free even under the
// race detector.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// Counter is a monotonically increasing count.
type Counter struct{ v uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v += n }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v++ }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Gauge is a point-in-time value that also tracks its high-water mark.
type Gauge struct {
	v   float64
	max float64
	set bool
}

// Set records the current value (and raises the high-water mark).
func (g *Gauge) Set(v float64) {
	g.v = v
	if !g.set || v > g.max {
		g.max = v
	}
	g.set = true
}

// SetMax raises the high-water mark without moving the current value.
func (g *Gauge) SetMax(v float64) {
	if !g.set || v > g.max {
		g.max = v
		g.set = true
	}
}

// Value returns the last Set value.
func (g *Gauge) Value() float64 { return g.v }

// Max returns the high-water mark.
func (g *Gauge) Max() float64 { return g.max }

// histBuckets is the number of power-of-two histogram buckets: bucket i
// counts observations in [2^(i-1), 2^i), bucket 0 counts v < 1.
const histBuckets = 32

// Histogram accumulates a distribution of samples into power-of-two
// buckets, keeping exact count/sum/min/max.
type Histogram struct {
	count   uint64
	sum     float64
	min     float64
	max     float64
	buckets [histBuckets]uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	b := 0
	if v >= 1 {
		b = int(math.Log2(v)) + 1
		if b >= histBuckets {
			b = histBuckets - 1
		}
	}
	h.buckets[b]++
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the sample mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min returns the smallest sample (0 when empty).
func (h *Histogram) Min() float64 { return h.min }

// Max returns the largest sample (0 when empty).
func (h *Histogram) Max() float64 { return h.max }

// Quantile returns an upper bound for the q-quantile (0 ≤ q ≤ 1) from
// the bucket boundaries — exact enough for queue depths and cycle
// counts spanning orders of magnitude.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	target := uint64(q * float64(h.count))
	if target >= h.count {
		return h.max
	}
	var seen uint64
	for i, n := range h.buckets {
		seen += n
		if seen > target {
			if i == 0 {
				return math.Min(1, h.max)
			}
			return math.Min(float64(uint64(1)<<uint(i)), h.max)
		}
	}
	return h.max
}

// Registry holds named instruments, created lazily on first use so
// instrumentation sites need no setup ceremony.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// MetricKind distinguishes snapshot entries.
type MetricKind uint8

// Metric kinds.
const (
	KindCounter MetricKind = iota
	KindGauge
	KindHistogram
)

// MetricValue is one metric frozen at snapshot time.
type MetricValue struct {
	Kind  MetricKind
	Value float64 // counter total or gauge current value
	Max   float64 // gauge/histogram high-water mark
	Count uint64  // histogram sample count
	Sum   float64 // histogram sample sum
	Min   float64 // histogram minimum
}

// Mean returns the histogram mean (0 otherwise).
func (v MetricValue) Mean() float64 {
	if v.Kind != KindHistogram || v.Count == 0 {
		return 0
	}
	return v.Sum / float64(v.Count)
}

// Snapshot is a frozen view of a registry, keyed by metric name.
type Snapshot map[string]MetricValue

// Snapshot freezes every instrument's current state.
func (r *Registry) Snapshot() Snapshot {
	s := make(Snapshot, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		s[name] = MetricValue{Kind: KindCounter, Value: float64(c.v)}
	}
	for name, g := range r.gauges {
		s[name] = MetricValue{Kind: KindGauge, Value: g.v, Max: g.max}
	}
	for name, h := range r.hists {
		s[name] = MetricValue{Kind: KindHistogram, Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	}
	return s
}

// Delta returns cur - prev for accumulating metrics (counter totals,
// histogram counts and sums); gauges and min/max keep their current
// values. Metrics absent from prev pass through unchanged, so
// back-to-back runs on one registry can be separated.
func (cur Snapshot) Delta(prev Snapshot) Snapshot {
	out := make(Snapshot, len(cur))
	for name, v := range cur {
		p, ok := prev[name]
		if ok && v.Kind == p.Kind {
			switch v.Kind {
			case KindCounter:
				v.Value -= p.Value
			case KindHistogram:
				v.Count -= p.Count
				v.Sum -= p.Sum
			}
		}
		out[name] = v
	}
	return out
}

// Names returns the snapshot's metric names, sorted.
func (s Snapshot) Names() []string {
	names := make([]string, 0, len(s))
	for name := range s {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Render writes the snapshot as aligned text, one metric per line in
// name order.
func (s Snapshot) Render(w io.Writer) {
	width := 0
	for name := range s {
		if len(name) > width {
			width = len(name)
		}
	}
	for _, name := range s.Names() {
		v := s[name]
		switch v.Kind {
		case KindCounter:
			fmt.Fprintf(w, "  %-*s %16.0f\n", width, name, v.Value)
		case KindGauge:
			fmt.Fprintf(w, "  %-*s %16.6g  (max %.6g)\n", width, name, v.Value, v.Max)
		case KindHistogram:
			fmt.Fprintf(w, "  %-*s count=%d mean=%.2f min=%.0f max=%.0f\n",
				width, name, v.Count, v.Mean(), v.Min, v.Max)
		}
	}
}

// Render writes the registry's current state as aligned text.
func (r *Registry) Render(w io.Writer) { r.Snapshot().Render(w) }
