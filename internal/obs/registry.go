// Package obs is the observability layer shared by the whole stack: a
// registry of named counters, gauges and histograms with
// snapshot-and-delta semantics, plus a Chrome/Perfetto trace_event
// exporter (perfetto.go). The simulator (internal/sim), the stream
// virtual machine (internal/svm), the work queue (internal/wq) and the
// executors (internal/exec) all record into one Registry so a run can
// be explained — memory-bound vs compute-bound vs dependency-wait —
// instead of just timed.
//
// The package deliberately imports nothing from the rest of the repo,
// so every layer can depend on it without cycles. Within one simulated
// machine the sim engine serialises the simulated threads in virtual
// time, but one Registry is routinely shared across machines running on
// concurrent goroutines (the parallel experiment runner, streambench's
// measured mode), so instruments and the registry's maps are safe for
// concurrent use: counters are atomic, gauges and histograms carry a
// small mutex, and instrument registration/snapshot lock the maps.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing count.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a point-in-time value that also tracks its high-water mark.
type Gauge struct {
	mu  sync.Mutex
	v   float64
	max float64
	set bool
}

// Set records the current value (and raises the high-water mark).
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	g.v = v
	if !g.set || v > g.max {
		g.max = v
	}
	g.set = true
	g.mu.Unlock()
}

// SetMax raises the high-water mark without moving the current value.
func (g *Gauge) SetMax(v float64) {
	g.mu.Lock()
	if !g.set || v > g.max {
		g.max = v
		g.set = true
	}
	g.mu.Unlock()
}

// Value returns the last Set value.
func (g *Gauge) Value() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Max returns the high-water mark.
func (g *Gauge) Max() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.max
}

// histBuckets is the number of power-of-two histogram buckets: bucket i
// counts observations in [2^(i-1), 2^i), bucket 0 counts v < 1.
const histBuckets = 32

// HistBuckets is the exported bucket count, for callers sizing
// bucket-indexed state (the Prometheus encoder, tests).
const HistBuckets = histBuckets

// HistBucketBounds returns the histograms' fixed upper bucket bounds,
// in bucket order: bound 0 is 1 (bucket 0 counts v < 1), bound i is
// 2^i for the [2^(i-1), 2^i) buckets, and the final bound is +Inf —
// Observe clamps everything ≥ 2^(histBuckets-2) into the last bucket,
// so its upper edge is unbounded. Every Histogram shares these bounds;
// that is what lets snapshots taken at different times (or from
// different processes) be merged or compared bucket-by-bucket.
func HistBucketBounds() [histBuckets]float64 {
	var b [histBuckets]float64
	b[0] = 1
	for i := 1; i < histBuckets-1; i++ {
		b[i] = float64(uint64(1) << uint(i))
	}
	b[histBuckets-1] = math.Inf(1)
	return b
}

// Histogram accumulates a distribution of samples into power-of-two
// buckets, keeping exact count/sum/min/max.
type Histogram struct {
	mu      sync.Mutex
	count   uint64
	sum     float64
	min     float64
	max     float64
	buckets [histBuckets]uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	b := 0
	if v >= 1 {
		b = int(math.Log2(v)) + 1
		if b >= histBuckets {
			b = histBuckets - 1
		}
	}
	h.buckets[b]++
	h.mu.Unlock()
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all samples.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the sample mean (0 when empty).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min returns the smallest sample (0 when empty).
func (h *Histogram) Min() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max returns the largest sample (0 when empty).
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Quantile returns an upper bound for the q-quantile (0 ≤ q ≤ 1) from
// the bucket boundaries — exact enough for queue depths and cycle
// counts spanning orders of magnitude.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return bucketQuantile(q, h.count, &h.buckets, h.max)
}

// Buckets returns a copy of the per-bucket sample counts (bounds from
// HistBucketBounds).
func (h *Histogram) Buckets() [histBuckets]uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.buckets
}

// bucketQuantile is the shared quantile estimate over power-of-two
// buckets: the upper bound of the bucket holding the q-th sample,
// capped by the observed max (the estimate can never exceed a real
// sample).
func bucketQuantile(q float64, count uint64, buckets *[histBuckets]uint64, max float64) float64 {
	if count == 0 {
		return 0
	}
	target := uint64(q * float64(count))
	if target >= count {
		return max
	}
	var seen uint64
	for i, n := range buckets {
		seen += n
		if seen > target {
			if i == 0 {
				return math.Min(1, max)
			}
			return math.Min(float64(uint64(1)<<uint(i)), max)
		}
	}
	return max
}

// Registry holds named instruments, created lazily on first use so
// instrumentation sites need no setup ceremony.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	infos    map[string]map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		infos:    map[string]map[string]string{},
	}
}

// Info registers a constant info metric: a gauge fixed at 1 whose
// payload is its label set — the standard Prometheus pattern for
// build/version facts (…_build_info{version="…",goversion="…"} 1).
// Labels are copied; registering the same name again replaces the set.
func (r *Registry) Info(name string, labels map[string]string) {
	cp := make(map[string]string, len(labels))
	for k, v := range labels {
		cp[k] = v
	}
	r.mu.Lock()
	r.infos[name] = cp
	r.mu.Unlock()
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// MetricKind distinguishes snapshot entries.
type MetricKind uint8

// Metric kinds.
const (
	KindCounter MetricKind = iota
	KindGauge
	KindHistogram
	KindInfo
)

// MetricValue is one metric frozen at snapshot time.
type MetricValue struct {
	Kind  MetricKind
	Value float64 // counter total or gauge current value (1 for infos)
	Max   float64 // gauge/histogram high-water mark
	Count uint64  // histogram sample count
	Sum   float64 // histogram sample sum
	Min   float64 // histogram minimum
	// Buckets is the histogram's per-bucket sample counts, frozen with
	// the other fields (bounds from HistBucketBounds; zero for
	// counters/gauges). A fixed array, so snapshot values stay
	// self-contained — no aliasing of live instrument state.
	Buckets [histBuckets]uint64
	// Labels is the info metric's constant label set (nil otherwise).
	Labels map[string]string
}

// Mean returns the histogram mean (0 otherwise).
func (v MetricValue) Mean() float64 {
	if v.Kind != KindHistogram || v.Count == 0 {
		return 0
	}
	return v.Sum / float64(v.Count)
}

// Quantile returns the frozen histogram's q-quantile upper bound, from
// the same bucket estimate as Histogram.Quantile (0 for non-histograms
// and empty histograms).
func (v MetricValue) Quantile(q float64) float64 {
	if v.Kind != KindHistogram {
		return 0
	}
	return bucketQuantile(q, v.Count, &v.Buckets, v.Max)
}

// Snapshot is a frozen view of a registry, keyed by metric name.
type Snapshot map[string]MetricValue

// Snapshot freezes every instrument's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := make(Snapshot, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		s[name] = MetricValue{Kind: KindCounter, Value: float64(c.v.Load())}
	}
	for name, g := range r.gauges {
		g.mu.Lock()
		s[name] = MetricValue{Kind: KindGauge, Value: g.v, Max: g.max}
		g.mu.Unlock()
	}
	for name, h := range r.hists {
		h.mu.Lock()
		s[name] = MetricValue{Kind: KindHistogram, Count: h.count, Sum: h.sum, Min: h.min, Max: h.max, Buckets: h.buckets}
		h.mu.Unlock()
	}
	for name, labels := range r.infos {
		cp := make(map[string]string, len(labels))
		for k, v := range labels {
			cp[k] = v
		}
		s[name] = MetricValue{Kind: KindInfo, Value: 1, Labels: cp}
	}
	return s
}

// Delta returns cur - prev for accumulating metrics (counter totals,
// histogram counts and sums); gauges and min/max keep their current
// values. Metrics absent from prev pass through unchanged, so
// back-to-back runs on one registry can be separated.
func (cur Snapshot) Delta(prev Snapshot) Snapshot {
	out := make(Snapshot, len(cur))
	for name, v := range cur {
		p, ok := prev[name]
		if ok && v.Kind == p.Kind {
			switch v.Kind {
			case KindCounter:
				v.Value -= p.Value
			case KindHistogram:
				v.Count -= p.Count
				v.Sum -= p.Sum
				for i := range v.Buckets {
					v.Buckets[i] -= p.Buckets[i]
				}
			}
		}
		out[name] = v
	}
	return out
}

// Names returns the snapshot's metric names, sorted.
func (s Snapshot) Names() []string {
	names := make([]string, 0, len(s))
	for name := range s {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Render writes the snapshot as aligned text, one metric per line in
// name order.
func (s Snapshot) Render(w io.Writer) {
	width := 0
	for name := range s {
		if len(name) > width {
			width = len(name)
		}
	}
	for _, name := range s.Names() {
		v := s[name]
		switch v.Kind {
		case KindCounter:
			fmt.Fprintf(w, "  %-*s %16.0f\n", width, name, v.Value)
		case KindGauge:
			fmt.Fprintf(w, "  %-*s %16.6g  (max %.6g)\n", width, name, v.Value, v.Max)
		case KindHistogram:
			fmt.Fprintf(w, "  %-*s count=%d mean=%.2f min=%.0f max=%.0f\n",
				width, name, v.Count, v.Mean(), v.Min, v.Max)
		case KindInfo:
			keys := make([]string, 0, len(v.Labels))
			for k := range v.Labels {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			fmt.Fprintf(w, "  %-*s", width, name)
			for _, k := range keys {
				fmt.Fprintf(w, " %s=%s", k, v.Labels[k])
			}
			fmt.Fprintln(w)
		}
	}
}

// Render writes the registry's current state as aligned text.
func (r *Registry) Render(w io.Writer) { r.Snapshot().Render(w) }
