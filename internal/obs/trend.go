package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// This file implements historical trend rollups over a run ledger (or
// a BENCH_history file — same JSONL schema): per-experiment medians
// over the whole history for the headline series, with the latest run
// flagged when it sits outside the history's own noise band. The noise
// model is the one the regression gate already trusts (regress.go):
// robust centre via median, robust spread via MAD, and a relative
// floor so near-zero-variance series don't flag on measurement jitter.
// Where the gate compares one candidate ledger against one baseline,
// the trend report asks the longitudinal question — "is the newest run
// an outlier against everything we've ever recorded?" — which is what
// streamtrace -trend prints.

// Trend series labels, in render order. wall_ns comes from the entry
// itself; the others from its Metrics map.
const (
	trendWall     = "wall_ns"
	trendCycles   = "sim_cycles_per_sec"
	trendCoverage = "coverage.fastpath_pct"
)

var trendSeriesOrder = [...]string{trendWall, trendCycles, trendCoverage}

// TrendOptions tunes the anomaly flagging.
type TrendOptions struct {
	// MADFactor scales the MAD band: |latest-median| > MADFactor·MAD
	// flags, subject to the relative floor.
	MADFactor float64
	// MinRelative is the relative floor: deviations under
	// MinRelative·median never flag, however tight the MAD.
	MinRelative float64
	// MinRuns is the fewest runs a series needs before flagging; below
	// it there is no history to define "normal".
	MinRuns int
}

// DefaultTrendOptions mirrors the regression gate's noise model
// (GateOptions): MAD factor 4 over a 10% relative floor, and at least
// 4 runs of history.
func DefaultTrendOptions() TrendOptions {
	return TrendOptions{MADFactor: 4, MinRelative: 0.10, MinRuns: 4}
}

// TrendSeries is one metric's history within one experiment.
type TrendSeries struct {
	// Label names the series (wall_ns, sim_cycles_per_sec, ...).
	Label string `json:"label"`
	// Runs is how many entries carried this series.
	Runs int `json:"runs"`
	// Median and MAD summarise the full history (MAD already scaled to
	// σ-equivalent units, see regress.go).
	Median float64 `json:"median"`
	MAD    float64 `json:"mad"`
	// Latest is the newest entry's value.
	Latest float64 `json:"latest"`
	// Ratio is Latest/Median (1 when the median is zero).
	Ratio float64 `json:"ratio"`
	// Anomalous is true when Latest sits outside the noise band.
	Anomalous bool `json:"anomalous,omitempty"`
	// Direction is "high" or "low" when Anomalous.
	Direction string `json:"direction,omitempty"`
}

// TrendRow is one experiment's rollup.
type TrendRow struct {
	Experiment string `json:"experiment"`
	// Runs is the entry count for the experiment.
	Runs int `json:"runs"`
	// First and Last are the oldest/newest entry timestamps (as
	// recorded; empty when the writer didn't stamp them).
	First  string        `json:"first,omitempty"`
	Last   string        `json:"last,omitempty"`
	Series []TrendSeries `json:"series"`
	// Anomalous is true when any series flagged.
	Anomalous bool `json:"anomalous,omitempty"`
}

// trendValue extracts one series value from a ledger entry.
func trendValue(e *LedgerEntry, label string) (float64, bool) {
	switch label {
	case trendWall:
		return float64(e.WallNs), e.WallNs > 0
	case trendCycles:
		return e.SimCyclesPerSec, e.SimCyclesPerSec > 0
	default:
		v, ok := e.Metrics[label]
		return v, ok
	}
}

// TrendReport rolls entries (oldest first, as ReadLedger returns them)
// up into one row per experiment, sorted by experiment name. The
// newest run of each series is compared against the history's median ±
// max(MinRelative·median, MADFactor·MAD); outside that band it is
// flagged with its direction.
func TrendReport(entries []LedgerEntry, opt TrendOptions) []TrendRow {
	if opt.MADFactor == 0 && opt.MinRelative == 0 && opt.MinRuns == 0 {
		opt = DefaultTrendOptions()
	}
	byExp := map[string][]*LedgerEntry{}
	for i := range entries {
		e := &entries[i]
		byExp[e.Experiment] = append(byExp[e.Experiment], e)
	}
	names := make([]string, 0, len(byExp))
	for name := range byExp {
		names = append(names, name)
	}
	sort.Strings(names)

	var rows []TrendRow
	for _, name := range names {
		es := byExp[name]
		row := TrendRow{
			Experiment: name,
			Runs:       len(es),
			First:      es[0].Time,
			Last:       es[len(es)-1].Time,
		}
		for _, label := range trendSeriesOrder {
			var xs []float64
			for _, e := range es {
				if v, ok := trendValue(e, label); ok {
					xs = append(xs, v)
				}
			}
			if len(xs) == 0 {
				continue
			}
			latest := xs[len(xs)-1] // before median sorts xs in place
			m := median(xs)
			s := TrendSeries{
				Label:  label,
				Runs:   len(xs),
				Median: m,
				MAD:    mad(xs, m),
				Latest: latest,
				Ratio:  1,
			}
			if m != 0 {
				s.Ratio = s.Latest / m
			}
			if len(xs) >= opt.MinRuns {
				band := math.Max(opt.MinRelative*math.Abs(m), opt.MADFactor*s.MAD)
				if dev := s.Latest - m; math.Abs(dev) > band {
					s.Anomalous = true
					row.Anomalous = true
					if dev > 0 {
						s.Direction = "high"
					} else {
						s.Direction = "low"
					}
				}
			}
			row.Series = append(row.Series, s)
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderTrend writes the rows as an aligned table, one line per
// series, anomalies marked with their direction.
func RenderTrend(w io.Writer, rows []TrendRow) {
	if len(rows) == 0 {
		fmt.Fprintln(w, "trend: no entries")
		return
	}
	fmt.Fprintf(w, "%-24s %-22s %5s %14s %14s %7s %s\n",
		"experiment", "series", "runs", "median", "latest", "ratio", "flag")
	for _, row := range rows {
		for i, s := range row.Series {
			exp := ""
			if i == 0 {
				exp = row.Experiment
			}
			flag := ""
			if s.Anomalous {
				flag = "ANOMALY(" + s.Direction + ")"
			}
			fmt.Fprintf(w, "%-24s %-22s %5d %14.4g %14.4g %7.3f %s\n",
				exp, s.Label, s.Runs, s.Median, s.Latest, s.Ratio, flag)
		}
	}
}
