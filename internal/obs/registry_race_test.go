package obs

import (
	"fmt"
	"sync"
	"testing"
)

// TestRegistryConcurrentUse hammers one registry from many goroutines —
// lazy registration, instrument updates and snapshots all interleaved —
// the access pattern of the parallel experiment runner sharing a
// default registry across machines. Run under -race (scripts/check.sh
// does) this doubles as the data-race proof.
func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const iters = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Some names are shared across workers (contended
				// registration), some private (steady-state growth).
				shared := fmt.Sprintf("shared.%d", i%7)
				private := fmt.Sprintf("w%d.%d", w, i%11)
				r.Counter(shared).Inc()
				r.Counter(private).Add(2)
				r.Gauge(shared).Set(float64(i))
				r.Gauge(private).SetMax(float64(i))
				r.Histogram(shared).Observe(float64(i % 100))
				if i%50 == 0 {
					snap := r.Snapshot()
					if len(snap) == 0 {
						t.Error("empty snapshot during concurrent use")
						return
					}
					snap.Delta(snap)
					// Quantile reads race the Observes above: the live
					// read locks the instrument; the snapshot read works
					// on frozen buckets. Neither may tear (caught by
					// -race) or step outside the observed range.
					if q := r.Histogram(shared).Quantile(0.95); q > 128 {
						t.Errorf("live p95 %v outside bucket bound for samples < 100", q)
						return
					}
					if v, ok := snap[shared]; ok && v.Kind == KindHistogram {
						if q := v.Quantile(0.95); q > 128 {
							t.Errorf("snapshot p95 %v outside bucket bound for samples < 100", q)
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// Every shared counter saw exactly workers*iters/7 increments in
	// total: lost updates would show up here.
	var total uint64
	for i := 0; i < 7; i++ {
		total += r.Counter(fmt.Sprintf("shared.%d", i)).Value()
	}
	if want := uint64(workers * iters); total != want {
		t.Fatalf("shared counters sum to %d, want %d (lost updates)", total, want)
	}
	for i := 0; i < 7; i++ {
		h := r.Histogram(fmt.Sprintf("shared.%d", i))
		if h.Count() == 0 || h.Max() > 99 {
			t.Fatalf("histogram shared.%d corrupted: count=%d max=%v", i, h.Count(), h.Max())
		}
	}
}

// TestRegistryConcurrentSameName has every goroutine race to create the
// SAME instrument: all must observe one shared instance.
func TestRegistryConcurrentSameName(t *testing.T) {
	r := NewRegistry()
	const workers = 16
	ptrs := make([]*Counter, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("the.one")
			ptrs[w] = c
			c.Inc()
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if ptrs[w] != ptrs[0] {
			t.Fatal("racing registrations returned distinct counters")
		}
	}
	if got := r.Counter("the.one").Value(); got != workers {
		t.Fatalf("counter = %d, want %d", got, workers)
	}
}
