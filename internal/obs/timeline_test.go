package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestSeriesWindowing(t *testing.T) {
	tl := NewTimeline(100)
	s := tl.Series("x")
	s.Sample(0, 1)
	s.Sample(50, 2)  // same window as t=0: dropped
	s.Sample(100, 3) // next window
	s.Sample(199, 4) // same window as t=100: dropped
	s.Sample(250, 5)
	pts := s.Points()
	want := []Point{{0, 1}, {100, 3}, {250, 5}}
	if len(pts) != len(want) {
		t.Fatalf("got %d points %v, want %v", len(pts), pts, want)
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Errorf("point %d = %v, want %v", i, pts[i], want[i])
		}
	}
}

func TestSeriesMonotone(t *testing.T) {
	tl := NewTimeline(10)
	s := tl.Series("x")
	s.Sample(500, 1)
	s.Sample(120, 2) // behind lastT: dropped (cross-context skew)
	s.Sample(510, 3)
	for i, p := range s.Points() {
		if i > 0 && p.T <= s.Points()[i-1].T {
			t.Fatalf("non-monotone points: %v", s.Points())
		}
	}
	if s.Len() != 2 {
		t.Fatalf("got %d points, want 2: %v", s.Len(), s.Points())
	}
}

func TestNilTimelineIsInert(t *testing.T) {
	var tl *Timeline
	s := tl.Series("anything")
	if s != nil {
		t.Fatal("nil timeline returned a live series")
	}
	s.Sample(1, 1) // must not panic
	if s.Due(1) || s.Len() != 0 || s.Last() != (Point{}) || s.Points() != nil {
		t.Fatal("nil series is not inert")
	}
	tl.Probe("p", func() float64 { return 1 })
	tl.Poll(1)
	if tl.Names() != nil || tl.CounterPoints() != nil || tl.Interval() != 0 {
		t.Fatal("nil timeline is not inert")
	}
	if n, err := tl.WriteTo(&bytes.Buffer{}); n != 0 || err != nil {
		t.Fatal("nil timeline WriteTo not a no-op")
	}
	tl.Render(&bytes.Buffer{})
}

func TestZeroValueSeries(t *testing.T) {
	// A zero-value Series (interval 0, built outside Timeline.Series)
	// must not divide by zero: it degrades to sampling every cycle.
	var s Series
	if !s.Due(0) {
		t.Fatal("fresh zero-value series not due")
	}
	s.Sample(0, 1)
	s.Sample(0, 2) // same cycle: dropped
	s.Sample(1, 3)
	if s.Len() != 2 {
		t.Fatalf("got %d points, want 2: %v", s.Len(), s.Points())
	}
	if s.Due(1) {
		t.Fatal("due at already-sampled cycle")
	}
	if !s.Due(2) {
		t.Fatal("not due at next cycle")
	}
}

func TestWriteToEmptySeries(t *testing.T) {
	// A created-but-never-sampled series still gets its header line, so
	// the dump's shape is deterministic across runs that sample nothing.
	tl := NewTimeline(100)
	tl.Series("empty")
	tl.Series("full").Sample(0, 1)
	var b strings.Builder
	if _, err := tl.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `series "empty" interval=100 points=0`) {
		t.Fatalf("empty series missing from dump:\n%s", out)
	}
	var r strings.Builder
	tl.Render(&r)
	if !strings.Contains(r.String(), "(no samples)") {
		t.Fatalf("render does not mark empty series:\n%s", r.String())
	}
}

func TestProbePollAndReplace(t *testing.T) {
	tl := NewTimeline(100)
	v := 1.0
	tl.Probe("g", func() float64 { return v })
	tl.Poll(0)
	v = 2.0
	tl.Poll(10) // same window: no sample
	tl.Poll(150)
	tl.Probe("g", func() float64 { return 42 }) // replace
	tl.Poll(300)
	pts := tl.Series("g").Points()
	want := []Point{{0, 1}, {150, 2}, {300, 42}}
	if len(pts) != 3 {
		t.Fatalf("got %v, want %v", pts, want)
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Errorf("point %d = %v, want %v", i, pts[i], want[i])
		}
	}
}

func TestDue(t *testing.T) {
	tl := NewTimeline(100)
	s := tl.Series("x")
	if !s.Due(0) {
		t.Fatal("fresh series not due")
	}
	s.Sample(0, 1)
	if s.Due(50) {
		t.Fatal("due inside sampled window")
	}
	if !s.Due(100) {
		t.Fatal("not due in next window")
	}
	if s.Due(0) {
		t.Fatal("due behind lastT")
	}
}

func TestCounterPointsOrder(t *testing.T) {
	tl := NewTimeline(1)
	tl.Series("b").Sample(1, 10)
	tl.Series("a").Sample(2, 20)
	tl.Series("b").Sample(3, 30)
	cps := tl.CounterPoints()
	if len(cps) != 3 {
		t.Fatalf("got %d counter points", len(cps))
	}
	// Creation order: all of "b" first, then "a".
	if cps[0].Name != "b" || cps[1].Name != "b" || cps[2].Name != "a" {
		t.Fatalf("unexpected order: %+v", cps)
	}
}

func TestWriteToDeterministic(t *testing.T) {
	build := func() string {
		tl := NewTimeline(100)
		tl.Series("srf occupancy").Sample(0, 0.25)
		tl.Series("wq mem pending").Sample(100, 3)
		tl.Series("srf occupancy").Sample(200, 0.5)
		var b strings.Builder
		if _, err := tl.WriteTo(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	a, b := build(), build()
	if a != b {
		t.Fatalf("WriteTo not deterministic:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(a, `series "srf occupancy" interval=100 points=2`) {
		t.Fatalf("unexpected dump:\n%s", a)
	}
}
