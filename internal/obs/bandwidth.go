package obs

import (
	"fmt"
	"io"
)

// This file derives the per-memory-level bandwidth report from the
// flattened bw.* gauges the simulator publishes (sim/stats.go): bytes
// moved and occupied cycles per level, achieved DRAM bytes/cycle
// against the configured bus peak, and a compute-per-byte intensity
// figure. The report is pure arithmetic over a metrics map — no
// simulator types — so the trace and bench tools can build it from a
// live registry snapshot or from a ledger entry's Metrics alike.

// BandwidthLevels is the fixed row order of a report: the memory levels
// the simulator attributes traffic to, nearest first.
var BandwidthLevels = []string{"l1", "l2", "pf", "dram", "wc"}

// bandwidthLevelLabels maps the key to the table's human label.
var bandwidthLevelLabels = map[string]string{
	"l1":   "L1 hit",
	"l2":   "L2 hit",
	"pf":   "prefetch fill",
	"dram": "DRAM",
	"wc":   "WC buffer",
}

// BandwidthRow is one memory level's attributed traffic.
type BandwidthRow struct {
	Level     string  `json:"level"`
	Bytes     float64 `json:"bytes"`
	OccCycles float64 `json:"occ_cycles"` // cycles the level was occupied serving it
}

// BandwidthReport is the derived bandwidth/roofline summary of one run.
type BandwidthReport struct {
	Levels        []BandwidthRow `json:"levels"`
	TLBWalkCycles float64        `json:"tlb_walk_cycles"`
	TotalCycles   uint64         `json:"total_cycles"`
	// PeakBytesPerCycle is the configured DRAM-bus peak (bytes/cycle ×
	// efficiency) the roofline compares against.
	PeakBytesPerCycle float64 `json:"peak_bytes_per_cycle"`
	// KernelCycles is the run's kernel-side busy time, for the
	// intensity figure (0 when the run had no kernel attribution).
	KernelCycles float64 `json:"kernel_cycles,omitempty"`
}

// NewBandwidthReport builds the report from a flattened metrics map
// (FlattenSnapshot output or a ledger entry's Metrics). Missing keys
// read as zero, so partial maps (regular-program runs, old ledger
// entries) yield a report with empty rows rather than an error.
func NewBandwidthReport(metrics map[string]float64, totalCycles uint64, peakBytesPerCycle float64) BandwidthReport {
	rep := BandwidthReport{
		TotalCycles:       totalCycles,
		PeakBytesPerCycle: peakBytesPerCycle,
		TLBWalkCycles:     metrics["bw.tlb.walk_cycles"],
	}
	for _, lvl := range BandwidthLevels {
		rep.Levels = append(rep.Levels, BandwidthRow{
			Level:     lvl,
			Bytes:     metrics["bw."+lvl+".bytes"],
			OccCycles: metrics["bw."+lvl+".cycles"],
		})
	}
	for _, label := range []string{"stream2", "stream1", "regular"} {
		if v, ok := metrics["exec."+label+".kind_cycles.kernel"]; ok && v > 0 {
			rep.KernelCycles = v
			break
		}
	}
	return rep
}

// Row returns the named level's row (zero row when absent).
func (r BandwidthReport) Row(level string) BandwidthRow {
	for _, row := range r.Levels {
		if row.Level == level {
			return row
		}
	}
	return BandwidthRow{}
}

// DRAMBytes is the run's attributed DRAM traffic (demand fills,
// writebacks, WC flushes and prefetches).
func (r BandwidthReport) DRAMBytes() float64 { return r.Row("dram").Bytes }

// TotalBytes sums every level's attributed bytes.
func (r BandwidthReport) TotalBytes() float64 {
	var sum float64
	for _, row := range r.Levels {
		sum += row.Bytes
	}
	return sum
}

// AchievedBytesPerCycle is DRAM traffic over the run's total cycles —
// the achieved point on the bandwidth roofline.
func (r BandwidthReport) AchievedBytesPerCycle() float64 {
	if r.TotalCycles == 0 {
		return 0
	}
	return r.DRAMBytes() / float64(r.TotalCycles)
}

// Utilization is achieved over peak DRAM bandwidth, in [0, ~1].
func (r BandwidthReport) Utilization() float64 {
	if r.PeakBytesPerCycle == 0 {
		return 0
	}
	return r.AchievedBytesPerCycle() / r.PeakBytesPerCycle
}

// ArithmeticIntensity is kernel-side busy cycles per DRAM byte — the
// simulator's proxy for ops/byte (issue width is fixed, so busy cycles
// are proportional to retired operations). High values mean the run is
// compute-bound; values near the machine balance point mean DRAM
// bandwidth bounds it. Zero when the run moved no DRAM bytes or had no
// kernel attribution.
func (r BandwidthReport) ArithmeticIntensity() float64 {
	db := r.DRAMBytes()
	if db == 0 {
		return 0
	}
	return r.KernelCycles / db
}

// Render writes the human-readable bandwidth table and roofline
// summary.
func (r BandwidthReport) Render(w io.Writer) {
	fmt.Fprintf(w, "  %-14s %14s %14s %12s\n", "level", "bytes", "occ cycles", "bytes/cycle")
	for _, row := range r.Levels {
		bpc := 0.0
		if r.TotalCycles > 0 {
			bpc = row.Bytes / float64(r.TotalCycles)
		}
		fmt.Fprintf(w, "  %-14s %14.0f %14.0f %12.4f\n",
			bandwidthLevelLabels[row.Level], row.Bytes, row.OccCycles, bpc)
	}
	if r.TLBWalkCycles > 0 {
		fmt.Fprintf(w, "  %-14s %14s %14.0f\n", "TLB walks", "-", r.TLBWalkCycles)
	}
	fmt.Fprintf(w, "  DRAM roofline: %.4f of peak %.4f bytes/cycle (%.1f%% utilized)\n",
		r.AchievedBytesPerCycle(), r.PeakBytesPerCycle, 100*r.Utilization())
	if ai := r.ArithmeticIntensity(); ai > 0 {
		fmt.Fprintf(w, "  intensity: %.2f kernel cycles per DRAM byte\n", ai)
	}
}
