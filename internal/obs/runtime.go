package obs

import (
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// This file is the host-side half of the observability story: where the
// rest of the package watches the *simulated* machine (cycles, stalls,
// memory traffic), the RuntimeCollector watches the Go process running
// it — goroutines, heap, GC pauses, scheduler responsiveness — so a
// long-running service (streamd) can observe itself with the same
// registry/exposition machinery its simulation metrics already use.
// Collection happens at scrape time only: between scrapes the collector
// costs nothing, and it never touches simulator state, so simulated
// cycle counts are byte-identical with the collector attached
// (DESIGN.md §17 carries the overhead budget).

// RuntimeCollector samples Go runtime telemetry into a Registry.
// Collect is cheap enough to run on every scrape: one ReadMemStats
// (microsecond-scale stop-the-world), one NumGoroutine, and one
// spawn-to-run probe goroutine. Safe for concurrent use.
type RuntimeCollector struct {
	reg *Registry

	mu        sync.Mutex
	lastNumGC uint32
}

// NewRuntimeCollector returns a collector publishing into reg under the
// go.* namespace.
func NewRuntimeCollector(reg *Registry) *RuntimeCollector {
	return &RuntimeCollector{reg: reg}
}

// Collect refreshes the runtime gauges and feeds any GC pauses since
// the previous Collect into the pause histogram:
//
//	go.goroutines           live goroutine count
//	go.heap.alloc_bytes     bytes of allocated heap objects
//	go.heap.inuse_bytes     bytes in in-use heap spans
//	go.heap.objects         live object count
//	go.heap.sys_bytes       total bytes obtained from the OS
//	go.gc.num               completed GC cycles
//	go.gc.next_bytes        heap size that triggers the next cycle
//	go.gc.cpu_pct           fraction of CPU spent in GC since start, %
//	go.gc.pause_total_ms    cumulative stop-the-world pause time
//	go.gc.pause_us          histogram of individual GC pauses (µs)
//	go.sched.latency_us     histogram of spawn-to-run latency probes:
//	                        how long a fresh goroutine waited for a
//	                        thread — a scheduler-pressure proxy (one
//	                        probe per Collect)
func (c *RuntimeCollector) Collect() {
	// Probe scheduler latency before ReadMemStats: the probe goroutine
	// must not race the collector's own stop-the-world.
	c.reg.Histogram("go.sched.latency_us").Observe(schedLatencyProbe())

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	c.reg.Gauge("go.goroutines").Set(float64(runtime.NumGoroutine()))
	c.reg.Gauge("go.heap.alloc_bytes").Set(float64(ms.HeapAlloc))
	c.reg.Gauge("go.heap.inuse_bytes").Set(float64(ms.HeapInuse))
	c.reg.Gauge("go.heap.objects").Set(float64(ms.HeapObjects))
	c.reg.Gauge("go.heap.sys_bytes").Set(float64(ms.Sys))
	c.reg.Gauge("go.gc.num").Set(float64(ms.NumGC))
	c.reg.Gauge("go.gc.next_bytes").Set(float64(ms.NextGC))
	c.reg.Gauge("go.gc.cpu_pct").Set(100 * ms.GCCPUFraction)
	c.reg.Gauge("go.gc.pause_total_ms").Set(float64(ms.PauseTotalNs) / 1e6)

	// PauseNs is a 256-entry ring indexed by GC number; replay only the
	// cycles that completed since the last Collect, so each pause lands
	// in the histogram exactly once.
	c.mu.Lock()
	last := c.lastNumGC
	c.lastNumGC = ms.NumGC
	c.mu.Unlock()
	if ms.NumGC-last > uint32(len(ms.PauseNs)) {
		last = ms.NumGC - uint32(len(ms.PauseNs))
	}
	h := c.reg.Histogram("go.gc.pause_us")
	for i := last; i < ms.NumGC; i++ {
		h.Observe(float64(ms.PauseNs[(i+255)%256]) / 1e3)
	}
}

// schedLatencyProbe measures how long a freshly spawned goroutine waits
// before running, in microseconds. Under an idle scheduler this is the
// bare handoff cost; under thread starvation (every P busy simulating)
// it grows toward the scheduler's preemption quantum, which is exactly
// the signal a saturated streamd needs.
func schedLatencyProbe() float64 {
	start := time.Now()
	ch := make(chan time.Duration, 1)
	go func() { ch <- time.Since(start) }()
	return float64(<-ch) / float64(time.Microsecond)
}

// BuildInfoLabels returns the process's build identity as info-metric
// labels — Go version, main-module version, and VCS revision/dirty
// state when the binary was built from a checkout — for the standard
// …_build_info gauge (Registry.Info).
func BuildInfoLabels() map[string]string {
	labels := map[string]string{"goversion": runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return labels
	}
	if bi.Main.Version != "" {
		labels["version"] = bi.Main.Version
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			labels["revision"] = s.Value
		case "vcs.modified":
			labels["modified"] = s.Value
		}
	}
	return labels
}
