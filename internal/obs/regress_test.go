package obs

import (
	"strings"
	"testing"
)

func runs(exp string, wallNs ...int64) []LedgerEntry {
	var out []LedgerEntry
	for _, w := range wallNs {
		out = append(out, LedgerEntry{Schema: LedgerSchema, Experiment: exp, WallNs: w})
	}
	return out
}

func TestGateFlagsTwentyPercentSlowdown(t *testing.T) {
	base := runs("fig5", 100, 101, 99)
	cur := runs("fig5", 120, 121, 119)
	rep := CompareLedgers(base, cur, DefaultGateOptions())
	if !rep.Regressed {
		t.Fatalf("20%% slowdown not flagged: %+v", rep.Verdicts)
	}
}

func TestGatePassesIdenticalRerun(t *testing.T) {
	base := runs("fig5", 100, 102, 98)
	cur := runs("fig5", 101, 99, 103)
	rep := CompareLedgers(base, cur, DefaultGateOptions())
	if rep.Regressed {
		t.Fatalf("identical re-run flagged: %+v", rep.Verdicts)
	}
}

func TestGateTolsJitterBelowFloor(t *testing.T) {
	// 8% slower is under the 10% floor even with a perfectly quiet
	// baseline.
	rep := CompareLedgers(runs("a", 100, 100, 100), runs("a", 108, 108, 108), DefaultGateOptions())
	if rep.Regressed {
		t.Fatalf("8%% delta flagged despite 10%% floor: %+v", rep.Verdicts)
	}
}

func TestGateCapStopsNoisyBaselineMasking(t *testing.T) {
	// A wildly noisy baseline must not stretch the threshold past
	// MaxRelative: a 25% regression still flags.
	base := runs("a", 100, 60, 140, 80, 130)
	bm := median(append([]float64(nil), 100, 60, 140, 80, 130))
	cur := runs("a", int64(bm*1.25), int64(bm*1.25), int64(bm*1.25))
	rep := CompareLedgers(base, cur, DefaultGateOptions())
	if !rep.Regressed {
		t.Fatalf("25%% regression masked by noisy baseline: %+v", rep.Verdicts)
	}
	if got := rep.Verdicts[0].Threshold; got > 1.18001 {
		t.Fatalf("threshold %v exceeds MaxRelative cap", got)
	}
}

func TestGateWidensWithNoise(t *testing.T) {
	// A moderately noisy baseline should tolerate more than the floor.
	base := runs("a", 100, 112, 90, 108, 95)
	opt := DefaultGateOptions()
	rep := CompareLedgers(base, runs("a", 100), opt)
	v := rep.Verdicts[0]
	if v.Threshold <= 1+opt.MinRelative {
		t.Fatalf("noisy baseline did not widen threshold: %+v", v)
	}
	if v.Threshold > 1+opt.MaxRelative {
		t.Fatalf("threshold exceeds cap: %+v", v)
	}
}

func TestGateSkipsThinEvidence(t *testing.T) {
	opt := DefaultGateOptions()
	opt.MinSamples = 3
	rep := CompareLedgers(runs("a", 100, 100, 100), runs("a", 200), opt)
	if rep.Regressed {
		t.Fatalf("verdict rendered on thin evidence: %+v", rep.Verdicts)
	}
	if !rep.Verdicts[0].Skipped {
		t.Fatalf("thin evidence not marked skipped: %+v", rep.Verdicts)
	}
}

func TestGateMedianRobustToOutlier(t *testing.T) {
	// One slow outlier among current runs must not flag the gate —
	// that's the whole point of the median.
	base := runs("a", 100, 100, 100)
	cur := runs("a", 100, 300, 101)
	rep := CompareLedgers(base, cur, DefaultGateOptions())
	if rep.Regressed {
		t.Fatalf("single outlier flagged: %+v", rep.Verdicts)
	}
}

func TestGateRenderTable(t *testing.T) {
	rep := CompareLedgers(runs("fig5", 100), runs("fig5", 200), DefaultGateOptions())
	var b strings.Builder
	rep.Render(&b)
	out := b.String()
	if !strings.Contains(out, "FAIL") || !strings.Contains(out, "fig5") {
		t.Fatalf("render missing verdict:\n%s", out)
	}
}

func runsWithMetrics(exp string, m map[string]float64, wallNs ...int64) []LedgerEntry {
	out := runs(exp, wallNs...)
	for i := range out {
		out[i].Metrics = m
	}
	return out
}

func TestMetricGateFlagsCoverageCollapse(t *testing.T) {
	base := runsWithMetrics("fig5", map[string]float64{"coverage.fastpath_pct": 96}, 100, 101)
	cur := runsWithMetrics("fig5", map[string]float64{"coverage.fastpath_pct": 30}, 100, 101)
	rep := CompareLedgers(base, cur, DefaultGateOptions())
	if !rep.Regressed {
		t.Fatalf("coverage collapse (96%% -> 30%%) not flagged: %+v", rep.Verdicts)
	}
	found := false
	for _, v := range rep.Verdicts {
		if strings.Contains(v.Experiment, "coverage.fastpath_pct") && v.Regressed {
			found = true
		}
	}
	if !found {
		t.Fatalf("no coverage verdict names the key: %+v", rep.Verdicts)
	}
}

func TestMetricGateFlagsDRAMGrowth(t *testing.T) {
	base := runsWithMetrics("fig5", map[string]float64{"bw.dram.bytes": 1e6}, 100)
	cur := runsWithMetrics("fig5", map[string]float64{"bw.dram.bytes": 2e6}, 100)
	rep := CompareLedgers(base, cur, DefaultGateOptions())
	if !rep.Regressed {
		t.Fatalf("2x DRAM traffic not flagged: %+v", rep.Verdicts)
	}
}

func TestMetricGateFlagsDRAMOccupancyGrowth(t *testing.T) {
	// Occupancy can regress without byte growth — e.g. row-buffer
	// locality lost, so the same bytes hold DRAM longer. The
	// occupied-cycles axis must flag independently.
	base := runsWithMetrics("fig5",
		map[string]float64{"bw.dram.bytes": 1e6, "bw.dram.cycles": 1e5}, 100)
	cur := runsWithMetrics("fig5",
		map[string]float64{"bw.dram.bytes": 1e6, "bw.dram.cycles": 2e5}, 100)
	rep := CompareLedgers(base, cur, DefaultGateOptions())
	if !rep.Regressed {
		t.Fatalf("2x DRAM occupancy at flat bytes not flagged: %+v", rep.Verdicts)
	}
	for _, v := range rep.Verdicts {
		if strings.Contains(v.Experiment, "bw.dram.bytes") && v.Regressed {
			t.Fatalf("byte gate fired on flat bytes: %+v", v)
		}
	}
}

func TestMetricGatePassesCleanRerun(t *testing.T) {
	// Deterministic metrics compare at exactly ratio 1 on a clean
	// re-run — the gate must not false-positive.
	m := map[string]float64{
		"coverage.fastpath_pct": 96, "bw.dram.bytes": 1e6, "bw.dram.cycles": 1e5,
	}
	rep := CompareLedgers(runsWithMetrics("fig5", m, 100, 99),
		runsWithMetrics("fig5", m, 101, 100), DefaultGateOptions())
	if rep.Regressed {
		t.Fatalf("clean re-run flagged by metric gate: %+v", rep.Verdicts)
	}
	n := 0
	for _, v := range rep.Verdicts {
		if strings.Contains(v.Experiment, "[") {
			n++
			if v.Ratio != 1 {
				t.Errorf("deterministic metric ratio %v, want exactly 1: %+v", v.Ratio, v)
			}
		}
	}
	if n != 3 {
		t.Fatalf("expected 3 metric verdicts, got %d: %+v", n, rep.Verdicts)
	}
}

func TestMetricGateSkipsV1Baseline(t *testing.T) {
	// A baseline recorded before the coverage metrics existed produces
	// no metric verdicts at all — not skips, not failures.
	base := runs("fig5", 100, 101)
	cur := runsWithMetrics("fig5",
		map[string]float64{"coverage.fastpath_pct": 96, "bw.dram.bytes": 1e6}, 100, 101)
	rep := CompareLedgers(base, cur, DefaultGateOptions())
	if rep.Regressed {
		t.Fatalf("v1 baseline flagged: %+v", rep.Verdicts)
	}
	for _, v := range rep.Verdicts {
		if strings.Contains(v.Experiment, "[") {
			t.Fatalf("metric verdict rendered against metric-less baseline: %+v", v)
		}
	}
}

func TestMetricGateSkipsZeroBaseline(t *testing.T) {
	base := runsWithMetrics("fig5", map[string]float64{"bw.dram.bytes": 0}, 100)
	cur := runsWithMetrics("fig5", map[string]float64{"bw.dram.bytes": 1e6}, 100)
	rep := CompareLedgers(base, cur, DefaultGateOptions())
	if rep.Regressed {
		t.Fatalf("zero baseline flagged: %+v", rep.Verdicts)
	}
	found := false
	for _, v := range rep.Verdicts {
		if strings.Contains(v.Experiment, "bw.dram.bytes") {
			found = true
			if !v.Skipped {
				t.Fatalf("zero baseline not skipped: %+v", v)
			}
		}
	}
	if !found {
		t.Fatal("zero-baseline metric verdict missing")
	}
}

func TestMedianAndMAD(t *testing.T) {
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("median odd = %v", m)
	}
	if m := median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Errorf("median even = %v", m)
	}
	if m := mad([]float64{1, 1, 1}, 1); m != 0 {
		t.Errorf("mad of constant = %v", m)
	}
}
