package obs

import (
	"fmt"
	"io"
)

// This file implements the temporal half of the observability layer: a
// cycle-windowed timeline sampler. Where the Registry answers "how much
// in total?", the Timeline answers "when?": it records time-series of
// SRF occupancy, work-queue depth, outstanding misses, overlap
// efficiency and recovery activity as a run unfolds, at a configurable
// simulated-cycle interval, and exports them as Perfetto counter
// tracks.
//
// Sampling is passive: a Sample or Poll call reads state and records a
// point, never advancing any simulated clock, so an attached timeline
// cannot perturb timing. All hooks are nil-guarded (a nil *Timeline or
// nil *Series is an inert no-op), so the zero-rate configuration keeps
// the hot loops allocation-free and the fast path's byte-identity
// guarantees intact.
//
// Like the instruments in registry.go, a Timeline is not internally
// synchronised: the sim engine serialises the simulated threads of one
// machine in virtual time, so attach a timeline only to runs whose
// samplers are serialised (one machine, or sequential machines).

// Point is one sample of a time series: the simulated cycle it was
// taken at and the sampled value.
type Point struct {
	T uint64
	V float64
}

// Series is one named time series. Samples are windowed: at most one
// point is recorded per interval window, and points are strictly
// monotone in T (a sample that would step backwards — cross-context
// clock skew — is dropped).
type Series struct {
	Name     string
	interval uint64
	lastWin  uint64 // window index + 1 of the last accepted sample
	lastT    uint64
	pts      []Point
}

// Sample records v at cycle t, subject to the window and monotonicity
// rules. Safe on a nil receiver (no-op), so call sites need no guard
// beyond holding a possibly-nil handle.
func (s *Series) Sample(t uint64, v float64) {
	if s == nil {
		return
	}
	iv := s.interval
	if iv == 0 {
		// A zero-value Series (constructed outside Timeline.Series)
		// samples every distinct cycle instead of dividing by zero.
		iv = 1
	}
	w := t/iv + 1
	if w == s.lastWin {
		return
	}
	if len(s.pts) > 0 && t <= s.lastT {
		return
	}
	s.pts = append(s.pts, Point{T: t, V: v})
	s.lastWin = w
	s.lastT = t
}

// Due reports whether a sample at cycle t would be recorded — use it to
// skip computing an expensive value between windows. Nil-safe (false).
func (s *Series) Due(t uint64) bool {
	if s == nil {
		return false
	}
	iv := s.interval
	if iv == 0 {
		iv = 1
	}
	if t/iv+1 == s.lastWin {
		return false
	}
	return len(s.pts) == 0 || t > s.lastT
}

// Points returns the recorded samples, oldest first.
func (s *Series) Points() []Point {
	if s == nil {
		return nil
	}
	return s.pts
}

// Len returns the number of recorded samples.
func (s *Series) Len() int {
	if s == nil {
		return 0
	}
	return len(s.pts)
}

// Last returns the most recent sample (zero Point when empty).
func (s *Series) Last() Point {
	if s == nil || len(s.pts) == 0 {
		return Point{}
	}
	return s.pts[len(s.pts)-1]
}

// probe is a registered gauge read on every Poll window.
type probe struct {
	s  *Series
	fn func() float64
}

// Timeline is a set of cycle-windowed time series plus registered
// probes. Create one with NewTimeline and attach it to the simulated
// machines via sim.SetDefaultTimeline (mirroring SetDefaultObserver);
// the sim, svm and exec layers then feed it during stream runs.
type Timeline struct {
	interval uint64
	series   map[string]*Series
	order    []string
	probes   []probe
	probeIdx map[string]int
	lastPoll uint64 // poll window index + 1
}

// DefaultSampleInterval is the default sampling window in simulated
// cycles: fine enough to resolve strip-level pipeline behaviour (strips
// run for tens of thousands of cycles), coarse enough that a full
// application trace stays a few thousand points per series.
const DefaultSampleInterval = 5000

// NewTimeline returns a timeline sampling at the given cycle interval
// (values < 1 are clamped to 1: every distinct cycle may sample).
func NewTimeline(intervalCycles uint64) *Timeline {
	if intervalCycles < 1 {
		intervalCycles = 1
	}
	return &Timeline{
		interval: intervalCycles,
		series:   map[string]*Series{},
		probeIdx: map[string]int{},
	}
}

// Interval returns the sampling window in cycles. Nil-safe (0).
func (tl *Timeline) Interval() uint64 {
	if tl == nil {
		return 0
	}
	return tl.interval
}

// Series returns the named series, creating it on first use. Nil-safe:
// a nil timeline returns a nil series, whose Sample is a no-op — so
// instrumentation sites resolve their handles once and sample
// unconditionally.
func (tl *Timeline) Series(name string) *Series {
	if tl == nil {
		return nil
	}
	s, ok := tl.series[name]
	if !ok {
		s = &Series{Name: name, interval: tl.interval}
		tl.series[name] = s
		tl.order = append(tl.order, name)
	}
	return s
}

// Probe registers a gauge function sampled into the named series on
// every Poll window. Re-registering a name replaces its function (a new
// machine's SRF supersedes a finished one's). Nil-safe no-op.
func (tl *Timeline) Probe(name string, fn func() float64) {
	if tl == nil || fn == nil {
		return
	}
	s := tl.Series(name)
	if i, ok := tl.probeIdx[name]; ok {
		tl.probes[i].fn = fn
		return
	}
	tl.probeIdx[name] = len(tl.probes)
	tl.probes = append(tl.probes, probe{s: s, fn: fn})
}

// Poll samples every registered probe at cycle t, at most once per
// interval window. Nil-safe no-op. The window check is one division, so
// polling from per-task hooks is cheap.
func (tl *Timeline) Poll(t uint64) {
	if tl == nil || len(tl.probes) == 0 {
		return
	}
	w := t/tl.interval + 1
	if w == tl.lastPoll {
		return
	}
	tl.lastPoll = w
	for i := range tl.probes {
		p := &tl.probes[i]
		p.s.Sample(t, p.fn())
	}
}

// Names returns the series names in creation order.
func (tl *Timeline) Names() []string {
	if tl == nil {
		return nil
	}
	return tl.order
}

// CounterPoints flattens every series into Perfetto counter samples,
// series in creation order, points in time order within each — the
// form WriteTraceEvents renders as stacked counter tracks.
func (tl *Timeline) CounterPoints() []CounterPoint {
	if tl == nil {
		return nil
	}
	n := 0
	for _, name := range tl.order {
		n += len(tl.series[name].pts)
	}
	out := make([]CounterPoint, 0, n)
	for _, name := range tl.order {
		for _, p := range tl.series[name].pts {
			out = append(out, CounterPoint{Name: name, T: p.T, V: p.V})
		}
	}
	return out
}

// WriteTo dumps every series as deterministic text — one header line
// per series plus one "cycle value" line per point — the byte-exact
// form the determinism tests compare across fast-path modes.
func (tl *Timeline) WriteTo(w io.Writer) (int64, error) {
	if tl == nil {
		return 0, nil
	}
	var total int64
	for _, name := range tl.order {
		s := tl.series[name]
		n, err := fmt.Fprintf(w, "series %q interval=%d points=%d\n", name, s.interval, len(s.pts))
		total += int64(n)
		if err != nil {
			return total, err
		}
		for _, p := range s.pts {
			n, err := fmt.Fprintf(w, "  %d %.9g\n", p.T, p.V)
			total += int64(n)
			if err != nil {
				return total, err
			}
		}
	}
	return total, nil
}

// Render writes a per-series summary (point count, span, last value).
func (tl *Timeline) Render(w io.Writer) {
	if tl == nil {
		return
	}
	width := 0
	for _, name := range tl.order {
		if len(name) > width {
			width = len(name)
		}
	}
	for _, name := range tl.order {
		s := tl.series[name]
		if len(s.pts) == 0 {
			fmt.Fprintf(w, "  %-*s (no samples)\n", width, name)
			continue
		}
		first, last := s.pts[0], s.pts[len(s.pts)-1]
		min, max := s.pts[0].V, s.pts[0].V
		for _, p := range s.pts {
			if p.V < min {
				min = p.V
			}
			if p.V > max {
				max = p.V
			}
		}
		fmt.Fprintf(w, "  %-*s %5d pts over [%d,%d]  min=%.4g max=%.4g last=%.4g\n",
			width, name, len(s.pts), first.T, last.T, min, max, last.V)
	}
}
