package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Span is one completed interval on a track — a task execution, a wait,
// a phase. Times are in simulated cycles; the exporter converts them to
// the trace_event microsecond scale.
type Span struct {
	// Name labels the slice (e.g. "as#3").
	Name string
	// Cat is the slice category (e.g. "gather", "kernel", "scatter").
	Cat string
	// Track is the timeline the span belongs to (one per hardware
	// context); it becomes the trace_event tid.
	Track int
	// Start and Dur are in cycles.
	Start, Dur uint64
	// Args are extra key/values shown in the Perfetto detail pane
	// (phase and strip attribution).
	Args map[string]int64
}

// CounterPoint is one sample of a time-series counter (a Perfetto "C"
// event), rendered as a stacked area track.
type CounterPoint struct {
	Name string
	T    uint64 // cycles
	V    float64
}

// Flow is one dependency arrow between two spans: Perfetto draws a line
// from (FromTrack, FromT) to (ToTrack, ToT). The exporter emits it as an
// "s"/"f" flow-event pair sharing one id, which the viewer binds to the
// slices enclosing those points — so task-DAG edges become visible
// arrows instead of invisible metadata.
type Flow struct {
	Name      string
	FromTrack int
	FromT     uint64 // cycles (producer's end)
	ToTrack   int
	ToT       uint64 // cycles (consumer's start)
}

// TraceMeta names the process and tracks of an exported trace.
type TraceMeta struct {
	// Process names the single process of the trace (pid 0).
	Process string
	// Tracks maps track numbers to display names (e.g. 0 → "ctx0
	// control+compute").
	Tracks map[int]string
	// CyclesPerUsec scales cycles to trace_event microseconds; use the
	// simulated core frequency in MHz so Perfetto shows wall-clock
	// time. 0 defaults to 1 (1 cycle = 1 µs).
	CyclesPerUsec float64
}

// traceEvent is one entry of the Chrome trace_event format, the JSON
// schema both chrome://tracing and ui.perfetto.dev load.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   int            `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"` // flow binding point ("e" on "f" events)
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the top-level JSON object.
type traceFile struct {
	TraceEvents     []traceEvent   `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// WriteTraceEvents writes spans and counter samples as Chrome
// trace_event JSON, loadable at ui.perfetto.dev (or chrome://tracing):
// one named thread per track, complete ("X") events for spans and
// counter ("C") events for time series.
func WriteTraceEvents(w io.Writer, meta TraceMeta, spans []Span, counters []CounterPoint) error {
	return WriteTraceEventsFlows(w, meta, spans, counters, nil)
}

// WriteTraceEventsFlows is WriteTraceEvents plus dependency arrows:
// every Flow becomes an "s"/"f" flow-event pair so the viewer renders
// the task DAG's edges between the spans they connect.
func WriteTraceEventsFlows(w io.Writer, meta TraceMeta, spans []Span, counters []CounterPoint, flows []Flow) error {
	scale := meta.CyclesPerUsec
	if scale <= 0 {
		scale = 1
	}
	toUs := func(cycles uint64) float64 { return float64(cycles) / scale }

	events := make([]traceEvent, 0, len(spans)+len(counters)+2*len(flows)+len(meta.Tracks)+1)
	process := meta.Process
	if process == "" {
		process = "streamgpp"
	}
	events = append(events, traceEvent{
		Name: "process_name", Ph: "M", Pid: 0, Tid: 0,
		Args: map[string]any{"name": process},
	})
	tracks := make([]int, 0, len(meta.Tracks))
	for t := range meta.Tracks {
		tracks = append(tracks, t)
	}
	sort.Ints(tracks)
	for _, t := range tracks {
		events = append(events, traceEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: t,
			Args: map[string]any{"name": meta.Tracks[t]},
		})
	}
	for _, s := range spans {
		e := traceEvent{
			Name: s.Name, Cat: s.Cat, Ph: "X",
			Ts: toUs(s.Start), Dur: toUs(s.Dur),
			Pid: 0, Tid: s.Track,
		}
		if e.Dur == 0 {
			// Perfetto drops zero-duration complete events; keep them
			// visible at the smallest representable width.
			e.Dur = 0.001
		}
		if len(s.Args) > 0 {
			args := make(map[string]any, len(s.Args))
			for k, v := range s.Args {
				args[k] = v
			}
			e.Args = args
		}
		events = append(events, e)
	}
	for _, c := range counters {
		events = append(events, traceEvent{
			Name: c.Name, Ph: "C", Ts: toUs(c.T), Pid: 0, Tid: 0,
			Args: map[string]any{"value": c.V},
		})
	}
	for i, f := range flows {
		// "s" starts the flow inside the producer's slice, "f" with
		// binding point "e" (enclosing) ends it inside the consumer's;
		// the shared id pairs them.
		events = append(events,
			traceEvent{Name: f.Name, Cat: "dep", Ph: "s",
				Ts: toUs(f.FromT), Pid: 0, Tid: f.FromTrack, ID: i + 1},
			traceEvent{Name: f.Name, Cat: "dep", Ph: "f", BP: "e",
				Ts: toUs(f.ToT), Pid: 0, Tid: f.ToTrack, ID: i + 1})
	}

	enc := json.NewEncoder(w)
	if err := enc.Encode(traceFile{
		TraceEvents:     events,
		DisplayTimeUnit: "ms",
		OtherData:       map[string]any{"cyclesPerUsec": scale},
	}); err != nil {
		return fmt.Errorf("obs: encoding trace: %w", err)
	}
	return nil
}
