package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"time"
)

// This file implements the SLO engine: declared service-level
// objectives evaluated over registry snapshots. An objective is a
// target fraction of "good" events — requests answered under a latency
// threshold, responses that were not 5xx — and the engine turns the
// registry's existing histograms and counters into the two numbers an
// operator actually pages on: the SLI (good/total over a window) and
// the error-budget burn rate (how many times faster than "just barely
// meeting target" the budget is being spent; burn 1.0 exhausts the
// budget exactly at the window's end, burn 5.0 five times faster).
//
// The engine is snapshot-driven and clock-passive: callers hand it
// timestamped Snapshots (streamd does so on every scrape) and it keeps
// just enough history — one retained sample per minStep — to subtract
// a window-ago baseline via Snapshot.Delta. It never reads the clock
// itself and never touches the simulator, so enabling it cannot move a
// simulated cycle. Burn-rate math and window semantics are documented
// in DESIGN.md §17.

// SLOClass selects how an objective derives good/total counts.
type SLOClass string

// Objective classes.
const (
	// SLOLatency counts histogram samples at or under ThresholdMs as
	// good. Bucket granularity makes this conservative: a bucket
	// straddling the threshold counts entirely as bad, so the reported
	// SLI is a lower bound and burn an upper bound.
	SLOLatency SLOClass = "latency"
	// SLORatio counts Metric (a counter of bad events) against Total (a
	// counter of all events): SLI = 1 - bad/total.
	SLORatio SLOClass = "ratio"
)

// SLOObjective declares one objective over registry metrics.
type SLOObjective struct {
	// Name identifies the objective in reports and gauge names.
	Name string `json:"name"`
	// Class is the evaluation rule: latency or ratio.
	Class SLOClass `json:"class"`
	// Metric is the histogram (latency) or bad-event counter (ratio).
	Metric string `json:"metric"`
	// Total is the all-events counter (ratio class only).
	Total string `json:"total,omitempty"`
	// ThresholdMs is the good/bad latency boundary (latency class only).
	ThresholdMs float64 `json:"threshold_ms,omitempty"`
	// Target is the objective: the minimum good fraction, e.g. 0.999.
	Target float64 `json:"target"`
}

// sloSample is one retained snapshot, pre-filtered to objective metrics.
type sloSample struct {
	t    time.Time
	snap Snapshot
}

// SLOEngine evaluates objectives over a sliding history of snapshots.
// Not safe for concurrent use; streamd serialises Record/Report under
// its scrape path.
type SLOEngine struct {
	objectives []SLOObjective
	windows    []time.Duration
	start      time.Time
	// minStep thins retained samples: at most one kept per minStep, so
	// history stays bounded (longest window / minStep samples) no matter
	// the scrape rate.
	minStep time.Duration
	samples []sloSample
}

// DefaultSLOWindows are the burn-rate windows when none are given: a
// fast 5-minute window that pages on sudden breakage and a slow 1-hour
// window that filters blips.
func DefaultSLOWindows() []time.Duration {
	return []time.Duration{5 * time.Minute, time.Hour}
}

// NewSLOEngine returns an engine evaluating objectives over the given
// burn-rate windows (DefaultSLOWindows when none), anchored at start —
// the empty pre-start snapshot is every window's fallback baseline.
func NewSLOEngine(start time.Time, objectives []SLOObjective, windows ...time.Duration) *SLOEngine {
	if len(windows) == 0 {
		windows = DefaultSLOWindows()
	}
	ws := append([]time.Duration(nil), windows...)
	sort.Slice(ws, func(i, j int) bool { return ws[i] < ws[j] })
	step := ws[len(ws)-1] / 720
	if step < time.Second {
		step = time.Second
	}
	return &SLOEngine{
		objectives: append([]SLOObjective(nil), objectives...),
		windows:    ws,
		start:      start,
		minStep:    step,
	}
}

// Objectives returns the declared objectives.
func (e *SLOEngine) Objectives() []SLOObjective {
	return append([]SLOObjective(nil), e.objectives...)
}

// Record retains snap (taken at t) as a future window baseline. Only
// the metrics the objectives reference are kept, and samples closer
// than minStep to the previous one are dropped, so memory stays
// bounded regardless of scrape rate.
func (e *SLOEngine) Record(t time.Time, snap Snapshot) {
	if n := len(e.samples); n > 0 && t.Sub(e.samples[n-1].t) < e.minStep {
		return
	}
	kept := make(Snapshot, 2*len(e.objectives))
	for _, o := range e.objectives {
		if v, ok := snap[o.Metric]; ok {
			kept[o.Metric] = v
		}
		if o.Total != "" {
			if v, ok := snap[o.Total]; ok {
				kept[o.Total] = v
			}
		}
	}
	e.samples = append(e.samples, sloSample{t: t, snap: kept})

	// Evict samples older than the longest window, keeping the newest
	// such sample: it is that window's baseline until a younger sample
	// ages past the boundary.
	horizon := t.Add(-e.windows[len(e.windows)-1])
	cut := 0
	for i, s := range e.samples {
		if !s.t.After(horizon) {
			cut = i
		}
	}
	if cut > 0 {
		e.samples = append(e.samples[:0], e.samples[cut:]...)
	}
}

// SLOWindowStatus is one objective evaluated over one window.
type SLOWindowStatus struct {
	// Window is the human label ("5m", "1h").
	Window string `json:"window"`
	// WindowSec is the window length in seconds.
	WindowSec float64 `json:"window_sec"`
	// Partial is true when the process has not been up for a full
	// window, so the figures cover less history than the label claims.
	Partial bool `json:"partial,omitempty"`
	// Total and Bad are the event counts over the window.
	Total float64 `json:"total"`
	Bad   float64 `json:"bad"`
	// SLI is the good fraction over the window (1 when no traffic).
	SLI float64 `json:"sli"`
	// BurnRate is (1-SLI)/(1-Target): 1.0 spends the error budget
	// exactly at the objective's pace, >1 is over-budget.
	BurnRate float64 `json:"burn_rate"`
	// QuantileMs is the Target-quantile latency over the window
	// (latency class only).
	QuantileMs float64 `json:"quantile_ms,omitempty"`
}

// SLOStatus is one objective's full evaluation.
type SLOStatus struct {
	SLOObjective
	// Budget is the allowed bad fraction, 1-Target.
	Budget float64 `json:"budget"`
	// Windows holds the per-window evaluations, shortest first.
	Windows []SLOWindowStatus `json:"windows"`
	// BudgetUsedPct is the lifetime bad fraction as a percentage of the
	// budget: ≥100 means the whole-process history is out of budget.
	BudgetUsedPct float64 `json:"budget_used_pct"`
	// Healthy is false when every window is burning over budget (the
	// multi-window page condition) or the lifetime budget is spent.
	Healthy bool `json:"healthy"`
}

// SLOReport is a full evaluation of every objective at one instant.
type SLOReport struct {
	Now        string      `json:"now,omitempty"` // RFC3339, caller-stamped
	UptimeSec  float64     `json:"uptime_sec"`
	Objectives []SLOStatus `json:"objectives"`
	// Healthy is the conjunction over objectives.
	Healthy bool `json:"healthy"`
}

// bucketCountAtOrBelow sums bucket counts whose upper bound is ≤ limit:
// the conservative good-event count for a latency objective (a bucket
// straddling the limit counts as bad).
func bucketCountAtOrBelow(limit float64, buckets *[histBuckets]uint64) float64 {
	bounds := HistBucketBounds()
	var good uint64
	for i, n := range buckets {
		if bounds[i] > limit {
			break
		}
		good += n
	}
	return float64(good)
}

// windowLabel renders a duration the way operators write it: "5m",
// "1h", "90s".
func windowLabel(d time.Duration) string {
	switch {
	case d%time.Hour == 0:
		return fmt.Sprintf("%dh", d/time.Hour)
	case d%time.Minute == 0:
		return fmt.Sprintf("%dm", d/time.Minute)
	default:
		return fmt.Sprintf("%ds", d/time.Second)
	}
}

// baseline returns the newest recorded sample at or before t, or an
// empty snapshot (process start) when none is old enough.
func (e *SLOEngine) baseline(t time.Time) Snapshot {
	var best Snapshot
	for _, s := range e.samples {
		if s.t.After(t) {
			break
		}
		best = s.snap
	}
	if best == nil {
		return Snapshot{}
	}
	return best
}

// evalWindow evaluates one objective over cur minus the window
// baseline.
func (o SLOObjective) evalWindow(delta Snapshot) (total, bad, quantileMs float64) {
	switch o.Class {
	case SLOLatency:
		v := delta[o.Metric]
		total = float64(v.Count)
		bad = total - bucketCountAtOrBelow(o.ThresholdMs, &v.Buckets)
		quantileMs = v.Quantile(o.Target)
	case SLORatio:
		bad = delta[o.Metric].Value
		total = delta[o.Total].Value
	}
	return total, bad, quantileMs
}

// Report evaluates every objective against cur (taken at now) over all
// windows. Callers should Record(now, cur) afterwards so this scrape
// becomes a future baseline; Report itself never mutates the engine.
func (e *SLOEngine) Report(now time.Time, cur Snapshot) SLOReport {
	uptime := now.Sub(e.start)
	rep := SLOReport{UptimeSec: uptime.Seconds(), Healthy: true}
	for _, o := range e.objectives {
		budget := 1 - o.Target
		st := SLOStatus{SLOObjective: o, Budget: budget, Healthy: true}
		allBurning := len(e.windows) > 0
		for _, w := range e.windows {
			delta := cur.Delta(e.baseline(now.Add(-w)))
			total, bad, qms := o.evalWindow(delta)
			ws := SLOWindowStatus{
				Window:     windowLabel(w),
				WindowSec:  w.Seconds(),
				Partial:    uptime < w,
				Total:      total,
				Bad:        bad,
				SLI:        1,
				QuantileMs: qms,
			}
			if total > 0 {
				ws.SLI = 1 - bad/total
			}
			if budget > 0 {
				ws.BurnRate = (1 - ws.SLI) / budget
			} else if ws.SLI < 1 {
				ws.BurnRate = math.Inf(1)
			}
			if ws.BurnRate <= 1 {
				allBurning = false
			}
			st.Windows = append(st.Windows, ws)
		}
		// Lifetime budget: everything since process start.
		total, bad, _ := o.evalWindow(cur.Delta(Snapshot{}))
		if total > 0 && budget > 0 {
			st.BudgetUsedPct = (bad / total) / budget * 100
		}
		if allBurning || st.BudgetUsedPct >= 100 {
			st.Healthy = false
			rep.Healthy = false
		}
		rep.Objectives = append(rep.Objectives, st)
	}
	return rep
}

// Render writes the report as an aligned operator-facing table.
func (r SLOReport) Render(w io.Writer) {
	fmt.Fprintf(w, "SLO report  uptime=%.0fs  healthy=%v\n", r.UptimeSec, r.Healthy)
	for _, st := range r.Objectives {
		ok := "ok"
		if !st.Healthy {
			ok = "BREACH"
		}
		fmt.Fprintf(w, "\n%s  [%s %s", st.Name, st.Class, st.Metric)
		if st.Class == SLOLatency {
			fmt.Fprintf(w, " <= %gms", st.ThresholdMs)
		}
		fmt.Fprintf(w, "]  target=%.4g  budget-used=%.1f%%  %s\n", st.Target, st.BudgetUsedPct, ok)
		fmt.Fprintf(w, "  %-6s %10s %10s %9s %9s %10s %s\n",
			"window", "total", "bad", "sli", "burn", "q(target)", "")
		for _, ws := range st.Windows {
			note := ""
			if ws.Partial {
				note = "(partial)"
			}
			q := "-"
			if st.Class == SLOLatency {
				q = fmt.Sprintf("%.0fms", ws.QuantileMs)
			}
			fmt.Fprintf(w, "  %-6s %10.0f %10.0f %9.5f %9.2f %10s %s\n",
				ws.Window, ws.Total, ws.Bad, ws.SLI, ws.BurnRate, q, note)
		}
	}
}
