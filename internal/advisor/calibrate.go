package advisor

import (
	"fmt"
	"io"
)

// Measured holds the quantities an actual run of the analyzed program
// produced, for calibrating the static report against reality. The
// byte counts come from the runtime's payload counters
// (svm.gather.array_bytes / svm.scatter.array_bytes); the path cycles
// from the critical-path profiler's per-kind attribution
// (critpath.Path.ByKind), which measures where the makespan actually
// went rather than aggregate busy time.
type Measured struct {
	GatherBytes  uint64
	ScatterBytes uint64

	// Critical-path cycles by segment kind.
	PathGather  uint64
	PathKernel  uint64
	PathScatter uint64
	PathWait    uint64 // dep-wait + queue-wait + recovery
	PathLength  uint64
}

// MeasuredBound names the measured limiting resource, mirroring
// critpath.Path.Bound: "memory" when bulk-transfer execution dominates
// kernel execution on the critical path.
func (m Measured) MeasuredBound() string {
	if m.PathGather+m.PathScatter >= m.PathKernel {
		return "memory"
	}
	return "compute"
}

// Calibration compares the advisor's static estimates with a measured
// run.
type Calibration struct {
	// PredictedBound is the advisor's EstMemCycles-vs-EstCompCycles
	// call; MeasuredBound the critical path's. The headline calibration
	// question is whether they agree.
	PredictedBound string `json:"predicted_bound"`
	MeasuredBound  string `json:"measured_bound"`
	BoundAgree     bool   `json:"bound_agree"`

	// Payload ratios: measured bytes over the report's payload
	// estimate. The payload estimate is exact by construction, so
	// anything other than 1.0 is a bug in the advisor or the runtime.
	GatherPayloadRatio  float64 `json:"gather_payload_ratio"`
	ScatterPayloadRatio float64 `json:"scatter_payload_ratio"`

	// Fetch amplification: the advisor's fetch-traffic estimate over
	// the measured payload. Above 1 the estimate charges
	// line-granularity or RMW overhead on top of the useful bytes;
	// below 1 it credits cache reuse — one fetched line serving
	// several indexed touches (streamSPAS's repeated x-vector reads,
	// streamFEM's node gathers), so fewer bytes cross the bus than the
	// payload delivered. Purely informational (the simulator's bus
	// traffic is the authority on actual fetch bytes); the calibration
	// test tracks the observed band per bundled app.
	GatherAmplification  float64 `json:"gather_amplification"`
	ScatterAmplification float64 `json:"scatter_amplification"`

	// WaitFraction is the share of the measured critical path spent
	// not executing (dep-wait, queue-wait, recovery) — schedule
	// overhead the static estimate folds into its pipelineOverhead
	// factor.
	WaitFraction float64 `json:"wait_fraction"`

	Notes []string `json:"notes,omitempty"`
}

// Calibrate compares the report with a measured run.
func (r *Report) Calibrate(m Measured) *Calibration {
	c := &Calibration{PredictedBound: "compute", MeasuredBound: m.MeasuredBound()}
	if r.EstMemCycles >= r.EstCompCycles {
		c.PredictedBound = "memory"
	}
	c.BoundAgree = c.PredictedBound == c.MeasuredBound

	c.GatherPayloadRatio = ratioOf(m.GatherBytes, r.PayloadGatherBytes)
	c.ScatterPayloadRatio = ratioOf(m.ScatterBytes, r.PayloadScatterBytes)
	c.GatherAmplification = ratioOf(r.GatherBytes, m.GatherBytes)
	c.ScatterAmplification = ratioOf(r.ScatterBytes, m.ScatterBytes)
	if m.PathLength > 0 {
		c.WaitFraction = float64(m.PathWait) / float64(m.PathLength)
	}

	if !c.BoundAgree {
		c.Notes = append(c.Notes, fmt.Sprintf(
			"bound disagrees: advisor estimates %s-bound (mem %.0f vs comp %.0f cycles) but the critical path is %s-bound (gather+scatter %d vs kernel %d cycles)",
			c.PredictedBound, r.EstMemCycles, r.EstCompCycles,
			c.MeasuredBound, m.PathGather+m.PathScatter, m.PathKernel))
	}
	if c.GatherPayloadRatio != 1 {
		c.Notes = append(c.Notes, fmt.Sprintf(
			"gather payload mismatch: measured %d B, predicted %d B (ratio %.4f) — the payload estimate should be exact",
			m.GatherBytes, r.PayloadGatherBytes, c.GatherPayloadRatio))
	}
	if c.ScatterPayloadRatio != 1 {
		c.Notes = append(c.Notes, fmt.Sprintf(
			"scatter payload mismatch: measured %d B, predicted %d B (ratio %.4f) — the payload estimate should be exact",
			m.ScatterBytes, r.PayloadScatterBytes, c.ScatterPayloadRatio))
	}
	return c
}

// ratioOf divides measured by predicted, returning 1 when both are
// zero (nothing to disagree about) and 0 when only the denominator is.
func ratioOf(num, den uint64) float64 {
	if den == 0 {
		if num == 0 {
			return 1
		}
		return 0
	}
	return float64(num) / float64(den)
}

// Render writes the calibration as text.
func (c *Calibration) Render(w io.Writer) {
	agree := "AGREE"
	if !c.BoundAgree {
		agree = "DISAGREE"
	}
	fmt.Fprintf(w, "calibration: predicted %s-bound, measured %s-bound [%s]\n",
		c.PredictedBound, c.MeasuredBound, agree)
	fmt.Fprintf(w, "  payload ratio (measured/predicted): gather %.4f, scatter %.4f\n",
		c.GatherPayloadRatio, c.ScatterPayloadRatio)
	fmt.Fprintf(w, "  fetch amplification (estimate/payload): gather %.2f×, scatter %.2f×\n",
		c.GatherAmplification, c.ScatterAmplification)
	fmt.Fprintf(w, "  critical-path wait fraction: %.1f%%\n", 100*c.WaitFraction)
	for _, n := range c.Notes {
		fmt.Fprintf(w, "  ! %s\n", n)
	}
}
