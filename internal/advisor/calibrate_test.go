package advisor

import (
	"bytes"
	"strings"
	"testing"

	"streamgpp/internal/apps/fem"
	"streamgpp/internal/apps/neo"
	"streamgpp/internal/apps/spas"
	"streamgpp/internal/critpath"
	"streamgpp/internal/exec"
	"streamgpp/internal/obs"
	"streamgpp/internal/sim"
)

// measureApp runs one bundled app's stream version with the payload
// counters and the task trace attached, and distils the Measured
// record the calibration needs.
func measureApp(t *testing.T, run func(exec.Config) (exec.Result, uint64, uint64, error)) Measured {
	t.Helper()
	cfg := exec.Defaults()
	cfg.Trace = &exec.Trace{}
	res, gatherB, scatterB, err := run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := critpath.Build(cfg.Trace, res.Cycles)
	if err != nil {
		t.Fatal(err)
	}
	p := g.CriticalPath()
	by := p.ByKind()
	return Measured{
		GatherBytes:  gatherB,
		ScatterBytes: scatterB,
		PathGather:   by[critpath.SegGather],
		PathKernel:   by[critpath.SegKernel],
		PathScatter:  by[critpath.SegScatter],
		PathWait:     by[critpath.SegDepWait] + by[critpath.SegQueueWait] + by[critpath.SegRecovery],
		PathLength:   p.Length,
	}
}

// payloads reads the runtime's exact array-side byte counters.
func payloads(r *obs.Registry) (gather, scatter uint64) {
	return r.Counter("svm.gather.array_bytes").Value(),
		r.Counter("svm.scatter.array_bytes").Value()
}

// TestCalibrationPerApp validates the advisor against a measured run of
// every bundled application: the payload traffic prediction must be
// exact (it is statically computable), and the predicted memory/compute
// bound must match the critical path's measured bound. Steps = 1 for
// streamFEM so one pass is measured, matching the per-pass estimate.
func TestCalibrationPerApp(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	type tc struct {
		name string
		run  func() (*Report, Measured)
	}
	cases := []tc{
		{"fem-euler-lin", func() (*Report, Measured) {
			reg := obs.NewRegistry()
			sim.SetDefaultObserver(reg)
			defer sim.SetDefaultObserver(nil)
			p := fem.EulerLin
			p.Steps = 1
			inst, err := fem.NewInstance(p)
			if err != nil {
				t.Fatal(err)
			}
			r, err := Analyze(inst.Graph(), sim.PentiumD8300())
			if err != nil {
				t.Fatal(err)
			}
			m := measureApp(t, func(cfg exec.Config) (exec.Result, uint64, uint64, error) {
				res, err := inst.RunStream(cfg)
				g, s := payloads(reg)
				return res, g, s, err
			})
			return r, m
		}},
		{"neo-32k", func() (*Report, Measured) {
			reg := obs.NewRegistry()
			sim.SetDefaultObserver(reg)
			defer sim.SetDefaultObserver(nil)
			inst, err := neo.NewInstance(neo.Params{Elements: 32768})
			if err != nil {
				t.Fatal(err)
			}
			r, err := Analyze(inst.Graph(), sim.PentiumD8300())
			if err != nil {
				t.Fatal(err)
			}
			m := measureApp(t, func(cfg exec.Config) (exec.Result, uint64, uint64, error) {
				res, err := inst.RunStream(cfg)
				g, s := payloads(reg)
				return res, g, s, err
			})
			return r, m
		}},
		{"spas-16k", func() (*Report, Measured) {
			reg := obs.NewRegistry()
			sim.SetDefaultObserver(reg)
			defer sim.SetDefaultObserver(nil)
			inst, err := spas.NewInstance(spas.Params{Rows: 16000, NNZPerRow: 46, Seed: 2})
			if err != nil {
				t.Fatal(err)
			}
			r, err := Analyze(inst.Graph(), sim.PentiumD8300())
			if err != nil {
				t.Fatal(err)
			}
			m := measureApp(t, func(cfg exec.Config) (exec.Result, uint64, uint64, error) {
				res, err := inst.RunStream(cfg)
				g, s := payloads(reg)
				return res, g, s, err
			})
			return r, m
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rep, m := c.run()
			cal := rep.Calibrate(m)
			var buf bytes.Buffer
			cal.Render(&buf)
			t.Logf("%s:\n%s", c.name, buf.String())
			if cal.GatherPayloadRatio != 1 || cal.ScatterPayloadRatio != 1 {
				t.Errorf("payload prediction not exact: gather %.6f scatter %.6f",
					cal.GatherPayloadRatio, cal.ScatterPayloadRatio)
			}
			if !cal.BoundAgree {
				t.Errorf("bound disagrees: %v", cal.Notes)
			}
			// Fetch amplification is allowed below 1 — the estimate
			// credits cache reuse for indexed gathers (one fetched line
			// serving several touches: spas reads x repeatedly, fem
			// multi-gathers shared nodes) — but must stay inside the
			// band observed across the bundled apps. Measured 2026-08:
			// gather 0.76–1.69, scatter 1.00–1.20. Widening this band
			// means the traffic model drifted; investigate before
			// relaxing it.
			if cal.GatherAmplification < 0.5 || cal.GatherAmplification > 4 {
				t.Errorf("gather fetch amplification %.3f outside tracked [0.5, 4] band", cal.GatherAmplification)
			}
			if cal.ScatterAmplification < 0.9 || cal.ScatterAmplification > 4 {
				t.Errorf("scatter fetch amplification %.3f outside tracked [0.9, 4] band", cal.ScatterAmplification)
			}
		})
	}
}

func TestCalibrationRender(t *testing.T) {
	r := &Report{EstMemCycles: 100, EstCompCycles: 50,
		PayloadGatherBytes: 1000, PayloadScatterBytes: 500, GatherBytes: 2000, ScatterBytes: 500}
	m := Measured{GatherBytes: 1000, ScatterBytes: 500,
		PathGather: 60, PathKernel: 30, PathScatter: 20, PathWait: 10, PathLength: 120}
	cal := r.Calibrate(m)
	if !cal.BoundAgree || cal.PredictedBound != "memory" {
		t.Fatalf("calibration %+v", cal)
	}
	var buf bytes.Buffer
	cal.Render(&buf)
	for _, want := range []string{"memory-bound", "[AGREE]", "payload ratio", "wait fraction"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("render missing %q:\n%s", want, buf.String())
		}
	}
}
