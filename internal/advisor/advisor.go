// Package advisor implements the application-suitability analysis of
// §V-A: given a stream program's SDF graph and a machine configuration,
// it estimates the traffic and computation of one pass, checks the
// paper's list of characteristics that make an application "a good
// candidate for streaming on general purpose architectures" — memory
// bottlenecks, element counts much bigger than the cache, huge records,
// producer-consumer locality — and predicts whether the stream version
// will pay off before anything is executed.
//
// The estimates are static and deliberately simple (they use the same
// machine parameters the simulator does); the tests validate them
// against measured runs of the bundled applications.
package advisor

import (
	"fmt"
	"io"
	"strings"

	"streamgpp/internal/sdf"
	"streamgpp/internal/sim"
	"streamgpp/internal/svm"
)

// Verdict is the advisor's conclusion.
type Verdict int

// Verdicts, from promising to hopeless.
const (
	Favorable Verdict = iota
	Marginal
	Unfavorable
)

// String returns the verdict name.
func (v Verdict) String() string {
	return [...]string{"favorable", "marginal", "unfavorable"}[v]
}

// Check is one §V-A characteristic.
type Check struct {
	Name   string
	OK     bool
	Detail string
}

// Report is the static analysis of one stream program.
type Report struct {
	Graph  string
	Phases int

	// Traffic estimates for one pass, in bytes.
	GatherBytes    uint64
	ScatterBytes   uint64
	RandomBytes    uint64 // portion moved through indexed access
	SavedWriteback uint64 // producer-consumer streams that never leave the SRF
	WorkingSet     uint64 // distinct array bytes touched

	// Payload traffic for one pass: the useful array-side bytes the
	// bulk operations move, exactly as the runtime counts them
	// (svm.gather.array_bytes / svm.scatter.array_bytes). Unlike the
	// fetch estimates above these carry no line-granularity or RMW
	// amplification, so a measured run must reproduce them exactly —
	// the calibration's ground truth.
	PayloadGatherBytes  uint64
	PayloadScatterBytes uint64

	// Computation estimate for one pass.
	KernelOps int64

	// ArithmeticIntensity is kernel ops per byte of traffic.
	ArithmeticIntensity float64

	// Cycle estimates on the given machine.
	EstMemCycles  float64
	EstCompCycles float64
	EstCycles     float64 // max of the two plus pipeline overhead

	Checks  []Check
	Verdict Verdict
}

// pipelineOverhead accounts for strip ramp-up, dispatch and phase
// barriers on top of the ideal max(memory, compute) overlap.
const pipelineOverhead = 1.18

// Analyze produces the report for a validated graph on the given
// machine.
func Analyze(g *sdf.Graph, cfg sim.Config) (*Report, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	phases, err := g.Phases()
	if err != nil {
		return nil, err
	}

	r := &Report{Graph: g.Name, Phases: len(phases)}
	arrays := map[*svm.Array]bool{}
	recordBytes := 0
	recordCount := 0

	for _, e := range g.Edges {
		n := uint64(e.Stream.N)
		if b := e.Gather; b != nil {
			bytes := gatherFetchBytes(e, cfg)
			r.GatherBytes += bytes
			payload := n * uint64(b.Array.Layout.SelectedBytes(b.Fields))
			if len(b.Multi) > 0 {
				payload *= uint64(len(b.Multi))
			}
			r.PayloadGatherBytes += payload
			if b.Index != nil || len(b.Multi) > 0 {
				r.RandomBytes += bytes
			}
			if !arrays[b.Array] {
				arrays[b.Array] = true
				r.WorkingSet += b.Array.Bytes()
			}
			recordBytes += b.Array.Layout.Stride
			recordCount++
		}
		if b := e.Scatter; b != nil {
			r.PayloadScatterBytes += n * uint64(b.Array.Layout.SelectedBytes(b.Fields))
			bytes := n * uint64(e.Stream.ElemBytes())
			if b.Mode == svm.ModeAdd {
				bytes *= 2 // read-modify-write
				// RMW scatters run temporally; a destination that fits
				// the cache alongside the SRF absorbs the re-reads.
				if a := 2 * b.Array.Bytes(); a < bytes && b.Array.Bytes() < uint64(cfg.L2Bytes)/2 {
					bytes = a + n*svm.IndexElemBytes
				}
				r.RandomBytes += bytes
			}
			if b.Index != nil {
				bytes += n * svm.IndexElemBytes
			}
			r.ScatterBytes += bytes
			if !arrays[b.Array] {
				arrays[b.Array] = true
				r.WorkingSet += b.Array.Bytes()
			}
		}
		if e.Producer != nil && len(e.Consumers) > 0 && e.Scatter == nil {
			r.SavedWriteback += n * uint64(e.Stream.ElemBytes())
		}
	}
	for _, node := range g.Nodes {
		r.KernelOps += node.Kernel.OpsPerElem * int64(node.N)
	}

	total := r.GatherBytes + r.ScatterBytes
	if total > 0 {
		r.ArithmeticIntensity = float64(r.KernelOps) / float64(total)
	}

	// Cycle estimates: the memory thread moves the traffic at the
	// sustained non-temporal bulk rate; the compute thread runs the
	// kernels at the SMT-shared rate.
	rate := cfg.BusBytesPerCycle * cfg.BusEff * cfg.NTSeqLoadFactor
	r.EstMemCycles = float64(total) / rate
	r.EstCompCycles = float64(r.KernelOps) * cfg.CPI / cfg.SMTComputeMemFactor
	m := r.EstMemCycles
	if r.EstCompCycles > m {
		m = r.EstCompCycles
	}
	r.EstCycles = m * pipelineOverhead

	// §V-A checklist.
	l2 := uint64(cfg.L2Bytes)
	memBound := r.EstMemCycles > 0.6*r.EstCompCycles
	r.Checks = append(r.Checks, Check{
		Name: "memory bottleneck", OK: memBound,
		Detail: fmt.Sprintf("est. memory %.0f vs compute %.0f cycles", r.EstMemCycles, r.EstCompCycles),
	})
	big := r.WorkingSet > 2*l2
	r.Checks = append(r.Checks, Check{
		Name: "elements much bigger than the cache", OK: big,
		Detail: fmt.Sprintf("working set %.1f KB vs L2 %d KB", float64(r.WorkingSet)/1024, l2>>10),
	})
	avgRecord := 0
	if recordCount > 0 {
		avgRecord = recordBytes / recordCount
	}
	huge := avgRecord >= 64
	r.Checks = append(r.Checks, Check{
		Name: "huge records", OK: huge,
		Detail: fmt.Sprintf("average gathered record %d B", avgRecord),
	})
	pc := r.SavedWriteback > 0
	r.Checks = append(r.Checks, Check{
		Name: "producer-consumer locality", OK: pc,
		Detail: fmt.Sprintf("%.1f KB of intermediates stay in the SRF", float64(r.SavedWriteback)/1024),
	})

	ok := 0
	for _, c := range r.Checks {
		if c.OK {
			ok++
		}
	}
	switch {
	case memBound && big:
		r.Verdict = Favorable
	case ok >= 2:
		r.Verdict = Marginal
	default:
		r.Verdict = Unfavorable
	}
	return r, nil
}

// gatherFetchBytes estimates the bytes a gather actually pulls over the
// bus: sequential gathers stream every record's stride; indexed ones
// fetch whole lines unless the selection already spans one.
func gatherFetchBytes(e *sdf.Edge, cfg sim.Config) uint64 {
	b := e.Gather
	n := uint64(e.Stream.N)
	sel := b.Array.Layout.SelectedBytes(b.Fields)
	switch {
	case len(b.Multi) > 0:
		// Single-pass multi-gather: assume index locality lets each
		// line be fetched about once per pass over the array, bounded
		// by the useful bytes.
		useful := n * uint64(sel) * uint64(len(b.Multi))
		array := b.Array.Bytes()
		if array < useful {
			return array
		}
		return useful
	case b.Index != nil:
		line := uint64(cfg.L2Line)
		per := uint64(sel)
		if per < line {
			per = line // each random touch fetches a whole line
		}
		fetch := n*per + n*svm.IndexElemBytes // data lines + the index stream
		// When the whole array fits in the non-temporal ways, each of
		// its lines is fetched at most once however dense the indices.
		ntCap := uint64(cfg.L2NTWays) * uint64(cfg.L2Bytes/cfg.L2Ways)
		if a := b.Array.Bytes(); a <= ntCap && fetch > a {
			return a + n*svm.IndexElemBytes
		}
		return fetch
	default:
		// Sequential: the stream walks every record, pulling its
		// stride (selection only trims SRF space, not line fetches
		// when fields share lines).
		stride := uint64(b.Array.Layout.Stride)
		if uint64(sel) < stride && stride > uint64(cfg.L2Line) {
			// Very sparse selection of huge records skips lines.
			s := uint64(sel)
			if s < uint64(cfg.L2Line) {
				s = uint64(cfg.L2Line)
			}
			return n * s
		}
		return n * stride
	}
}

// Render writes the report as text.
func (r *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "advisor report for %s (%d phase(s))\n", r.Graph, r.Phases)
	fmt.Fprintf(w, "  traffic: %.1f KB gathered + %.1f KB scattered (%.1f KB via indexed access)\n",
		float64(r.GatherBytes)/1024, float64(r.ScatterBytes)/1024, float64(r.RandomBytes)/1024)
	fmt.Fprintf(w, "  producer-consumer savings: %.1f KB; working set %.1f KB\n",
		float64(r.SavedWriteback)/1024, float64(r.WorkingSet)/1024)
	fmt.Fprintf(w, "  kernels: %d ops (arithmetic intensity %.2f ops/B)\n", r.KernelOps, r.ArithmeticIntensity)
	fmt.Fprintf(w, "  estimate: memory %.0f cycles, compute %.0f cycles -> ~%.0f cycles streamed\n",
		r.EstMemCycles, r.EstCompCycles, r.EstCycles)
	for _, c := range r.Checks {
		mark := "✗"
		if c.OK {
			mark = "✓"
		}
		fmt.Fprintf(w, "  %s %-38s %s\n", mark, c.Name, c.Detail)
	}
	fmt.Fprintf(w, "  verdict: %s\n", strings.ToUpper(r.Verdict.String()))
}
