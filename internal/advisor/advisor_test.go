package advisor

import (
	"bytes"
	"strings"
	"testing"

	"streamgpp/internal/apps/fem"
	"streamgpp/internal/apps/neo"
	"streamgpp/internal/apps/spas"
	"streamgpp/internal/exec"
	"streamgpp/internal/sim"
)

func TestVerdictString(t *testing.T) {
	if Favorable.String() != "favorable" || Unfavorable.String() != "unfavorable" {
		t.Fatal("verdict names")
	}
}

func TestAnalyzeFEMFavorable(t *testing.T) {
	inst, err := fem.NewInstance(fem.EulerLin)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Analyze(inst.Graph(), sim.PentiumD8300())
	if err != nil {
		t.Fatal(err)
	}
	if r.Phases != 2 {
		t.Fatalf("phases %d", r.Phases)
	}
	if r.Verdict == Unfavorable {
		t.Fatalf("streamFEM judged unfavorable: %+v", r.Checks)
	}
	if r.SavedWriteback == 0 {
		t.Fatal("no producer-consumer savings detected")
	}
	if r.GatherBytes == 0 || r.ScatterBytes == 0 {
		t.Fatal("no traffic estimated")
	}
}

func TestAnalyzeNeoDetectsLocality(t *testing.T) {
	inst, err := neo.NewInstance(neo.Params{Elements: 32768})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Analyze(inst.Graph(), sim.PentiumD8300())
	if err != nil {
		t.Fatal(err)
	}
	// CGT + DG + lnJ: 19 fields × 8 B × elements.
	want := uint64(32768 * 19 * 8)
	if r.SavedWriteback != want {
		t.Fatalf("saved writeback %d, want %d", r.SavedWriteback, want)
	}
	var found bool
	for _, c := range r.Checks {
		if c.Name == "producer-consumer locality" && c.OK {
			found = true
		}
	}
	if !found {
		t.Fatal("locality check not satisfied")
	}
}

func TestAnalyzeSmallSPASNotFavorable(t *testing.T) {
	inst, err := spas.NewInstance(spas.Params{Rows: 2000, NNZPerRow: spas.PaperNNZPerRow, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Analyze(inst.Graph(), sim.PentiumD8300())
	if err != nil {
		t.Fatal(err)
	}
	// x and y fit easily in cache; streamSPAS at this size slowed down
	// in the paper and in our measurement. The advisor must not call it
	// favorable on the cache-size check.
	for _, c := range r.Checks {
		if c.Name == "elements much bigger than the cache" && c.OK {
			// working set = vals (736 KB) + x + y (32 KB): borderline.
			if r.WorkingSet < 2<<20 {
				t.Fatalf("cache check passed with working set %d", r.WorkingSet)
			}
		}
	}
}

// The static cycle estimate must land within a factor of two of the
// measured stream execution for the bundled applications.
func TestEstimateWithinFactorOfMeasured(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	type tc struct {
		name     string
		measured func() (uint64, *Report)
	}
	cases := []tc{
		{"fem-euler-lin", func() (uint64, *Report) {
			p := fem.EulerLin
			p.Steps = 1
			inst, _ := fem.NewInstance(p)
			r, _ := Analyze(inst.Graph(), sim.PentiumD8300())
			res, err := inst.RunStream(exec.Defaults())
			if err != nil {
				t.Fatal(err)
			}
			return res.Cycles, r
		}},
		{"neo-32k", func() (uint64, *Report) {
			inst, _ := neo.NewInstance(neo.Params{Elements: 32768})
			r, _ := Analyze(inst.Graph(), sim.PentiumD8300())
			res, err := inst.RunStream(exec.Defaults())
			if err != nil {
				t.Fatal(err)
			}
			return res.Cycles, r
		}},
		{"spas-16k", func() (uint64, *Report) {
			inst, _ := spas.NewInstance(spas.Params{Rows: 16000, NNZPerRow: 46, Seed: 2})
			r, _ := Analyze(inst.Graph(), sim.PentiumD8300())
			res, err := inst.RunStream(exec.Defaults())
			if err != nil {
				t.Fatal(err)
			}
			return res.Cycles, r
		}},
	}
	for _, c := range cases {
		measured, rep := c.measured()
		ratio := rep.EstCycles / float64(measured)
		t.Logf("%s: est %.0f vs measured %d (ratio %.2f)", c.name, rep.EstCycles, measured, ratio)
		if ratio < 0.5 || ratio > 2.0 {
			t.Errorf("%s: estimate off by more than 2x (ratio %.2f)", c.name, ratio)
		}
	}
}

func TestRender(t *testing.T) {
	inst, err := fem.NewInstance(fem.EulerLin)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Analyze(inst.Graph(), sim.PentiumD8300())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	out := buf.String()
	for _, want := range []string{"advisor report", "traffic:", "verdict:", "producer-consumer"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestAnalyzeRejectsInvalidGraph(t *testing.T) {
	inst, err := fem.NewInstance(fem.EulerLin)
	if err != nil {
		t.Fatal(err)
	}
	g := inst.Graph()
	// Break it: a graph with no kernels.
	g.Nodes = nil
	if _, err := Analyze(g, sim.PentiumD8300()); err == nil {
		t.Fatal("invalid graph accepted")
	}
}
