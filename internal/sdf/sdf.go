// Package sdf represents stream programs as Synchronous Data Flow
// graphs (§II-A, Fig. 3): kernel nodes connected by stream edges, with
// inputs gathered from arrays and outputs scattered back to arrays.
// The stream compiler (internal/compiler) lowers a validated graph to
// a software-pipelined task schedule.
package sdf

import (
	"fmt"
	"strings"

	"streamgpp/internal/svm"
)

// Binding ties a stream edge to an array: which fields move, and
// through which index array (nil for sequential access). For outputs,
// Mode selects overwrite or accumulate.
type Binding struct {
	Array  *svm.Array
	Fields []int
	Index  *svm.IndexArray
	// Multi selects a multi-index gather (svm.GatherMulti): the stream
	// carries len(Fields)×len(Multi) fields per element, one field set
	// per index array. Mutually exclusive with Index; gathers only.
	Multi []*svm.IndexArray
	Mode  svm.ScatterMode
}

// Bind is a convenience constructor for a sequential binding over the
// named fields (all fields when none are given).
func Bind(a *svm.Array, fields ...string) Binding {
	var idx []int
	if len(fields) == 0 {
		idx = a.Layout.AllFields()
	} else {
		idx = a.Layout.Select(fields...)
	}
	return Binding{Array: a, Fields: idx}
}

// Indexed returns a copy of the binding driven by the given index
// array (a random gather/scatter).
func (b Binding) Indexed(idx *svm.IndexArray) Binding {
	b.Index = idx
	return b
}

// MultiIndexed returns a copy of the binding performing a single-pass
// multi-index gather (one field set per index array per element).
func (b Binding) MultiIndexed(idxs ...*svm.IndexArray) Binding {
	b.Multi = append([]*svm.IndexArray(nil), idxs...)
	return b
}

// Accumulate returns a copy of the binding that scatter-adds.
func (b Binding) Accumulate() Binding {
	b.Mode = svm.ModeAdd
	return b
}

// Edge is a stream edge of the graph. Exactly one of Producer/Gather is
// set: edges either come from a kernel or are gathered from an array.
// Scatter, when set, sends the edge's data back to an array.
type Edge struct {
	ID        int
	Stream    *svm.Stream
	Producer  *Node
	Consumers []*Node
	Gather    *Binding
	Scatter   *Binding
}

// Name returns the underlying stream's name.
func (e *Edge) Name() string { return e.Stream.Name }

// Node is a kernel node.
type Node struct {
	ID     int
	Kernel *svm.Kernel
	N      int // iteration count = length of all attached streams
	Ins    []*Edge
	Outs   []*Edge
}

// Name returns the kernel's name.
func (n *Node) Name() string { return n.Kernel.Name }

// Graph is a stream program.
type Graph struct {
	Name  string
	Nodes []*Node
	Edges []*Edge

	// defect records the first construction error. The builder methods
	// (Input/AddKernel/Output) do not panic on misuse; they record the
	// defect, keep returning usable placeholders so chained building
	// code runs to completion, and Validate surfaces the error before
	// the graph can compile.
	defect error
}

// fail records the first construction defect.
func (g *Graph) fail(format string, args ...interface{}) {
	if g.defect == nil {
		g.defect = fmt.Errorf(format, args...)
	}
}

// New returns an empty graph.
func New(name string) *Graph { return &Graph{Name: name} }

// Input adds an edge gathered from an array. The stream's length fixes
// the iteration count of its consumers.
func (g *Graph) Input(s *svm.Stream, b Binding) *Edge {
	if b.Array == nil {
		g.fail("sdf: input %s has no array binding", s.Name)
	}
	if len(b.Multi) > 0 {
		if b.Index != nil {
			g.fail("sdf: input %s has both Index and Multi", s.Name)
		}
		if len(b.Fields)*len(b.Multi) != s.NumFields() {
			panic(fmt.Sprintf("sdf: input %s binds %d×%d fields to a %d-field stream",
				s.Name, len(b.Fields), len(b.Multi), s.NumFields()))
		}
		for _, ix := range b.Multi {
			if ix.Len() < s.N {
				g.fail("sdf: input %s needs %d indices, index array %s has %d", s.Name, s.N, ix.Name, ix.Len())
			}
		}
		bc := b
		e := &Edge{ID: len(g.Edges), Stream: s, Gather: &bc}
		g.Edges = append(g.Edges, e)
		return e
	}
	if len(b.Fields) != s.NumFields() {
		g.fail("sdf: input %s binds %d fields to a %d-field stream", s.Name, len(b.Fields), s.NumFields())
	}
	if b.Index == nil && s.N > b.Array.N {
		g.fail("sdf: sequential input %s (%d elements) overruns array %s (%d records)", s.Name, s.N, b.Array.Name, b.Array.N)
	}
	if b.Index != nil && b.Index.Len() < s.N {
		g.fail("sdf: input %s needs %d indices, index array %s has %d", s.Name, s.N, b.Index.Name, b.Index.Len())
	}
	bc := b
	e := &Edge{ID: len(g.Edges), Stream: s, Gather: &bc}
	g.Edges = append(g.Edges, e)
	return e
}

// AddKernel adds a kernel node consuming ins and producing a fresh edge
// for each stream in outs. All attached streams must have equal length.
func (g *Graph) AddKernel(k *svm.Kernel, ins []*Edge, outs []*svm.Stream) []*Edge {
	if len(ins) == 0 && len(outs) == 0 {
		g.fail("sdf: kernel %s attached to no streams", k.Name)
	}
	n := -1
	pick := func(l int, what string) {
		if n < 0 {
			n = l
		} else if l != n {
			g.fail("sdf: kernel %s: %s length %d != %d", k.Name, what, l, n)
		}
	}
	for _, e := range ins {
		pick(e.Stream.N, "input "+e.Name())
	}
	for _, s := range outs {
		pick(s.N, "output "+s.Name)
	}
	node := &Node{ID: len(g.Nodes), Kernel: k, N: n, Ins: ins}
	g.Nodes = append(g.Nodes, node)
	for _, e := range ins {
		e.Consumers = append(e.Consumers, node)
	}
	var produced []*Edge
	for _, s := range outs {
		e := &Edge{ID: len(g.Edges), Stream: s, Producer: node}
		g.Edges = append(g.Edges, e)
		node.Outs = append(node.Outs, e)
		produced = append(produced, e)
	}
	return produced
}

// Output scatters the edge back to an array.
func (g *Graph) Output(e *Edge, b Binding) {
	if b.Array == nil {
		g.fail("sdf: output %s has no array binding", e.Name())
	}
	if len(b.Fields) != e.Stream.NumFields() {
		g.fail("sdf: output %s binds %d fields to a %d-field stream", e.Name(), len(b.Fields), e.Stream.NumFields())
	}
	if b.Index == nil && e.Stream.N > b.Array.N {
		g.fail("sdf: sequential output %s (%d elements) overruns array %s (%d records)", e.Name(), e.Stream.N, b.Array.Name, b.Array.N)
	}
	if b.Index != nil && b.Index.Len() < e.Stream.N {
		g.fail("sdf: output %s needs %d indices, index array %s has %d", e.Name(), e.Stream.N, b.Index.Name, b.Index.Len())
	}
	bc := b
	e.Scatter = &bc
}

// Validate checks structural well-formedness: every edge is produced
// exactly one way, consumed or scattered, and the graph is acyclic. A
// construction defect recorded by the builder methods is reported
// first.
func (g *Graph) Validate() error {
	if g.defect != nil {
		return g.defect
	}
	if len(g.Nodes) == 0 {
		return fmt.Errorf("sdf: graph %s has no kernels", g.Name)
	}
	for _, e := range g.Edges {
		switch {
		case e.Producer == nil && e.Gather == nil:
			return fmt.Errorf("sdf: edge %s has neither producer nor gather", e.Name())
		case e.Producer != nil && e.Gather != nil:
			return fmt.Errorf("sdf: edge %s has both producer and gather", e.Name())
		case len(e.Consumers) == 0 && e.Scatter == nil:
			return fmt.Errorf("sdf: edge %s is never consumed nor scattered (dead stream)", e.Name())
		case e.Gather != nil && e.Scatter != nil && len(e.Consumers) == 0:
			return fmt.Errorf("sdf: edge %s is a kernel-less array copy — it belongs to no phase; route it through a kernel", e.Name())
		}
	}
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// TopoOrder returns the kernels in a topological order of the direct
// (kernel-to-kernel) stream edges, or an error if there is a cycle.
func (g *Graph) TopoOrder() ([]*Node, error) {
	indeg := make([]int, len(g.Nodes))
	succ := make([][]*Node, len(g.Nodes))
	for _, e := range g.Edges {
		if e.Producer == nil {
			continue
		}
		for _, c := range e.Consumers {
			succ[e.Producer.ID] = append(succ[e.Producer.ID], c)
			indeg[c.ID]++
		}
	}
	var queue, order []*Node
	for _, n := range g.Nodes {
		if indeg[n.ID] == 0 {
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		order = append(order, n)
		for _, s := range succ[n.ID] {
			if indeg[s.ID]--; indeg[s.ID] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(order) != len(g.Nodes) {
		return nil, fmt.Errorf("sdf: graph %s has a cycle among its kernels", g.Name)
	}
	return order, nil
}

// ProducerConsumerEdges returns the direct kernel-to-kernel edges —
// the producer-consumer locality the paper exploits (those streams are
// never written back to memory).
func (g *Graph) ProducerConsumerEdges() []*Edge {
	var out []*Edge
	for _, e := range g.Edges {
		if e.Producer != nil && len(e.Consumers) > 0 {
			out = append(out, e)
		}
	}
	return out
}

// SavedWritebackBytes estimates the DRAM traffic avoided by
// producer-consumer locality: bytes of intermediate streams that never
// leave the SRF (e.g. neo-hookean's ~144 bytes per element).
func (g *Graph) SavedWritebackBytes() uint64 {
	var total uint64
	for _, e := range g.ProducerConsumerEdges() {
		if e.Scatter == nil {
			total += uint64(e.Stream.N * e.Stream.ElemBytes())
		}
	}
	return total
}

// String renders a compact description of the graph.
func (g *Graph) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "sdf %s: %d kernels, %d edges\n", g.Name, len(g.Nodes), len(g.Edges))
	for _, n := range g.Nodes {
		ins := make([]string, len(n.Ins))
		for i, e := range n.Ins {
			ins[i] = e.Name()
		}
		outs := make([]string, len(n.Outs))
		for i, e := range n.Outs {
			outs[i] = e.Name()
		}
		fmt.Fprintf(&sb, "  %s[%d]: (%s) -> (%s)\n", n.Name(), n.N, strings.Join(ins, ", "), strings.Join(outs, ", "))
	}
	return sb.String()
}

// Dot renders the graph in Graphviz DOT form (kernels as boxes, arrays
// as cylinders, streams as arrows), mirroring the paper's Fig. 3/10
// diagrams.
func (g *Graph) Dot() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  rankdir=TB;\n", g.Name)
	arrays := map[*svm.Array]bool{}
	arrayNode := func(a *svm.Array) string {
		if !arrays[a] {
			fmt.Fprintf(&sb, "  %q [shape=cylinder];\n", "arr_"+a.Name)
			arrays[a] = true
		}
		return "arr_" + a.Name
	}
	for _, n := range g.Nodes {
		fmt.Fprintf(&sb, "  %q [shape=box,label=\"%s\\nN=%d\"];\n", "k_"+n.Name(), n.Name(), n.N)
	}
	for _, e := range g.Edges {
		label := e.Name()
		if e.Gather != nil {
			src := arrayNode(e.Gather.Array)
			style := ""
			if e.Gather.Index != nil {
				style = ",style=dashed" // dashed = indexed (random) access
			}
			for _, c := range e.Consumers {
				fmt.Fprintf(&sb, "  %q -> %q [label=%q%s];\n", src, "k_"+c.Name(), label, style)
			}
		}
		if e.Producer != nil {
			for _, c := range e.Consumers {
				fmt.Fprintf(&sb, "  %q -> %q [label=%q,penwidth=2];\n", "k_"+e.Producer.Name(), "k_"+c.Name(), label)
			}
		}
		if e.Scatter != nil {
			dst := arrayNode(e.Scatter.Array)
			from := dst
			if e.Producer != nil {
				from = "k_" + e.Producer.Name()
			}
			style := ""
			if e.Scatter.Index != nil {
				style = ",style=dashed"
			}
			if e.Scatter.Mode == svm.ModeAdd {
				style += ",color=red" // red = scatter-add
			}
			fmt.Fprintf(&sb, "  %q -> %q [label=%q%s];\n", from, dst, label, style)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
