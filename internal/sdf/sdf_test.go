package sdf

import (
	"strings"
	"testing"

	"streamgpp/internal/sim"
	"streamgpp/internal/svm"
)

func testMachine() *sim.Machine { return sim.MustNew(sim.PentiumD8300()) }

func addKernel(name string, nin, nout int) *svm.Kernel {
	return &svm.Kernel{
		Name:       name,
		OpsPerElem: 10,
		Fn: func(ins, outs []*svm.Stream, start, n int) int64 {
			for i := start; i < start+n; i++ {
				var sum float64
				for _, s := range ins {
					sum += s.At(i, 0)
				}
				for _, o := range outs {
					o.Set(i, 0, sum)
				}
			}
			return 0
		},
	}
}

// buildFig2 reconstructs the paper's Fig. 2/3 example: kernel1 consumes
// as, bs, cs producing ds; kernel2 consumes ds and xs producing ys,
// scattered through index5.
func buildFig2(m *sim.Machine, n int) (*Graph, *svm.Array, *svm.Array, *svm.Array, *svm.Array, *svm.Array, *svm.IndexArray) {
	l := svm.Layout("rec", svm.F("v", 8))
	a := svm.NewArray(m, "a", l, n)
	b := svm.NewArray(m, "b", l, n)
	c := svm.NewArray(m, "c", l, n)
	x := svm.NewArray(m, "x", l, n)
	y := svm.NewArray(m, "y", l, n)
	idx5 := svm.NewIndexArray(m, "index5", n)
	for i := range idx5.Idx {
		idx5.Idx[i] = int32((i * 7) % n)
	}

	g := New("fig2")
	as := g.Input(svm.StreamOf("as", n, l, l.AllFields()), Bind(a))
	bs := g.Input(svm.StreamOf("bs", n, l, l.AllFields()), Bind(b))
	cs := g.Input(svm.StreamOf("cs", n, l, l.AllFields()), Bind(c))
	ds := g.AddKernel(addKernel("kernel1", 3, 1), []*Edge{as, bs, cs}, []*svm.Stream{svm.NewStream("ds", n, svm.F("v", 8))})
	xs := g.Input(svm.StreamOf("xs", n, l, l.AllFields()), Bind(x))
	ys := g.AddKernel(addKernel("kernel2", 2, 1), []*Edge{ds[0], xs}, []*svm.Stream{svm.NewStream("ys", n, svm.F("v", 8))})
	g.Output(ys[0], Bind(y).Indexed(idx5))
	return g, a, b, c, x, y, idx5
}

func TestFig2GraphValidates(t *testing.T) {
	m := testMachine()
	g, _, _, _, _, _, _ := buildFig2(m, 100)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0].Name() != "kernel1" || order[1].Name() != "kernel2" {
		t.Fatalf("topo order %v", order)
	}
}

func TestFig2ProducerConsumerLocality(t *testing.T) {
	m := testMachine()
	g, _, _, _, _, _, _ := buildFig2(m, 100)
	pc := g.ProducerConsumerEdges()
	if len(pc) != 1 || pc[0].Name() != "ds" {
		t.Fatalf("producer-consumer edges %v", pc)
	}
	// ds is 8 bytes × 100 elements never written back.
	if got := g.SavedWritebackBytes(); got != 800 {
		t.Fatalf("saved writeback %d, want 800", got)
	}
}

func TestFig2SinglePhase(t *testing.T) {
	m := testMachine()
	g, _, _, _, _, _, _ := buildFig2(m, 100)
	phases, err := g.Phases()
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 1 {
		t.Fatalf("want 1 phase, got %d", len(phases))
	}
	p := phases[0]
	if len(p.Nodes) != 2 || p.N != 100 {
		t.Fatalf("phase %+v", p)
	}
	if len(p.Ins) != 4 || len(p.Outs) != 1 {
		t.Fatalf("phase ins=%d outs=%d", len(p.Ins), len(p.Outs))
	}
	if len(p.Edges()) != 6 {
		t.Fatalf("phase edges %d, want 6", len(p.Edges()))
	}
	if p.Strips(30) != 4 {
		t.Fatalf("Strips(30)=%d", p.Strips(30))
	}
}

func TestArrayMediatedPhases(t *testing.T) {
	m := testMachine()
	l := svm.Layout("rec", svm.F("v", 8))
	a := svm.NewArray(m, "a", l, 100)
	mid := svm.NewArray(m, "mid", l, 100)
	out := svm.NewArray(m, "out", l, 50)
	idx := svm.NewIndexArray(m, "idx", 50)
	for i := range idx.Idx {
		idx.Idx[i] = int32(i * 2)
	}

	g := New("twophase")
	as := g.Input(svm.StreamOf("as", 100, l, l.AllFields()), Bind(a))
	k1out := g.AddKernel(addKernel("k1", 1, 1), []*Edge{as}, []*svm.Stream{svm.NewStream("m1", 100, svm.F("v", 8))})
	g.Output(k1out[0], Bind(mid))

	// Second phase gathers from mid with an index: different length, so
	// it must be a separate phase that waits for the scatter.
	ms := g.Input(svm.StreamOf("ms", 50, l, l.AllFields()), Bind(mid).Indexed(idx))
	k2out := g.AddKernel(addKernel("k2", 1, 1), []*Edge{ms}, []*svm.Stream{svm.NewStream("m2", 50, svm.F("v", 8))})
	g.Output(k2out[0], Bind(out))

	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	phases, err := g.Phases()
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 2 {
		t.Fatalf("want 2 phases, got %d", len(phases))
	}
	if phases[0].Nodes[0].Name() != "k1" || phases[1].Nodes[0].Name() != "k2" {
		t.Fatalf("phase order wrong: %s then %s", phases[0].Nodes[0].Name(), phases[1].Nodes[0].Name())
	}
}

func TestPhaseOrderIsProgramOrder(t *testing.T) {
	// A phase constructed before a later writer of the same array reads
	// the array's pre-existing contents — imperative program order, the
	// semantics iterative solvers rely on (read state, then overwrite
	// it for the next step).
	m := testMachine()
	l := svm.Layout("rec", svm.F("v", 8))
	state := svm.NewArray(m, "state", l, 64)

	g := New("step")
	// Phase 0 reads the state.
	ms := g.Input(svm.StreamOf("ms", 64, l, l.AllFields()), Bind(state))
	sink := g.AddKernel(addKernel("read", 1, 1), []*Edge{ms}, []*svm.Stream{svm.NewStream("s2", 64, svm.F("v", 8))})
	g.Output(sink[0], Bind(svm.NewArray(m, "out", l, 64)))

	// Phase 1 overwrites the state for the next step (different
	// iteration count keeps it a separate phase).
	src := svm.NewArray(m, "src", l, 32)
	ss := g.Input(svm.StreamOf("ss", 32, l, l.AllFields()), Bind(src))
	prod := g.AddKernel(addKernel("write", 1, 1), []*Edge{ss}, []*svm.Stream{svm.NewStream("s1", 32, svm.F("v", 8))})
	idx := svm.NewIndexArray(m, "sidx", 32)
	for i := range idx.Idx {
		idx.Idx[i] = int32(i)
	}
	g.Output(prod[0], Bind(state).Indexed(idx))

	phases, err := g.Phases()
	if err != nil {
		t.Fatal(err)
	}
	if phases[0].Nodes[0].Name() != "read" || phases[1].Nodes[0].Name() != "write" {
		t.Fatalf("phase order must follow construction: got %s then %s",
			phases[0].Nodes[0].Name(), phases[1].Nodes[0].Name())
	}
}

func TestValidateRejectsDeadStream(t *testing.T) {
	m := testMachine()
	l := svm.Layout("rec", svm.F("v", 8))
	a := svm.NewArray(m, "a", l, 10)
	g := New("dead")
	as := g.Input(svm.StreamOf("as", 10, l, l.AllFields()), Bind(a))
	dead := svm.NewStream("dead", 10, svm.F("v", 8))
	g.AddKernel(addKernel("k", 1, 1), []*Edge{as}, []*svm.Stream{dead})
	if err := g.Validate(); err == nil {
		t.Fatal("dead stream accepted")
	}
}

func TestValidateRejectsEmptyGraph(t *testing.T) {
	if err := New("empty").Validate(); err == nil {
		t.Fatal("empty graph accepted")
	}
}

func TestKernelLengthMismatchRejected(t *testing.T) {
	m := testMachine()
	l := svm.Layout("rec", svm.F("v", 8))
	a := svm.NewArray(m, "a", l, 10)
	g := New("mismatch")
	as := g.Input(svm.StreamOf("as", 10, l, l.AllFields()), Bind(a))
	g.AddKernel(addKernel("k", 1, 1), []*Edge{as}, []*svm.Stream{svm.NewStream("o", 20, svm.F("v", 8))})
	if err := g.Validate(); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestInputValidation(t *testing.T) {
	m := testMachine()
	l := svm.Layout("rec", svm.F("a", 8), svm.F("b", 8))
	arr := svm.NewArray(m, "arr", l, 10)
	idx := svm.NewIndexArray(m, "i", 5)
	// Each misuse leaves a sticky defect that Validate reports.
	for _, tc := range []struct {
		name  string
		build func(g *Graph)
	}{
		{"field count mismatch", func(g *Graph) {
			g.Input(svm.NewStream("s", 10, svm.F("x", 8)), Bind(arr))
		}},
		{"sequential overrun", func(g *Graph) {
			g.Input(svm.StreamOf("s", 11, l, l.AllFields()), Bind(arr))
		}},
		{"short index", func(g *Graph) {
			g.Input(svm.StreamOf("s", 10, l, l.AllFields()), Bind(arr).Indexed(idx))
		}},
	} {
		g := New("v")
		tc.build(g)
		if err := g.Validate(); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}

func TestStringAndDot(t *testing.T) {
	m := testMachine()
	g, _, _, _, _, _, _ := buildFig2(m, 100)
	s := g.String()
	for _, want := range []string{"kernel1", "kernel2", "ds"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String missing %q:\n%s", want, s)
		}
	}
	dot := g.Dot()
	for _, want := range []string{"digraph", "k_kernel1", "arr_y", "style=dashed", "shape=cylinder"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("Dot missing %q:\n%s", want, dot)
		}
	}
}

func TestBindHelpers(t *testing.T) {
	m := testMachine()
	l := svm.Layout("rec", svm.F("a", 8), svm.F("b", 8))
	arr := svm.NewArray(m, "arr", l, 10)
	b := Bind(arr, "b")
	if len(b.Fields) != 1 || b.Fields[0] != 1 {
		t.Fatalf("Bind fields %v", b.Fields)
	}
	idx := svm.NewIndexArray(m, "i", 10)
	bi := b.Indexed(idx)
	if bi.Index != idx || b.Index != nil {
		t.Fatal("Indexed must copy")
	}
	ba := b.Accumulate()
	if ba.Mode != svm.ModeAdd || b.Mode != svm.ModeStore {
		t.Fatal("Accumulate must copy")
	}
}
