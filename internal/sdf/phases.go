package sdf

import "fmt"

// Phase is a maximal group of kernels connected by direct streams. All
// kernels of a phase share one iteration count, so the compiler can
// strip-mine and software-pipeline the whole phase together. Data that
// crosses between phases travels through arrays (a scatter followed by
// a gather), which forces a barrier: an indexed gather may read any
// record, so every producing scatter must have completed.
type Phase struct {
	Index int
	Nodes []*Node // in topological order
	N     int     // common iteration count
	Ins   []*Edge // gathered inputs (in edge order)
	Outs  []*Edge // scattered outputs (in edge order)
}

// Phases partitions the graph into phases. Phases execute in program
// (construction) order: a gather reads whatever the arrays contain when
// its phase runs, so a phase constructed before a writer of the same
// array sees the pre-existing values — exactly like the imperative
// stream code of Fig. 2, and what an iterative solver needs (this
// step's face phase reads the state; this step's cell phase writes it
// for the next step). The scheduler places a barrier between
// consecutive phases, so program order is also execution order.
func (g *Graph) Phases() ([]*Phase, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}

	// Union nodes connected by direct edges.
	parent := make([]int, len(g.Nodes))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	for _, e := range g.Edges {
		if e.Producer == nil {
			continue
		}
		for _, c := range e.Consumers {
			union(e.Producer.ID, c.ID)
		}
	}

	// Group, preserving the global topological order within each phase.
	groups := map[int]*Phase{}
	var phases []*Phase
	for _, n := range order {
		root := find(n.ID)
		p, ok := groups[root]
		if !ok {
			p = &Phase{N: n.N}
			groups[root] = p
			phases = append(phases, p)
		}
		if n.N != p.N {
			return nil, fmt.Errorf("sdf: phase mixing iteration counts %d and %d (kernel %s)", p.N, n.N, n.Name())
		}
		p.Nodes = append(p.Nodes, n)
	}

	// Attach gathered inputs and scattered outputs.
	phaseOf := func(n *Node) *Phase { return groups[find(n.ID)] }
	for _, e := range g.Edges {
		if e.Gather != nil {
			seen := map[*Phase]bool{}
			for _, c := range e.Consumers {
				if p := phaseOf(c); !seen[p] {
					seen[p] = true
					p.Ins = append(p.Ins, e)
				}
			}
		}
		if e.Scatter != nil {
			var p *Phase
			if e.Producer != nil {
				p = phaseOf(e.Producer)
			} else if len(e.Consumers) > 0 {
				p = phaseOf(e.Consumers[0])
			}
			if p != nil {
				p.Outs = append(p.Outs, e)
			}
		}
	}

	for i, p := range phases {
		p.Index = i
	}
	return phases, nil
}

// Strips returns the number of strips of size stripElems covering the
// phase.
func (p *Phase) Strips(stripElems int) int {
	return (p.N + stripElems - 1) / stripElems
}

// Edges returns every edge touching the phase (gathered inputs, direct
// streams, scattered outputs), deduplicated, in a stable order.
func (p *Phase) Edges() []*Edge {
	seen := map[*Edge]bool{}
	var out []*Edge
	add := func(e *Edge) {
		if !seen[e] {
			seen[e] = true
			out = append(out, e)
		}
	}
	for _, e := range p.Ins {
		add(e)
	}
	for _, n := range p.Nodes {
		for _, e := range n.Ins {
			add(e)
		}
		for _, e := range n.Outs {
			add(e)
		}
	}
	for _, e := range p.Outs {
		add(e)
	}
	return out
}
