package bench

import (
	"fmt"
	"io"

	"streamgpp/internal/apps/cdp"
	"streamgpp/internal/apps/fem"
	"streamgpp/internal/apps/micro"
	"streamgpp/internal/apps/neo"
	"streamgpp/internal/apps/spas"
	"streamgpp/internal/exec"
)

// Fig9 reproduces the micro-benchmark speedup curves: LD-ST-COMP,
// GAT-SCAT-COMP and PROD-CON as the per-element computation (COMP)
// grows. COMP=1 ≈ 50 cycles per loaded value.
func Fig9(w io.Writer, quick bool) error {
	comps := []int{0, 1, 2, 4, 8, 16, 32}
	n := 150000
	if quick {
		comps = []int{1, 4, 16}
		n = 60000
	}
	t := Table{
		Title:  "Fig. 9: stream/regular speedup vs COMP",
		Header: []string{"COMP", "LD-ST-COMP", "GAT-SCAT-COMP", "PROD-CON"},
	}
	for _, comp := range comps {
		p := micro.Params{N: n, Comp: comp, Seed: 9}
		ld, err := micro.RunLDST(p, exec.Defaults())
		if err != nil {
			return err
		}
		gs, err := micro.RunGATSCAT(p, exec.Defaults())
		if err != nil {
			return err
		}
		pc, err := micro.RunPRODCON(p, exec.Defaults())
		if err != nil {
			return err
		}
		t.AddRow(fmt.Sprintf("%d", comp),
			fmt.Sprintf("%.2f", ld.Speedup), fmt.Sprintf("%.2f", gs.Speedup), fmt.Sprintf("%.2f", pc.Speedup))
	}
	t.Note("paper: LD-ST-COMP largest at low COMP (max +92%%) decaying to ~1;")
	t.Note("GAT-SCAT rises with COMP then converges (worst case -4%%); PROD-CON above GAT-SCAT throughout.")
	t.Render(w)
	return nil
}

// Fig11a reproduces the streamFEM study: Euler/MHD × linear/quadratic
// on the 4816-cell mesh.
func Fig11a(w io.Writer, quick bool) error {
	steps := 3
	if quick {
		steps = 1
	}
	t := Table{
		Title:  "Fig. 11(a): streamFEM speedups, 4816 cells",
		Header: []string{"config", "record B", "speedup", "regular cyc", "stream cyc"},
	}
	for _, p := range []fem.Params{fem.EulerLin, fem.EulerQuad, fem.MHDLin, fem.MHDQuad} {
		p.Steps = steps
		res, err := fem.Run(p, exec.Defaults())
		if err != nil {
			return err
		}
		t.AddRow(p.Name(), fmt.Sprintf("%d", p.K()*8),
			fmt.Sprintf("%.2f", res.Speedup),
			fmt.Sprintf("%d", res.Regular.Cycles), fmt.Sprintf("%d", res.Stream.Cycles))
	}
	t.Note("paper: 1.13x-1.26x, smaller for the compute-bound quadratic spaces")
	t.Render(w)
	return nil
}

// Fig11b reproduces the streamCDP study: {4n, 6n} × {4096, 8192}.
func Fig11b(w io.Writer, quick bool) error {
	steps := 3
	if quick {
		steps = 1
	}
	t := Table{
		Title:  "Fig. 11(b): streamCDP speedups",
		Header: []string{"config", "speedup", "regular cyc", "stream cyc"},
	}
	for _, p := range []cdp.Params{cdp.Grid4n4096, cdp.Grid4n8192, cdp.Grid6n4096, cdp.Grid6n8192} {
		p.Steps = steps
		res, err := cdp.Run(p, exec.Defaults())
		if err != nil {
			return err
		}
		t.AddRow(p.Name(), fmt.Sprintf("%.2f", res.Speedup),
			fmt.Sprintf("%d", res.Regular.Cycles), fmt.Sprintf("%d", res.Stream.Cycles))
	}
	t.Note("paper: 0.94x-1.27x, improving with neighbours and mesh size")
	t.Render(w)
	return nil
}

// Fig11c reproduces the neo-hookean sweep over element counts.
func Fig11c(w io.Writer, quick bool) error {
	sizes := []int{16384, 32768, 65536, 131072}
	if quick {
		sizes = []int{16384, 32768}
	}
	t := Table{
		Title:  "Fig. 11(c): neo-hookean speedups",
		Header: []string{"elements", "speedup", "saved writeback MB"},
	}
	for _, n := range sizes {
		res, err := neo.Run(neo.Params{Elements: n, Seed: 11}, exec.Defaults())
		if err != nil {
			return err
		}
		t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%.2f", res.Speedup),
			fmt.Sprintf("%.1f", float64(res.SavedBytes)/1e6))
	}
	t.Note("paper: 1.21x-1.23x from producer-consumer locality (elements x 144 B never written back)")
	t.Render(w)
	return nil
}

// Fig11d reproduces the streamSPAS sweep: rows grow with nnz/rows ≈ 46.
func Fig11d(w io.Writer, quick bool) error {
	sizes := []int{2000, 6000, 16000, 48000}
	if quick {
		sizes = []int{2000, 16000}
	}
	t := Table{
		Title:  "Fig. 11(d): streamSPAS speedups (nnz/row = 46)",
		Header: []string{"rows", "nnz", "speedup"},
	}
	for _, rows := range sizes {
		res, err := spas.Run(spas.Params{Rows: rows, NNZPerRow: spas.PaperNNZPerRow, Seed: 13}, exec.Defaults())
		if err != nil {
			return err
		}
		t.AddRow(fmt.Sprintf("%d", rows), fmt.Sprintf("%d", res.NNZ), fmt.Sprintf("%.2f", res.Speedup))
	}
	t.Note("paper: a slowdown for small meshes (the cache serves the regular code) recovering as the matrix outgrows the cache")
	t.Render(w)
	return nil
}
