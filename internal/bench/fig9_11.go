package bench

import (
	"fmt"
	"io"

	"streamgpp/internal/apps/cdp"
	"streamgpp/internal/apps/fem"
	"streamgpp/internal/apps/micro"
	"streamgpp/internal/apps/neo"
	"streamgpp/internal/apps/spas"
)

// Fig9 reproduces the micro-benchmark speedup curves: LD-ST-COMP,
// GAT-SCAT-COMP and PROD-CON as the per-element computation (COMP)
// grows. COMP=1 ≈ 50 cycles per loaded value.
func Fig9(w io.Writer, quick bool) error {
	comps := []int{0, 1, 2, 4, 8, 16, 32}
	n := 150000
	if quick {
		comps = []int{1, 4, 16}
		n = 60000
	}
	t := Table{
		Title:  "Fig. 9: stream/regular speedup vs COMP",
		Header: []string{"COMP", "LD-ST-COMP", "GAT-SCAT-COMP", "PROD-CON"},
	}
	rows, err := parMap(len(comps), func(i int) ([3]float64, error) {
		p := micro.Params{N: n, Comp: comps[i], Seed: 9}
		ecfg := rowExec(fmt.Sprintf("fig9/comp=%d", comps[i]))
		ld, err := micro.RunLDST(p, ecfg)
		if err != nil {
			return [3]float64{}, err
		}
		gs, err := micro.RunGATSCAT(p, ecfg)
		if err != nil {
			return [3]float64{}, err
		}
		pc, err := micro.RunPRODCON(p, ecfg)
		if err != nil {
			return [3]float64{}, err
		}
		return [3]float64{ld.Speedup, gs.Speedup, pc.Speedup}, nil
	})
	if err != nil {
		return err
	}
	for i, r := range rows {
		t.AddRow(fmt.Sprintf("%d", comps[i]),
			fmt.Sprintf("%.2f", r[0]), fmt.Sprintf("%.2f", r[1]), fmt.Sprintf("%.2f", r[2]))
	}
	t.Note("paper: LD-ST-COMP largest at low COMP (max +92%%) decaying to ~1;")
	t.Note("GAT-SCAT rises with COMP then converges (worst case -4%%); PROD-CON above GAT-SCAT throughout.")
	t.Render(w)
	return nil
}

// Fig11a reproduces the streamFEM study: Euler/MHD × linear/quadratic
// on the 4816-cell mesh.
func Fig11a(w io.Writer, quick bool) error {
	steps := 3
	if quick {
		steps = 1
	}
	t := Table{
		Title:  "Fig. 11(a): streamFEM speedups, 4816 cells",
		Header: []string{"config", "record B", "speedup", "regular cyc", "stream cyc"},
	}
	cfgs := []fem.Params{fem.EulerLin, fem.EulerQuad, fem.MHDLin, fem.MHDQuad}
	results, err := parMap(len(cfgs), func(i int) (fem.Result, error) {
		p := cfgs[i]
		p.Steps = steps
		return fem.Run(p, rowExec("fig11a/"+p.Name()))
	})
	if err != nil {
		return err
	}
	for i, res := range results {
		t.AddRow(cfgs[i].Name(), fmt.Sprintf("%d", cfgs[i].K()*8),
			fmt.Sprintf("%.2f", res.Speedup),
			fmt.Sprintf("%d", res.Regular.Cycles), fmt.Sprintf("%d", res.Stream.Cycles))
	}
	t.Note("paper: 1.13x-1.26x, smaller for the compute-bound quadratic spaces")
	t.Render(w)
	return nil
}

// Fig11b reproduces the streamCDP study: {4n, 6n} × {4096, 8192}.
func Fig11b(w io.Writer, quick bool) error {
	steps := 3
	if quick {
		steps = 1
	}
	t := Table{
		Title:  "Fig. 11(b): streamCDP speedups",
		Header: []string{"config", "speedup", "regular cyc", "stream cyc"},
	}
	cfgs := []cdp.Params{cdp.Grid4n4096, cdp.Grid4n8192, cdp.Grid6n4096, cdp.Grid6n8192}
	results, err := parMap(len(cfgs), func(i int) (cdp.Result, error) {
		p := cfgs[i]
		p.Steps = steps
		return cdp.Run(p, rowExec("fig11b/"+p.Name()))
	})
	if err != nil {
		return err
	}
	for i, res := range results {
		t.AddRow(cfgs[i].Name(), fmt.Sprintf("%.2f", res.Speedup),
			fmt.Sprintf("%d", res.Regular.Cycles), fmt.Sprintf("%d", res.Stream.Cycles))
	}
	t.Note("paper: 0.94x-1.27x, improving with neighbours and mesh size")
	t.Render(w)
	return nil
}

// Fig11c reproduces the neo-hookean sweep over element counts.
func Fig11c(w io.Writer, quick bool) error {
	sizes := []int{16384, 32768, 65536, 131072}
	if quick {
		sizes = []int{16384, 32768}
	}
	t := Table{
		Title:  "Fig. 11(c): neo-hookean speedups",
		Header: []string{"elements", "speedup", "saved writeback MB"},
	}
	results, err := parMap(len(sizes), func(i int) (neo.Result, error) {
		return neo.Run(neo.Params{Elements: sizes[i], Seed: 11}, rowExec(fmt.Sprintf("fig11c/elems=%d", sizes[i])))
	})
	if err != nil {
		return err
	}
	for i, res := range results {
		t.AddRow(fmt.Sprintf("%d", sizes[i]), fmt.Sprintf("%.2f", res.Speedup),
			fmt.Sprintf("%.1f", float64(res.SavedBytes)/1e6))
	}
	t.Note("paper: 1.21x-1.23x from producer-consumer locality (elements x 144 B never written back)")
	t.Render(w)
	return nil
}

// Fig11d reproduces the streamSPAS sweep: rows grow with nnz/rows ≈ 46.
func Fig11d(w io.Writer, quick bool) error {
	sizes := []int{2000, 6000, 16000, 48000}
	if quick {
		sizes = []int{2000, 16000}
	}
	t := Table{
		Title:  "Fig. 11(d): streamSPAS speedups (nnz/row = 46)",
		Header: []string{"rows", "nnz", "speedup"},
	}
	results, err := parMap(len(sizes), func(i int) (spas.Result, error) {
		return spas.Run(spas.Params{Rows: sizes[i], NNZPerRow: spas.PaperNNZPerRow, Seed: 13},
			rowExec(fmt.Sprintf("fig11d/rows=%d", sizes[i])))
	})
	if err != nil {
		return err
	}
	for i, res := range results {
		t.AddRow(fmt.Sprintf("%d", sizes[i]), fmt.Sprintf("%d", results[i].NNZ), fmt.Sprintf("%.2f", res.Speedup))
	}
	t.Note("paper: a slowdown for small meshes (the cache serves the regular code) recovering as the matrix outgrows the cache")
	t.Render(w)
	return nil
}
