package bench

import (
	"bytes"
	"testing"

	"streamgpp/internal/sim"
)

// renderAll runs every experiment in quick mode and returns the
// concatenated tables.
func renderAll(t *testing.T, quick bool) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := RunAll(&buf, quick); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// The two orthogonal equivalence claims of the simulator's fast path,
// checked over every experiment end to end:
//
//  1. The bulk fast path must not change a single simulated cycle:
//     every experiment renders byte-identically with it on and off.
//  2. The parallel runner must not change a single output byte:
//     RunAll at high parallelism matches the serial run.
//
// Quick mode keeps the sweep affordable; the per-access differential
// tests in internal/sim and internal/svm cover the full pattern space.
func TestFastPathAndParallelRunsAreByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment three times")
	}
	oldPar := Parallelism
	defer func() {
		Parallelism = oldPar
		sim.SetDefaultFastPath(true)
	}()

	Parallelism = 1
	sim.SetDefaultFastPath(true)
	ref := renderAll(t, true)

	Parallelism = 8
	parallel := renderAll(t, true)
	if !bytes.Equal(ref, parallel) {
		t.Errorf("parallel run differs from serial run:\nserial:\n%s\nparallel:\n%s", ref, parallel)
	}

	sim.SetDefaultFastPath(false)
	slow := renderAll(t, true)
	if !bytes.Equal(ref, slow) {
		t.Errorf("fast path changes results:\nfast:\n%s\nreference:\n%s", ref, slow)
	}
}
