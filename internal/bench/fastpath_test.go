package bench

import (
	"bytes"
	"strings"
	"testing"

	"streamgpp/internal/obs"
	"streamgpp/internal/sim"
)

// renderAll runs every experiment in quick mode and returns the
// concatenated tables.
func renderAll(t *testing.T, quick bool) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := RunAll(&buf, quick); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// The two orthogonal equivalence claims of the simulator's fast path,
// checked over every experiment end to end:
//
//  1. The bulk fast path must not change a single simulated cycle:
//     every experiment renders byte-identically with it on and off.
//  2. The parallel runner must not change a single output byte:
//     RunAll at high parallelism matches the serial run.
//  3. The coverage profiler's bandwidth attribution (bw.* gauges) must
//     also be byte-identical across the modes — the fast path may take
//     different branches, but it must attribute the same traffic —
//     while the coverage split itself legitimately differs, with only
//     its access total mode-invariant.
//
// Quick mode keeps the sweep affordable; the per-access differential
// tests in internal/sim and internal/svm cover the full pattern space.
func TestFastPathAndParallelRunsAreByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment three times")
	}
	oldPar := Parallelism
	defer func() {
		Parallelism = oldPar
		sim.SetDefaultFastPath(true)
		sim.SetDefaultObserver(nil)
	}()

	Parallelism = 1
	sim.SetDefaultFastPath(true)
	regOn := obs.NewRegistry()
	sim.SetDefaultObserver(regOn)
	ref := renderAll(t, true)
	sim.SetDefaultObserver(nil)

	Parallelism = 8
	parallel := renderAll(t, true)
	if !bytes.Equal(ref, parallel) {
		t.Errorf("parallel run differs from serial run:\nserial:\n%s\nparallel:\n%s", ref, parallel)
	}

	Parallelism = 1
	sim.SetDefaultFastPath(false)
	regOff := obs.NewRegistry()
	sim.SetDefaultObserver(regOff)
	slow := renderAll(t, true)
	sim.SetDefaultObserver(nil)
	if !bytes.Equal(ref, slow) {
		t.Errorf("fast path changes results:\nfast:\n%s\nreference:\n%s", ref, slow)
	}

	// Both serial sweeps ran the same experiments in the same order, so
	// their final gauge values must agree wherever the metric is
	// mode-invariant: every bw.* bandwidth gauge exactly, and the
	// coverage access total (fast + slow) even though the split moves.
	on := obs.FlattenSnapshot(regOn.Snapshot())
	off := obs.FlattenSnapshot(regOff.Snapshot())
	bwKeys := 0
	for k, v := range on {
		if !strings.HasPrefix(k, "bw.") {
			continue
		}
		bwKeys++
		if ov, ok := off[k]; !ok || ov != v {
			t.Errorf("bw metric %q diverges across fast-path modes: fast %v, ref %v", k, v, off[k])
		}
	}
	if bwKeys == 0 {
		t.Error("sweep published no bw.* metrics")
	}
	onTotal := on["coverage.fast_accesses"] + on["coverage.slow_accesses"]
	offTotal := off["coverage.fast_accesses"] + off["coverage.slow_accesses"]
	if onTotal == 0 || onTotal != offTotal {
		t.Errorf("coverage access totals diverge: fast %v, ref %v", onTotal, offTotal)
	}
	if on["coverage.fast_accesses"] == 0 {
		t.Error("fast-on sweep reports no fast-path accesses")
	}
	if off["coverage.fast_accesses"] != 0 {
		t.Error("fast-off sweep reports fast-path accesses")
	}
}
