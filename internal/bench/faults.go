package bench

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"streamgpp/internal/exec"
	"streamgpp/internal/fault"
)

// Per-row fault injection for the experiment runners. PR 3's -fault
// mode attached one process-global injector via
// sim.SetDefaultFaultInjector, whose single draw stream made fault
// schedules depend on which goroutine drew first — so streambench had
// to force Parallelism down to 1. Here every table row derives its own
// injector seed from the base seed and the row's stable key
// (fault.DeriveSeed), so the schedule each row sees is a pure function
// of (base seed, row key) and the parallel runner stays deterministic
// and replayable.

var (
	faultMu   sync.Mutex
	faultCfg  *fault.Config
	faultRows map[string]*fault.Injector
)

// SetFaultConfig arms per-row fault injection for subsequent
// experiment runs (nil disarms it). cfg.Seed is the base seed every
// row key derives from.
func SetFaultConfig(cfg *fault.Config) {
	faultMu.Lock()
	defer faultMu.Unlock()
	faultCfg = cfg
	faultRows = map[string]*fault.Injector{}
}

// rowFault returns the armed injector for a row key, creating it on
// first use (nil when faults are disarmed). Rows run their regular and
// stream phases sequentially on their own goroutine, so one injector
// per key never sees concurrent draws.
func rowFault(key string) *fault.Injector {
	faultMu.Lock()
	defer faultMu.Unlock()
	if faultCfg == nil {
		return nil
	}
	in, ok := faultRows[key]
	if !ok {
		c := *faultCfg
		c.Seed = fault.DeriveSeed(faultCfg.Seed, key)
		in = fault.New(c)
		faultRows[key] = in
	}
	return in
}

// rowExec returns the default executor configuration armed with the
// row's derived injector. Experiment rows use this instead of
// exec.Defaults() so -fault reaches them without global state.
func rowExec(key string) exec.Config {
	cfg := exec.Defaults()
	cfg.Fault = rowFault(key)
	return cfg
}

// FaultReport renders the per-row injection summary, sorted by row key
// so the output is byte-identical at any Parallelism. Empty when
// faults are disarmed or nothing fired.
func FaultReport() string {
	faultMu.Lock()
	defer faultMu.Unlock()
	if faultCfg == nil || len(faultRows) == 0 {
		return ""
	}
	keys := make([]string, 0, len(faultRows))
	for k := range faultRows {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	var total uint64
	fmt.Fprintf(&sb, "fault injection (base seed %d, per-row derived seeds):\n", faultCfg.Seed)
	for _, k := range keys {
		in := faultRows[k]
		fmt.Fprintf(&sb, "  %-28s %3d faults, %4d draws\n", k, in.Total(), in.Draws())
		total += in.Total()
	}
	fmt.Fprintf(&sb, "  total: %d faults injected\n", total)
	return sb.String()
}
