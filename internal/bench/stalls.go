package bench

import (
	"fmt"
	"io"

	"streamgpp/internal/apps/micro"
	"streamgpp/internal/exec"
	"streamgpp/internal/obs"
)

// Stalls uses the observability layer to explain where the stream
// version's cycles go on GAT-SCAT-COMP, with and without double
// buffering: gather/kernel overlap efficiency, per-context stall
// attribution, SRF occupancy and work-queue depth. The ablation makes
// the software pipeline's value visible: without buffer renaming the
// memory thread serialises behind the kernels and overlap collapses.
func Stalls(w io.Writer, quick bool) error {
	n := 150000
	if quick {
		n = 60000
	}
	t := Table{
		Title: "Stall attribution: GAT-SCAT-COMP, double buffering on/off",
		Header: []string{"config", "speedup", "overlap",
			"ctx0 dep-wait", "ctx1 memory", "SRF occ", "wq depth p50/max"},
	}
	for _, cfgRow := range []struct {
		label    string
		noDouble bool
	}{
		{"double-buffered", false},
		{"single-buffered", true},
	} {
		// The registry rides Params rather than sim.SetDefaultObserver:
		// the global default would leak concurrently created machines
		// into this table under the parallel runner.
		reg := obs.NewRegistry()
		tr := &exec.Trace{}
		ecfg := rowExec("stalls/" + cfgRow.label)
		ecfg.Trace = tr
		res, err := micro.RunGATSCAT(micro.Params{N: n, Comp: 1, Seed: 9,
			NoDoubleBuffer: cfgRow.noDouble, Observer: reg}, ecfg)
		if err != nil {
			return err
		}
		rep := exec.NewStallReport(res.Stream)
		depth := reg.Histogram("wq.depth")
		t.AddRow(cfgRow.label,
			fmt.Sprintf("%.2f", res.Speedup),
			fmt.Sprintf("%.2f", tr.OverlapEfficiency()),
			fmt.Sprintf("%.0f%%", 100*float64(rep.Contexts[0].DepWait)/float64(rep.Contexts[0].Total)),
			fmt.Sprintf("%.0f%%", 100*float64(rep.Contexts[1].Memory)/float64(rep.Contexts[1].Total)),
			fmt.Sprintf("%.0f%%", 100*reg.Gauge("svm.srf.occupancy").Max()),
			fmt.Sprintf("%.0f/%.0f", depth.Quantile(0.5), depth.Max()))
	}
	t.Note("overlap = gather/scatter time hidden behind kernels ÷ min(memory, kernel time);")
	t.Note("single-buffered serialises the pipeline, so overlap collapses toward 0.")
	t.Note("paper: double buffering lets gathers run ahead of kernels on the other context (§II-B),")
	t.Note("the overlap Fig. 6 measures; the stream version stays memory-bound on ctx1 at COMP=1.")
	t.Render(w)
	return nil
}
