package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseWhatIf(t *testing.T) {
	specs, err := ParseWhatIf("ident, dram=0.5,kernel=1.25,strip=0.5,1ctx")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, s := range specs {
		names = append(names, s.Name())
	}
	if got := strings.Join(names, ","); got != "ident,dram=0.5,kernel=1.25,strip=0.5,1ctx" {
		t.Fatalf("parsed %q", got)
	}
	for _, bad := range []string{"", "bogus", "dram", "dram=0", "dram=-1", "kernel=x", "strip=2"} {
		if _, err := ParseWhatIf(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

// The cross-check itself: the identity scenario must reproduce the
// deterministic baseline exactly on both sides, and the a-priori
// kernel-speedup prediction must agree with the simulator re-run
// within the gate tolerance.
func TestWhatIfIdentityExactAndKernelAgrees(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	specs, err := ParseWhatIf("ident,kernel=1.25")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res, err := RunWhatIf(&buf, true, specs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 {
		t.Fatalf("gated scenarios failed:\n%s", buf.String())
	}
	ident := res.Rows[0]
	if ident.AnalyticalDelta != 0 || ident.EmpiricalDelta != 0 || ident.Analytical != ident.Baseline {
		t.Fatalf("identity not exact: %+v", ident)
	}
	kernel := res.Rows[1]
	if kernel.Derived {
		t.Fatal("kernel scenario must be an a-priori prediction, not derived")
	}
	if kernel.AnalyticalDelta >= 0 || kernel.EmpiricalDelta >= 0 {
		t.Fatalf("kernel speedup predicted no gain: %+v", kernel)
	}
	if !kernel.Pass {
		t.Fatalf("kernel scenario disagrees beyond %.2f: %+v", res.Tolerance, kernel)
	}
	if !strings.Contains(buf.String(), "What-if") || !strings.Contains(buf.String(), "+0.00%") {
		t.Fatalf("verdict table missing identity row:\n%s", buf.String())
	}
}
