package bench

import (
	"fmt"
	"io"

	"streamgpp/internal/sim"
)

// overlapWorkloads builds the compute and memory tasks of Fig. 6: a
// pure ALU burst and a bulk non-temporal stream over a region.
func computeBurst(ops int64) func(*sim.CPU) {
	return func(c *sim.CPU) { c.Compute(ops) }
}

func memoryStream(reg sim.Region) func(*sim.CPU) {
	return func(c *sim.CPU) {
		pipe := c.NewPipe(2, 1, sim.StateMemory)
		for a := reg.Base; a < reg.End(); a += 128 {
			pipe.Access(a, 128, false, sim.HintNonTemporal)
		}
		pipe.Drain()
	}
}

// Fig6 reproduces the computation/memory overlap experiment: both
// contexts computing, both streaming memory, and one of each, all
// normalised to running the two tasks serially in single-thread mode
// (= 100 units).
func Fig6(w io.Writer, quick bool) error {
	bytes := uint64(8 << 20)
	if quick {
		bytes = 2 << 20
	}

	// Calibrate the compute burst to the memory task's solo time so the
	// two halves are comparable (as in the paper's experiment).
	m := sim.MustNew(sim.PentiumD8300())
	region := m.AS.Alloc("stream", bytes)
	memSolo := m.Run(memoryStream(region)).Cycles
	ops := int64(memSolo)

	t := Table{
		Title:  "Fig. 6: normalised execution time (serial single-thread = 100)",
		Header: []string{"scenario", "time", "paper"},
	}
	scenario := func(name string, a, b func(*sim.CPU), expect string) {
		mm := sim.MustNew(sim.PentiumD8300())
		r := mm.AS.Alloc("stream", bytes)
		_ = r
		serial := mm.Run(func(c *sim.CPU) { a(c); b(c) }).Cycles
		mm.ColdStart()
		par := mm.Run(a, b).Cycles
		t.AddRow(name, fmt.Sprintf("%.0f", 100*float64(par)/float64(serial)), expect)
	}
	mk := func() (func(*sim.CPU), func(*sim.CPU)) {
		return computeBurst(ops), computeBurst(ops)
	}
	_ = mk

	// a. compute ∥ compute
	scenario("compute + compute", computeBurst(ops), computeBurst(ops), "~70–80 (20–30% saving)")
	// b. memory ∥ memory — two distinct regions.
	{
		mm := sim.MustNew(sim.PentiumD8300())
		r1 := mm.AS.Alloc("s1", bytes)
		r2 := mm.AS.Alloc("s2", bytes)
		serial := mm.Run(func(c *sim.CPU) { memoryStream(r1)(c); memoryStream(r2)(c) }).Cycles
		mm.ColdStart()
		par := mm.Run(memoryStream(r1), memoryStream(r2)).Cycles
		t.AddRow("memory + memory", fmt.Sprintf("%.0f", 100*float64(par)/float64(serial)), "~106 (6% slower)")
	}
	// c. compute ∥ memory
	{
		mm := sim.MustNew(sim.PentiumD8300())
		r1 := mm.AS.Alloc("s1", bytes)
		serial := mm.Run(func(c *sim.CPU) { computeBurst(ops)(c); memoryStream(r1)(c) }).Cycles
		mm.ColdStart()
		par := mm.Run(computeBurst(ops), memoryStream(r1)).Cycles
		t.AddRow("compute + memory", fmt.Sprintf("%.0f", 100*float64(par)/float64(serial)), "~70–80 (20–30% saving)")
	}
	t.Render(w)
	return nil
}

// Fig8 reproduces the busy-waiting comparison: one context runs a
// compute or memory task while the other waits with PAUSE or
// MONITOR/MWAIT; times are normalised to the task running alone
// (= 100). The dispatch latency of each mechanism is also measured.
func Fig8(w io.Writer, quick bool) error {
	bytes := uint64(8 << 20)
	ops := int64(4_000_000)
	if quick {
		bytes = 2 << 20
		ops = 1_000_000
	}

	t := Table{
		Title:  "Fig. 8: task time with a busy-waiting sibling (solo = 100)",
		Header: []string{"waiting via", "compute task", "memory task", "dispatch cycles"},
	}
	measure := func(policy sim.WaitPolicy) (comp, mem float64, dispatch uint64) {
		// Compute task with waiting sibling.
		m := sim.MustNew(sim.PentiumD8300())
		solo := m.Run(computeBurst(ops)).Cycles
		m.ResetTiming()
		ev := m.NewEvent()
		done := false
		var notified, woke uint64
		st := m.Run(
			func(c *sim.CPU) {
				c.Compute(ops)
				done = true
				notified = c.Now()
				c.Signal(ev)
			},
			func(c *sim.CPU) {
				c.Wait(ev, policy, func() bool { return done })
				woke = c.Now()
			},
		)
		comp = 100 * float64(st.ProcCycles[0]) / float64(solo)
		dispatch = woke - notified

		// Memory task with waiting sibling.
		m2 := sim.MustNew(sim.PentiumD8300())
		reg := m2.AS.Alloc("s", bytes)
		solo2 := m2.Run(memoryStream(reg)).Cycles
		m2.ColdStart()
		ev2 := m2.NewEvent()
		done2 := false
		st2 := m2.Run(
			func(c *sim.CPU) {
				memoryStream(reg)(c)
				done2 = true
				c.Signal(ev2)
			},
			func(c *sim.CPU) {
				c.Wait(ev2, policy, func() bool { return done2 })
			},
		)
		mem = 100 * float64(st2.ProcCycles[0]) / float64(solo2)
		return comp, mem, dispatch
	}

	for _, p := range []struct {
		policy sim.WaitPolicy
		name   string
	}{
		{sim.PolicyPause, "PAUSE"},
		{sim.PolicyMwait, "MONITOR/MWAIT"},
		{sim.PolicyOS, "OS primitives"},
	} {
		comp, mem, disp := measure(p.policy)
		t.AddRow(p.name, fmt.Sprintf("%.0f", comp), fmt.Sprintf("%.0f", mem), fmt.Sprintf("%d", disp))
	}
	t.Note("paper: PAUSE dispatches in ~175 cycles but greatly slows a sibling compute task;")
	t.Note("MONITOR/MWAIT dispatches in ~680 cycles with negligible interference; OS wakeups cost tens of thousands.")
	t.Render(w)
	return nil
}
