package bench

import (
	"bytes"
	"strings"
	"testing"

	"streamgpp/internal/fault"
)

// Per-row fault injection must be deterministic at any Parallelism:
// every row derives its own injector seed from (base seed, row key), so
// neither goroutine scheduling nor run order can change which draws a
// row sees. This is the property that lets streambench -fault keep the
// parallel runner (PR 3 forced -parallel 1 with one global injector).
func TestFaultReportDeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full experiment twice")
	}
	defer SetFaultConfig(nil)
	e, ok := ByID("fig9")
	if !ok {
		t.Fatal("fig9 missing")
	}

	run := func(par int) (string, string) {
		old := Parallelism
		Parallelism = par
		defer func() { Parallelism = old }()
		fcfg, err := fault.ParseSpec("kernel_fault:0.02")
		if err != nil {
			t.Fatal(err)
		}
		fcfg.Seed = 7
		SetFaultConfig(&fcfg)
		var buf bytes.Buffer
		if err := e.Run(&buf, true); err != nil {
			t.Fatalf("parallel=%d: %v", par, err)
		}
		return buf.String(), FaultReport()
	}

	outSeq, repSeq := run(1)
	outPar, repPar := run(8)
	if outSeq != outPar {
		t.Errorf("experiment output diverges across parallelism:\nseq:\n%s\npar:\n%s", outSeq, outPar)
	}
	if repSeq != repPar {
		t.Errorf("fault report diverges across parallelism:\nseq:\n%s\npar:\n%s", repSeq, repPar)
	}
	if !strings.Contains(repSeq, "fig9/comp=") {
		t.Errorf("fault report missing per-row keys:\n%s", repSeq)
	}
	if !strings.Contains(repSeq, "base seed 7") {
		t.Errorf("fault report missing base seed:\n%s", repSeq)
	}
}

// Different rows must see different derived schedules (one global
// stream would give every row the same draws only by accident, but
// identical per-row seeds would be a wiring bug).
func TestRowFaultSeedsDiffer(t *testing.T) {
	defer SetFaultConfig(nil)
	fcfg, err := fault.ParseSpec("kernel_fault:0.5")
	if err != nil {
		t.Fatal(err)
	}
	fcfg.Seed = 1
	SetFaultConfig(&fcfg)
	a := rowFault("fig9/comp=1")
	b := rowFault("fig9/comp=4")
	if a == nil || b == nil {
		t.Fatal("armed rowFault returned nil")
	}
	if a == b {
		t.Fatal("distinct rows share an injector")
	}
	// Same key returns the same injector (rows must accumulate draws in
	// one place for the report).
	if rowFault("fig9/comp=1") != a {
		t.Fatal("repeated key did not return the cached injector")
	}
	// Disarmed: nil injector, defaults config.
	SetFaultConfig(nil)
	if rowFault("fig9/comp=1") != nil {
		t.Fatal("disarmed rowFault returned an injector")
	}
	if cfg := rowExec("fig9/comp=1"); cfg.Fault != nil {
		t.Fatal("disarmed rowExec carries an injector")
	}
}
