package bench

import (
	"bytes"
	"io"
	"sync"
	"sync/atomic"
)

// Parallelism is the number of worker goroutines the experiment
// runners may use, both across experiments (RunAll) and across the
// rows of one experiment's table. 1 (the default) runs everything
// serially. Every row builds its own machines and draws from its own
// seeded RNGs, so the computed cells are independent of execution
// order and the rendered tables are byte-identical at any setting.
var Parallelism = 1

// parMap computes out[i] = f(i) for i in [0,n), running up to
// Parallelism calls concurrently. Results land in index order, so a
// table assembled from them matches the serial loop byte for byte.
// All in-flight calls finish before it returns; the first error by
// index wins.
func parMap[T any](n int, f func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	workers := Parallelism
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			v, err := f(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				out[i], errs[i] = f(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// RunAll executes every experiment and writes their tables in paper
// order. With Parallelism > 1 the experiments run concurrently, each
// rendering into its own buffer; the buffers are emitted in order, so
// the output is byte-identical to a serial run.
func RunAll(w io.Writer, quick bool) error {
	exps := Experiments()
	outs, err := parMap(len(exps), func(i int) ([]byte, error) {
		var buf bytes.Buffer
		if err := exps[i].Run(&buf, quick); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	})
	if err != nil {
		return err
	}
	for _, b := range outs {
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}
