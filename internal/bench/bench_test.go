package bench

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestExperimentsListedAndRunnable(t *testing.T) {
	exps := Experiments()
	if len(exps) != 9 {
		t.Fatalf("want 9 experiments, got %d", len(exps))
	}
	wantIDs := []string{"fig5", "fig6", "fig8", "fig9", "fig11a", "fig11b", "fig11c", "fig11d", "stalls"}
	for i, id := range wantIDs {
		if exps[i].ID != id {
			t.Fatalf("experiment %d is %s, want %s", i, exps[i].ID, id)
		}
		e, ok := ByID(id)
		if !ok || e.ID != id {
			t.Fatalf("ByID(%s) failed", id)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("ByID accepted an unknown id")
	}
}

// Every experiment must run in quick mode and produce a table.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf, true); err != nil {
				t.Fatal(err)
			}
			out := buf.String()
			if !strings.Contains(out, "==") || !strings.Contains(out, "paper") {
				t.Fatalf("%s produced no annotated table:\n%s", e.ID, out)
			}
		})
	}
}

func TestTableRender(t *testing.T) {
	tab := Table{
		Title:  "demo",
		Header: []string{"col", "value"},
	}
	tab.AddRow("a", "1")
	tab.AddRow("longer-label", "2")
	tab.Note("a note with %d args", 1)
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	for _, want := range []string{"== demo ==", "col", "longer-label", "note: a note with 1 args"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// Columns aligned: the header and first row's second column start at
	// the same offset.
	lines := strings.Split(out, "\n")
	if len(lines) < 4 {
		t.Fatal("too few lines")
	}
	if strings.Index(lines[0+1], "value") != strings.Index(lines[2+1], "1") {
		// lines[1] is the header (line 0 is the title).
		t.Log(out)
	}
}

func TestBandwidthProbeDeterministic(t *testing.T) {
	p := BandwidthProbe{RecordBytes: 32, Random: true, TotalBytes: 2 << 20}
	a, b := p.Run(), p.Run()
	if a != b {
		t.Fatalf("probe nondeterministic: %v vs %v", a, b)
	}
	if a <= 0 {
		t.Fatalf("probe bandwidth %v", a)
	}
}

func TestBandwidthProbeOrdering(t *testing.T) {
	seq := BandwidthProbe{RecordBytes: 4, TotalBytes: 2 << 20}.Run()
	rnd := BandwidthProbe{RecordBytes: 4, Random: true, TotalBytes: 2 << 20}.Run()
	if rnd >= seq {
		t.Fatalf("random (%v) >= sequential (%v)", rnd, seq)
	}
}

func TestFig5QuickWritesFourPanels(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig5(&buf, true); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "== Fig. 5"); n != 4 {
		t.Fatalf("want 4 panels, got %d", n)
	}
}

func TestFig6Bounds(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	var buf bytes.Buffer
	if err := Fig6(&buf, true); err != nil {
		t.Fatal(err)
	}
	if err := Fig8(io.Discard, true); err != nil {
		t.Fatal(err)
	}
}
