package bench

import (
	"fmt"
	"io"
	"math/rand"

	"streamgpp/internal/sim"
)

// BandwidthProbe measures the streamGather/streamScatter bandwidth of
// §III-A: useful GB/s moving 4-byte fields from records of recordBytes,
// over an array much larger than the cache and the TLB coverage.
type BandwidthProbe struct {
	RecordBytes int
	Random      bool
	Write       bool
	NonTemporal bool
	TotalBytes  uint64 // array footprint; default 16 MB
}

// Run executes the probe on the paper's machine and returns GB/s of
// useful data.
func (p BandwidthProbe) Run() float64 { return p.RunOn(sim.PentiumD8300()) }

// RunOn executes the probe on a machine with the given configuration.
func (p BandwidthProbe) RunOn(cfg sim.Config) float64 {
	m := sim.MustNew(cfg)
	total := p.TotalBytes
	if total == 0 {
		total = 16 << 20
	}
	const fieldBytes = 4
	n := int(total) / p.RecordBytes
	reg := m.AS.Alloc("arr", total)

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	if p.Random {
		rng := rand.New(rand.NewSource(1))
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
	}
	hint := sim.HintNone
	if p.NonTemporal {
		hint = sim.HintNonTemporal
	}

	var cycles uint64
	m.Run(func(c *sim.CPU) {
		pipe := c.NewPipe(2, 1, sim.StateMemory)
		for _, idx := range order {
			pipe.Access(reg.Base+uint64(idx*p.RecordBytes), fieldBytes, p.Write, hint)
		}
		pipe.Drain()
		if p.Write && p.NonTemporal {
			c.DrainWC()
		}
		cycles = c.Now()
	})
	return m.Config().BandwidthGBs(uint64(n*fieldBytes), cycles)
}

// Fig5 reproduces the four panels of Fig. 5: sequential loads, random
// gathers, sequential stores and random scatters, each with and
// without non-temporal/prefetch hints, across record sizes 4–128 B.
func Fig5(w io.Writer, quick bool) error {
	records := []int{4, 8, 16, 32, 64, 128}
	total := uint64(16 << 20)
	if quick {
		records = []int{4, 32, 128}
		total = 4 << 20
	}
	panels := []struct {
		name   string
		random bool
		write  bool
		expect string
	}{
		{"(a) sequential loads", false, false, "falls ~1/record-size from near bus speed to ~0.14 GB/s; NT hurts"},
		{"(b) random gathers", true, false, "flat and low (~0.06 GB/s, TLB-walk bound); NT helps ~30%"},
		{"(c) sequential stores", false, true, "about half of the load bandwidth (read-for-ownership)"},
		{"(d) random scatters", true, true, "low like gathers; NT write-combining helps"},
	}
	for _, p := range panels {
		t := Table{
			Title:  "Fig. 5" + p.name,
			Header: []string{"record B", "plain GB/s", "non-temporal GB/s"},
		}
		p := p
		rows, err := parMap(len(records), func(i int) ([2]float64, error) {
			rec := records[i]
			plain := BandwidthProbe{RecordBytes: rec, Random: p.random, Write: p.write, TotalBytes: total}.Run()
			nt := BandwidthProbe{RecordBytes: rec, Random: p.random, Write: p.write, NonTemporal: true, TotalBytes: total}.Run()
			return [2]float64{plain, nt}, nil
		})
		if err != nil {
			return err
		}
		for i, r := range rows {
			t.AddRow(fmt.Sprintf("%d", records[i]), fmt.Sprintf("%.3f", r[0]), fmt.Sprintf("%.3f", r[1]))
		}
		t.Note("paper: %s", p.expect)
		t.Render(w)
	}
	return nil
}
