package bench

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"streamgpp/internal/apps/micro"
	"streamgpp/internal/critpath"
	"streamgpp/internal/exec"
	"streamgpp/internal/obs"
	"streamgpp/internal/sim"
)

// What-if analysis: each scenario is answered twice over the
// quickstart workload — analytically, by replaying the baseline run's
// frozen task DAG with rescaled durations (critpath.Predict), and
// empirically, by re-running the simulator with the corresponding knob
// actually changed — and the two deltas are cross-checked. Agreement
// within the regression gate's relative threshold means the frozen-DAG
// model explains the knob's effect; disagreement flags contention or
// scheduling effects the analytical model deliberately ignores.

// WhatIfSpec is one parsed scenario.
type WhatIfSpec struct {
	// Kind is one of "ident", "dram", "kernel", "strip", "1ctx".
	Kind string
	// Factor is the knob multiplier (dram, kernel, strip only):
	// dram=0.5 halves DRAM latency, kernel=1.25 raises kernel IPC 25%,
	// strip=0.5 halves the strip size.
	Factor float64
}

// Name renders the spec in the grammar it was parsed from.
func (s WhatIfSpec) Name() string {
	switch s.Kind {
	case "ident", "1ctx":
		return s.Kind
	default:
		return fmt.Sprintf("%s=%g", s.Kind, s.Factor)
	}
}

// ParseWhatIf parses a comma-separated scenario list:
// "ident,dram=0.5,kernel=1.25,strip=0.5,1ctx".
func ParseWhatIf(spec string) ([]WhatIfSpec, error) {
	var out []WhatIfSpec
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		switch {
		case part == "ident" || part == "1ctx":
			out = append(out, WhatIfSpec{Kind: part})
		default:
			kv := strings.SplitN(part, "=", 2)
			if len(kv) != 2 {
				return nil, fmt.Errorf("whatif: bad scenario %q (want ident, 1ctx, or dram|kernel|strip=FACTOR)", part)
			}
			k := kv[0]
			if k != "dram" && k != "kernel" && k != "strip" {
				return nil, fmt.Errorf("whatif: unknown knob %q (want dram, kernel or strip)", k)
			}
			f, err := strconv.ParseFloat(kv[1], 64)
			if err != nil || f <= 0 {
				return nil, fmt.Errorf("whatif: bad factor in %q (want a positive number)", part)
			}
			if k == "strip" && f > 1 {
				return nil, fmt.Errorf("whatif: strip factor %g > 1 can exceed the SRF budget; use a factor in (0, 1]", f)
			}
			out = append(out, WhatIfSpec{Kind: k, Factor: f})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("whatif: empty scenario list")
	}
	return out, nil
}

// WhatIfRow is one scenario's verdict.
type WhatIfRow struct {
	Scenario        string
	Baseline        uint64  // recorded baseline cycles
	Analytical      uint64  // frozen-DAG predicted cycles
	AnalyticalDelta float64 // (Analytical-Baseline)/Baseline
	Empirical       uint64  // re-run measured cycles
	EmpiricalDelta  float64
	// Diff is |AnalyticalDelta - EmpiricalDelta|, the model error in
	// fractions of the baseline.
	Diff float64
	// Derived scenarios feed the empirical run's per-kind busy totals
	// back into the analytical scales (the knob's per-task effect is
	// not known a priori); their cross-check validates the DAG
	// propagation, not an independent prediction.
	Derived bool
	// Gated rows must agree within Tolerance; strip rescaling changes
	// the task count, which a frozen DAG cannot represent, so it is
	// reported ungated.
	Gated bool
	Pass  bool
}

// WhatIfResult is the full cross-checked analysis.
type WhatIfResult struct {
	Rows      []WhatIfRow
	Tolerance float64
	// Failed counts gated rows whose deltas disagree.
	Failed int
}

// WhatIfTolerance is the agreement threshold between analytical and
// empirical deltas: the regression gate's minimum relative resolution
// (differences below it are within run-to-run noise for wall-clock and
// within model slack here).
func WhatIfTolerance() float64 { return obs.DefaultGateOptions().MinRelative }

// whatIfParams is the baseline quickstart workload (the README's
// worked example, also used by the check.sh smoke).
func whatIfParams(quick bool) micro.Params {
	n := 300000
	if quick {
		n = 50000
	}
	return micro.Params{N: n, Comp: 1, Seed: 1, Observer: obs.NewRegistry()}
}

// runQuickstartStream runs the quickstart workload once with the given
// parameter mutation and returns the stream-side result. ecfg is used
// as a template (its Trace is overridden per run).
func runQuickstartStream(p micro.Params, tr *exec.Trace, ecfg exec.Config) (exec.Result, error) {
	ecfg.Trace = tr
	res, err := micro.RunQuickstart(p, ecfg)
	if err != nil {
		return exec.Result{}, err
	}
	return res.Stream, nil
}

// RunWhatIf executes the cross-checked what-if analysis for the given
// scenarios over the quickstart workload and renders the verdict
// table.
func RunWhatIf(w io.Writer, quick bool, specs []WhatIfSpec) (*WhatIfResult, error) {
	return RunWhatIfExec(w, quick, specs, exec.Defaults())
}

// RunWhatIfExec is RunWhatIf with an explicit executor-configuration
// template — streamd uses it to impose per-job deadlines (Config.Ctx)
// on what-if jobs. The template's Trace field is managed per run.
func RunWhatIfExec(w io.Writer, quick bool, specs []WhatIfSpec, ecfg exec.Config) (*WhatIfResult, error) {
	base := whatIfParams(quick)
	tr := &exec.Trace{}
	baseRes, err := runQuickstartStream(base, tr, ecfg)
	if err != nil {
		return nil, err
	}
	g, err := critpath.Build(tr, baseRes.Cycles)
	if err != nil {
		return nil, err
	}

	out := &WhatIfResult{Tolerance: WhatIfTolerance()}
	for _, s := range specs {
		row, err := runScenario(g, base, baseRes, s, out.Tolerance, ecfg)
		if err != nil {
			return nil, fmt.Errorf("whatif %s: %w", s.Name(), err)
		}
		if row.Gated && !row.Pass {
			out.Failed++
		}
		out.Rows = append(out.Rows, row)
	}

	t := Table{
		Title:  "What-if: frozen-DAG prediction vs simulator re-run (quickstart)",
		Header: []string{"scenario", "baseline", "analytical", "empirical", "diff", "verdict"},
	}
	for _, r := range out.Rows {
		verdict := "PASS"
		switch {
		case !r.Gated:
			verdict = "info"
		case !r.Pass:
			verdict = "FAIL"
		}
		t.AddRow(r.Scenario, fmt.Sprintf("%d", r.Baseline),
			fmt.Sprintf("%d (%+.2f%%)", r.Analytical, 100*r.AnalyticalDelta),
			fmt.Sprintf("%d (%+.2f%%)", r.Empirical, 100*r.EmpiricalDelta),
			fmt.Sprintf("%.2f%%", 100*r.Diff), verdict)
	}
	t.Note("gated scenarios must agree within %.0f%%; 'info' rows change the task count and are not gated.",
		100*out.Tolerance)
	t.Render(w)
	return out, nil
}

// runScenario produces one cross-checked row.
func runScenario(g *critpath.Graph, base micro.Params, baseRes exec.Result, s WhatIfSpec, tol float64, ecfg exec.Config) (WhatIfRow, error) {
	row := WhatIfRow{Scenario: s.Name(), Baseline: baseRes.Cycles, Gated: true}

	// Empirical: re-run with the knob actually changed. Each run gets a
	// fresh observer so machines never share metric state.
	emp := base
	emp.Observer = obs.NewRegistry()
	cfg := sim.PentiumD8300()
	switch s.Kind {
	case "ident":
		// No change: the deterministic simulator must reproduce the
		// baseline byte-for-byte.
	case "dram":
		cfg.DRAMLat = uint64(float64(cfg.DRAMLat)*s.Factor + 0.5)
		emp.Machine = &cfg
	case "kernel":
		cfg.CPI /= s.Factor
		emp.Machine = &cfg
	case "strip":
		emp.StripScale = s.Factor
		row.Gated = false // changes the task count; the frozen DAG cannot follow
	case "1ctx":
		emp.SingleCtx = true
	default:
		return row, fmt.Errorf("unknown scenario kind %q", s.Kind)
	}
	empRes, err := runQuickstartStream(emp, nil, ecfg)
	if err != nil {
		return row, err
	}
	row.Empirical = empRes.Cycles
	row.EmpiricalDelta = delta(empRes.Cycles, baseRes.Cycles)

	// Analytical: replay the frozen DAG under the scenario.
	sc := critpath.Scenario{Name: s.Name(), Scale: [3]float64{1, 1, 1}}
	switch s.Kind {
	case "ident":
	case "kernel":
		// Kernel IPC ×F shrinks kernel task durations by 1/F — known a
		// priori, an independent prediction.
		sc.Scale[1] = 1 / s.Factor
	case "1ctx":
		sc.Serialize = true
	case "dram", "strip":
		// The knob's per-task effect depends on the memory system, so
		// the aggregate per-kind rescaling is derived from the
		// empirical run; the cross-check then validates how the DAG
		// propagates those per-task changes to the makespan.
		sc.Scale = critpath.KindScales(baseRes.KindCycles, empRes.KindCycles)
		row.Derived = true
	}
	pred := g.Predict(sc)
	row.Analytical = pred.Cycles
	row.AnalyticalDelta = pred.Delta

	row.Diff = row.AnalyticalDelta - row.EmpiricalDelta
	if row.Diff < 0 {
		row.Diff = -row.Diff
	}
	row.Pass = row.Diff <= tol
	return row, nil
}

// delta returns (cur-base)/base.
func delta(cur, base uint64) float64 {
	if base == 0 {
		return 0
	}
	return (float64(cur) - float64(base)) / float64(base)
}
