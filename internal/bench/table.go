// Package bench regenerates every figure of the paper's evaluation:
// the memory-bandwidth characterisation (Fig. 5), the SMT overlap
// experiment (Fig. 6), the busy-waiting comparison (Fig. 8), the
// micro-benchmark sweeps (Fig. 9) and the four application studies
// (Fig. 11(a)–(d)). Each experiment prints the same rows/series the
// paper reports, annotated with the paper's expectation, so
// paper-vs-measured comparisons are mechanical.
package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Note appends a footnote.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Experiment is a runnable figure reproduction. quick shrinks the
// problem sizes for fast smoke runs.
type Experiment struct {
	ID    string
	Title string
	Run   func(w io.Writer, quick bool) error
}

// Experiments lists every figure reproduction in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"fig5", "Fig. 5: gather/scatter bandwidth vs record size", Fig5},
		{"fig6", "Fig. 6: computation/memory SMT overlap", Fig6},
		{"fig8", "Fig. 8: PAUSE vs MONITOR/MWAIT busy-waiting", Fig8},
		{"fig9", "Fig. 9: micro-benchmark speedups vs COMP", Fig9},
		{"fig11a", "Fig. 11(a): streamFEM", Fig11a},
		{"fig11b", "Fig. 11(b): streamCDP", Fig11b},
		{"fig11c", "Fig. 11(c): neo-hookean", Fig11c},
		{"fig11d", "Fig. 11(d): streamSPAS", Fig11d},
		{"stalls", "Stall attribution and overlap (double buffering on/off)", Stalls},
	}
}

// ExtraExperiments lists runnable workloads that are not part of the
// paper's evaluation — they are addressable by ID but excluded from
// "all", so the nine-figure output stays byte-stable across releases.
func ExtraExperiments() []Experiment {
	return []Experiment{
		{"quickstart", "Quickstart: the documentation's worked example", Quickstart},
	}
}

// ByID returns the experiment with the given id, searching the paper
// figures first, then the extras.
func ByID(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	for _, e := range ExtraExperiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
