package bench

import (
	"fmt"
	"io"

	"streamgpp/internal/apps/micro"
	"streamgpp/internal/exec"
)

// Quickstart runs the documentation's worked example (the QUICKSTART
// micro-benchmark): small, fast and representative, it is the workload
// the README's -ledger/-compare walkthrough, the regression-gate smoke
// in scripts/check.sh and the streamtrace golden test all use. It lives
// outside Experiments() so `-exp all` keeps reproducing exactly the
// paper's nine figures, byte-for-byte.
func Quickstart(w io.Writer, quick bool) error {
	n := 300000
	if quick {
		n = 50000
	}
	t := Table{
		Title:  "Quickstart: out[i] = comp(2.5*a[i] + b[i])",
		Header: []string{"style", "cycles", "speedup", "overlap"},
	}
	tr := &exec.Trace{}
	ecfg := rowExec("quickstart")
	ecfg.Trace = tr
	// No explicit Observer: the machine inherits sim.SetDefaultObserver,
	// so measured mode (-ledger/-compare) sees this experiment's
	// metrics — ledger rows must carry sim.*, coverage.* and bw.* for
	// the regression gate's metric gates to have anything to compare.
	res, err := micro.RunQuickstart(micro.Params{N: n, Comp: 1, Seed: 1}, ecfg)
	if err != nil {
		return err
	}
	t.AddRow("regular", fmt.Sprintf("%d", res.Regular.Cycles), "1.00", "-")
	t.AddRow("stream", fmt.Sprintf("%d", res.Stream.Cycles),
		fmt.Sprintf("%.2f", res.Speedup), fmt.Sprintf("%.2f", tr.OverlapEfficiency()))
	t.Note("the worked example from the README; see streamtrace -app quickstart for its timeline.")
	t.Render(w)
	return nil
}
