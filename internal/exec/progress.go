package exec

// This file defines the live-progress hook the stream executors feed:
// one ProgressFrame per completed strip task, reported from the same
// task-end sites as the timeline sampler (timeline.go). Like the
// sampler, the hook is strictly read-only with respect to simulated
// time — it fires after the task's cycles are already accounted, reads
// completed/total counts and the recovery tally, and never touches a
// CPU clock or the memory system — so enabling it cannot perturb
// timing: fast-path byte-identity and the ledger's sim-cycle gates
// hold with or without a hook attached (DESIGN.md §16). streamd uses
// it to serve mid-run progress over long-poll and SSE.

// ProgressFrame is one mid-run progress report from a stream run.
type ProgressFrame struct {
	// Done and Total count strip tasks: Done is how many have
	// completed, Total the schedule's task count. Done == Total on the
	// final frame of a successful run. A degraded run (2ctx → 1ctx
	// fallback) restarts the schedule, so Done resets once.
	Done  int
	Total int
	// Phase and Strip locate the task that just completed.
	Phase int
	Strip int
	// Cycle is the completing context's simulated clock at the report.
	Cycle uint64
	// Retries is the run's cumulative strip-retry count (recovery
	// activity under fault injection; 0 on fault-free runs).
	Retries uint64
}
