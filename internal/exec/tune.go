package exec

import (
	"fmt"

	"streamgpp/internal/compiler"
	"streamgpp/internal/sim"
)

// TuneResult reports a strip-size search.
type TuneResult struct {
	// StripElems is the best strip size found (0 = the compiler's
	// automatic choice won).
	StripElems int
	// Cycles is the best measured execution time.
	Cycles uint64
	// Tried maps each candidate (0 = automatic) to its measured cycles.
	Tried map[int]uint64
}

// TuneStripSize searches for the strip size minimising execution time,
// the job §III-B.1 assigns to the stream scheduler ("the stream
// scheduler also determines the optimal strip-sizes of streams
// depending on the flow rates of streams, SRF size, etc."). The
// compiler's static choice packs the SRF; the empirical optimum can be
// smaller (finer pipelining, more overlap) or equal, and this search
// finds it by measurement.
//
// build must return a fresh machine + program factory for one
// candidate strip size (0 = automatic): state mutates during a run, so
// every candidate needs its own instance. Candidates that fail to
// compile (e.g. too large for the SRF) are skipped.
func TuneStripSize(candidates []int, ecfg Config,
	build func(stripElems int) (*sim.Machine, *compiler.Program, error)) (TuneResult, error) {

	res := TuneResult{Tried: map[int]uint64{}}
	tried := 0
	best := ^uint64(0)
	for _, cand := range append([]int{0}, candidates...) {
		m, prog, err := build(cand)
		if err != nil {
			continue // e.g. strip too wide for the SRF
		}
		r, err := RunStream2Ctx(m, prog, ecfg)
		if err != nil {
			continue // a candidate that cannot complete is no candidate
		}
		cycles := r.Cycles
		res.Tried[cand] = cycles
		tried++
		if cycles < best {
			best = cycles
			res.StripElems = cand
			res.Cycles = cycles
		}
	}
	if tried == 0 {
		return res, fmt.Errorf("exec: no strip-size candidate compiled")
	}
	return res, nil
}

// HalvingCandidates returns the geometric candidate ladder the tuner
// typically searches: auto, auto/2, auto/4 ... down to min.
func HalvingCandidates(auto, min int) []int {
	var out []int
	for s := auto / 2; s >= min; s /= 2 {
		out = append(out, s)
	}
	return out
}
