package exec

import (
	"streamgpp/internal/obs"
	"streamgpp/internal/sim"
	"streamgpp/internal/wq"
)

// This file feeds the obs.Timeline sampler from the stream executors:
// per-queue work-queue depth, gather/compute overlap efficiency and
// recovery activity as functions of simulated time, plus a Poll that
// drives registered probes (SRF occupancy). Every method is nil-safe on
// a nil *tlSampler, so machines without a timeline pay one pointer
// check per hook and allocate nothing — preserving the fast path's
// byte-identity guarantees when sampling is off. Sampling itself only
// reads state (it never advances a clock), so even an attached timeline
// cannot change simulated timing.

// overlapTracker measures, incrementally, how much of the run's memory
// (gather/scatter) busy time coincided with kernel busy time — the
// same quantity Trace.OverlapEfficiency computes after the fact, but
// available mid-run so it can be sampled as a time series.
type overlapTracker struct {
	memActive  int
	kernActive int
	lastT      uint64
	memBusy    uint64
	kernBusy   uint64
	both       uint64
}

// advance accrues busy/overlap time up to t. Cross-context clock skew
// (a sample slightly in the past) is clamped rather than accrued.
func (o *overlapTracker) advance(t uint64) {
	if t <= o.lastT {
		return
	}
	dt := t - o.lastT
	if o.memActive > 0 {
		o.memBusy += dt
	}
	if o.kernActive > 0 {
		o.kernBusy += dt
	}
	if o.memActive > 0 && o.kernActive > 0 {
		o.both += dt
	}
	o.lastT = t
}

func (o *overlapTracker) start(k wq.Kind, t uint64) {
	o.advance(t)
	if k == wq.KernelRun {
		o.kernActive++
	} else {
		o.memActive++
	}
}

func (o *overlapTracker) end(k wq.Kind, t uint64) {
	o.advance(t)
	if k == wq.KernelRun {
		if o.kernActive > 0 {
			o.kernActive--
		}
	} else if o.memActive > 0 {
		o.memActive--
	}
}

// efficiency returns overlap time over the smaller busy total so far —
// 1.0 means the cheaper side has been perfectly hidden (cf.
// Trace.OverlapEfficiency).
func (o *overlapTracker) efficiency() float64 {
	denom := o.memBusy
	if o.kernBusy < denom {
		denom = o.kernBusy
	}
	if denom == 0 {
		return 0
	}
	return float64(o.both) / float64(denom)
}

// tlSampler bundles one stream run's resolved timeline handles.
type tlSampler struct {
	tl       *obs.Timeline
	m        *sim.Machine
	wqMem    *obs.Series
	wqComp   *obs.Series
	overlap  *obs.Series
	recovery *obs.Series
	// Cumulative per-level bandwidth series, sampled at task ends
	// (points both fast-path modes reach at identical times with
	// identical counter values — see coverage.go — so an attached
	// timeline keeps its fast-on/off byte-identity).
	bwL1   *obs.Series
	bwL2   *obs.Series
	bwDRAM *obs.Series
	ov     overlapTracker
}

// newTLSampler resolves the run's series handles, returning nil when
// the machine has no timeline attached (the common, zero-cost case).
func newTLSampler(m *sim.Machine) *tlSampler {
	tl := m.Timeline()
	if tl == nil {
		return nil
	}
	return &tlSampler{
		tl:       tl,
		m:        m,
		wqMem:    tl.Series("wq mem pending"),
		wqComp:   tl.Series("wq compute pending"),
		overlap:  tl.Series("overlap efficiency"),
		recovery: tl.Series("recovery events"),
		bwL1:     tl.Series("bw L1 bytes"),
		bwL2:     tl.Series("bw L2 bytes"),
		bwDRAM:   tl.Series("bw DRAM bytes"),
	}
}

// taskStart notes a task beginning execution at cycle t.
func (ts *tlSampler) taskStart(k wq.Kind, t uint64) {
	if ts == nil {
		return
	}
	ts.ov.start(k, t)
}

// taskEnd notes a task completing at cycle t and takes the window's
// samples: overlap efficiency, per-queue depth (when a queue is in
// play) and every registered probe.
func (ts *tlSampler) taskEnd(k wq.Kind, t uint64, q *wq.DWQ) {
	if ts == nil {
		return
	}
	ts.ov.end(k, t)
	ts.overlap.Sample(t, ts.ov.efficiency())
	if q != nil {
		ts.wqMem.Sample(t, float64(q.PendingIn(wq.MemQueue)))
		ts.wqComp.Sample(t, float64(q.PendingIn(wq.ComputeQueue)))
	}
	bw := ts.m.Mem.BW
	ts.bwL1.Sample(t, float64(bw[0].Bytes[sim.LevelL1]+bw[1].Bytes[sim.LevelL1]))
	ts.bwL2.Sample(t, float64(bw[0].Bytes[sim.LevelL2]+bw[1].Bytes[sim.LevelL2]))
	ts.bwDRAM.Sample(t, float64(bw[0].Bytes[sim.LevelMem]+bw[1].Bytes[sim.LevelMem]))
	ts.tl.Poll(t)
}

// enqueued samples queue depth after the control thread pushed tasks.
func (ts *tlSampler) enqueued(t uint64, q *wq.DWQ) {
	if ts == nil {
		return
	}
	ts.wqMem.Sample(t, float64(q.PendingIn(wq.MemQueue)))
	ts.wqComp.Sample(t, float64(q.PendingIn(wq.ComputeQueue)))
	ts.tl.Poll(t)
}

// recoveryEvent samples the cumulative recovery count at cycle t
// (strip retries, scrubbed dependence bits and watchdog timeouts).
func (ts *tlSampler) recoveryEvent(t uint64, rec *RecoverySummary) {
	if ts == nil {
		return
	}
	ts.recovery.Sample(t, float64(rec.Retries+rec.ScrubbedDeps+rec.WatchdogTimeouts))
}
