package exec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"streamgpp/internal/compiler"
	"streamgpp/internal/svm"
	"streamgpp/internal/wq"
)

func TestByNameStripsOnlyRecognisedSuffixes(t *testing.T) {
	cases := map[string]string{
		"as#0":      "as",
		"as#12":     "as",
		"ys.3":      "ys",
		"k1+k2#7":   "k1+k2",
		"fft2":      "fft2", // digits without a separator are part of the name
		"fft2#1":    "fft2",
		"a#b":       "a#b", // suffix not all digits
		"trailing.": "trailing.",
		"#3":        "", // pure strip suffix
	}
	for in, want := range cases {
		if got := BaseName(in); got != want {
			t.Errorf("BaseName(%q) = %q, want %q", in, got, want)
		}
	}

	tr := &Trace{Events: []TraceEvent{
		{Name: "fft2", Kind: wq.KernelRun, Start: 0, End: 10},
		{Name: "fft2#0", Kind: wq.KernelRun, Start: 10, End: 30},
		{Name: "fft2#1", Kind: wq.KernelRun, Start: 30, End: 60},
	}}
	by := tr.ByName()
	if by["fft2"] != 60 {
		t.Fatalf("ByName = %v, want fft2:60 (suffix-free and stripped names grouped)", by)
	}
	if _, ok := by["fft"]; ok {
		t.Fatalf("ByName mangled a digit-ending name: %v", by)
	}
}

func TestGanttGolden(t *testing.T) {
	tr := &Trace{Events: []TraceEvent{
		{Name: "k#0", Kind: wq.KernelRun, Ctx: 0, Start: 0, End: 50},
		{Name: "as#1", Kind: wq.Gather, Ctx: 0, Start: 50, End: 100},
		{Name: "zero", Kind: wq.Scatter, Ctx: 1, Start: 0, End: 0},
		{Name: "ys#0", Kind: wq.Scatter, Ctx: 1, Start: 20, End: 40},
	}}
	var buf bytes.Buffer
	tr.Gantt(&buf, 10)
	want := "ctx0 |KKKKKGGGGG|\n" +
		"ctx1 |S.SS......|\n" +
		"      100 cycles, G=gather K=kernel S=scatter .=idle\n"
	if buf.String() != want {
		t.Fatalf("gantt:\n%s\nwant:\n%s", buf.String(), want)
	}
}

// Adjacent half-open tasks must not share a column: the old inclusive
// hi painted [0,50) into columns 0..5 and [50,100) into 5..9, losing
// the boundary.
func TestGanttAdjacentTasksDoNotOverlap(t *testing.T) {
	tr := &Trace{Events: []TraceEvent{
		{Name: "a", Kind: wq.KernelRun, Ctx: 0, Start: 0, End: 50},
		{Name: "b", Kind: wq.Gather, Ctx: 0, Start: 50, End: 100},
	}}
	var buf bytes.Buffer
	tr.Gantt(&buf, 10)
	row := strings.SplitN(buf.String(), "\n", 2)[0]
	if strings.Count(row, "K") != 5 || strings.Count(row, "G") != 5 {
		t.Fatalf("equal-length adjacent tasks should get equal columns: %s", row)
	}
}

func TestSummaryGolden(t *testing.T) {
	tr := &Trace{Events: []TraceEvent{
		{Name: "as#0", Kind: wq.Gather, Ctx: 1, Start: 0, End: 30},
		{Name: "as#1", Kind: wq.Gather, Ctx: 1, Start: 30, End: 50},
		{Name: "k#0", Kind: wq.KernelRun, Ctx: 0, Start: 50, End: 100},
	}}
	var buf bytes.Buffer
	tr.Summary(&buf)
	want := fmt.Sprintf("  %-28s %12d\n", "as", 50) +
		fmt.Sprintf("  %-28s %12d\n", "k", 50) +
		"  ctx0 utilization: 50%\n" +
		"  ctx1 utilization: 50%\n"
	if buf.String() != want {
		t.Fatalf("summary:\n%s\nwant:\n%s", buf.String(), want)
	}
}

func TestOverlapEfficiencySynthetic(t *testing.T) {
	full := &Trace{Events: []TraceEvent{
		{Name: "k", Kind: wq.KernelRun, Ctx: 0, Start: 0, End: 100},
		{Name: "g", Kind: wq.Gather, Ctx: 1, Start: 0, End: 100},
	}}
	if got := full.OverlapEfficiency(); got != 1 {
		t.Fatalf("fully overlapped = %v, want 1", got)
	}
	serial := &Trace{Events: []TraceEvent{
		{Name: "g", Kind: wq.Gather, Ctx: 0, Start: 0, End: 100},
		{Name: "k", Kind: wq.KernelRun, Ctx: 0, Start: 100, End: 200},
	}}
	if got := serial.OverlapEfficiency(); got != 0 {
		t.Fatalf("serialised = %v, want 0", got)
	}
	if got := (&Trace{}).OverlapEfficiency(); got != 0 {
		t.Fatalf("empty = %v, want 0", got)
	}
}

// traceFile mirrors the Chrome trace_event container for validation.
type traceFile struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		ID   int            `json:"id"`
		BP   string         `json:"bp"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func TestPerfettoExport(t *testing.T) {
	s := newFig2(20000, 8)
	p, err := compiler.Compile(s.graph(), compiler.DefaultOptions(svm.DefaultSRF(s.m)))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Defaults()
	tr := &Trace{}
	cfg.Trace = tr
	mustRun2(t, s.m, p, cfg)

	var buf bytes.Buffer
	if err := tr.WritePerfetto(&buf, "fig2", 3400); err != nil {
		t.Fatal(err)
	}
	var f traceFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if f.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit %q", f.DisplayTimeUnit)
	}
	var spans, counters, threadNames int
	for _, e := range f.TraceEvents {
		switch e.Ph {
		case "X":
			spans++
			if e.Dur <= 0 {
				t.Fatalf("span %s has dur %v", e.Name, e.Dur)
			}
			if _, ok := e.Args["phase"]; !ok {
				t.Fatalf("span %s lacks phase arg: %v", e.Name, e.Args)
			}
			if _, ok := e.Args["strip"]; !ok {
				t.Fatalf("span %s lacks strip arg: %v", e.Name, e.Args)
			}
		case "C":
			counters++
			if _, ok := e.Args["value"]; !ok {
				t.Fatalf("counter %s lacks value: %v", e.Name, e.Args)
			}
		case "M":
			if e.Name == "thread_name" {
				threadNames++
			}
		}
	}
	if spans != len(tr.Events) {
		t.Fatalf("%d X events for %d trace events", spans, len(tr.Events))
	}
	if counters == 0 {
		t.Fatal("no counter events (queue depth samples missing)")
	}
	if threadNames != 2 {
		t.Fatalf("%d thread_name metadata events, want 2", threadNames)
	}
}

// Dependency flow events: every recorded dep edge must export as an
// "s"/"f" pair joining the producer's completion to the consumer's
// start, on matching ids, never travelling backwards in time.
func TestPerfettoFlowEvents(t *testing.T) {
	s := newFig2(20000, 8)
	p, err := compiler.Compile(s.graph(), compiler.DefaultOptions(svm.DefaultSRF(s.m)))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Defaults()
	tr := &Trace{}
	cfg.Trace = tr
	mustRun2(t, s.m, p, cfg)

	flows := tr.Flows()
	if len(flows) == 0 {
		t.Fatal("no dependency flows recorded (fig2 kernels depend on gathers)")
	}
	for _, f := range flows {
		if f.ToT < f.FromT {
			t.Fatalf("flow %q travels backwards: %d -> %d", f.Name, f.FromT, f.ToT)
		}
	}

	var buf bytes.Buffer
	if err := tr.WritePerfetto(&buf, "fig2", 3400); err != nil {
		t.Fatal(err)
	}
	var tf traceFile
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	starts := map[int]float64{}
	var ends int
	for _, e := range tf.TraceEvents {
		switch e.Ph {
		case "s":
			if e.Cat != "dep" || e.ID == 0 {
				t.Fatalf("flow start %+v lacks cat/id", e)
			}
			starts[e.ID] = e.Ts
		case "f":
			if e.BP != "e" {
				t.Fatalf("flow end %+v must bind to the enclosing slice (bp=e)", e)
			}
			from, ok := starts[e.ID]
			if !ok {
				t.Fatalf("flow end id %d has no start", e.ID)
			}
			if e.Ts < from {
				t.Fatalf("flow id %d ends at %v before start %v", e.ID, e.Ts, from)
			}
			ends++
		}
	}
	if len(starts) != len(flows) || ends != len(flows) {
		t.Fatalf("%d starts / %d ends for %d flows", len(starts), ends, len(flows))
	}
}

// The tentpole's acceptance check: the timeline must show gathers
// hiding behind kernels when double buffering is on, and the ablation
// with DoubleBuffer=false must visibly serialise.
func TestOverlapVisibleOnlyWithDoubleBuffering(t *testing.T) {
	run := func(double bool) float64 {
		s := newFig2(40000, 30)
		opt := compiler.DefaultOptions(svm.DefaultSRF(s.m))
		opt.DoubleBuffer = double
		p, err := compiler.Compile(s.graph(), opt)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Defaults()
		tr := &Trace{}
		cfg.Trace = tr
		mustRun2(t, s.m, p, cfg)
		return tr.OverlapEfficiency()
	}
	with, without := run(true), run(false)
	if with < 0.3 {
		t.Fatalf("double-buffered overlap %v, want substantial (> 0.3)", with)
	}
	if without > 0.1 {
		t.Fatalf("single-buffered overlap %v, want near zero", without)
	}
	if with <= without {
		t.Fatalf("overlap %v (double) vs %v (single): ablation invisible", with, without)
	}
}

func TestByPhaseAndCounterSamples(t *testing.T) {
	tr := &Trace{Events: []TraceEvent{
		{Name: "a#0", Kind: wq.Gather, Phase: 0, Start: 0, End: 10},
		{Name: "b#0", Kind: wq.Gather, Phase: 1, Start: 10, End: 40},
	}}
	tr.sample("wq depth", 5, 3)
	by := tr.ByPhase()
	if by[0] != 10 || by[1] != 30 {
		t.Fatalf("ByPhase = %v", by)
	}
	if len(tr.Counters) != 1 || tr.Counters[0].V != 3 {
		t.Fatalf("counters = %v", tr.Counters)
	}
}
