package exec

import (
	"testing"

	"streamgpp/internal/compiler"
	"streamgpp/internal/svm"
)

// A smaller work-queue window must still complete correctly (the
// control thread blocks on ErrFull and resumes).
func TestSmallQueueCapacityStillCompletes(t *testing.T) {
	s := newFig2(30000, 8)
	want := s.reference()
	p, err := compiler.Compile(s.graph(), compiler.DefaultOptions(svm.DefaultSRF(s.m)))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Defaults()
	cfg.QueueCapacity = 8
	res := mustRun2(t, s.m, p, cfg)
	if res.Cycles == 0 {
		t.Fatal("no cycles")
	}
	for i := 0; i < s.n; i++ {
		if s.y.At(i, 0) != want[i] {
			t.Fatalf("y[%d] wrong with capacity 8", i)
		}
	}
	if res.Queue.MaxOccupancy() > 8 {
		t.Fatalf("occupancy %d exceeded capacity 8", res.Queue.MaxOccupancy())
	}
}

// Higher control overhead must slow the run, never break it.
func TestControlOverheadMonotone(t *testing.T) {
	run := func(overhead uint64) uint64 {
		s := newFig2(30000, 8)
		p, err := compiler.Compile(s.graph(), compiler.DefaultOptions(svm.DefaultSRF(s.m)))
		if err != nil {
			t.Fatal(err)
		}
		cfg := Defaults()
		cfg.ControlOverheadCycles = overhead
		return mustRun2(t, s.m, p, cfg).Cycles
	}
	// A modest overhead hides in the control thread's slack on this
	// memory-bound program; an extreme one must show up in the makespan.
	cheap, dear := run(2), run(20000)
	if dear <= cheap {
		t.Fatalf("control overhead had no cost: %d vs %d", cheap, dear)
	}
}

// Wider regular MLP can only help the baseline.
func TestRegularMLPMonotone(t *testing.T) {
	run := func(mlp int) uint64 {
		s := newFig2(60000, 2)
		cfg := Defaults()
		cfg.RegularMLP = mlp
		return RunRegular(s.m, cfg, s.regularLoops()...).Cycles
	}
	narrow, wide := run(1), run(8)
	if wide > narrow {
		t.Fatalf("MLP 8 (%d) slower than MLP 1 (%d)", wide, narrow)
	}
}

// RegularRefOps inflates the baseline proportionally to its reference
// count.
func TestRegularRefOpsCharged(t *testing.T) {
	run := func(refOps int64) uint64 {
		s := newFig2(20000, 8)
		cfg := Defaults()
		cfg.RegularRefOps = refOps
		return RunRegular(s.m, cfg, s.regularLoops()...).Cycles
	}
	none, some := run(0), run(10)
	if some <= none {
		t.Fatal("RegularRefOps not charged")
	}
	// 7 refs per element over two loops at 10 ops each ≈ 70n extra ops.
	extra := some - none
	if extra < 20000*50 {
		t.Fatalf("ref ops charge too small: %d", extra)
	}
}

// KindCycles must partition the busy time across G/K/S sensibly.
func TestKindCyclesAccounting(t *testing.T) {
	s := newFig2(30000, 8)
	p, err := compiler.Compile(s.graph(), compiler.DefaultOptions(svm.DefaultSRF(s.m)))
	if err != nil {
		t.Fatal(err)
	}
	res := mustRun2(t, s.m, p, Defaults())
	for k, c := range res.KindCycles {
		if c == 0 {
			t.Fatalf("kind %d has no cycles", k)
		}
	}
}
