package exec

import (
	"fmt"

	"streamgpp/internal/obs"
	"streamgpp/internal/sim"
	"streamgpp/internal/wq"
)

// This file attributes the coverage profiler's per-context counters
// (sim/coverage.go) to the task kinds and schedule phases that
// generated them: the executors bracket every task execution with a
// snapshot of the running context's coverage and bandwidth counters
// and accumulate the delta into {gather, kernel, scatter} × phase
// cells. Snapshots only read counters — they never advance a clock —
// so attribution cannot perturb simulated timing; and because each
// context owns its counter slot, the interleaved two-context schedule
// cannot misattribute the sibling's traffic to the wrong task.

// covCell is one attribution bucket.
type covCell struct {
	cov sim.CoverageStats
	bw  sim.BWStats
}

// covAttr accumulates per-kind and per-phase attribution for one run.
// A nil *covAttr (machine without an observer) is a no-op on every
// method, mirroring tlSampler.
type covAttr struct {
	m       *sim.Machine
	pre     [2]covCell // per-context snapshot at taskStart
	byKind  [3]covCell
	byPhase map[int]*covCell
	phases  []int // byPhase keys in first-seen order
}

// newCovAttr returns an attributor for the run, or nil when the
// machine has no metrics registry (the zero-cost case).
func newCovAttr(m *sim.Machine) *covAttr {
	if m.Observer() == nil {
		return nil
	}
	return &covAttr{m: m, byPhase: make(map[int]*covCell)}
}

// taskStart snapshots the executing context's counters.
func (ca *covAttr) taskStart(ctx int) {
	if ca == nil {
		return
	}
	ca.pre[ctx] = covCell{cov: ca.m.Coverage(ctx), bw: ca.m.Bandwidth(ctx)}
}

// taskEnd charges the counters the task moved to its kind and phase.
func (ca *covAttr) taskEnd(ctx int, kind wq.Kind, phase int) {
	if ca == nil {
		return
	}
	d := covCell{
		cov: ca.m.Coverage(ctx).Delta(ca.pre[ctx].cov),
		bw:  ca.m.Bandwidth(ctx).Delta(ca.pre[ctx].bw),
	}
	kc := &ca.byKind[kind]
	kc.cov.Add(d.cov)
	kc.bw.Add(d.bw)
	pc := ca.byPhase[phase]
	if pc == nil {
		pc = &covCell{}
		ca.byPhase[phase] = pc
		ca.phases = append(ca.phases, phase)
	}
	pc.cov.Add(d.cov)
	pc.bw.Add(d.bw)
}

// publish writes the attribution into the registry as coverage.kind.*,
// bw.kind.*, coverage.phase.* and bw.phase.* gauges. Kind keys are
// always present (deterministic key set); phase keys exist for the
// phases the schedule actually ran.
func (ca *covAttr) publish(r *obs.Registry) {
	if ca == nil || r == nil {
		return
	}
	for k := range ca.byKind {
		kn := wq.Kind(k).String()
		cell := &ca.byKind[k]
		r.Gauge("coverage.kind." + kn + ".fast_accesses").Set(float64(cell.cov.FastAccesses))
		r.Gauge("coverage.kind." + kn + ".slow_accesses").Set(float64(cell.cov.SlowAccesses))
		r.Gauge("bw.kind." + kn + ".dram_bytes").Set(float64(cell.bw.Bytes[sim.LevelMem]))
		r.Gauge("bw.kind." + kn + ".dram_cycles").Set(float64(cell.bw.Cycles[sim.LevelMem]))
		r.Gauge("bw.kind." + kn + ".l1_bytes").Set(float64(cell.bw.Bytes[sim.LevelL1]))
		r.Gauge("bw.kind." + kn + ".l2_bytes").Set(float64(cell.bw.Bytes[sim.LevelL2]))
	}
	for _, p := range ca.phases {
		cell := ca.byPhase[p]
		pre := fmt.Sprintf("coverage.phase.%d.", p)
		r.Gauge(pre + "fast_accesses").Set(float64(cell.cov.FastAccesses))
		r.Gauge(pre + "slow_accesses").Set(float64(cell.cov.SlowAccesses))
		r.Gauge(fmt.Sprintf("bw.phase.%d.dram_bytes", p)).Set(float64(cell.bw.Bytes[sim.LevelMem]))
	}
}
