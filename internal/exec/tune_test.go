package exec

import (
	"bytes"
	"strings"
	"testing"

	"streamgpp/internal/compiler"
	"streamgpp/internal/sim"
	"streamgpp/internal/svm"
)

func TestHalvingCandidates(t *testing.T) {
	c := HalvingCandidates(1000, 100)
	want := []int{500, 250, 125}
	if len(c) != len(want) {
		t.Fatalf("candidates %v", c)
	}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("candidates %v, want %v", c, want)
		}
	}
	if got := HalvingCandidates(10, 100); got != nil {
		t.Fatalf("empty ladder expected, got %v", got)
	}
}

func TestTuneStripSizeFindsBest(t *testing.T) {
	build := func(strip int) (*sim.Machine, *compiler.Program, error) {
		s := newFig2(60000, 4)
		opt := compiler.DefaultOptions(svm.DefaultSRF(s.m))
		opt.StripElems = strip
		prog, err := compiler.Compile(s.graph(), opt)
		if err != nil {
			return nil, nil, err
		}
		return s.m, prog, nil
	}
	res, err := TuneStripSize([]int{500, 1000, 2000}, Defaults(), build)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tried) != 4 { // auto + 3 candidates
		t.Fatalf("tried %v", res.Tried)
	}
	for cand, cyc := range res.Tried {
		if cyc < res.Cycles {
			t.Fatalf("candidate %d (%d cycles) beats reported best (%d)", cand, cyc, res.Cycles)
		}
	}
	if res.Cycles == 0 {
		t.Fatal("zero best cycles")
	}
}

func TestTuneStripSizeSkipsUncompilable(t *testing.T) {
	calls := 0
	build := func(strip int) (*sim.Machine, *compiler.Program, error) {
		calls++
		s := newFig2(5000, 4)
		// A tiny SRF: large strips fail to compile.
		srf, err := svm.NewSRF(s.m, 16<<10)
		if err != nil {
			return nil, nil, err
		}
		opt := compiler.DefaultOptions(srf)
		opt.StripElems = strip
		prog, err := compiler.Compile(s.graph(), opt)
		if err != nil {
			return nil, nil, err
		}
		return s.m, prog, nil
	}
	res, err := TuneStripSize([]int{1 << 20}, Defaults(), build)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Tried[1<<20]; ok {
		t.Fatal("uncompilable candidate recorded")
	}
	if _, ok := res.Tried[0]; !ok {
		t.Fatal("automatic candidate missing")
	}
}

func TestTuneStripSizeAllFail(t *testing.T) {
	build := func(strip int) (*sim.Machine, *compiler.Program, error) {
		return nil, nil, errAlways
	}
	if _, err := TuneStripSize([]int{10}, Defaults(), build); err == nil {
		t.Fatal("want error when nothing compiles")
	}
}

var errAlways = &tuneErr{}

type tuneErr struct{}

func (*tuneErr) Error() string { return "always fails" }

func TestTraceRecordsTimeline(t *testing.T) {
	s := newFig2(20000, 8)
	p, err := compiler.Compile(s.graph(), compiler.DefaultOptions(svm.DefaultSRF(s.m)))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Defaults()
	tr := &Trace{}
	cfg.Trace = tr
	res := mustRun2(t, s.m, p, cfg)

	if len(tr.Events) != len(p.Tasks) {
		t.Fatalf("trace has %d events for %d tasks", len(tr.Events), len(p.Tasks))
	}
	start, end := tr.Span()
	if end <= start || end > res.Cycles+start+1000 {
		t.Fatalf("span [%d,%d] vs cycles %d", start, end, res.Cycles)
	}
	// Events must have sane intervals and known contexts.
	for _, e := range tr.Events {
		if e.End < e.Start {
			t.Fatalf("event %s ends before it starts", e.Name)
		}
		if e.Ctx != 0 && e.Ctx != 1 {
			t.Fatalf("event %s on context %d", e.Name, e.Ctx)
		}
	}
	// Kernels on ctx 0 (control+compute), memory ops on ctx 1.
	for _, e := range tr.Events {
		if e.Kind.Queue() == 1 && e.Ctx != 0 { // ComputeQueue
			t.Fatalf("kernel %s ran on context %d", e.Name, e.Ctx)
		}
		if e.Kind.Queue() == 0 && e.Ctx != 1 { // MemQueue
			t.Fatalf("memory task %s ran on context %d", e.Name, e.Ctx)
		}
	}

	busy := tr.BusyCycles()
	if busy[0] == 0 || busy[1] == 0 {
		t.Fatalf("busy cycles %v", busy)
	}
	util := tr.Utilization()
	for ctx, u := range util {
		if u <= 0 || u > 1.01 {
			t.Fatalf("ctx%d utilization %v", ctx, u)
		}
	}
	kinds := tr.KindCycles()
	if len(kinds) != 3 {
		t.Fatalf("kind cycles %v", kinds)
	}

	var buf bytes.Buffer
	tr.Gantt(&buf, 60)
	out := buf.String()
	if !strings.Contains(out, "ctx0 |") || !strings.Contains(out, "ctx1 |") {
		t.Fatalf("gantt output:\n%s", out)
	}
	buf.Reset()
	tr.Summary(&buf)
	if !strings.Contains(buf.String(), "utilization") {
		t.Fatalf("summary output:\n%s", buf.String())
	}
}

func TestTraceEmpty(t *testing.T) {
	tr := &Trace{}
	if s, e := tr.Span(); s != 0 || e != 0 {
		t.Fatal("empty span")
	}
	var buf bytes.Buffer
	tr.Gantt(&buf, 40)
	if !strings.Contains(buf.String(), "empty") {
		t.Fatalf("gantt on empty trace: %q", buf.String())
	}
}
