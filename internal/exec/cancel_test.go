package exec

import (
	"context"
	"errors"
	"testing"

	"streamgpp/internal/fault"
)

// TestCancelledContextAborts: a run whose Config.Ctx is already
// cancelled must abort with a structured RunError (Op "cancel")
// wrapping context.Canceled, on both stream mappings.
func TestCancelledContextAborts(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := Defaults()
	cfg.Ctx = ctx

	for name, run := range map[string]func() error{
		"2ctx": func() error {
			s := newFig2(20000, 8)
			_, err := RunStream2Ctx(s.m, compileFig2(t, s), cfg)
			return err
		},
		"1ctx": func() error {
			s := newFig2(20000, 8)
			_, err := RunStream1Ctx(s.m, compileFig2(t, s), cfg)
			return err
		},
	} {
		err := run()
		if err == nil {
			t.Fatalf("%s: cancelled run completed", name)
		}
		var re *RunError
		if !errors.As(err, &re) {
			t.Fatalf("%s: error is not a RunError: %v", name, err)
		}
		if re.Op != "cancel" || !re.Cancelled() {
			t.Fatalf("%s: RunError = %+v, want Op cancel", name, re)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: cause is not context.Canceled: %v", name, err)
		}
		if !Cancelled(err) {
			t.Fatalf("%s: Cancelled(err) = false", name)
		}
	}
}

// TestDeadlineExceededAborts: an expired deadline reports the
// DeadlineExceeded cause (the streamd timed-out job state keys off
// this distinction).
func TestDeadlineExceededAborts(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	<-ctx.Done()
	cfg := Defaults()
	cfg.Ctx = ctx
	s := newFig2(20000, 8)
	_, err := RunStream2Ctx(s.m, compileFig2(t, s), cfg)
	if !errors.Is(err, context.DeadlineExceeded) || !Cancelled(err) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

// TestCancelSkipsDegradation: cancellation must not trigger the
// 2ctx→1ctx fallback even when degradation is armed — re-running
// sequentially would just blow past the same deadline.
func TestCancelSkipsDegradation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	fcfg := fault.Config{Seed: 5}
	s, _ := faultyFig2(20000, fcfg)
	cfg := Defaults()
	cfg.Ctx = ctx
	cfg.DegradeTo1Ctx = true
	res, err := RunStream2Ctx(s.m, compileFig2(t, s), cfg)
	if !Cancelled(err) {
		t.Fatalf("err = %v, want cancellation", err)
	}
	if res.Recovery.Degraded {
		t.Fatal("cancelled run degraded to 1ctx")
	}
}

// TestCancelledFalseForOtherFailures: simulated failures must not be
// mistaken for cancellation.
func TestCancelledFalseForOtherFailures(t *testing.T) {
	re := &RunError{Op: "retry", Err: ErrRetriesExhausted}
	if re.Cancelled() || Cancelled(re) {
		t.Fatal("retry exhaustion classified as cancellation")
	}
	if Cancelled(nil) {
		t.Fatal("Cancelled(nil) = true")
	}
}

// TestConfigFaultAttaches: Config.Fault must arm the injector exactly
// like sim.Machine.SetFaultInjector — faults fire, retries absorb
// them, and the same injector seed replays byte-identically — without
// any process-global state.
func TestConfigFaultAttaches(t *testing.T) {
	fcfg := fault.Config{Seed: 42}
	fcfg.Rate[fault.KernelFault] = 0.15
	fcfg.MaxPerKind[fault.KernelFault] = 6

	run := func() (Result, string, []float64) {
		s := newFig2(20000, 8)
		cfg := Defaults()
		cfg.Fault = fault.New(fcfg)
		res := mustRun2(t, s.m, compileFig2(t, s), cfg)
		out := make([]float64, s.n)
		for i := range out {
			out[i] = s.y.At(i, 0)
		}
		return res, cfg.Fault.TraceString(), out
	}
	res1, trace1, out1 := run()
	if res1.Recovery.FaultsInjected == 0 || res1.Recovery.Retries == 0 {
		t.Fatalf("Config.Fault injector never fired: %+v", res1.Recovery)
	}
	s := newFig2(20000, 8)
	want := s.reference()
	for i := range want {
		if out1[i] != want[i] {
			t.Fatalf("y[%d] wrong after Config.Fault retries", i)
		}
	}
	res2, trace2, _ := run()
	if trace1 != trace2 || res1.Cycles != res2.Cycles {
		t.Fatalf("per-run injector not replayable: cycles %d vs %d", res1.Cycles, res2.Cycles)
	}
}
