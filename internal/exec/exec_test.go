package exec

import (
	"testing"

	"streamgpp/internal/compiler"
	"streamgpp/internal/sdf"
	"streamgpp/internal/sim"
	"streamgpp/internal/svm"
)

func testMachine() *sim.Machine { return sim.MustNew(sim.PentiumD8300()) }

// mustRun2 / mustRun1 run a compiled program and fail the test on a
// RunError (the fault-free paths in these tests must never fault).
func mustRun2(t testing.TB, m *sim.Machine, p *compiler.Program, cfg Config) Result {
	t.Helper()
	res, err := RunStream2Ctx(m, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func mustRun1(t testing.TB, m *sim.Machine, p *compiler.Program, cfg Config) Result {
	t.Helper()
	res, err := RunStream1Ctx(m, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// fig2Setup builds the paper's Fig. 1/2 example in both styles: the
// stream graph (kernel1: d = a+b+c; kernel2: y[index5[i]] = d+x) and
// the equivalent regular loops.
type fig2Setup struct {
	m             *sim.Machine
	a, b, c, x, y *svm.Array
	d             *svm.Array // the regular code's intermediate array
	idx5          *svm.IndexArray
	n             int
	opsPerElem    int64
}

func newFig2(n int, opsPerElem int64) *fig2Setup {
	m := testMachine()
	l := svm.Layout("rec", svm.F("v", 8))
	s := &fig2Setup{
		m: m, n: n, opsPerElem: opsPerElem,
		a: svm.NewArray(m, "a", l, n), b: svm.NewArray(m, "b", l, n),
		c: svm.NewArray(m, "c", l, n), x: svm.NewArray(m, "x", l, n),
		y: svm.NewArray(m, "y", l, n), d: svm.NewArray(m, "d", l, n),
		idx5: svm.NewIndexArray(m, "index5", n),
	}
	for _, arr := range []*svm.Array{s.a, s.b, s.c, s.x} {
		arr.Fill(func(i, f int) float64 { return float64((i*13)%101) / 7 })
	}
	for i := range s.idx5.Idx {
		s.idx5.Idx[i] = int32((i*31 + 7) % n)
	}
	return s
}

func (s *fig2Setup) graph() *sdf.Graph {
	l := s.a.Layout
	k1 := &svm.Kernel{Name: "kernel1", OpsPerElem: s.opsPerElem,
		Fn: func(ins, outs []*svm.Stream, start, n int) int64 {
			for i := start; i < start+n; i++ {
				outs[0].Set(i, 0, ins[0].At(i, 0)+ins[1].At(i, 0)+ins[2].At(i, 0))
			}
			return 0
		}}
	k2 := &svm.Kernel{Name: "kernel2", OpsPerElem: s.opsPerElem,
		Fn: func(ins, outs []*svm.Stream, start, n int) int64 {
			for i := start; i < start+n; i++ {
				outs[0].Set(i, 0, ins[0].At(i, 0)+ins[1].At(i, 0))
			}
			return 0
		}}
	g := sdf.New("fig2")
	as := g.Input(svm.StreamOf("as", s.n, l, l.AllFields()), sdf.Bind(s.a))
	bs := g.Input(svm.StreamOf("bs", s.n, l, l.AllFields()), sdf.Bind(s.b))
	cs := g.Input(svm.StreamOf("cs", s.n, l, l.AllFields()), sdf.Bind(s.c))
	ds := g.AddKernel(k1, []*sdf.Edge{as, bs, cs}, []*svm.Stream{svm.NewStream("ds", s.n, svm.F("v", 8))})
	xs := g.Input(svm.StreamOf("xs", s.n, l, l.AllFields()), sdf.Bind(s.x))
	ys := g.AddKernel(k2, []*sdf.Edge{ds[0], xs}, []*svm.Stream{svm.NewStream("ys", s.n, svm.F("v", 8))})
	g.Output(ys[0], sdf.Bind(s.y).Indexed(s.idx5))
	return g
}

// regularLoops is the Fig. 1 version: two loops with an intermediate
// array d.
func (s *fig2Setup) regularLoops() []Loop {
	return []Loop{
		{
			Name: "loop1", N: s.n,
			Ops: func(i int) int64 { return s.opsPerElem },
			Refs: func(i int, emit func(sim.Addr, int, bool)) {
				emit(s.a.FieldAddr(i, 0), 8, false)
				emit(s.b.FieldAddr(i, 0), 8, false)
				emit(s.c.FieldAddr(i, 0), 8, false)
				emit(s.d.FieldAddr(i, 0), 8, true)
			},
			Body: func(i int) {
				s.d.Set(i, 0, s.a.At(i, 0)+s.b.At(i, 0)+s.c.At(i, 0))
			},
		},
		{
			Name: "loop2", N: s.n,
			Ops: func(i int) int64 { return s.opsPerElem },
			Refs: func(i int, emit func(sim.Addr, int, bool)) {
				emit(s.d.FieldAddr(i, 0), 8, false)
				emit(s.x.FieldAddr(i, 0), 8, false)
				emit(s.idx5.ElemAddr(i), svm.IndexElemBytes, false)
				emit(s.y.FieldAddr(int(s.idx5.Idx[i]), 0), 8, true)
			},
			Body: func(i int) {
				s.y.Set(int(s.idx5.Idx[i]), 0, s.d.At(i, 0)+s.x.At(i, 0))
			},
		},
	}
}

func (s *fig2Setup) reference() []float64 {
	out := make([]float64, s.n)
	for i := 0; i < s.n; i++ {
		d := s.a.At(i, 0) + s.b.At(i, 0) + s.c.At(i, 0)
		out[int(s.idx5.Idx[i])] = d + s.x.At(i, 0)
	}
	return out
}

func TestStream2CtxFunctionalEquivalence(t *testing.T) {
	s := newFig2(10000, 8)
	want := s.reference()
	g := s.graph()
	p, err := compiler.Compile(g, compiler.DefaultOptions(svm.DefaultSRF(s.m)))
	if err != nil {
		t.Fatal(err)
	}
	res := mustRun2(t, s.m, p, Defaults())
	if res.Cycles == 0 {
		t.Fatal("no cycles recorded")
	}
	for i := 0; i < s.n; i++ {
		if s.y.At(i, 0) != want[i] {
			t.Fatalf("y[%d] = %v, want %v", i, s.y.At(i, 0), want[i])
		}
	}
	if res.Queue.InFlight() != 0 {
		t.Fatalf("queue not drained: %d in flight", res.Queue.InFlight())
	}
	if res.Queue.MaxOccupancy() > res.Queue.Capacity() {
		t.Fatalf("occupancy %d exceeded capacity", res.Queue.MaxOccupancy())
	}
}

func TestRegularFunctionalEquivalence(t *testing.T) {
	s := newFig2(5000, 8)
	want := s.reference()
	res := RunRegular(s.m, Defaults(), s.regularLoops()...)
	if res.Cycles == 0 {
		t.Fatal("no cycles recorded")
	}
	for i := 0; i < s.n; i++ {
		if s.y.At(i, 0) != want[i] {
			t.Fatalf("y[%d] = %v, want %v", i, s.y.At(i, 0), want[i])
		}
	}
}

func TestStream1CtxFunctionalEquivalence(t *testing.T) {
	s := newFig2(8000, 8)
	want := s.reference()
	p, err := compiler.Compile(s.graph(), compiler.DefaultOptions(svm.DefaultSRF(s.m)))
	if err != nil {
		t.Fatal(err)
	}
	res := mustRun1(t, s.m, p, Defaults())
	if res.Cycles == 0 {
		t.Fatal("no cycles")
	}
	for i := 0; i < s.n; i++ {
		if s.y.At(i, 0) != want[i] {
			t.Fatalf("y[%d] mismatch", i)
		}
	}
}

// The same program must give identical results under every executor
// and wait policy.
func TestExecutorsAgree(t *testing.T) {
	ref := newFig2(6000, 20)
	want := ref.reference()

	for _, tc := range []struct {
		name string
		run  func(*fig2Setup) Result
	}{
		{"2ctx-mwait", func(s *fig2Setup) Result {
			p, _ := compiler.Compile(s.graph(), compiler.DefaultOptions(svm.DefaultSRF(s.m)))
			return mustRun2(t, s.m, p, Defaults())
		}},
		{"2ctx-pause", func(s *fig2Setup) Result {
			p, _ := compiler.Compile(s.graph(), compiler.DefaultOptions(svm.DefaultSRF(s.m)))
			cfg := Defaults()
			cfg.WaitPolicy = sim.PolicyPause
			return mustRun2(t, s.m, p, cfg)
		}},
		{"2ctx-os", func(s *fig2Setup) Result {
			p, _ := compiler.Compile(s.graph(), compiler.DefaultOptions(svm.DefaultSRF(s.m)))
			cfg := Defaults()
			cfg.WaitPolicy = sim.PolicyOS
			return mustRun2(t, s.m, p, cfg)
		}},
		{"1ctx", func(s *fig2Setup) Result {
			p, _ := compiler.Compile(s.graph(), compiler.DefaultOptions(svm.DefaultSRF(s.m)))
			return mustRun1(t, s.m, p, Defaults())
		}},
		{"regular", func(s *fig2Setup) Result {
			return RunRegular(s.m, Defaults(), s.regularLoops()...)
		}},
	} {
		s := newFig2(6000, 20)
		res := tc.run(s)
		if res.Cycles == 0 {
			t.Fatalf("%s: no cycles", tc.name)
		}
		for i := 0; i < s.n; i++ {
			if s.y.At(i, 0) != want[i] {
				t.Fatalf("%s: y[%d] = %v, want %v", tc.name, i, s.y.At(i, 0), want[i])
			}
		}
	}
}

// On a memory-bound workload whose arrays dwarf the cache the stream
// version must beat the regular version (the paper's headline claim —
// and the paper is explicit that the win needs "large numbers of
// elements (much bigger than the cache size)"; at cache-resident sizes
// regular code wins, which is the streamSPAS effect tested elsewhere).
func TestStreamBeatsRegularWhenMemoryBound(t *testing.T) {
	const n, ops = 400000, 2 // 3.2 MB per array vs 1 MB L2

	sReg := newFig2(n, ops)
	reg := RunRegular(sReg.m, Defaults(), sReg.regularLoops()...)

	s2 := newFig2(n, ops)
	p2, err := compiler.Compile(s2.graph(), compiler.DefaultOptions(svm.DefaultSRF(s2.m)))
	if err != nil {
		t.Fatal(err)
	}
	str2 := mustRun2(t, s2.m, p2, Defaults())

	s1 := newFig2(n, ops)
	p1, err := compiler.Compile(s1.graph(), compiler.DefaultOptions(svm.DefaultSRF(s1.m)))
	if err != nil {
		t.Fatal(err)
	}
	str1 := mustRun1(t, s1.m, p1, Defaults())

	sp2 := Speedup(reg, str2)
	sp1 := Speedup(reg, str1)
	t.Logf("regular=%d 2ctx=%d (%.2fx) 1ctx=%d (%.2fx)", reg.Cycles, str2.Cycles, sp2, str1.Cycles, sp1)
	if sp2 < 1.05 {
		t.Errorf("2-context stream speedup %.2f, want > 1.05 on a memory-bound program", sp2)
	}
	if str2.Cycles > str1.Cycles {
		t.Errorf("2-context (%d) should not lose to 1-context (%d)", str2.Cycles, str1.Cycles)
	}
}

// At very high arithmetic intensity both styles converge (Fig. 9's
// right-hand side).
func TestSpeedupConvergesWhenComputeBound(t *testing.T) {
	const n, ops = 20000, 600

	sReg := newFig2(n, ops)
	reg := RunRegular(sReg.m, Defaults(), sReg.regularLoops()...)

	s2 := newFig2(n, ops)
	p2, err := compiler.Compile(s2.graph(), compiler.DefaultOptions(svm.DefaultSRF(s2.m)))
	if err != nil {
		t.Fatal(err)
	}
	str2 := mustRun2(t, s2.m, p2, Defaults())

	sp := Speedup(reg, str2)
	t.Logf("compute-bound speedup %.3f", sp)
	if sp < 0.85 || sp > 1.25 {
		t.Errorf("compute-bound speedup %.2f, want ~1.0", sp)
	}
}

func TestSpeedupZeroStream(t *testing.T) {
	if Speedup(Result{Cycles: 10}, Result{}) != 0 {
		t.Fatal("zero-cycle stream should give 0")
	}
}

func TestRunRegularNilHooks(t *testing.T) {
	m := testMachine()
	res := RunRegular(m, Defaults(), Loop{Name: "empty", N: 10})
	if res.Cycles != 0 {
		// No refs, no ops, no body: only the drain. Either 0 or tiny.
		if res.Cycles > 100 {
			t.Fatalf("empty loop cost %d cycles", res.Cycles)
		}
	}
}

func TestExecDeterminism(t *testing.T) {
	run := func() uint64 {
		s := newFig2(10000, 8)
		p, _ := compiler.Compile(s.graph(), compiler.DefaultOptions(svm.DefaultSRF(s.m)))
		return mustRun2(t, s.m, p, Defaults()).Cycles
	}
	c0 := run()
	for i := 0; i < 2; i++ {
		if c := run(); c != c0 {
			t.Fatalf("nondeterministic: %d vs %d", c, c0)
		}
	}
}

// The SRF must stay essentially fully resident through an entire
// two-context run — the paper's "negligible number of misses" claim.
func TestSRFResidencyDuringRun(t *testing.T) {
	s := newFig2(50000, 4)
	srf := svm.DefaultSRF(s.m)
	opt := compiler.DefaultOptions(srf)
	opt.StripElems = 2000 // divides n, so every buffer byte is touched
	p, err := compiler.Compile(s.graph(), opt)
	if err != nil {
		t.Fatal(err)
	}
	mustRun2(t, s.m, p, Defaults())
	// Buffers of pure producer-consumer streams (ds) never generate
	// simulated traffic — kernel SRF accesses are folded into kernel
	// cost — so they are legitimately absent. Every buffer that was
	// touched must still be essentially fully resident.
	for _, b := range srf.Allocs() {
		res := s.m.Mem.L2.ResidentBytes(b.Base, b.Size)
		frac := float64(res) / float64(b.Size)
		if res > 0 && frac < 0.95 {
			t.Errorf("SRF buffer %s residency %.2f, want >= 0.95 (pinning violated)", b.Name, frac)
		}
	}
}
