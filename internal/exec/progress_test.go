package exec

import (
	"testing"

	"streamgpp/internal/compiler"
	"streamgpp/internal/svm"
)

// runFig2WithProgress runs the fig2 program on the chosen mapping with
// an optional frame collector and returns the result plus the frames.
func runFig2WithProgress(t *testing.T, n int, twoCtx, hook bool) (Result, []ProgressFrame) {
	t.Helper()
	s := newFig2(n, 8)
	p, err := compiler.Compile(s.graph(), compiler.DefaultOptions(svm.DefaultSRF(s.m)))
	if err != nil {
		t.Fatal(err)
	}
	var frames []ProgressFrame
	cfg := Defaults()
	if hook {
		cfg.Progress = func(f ProgressFrame) { frames = append(frames, f) }
	}
	if twoCtx {
		return mustRun2(t, s.m, p, cfg), frames
	}
	return mustRun1(t, s.m, p, cfg), frames
}

// The hook's contract: exactly one frame per completed task, Done
// strictly increasing up to Total, every frame locating a real
// phase/strip, and the final frame reporting completion.
func TestProgressFramesCoverTheSchedule(t *testing.T) {
	for _, tc := range []struct {
		name   string
		twoCtx bool
	}{{"2ctx", true}, {"1ctx", false}} {
		t.Run(tc.name, func(t *testing.T) {
			_, frames := runFig2WithProgress(t, 20000, tc.twoCtx, true)
			if len(frames) < 2 {
				t.Fatalf("only %d frames for a multi-strip schedule", len(frames))
			}
			total := frames[0].Total
			if total != len(frames) {
				t.Errorf("%d frames for %d tasks (want one per task)", len(frames), total)
			}
			for i, f := range frames {
				if f.Total != total {
					t.Fatalf("frame %d changed Total: %d → %d", i, total, f.Total)
				}
				if f.Done != i+1 {
					t.Fatalf("frame %d reports Done=%d, want %d (monotone, one per completion)", i, f.Done, i+1)
				}
				if f.Phase < 0 || f.Strip < 0 {
					t.Fatalf("frame %d has no task location: %+v", i, f)
				}
				if f.Retries != 0 {
					t.Fatalf("fault-free run reported retries: %+v", f)
				}
			}
			if last := frames[len(frames)-1]; last.Done != last.Total {
				t.Errorf("final frame %+v does not report completion", last)
			}
		})
	}
}

// Clock-neutrality: an attached hook must not move a single simulated
// cycle — the byte-identity guarantee streamd's live progress rides on
// (and the reason `-exp all -quick` output is unchanged with hooks
// enabled).
func TestProgressHookIsClockNeutral(t *testing.T) {
	for _, tc := range []struct {
		name   string
		twoCtx bool
	}{{"2ctx", true}, {"1ctx", false}} {
		t.Run(tc.name, func(t *testing.T) {
			bare, _ := runFig2WithProgress(t, 20000, tc.twoCtx, false)
			hooked, frames := runFig2WithProgress(t, 20000, tc.twoCtx, true)
			if bare.Cycles != hooked.Cycles {
				t.Fatalf("progress hook moved the clock: %d cycles bare, %d hooked",
					bare.Cycles, hooked.Cycles)
			}
			if bare.KindCycles != hooked.KindCycles {
				t.Fatalf("per-kind cycles differ: %v vs %v", bare.KindCycles, hooked.KindCycles)
			}
			if len(frames) == 0 {
				t.Fatal("hooked run produced no frames")
			}
		})
	}
}
