package exec

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"streamgpp/internal/obs"
	"streamgpp/internal/wq"
)

// TraceEvent records one task execution on one hardware context, with
// phase/strip attribution from the compiled schedule and enough DAG
// provenance (ID, live dependencies, admission cycle) for the
// critical-path profiler to reconstruct the schedule exactly.
type TraceEvent struct {
	Name       string
	Kind       wq.Kind
	Ctx        int
	Phase      int
	Strip      int
	Start, End uint64

	// ID is the task's schedule ID (wq.Task.ID). Multi-step apps reuse
	// IDs across steps; critpath splits such traces into rounds.
	ID int
	// Deps are the dependency task IDs that were still live (not yet
	// completed) when the task was admitted to the work queue — the
	// edges that could actually have constrained the schedule. Recorded
	// from wq.LiveDeps on the two-context path; the declared Deps on
	// the sequential path.
	Deps []int
	// Enqueue is the cycle the control thread admitted the task to the
	// work queue. On the sequential path admission and start coincide.
	Enqueue uint64
	// RunStart is the start cycle of the final (successful) execution
	// attempt; [Start, RunStart) is time lost to injected-fault retries
	// and is attributed to recovery on the critical path. Equal to
	// Start when the task ran clean.
	RunStart uint64
}

// admission is the queue-entry provenance noted by the control thread,
// joined to the completion-time TraceEvent by task ID.
type admission struct {
	t    uint64
	deps []int
}

// CounterSample is one point of a time-series counter recorded during
// execution (work-queue depth, for now). It becomes a Perfetto counter
// track on export.
type CounterSample struct {
	Name string
	T    uint64
	V    float64
}

// Trace collects the task timeline of a stream execution. Attach one
// to Config.Trace to capture where the cycles go: which context ran
// which task when, how well the gathers overlapped the kernels, and
// where the software pipeline stalled.
type Trace struct {
	Events   []TraceEvent
	Counters []CounterSample

	// admissions holds queue-entry provenance keyed by task ID between
	// the control thread's enqueue and the executing thread's
	// completion record. Entries are consumed (deleted) when joined, so
	// ID reuse across steps pairs each admission with its own round.
	admissions map[int]admission
}

// Reserve grows the event and counter buffers to hold at least the
// given totals, so a run of known task count appends without
// reallocating mid-execution.
func (tr *Trace) Reserve(events, counters int) {
	if n := len(tr.Events) + events; n > cap(tr.Events) {
		grown := make([]TraceEvent, len(tr.Events), n)
		copy(grown, tr.Events)
		tr.Events = grown
	}
	if n := len(tr.Counters) + counters; n > cap(tr.Counters) {
		grown := make([]CounterSample, len(tr.Counters), n)
		copy(grown, tr.Counters)
		tr.Counters = grown
	}
}

// record appends one event.
func (tr *Trace) record(e TraceEvent) { tr.Events = append(tr.Events, e) }

// noteAdmission records when the control thread admitted a task and
// which of its dependencies were still live at that moment.
func (tr *Trace) noteAdmission(id int, t uint64, deps []int) {
	if tr.admissions == nil {
		tr.admissions = make(map[int]admission)
	}
	tr.admissions[id] = admission{t: t, deps: deps}
}

// takeAdmission consumes the admission note for a task ID, if any.
func (tr *Trace) takeAdmission(id int) (admission, bool) {
	ad, ok := tr.admissions[id]
	if ok {
		delete(tr.admissions, id)
	}
	return ad, ok
}

// sample appends one counter point.
func (tr *Trace) sample(name string, t uint64, v float64) {
	tr.Counters = append(tr.Counters, CounterSample{Name: name, T: t, V: v})
}

// Span returns the first start and last end across all events.
func (tr *Trace) Span() (start, end uint64) {
	if len(tr.Events) == 0 {
		return 0, 0
	}
	start = tr.Events[0].Start
	for _, e := range tr.Events {
		if e.Start < start {
			start = e.Start
		}
		if e.End > end {
			end = e.End
		}
	}
	return start, end
}

// BusyCycles returns the cycles each context spent executing tasks.
func (tr *Trace) BusyCycles() map[int]uint64 {
	busy := map[int]uint64{}
	for _, e := range tr.Events {
		busy[e.Ctx] += e.End - e.Start
	}
	return busy
}

// Utilization returns each context's busy fraction over the trace span.
func (tr *Trace) Utilization() map[int]float64 {
	start, end := tr.Span()
	out := map[int]float64{}
	if end <= start {
		return out
	}
	for ctx, busy := range tr.BusyCycles() {
		out[ctx] = float64(busy) / float64(end-start)
	}
	return out
}

// KindCycles returns busy cycles grouped by task kind.
func (tr *Trace) KindCycles() map[wq.Kind]uint64 {
	out := map[wq.Kind]uint64{}
	for _, e := range tr.Events {
		out[e.Kind] += e.End - e.Start
	}
	return out
}

// ByPhase returns busy cycles grouped by schedule phase.
func (tr *Trace) ByPhase() map[int]uint64 {
	out := map[int]uint64{}
	for _, e := range tr.Events {
		out[e.Phase] += e.End - e.Start
	}
	return out
}

// BaseName removes a recognised strip suffix — "#<n>" or ".<n>" — from
// a task name. Names that merely end in digits (an operation called
// "fft2", say) pass through untouched. It is the grouping key for
// per-operation aggregation here and in the critical-path profiler.
func BaseName(name string) string {
	i := strings.LastIndexAny(name, "#.")
	if i < 0 || i == len(name)-1 {
		return name
	}
	for _, r := range name[i+1:] {
		if r < '0' || r > '9' {
			return name
		}
	}
	return name[:i]
}

// ByName aggregates busy cycles by task name with the "#<n>"/".<n>"
// strip suffix removed, so all strips of one operation group together.
func (tr *Trace) ByName() map[string]uint64 {
	out := map[string]uint64{}
	for _, e := range tr.Events {
		out[BaseName(e.Name)] += e.End - e.Start
	}
	return out
}

// mergeSpans collapses [start,end) intervals into a disjoint,
// ascending union.
func mergeSpans(spans [][2]uint64) [][2]uint64 {
	if len(spans) == 0 {
		return nil
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i][0] < spans[j][0] })
	out := [][2]uint64{spans[0]}
	for _, s := range spans[1:] {
		last := &out[len(out)-1]
		if s[0] <= last[1] {
			if s[1] > last[1] {
				last[1] = s[1]
			}
			continue
		}
		out = append(out, s)
	}
	return out
}

func totalLen(spans [][2]uint64) uint64 {
	var n uint64
	for _, s := range spans {
		n += s[1] - s[0]
	}
	return n
}

// intersectLen returns the overlap between two disjoint ascending
// interval unions.
func intersectLen(a, b [][2]uint64) uint64 {
	var n uint64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		lo := a[i][0]
		if b[j][0] > lo {
			lo = b[j][0]
		}
		hi := a[i][1]
		if b[j][1] < hi {
			hi = b[j][1]
		}
		if hi > lo {
			n += hi - lo
		}
		if a[i][1] < b[j][1] {
			i++
		} else {
			j++
		}
	}
	return n
}

// OverlapEfficiency measures how well bulk memory operations hid
// behind kernels: the time during which a memory task (gather/scatter)
// and a kernel ran simultaneously, divided by the smaller of the two
// busy totals. 1.0 means the cheaper side was perfectly hidden; a
// single-context or non-double-buffered run scores ~0 because its
// tasks serialise.
func (tr *Trace) OverlapEfficiency() float64 {
	var mem, kern [][2]uint64
	for _, e := range tr.Events {
		if e.End <= e.Start {
			continue
		}
		iv := [2]uint64{e.Start, e.End}
		if e.Kind == wq.KernelRun {
			kern = append(kern, iv)
		} else {
			mem = append(mem, iv)
		}
	}
	mu, ku := mergeSpans(mem), mergeSpans(kern)
	mb, kb := totalLen(mu), totalLen(ku)
	denom := mb
	if kb < denom {
		denom = kb
	}
	if denom == 0 {
		return 0
	}
	return float64(intersectLen(mu, ku)) / float64(denom)
}

// Gantt renders a text timeline, one row per context, width columns
// wide. Each cell shows the kind (G/K/S) of the task occupying that
// slice of time, '.' for idle. A compact way to see the software
// pipeline breathing — and stalling.
func (tr *Trace) Gantt(w io.Writer, width int) {
	if width <= 0 {
		width = 80
	}
	start, end := tr.Span()
	if end <= start {
		fmt.Fprintln(w, "(empty trace)")
		return
	}
	span := end - start
	ctxs := map[int]bool{}
	for _, e := range tr.Events {
		ctxs[e.Ctx] = true
	}
	var ids []int
	for c := range ctxs {
		ids = append(ids, c)
	}
	sort.Ints(ids)
	for _, ctx := range ids {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, e := range tr.Events {
			if e.Ctx != ctx {
				continue
			}
			// Half-open cell range so adjacent tasks don't bleed into
			// each other's columns; zero-length events still paint one
			// cell.
			lo := int(uint64(width) * (e.Start - start) / span)
			hi := int(uint64(width) * (e.End - start) / span)
			if lo >= width {
				lo = width - 1
			}
			if hi <= lo {
				hi = lo + 1
			}
			if hi > width {
				hi = width
			}
			for i := lo; i < hi; i++ {
				row[i] = e.Kind.String()[0]
			}
		}
		fmt.Fprintf(w, "ctx%d |%s|\n", ctx, row)
	}
	fmt.Fprintf(w, "      %d cycles, G=gather K=kernel S=scatter .=idle\n", span)
}

// Summary renders the per-operation cycle totals, largest first.
func (tr *Trace) Summary(w io.Writer) {
	type kv struct {
		name   string
		cycles uint64
	}
	var rows []kv
	for name, cyc := range tr.ByName() {
		rows = append(rows, kv{name, cyc})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].cycles != rows[j].cycles {
			return rows[i].cycles > rows[j].cycles
		}
		return rows[i].name < rows[j].name
	})
	for _, r := range rows {
		fmt.Fprintf(w, "  %-28s %12d\n", r.name, r.cycles)
	}
	var ctxs []int
	util := tr.Utilization()
	for ctx := range util {
		ctxs = append(ctxs, ctx)
	}
	sort.Ints(ctxs)
	for _, ctx := range ctxs {
		fmt.Fprintf(w, "  ctx%d utilization: %.0f%%\n", ctx, 100*util[ctx])
	}
}

// kindCat maps a task kind to its Perfetto category.
func kindCat(k wq.Kind) string {
	switch k {
	case wq.Gather:
		return "gather"
	case wq.KernelRun:
		return "kernel"
	case wq.Scatter:
		return "scatter"
	}
	return "task"
}

// Spans converts the trace to generic obs spans for export.
func (tr *Trace) Spans() []obs.Span {
	spans := make([]obs.Span, 0, len(tr.Events))
	for _, e := range tr.Events {
		spans = append(spans, obs.Span{
			Name:  e.Name,
			Cat:   kindCat(e.Kind),
			Track: e.Ctx,
			Start: e.Start,
			Dur:   e.End - e.Start,
			Args:  map[string]int64{"phase": int64(e.Phase), "strip": int64(e.Strip)},
		})
	}
	return spans
}

// Flows derives the dependency arrows of the trace: one obs.Flow per
// recorded live dependency, from the producer's end to the dependent's
// start. Events are scanned in recorded (completion) order, so in a
// trace with reused task IDs (multi-step apps) each dependent binds to
// the most recent completion of its producer — its own round.
func (tr *Trace) Flows() []obs.Flow {
	last := map[int]int{} // task ID → index of latest completed event
	var flows []obs.Flow
	for i, e := range tr.Events {
		for _, d := range e.Deps {
			pi, ok := last[d]
			if !ok {
				continue
			}
			p := tr.Events[pi]
			flows = append(flows, obs.Flow{
				Name:      fmt.Sprintf("%s->%s", p.Name, e.Name),
				FromTrack: p.Ctx, FromT: p.End,
				ToTrack: e.Ctx, ToT: e.Start,
			})
		}
		last[e.ID] = i
	}
	return flows
}

// WritePerfetto exports the trace as Chrome trace_event JSON, loadable
// at ui.perfetto.dev: one track per hardware context plus a work-queue
// depth counter track. label names the process; cyclesPerUsec scales
// simulated cycles to display time (pass the core frequency in MHz, or
// 0 for 1 cycle = 1 µs).
func (tr *Trace) WritePerfetto(w io.Writer, label string, cyclesPerUsec float64) error {
	return tr.WritePerfettoTimeline(w, label, cyclesPerUsec, nil)
}

// WritePerfettoTimeline is WritePerfetto with the cycle-windowed
// timeline sampler's series merged in as additional counter tracks
// (SRF occupancy, per-queue depth, outstanding misses, overlap
// efficiency, recovery events). Pass a nil timeline to export the
// trace's own counters only.
func (tr *Trace) WritePerfettoTimeline(w io.Writer, label string, cyclesPerUsec float64, tl *obs.Timeline) error {
	return tr.WritePerfettoExtra(w, label, cyclesPerUsec, tl, nil, nil)
}

// WritePerfettoExtra is WritePerfettoTimeline with caller-supplied
// extra tracks and spans appended — the critical-path profiler uses it
// to add a dedicated track highlighting the longest path through the
// run. Dependency edges are always exported as flow arrows.
func (tr *Trace) WritePerfettoExtra(w io.Writer, label string, cyclesPerUsec float64, tl *obs.Timeline, extraTracks map[int]string, extraSpans []obs.Span) error {
	tracks := map[int]string{}
	for _, e := range tr.Events {
		if _, ok := tracks[e.Ctx]; !ok {
			name := fmt.Sprintf("ctx%d", e.Ctx)
			switch e.Ctx {
			case 0:
				name = "ctx0 control+compute"
			case 1:
				name = "ctx1 memory"
			}
			tracks[e.Ctx] = name
		}
	}
	for t, name := range extraTracks {
		tracks[t] = name
	}
	counters := make([]obs.CounterPoint, 0, len(tr.Counters))
	for _, c := range tr.Counters {
		counters = append(counters, obs.CounterPoint{Name: c.Name, T: c.T, V: c.V})
	}
	counters = append(counters, tl.CounterPoints()...)
	spans := tr.Spans()
	if len(extraSpans) > 0 {
		spans = append(spans, extraSpans...)
	}
	return obs.WriteTraceEventsFlows(w, obs.TraceMeta{
		Process:       label,
		Tracks:        tracks,
		CyclesPerUsec: cyclesPerUsec,
	}, spans, counters, tr.Flows())
}
