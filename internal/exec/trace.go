package exec

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"streamgpp/internal/wq"
)

// TraceEvent records one task execution on one hardware context.
type TraceEvent struct {
	Name       string
	Kind       wq.Kind
	Ctx        int
	Start, End uint64
}

// Trace collects the task timeline of a stream execution. Attach one
// to Config.Trace to capture where the cycles go: which context ran
// which task when, how well the gathers overlapped the kernels, and
// where the software pipeline stalled.
type Trace struct {
	Events []TraceEvent
}

// record appends one event.
func (tr *Trace) record(e TraceEvent) { tr.Events = append(tr.Events, e) }

// Span returns the first start and last end across all events.
func (tr *Trace) Span() (start, end uint64) {
	if len(tr.Events) == 0 {
		return 0, 0
	}
	start = tr.Events[0].Start
	for _, e := range tr.Events {
		if e.Start < start {
			start = e.Start
		}
		if e.End > end {
			end = e.End
		}
	}
	return start, end
}

// BusyCycles returns the cycles each context spent executing tasks.
func (tr *Trace) BusyCycles() map[int]uint64 {
	busy := map[int]uint64{}
	for _, e := range tr.Events {
		busy[e.Ctx] += e.End - e.Start
	}
	return busy
}

// Utilization returns each context's busy fraction over the trace span.
func (tr *Trace) Utilization() map[int]float64 {
	start, end := tr.Span()
	out := map[int]float64{}
	if end <= start {
		return out
	}
	for ctx, busy := range tr.BusyCycles() {
		out[ctx] = float64(busy) / float64(end-start)
	}
	return out
}

// KindCycles returns busy cycles grouped by task kind.
func (tr *Trace) KindCycles() map[wq.Kind]uint64 {
	out := map[wq.Kind]uint64{}
	for _, e := range tr.Events {
		out[e.Kind] += e.End - e.Start
	}
	return out
}

// ByName aggregates busy cycles by task name with trailing strip
// numbers removed, so all strips of one operation group together.
func (tr *Trace) ByName() map[string]uint64 {
	out := map[string]uint64{}
	for _, e := range tr.Events {
		out[strings.TrimRight(e.Name, "0123456789")] += e.End - e.Start
	}
	return out
}

// Gantt renders a text timeline, one row per context, width columns
// wide. Each cell shows the kind (G/K/S) of the task occupying that
// slice of time, '.' for idle. A compact way to see the software
// pipeline breathing — and stalling.
func (tr *Trace) Gantt(w io.Writer, width int) {
	if width <= 0 {
		width = 80
	}
	start, end := tr.Span()
	if end <= start {
		fmt.Fprintln(w, "(empty trace)")
		return
	}
	span := end - start
	ctxs := map[int]bool{}
	for _, e := range tr.Events {
		ctxs[e.Ctx] = true
	}
	var ids []int
	for c := range ctxs {
		ids = append(ids, c)
	}
	sort.Ints(ids)
	for _, ctx := range ids {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, e := range tr.Events {
			if e.Ctx != ctx {
				continue
			}
			lo := int(uint64(width) * (e.Start - start) / span)
			hi := int(uint64(width) * (e.End - start) / span)
			if hi >= width {
				hi = width - 1
			}
			for i := lo; i <= hi; i++ {
				row[i] = e.Kind.String()[0]
			}
		}
		fmt.Fprintf(w, "ctx%d |%s|\n", ctx, row)
	}
	fmt.Fprintf(w, "      %d cycles, G=gather K=kernel S=scatter .=idle\n", span)
}

// Summary renders the per-operation cycle totals, largest first.
func (tr *Trace) Summary(w io.Writer) {
	type kv struct {
		name   string
		cycles uint64
	}
	var rows []kv
	for name, cyc := range tr.ByName() {
		rows = append(rows, kv{name, cyc})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].cycles != rows[j].cycles {
			return rows[i].cycles > rows[j].cycles
		}
		return rows[i].name < rows[j].name
	})
	for _, r := range rows {
		fmt.Fprintf(w, "  %-28s %12d\n", r.name, r.cycles)
	}
	for ctx, u := range tr.Utilization() {
		fmt.Fprintf(w, "  ctx%d utilization: %.0f%%\n", ctx, 100*u)
	}
}
