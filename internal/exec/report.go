package exec

import (
	"fmt"
	"io"

	"streamgpp/internal/sim"
)

// CtxBreakdown attributes one hardware context's cycles over a run.
type CtxBreakdown struct {
	Ctx     int
	Compute uint64 // executing kernel / control arithmetic
	Memory  uint64 // driving bulk gathers and scatters
	DepWait uint64 // spinning or sleeping on the work queue (spin+mwait)
	Idle    uint64 // remainder of the makespan
	Total   uint64 // the run's makespan
}

// Bound names the dominant component.
func (b CtxBreakdown) Bound() string {
	max, name := b.Compute, "compute-bound"
	if b.Memory > max {
		max, name = b.Memory, "memory-bound"
	}
	if b.DepWait > max {
		max, name = b.DepWait, "dependency-wait"
	}
	if b.Idle > max {
		name = "idle"
	}
	return name
}

// StallReport is the per-context attribution of a whole run.
type StallReport struct {
	Contexts []CtxBreakdown
	// Recovery carries the run's fault/retry/degradation accounting
	// (all zeros without fault injection).
	Recovery RecoverySummary
}

// NewStallReport builds the attribution from a run's result.
func NewStallReport(res Result) StallReport {
	rep := newStallReport(res.Run)
	rep.Recovery = res.Recovery
	return rep
}

// newStallReport builds the per-context attribution from raw run
// statistics.
func newStallReport(st sim.RunStats) StallReport {
	var rep StallReport
	for i := range st.ProcCycles {
		b := CtxBreakdown{
			Ctx:     i,
			Compute: st.ComputeCycles[i],
			Memory:  st.MemCycles[i],
			DepWait: st.SpinCycles[i] + st.SleepCycles[i],
			Total:   st.Cycles,
		}
		busy := b.Compute + b.Memory + b.DepWait
		if st.Cycles > busy {
			b.Idle = st.Cycles - busy
		}
		rep.Contexts = append(rep.Contexts, b)
	}
	return rep
}

func pct(part, total uint64) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(part) / float64(total)
}

// Render writes the attribution as an aligned table.
func (rep StallReport) Render(w io.Writer) {
	fmt.Fprintf(w, "  %-5s %14s %14s %14s %14s  %s\n",
		"ctx", "compute", "memory", "dep-wait", "idle", "bound")
	for _, b := range rep.Contexts {
		fmt.Fprintf(w, "  ctx%-2d %9d %3.0f%% %9d %3.0f%% %9d %3.0f%% %9d %3.0f%%  %s\n",
			b.Ctx,
			b.Compute, pct(b.Compute, b.Total),
			b.Memory, pct(b.Memory, b.Total),
			b.DepWait, pct(b.DepWait, b.Total),
			b.Idle, pct(b.Idle, b.Total),
			b.Bound())
	}
	if rep.Recovery.Any() {
		fmt.Fprintf(w, "  recovery: %s\n", rep.Recovery)
	}
}
