package exec

import (
	"errors"
	"strings"
	"testing"

	"streamgpp/internal/compiler"
	"streamgpp/internal/fault"
	"streamgpp/internal/sim"
	"streamgpp/internal/svm"
	"streamgpp/internal/wq"
)

// faultyFig2 is a fig2 setup whose machine carries a fault injector.
func faultyFig2(n int, cfg fault.Config) (*fig2Setup, *fault.Injector) {
	s := newFig2(n, 8)
	in := fault.New(cfg)
	s.m.SetFaultInjector(in)
	return s, in
}

func compileFig2(t *testing.T, s *fig2Setup) *compiler.Program {
	t.Helper()
	p, err := compiler.Compile(s.graph(), compiler.DefaultOptions(svm.DefaultSRF(s.m)))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// The acceptance criterion: an attached injector with every rate at
// zero must not move a single cycle, consume a single draw, or record
// any recovery activity relative to no injector at all.
func TestZeroRateInjectorByteIdentical(t *testing.T) {
	plain := newFig2(20000, 8)
	base := mustRun2(t, plain.m, compileFig2(t, plain), Defaults())

	s, in := faultyFig2(20000, fault.Config{Seed: 123})
	res := mustRun2(t, s.m, compileFig2(t, s), Defaults())

	if res.Cycles != base.Cycles {
		t.Fatalf("rate-0 injector moved cycles: %d vs %d", res.Cycles, base.Cycles)
	}
	if in.Draws() != 0 {
		t.Fatalf("rate-0 injector consumed %d draws", in.Draws())
	}
	if res.Recovery.Any() {
		t.Fatalf("rate-0 injector recorded recovery: %+v", res.Recovery)
	}
	for i := 0; i < plain.n; i++ {
		if s.y.At(i, 0) != plain.y.At(i, 0) {
			t.Fatalf("y[%d] differs under rate-0 injector", i)
		}
	}
}

// Injected kernel faults and poisoned strips must be absorbed by
// strip-level retry: the run completes, results are exactly the
// fault-free reference, and the retries are accounted.
func TestRetryAbsorbsStripFaults(t *testing.T) {
	cfg := fault.Config{Seed: 42}
	cfg.Rate[fault.KernelFault] = 0.15
	cfg.Rate[fault.PoisonedStrip] = 0.15
	cfg.MaxPerKind[fault.KernelFault] = 6
	cfg.MaxPerKind[fault.PoisonedStrip] = 6
	s, in := faultyFig2(20000, cfg)
	want := s.reference()

	res, err := RunStream2Ctx(s.m, compileFig2(t, s), Defaults())
	if err != nil {
		t.Fatalf("faulted run did not recover: %v", err)
	}
	for i := 0; i < s.n; i++ {
		if s.y.At(i, 0) != want[i] {
			t.Fatalf("y[%d] wrong after retries", i)
		}
	}
	if in.Total() == 0 {
		t.Fatal("no faults fired — test exercised nothing")
	}
	if res.Recovery.Retries == 0 || res.Recovery.Retries != in.Total() {
		t.Fatalf("retries %d, faults %d — every absorbed fault is one retry",
			res.Recovery.Retries, in.Total())
	}
	if res.Recovery.FaultsInjected != in.Total() {
		t.Fatalf("recovery attributes %d faults, injector fired %d",
			res.Recovery.FaultsInjected, in.Total())
	}
}

// Replaying the same seed must reproduce the identical fault trace and
// the identical cycle count — the debuggability core of the subsystem.
func TestFaultReplayIsByteIdentical(t *testing.T) {
	run := func() (uint64, string) {
		cfg := fault.Config{Seed: 7}
		cfg.Rate[fault.KernelFault] = 0.5
		cfg.MaxPerKind[fault.KernelFault] = 3
		cfg.Rate[fault.PoisonedStrip] = 0.3
		cfg.MaxPerKind[fault.PoisonedStrip] = 4
		cfg.Rate[fault.LatencySpike] = 0.05
		cfg.MaxPerKind[fault.LatencySpike] = 4
		s, in := faultyFig2(15000, cfg)
		res, err := RunStream2Ctx(s.m, compileFig2(t, s), Defaults())
		if err != nil {
			t.Fatalf("faulted run did not recover: %v", err)
		}
		return res.Cycles, in.TraceString()
	}
	c1, t1 := run()
	c2, t2 := run()
	if c1 != c2 {
		t.Fatalf("replay cycles differ: %d vs %d", c1, c2)
	}
	if t1 != t2 || t1 == "" {
		t.Fatalf("replay fault traces differ:\n%s\nvs\n%s", t1, t2)
	}
}

// When retries exhaust, the guarded two-context run must degrade to the
// sequential schedule from restored array state and still produce the
// correct results, with the degradation accounted.
func TestDegradationTo1Ctx(t *testing.T) {
	cfg := fault.Config{Seed: 9}
	cfg.Rate[fault.KernelFault] = 1 // every kernel attempt faults...
	cfg.MaxPerKind[fault.KernelFault] = 5
	s, in := faultyFig2(10000, cfg)
	want := s.reference()

	ecfg := Defaults()
	ecfg.RetryLimit = 2 // ...so the budget exhausts on the first strip
	res, err := RunStream2Ctx(s.m, compileFig2(t, s), ecfg)
	if err != nil {
		t.Fatalf("degraded run failed: %v", err)
	}
	if !res.Recovery.Degraded {
		t.Fatal("run did not degrade despite exhausted retries")
	}
	if res.Recovery.AbortedCycles == 0 {
		t.Fatal("aborted attempt's cycles not recorded")
	}
	if in.Injected(fault.KernelFault) == 0 {
		t.Fatal("no kernel faults fired")
	}
	for i := 0; i < s.n; i++ {
		if s.y.At(i, 0) != want[i] {
			t.Fatalf("y[%d] wrong after degradation", i)
		}
	}
}

// With degradation disabled, exhausted retries must surface as a
// RunError naming the task, strip, phase and cycle.
func TestRetriesExhaustedError(t *testing.T) {
	cfg := fault.Config{Seed: 9}
	cfg.Rate[fault.KernelFault] = 1
	cfg.MaxPerKind[fault.KernelFault] = 100
	s, _ := faultyFig2(10000, cfg)

	ecfg := Defaults()
	ecfg.RetryLimit = 2
	ecfg.DegradeTo1Ctx = false
	_, err := RunStream2Ctx(s.m, compileFig2(t, s), ecfg)
	if err == nil {
		t.Fatal("exhausted retries did not error")
	}
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("error is %T, want *RunError", err)
	}
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("cause = %v, want ErrRetriesExhausted", re.Err)
	}
	if re.Task == "" || re.Kind != "K" || re.Phase < 0 || re.Strip < 0 || re.Cycle == 0 {
		t.Fatalf("RunError missing context: %+v", re)
	}
	if msg := re.Error(); !strings.Contains(msg, re.Task) || !strings.Contains(msg, "phase") {
		t.Fatalf("rendered error lacks task/phase: %s", msg)
	}
}

// A task whose dependency was never enqueued must abort with an
// enqueue RunError naming the task — the former exec panic site.
func TestEnqueueErrorBecomesRunError(t *testing.T) {
	m := sim.MustNew(sim.PentiumD8300())
	p := &compiler.Program{Tasks: []wq.Task{
		{ID: 4, Name: "orphan#0", Kind: wq.KernelRun, Phase: 0, Strip: 0,
			Deps: []int{3}, Run: func(c *sim.CPU) {}},
	}}
	_, rerr := runStream2Attempt(m, p, Defaults())
	if rerr == nil {
		t.Fatal("bad dependency did not error")
	}
	if rerr.Op != "enqueue" || rerr.Task != "orphan#0" {
		t.Fatalf("RunError = %+v, want enqueue error naming orphan#0", rerr)
	}
}

// A schedule that genuinely cannot progress — here a bulk transfer
// stuck far past every budget — must be caught by the progress
// watchdog and reported as ErrWedged with the queue's dependence
// diagnosis, not hang or panic.
func TestWatchdogDetectsWedgedSchedule(t *testing.T) {
	m := sim.MustNew(sim.PentiumD8300())
	m.SetFaultInjector(fault.New(fault.Config{Seed: 1})) // arms the watchdog
	stuck := m.NewEvent()
	p := &compiler.Program{Tasks: []wq.Task{
		{ID: 0, Name: "gStuck#0", Kind: wq.Gather, Run: func(c *sim.CPU) {
			// A transfer that outlives every watchdog budget; its own
			// deadline bounds the simulation so the test terminates.
			c.WaitBudget(stuck, sim.PolicyMwait, 2_000_000, func() bool { return false })
		}},
		{ID: 1, Name: "kBlocked#0", Kind: wq.KernelRun, Deps: []int{0},
			Run: func(c *sim.CPU) {}},
	}}
	ecfg := Defaults()
	ecfg.WatchdogCycles = 100_000
	_, rerr := runStream2Attempt(m, p, ecfg)
	if rerr == nil {
		t.Fatal("wedged schedule not detected")
	}
	if !errors.Is(rerr, ErrWedged) || rerr.Op != "watchdog" {
		t.Fatalf("RunError = %+v, want watchdog/ErrWedged", rerr)
	}
	if !strings.Contains(rerr.Diag, "blocked on [0]") {
		t.Fatalf("diagnosis does not name the blocked dependence:\n%s", rerr.Diag)
	}
}

// The 1-context executor shares the retry machinery.
func TestRetry1Ctx(t *testing.T) {
	cfg := fault.Config{Seed: 5}
	cfg.Rate[fault.KernelFault] = 0.3
	cfg.MaxPerKind[fault.KernelFault] = 5
	s, in := faultyFig2(10000, cfg)
	want := s.reference()
	res, err := RunStream1Ctx(s.m, compileFig2(t, s), Defaults())
	if err != nil {
		t.Fatalf("faulted 1ctx run did not recover: %v", err)
	}
	if in.Total() == 0 || res.Recovery.Retries == 0 {
		t.Fatal("no faults absorbed")
	}
	for i := 0; i < s.n; i++ {
		if s.y.At(i, 0) != want[i] {
			t.Fatalf("y[%d] wrong after 1ctx retries", i)
		}
	}
}
