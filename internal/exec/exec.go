// Package exec runs compiled stream programs and regular-code
// baselines on the simulated machine, implementing the mappings of
// §III-B.2:
//
//   - RunStream2Ctx: the paper's chosen mapping for two hardware
//     contexts — one context runs the control thread interleaved with
//     the compute thread (control work overlaps the pipeline ends), the
//     other context is the memory thread driving bulk gathers and
//     scatters. The threads communicate through the distributed work
//     queue and idle with a configurable wait policy (MONITOR/MWAIT by
//     default, as the paper adopted).
//   - RunStream1Ctx: the single-context fallback — the Gather, Kernel
//     and Scatter stages software-pipelined on one thread.
//   - RunRegular: the conventional-code baseline — interleaved
//     load/compute/store loops with hardware prefetching and a bounded
//     out-of-order miss window.
package exec

import (
	"fmt"

	"streamgpp/internal/compiler"
	"streamgpp/internal/obs"
	"streamgpp/internal/sim"
	"streamgpp/internal/wq"
)

// Config tunes the executors.
type Config struct {
	// WaitPolicy is how idle threads wait on the work queue.
	WaitPolicy sim.WaitPolicy
	// QueueCapacity bounds in-flight tasks (the paper uses 64 so
	// dependence bit-vectors stay cheap).
	QueueCapacity int
	// RegularMLP is the out-of-order miss window of the regular-code
	// baseline (independent misses the pipeline overlaps).
	RegularMLP int
	// RegularIssue is the per-access issue cost of regular code.
	RegularIssue uint64
	// RegularOverlapCycles is how much load-to-use latency the
	// out-of-order window hides: an iteration's computation depends on
	// its loads, and only this many cycles of that wait can overlap
	// with earlier work (~ROB depth ÷ issue rate on the Pentium 4).
	RegularOverlapCycles uint64
	// ControlOverheadCycles models the control thread's cost to
	// enqueue one task (dependence encoding plus the queue store).
	ControlOverheadCycles uint64
	// Trace, when non-nil, records every task execution (context,
	// kind, start/end cycles) for timeline analysis.
	Trace *Trace
	// RegularCPIFactor inflates the regular baseline's compute cost
	// multiplicatively. Left at 1.0 by default (it would prevent the
	// stream/regular convergence at high arithmetic intensity that the
	// paper observes); kept for ablations.
	RegularCPIFactor float64
	// RegularRefOps charges the regular baseline this many extra
	// compute ops per memory reference: the address generation, index
	// arithmetic and loop bookkeeping a scalar gather/scatter loop
	// executes around every access, which the stream version moves
	// into the bulk-copy engine on the other hardware context. This
	// term scales with references, not computation, so compute-bound
	// loops still converge to the kernel's cost.
	RegularRefOps int64
}

// Defaults returns the evaluation configuration.
func Defaults() Config {
	return Config{
		WaitPolicy:            sim.PolicyMwait,
		QueueCapacity:         wq.DefaultCapacity,
		RegularMLP:            2,
		RegularIssue:          1,
		RegularOverlapCycles:  60,
		ControlOverheadCycles: 12,
		RegularCPIFactor:      1.0,
		RegularRefOps:         2,
	}
}

// Result reports one execution.
type Result struct {
	Cycles uint64
	Run    sim.RunStats
	Queue  *wq.DWQ // post-run queue (for occupancy stats)
	// KindCycles accumulates context-local cycles spent executing tasks
	// of each wq.Kind (gather, kernel, scatter) — a profiling aid.
	KindCycles [3]uint64
}

// RunStream2Ctx executes the program on both hardware contexts.
// Context 0 time-multiplexes the control thread (enqueuing tasks) with
// the compute thread (kernels); context 1 is the memory thread.
func RunStream2Ctx(m *sim.Machine, p *compiler.Program, cfg Config) Result {
	q := wq.New(cfg.QueueCapacity)
	q.Obs = m.Observer()
	// One notification cell covers both "new task enqueued" and "task
	// completed": either can unblock either thread, and MONITOR watches
	// a single address anyway.
	work := m.NewEvent()
	next := 0
	finished := false
	total := len(p.Tasks)
	if cfg.Trace != nil {
		// One event per task; a depth sample per completion plus one
		// per enqueue batch (bounded by the task count).
		cfg.Trace.Reserve(total, 2*total)
	}

	var kindCycles [3]uint64

	// tryRun claims and executes one ready task from the given queue,
	// returning whether it did any work.
	tryRun := func(c *sim.CPU, qid wq.QueueID) bool {
		slot, t, ok := q.NextReady(qid)
		if !ok {
			return false
		}
		before := c.Now()
		t.Run(c)
		kindCycles[t.Kind] += c.Now() - before
		if cfg.Trace != nil {
			cfg.Trace.record(TraceEvent{Name: t.Name, Kind: t.Kind, Ctx: c.ID(),
				Phase: t.Phase, Strip: t.Strip, Start: before, End: c.Now()})
		}
		q.Complete(slot)
		if cfg.Trace != nil {
			cfg.Trace.sample("wq depth", c.Now(), float64(q.InFlight()))
		}
		c.Signal(work)
		return true
	}

	// recordWait attributes one wait's cycles: tasks sat in our queue but
	// their dependences hadn't cleared (pipeline stall) versus the queue
	// being genuinely empty or full (starvation). The counters are
	// resolved once up front; waits are frequent enough that per-wait
	// name formatting and registry lookups show up in profiles.
	var waitCtr [2][2]*obs.Counter // [ctx][0=empty 1=dep]
	if r := m.Observer(); r != nil {
		for ctx := 0; ctx < 2; ctx++ {
			for i, reason := range [...]string{"empty", "dep"} {
				waitCtr[ctx][i] = r.Counter(fmt.Sprintf("exec.ctx%d.wait_cycles.%s", ctx, reason))
			}
		}
	}
	recordWait := func(c *sim.CPU, qid wq.QueueID, cycles uint64) {
		if waitCtr[0][0] == nil || cycles == 0 {
			return
		}
		reason := 0 // empty
		if q.PendingIn(qid) > 0 {
			reason = 1 // dep
		}
		waitCtr[c.ID()][reason].Add(cycles)
	}

	st := m.Run(
		// Context 0: control + compute.
		func(c *sim.CPU) {
			for int(q.Completed()) < total {
				// Control part: enqueue as much of the schedule as fits.
				enqueued := false
				for next < total {
					if err := q.Enqueue(p.Tasks[next]); err != nil {
						if err == wq.ErrFull {
							break
						}
						panic(err)
					}
					c.Compute(int64(cfg.ControlOverheadCycles))
					next++
					enqueued = true
				}
				if enqueued {
					if cfg.Trace != nil {
						cfg.Trace.sample("wq depth", c.Now(), float64(q.InFlight()))
					}
					c.Signal(work)
				}
				// Compute part: run a ready kernel.
				if tryRun(c, wq.ComputeQueue) {
					continue
				}
				if int(q.Completed()) >= total {
					break
				}
				// Nothing to do: wait for a completion to unblock a
				// kernel or free a slot.
				waited := c.Wait(work, cfg.WaitPolicy, func() bool {
					return q.ReadyIn(wq.ComputeQueue) > 0 ||
						(next < total && q.InFlight() < q.Capacity()) ||
						int(q.Completed()) >= total
				})
				recordWait(c, wq.ComputeQueue, waited)
			}
			finished = true
			c.Signal(work)
		},
		// Context 1: memory thread.
		func(c *sim.CPU) {
			for {
				if tryRun(c, wq.MemQueue) {
					continue
				}
				if finished && int(q.Completed()) >= total {
					return
				}
				waited := c.Wait(work, cfg.WaitPolicy, func() bool {
					return q.ReadyIn(wq.MemQueue) > 0 || finished
				})
				recordWait(c, wq.MemQueue, waited)
				if finished && q.ReadyIn(wq.MemQueue) == 0 && int(q.Completed()) >= total {
					return
				}
			}
		},
	)
	if int(q.Completed()) != total {
		panic(fmt.Sprintf("exec: %d of %d tasks completed", q.Completed(), total))
	}
	publishRun(m, "stream2", st, kindCycles)
	return Result{Cycles: st.Cycles, Run: st, Queue: q, KindCycles: kindCycles}
}

// publishRun copies one run's cycle accounting into the machine's
// metrics registry, if any.
func publishRun(m *sim.Machine, label string, st sim.RunStats, kindCycles [3]uint64) {
	r := m.Observer()
	if r == nil {
		return
	}
	r.Gauge("exec." + label + ".cycles").Set(float64(st.Cycles))
	for i := range st.ProcCycles {
		pre := fmt.Sprintf("exec.%s.ctx%d.", label, i)
		r.Gauge(pre + "compute_cycles").Set(float64(st.ComputeCycles[i]))
		r.Gauge(pre + "mem_cycles").Set(float64(st.MemCycles[i]))
		r.Gauge(pre + "spin_cycles").Set(float64(st.SpinCycles[i]))
		r.Gauge(pre + "sleep_cycles").Set(float64(st.SleepCycles[i]))
	}
	for k, cyc := range kindCycles {
		r.Gauge("exec." + label + ".kind_cycles." + wq.Kind(k).String()).Set(float64(cyc))
	}
}

// RunStream1Ctx executes the program on a single hardware context by
// software-pipelining the schedule: tasks run in enqueue order, which
// interleaves next-strip gathers with current-strip kernels but cannot
// overlap them in time. The bulk-transfer and SRF-pinning benefits
// remain; the thread-level overlap does not.
func RunStream1Ctx(m *sim.Machine, p *compiler.Program, cfg Config) Result {
	var kindCycles [3]uint64
	if cfg.Trace != nil {
		cfg.Trace.Reserve(len(p.Tasks), 0)
	}
	st := m.Run(func(c *sim.CPU) {
		for _, t := range p.Tasks {
			before := c.Now()
			t.Run(c)
			kindCycles[t.Kind] += c.Now() - before
			if cfg.Trace != nil {
				cfg.Trace.record(TraceEvent{Name: t.Name, Kind: t.Kind, Ctx: c.ID(),
					Phase: t.Phase, Strip: t.Strip, Start: before, End: c.Now()})
			}
		}
	})
	publishRun(m, "stream1", st, kindCycles)
	return Result{Cycles: st.Cycles, Run: st, KindCycles: kindCycles}
}

// Loop is one loop nest of a regular (conventional C-style) program:
// per iteration it performs Refs memory accesses intermixed with
// OpsPerIter compute operations, exactly as compiled scalar code would.
type Loop struct {
	Name string
	N    int
	// Ops returns the compute cost of iteration i (constant for most
	// loops; data-dependent for conditionals).
	Ops func(i int) int64
	// Refs emits iteration i's memory references through emit. They are
	// issued through the bounded out-of-order window.
	Refs func(i int, emit func(addr sim.Addr, size int, write bool))
	// Body performs the functional computation of iteration i (may be
	// nil when the loop exists only for its timing).
	Body func(i int)
}

// RunRegular executes the loops back to back on one context: the
// regular-code baseline of §IV. Memory references issue through a
// window of RegularMLP outstanding accesses that overlaps with the
// loop's computation, modelling the dynamically scheduled pipeline
// "speculatively executing ahead to discover cache misses" (§VI).
func RunRegular(m *sim.Machine, cfg Config, loops ...Loop) Result {
	st := m.Run(func(c *sim.CPU) {
		for _, l := range loops {
			pipe := c.NewPipe(cfg.RegularMLP, cfg.RegularIssue, sim.StateCompute)
			var readsDone uint64
			var refs int64
			emit := func(addr sim.Addr, size int, write bool) {
				refs++
				r := pipe.Access(addr, size, write, sim.HintNone)
				if !write && r.Done > readsDone {
					readsDone = r.Done
				}
			}
			for i := 0; i < l.N; i++ {
				readsDone = 0
				refs = 0
				if l.Refs != nil {
					l.Refs(i, emit)
				}
				if l.Body != nil {
					l.Body(i)
				}
				if l.Ops != nil {
					if ops := l.Ops(i); ops > 0 {
						// The iteration's arithmetic depends on its
						// loads; the OoO window hides only
						// RegularOverlapCycles of that wait.
						if readsDone > cfg.RegularOverlapCycles {
							c.StallUntil(readsDone - cfg.RegularOverlapCycles)
						}
						if cfg.RegularCPIFactor > 1 {
							ops = int64(float64(ops) * cfg.RegularCPIFactor)
						}
						c.Compute(ops + refs*cfg.RegularRefOps)
					}
				}
			}
			pipe.Drain()
		}
	})
	return Result{Cycles: st.Cycles, Run: st}
}

// Speedup returns regular/stream cycle ratio — the paper's metric
// (§IV-A step 7).
func Speedup(regular, stream Result) float64 {
	if stream.Cycles == 0 {
		return 0
	}
	return float64(regular.Cycles) / float64(stream.Cycles)
}
