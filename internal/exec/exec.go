// Package exec runs compiled stream programs and regular-code
// baselines on the simulated machine, implementing the mappings of
// §III-B.2:
//
//   - RunStream2Ctx: the paper's chosen mapping for two hardware
//     contexts — one context runs the control thread interleaved with
//     the compute thread (control work overlaps the pipeline ends), the
//     other context is the memory thread driving bulk gathers and
//     scatters. The threads communicate through the distributed work
//     queue and idle with a configurable wait policy (MONITOR/MWAIT by
//     default, as the paper adopted).
//   - RunStream1Ctx: the single-context fallback — the Gather, Kernel
//     and Scatter stages software-pipelined on one thread.
//   - RunRegular: the conventional-code baseline — interleaved
//     load/compute/store loops with hardware prefetching and a bounded
//     out-of-order miss window.
package exec

import (
	"context"
	"fmt"

	"streamgpp/internal/compiler"
	"streamgpp/internal/fault"
	"streamgpp/internal/obs"
	"streamgpp/internal/sim"
	"streamgpp/internal/svm"
	"streamgpp/internal/wq"
)

// Config tunes the executors.
type Config struct {
	// WaitPolicy is how idle threads wait on the work queue.
	WaitPolicy sim.WaitPolicy
	// QueueCapacity bounds in-flight tasks (the paper uses 64 so
	// dependence bit-vectors stay cheap).
	QueueCapacity int
	// RegularMLP is the out-of-order miss window of the regular-code
	// baseline (independent misses the pipeline overlaps).
	RegularMLP int
	// RegularIssue is the per-access issue cost of regular code.
	RegularIssue uint64
	// RegularOverlapCycles is how much load-to-use latency the
	// out-of-order window hides: an iteration's computation depends on
	// its loads, and only this many cycles of that wait can overlap
	// with earlier work (~ROB depth ÷ issue rate on the Pentium 4).
	RegularOverlapCycles uint64
	// ControlOverheadCycles models the control thread's cost to
	// enqueue one task (dependence encoding plus the queue store).
	ControlOverheadCycles uint64
	// Trace, when non-nil, records every task execution (context,
	// kind, start/end cycles) for timeline analysis.
	Trace *Trace
	// RegularCPIFactor inflates the regular baseline's compute cost
	// multiplicatively. Left at 1.0 by default (it would prevent the
	// stream/regular convergence at high arithmetic intensity that the
	// paper observes); kept for ablations.
	RegularCPIFactor float64
	// RegularRefOps charges the regular baseline this many extra
	// compute ops per memory reference: the address generation, index
	// arithmetic and loop bookkeeping a scalar gather/scatter loop
	// executes around every access, which the stream version moves
	// into the bulk-copy engine on the other hardware context. This
	// term scales with references, not computation, so compute-bound
	// loops still converge to the kernel's cost.
	RegularRefOps int64

	// RetryLimit bounds how many times a strip's gather or kernel is
	// re-executed after an injected fault before the run aborts.
	// Gathers and kernels are idempotent (only scatters commit state),
	// so a re-run is safe. 0 disables retries: the first fault aborts.
	RetryLimit int
	// WatchdogCycles is the progress watchdog's budget: an idle
	// thread waits at most this many cycles before auditing the queue
	// (scrubbing stale dependence bits) and, after two consecutive
	// budgets without any completion, aborting with a deadlock
	// diagnosis. The watchdog is armed only on machines with a fault
	// injector, so fault-free timing is untouched.
	WatchdogCycles uint64
	// DegradeTo1Ctx falls back to the sequential single-context
	// schedule when the overlapped two-context run exhausts its
	// retries: output arrays are restored from a pre-run snapshot and
	// the whole program re-runs without thread-level overlap.
	DegradeTo1Ctx bool

	// Ctx, when non-nil, bounds the run in wall-clock time: it is
	// checked before every strip task execution and at the control
	// thread's scheduling loop, so a cancelled or expired context
	// aborts the run within one task's wall time with a structured
	// RunError (Op "cancel") wrapping ctx.Err(). Cancellation is
	// terminal — no retry, no 1-ctx degradation — and callers receive
	// no partial output (the Run* wrappers return a zero Result
	// alongside the error). This is what lets streamd impose per-job
	// deadlines that reach all the way down to the strip retrier.
	Ctx context.Context
	// Fault, when non-nil, is attached to the machine at Run* entry
	// (sim.Machine.SetFaultInjector) — a per-run alternative to the
	// process-global sim.SetDefaultFaultInjector. Because each run owns
	// its injector, concurrent runs (the parallel experiment runner,
	// streamd job workers) keep independent deterministic draw streams
	// and stay replayable from their seeds.
	Fault *fault.Injector

	// Progress, when non-nil, receives one ProgressFrame after every
	// completed stream task. The hook is host-side and clock-neutral:
	// it fires after the task's cycles are accounted and reads only
	// already-committed state, so timing is byte-identical with or
	// without it (see progress.go). The callback runs on the
	// simulating goroutine — keep it cheap and never block in it.
	Progress func(ProgressFrame)
}

// Defaults returns the evaluation configuration.
func Defaults() Config {
	return Config{
		WaitPolicy:            sim.PolicyMwait,
		QueueCapacity:         wq.DefaultCapacity,
		RegularMLP:            2,
		RegularIssue:          1,
		RegularOverlapCycles:  60,
		ControlOverheadCycles: 12,
		RegularCPIFactor:      1.0,
		RegularRefOps:         2,
		RetryLimit:            3,
		WatchdogCycles:        1_500_000,
		DegradeTo1Ctx:         true,
	}
}

// Aborted returns a non-nil *RunError (as error) when cfg.Ctx is
// cancelled or expired — the stage-boundary check app runners use
// between their regular and stream phases.
func (cfg Config) Aborted(op string) error {
	if cfg.Ctx == nil {
		return nil
	}
	if err := cfg.Ctx.Err(); err != nil {
		return &RunError{Op: "cancel", Phase: -1, Strip: -1, Err: err}
	}
	return nil
}

// attachFault arms cfg.Fault on the machine, if configured. The
// injector is read dynamically at every fault site, so attaching at
// run entry (rather than machine construction) is equivalent to the
// global-default path.
func attachFault(m *sim.Machine, cfg Config) {
	if cfg.Fault != nil {
		m.SetFaultInjector(cfg.Fault)
	}
}

// Result reports one execution.
type Result struct {
	Cycles uint64
	Run    sim.RunStats
	Queue  *wq.DWQ // post-run queue (for occupancy stats)
	// KindCycles accumulates context-local cycles spent executing tasks
	// of each wq.Kind (gather, kernel, scatter) — a profiling aid.
	KindCycles [3]uint64
	// Recovery accounts fault-injection and recovery activity (all
	// zeros on a machine without an injector).
	Recovery RecoverySummary
}

// stripRetrier re-executes a strip task after an injected fault,
// bounded by RetryLimit. Only gathers and kernels are fault sites —
// they are idempotent, so a re-run is safe; scatters commit
// (scatter-add is not idempotent) and are never injected or re-run.
type stripRetrier struct {
	inj      *fault.Injector
	limit    int
	rec      *RecoverySummary
	retryCtr *obs.Counter
	ts       *tlSampler // optional timeline sampler (nil-safe)
	ctx      context.Context
}

func newStripRetrier(m *sim.Machine, cfg Config, rec *RecoverySummary, ts *tlSampler) stripRetrier {
	sr := stripRetrier{inj: m.FaultInjector(), limit: cfg.RetryLimit, rec: rec, ts: ts, ctx: cfg.Ctx}
	if sr.inj != nil {
		if r := m.Observer(); r != nil {
			sr.retryCtr = r.Counter("exec.strip_retries")
		}
	}
	return sr
}

// run executes t, retrying while the injector faults it. A non-nil
// RunError means the retry budget is exhausted. lastStart is the start
// cycle of the final attempt; everything before it is recovery time.
func (sr stripRetrier) run(c *sim.CPU, t *wq.Task) (lastStart uint64, rerr *RunError) {
	// The per-task cancellation point: a cancelled run stops before the
	// next strip task rather than at some coarser boundary, so a
	// streamd deadline aborts within one task's wall time.
	if sr.ctx != nil {
		if err := sr.ctx.Err(); err != nil {
			return c.Now(), &RunError{Op: "cancel", Task: t.Name, Kind: t.Kind.String(),
				Phase: t.Phase, Strip: t.Strip, Ctx: c.ID(), Cycle: c.Now(), Err: err}
		}
	}
	attempts := 0
	for {
		lastStart = c.Now()
		t.Run(c)
		attempts++
		if sr.inj == nil {
			return lastStart, nil
		}
		var k fault.Kind
		switch t.Kind {
		case wq.Gather:
			k = fault.PoisonedStrip
		case wq.KernelRun:
			k = fault.KernelFault
		default:
			return lastStart, nil // scatters are the commit point: never injected
		}
		if !sr.inj.Roll(k, c.Now()) {
			return lastStart, nil
		}
		sr.inj.Annotate(t.Name)
		if attempts > sr.limit {
			return lastStart, &RunError{Op: "retry", Task: t.Name, Kind: t.Kind.String(),
				Phase: t.Phase, Strip: t.Strip, Ctx: c.ID(), Cycle: c.Now(),
				Attempts: attempts, Err: ErrRetriesExhausted}
		}
		sr.rec.Retries++
		if sr.retryCtr != nil {
			sr.retryCtr.Inc()
		}
		sr.ts.recoveryEvent(c.Now(), sr.rec)
	}
}

// arraySnapshot preserves the program's output arrays so an aborted
// run can be restarted from pristine state.
type arraySnapshot struct {
	arrs []*svm.Array
	data [][]float64
}

func snapshotOutputs(p *compiler.Program) *arraySnapshot {
	snap := &arraySnapshot{arrs: p.OutputArrays()}
	for _, a := range snap.arrs {
		snap.data = append(snap.data, a.CloneData())
	}
	return snap
}

func (s *arraySnapshot) restore() {
	for i, a := range s.arrs {
		a.RestoreData(s.data[i])
	}
}

// RunStream2Ctx executes the program on both hardware contexts.
// Context 0 time-multiplexes the control thread (enqueuing tasks) with
// the compute thread (kernels); context 1 is the memory thread.
//
// On a machine with a fault injector the run is guarded: faulted
// strips are retried (see stripRetrier), idle waits carry a progress
// watchdog, and if the overlapped schedule still cannot complete, the
// run degrades to the sequential single-context schedule from restored
// array state (Config.DegradeTo1Ctx). A non-nil error is always a
// *RunError naming the failing task, strip, phase and cycle.
func RunStream2Ctx(m *sim.Machine, p *compiler.Program, cfg Config) (Result, error) {
	attachFault(m, cfg)
	var snap *arraySnapshot
	if m.FaultInjector() != nil && cfg.DegradeTo1Ctx {
		snap = snapshotOutputs(p)
	}
	res, rerr := runStream2Attempt(m, p, cfg)
	if rerr == nil {
		return res, nil
	}
	if rerr.Cancelled() {
		// The caller's deadline or cancellation ended the run; the
		// sequential fallback would only run past the same deadline.
		// No partial output either way — callers discard Result on
		// error, and streamd never serves one.
		return res, rerr
	}
	if snap == nil {
		return res, rerr
	}
	// Graceful degradation: abandon thread-level overlap, restore the
	// committed state and re-run the whole schedule sequentially.
	snap.restore()
	if r := m.Observer(); r != nil {
		r.Counter("exec.degraded_runs").Inc()
	}
	aborted := res.Recovery
	res1, err := RunStream1Ctx(m, p, cfg)
	res1.Recovery.Accumulate(aborted)
	res1.Recovery.Degraded = true
	res1.Recovery.AbortedCycles = res.Cycles
	return res1, err
}

// runStream2Attempt is one guarded two-context execution.
func runStream2Attempt(m *sim.Machine, p *compiler.Program, cfg Config) (Result, *RunError) {
	q := wq.New(cfg.QueueCapacity)
	q.Obs = m.Observer()
	q.Fault = m.FaultInjector()
	// One notification cell covers both "new task enqueued" and "task
	// completed": either can unblock either thread, and MONITOR watches
	// a single address anyway.
	work := m.NewEvent()
	next := 0
	finished := false
	total := len(p.Tasks)
	if cfg.Trace != nil {
		// One event per task; a depth sample per completion plus one
		// per enqueue batch (bounded by the task count).
		cfg.Trace.Reserve(total, 2*total)
	}

	var kindCycles [3]uint64
	var rec RecoverySummary
	inj := m.FaultInjector()
	injBase := uint64(0)
	if inj != nil {
		injBase = inj.Total()
	}
	wkBase := m.WakeupTimeouts()
	ts := newTLSampler(m)
	ca := newCovAttr(m)
	sr := newStripRetrier(m, cfg, &rec, ts)

	// rerr is the first abort. Setting it also flips finished, so both
	// threads' wait conditions unblock and their loops drain out.
	var rerr *RunError
	abort := func(e *RunError) {
		if rerr == nil {
			rerr = e
		}
		finished = true
	}

	// The progress watchdog is armed only under fault injection (the
	// budget changes nothing until it expires, and it can only expire
	// when an injected fault wedged the schedule), so fault-free runs
	// keep byte-identical timing.
	wdBudget := uint64(0)
	var wdCtr *obs.Counter
	if inj != nil {
		wdBudget = cfg.WatchdogCycles
		if r := m.Observer(); r != nil {
			wdCtr = r.Counter("exec.watchdog_timeouts")
		}
	}
	// newWatchdog returns a per-thread timeout handler: a barren
	// budget first audits the queue for stale dependence bits (lost
	// dependence-clears) and recovers them with Scrub; two consecutive
	// budgets with no completion at all abort with the structured
	// deadlock diagnosis from the dependence bit-vectors.
	newWatchdog := func() func(c *sim.CPU) {
		barren := 0
		var lastDone uint64
		return func(c *sim.CPU) {
			rec.WatchdogTimeouts++
			if wdCtr != nil {
				wdCtr.Inc()
			}
			ts.recoveryEvent(c.Now(), &rec)
			if n := q.Scrub(); n > 0 {
				rec.ScrubbedDeps += uint64(n)
				ts.recoveryEvent(c.Now(), &rec)
				barren = 0
				c.Signal(work) // readiness changed; wake the sibling
				return
			}
			if done := q.Completed(); done > lastDone {
				lastDone = done
				barren = 0
				return
			}
			barren++
			if barren >= 2 {
				abort(&RunError{Op: "watchdog", Ctx: c.ID(), Cycle: c.Now(),
					Diag: q.Diagnose(), Err: ErrWedged})
				c.Signal(work)
			}
		}
	}

	// tryRun claims and executes one ready task from the given queue,
	// returning whether it did any work.
	tryRun := func(c *sim.CPU, qid wq.QueueID) bool {
		slot, t, ok := q.NextReady(qid)
		if !ok {
			return false
		}
		before := c.Now()
		ts.taskStart(t.Kind, before)
		ca.taskStart(c.ID())
		runStart, e := sr.run(c, &t)
		if e != nil {
			ca.taskEnd(c.ID(), t.Kind, t.Phase)
			ts.taskEnd(t.Kind, c.Now(), q)
			abort(e)
			c.Signal(work)
			return false
		}
		kindCycles[t.Kind] += c.Now() - before
		ca.taskEnd(c.ID(), t.Kind, t.Phase)
		if cfg.Trace != nil {
			ev := TraceEvent{Name: t.Name, Kind: t.Kind, Ctx: c.ID(),
				Phase: t.Phase, Strip: t.Strip, Start: before, End: c.Now(),
				ID: t.ID, RunStart: runStart, Enqueue: before, Deps: t.Deps}
			if ad, ok := cfg.Trace.takeAdmission(t.ID); ok {
				ev.Enqueue, ev.Deps = ad.t, ad.deps
			}
			cfg.Trace.record(ev)
		}
		q.Complete(slot)
		ts.taskEnd(t.Kind, c.Now(), q)
		if cfg.Trace != nil {
			cfg.Trace.sample("wq depth", c.Now(), float64(q.InFlight()))
		}
		if cfg.Progress != nil {
			cfg.Progress(ProgressFrame{Done: int(q.Completed()), Total: total,
				Phase: t.Phase, Strip: t.Strip, Cycle: c.Now(), Retries: rec.Retries})
		}
		c.Signal(work)
		return true
	}

	// recordWait attributes one wait's cycles: tasks sat in our queue but
	// their dependences hadn't cleared (pipeline stall) versus the queue
	// being genuinely empty or full (starvation). The counters are
	// resolved once up front; waits are frequent enough that per-wait
	// name formatting and registry lookups show up in profiles.
	var waitCtr [2][2]*obs.Counter // [ctx][0=empty 1=dep]
	if r := m.Observer(); r != nil {
		for ctx := 0; ctx < 2; ctx++ {
			for i, reason := range [...]string{"empty", "dep"} {
				waitCtr[ctx][i] = r.Counter(fmt.Sprintf("exec.ctx%d.wait_cycles.%s", ctx, reason))
			}
		}
	}
	recordWait := func(c *sim.CPU, qid wq.QueueID, cycles uint64) {
		if waitCtr[0][0] == nil || cycles == 0 {
			return
		}
		reason := 0 // empty
		if q.PendingIn(qid) > 0 {
			reason = 1 // dep
		}
		waitCtr[c.ID()][reason].Add(cycles)
	}

	st := m.Run(
		// Context 0: control + compute.
		func(c *sim.CPU) {
			wd := newWatchdog()
			for rerr == nil && int(q.Completed()) < total {
				// Cancellation point for the scheduling loop itself, so a
				// run whose remaining work is all on the memory thread
				// still observes its deadline here.
				if cfg.Ctx != nil {
					if err := cfg.Ctx.Err(); err != nil {
						abort(&RunError{Op: "cancel", Phase: -1, Strip: -1,
							Ctx: c.ID(), Cycle: c.Now(), Err: err})
						c.Signal(work)
						break
					}
				}
				// Control part: enqueue as much of the schedule as fits.
				enqueued := false
				for next < total {
					if err := q.Enqueue(p.Tasks[next]); err != nil {
						if err == wq.ErrFull {
							// Genuine backpressure or an injected
							// transient failure: wait and retry.
							break
						}
						t := &p.Tasks[next]
						abort(&RunError{Op: "enqueue", Task: t.Name, Kind: t.Kind.String(),
							Phase: t.Phase, Strip: t.Strip, Ctx: c.ID(), Cycle: c.Now(), Err: err})
						break
					}
					if cfg.Trace != nil {
						// Admission provenance for the critical-path
						// profiler: when the task entered the queue and
						// which dependencies were still live (read back
						// from the slot bit-vector, so dependencies on
						// already-completed tasks are excluded).
						t := &p.Tasks[next]
						cfg.Trace.noteAdmission(t.ID, c.Now(), q.LiveDeps(t.ID))
					}
					c.Compute(int64(cfg.ControlOverheadCycles))
					next++
					enqueued = true
				}
				if rerr != nil {
					break
				}
				if enqueued {
					if cfg.Trace != nil {
						cfg.Trace.sample("wq depth", c.Now(), float64(q.InFlight()))
					}
					ts.enqueued(c.Now(), q)
					c.Signal(work)
				}
				// Compute part: run a ready kernel.
				if tryRun(c, wq.ComputeQueue) {
					continue
				}
				if rerr != nil || int(q.Completed()) >= total {
					break
				}
				// Nothing to do: wait for a completion to unblock a
				// kernel or free a slot.
				waited, timedOut := c.WaitBudget(work, cfg.WaitPolicy, wdBudget, func() bool {
					return q.ReadyIn(wq.ComputeQueue) > 0 ||
						(next < total && q.InFlight() < q.Capacity()) ||
						int(q.Completed()) >= total || rerr != nil
				})
				recordWait(c, wq.ComputeQueue, waited)
				if timedOut {
					wd(c)
				}
			}
			finished = true
			c.Signal(work)
		},
		// Context 1: memory thread.
		func(c *sim.CPU) {
			wd := newWatchdog()
			for rerr == nil {
				if tryRun(c, wq.MemQueue) {
					continue
				}
				if rerr != nil {
					return
				}
				if finished && int(q.Completed()) >= total {
					return
				}
				waited, timedOut := c.WaitBudget(work, cfg.WaitPolicy, wdBudget, func() bool {
					return q.ReadyIn(wq.MemQueue) > 0 || finished
				})
				recordWait(c, wq.MemQueue, waited)
				if timedOut {
					wd(c)
					continue
				}
				if finished && q.ReadyIn(wq.MemQueue) == 0 && int(q.Completed()) >= total {
					return
				}
			}
		},
	)
	rec.WakeupTimeouts = m.WakeupTimeouts() - wkBase
	if inj != nil {
		rec.FaultsInjected = inj.Total() - injBase
		inj.Publish(m.Observer())
	}
	if rerr == nil && int(q.Completed()) != total {
		// No thread aborted yet the schedule did not finish: an
		// executor invariant violation, reported structurally instead
		// of the former panic.
		rerr = &RunError{Op: "incomplete", Cycle: st.Cycles, Diag: q.Diagnose(),
			Err: fmt.Errorf("%w: %d of %d tasks completed", ErrIncomplete, q.Completed(), total)}
	}
	publishRun(m, "stream2", st, kindCycles)
	ca.publish(m.Observer())
	return Result{Cycles: st.Cycles, Run: st, Queue: q, KindCycles: kindCycles, Recovery: rec}, rerr
}

// publishRun copies one run's cycle accounting into the machine's
// metrics registry, if any.
func publishRun(m *sim.Machine, label string, st sim.RunStats, kindCycles [3]uint64) {
	r := m.Observer()
	if r == nil {
		return
	}
	r.Gauge("exec." + label + ".cycles").Set(float64(st.Cycles))
	for i := range st.ProcCycles {
		pre := fmt.Sprintf("exec.%s.ctx%d.", label, i)
		r.Gauge(pre + "compute_cycles").Set(float64(st.ComputeCycles[i]))
		r.Gauge(pre + "mem_cycles").Set(float64(st.MemCycles[i]))
		r.Gauge(pre + "spin_cycles").Set(float64(st.SpinCycles[i]))
		r.Gauge(pre + "sleep_cycles").Set(float64(st.SleepCycles[i]))
	}
	for k, cyc := range kindCycles {
		r.Gauge("exec." + label + ".kind_cycles." + wq.Kind(k).String()).Set(float64(cyc))
	}
}

// RunStream1Ctx executes the program on a single hardware context by
// software-pipelining the schedule: tasks run in enqueue order, which
// interleaves next-strip gathers with current-strip kernels but cannot
// overlap them in time. The bulk-transfer and SRF-pinning benefits
// remain; the thread-level overlap does not. Under fault injection,
// faulted strips are retried exactly as in the two-context schedule; a
// non-nil error is always a *RunError.
func RunStream1Ctx(m *sim.Machine, p *compiler.Program, cfg Config) (Result, error) {
	attachFault(m, cfg)
	var kindCycles [3]uint64
	var rec RecoverySummary
	inj := m.FaultInjector()
	injBase := uint64(0)
	if inj != nil {
		injBase = inj.Total()
	}
	ts := newTLSampler(m)
	ca := newCovAttr(m)
	sr := newStripRetrier(m, cfg, &rec, ts)
	var rerr *RunError
	if cfg.Trace != nil {
		cfg.Trace.Reserve(len(p.Tasks), 0)
	}
	st := m.Run(func(c *sim.CPU) {
		for i := range p.Tasks {
			t := &p.Tasks[i]
			before := c.Now()
			ts.taskStart(t.Kind, before)
			ca.taskStart(c.ID())
			runStart, e := sr.run(c, t)
			if e != nil {
				ca.taskEnd(c.ID(), t.Kind, t.Phase)
				ts.taskEnd(t.Kind, c.Now(), nil)
				rerr = e
				return
			}
			kindCycles[t.Kind] += c.Now() - before
			ca.taskEnd(c.ID(), t.Kind, t.Phase)
			ts.taskEnd(t.Kind, c.Now(), nil)
			if cfg.Progress != nil {
				cfg.Progress(ProgressFrame{Done: i + 1, Total: len(p.Tasks),
					Phase: t.Phase, Strip: t.Strip, Cycle: c.Now(), Retries: rec.Retries})
			}
			if cfg.Trace != nil {
				// Sequential schedule: admission and start coincide, and
				// the declared dependencies are the recorded edges (every
				// predecessor has already run, so none are live — but the
				// profiler still uses them as the DAG's structure).
				cfg.Trace.record(TraceEvent{Name: t.Name, Kind: t.Kind, Ctx: c.ID(),
					Phase: t.Phase, Strip: t.Strip, Start: before, End: c.Now(),
					ID: t.ID, RunStart: runStart, Enqueue: before, Deps: t.Deps})
			}
		}
	})
	if inj != nil {
		rec.FaultsInjected = inj.Total() - injBase
		inj.Publish(m.Observer())
	}
	publishRun(m, "stream1", st, kindCycles)
	ca.publish(m.Observer())
	res := Result{Cycles: st.Cycles, Run: st, KindCycles: kindCycles, Recovery: rec}
	if rerr != nil {
		return res, rerr
	}
	return res, nil
}

// Loop is one loop nest of a regular (conventional C-style) program:
// per iteration it performs Refs memory accesses intermixed with
// OpsPerIter compute operations, exactly as compiled scalar code would.
type Loop struct {
	Name string
	N    int
	// Ops returns the compute cost of iteration i (constant for most
	// loops; data-dependent for conditionals).
	Ops func(i int) int64
	// Refs emits iteration i's memory references through emit. They are
	// issued through the bounded out-of-order window.
	Refs func(i int, emit func(addr sim.Addr, size int, write bool))
	// AffineRefs, when non-nil, declares the references instead of Refs
	// (which is then ignored): iteration i touches
	// [Base+i*Stride, Base+i*Stride+Size) of each pattern, in order.
	// Declaring the pattern lets the simulator's fast path batch runs
	// of all-hit iterations (sim.Pipe.AccessLoop) — use it for the
	// common dense loops; keep Refs for indexed or conditional ones.
	// Ops must be constant across iterations when AffineRefs is set.
	AffineRefs []sim.BulkRef
	// Body performs the functional computation of iteration i (may be
	// nil when the loop exists only for its timing).
	Body func(i int)
}

// RunRegular executes the loops back to back on one context: the
// regular-code baseline of §IV. Memory references issue through a
// window of RegularMLP outstanding accesses that overlaps with the
// loop's computation, modelling the dynamically scheduled pipeline
// "speculatively executing ahead to discover cache misses" (§VI).
func RunRegular(m *sim.Machine, cfg Config, loops ...Loop) Result {
	attachFault(m, cfg)
	st := m.Run(func(c *sim.CPU) {
		for _, l := range loops {
			pipe := c.NewPipe(cfg.RegularMLP, cfg.RegularIssue, sim.StateCompute)
			if l.AffineRefs != nil {
				// Declared affine pattern: same iteration scheme, issued
				// through AccessLoop so the fast path can batch it. The
				// per-iteration compute charge (CPI factor, then the
				// per-reference op tax) is folded in up front — Ops is
				// constant for affine loops.
				var ops int64
				if l.Ops != nil {
					if o := l.Ops(0); o > 0 {
						if cfg.RegularCPIFactor > 1 {
							o = int64(float64(o) * cfg.RegularCPIFactor)
						}
						ops = o + int64(len(l.AffineRefs))*cfg.RegularRefOps
					}
				}
				pipe.AccessLoop(l.N, l.AffineRefs, ops, cfg.RegularOverlapCycles, l.Body)
				pipe.Drain()
				continue
			}
			var readsDone uint64
			var refs int64
			emit := func(addr sim.Addr, size int, write bool) {
				refs++
				r := pipe.Access(addr, size, write, sim.HintNone)
				if !write && r.Done > readsDone {
					readsDone = r.Done
				}
			}
			for i := 0; i < l.N; i++ {
				readsDone = 0
				refs = 0
				if l.Refs != nil {
					l.Refs(i, emit)
				}
				if l.Body != nil {
					l.Body(i)
				}
				if l.Ops != nil {
					if ops := l.Ops(i); ops > 0 {
						// The iteration's arithmetic depends on its
						// loads; the OoO window hides only
						// RegularOverlapCycles of that wait.
						if readsDone > cfg.RegularOverlapCycles {
							c.StallUntil(readsDone - cfg.RegularOverlapCycles)
						}
						if cfg.RegularCPIFactor > 1 {
							ops = int64(float64(ops) * cfg.RegularCPIFactor)
						}
						c.Compute(ops + refs*cfg.RegularRefOps)
					}
				}
			}
			pipe.Drain()
		}
	})
	return Result{Cycles: st.Cycles, Run: st}
}

// Speedup returns regular/stream cycle ratio — the paper's metric
// (§IV-A step 7).
func Speedup(regular, stream Result) float64 {
	if stream.Cycles == 0 {
		return 0
	}
	return float64(regular.Cycles) / float64(stream.Cycles)
}
