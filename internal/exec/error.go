package exec

import (
	"context"
	"errors"
	"fmt"
)

// Sentinel causes carried by RunError.Err.
var (
	// ErrRetriesExhausted: a strip's gather or kernel faulted on every
	// attempt up to Config.RetryLimit.
	ErrRetriesExhausted = errors.New("retries exhausted")
	// ErrWedged: the progress watchdog saw no task completion across
	// two consecutive cycle budgets.
	ErrWedged = errors.New("no progress within watchdog budget")
	// ErrIncomplete: the run ended with tasks still outstanding.
	ErrIncomplete = errors.New("schedule incomplete")
)

// RunError is the structured failure of a stream-program run. It
// replaces the run path's former panics: every abort names the
// operation, the task (with its phase and strip in the compiled
// schedule), the hardware context and virtual cycle of the failure,
// and — for scheduling failures — a queue diagnosis built from the
// dependence bit-vectors.
type RunError struct {
	Op       string // "enqueue", "retry", "watchdog", "incomplete", "cancel"
	Task     string // task name ("name#strip"), when task-attributed
	Kind     string // task kind (G/K/S), when task-attributed
	Phase    int    // compiled-schedule phase of the task (-1 if n/a)
	Strip    int    // strip index of the task (-1 if n/a)
	Ctx      int    // hardware context that aborted
	Cycle    uint64 // local virtual cycle at the abort
	Attempts int    // executions attempted, for retry exhaustion
	Diag     string // wq dependence diagnosis, for scheduling failures
	Err      error  // sentinel cause
}

// Error renders the full context in one line (plus the multi-line
// queue diagnosis when present).
func (e *RunError) Error() string {
	s := "exec: " + e.Op
	if e.Task != "" {
		s += fmt.Sprintf(" task %s (kind %s, phase %d, strip %d)", e.Task, e.Kind, e.Phase, e.Strip)
	}
	s += fmt.Sprintf(" on ctx%d at cycle %d", e.Ctx, e.Cycle)
	if e.Attempts > 0 {
		s += fmt.Sprintf(" after %d attempts", e.Attempts)
	}
	if e.Err != nil {
		s += ": " + e.Err.Error()
	}
	if e.Diag != "" {
		s += "\n" + e.Diag
	}
	return s
}

// Unwrap exposes the sentinel cause to errors.Is.
func (e *RunError) Unwrap() error { return e.Err }

// Cancelled reports whether the run was aborted by its Config.Ctx —
// a caller-imposed deadline or cancellation rather than a simulated
// failure. Cancelled runs must not be retried or degraded: the caller
// asked for the work to stop, and re-running it sequentially would
// blow straight past the same deadline.
func (e *RunError) Cancelled() bool {
	return errors.Is(e.Err, context.Canceled) || errors.Is(e.Err, context.DeadlineExceeded)
}

// Cancelled reports whether err is (or wraps) a RunError caused by
// context cancellation or deadline expiry.
func Cancelled(err error) bool {
	var re *RunError
	return errors.As(err, &re) && re.Cancelled()
}

// RecoverySummary accounts one run's fault-recovery activity; it is
// all zeros for a machine without a fault injector.
type RecoverySummary struct {
	// FaultsInjected counts injector fires attributed to this run.
	FaultsInjected uint64
	// Retries counts strip re-executions after an injected gather or
	// kernel fault.
	Retries uint64
	// ScrubbedDeps counts stale dependence bits the watchdog's Scrub
	// recovered after dropped dependence-clears.
	ScrubbedDeps uint64
	// WakeupTimeouts counts engine deadline wakes that recovered
	// dropped wakeup signals.
	WakeupTimeouts uint64
	// WatchdogTimeouts counts wait budgets that expired without
	// progress (each triggers a scrub/abort decision).
	WatchdogTimeouts uint64
	// Degraded reports that the two-context schedule exhausted its
	// retries and the run was completed by the sequential fallback.
	Degraded bool
	// AbortedCycles is the virtual time spent in the abandoned
	// two-context attempt before degradation.
	AbortedCycles uint64
}

// Accumulate folds another run's (or an aborted attempt's) recovery
// activity into this summary.
func (r *RecoverySummary) Accumulate(o RecoverySummary) {
	r.FaultsInjected += o.FaultsInjected
	r.Retries += o.Retries
	r.ScrubbedDeps += o.ScrubbedDeps
	r.WakeupTimeouts += o.WakeupTimeouts
	r.WatchdogTimeouts += o.WatchdogTimeouts
	r.Degraded = r.Degraded || o.Degraded
	r.AbortedCycles += o.AbortedCycles
}

// Any reports whether any recovery activity occurred.
func (r RecoverySummary) Any() bool {
	return r.FaultsInjected != 0 || r.Retries != 0 || r.ScrubbedDeps != 0 ||
		r.WakeupTimeouts != 0 || r.WatchdogTimeouts != 0 || r.Degraded
}

// String renders the non-zero recovery counters on one line.
func (r RecoverySummary) String() string {
	if !r.Any() {
		return "no faults"
	}
	s := fmt.Sprintf("%d faults injected, %d retries, %d deps scrubbed, %d wakeup timeouts, %d watchdog timeouts",
		r.FaultsInjected, r.Retries, r.ScrubbedDeps, r.WakeupTimeouts, r.WatchdogTimeouts)
	if r.Degraded {
		s += fmt.Sprintf("; degraded to 1-ctx after %d aborted cycles", r.AbortedCycles)
	}
	return s
}
