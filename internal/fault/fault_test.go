package fault

import (
	"strings"
	"testing"
)

// TestReplayIdentity: two injectors with the same seed and the same
// call sequence must produce identical fault schedules and traces.
func TestReplayIdentity(t *testing.T) {
	cfg := Config{Seed: 42}
	for k := range cfg.Rate {
		cfg.Rate[k] = 0.1
	}
	run := func() (string, []bool) {
		in := New(cfg)
		var fired []bool
		for i := 0; i < 500; i++ {
			k := Kind(i % int(numKinds))
			f := in.Roll(k, uint64(i))
			if f {
				in.Annotate("site")
			}
			fired = append(fired, f)
		}
		return in.TraceString(), fired
	}
	tr1, f1 := run()
	tr2, f2 := run()
	if tr1 != tr2 {
		t.Fatalf("traces differ:\n%s\nvs\n%s", tr1, tr2)
	}
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatalf("draw %d differs", i)
		}
	}
	if tr1 == "" {
		t.Fatal("expected at least one fault at rate 0.1 over 500 draws")
	}
}

// TestSeedChangesSchedule: a different seed produces a different
// schedule (overwhelmingly likely over 500 draws).
func TestSeedChangesSchedule(t *testing.T) {
	mk := func(seed uint64) string {
		cfg := Config{Seed: seed}
		cfg.Rate[KernelFault] = 0.2
		in := New(cfg)
		for i := 0; i < 500; i++ {
			in.Roll(KernelFault, uint64(i))
		}
		return in.TraceString()
	}
	if mk(1) == mk(2) {
		t.Fatal("seeds 1 and 2 produced identical schedules")
	}
}

// TestRateZeroConsumesNoDraws: disabled kinds must not perturb the
// draw stream, so enabling one kind leaves another kind's schedule
// unchanged.
func TestRateZeroConsumesNoDraws(t *testing.T) {
	in := New(Config{Seed: 7})
	for i := 0; i < 100; i++ {
		if in.Roll(LatencySpike, 0) {
			t.Fatal("rate-0 kind fired")
		}
	}
	if in.Draws() != 0 {
		t.Fatalf("rate-0 rolls consumed %d draws", in.Draws())
	}

	// The kernel_fault schedule must be identical whether or not a
	// disabled kind is interleaved.
	trace := func(interleave bool) string {
		cfg := Config{Seed: 9}
		cfg.Rate[KernelFault] = 0.3
		in := New(cfg)
		for i := 0; i < 200; i++ {
			if interleave {
				in.Roll(LatencySpike, uint64(i))
			}
			in.Roll(KernelFault, uint64(i))
		}
		return in.TraceString()
	}
	if trace(false) != trace(true) {
		t.Fatal("disabled kind perturbed another kind's schedule")
	}
}

func TestMaxPerKind(t *testing.T) {
	cfg := Config{Seed: 3}
	cfg.Rate[EnqueueFull] = 1
	cfg.MaxPerKind[EnqueueFull] = 4
	in := New(cfg)
	for i := 0; i < 100; i++ {
		in.Roll(EnqueueFull, 0)
	}
	if got := in.Injected(EnqueueFull); got != 4 {
		t.Fatalf("cap 4, injected %d", got)
	}
	if in.Total() != 4 {
		t.Fatalf("Total = %d", in.Total())
	}
}

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("kernel_fault:0.25,poisoned_strip:0.5")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Rate[KernelFault] != 0.25 || cfg.Rate[PoisonedStrip] != 0.5 {
		t.Fatalf("rates = %v", cfg.Rate)
	}
	if cfg.Rate[LatencySpike] != 0 {
		t.Fatal("unmentioned kind got a rate")
	}
	cfg, err = ParseSpec("all:0.1")
	if err != nil {
		t.Fatal(err)
	}
	for k, r := range cfg.Rate {
		if r != 0.1 {
			t.Fatalf("all: kind %d rate %g", k, r)
		}
	}
	for _, bad := range []string{"nope:0.1", "kernel_fault", "kernel_fault:2", "kernel_fault:-1"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("ParseSpec(%q) accepted", bad)
		}
	}
	if _, err := ParseSpec(""); err != nil {
		t.Fatal("empty spec must be valid (no faults)")
	}
}

// TestParseSpecNamesOffendingToken: malformed rates must be rejected
// (Sscanf used to accept "0.5x" as 0.5) and the error must name the
// bad token so an HTTP 400 built from it is actionable.
func TestParseSpecNamesOffendingToken(t *testing.T) {
	cases := []struct {
		spec string
		want []string // substrings the error must contain
	}{
		{"kernel_fault:0.5x", []string{`"0.5x"`, "kernel_fault", "not a number"}},
		{"kernel_fault:", []string{`""`, "kernel_fault", "not a number"}},
		{"kernel_fault:rate", []string{`"rate"`, "not a number"}},
		{"kernel_fault:NaN", []string{"NaN", "outside [0,1]"}},
		{"kernel_fault:1.5", []string{"1.5", "outside [0,1]"}},
		{"latency_spike:0.1,poisoned_strip:zz", []string{`"zz"`, "poisoned_strip"}},
	}
	for _, c := range cases {
		_, err := ParseSpec(c.spec)
		if err == nil {
			t.Fatalf("ParseSpec(%q) accepted", c.spec)
		}
		for _, w := range c.want {
			if !strings.Contains(err.Error(), w) {
				t.Fatalf("ParseSpec(%q) error %q does not name %q", c.spec, err, w)
			}
		}
	}
	// Scientific notation and surrounding whitespace stay accepted.
	cfg, err := ParseSpec(" kernel_fault: 2.5e-1 ")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Rate[KernelFault] != 0.25 {
		t.Fatalf("rate = %g", cfg.Rate[KernelFault])
	}
}

// TestDeriveSeed: stable across calls, sensitive to both inputs.
func TestDeriveSeed(t *testing.T) {
	if DeriveSeed(7, "job-a") != DeriveSeed(7, "job-a") {
		t.Fatal("DeriveSeed not deterministic")
	}
	if DeriveSeed(7, "job-a") == DeriveSeed(7, "job-b") {
		t.Fatal("DeriveSeed ignores id")
	}
	if DeriveSeed(7, "job-a") == DeriveSeed(8, "job-a") {
		t.Fatal("DeriveSeed ignores base")
	}
	// Two injectors derived for different ids must diverge, and the
	// same (base, id) must replay the same schedule.
	mk := func(base uint64, id string) string {
		cfg := Config{Seed: DeriveSeed(base, id)}
		cfg.Rate[KernelFault] = 0.2
		in := New(cfg)
		for i := 0; i < 300; i++ {
			in.Roll(KernelFault, uint64(i))
		}
		return in.TraceString()
	}
	if mk(1, "row/comp=4") != mk(1, "row/comp=4") {
		t.Fatal("derived schedule not replayable")
	}
	if mk(1, "row/comp=4") == mk(1, "row/comp=8") {
		t.Fatal("derived schedules identical across rows")
	}
}

func TestKindRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Fatalf("round trip %v: %v, %v", k, got, err)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Fatal("ParseKind accepted bogus")
	}
}
