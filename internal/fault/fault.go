// Package fault implements deterministic, seeded fault injection for
// the simulator's run path. Every potential fault site draws from a
// single splitmix64 stream owned by the Injector; because simulated
// threads are engine-serialised, the draw order is a pure function of
// the program and seed, so a failing run replays byte-identically from
// its seed. The injector records every fired fault (sequence number,
// kind, cycle, site), giving a replayable fault trace.
//
// The fault taxonomy follows the paper's execution model (§III-B):
// timing faults in the machine model (latency spikes, lost wakeup
// signals), queue faults in the distributed work queue (lost
// dependence-clear updates, transient enqueue failures), and data
// faults in the strip pipeline (faulted kernels, poisoned SRF strips).
// Scatters are deliberately not a fault site: a scatter-add commits
// non-idempotent state, so recovery re-runs only the idempotent
// gather/kernel stages.
package fault

import (
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
	"strings"

	"streamgpp/internal/obs"
)

// Kind enumerates the injectable fault classes.
type Kind uint8

const (
	// LatencySpike stretches one memory operation by SpikeCycles —
	// a DRAM refresh collision or SMI storm on the real machine.
	LatencySpike Kind = iota
	// DroppedWakeup loses one Signal: sleeping contexts are not woken
	// (a lost MONITOR arm race). Spinning waiters are unaffected.
	DroppedWakeup
	// DroppedDepClear makes one task completion skip clearing its bit
	// in the waiting slots' dependence vectors (a lost queue update).
	DroppedDepClear
	// EnqueueFull makes one Enqueue spuriously report a full queue (a
	// transient reservation failure); the control thread retries.
	EnqueueFull
	// KernelFault marks one kernel execution as having faulted; the
	// executor re-runs the strip.
	KernelFault
	// PoisonedStrip marks one gathered SRF strip as corrupt; the
	// executor re-issues the gather.
	PoisonedStrip

	numKinds
)

var kindNames = [numKinds]string{
	"latency_spike", "dropped_wakeup", "dropped_dep_clear",
	"enqueue_full", "kernel_fault", "poisoned_strip",
}

// String returns the stable snake_case name used by CLI flags and
// metric names.
func (k Kind) String() string {
	if k >= numKinds {
		return fmt.Sprintf("fault.Kind(%d)", k)
	}
	return kindNames[k]
}

// ParseKind resolves a fault-kind name as printed by String.
func ParseKind(s string) (Kind, error) {
	for k, name := range kindNames {
		if s == name {
			return Kind(k), nil
		}
	}
	return 0, fmt.Errorf("fault: unknown kind %q (want one of %s)", s, strings.Join(kindNames[:], ", "))
}

// Kinds returns all fault kinds, for matrix-style sweeps.
func Kinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// Config parameterises an Injector. The zero value injects nothing.
type Config struct {
	// Seed selects the deterministic draw stream.
	Seed uint64
	// Rate[k] is the per-draw fire probability of kind k in [0,1].
	// Kinds at rate 0 never consume a draw, so enabling one kind does
	// not perturb another kind's schedule.
	Rate [numKinds]float64
	// MaxPerKind[k], when non-zero, caps how many faults of kind k
	// fire; capped kinds stop consuming draws.
	MaxPerKind [numKinds]uint64
	// SpikeCycles is the extra latency of one LatencySpike (default
	// 2000 cycles when zero).
	SpikeCycles uint64
}

// ParseSpec parses a CLI fault specification: comma-separated
// kind:rate pairs, e.g. "kernel_fault:0.01,poisoned_strip:0.02".
// The pseudo-kind "all" sets every rate at once.
func ParseSpec(spec string) (Config, error) {
	var cfg Config
	if spec == "" {
		return cfg, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		name, rateStr, ok := strings.Cut(part, ":")
		if !ok {
			return cfg, fmt.Errorf("fault: spec entry %q is not kind:rate (e.g. \"kernel_fault:0.01\")", part)
		}
		// strconv.ParseFloat, not Sscanf: Sscanf("%g") stops at the
		// first non-numeric byte, so "0.5x" silently parsed as 0.5 and
		// the caller never learned about the trailing garbage.
		rate, err := strconv.ParseFloat(strings.TrimSpace(rateStr), 64)
		if err != nil {
			return cfg, fmt.Errorf("fault: spec entry %q: rate %q of kind %q is not a number", part, rateStr, name)
		}
		if math.IsNaN(rate) || rate < 0 || rate > 1 {
			return cfg, fmt.Errorf("fault: spec entry %q: rate %v of kind %q is outside [0,1]", part, rateStr, name)
		}
		if name == "all" {
			for k := range cfg.Rate {
				cfg.Rate[k] = rate
			}
			continue
		}
		k, err := ParseKind(name)
		if err != nil {
			return cfg, err
		}
		cfg.Rate[k] = rate
	}
	return cfg, nil
}

// DeriveSeed derives a per-run injector seed from a shared base seed
// and a stable identity string (a streamd job's canonical config key,
// a bench row key). The derivation is a pure function of its inputs,
// so a derived run replays byte-identically from (base, id) alone —
// which is what lets the parallel experiment runner give every row its
// own injector without losing determinism: row schedules no longer
// depend on which goroutine drew from a shared stream first.
func DeriveSeed(base uint64, id string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	// Mix through the splitmix64 finaliser so base and id both diffuse
	// into every output bit (plain XOR would leave base recoverable and
	// correlate nearby ids).
	z := base ^ h.Sum64()
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Record is one fired fault in the trace.
type Record struct {
	Seq   uint64 // draw number that fired (position in the draw stream)
	Kind  Kind
	Cycle uint64 // virtual cycle at the fault site, when known
	Site  string // annotated site (task name or subsystem), when known
}

// Injector is the seeded fault source. It is not safe for concurrent
// use from Go threads; in this codebase every caller is a simulated
// thread serialised by the sim engine, which is what makes the draw
// order — and therefore the fault schedule — deterministic.
type Injector struct {
	cfg      Config
	rng      uint64
	draws    uint64
	injected [numKinds]uint64
	records  []Record
}

// New returns an injector drawing from cfg.Seed.
func New(cfg Config) *Injector {
	if cfg.SpikeCycles == 0 {
		cfg.SpikeCycles = 2000
	}
	return &Injector{cfg: cfg, rng: cfg.Seed}
}

// Config returns the injector's configuration.
func (in *Injector) Config() Config { return in.cfg }

// next advances the splitmix64 stream. splitmix64 rather than
// math/rand so the schedule is stable across Go releases.
func (in *Injector) next() uint64 {
	in.rng += 0x9e3779b97f4a7c15
	z := in.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Roll decides whether a fault of kind k fires at this site. cycle is
// the local virtual clock when the caller has one (0 otherwise); it
// only annotates the trace. A kind at rate 0 or at its cap returns
// false without consuming a draw.
func (in *Injector) Roll(k Kind, cycle uint64) bool {
	rate := in.cfg.Rate[k]
	if rate <= 0 {
		return false
	}
	if max := in.cfg.MaxPerKind[k]; max != 0 && in.injected[k] >= max {
		return false
	}
	in.draws++
	if float64(in.next()>>11)/(1<<53) >= rate {
		return false
	}
	in.injected[k]++
	in.records = append(in.records, Record{Seq: in.draws, Kind: k, Cycle: cycle})
	return true
}

// Annotate tags the most recently fired fault with its site (task or
// subsystem name). Call immediately after a true Roll.
func (in *Injector) Annotate(site string) {
	if n := len(in.records); n > 0 {
		in.records[n-1].Site = site
	}
}

// SpikeCycles returns the configured latency-spike magnitude.
func (in *Injector) SpikeCycles() uint64 { return in.cfg.SpikeCycles }

// Injected returns how many faults of kind k have fired.
func (in *Injector) Injected(k Kind) uint64 { return in.injected[k] }

// Total returns how many faults of any kind have fired.
func (in *Injector) Total() uint64 {
	var t uint64
	for _, n := range in.injected {
		t += n
	}
	return t
}

// Draws returns how many randomness draws have been consumed.
func (in *Injector) Draws() uint64 { return in.draws }

// Records returns the fault trace in fire order. The slice is owned by
// the injector; do not mutate it.
func (in *Injector) Records() []Record { return in.records }

// TraceString renders the fault trace, one fault per line — the
// replay-identity artifact: two runs with the same seed and workload
// must render identical traces.
func (in *Injector) TraceString() string {
	var sb strings.Builder
	for _, r := range in.records {
		fmt.Fprintf(&sb, "#%d %s cycle=%d", r.Seq, r.Kind, r.Cycle)
		if r.Site != "" {
			fmt.Fprintf(&sb, " site=%s", r.Site)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Publish copies the per-kind fire counts into the registry as
// fault.injected.<kind> gauges (gauges, not counters, so repeated
// publication is idempotent).
func (in *Injector) Publish(r *obs.Registry) {
	if r == nil {
		return
	}
	for k := Kind(0); k < numKinds; k++ {
		r.Gauge("fault.injected." + k.String()).Set(float64(in.injected[k]))
	}
	r.Gauge("fault.draws").Set(float64(in.draws))
}
