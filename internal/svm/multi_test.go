package svm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"streamgpp/internal/sim"
)

func TestGatherMultiFunctional(t *testing.T) {
	m := testMachine()
	l := Layout("r", F("a", 8), F("b", 8))
	src := NewArray(m, "src", l, 10)
	src.Fill(func(i, f int) float64 { return float64(i*10 + f) })

	i1 := NewIndexArray(m, "i1", 4)
	i2 := NewIndexArray(m, "i2", 4)
	copy(i1.Idx, []int32{0, 1, 2, 3})
	copy(i2.Idx, []int32{9, 8, 7, 6})

	dst := NewStream("d", 4, F("a1", 8), F("b1", 8), F("a2", 8), F("b2", 8))
	GatherMulti(nil, DefaultOps(), dst, 0, src, l.AllFields(), []*IndexArray{i1, i2}, 0, 4, SRFBuf{})

	for k := 0; k < 4; k++ {
		if dst.At(k, 0) != float64(k*10) || dst.At(k, 1) != float64(k*10+1) {
			t.Fatalf("elem %d first index set wrong: %v %v", k, dst.At(k, 0), dst.At(k, 1))
		}
		want := float64((9 - k) * 10)
		if dst.At(k, 2) != want || dst.At(k, 3) != want+1 {
			t.Fatalf("elem %d second index set wrong: %v %v", k, dst.At(k, 2), dst.At(k, 3))
		}
	}
}

func TestGatherMultiFieldCountMismatchPanics(t *testing.T) {
	m := testMachine()
	l := Layout("r", F("a", 8))
	src := NewArray(m, "src", l, 4)
	i1 := NewIndexArray(m, "i1", 4)
	dst := NewStream("d", 4, F("x", 8)) // needs 2 fields for 2 indices
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on field-count mismatch")
		}
	}()
	GatherMulti(nil, DefaultOps(), dst, 0, src, l.AllFields(), []*IndexArray{i1, i1}, 0, 4, SRFBuf{})
}

func TestGatherMultiNoIndicesPanics(t *testing.T) {
	m := testMachine()
	l := Layout("r", F("a", 8))
	src := NewArray(m, "src", l, 4)
	dst := NewStream("d", 4, F("x", 8))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty index list")
		}
	}()
	GatherMulti(nil, DefaultOps(), dst, 0, src, l.AllFields(), nil, 0, 4, SRFBuf{})
}

func TestGatherMultiOutOfRangePanics(t *testing.T) {
	m := testMachine()
	l := Layout("r", F("a", 8))
	src := NewArray(m, "src", l, 4)
	i1 := NewIndexArray(m, "i1", 1)
	i1.Idx[0] = 4 // out of range
	dst := NewStream("d", 1, F("x", 8))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on out-of-range index")
		}
	}()
	GatherMulti(nil, DefaultOps(), dst, 0, src, l.AllFields(), []*IndexArray{i1}, 0, 1, SRFBuf{})
}

// Property: GatherMulti with k index arrays equals k separate Gathers.
func TestGatherMultiEqualsSeparateGathers(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := testMachine()
		l := Layout("r", F("a", 8), F("b", 8))
		n := 20 + rng.Intn(30)
		src := NewArray(m, "src", l, n)
		src.Fill(func(i, f int) float64 { return rng.Float64() })

		k := 2 + rng.Intn(2) // 2 or 3 index arrays
		idxs := make([]*IndexArray, k)
		for j := range idxs {
			idxs[j] = NewIndexArray(m, "i", n)
			for i := range idxs[j].Idx {
				idxs[j].Idx[i] = int32(rng.Intn(n))
			}
		}

		fields := make([]Field, 2*k)
		for j := 0; j < 2*k; j++ {
			fields[j] = F("f", 8)
		}
		multi := NewStream("multi", n, fields...)
		GatherMulti(nil, DefaultOps(), multi, 0, src, l.AllFields(), idxs, 0, n, SRFBuf{})

		for j, ix := range idxs {
			single := StreamOf("single", n, l, l.AllFields())
			Gather(nil, DefaultOps(), single, 0, src, l.AllFields(), 0, ix, 0, n, SRFBuf{})
			for i := 0; i < n; i++ {
				if multi.At(i, 2*j) != single.At(i, 0) || multi.At(i, 2*j+1) != single.At(i, 1) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// A single-pass multi-gather over nearby indices must fetch far fewer
// bus bytes than separate passes (the locality it exists for).
func TestGatherMultiSavesBusTraffic(t *testing.T) {
	const n = 100000 // 800 KB: larger than the NT ways, so separate passes re-fetch
	build := func() (*sim.Machine, *Array, [3]*IndexArray) {
		m := testMachine()
		l := Layout("r", F("v", 8))
		src := NewArray(m, "src", l, n)
		var idxs [3]*IndexArray
		for j := range idxs {
			idxs[j] = NewIndexArray(m, "i", n)
			for i := range idxs[j].Idx {
				v := i + j*3 - 1 // three interleaved nearby walks
				if v < 0 {
					v = 0
				}
				if v >= n {
					v = n - 1
				}
				idxs[j].Idx[i] = int32(v)
			}
		}
		return m, src, idxs
	}

	// Multi: one pass.
	m1, src1, idxs1 := build()
	fields := []Field{F("a", 8), F("b", 8), F("c", 8)}
	multi := NewStream("m", n, fields...)
	m1.Run(func(c *sim.CPU) {
		GatherMulti(c, DefaultOps(), multi, 0, src1, src1.Layout.AllFields(), idxs1[:], 0, n, SRFBuf{})
	})
	multiBytes := m1.Mem.Bus.Stats.Bytes

	// Separate: three passes.
	m2, src2, idxs2 := build()
	m2.Run(func(c *sim.CPU) {
		for j := 0; j < 3; j++ {
			s := StreamOf("s", n, src2.Layout, src2.Layout.AllFields())
			Gather(c, DefaultOps(), s, 0, src2, src2.Layout.AllFields(), 0, idxs2[j], 0, n, SRFBuf{})
		}
	})
	sepBytes := m2.Mem.Bus.Stats.Bytes

	if float64(sepBytes) < 1.5*float64(multiBytes) {
		t.Fatalf("multi-gather moved %d bytes, separate %d: want >= 1.5x saving", multiBytes, sepBytes)
	}
}
