// Package svm implements the Stream Virtual Machine abstractions of
// the paper: arrays of records in global memory, streams of selected
// record fields, the Stream Register File (SRF) pinned in cache, bulk
// gather/scatter operations, and computation kernels.
//
// Functional data and timing are decoupled: every array and stream
// carries its values in ordinary Go float64 slices (one value per
// field), while its simulated placement — the addresses that flow
// through the cache, TLB and bus models of internal/sim — is described
// by a record layout in bytes. This lets the same code both compute
// correct results and reproduce the paper's memory-system behaviour.
package svm

import (
	"fmt"
	"strings"
)

// Field is one member of a record layout. Offset and Size are in
// bytes within the record; each field carries exactly one float64
// value functionally, whatever its simulated byte size.
type Field struct {
	Name   string
	Offset int
	Size   int
}

// RecordLayout describes the byte layout of one array record. Stride is
// the distance between consecutive records (≥ the span of the fields;
// padding is how the paper's records get "huge").
type RecordLayout struct {
	Name   string
	Fields []Field
	Stride int
}

// Layout builds a packed record layout from (name, size) pairs laid out
// back to back, with stride equal to the total span.
func Layout(name string, fields ...Field) RecordLayout {
	off := 0
	out := make([]Field, len(fields))
	for i, f := range fields {
		if f.Size <= 0 {
			panic(fmt.Sprintf("svm: field %s.%s has size %d", name, f.Name, f.Size))
		}
		out[i] = Field{Name: f.Name, Offset: off, Size: f.Size}
		off += f.Size
	}
	return RecordLayout{Name: name, Fields: out, Stride: off}
}

// F is shorthand for a field spec fed to Layout (Offset is assigned by
// Layout).
func F(name string, size int) Field { return Field{Name: name, Size: size} }

// WithStride returns a copy of the layout with the given record stride
// (to model records bigger than their useful fields, as in Fig. 5's
// record-size sweeps).
func (l RecordLayout) WithStride(stride int) RecordLayout {
	if stride < l.Span() {
		panic(fmt.Sprintf("svm: stride %d smaller than field span %d", stride, l.Span()))
	}
	l.Stride = stride
	return l
}

// Span returns the number of bytes from the start of the record to the
// end of its last field.
func (l RecordLayout) Span() int {
	end := 0
	for _, f := range l.Fields {
		if e := f.Offset + f.Size; e > end {
			end = e
		}
	}
	return end
}

// NumFields returns the field count.
func (l RecordLayout) NumFields() int { return len(l.Fields) }

// FieldIndex returns the index of the named field, or -1.
func (l RecordLayout) FieldIndex(name string) int {
	for i, f := range l.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// Select returns the indices of the named fields, panicking on unknown
// names. This is how kernels declare which record fields they actually
// use, so gathers copy only those (§II-B's selective copy).
func (l RecordLayout) Select(names ...string) []int {
	idx := make([]int, len(names))
	for i, n := range names {
		j := l.FieldIndex(n)
		if j < 0 {
			panic(fmt.Sprintf("svm: layout %s has no field %q", l.Name, n))
		}
		idx[i] = j
	}
	return idx
}

// AllFields returns [0, 1, ... NumFields-1].
func (l RecordLayout) AllFields() []int {
	idx := make([]int, len(l.Fields))
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// Groups coalesces the selected field indices into runs that are
// contiguous in memory. Each run can move with one block copy — the
// paper's field-reorganisation optimisation ("fields accessed by
// kernels can be copied to/from the SRF using optimized block copy
// routines rather than individual loads and stores").
type Group struct {
	Offset int   // byte offset of the run within the record
	Size   int   // bytes
	Fields []int // field indices in the run, in memory order
}

// Groups returns the contiguous runs covering the selected fields.
func (l RecordLayout) Groups(selected []int) []Group {
	if len(selected) == 0 {
		return nil
	}
	// Sort by offset without mutating the caller's slice.
	idx := append([]int(nil), selected...)
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && l.Fields[idx[j]].Offset < l.Fields[idx[j-1]].Offset; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	var groups []Group
	cur := Group{Offset: l.Fields[idx[0]].Offset, Size: l.Fields[idx[0]].Size, Fields: []int{idx[0]}}
	for _, fi := range idx[1:] {
		f := l.Fields[fi]
		if f.Offset == cur.Offset+cur.Size {
			cur.Size += f.Size
			cur.Fields = append(cur.Fields, fi)
			continue
		}
		groups = append(groups, cur)
		cur = Group{Offset: f.Offset, Size: f.Size, Fields: []int{fi}}
	}
	return append(groups, cur)
}

// SelectedBytes returns the total byte size of the selected fields.
func (l RecordLayout) SelectedBytes(selected []int) int {
	n := 0
	for _, fi := range selected {
		n += l.Fields[fi].Size
	}
	return n
}

// String renders the layout for diagnostics.
func (l RecordLayout) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s{", l.Name)
	for i, f := range l.Fields {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s@%d:%d", f.Name, f.Offset, f.Size)
	}
	fmt.Fprintf(&sb, "} stride=%d", l.Stride)
	return sb.String()
}
