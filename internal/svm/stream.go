package svm

import "fmt"

// Stream is a sequence of packed records flowing between gathers,
// kernels and scatters. Unlike an Array, a stream's simulated home is
// the SRF: the compiler assigns it per-strip buffers there. The full
// functional contents live in Data so kernels and checks can address
// any element; residency in the SRF is purely a timing concept.
type Stream struct {
	Name   string
	Fields []Field // packed: offsets are within the stream record
	N      int     // logical length in elements
	Data   []float64

	// buffers are the double-buffered SRF strips assigned by the
	// compiler (nil until compiled).
	buffers []SRFBuf
}

// NewStream creates a stream of n elements whose record consists of the
// given packed fields.
func NewStream(name string, n int, fields ...Field) *Stream {
	if n <= 0 {
		panic(fmt.Sprintf("svm: stream %s with %d elements", name, n))
	}
	packed := make([]Field, len(fields))
	off := 0
	for i, f := range fields {
		if f.Size <= 0 {
			panic(fmt.Sprintf("svm: stream %s field %s size %d", name, f.Name, f.Size))
		}
		packed[i] = Field{Name: f.Name, Offset: off, Size: f.Size}
		off += f.Size
	}
	return &Stream{
		Name:   name,
		Fields: packed,
		N:      n,
		Data:   make([]float64, n*len(packed)),
	}
}

// StreamOf creates a stream shaped to carry the selected fields of the
// array's layout (the result of a gather).
func StreamOf(name string, n int, src RecordLayout, selected []int) *Stream {
	fields := make([]Field, len(selected))
	for i, fi := range selected {
		fields[i] = F(src.Fields[fi].Name, src.Fields[fi].Size)
	}
	return NewStream(name, n, fields...)
}

// ElemBytes returns the packed byte size of one stream element.
func (s *Stream) ElemBytes() int {
	n := 0
	for _, f := range s.Fields {
		n += f.Size
	}
	return n
}

// NumFields returns the per-element field count.
func (s *Stream) NumFields() int { return len(s.Fields) }

// At returns field f of element i.
func (s *Stream) At(i, f int) float64 { return s.Data[i*len(s.Fields)+f] }

// Set assigns field f of element i.
func (s *Stream) Set(i, f int, v float64) { s.Data[i*len(s.Fields)+f] = v }

// Slice returns the functional values of elements [start, start+n) as a
// flat, record-major view for kernel bodies.
func (s *Stream) Slice(start, n int) []float64 {
	nf := len(s.Fields)
	return s.Data[start*nf : (start+n)*nf]
}

// BindBuffers attaches the double-buffered SRF strips (called by the
// compiler).
func (s *Stream) BindBuffers(bufs []SRFBuf) { s.buffers = bufs }

// Buffer returns the SRF buffer used by strip number strip (round-robin
// over the double buffers). Panics if the stream is not compiled.
func (s *Stream) Buffer(strip int) SRFBuf {
	if len(s.buffers) == 0 {
		panic(fmt.Sprintf("svm: stream %s has no SRF buffers bound", s.Name))
	}
	return s.buffers[strip%len(s.buffers)]
}

// Buffered reports whether SRF buffers are bound.
func (s *Stream) Buffered() bool { return len(s.buffers) > 0 }

// FieldIndex returns the index of the named field, or -1.
func (s *Stream) FieldIndex(name string) int {
	for i, f := range s.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}
