package svm

import (
	"fmt"

	"streamgpp/internal/obs"
	"streamgpp/internal/sim"
)

// SRF is the Stream Register File: a contiguous region of simulated
// memory sized to sit comfortably inside the L2 cache, where every
// stream strip lives. Gathers write into it with temporal stores while
// array traffic uses non-temporal hints, so the cache's insertion
// policy keeps it pinned (§III-A).
type SRF struct {
	Region   sim.Region
	capacity uint64
	used     uint64
	maxUsed  uint64 // high-water mark across Resets
	allocs   []SRFBuf
	obs      *obs.Registry // the machine's registry at creation, or nil
}

// SRFBuf is one allocation inside the SRF.
type SRFBuf struct {
	Name string
	Base sim.Addr
	Size uint64
}

// DefaultSRFFraction is how much of the L2 the SRF occupies by default,
// leaving room for stacks, code and the NT ways.
const DefaultSRFFraction = 0.25

// NewSRF allocates an SRF of the given size in the machine's address
// space. Size must not exceed the L2 capacity (it could not be pinned).
func NewSRF(m *sim.Machine, bytes uint64) (*SRF, error) {
	if bytes == 0 {
		return nil, fmt.Errorf("svm: zero-size SRF")
	}
	l2 := uint64(m.Config().L2Bytes)
	if bytes > l2 {
		return nil, fmt.Errorf("svm: SRF of %d bytes exceeds the %d-byte L2 — it cannot be pinned", bytes, l2)
	}
	s := &SRF{Region: m.AS.Alloc("SRF", bytes), capacity: bytes, obs: m.Observer()}
	if s.obs != nil {
		s.obs.Gauge("svm.srf.capacity_bytes").Set(float64(bytes))
	}
	if tl := m.Timeline(); tl != nil {
		// The executors Poll the machine's timeline at task boundaries;
		// this probe turns those polls into an SRF-occupancy time series
		// (fraction of SRF bytes allocated to live strip buffers).
		tl.Probe("srf occupancy", func() float64 {
			return float64(s.used) / float64(s.capacity)
		})
	}
	return s, nil
}

// DefaultSRF allocates an SRF of DefaultSRFFraction of the L2.
func DefaultSRF(m *sim.Machine) *SRF {
	s, err := NewSRF(m, uint64(float64(m.Config().L2Bytes)*DefaultSRFFraction))
	if err != nil {
		panic(err) // unreachable: the fraction is < 1
	}
	return s
}

// Capacity returns the SRF size in bytes.
func (s *SRF) Capacity() uint64 { return s.capacity }

// Used returns the bytes currently allocated.
func (s *SRF) Used() uint64 { return s.used }

// MaxUsed returns the occupancy high-water mark, surviving Resets —
// how much SRF the compiled program actually needed at its widest
// phase.
func (s *SRF) MaxUsed() uint64 { return s.maxUsed }

// Free returns the bytes still available.
func (s *SRF) Free() uint64 { return s.capacity - s.used }

// Alloc reserves bytes in the SRF, aligned to 64 bytes so strip buffers
// start on cache-line boundaries.
func (s *SRF) Alloc(name string, bytes uint64) (SRFBuf, error) {
	const align = 64
	bytes = (bytes + align - 1) &^ uint64(align-1)
	if bytes == 0 {
		bytes = align
	}
	if s.used+bytes > s.capacity {
		return SRFBuf{}, fmt.Errorf("svm: SRF overflow allocating %q: %d bytes needed, %d free", name, bytes, s.Free())
	}
	b := SRFBuf{Name: name, Base: s.Region.Base + s.used, Size: bytes}
	s.used += bytes
	if s.used > s.maxUsed {
		s.maxUsed = s.used
	}
	if s.obs != nil {
		s.obs.Gauge("svm.srf.used_bytes").Set(float64(s.used))
		s.obs.Gauge("svm.srf.occupancy").Set(float64(s.maxUsed) / float64(s.capacity))
	}
	s.allocs = append(s.allocs, b)
	return b, nil
}

// Reset frees every allocation (between compiled programs sharing one
// machine).
func (s *SRF) Reset() {
	s.used = 0
	s.allocs = s.allocs[:0]
}

// Allocs returns all current allocations.
func (s *SRF) Allocs() []SRFBuf { return s.allocs }

// Residency returns the fraction of SRF bytes currently resident in
// the machine's L2 — the pinning diagnostic used by the paper's
// "measurements of cache miss rates on the SRF".
func (s *SRF) Residency(m *sim.Machine) float64 {
	if s.used == 0 {
		return 1
	}
	return float64(m.Mem.L2.ResidentBytes(s.Region.Base, s.used)) / float64(s.used)
}

// ElemAddr returns the simulated address of element i (of elemBytes
// each) within the buffer.
func (b SRFBuf) ElemAddr(i, elemBytes int) sim.Addr {
	return b.Base + uint64(i*elemBytes)
}

// End returns one past the buffer's last byte.
func (b SRFBuf) End() sim.Addr { return b.Base + b.Size }
