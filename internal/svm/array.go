package svm

import (
	"fmt"

	"streamgpp/internal/sim"
)

// Array is an array of records in simulated global memory. Functional
// values live in Data (record-major, one float64 per field); the
// simulated placement is Region.
type Array struct {
	Name   string
	Layout RecordLayout
	N      int
	Region sim.Region
	Data   []float64
}

// NewArray allocates an array of n records in the machine's address
// space.
func NewArray(m *sim.Machine, name string, layout RecordLayout, n int) *Array {
	if n <= 0 {
		panic(fmt.Sprintf("svm: array %s with %d records", name, n))
	}
	if layout.Stride <= 0 {
		panic(fmt.Sprintf("svm: array %s layout has stride %d", name, layout.Stride))
	}
	return &Array{
		Name:   name,
		Layout: layout,
		N:      n,
		Region: m.AS.Alloc(name, uint64(n*layout.Stride)),
		Data:   make([]float64, n*len(layout.Fields)),
	}
}

// At returns the value of field f of record i.
func (a *Array) At(i, f int) float64 { return a.Data[i*len(a.Layout.Fields)+f] }

// Set assigns the value of field f of record i.
func (a *Array) Set(i, f int, v float64) { a.Data[i*len(a.Layout.Fields)+f] = v }

// Add accumulates into field f of record i.
func (a *Array) Add(i, f int, v float64) { a.Data[i*len(a.Layout.Fields)+f] += v }

// RecordAddr returns the simulated address of record i.
func (a *Array) RecordAddr(i int) sim.Addr {
	return a.Region.Base + uint64(i*a.Layout.Stride)
}

// FieldAddr returns the simulated address of field f of record i.
func (a *Array) FieldAddr(i, f int) sim.Addr {
	return a.RecordAddr(i) + uint64(a.Layout.Fields[f].Offset)
}

// Bytes returns the array's simulated footprint.
func (a *Array) Bytes() uint64 { return uint64(a.N * a.Layout.Stride) }

// Fill sets every record's fields from fn.
func (a *Array) Fill(fn func(i, f int) float64) {
	nf := len(a.Layout.Fields)
	for i := 0; i < a.N; i++ {
		for f := 0; f < nf; f++ {
			a.Data[i*nf+f] = fn(i, f)
		}
	}
}

// CloneData returns a copy of the functional contents (for comparing a
// regular run against a stream run).
func (a *Array) CloneData() []float64 { return append([]float64(nil), a.Data...) }

// RestoreData overwrites the functional contents from a CloneData
// snapshot.
func (a *Array) RestoreData(d []float64) {
	if len(d) != len(a.Data) {
		panic(fmt.Sprintf("svm: RestoreData length %d != %d", len(d), len(a.Data)))
	}
	copy(a.Data, d)
}

// IndexArray is an array of 32-bit element indices in simulated memory,
// used to drive indexed (random) gathers and scatters.
type IndexArray struct {
	Name   string
	Region sim.Region
	Idx    []int32
}

// IndexElemBytes is the simulated size of one index entry.
const IndexElemBytes = 4

// NewIndexArray allocates an index array of n entries.
func NewIndexArray(m *sim.Machine, name string, n int) *IndexArray {
	if n <= 0 {
		panic(fmt.Sprintf("svm: index array %s with %d entries", name, n))
	}
	return &IndexArray{
		Name:   name,
		Region: m.AS.Alloc(name, uint64(n*IndexElemBytes)),
		Idx:    make([]int32, n),
	}
}

// ElemAddr returns the simulated address of entry i.
func (x *IndexArray) ElemAddr(i int) sim.Addr {
	return x.Region.Base + uint64(i*IndexElemBytes)
}

// Len returns the number of entries.
func (x *IndexArray) Len() int { return len(x.Idx) }
