package svm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"streamgpp/internal/sim"
)

func testMachine() *sim.Machine { return sim.MustNew(sim.PentiumD8300()) }

func TestLayoutConstruction(t *testing.T) {
	l := Layout("cell", F("x", 8), F("y", 8), F("z", 4))
	if l.Stride != 20 || l.Span() != 20 || l.NumFields() != 3 {
		t.Fatalf("layout %v", l)
	}
	if l.Fields[1].Offset != 8 || l.Fields[2].Offset != 16 {
		t.Fatalf("offsets %v", l.Fields)
	}
	l2 := l.WithStride(64)
	if l2.Stride != 64 || l.Stride != 20 {
		t.Fatal("WithStride must copy")
	}
}

func TestLayoutWithStrideTooSmallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Layout("r", F("a", 8)).WithStride(4)
}

func TestLayoutSelect(t *testing.T) {
	l := Layout("r", F("a", 8), F("b", 8), F("c", 8))
	sel := l.Select("c", "a")
	if len(sel) != 2 || sel[0] != 2 || sel[1] != 0 {
		t.Fatalf("Select %v", sel)
	}
	if l.FieldIndex("missing") != -1 {
		t.Fatal("FieldIndex of missing field")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Select of unknown field did not panic")
		}
	}()
	l.Select("nope")
}

func TestLayoutGroupsCoalesceContiguous(t *testing.T) {
	l := Layout("r", F("a", 8), F("b", 8), F("c", 8), F("d", 8))
	// a,b contiguous; d separate.
	g := l.Groups([]int{0, 1, 3})
	if len(g) != 2 {
		t.Fatalf("groups %v", g)
	}
	if g[0].Offset != 0 || g[0].Size != 16 || len(g[0].Fields) != 2 {
		t.Fatalf("group 0: %+v", g[0])
	}
	if g[1].Offset != 24 || g[1].Size != 8 {
		t.Fatalf("group 1: %+v", g[1])
	}
	// Out-of-order selection coalesces the same way.
	g2 := l.Groups([]int{3, 1, 0})
	if len(g2) != 2 || g2[0].Size != 16 {
		t.Fatalf("unsorted groups %v", g2)
	}
	if l.SelectedBytes([]int{0, 3}) != 16 {
		t.Fatal("SelectedBytes wrong")
	}
	if l.Groups(nil) != nil {
		t.Fatal("Groups(nil) should be nil")
	}
}

func TestArrayBasics(t *testing.T) {
	m := testMachine()
	l := Layout("r", F("a", 8), F("b", 8))
	a := NewArray(m, "arr", l, 10)
	a.Set(3, 1, 42)
	if a.At(3, 1) != 42 {
		t.Fatal("Set/At")
	}
	a.Add(3, 1, 8)
	if a.At(3, 1) != 50 {
		t.Fatal("Add")
	}
	if a.FieldAddr(3, 1) != a.Region.Base+3*16+8 {
		t.Fatalf("FieldAddr %#x", a.FieldAddr(3, 1))
	}
	if a.Bytes() != 160 {
		t.Fatalf("Bytes %d", a.Bytes())
	}
	a.Fill(func(i, f int) float64 { return float64(i*10 + f) })
	if a.At(9, 1) != 91 {
		t.Fatal("Fill")
	}
	snap := a.CloneData()
	a.Set(0, 0, -1)
	a.RestoreData(snap)
	if a.At(0, 0) != 0 {
		t.Fatal("RestoreData")
	}
}

func TestStreamBasics(t *testing.T) {
	s := NewStream("s", 5, F("u", 8), F("v", 4))
	if s.ElemBytes() != 12 || s.NumFields() != 2 {
		t.Fatalf("stream %v %v", s.ElemBytes(), s.NumFields())
	}
	s.Set(4, 1, 7)
	if s.At(4, 1) != 7 {
		t.Fatal("Set/At")
	}
	sl := s.Slice(2, 2)
	if len(sl) != 4 {
		t.Fatalf("Slice len %d", len(sl))
	}
	sl[1] = 99 // element 2, field 1
	if s.At(2, 1) != 99 {
		t.Fatal("Slice does not alias")
	}
	if s.FieldIndex("v") != 1 || s.FieldIndex("w") != -1 {
		t.Fatal("FieldIndex")
	}
	if s.Buffered() {
		t.Fatal("fresh stream buffered")
	}
}

func TestStreamOfSelectsShape(t *testing.T) {
	l := Layout("r", F("a", 8), F("b", 4), F("c", 8))
	s := StreamOf("s", 3, l, l.Select("c", "a"))
	if s.NumFields() != 2 || s.ElemBytes() != 16 {
		t.Fatalf("StreamOf shape: %d fields, %d bytes", s.NumFields(), s.ElemBytes())
	}
	if s.Fields[0].Name != "c" {
		t.Fatalf("field order %v", s.Fields)
	}
}

func TestSRFAllocation(t *testing.T) {
	m := testMachine()
	srf, err := NewSRF(m, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := srf.Alloc("x", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if b1.Size != 1024 { // rounded to line
		t.Fatalf("aligned size %d", b1.Size)
	}
	b2, _ := srf.Alloc("y", 1)
	if b2.Base < b1.End() {
		t.Fatal("allocations overlap")
	}
	if b1.Base%64 != 0 || b2.Base%64 != 0 {
		t.Fatal("not line aligned")
	}
	if srf.Used() != b1.Size+b2.Size || srf.Free() != srf.Capacity()-srf.Used() {
		t.Fatal("accounting")
	}
	if _, err := srf.Alloc("huge", srf.Free()+1); err == nil {
		t.Fatal("overflow not detected")
	}
	srf.Reset()
	if srf.Used() != 0 || len(srf.Allocs()) != 0 {
		t.Fatal("Reset")
	}
}

func TestSRFRejectsOversize(t *testing.T) {
	m := testMachine()
	if _, err := NewSRF(m, uint64(m.Config().L2Bytes)+1); err == nil {
		t.Fatal("SRF bigger than L2 accepted")
	}
	if _, err := NewSRF(m, 0); err == nil {
		t.Fatal("zero SRF accepted")
	}
	srf := DefaultSRF(m)
	if srf.Capacity() == 0 || srf.Capacity() > uint64(m.Config().L2Bytes) {
		t.Fatalf("default SRF capacity %d", srf.Capacity())
	}
}

// Gather then scatter must round-trip exactly (functional invariant).
func TestGatherScatterRoundTrip(t *testing.T) {
	m := testMachine()
	l := Layout("r", F("a", 8), F("b", 8), F("c", 8))
	src := NewArray(m, "src", l, 100)
	dst := NewArray(m, "dst", l, 100)
	src.Fill(func(i, f int) float64 { return float64(i)*3 + float64(f) })

	s := StreamOf("s", 100, l, l.AllFields())
	Gather(nil, DefaultOps(), s, 0, src, l.AllFields(), 0, nil, 0, 100, SRFBuf{})
	Scatter(nil, DefaultOps(), s, 0, dst, l.AllFields(), 0, nil, 0, 100, ModeStore, SRFBuf{})
	for i := 0; i < 100; i++ {
		for f := 0; f < 3; f++ {
			if dst.At(i, f) != src.At(i, f) {
				t.Fatalf("roundtrip mismatch at (%d,%d)", i, f)
			}
		}
	}
}

func TestIndexedGatherPermutes(t *testing.T) {
	m := testMachine()
	l := Layout("r", F("v", 8))
	src := NewArray(m, "src", l, 10)
	src.Fill(func(i, f int) float64 { return float64(i) })
	idx := NewIndexArray(m, "idx", 5)
	copy(idx.Idx, []int32{9, 0, 4, 4, 2})

	s := StreamOf("s", 5, l, l.AllFields())
	Gather(nil, DefaultOps(), s, 0, src, l.AllFields(), 0, idx, 0, 5, SRFBuf{})
	want := []float64{9, 0, 4, 4, 2}
	for i, w := range want {
		if s.At(i, 0) != w {
			t.Fatalf("elem %d = %v want %v", i, s.At(i, 0), w)
		}
	}
}

func TestIndexedScatterAddAccumulates(t *testing.T) {
	m := testMachine()
	l := Layout("r", F("v", 8))
	dst := NewArray(m, "dst", l, 4)
	dst.Fill(func(i, f int) float64 { return 10 })
	idx := NewIndexArray(m, "idx", 3)
	copy(idx.Idx, []int32{1, 1, 3})

	s := NewStream("s", 3, F("v", 8))
	s.Set(0, 0, 1)
	s.Set(1, 0, 2)
	s.Set(2, 0, 5)
	Scatter(nil, DefaultOps(), s, 0, dst, l.AllFields(), 0, idx, 0, 3, ModeAdd, SRFBuf{})
	if dst.At(1, 0) != 13 || dst.At(3, 0) != 15 || dst.At(0, 0) != 10 {
		t.Fatalf("scatter-add result %v %v %v", dst.At(0, 0), dst.At(1, 0), dst.At(3, 0))
	}
}

func TestGatherSelectedFieldsOnly(t *testing.T) {
	m := testMachine()
	l := Layout("r", F("x", 8), F("pad", 8), F("y", 8))
	src := NewArray(m, "src", l, 4)
	src.Fill(func(i, f int) float64 { return float64(i*10 + f) })
	sel := l.Select("y", "x")
	s := StreamOf("s", 4, l, sel)
	Gather(nil, DefaultOps(), s, 0, src, sel, 0, nil, 0, 4, SRFBuf{})
	// Groups sort by offset, so field order in the stream follows
	// memory order: x then y.
	if s.At(2, 0) != 20 || s.At(2, 1) != 22 {
		t.Fatalf("selected gather got (%v,%v)", s.At(2, 0), s.At(2, 1))
	}
}

func TestGatherOutOfRangePanics(t *testing.T) {
	m := testMachine()
	l := Layout("r", F("v", 8))
	src := NewArray(m, "src", l, 4)
	idx := NewIndexArray(m, "idx", 1)
	idx.Idx[0] = 99
	s := NewStream("s", 1, F("v", 8))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on out-of-range index")
		}
	}()
	Gather(nil, DefaultOps(), s, 0, src, l.AllFields(), 0, idx, 0, 1, SRFBuf{})
}

func TestGatherTimingChargesBus(t *testing.T) {
	m := testMachine()
	l := Layout("r", F("v", 8)).WithStride(128)
	src := NewArray(m, "src", l, 4096)
	s := StreamOf("s", 4096, l, l.AllFields())
	srf := DefaultSRF(m)
	buf, _ := srf.Alloc("s0", uint64(4096*s.ElemBytes()))
	var cycles uint64
	m.Run(func(c *sim.CPU) {
		Gather(c, DefaultOps(), s, 0, src, l.AllFields(), 0, nil, 0, 4096, buf)
		cycles = c.Now()
	})
	if cycles == 0 {
		t.Fatal("gather advanced no time")
	}
	if m.Mem.Bus.Stats.Bytes == 0 {
		t.Fatal("gather moved no bus bytes")
	}
}

// The SRF must stay pinned while NT gather traffic streams past it.
func TestSRFStaysPinnedUnderNTTraffic(t *testing.T) {
	m := testMachine()
	srf := DefaultSRF(m)
	buf, _ := srf.Alloc("strips", srf.Capacity()/2)

	l := Layout("r", F("v", 8)).WithStride(64)
	src := NewArray(m, "big", l, 1<<16) // 4 MB streamed past the SRF
	s := StreamOf("s", 1<<16, l, l.AllFields())

	m.Run(func(c *sim.CPU) {
		// Touch the SRF so it is resident (as gathers writing to it do).
		for a := buf.Base; a < buf.End(); a += 128 {
			c.Write(a, 8, sim.HintNone)
		}
		Gather(c, DefaultOps(), s, 0, src, l.AllFields(), 0, nil, 0, 1<<16, buf)
	})
	if res := srf.Residency(m); res < 0.95 {
		t.Fatalf("SRF residency %.2f after NT stream, want >= 0.95", res)
	}
}

func TestKernelRunsAndCharges(t *testing.T) {
	m := testMachine()
	in := NewStream("in", 100, F("v", 8))
	out := NewStream("out", 100, F("v", 8))
	for i := 0; i < 100; i++ {
		in.Set(i, 0, float64(i))
	}
	k := &Kernel{
		Name:       "double",
		OpsPerElem: 10,
		Fn: func(ins, outs []*Stream, start, n int) int64 {
			for i := start; i < start+n; i++ {
				outs[0].Set(i, 0, 2*ins[0].At(i, 0))
			}
			return 0
		},
	}
	var cycles uint64
	m.Run(func(c *sim.CPU) {
		k.Run(c, []*Stream{in}, []*Stream{out}, 10, 50)
		cycles = c.Now()
	})
	if out.At(30, 0) != 60 {
		t.Fatal("kernel did not compute")
	}
	if out.At(5, 0) != 0 || out.At(70, 0) != 0 {
		t.Fatal("kernel ran outside its strip")
	}
	if cycles < 450 || cycles > 600 {
		t.Fatalf("kernel charged %d cycles, want ~500", cycles)
	}
}

func TestKernelCostOverride(t *testing.T) {
	m := testMachine()
	s := NewStream("s", 10, F("v", 8))
	k := &Kernel{
		Name:       "dyn",
		OpsPerElem: 1000,
		Fn:         func(ins, outs []*Stream, start, n int) int64 { return 7 },
	}
	var cycles uint64
	m.Run(func(c *sim.CPU) {
		k.Run(c, []*Stream{s}, nil, 0, 10)
		cycles = c.Now()
	})
	if cycles > 20 {
		t.Fatalf("override ignored: %d cycles", cycles)
	}
}

func TestFusedKernel(t *testing.T) {
	a := &Kernel{Name: "a", OpsPerElem: 5, Fn: func(ins, outs []*Stream, start, n int) int64 {
		for i := start; i < start+n; i++ {
			outs[0].Set(i, 0, ins[0].At(i, 0)+1)
		}
		return 0
	}}
	b := &Kernel{Name: "b", OpsPerElem: 5, Fn: func(ins, outs []*Stream, start, n int) int64 {
		for i := start; i < start+n; i++ {
			outs[0].Set(i, 0, ins[0].At(i, 0)*2)
		}
		return 0
	}}
	f := Fuse("ab", a, b, 1, 1, 1, 1)
	in := NewStream("in", 4, F("v", 8))
	mid := NewStream("mid", 4, F("v", 8))
	out := NewStream("out", 4, F("v", 8))
	in.Set(2, 0, 10)
	f.Run(nil, []*Stream{in, mid}, []*Stream{mid, out}, 0, 4)
	if out.At(2, 0) != 22 {
		t.Fatalf("fused result %v", out.At(2, 0))
	}
	if f.OpsPerElem != 10 {
		t.Fatalf("fused cost %d", f.OpsPerElem)
	}
}

func TestCopyStream(t *testing.T) {
	a := NewStream("a", 6, F("v", 8))
	b := NewStream("b", 6, F("v", 8))
	for i := 0; i < 6; i++ {
		a.Set(i, 0, float64(i))
	}
	CopyStream(b, 2, a, 0, 4)
	if b.At(2, 0) != 0 || b.At(5, 0) != 3 {
		t.Fatal("CopyStream wrong")
	}
}

// Property: gather∘scatter over a random permutation restores the
// array (permutation round trip).
func TestPermutationRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := testMachine()
		l := Layout("r", F("v", 8))
		n := 50 + rng.Intn(50)
		src := NewArray(m, "src", l, n)
		dst := NewArray(m, "dst", l, n)
		src.Fill(func(i, f int) float64 { return rng.Float64() })
		perm := rng.Perm(n)
		idx := NewIndexArray(m, "idx", n)
		for i, p := range perm {
			idx.Idx[i] = int32(p)
		}
		s := StreamOf("s", n, l, l.AllFields())
		// Gather src[perm[i]] then scatter back to dst[perm[i]].
		Gather(nil, DefaultOps(), s, 0, src, l.AllFields(), 0, idx, 0, n, SRFBuf{})
		Scatter(nil, DefaultOps(), s, 0, dst, l.AllFields(), 0, idx, 0, n, ModeStore, SRFBuf{})
		for i := 0; i < n; i++ {
			if dst.At(i, 0) != src.At(i, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestStridedRecordsSlowerThanPacked(t *testing.T) {
	run := func(stride int) uint64 {
		m := testMachine()
		l := Layout("r", F("v", 4)).WithStride(stride)
		src := NewArray(m, "src", l, 1<<15)
		s := StreamOf("s", 1<<15, l, l.AllFields())
		var cycles uint64
		m.Run(func(c *sim.CPU) {
			Gather(c, DefaultOps(), s, 0, src, l.AllFields(), 0, nil, 0, 1<<15, SRFBuf{})
			cycles = c.Now()
		})
		return cycles
	}
	packed, strided := run(4), run(64)
	if float64(strided) < 2*float64(packed) {
		t.Fatalf("stride-64 gather (%d) should be much slower than packed (%d)", strided, packed)
	}
}
