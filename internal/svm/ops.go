package svm

import (
	"fmt"

	"streamgpp/internal/sim"
)

// groupBytes returns the array-side bytes one record contributes.
func groupBytes(groups []Group) int {
	total := 0
	for _, g := range groups {
		total += g.Size
	}
	return total
}

// observeOp records one bulk operation's traffic: the strip count, the
// array-side bytes moved, and the sequential/indexed element split,
// per operation and per array. How the *indexed* elements themselves
// split — coalesced into AccessBulk runs versus issued one Access at a
// time — is reported after the loop by observeRuns, once the run
// detector has seen the index vector. The instrument handles are
// resolved once per registry (see metrics.go).
func observeOp(c *sim.CPU, op string, n, bytesPerRec int, indexed bool, arrayName string) {
	if c == nil {
		return
	}
	r := c.Machine().Observer()
	if r == nil {
		return
	}
	cs := countersFor(r)
	oc := &cs.gather
	if op == "scatter" {
		oc = &cs.scatter
	}
	oc.strips.Inc()
	oc.elems.Add(uint64(n))
	oc.arrayBytes.Add(uint64(n * bytesPerRec))
	ac := cs.arrayCounters(r, arrayName)
	ac.elems.Add(uint64(n))
	if indexed {
		oc.idxElems.Add(uint64(n))
		ac.idxElems.Add(uint64(n))
	} else {
		oc.seqElems.Add(uint64(n))
	}
}

// observeRuns reports how one indexed operation's elements split
// between coalesced runs (lowered to AccessBulk — BailIndexedRun) and
// the per-element path (BailIndexed), feeding the coverage profiler's
// indexed attribution and the svm.*.run_elems counters.
func observeRuns(c *sim.CPU, op string, runElems, total uint64) {
	if c == nil {
		return
	}
	c.CountBail(sim.BailIndexedRun, runElems)
	c.CountBail(sim.BailIndexed, total-runElems)
	r := c.Machine().Observer()
	if r == nil {
		return
	}
	cs := countersFor(r)
	if op == "scatter" {
		cs.scatter.runElems.Add(runElems)
	} else {
		cs.gather.runElems.Add(runElems)
	}
}

// idxRunMin is the shortest index run worth lowering to AccessBulk:
// below it the batch cannot amortise its probe (bulkBatch wants ≥2
// iterations after window bounds).
const idxRunMin = 4

// idxRun returns the length (≥1) and constant non-negative delta of
// the maximal run ix[pos], ix[pos]+d, ix[pos]+2d, ... within
// ix[pos:pos+max]. Descending runs are not coalesced (negative strides
// never batch), so they report length 1.
func idxRun(ix []int32, pos, max int) (int, int32) {
	if max <= 1 {
		return max, 0
	}
	d := ix[pos+1] - ix[pos]
	if d < 0 {
		return 1, 0
	}
	l := 2
	for l < max && ix[pos+l]-ix[pos+l-1] == d {
		l++
	}
	return l, d
}

// runLowerable reports whether indexed runs over an array with the
// given layout can be lowered to AccessBulk refs at all: every field
// group must fit in one L1 line (bulkBatch pins single lines) and the
// pattern must not be wider than one call can batch. The per-run
// stride gate (runStrideOK) is checked against each run's delta.
func runLowerable(c *sim.CPU, groups []Group, nrefs int) bool {
	if c == nil || nrefs > sim.MaxBulkRefs {
		return false
	}
	l1 := c.Machine().Config().L1Line
	for _, g := range groups {
		if g.Size > l1 {
			return false
		}
	}
	return true
}

// runStrideOK gates one run's byte stride: at most half an L1 line, so
// a pinned line covers at least two iterations and the batch is never
// degenerate. Delta-0 runs (a repeated index — scatter-adds into one
// row, streamFEM's per-cell face triples) always pass.
func runStrideOK(c *sim.CPU, d int32, recStride int) bool {
	return int(d)*recStride <= c.Machine().Config().L1Line/2
}

// ScatterMode selects how scattered values combine with the array.
type ScatterMode uint8

// Scatter modes.
const (
	// ModeStore overwrites the destination fields.
	ModeStore ScatterMode = iota
	// ModeAdd accumulates into the destination fields (the residual
	// scatter-add of streamFEM/streamCDP).
	ModeAdd
)

// OpConfig tunes the bulk memory operations. The defaults model the
// paper's optimised streamGather/streamScatter library: software
// non-temporal prefetch with a short pipeline of outstanding accesses.
type OpConfig struct {
	// MLP is the number of outstanding array-side accesses the copy
	// loop sustains (software prefetch distance).
	MLP int
	// IssueCycles is the per-access issue cost of the copy loop.
	IssueCycles uint64
	// Hint is the cacheability hint for the array side. Non-temporal
	// keeps array traffic from displacing the SRF.
	Hint sim.Hint
}

// DefaultOps returns the configuration used by the stream runtime.
func DefaultOps() OpConfig {
	return OpConfig{MLP: 2, IssueCycles: 1, Hint: sim.HintNonTemporal}
}

// Gather copies the selected fields of n records of src into dst
// elements [dstStart, dstStart+n), reading records sequentially from
// srcStart or through index entries idx[idxStart:idxStart+n]. buf is
// the SRF strip buffer that receives the data (timing only; pass the
// zero SRFBuf to skip SRF-side traffic). c may be nil for a purely
// functional run (tests and reference results).
//
// Timing: array-side reads use cfg.Hint (non-temporal by default, so
// the SRF stays pinned); SRF-side writes are temporal stores that hit
// in cache. Contiguous selected fields move as one block copy per
// record (the paper's field-alignment optimisation).
func Gather(c *sim.CPU, cfg OpConfig, dst *Stream, dstStart int, src *Array, fields []int,
	srcStart int, idx *IndexArray, idxStart, n int, buf SRFBuf) {
	if n == 0 {
		return
	}
	checkRange("Gather dst", dstStart, n, dst.N)
	groups := src.Layout.Groups(fields)
	elemBytes := dst.ElemBytes()
	observeOp(c, "gather", n, groupBytes(groups), idx != nil, src.Name)

	var pipe *sim.Pipe
	if c != nil {
		pipe = c.NewPipe(cfg.MLP, cfg.IssueCycles, sim.StateMemory)
	}

	nf := len(src.Layout.Fields)
	snf := dst.NumFields()
	seq := idx == nil
	if c != nil && seq {
		// A sequential gather is a fixed set of constant-stride
		// reference streams — one per contiguous field group, each
		// paired with its SRF-side store — which the simulator
		// coalesces on the cycle-exact bulk fast path. The access
		// order is identical to the indexed loop below.
		refs := make([]sim.BulkRef, 0, 2*len(groups))
		base := src.RecordAddr(srcStart)
		for _, g := range groups {
			refs = append(refs, sim.BulkRef{Base: base + uint64(g.Offset), Size: g.Size,
				Stride: src.Layout.Stride, Hint: cfg.Hint})
			if buf.Size > 0 {
				refs = append(refs, sim.BulkRef{Base: buf.Base, Size: g.Size,
					Stride: elemBytes, Write: true, Hint: sim.HintNone})
			}
		}
		pipe.AccessBulk(n, refs...)
	}
	// An indexed gather coalesces constant-delta runs in the index
	// vector: a run of records rec0, rec0+d, rec0+2d, ... is the same
	// fixed set of constant-stride streams as the sequential case, just
	// with stride d×record (plus the index stream itself), so it lowers
	// to one AccessBulk per run. The emitted access sequence is
	// element-for-element identical to the per-element loop — AccessBulk
	// is bit-identical to that loop by contract — so coalescing cannot
	// change timing, only how fast the simulator gets there.
	nrefsPerElem := 1 + len(groups)
	if buf.Size > 0 {
		nrefsPerElem += len(groups)
	}
	lower := idx != nil && runLowerable(c, groups, nrefsPerElem)
	var refs []sim.BulkRef
	if lower {
		refs = make([]sim.BulkRef, 0, nrefsPerElem)
	}
	runElems := 0
	for k := 0; k < n; {
		rec := srcStart + k
		if idx != nil {
			if lower {
				if l, d := idxRun(idx.Idx, idxStart+k, n-k); l >= idxRunMin && runStrideOK(c, d, src.Layout.Stride) {
					rec0 := int(idx.Idx[idxStart+k])
					if rec0 >= 0 && rec0+(l-1)*int(d) < src.N {
						refs = refs[:0]
						refs = append(refs, sim.BulkRef{Base: idx.ElemAddr(idxStart + k),
							Size: IndexElemBytes, Stride: IndexElemBytes, Hint: cfg.Hint})
						for _, g := range groups {
							refs = append(refs, sim.BulkRef{Base: src.RecordAddr(rec0) + uint64(g.Offset),
								Size: g.Size, Stride: int(d) * src.Layout.Stride, Hint: cfg.Hint})
							if buf.Size > 0 {
								refs = append(refs, sim.BulkRef{Base: buf.ElemAddr(k, elemBytes),
									Size: g.Size, Stride: elemBytes, Write: true, Hint: sim.HintNone})
							}
						}
						pipe.AccessBulk(l, refs...)
						for e := 0; e < l; e++ {
							r := int(idx.Idx[idxStart+k+e])
							df := 0
							for _, g := range groups {
								for _, fi := range g.Fields {
									dst.Data[(dstStart+k+e)*snf+df] = src.Data[r*nf+fi]
									df++
								}
							}
						}
						runElems += l
						k += l
						continue
					}
					// An endpoint is out of bounds: the per-element path
					// below panics at exactly the offending element, with
					// the same accesses issued before it.
				}
			}
			if c != nil {
				// The index entries themselves stream sequentially.
				pipe.Access(idx.ElemAddr(idxStart+k), IndexElemBytes, false, cfg.Hint)
			}
			rec = int(idx.Idx[idxStart+k])
		}
		if rec < 0 || rec >= src.N {
			panic(fmt.Sprintf("svm: Gather index %d out of array %s [0,%d)", rec, src.Name, src.N))
		}
		df := 0
		for _, g := range groups {
			if c != nil && !seq {
				pipe.Access(src.RecordAddr(rec)+uint64(g.Offset), g.Size, false, cfg.Hint)
				if buf.Size > 0 {
					pipe.Access(buf.ElemAddr(k, elemBytes), g.Size, true, sim.HintNone)
				}
			}
			for _, fi := range g.Fields {
				dst.Data[(dstStart+k)*snf+df] = src.Data[rec*nf+fi]
				df++
			}
		}
		k++
	}
	if idx != nil {
		observeRuns(c, "gather", uint64(runElems), uint64(n))
	}
	if c != nil {
		pipe.Drain()
	}
}

// Scatter writes dst fields from stream elements [srcStart, srcStart+n)
// into n records of the array, sequentially from dstStart or through
// idx[idxStart:idxStart+n]. mode selects overwrite or accumulate. buf
// is the SRF strip the data comes from (timing only).
//
// Timing: SRF-side reads hit in cache; array-side stores use cfg.Hint
// (movntq-style write combining by default). ModeAdd must read the old
// value, so the array side degenerates to temporal read-modify-write —
// exactly why the paper's scatter-adds are expensive.
func Scatter(c *sim.CPU, cfg OpConfig, src *Stream, srcStart int, dst *Array, fields []int,
	dstStart int, idx *IndexArray, idxStart, n int, mode ScatterMode, buf SRFBuf) {
	if n == 0 {
		return
	}
	checkRange("Scatter src", srcStart, n, src.N)
	groups := dst.Layout.Groups(fields)
	elemBytes := src.ElemBytes()
	observeOp(c, "scatter", n, groupBytes(groups), idx != nil, dst.Name)

	var pipe *sim.Pipe
	if c != nil {
		pipe = c.NewPipe(cfg.MLP, cfg.IssueCycles, sim.StateMemory)
	}

	nf := len(dst.Layout.Fields)
	snf := src.NumFields()
	seq := idx == nil
	if c != nil && seq {
		// Sequential scatter: constant-stride streams per field group,
		// in the same per-record order as the indexed loop below (SRF
		// read, then array RMW or store).
		refs := make([]sim.BulkRef, 0, 3*len(groups))
		base := dst.RecordAddr(dstStart)
		for _, g := range groups {
			if buf.Size > 0 {
				refs = append(refs, sim.BulkRef{Base: buf.Base, Size: g.Size,
					Stride: elemBytes, Hint: sim.HintNone})
			}
			if mode == ModeAdd {
				refs = append(refs,
					sim.BulkRef{Base: base + uint64(g.Offset), Size: g.Size,
						Stride: dst.Layout.Stride, Hint: sim.HintNone},
					sim.BulkRef{Base: base + uint64(g.Offset), Size: g.Size,
						Stride: dst.Layout.Stride, Write: true, Hint: sim.HintNone})
			} else {
				refs = append(refs, sim.BulkRef{Base: base + uint64(g.Offset), Size: g.Size,
					Stride: dst.Layout.Stride, Write: true, Hint: cfg.Hint})
			}
		}
		pipe.AccessBulk(n, refs...)
	}
	// Indexed scatter run coalescing, mirroring Gather: a constant-delta
	// run lowers to [index stream, per group: SRF read, array RMW pair
	// or store] — the exact per-element access order. The scatter-add
	// into one record (delta-0 runs, e.g. accumulating a sparse row)
	// lowers to stride-0 refs, which bulkBatch handles.
	nrefsPerElem := 1 + len(groups)
	if buf.Size > 0 {
		nrefsPerElem += len(groups)
	}
	if mode == ModeAdd {
		nrefsPerElem += len(groups)
	}
	lower := idx != nil && runLowerable(c, groups, nrefsPerElem)
	var refs []sim.BulkRef
	if lower {
		refs = make([]sim.BulkRef, 0, nrefsPerElem)
	}
	runElems := 0
	for k := 0; k < n; {
		rec := dstStart + k
		if idx != nil {
			if lower {
				if l, d := idxRun(idx.Idx, idxStart+k, n-k); l >= idxRunMin && runStrideOK(c, d, dst.Layout.Stride) {
					rec0 := int(idx.Idx[idxStart+k])
					if rec0 >= 0 && rec0+(l-1)*int(d) < dst.N {
						refs = refs[:0]
						refs = append(refs, sim.BulkRef{Base: idx.ElemAddr(idxStart + k),
							Size: IndexElemBytes, Stride: IndexElemBytes, Hint: cfg.Hint})
						stride := int(d) * dst.Layout.Stride
						for _, g := range groups {
							if buf.Size > 0 {
								refs = append(refs, sim.BulkRef{Base: buf.ElemAddr(k, elemBytes),
									Size: g.Size, Stride: elemBytes, Hint: sim.HintNone})
							}
							base := dst.RecordAddr(rec0) + uint64(g.Offset)
							if mode == ModeAdd {
								refs = append(refs,
									sim.BulkRef{Base: base, Size: g.Size, Stride: stride, Hint: sim.HintNone},
									sim.BulkRef{Base: base, Size: g.Size, Stride: stride, Write: true, Hint: sim.HintNone})
							} else {
								refs = append(refs, sim.BulkRef{Base: base, Size: g.Size,
									Stride: stride, Write: true, Hint: cfg.Hint})
							}
						}
						pipe.AccessBulk(l, refs...)
						for e := 0; e < l; e++ {
							r := int(idx.Idx[idxStart+k+e])
							sf := 0
							for _, g := range groups {
								for _, fi := range g.Fields {
									v := src.Data[(srcStart+k+e)*snf+sf]
									if mode == ModeAdd {
										dst.Data[r*nf+fi] += v
									} else {
										dst.Data[r*nf+fi] = v
									}
									sf++
								}
							}
						}
						runElems += l
						k += l
						continue
					}
				}
			}
			if c != nil {
				pipe.Access(idx.ElemAddr(idxStart+k), IndexElemBytes, false, cfg.Hint)
			}
			rec = int(idx.Idx[idxStart+k])
		}
		if rec < 0 || rec >= dst.N {
			panic(fmt.Sprintf("svm: Scatter index %d out of array %s [0,%d)", rec, dst.Name, dst.N))
		}
		sf := 0
		for _, g := range groups {
			if c != nil && !seq {
				if buf.Size > 0 {
					pipe.Access(buf.ElemAddr(k, elemBytes), g.Size, false, sim.HintNone)
				}
				if mode == ModeAdd {
					// Read-modify-write: the old values must come in
					// temporally before the sum goes out.
					pipe.Access(dst.RecordAddr(rec)+uint64(g.Offset), g.Size, false, sim.HintNone)
					pipe.Access(dst.RecordAddr(rec)+uint64(g.Offset), g.Size, true, sim.HintNone)
				} else {
					pipe.Access(dst.RecordAddr(rec)+uint64(g.Offset), g.Size, true, cfg.Hint)
				}
			}
			for _, fi := range g.Fields {
				v := src.Data[(srcStart+k)*snf+sf]
				if mode == ModeAdd {
					dst.Data[rec*nf+fi] += v
				} else {
					dst.Data[rec*nf+fi] = v
				}
				sf++
			}
		}
		k++
	}
	if idx != nil {
		observeRuns(c, "scatter", uint64(runElems), uint64(n))
	}
	if c != nil {
		pipe.Drain()
		if mode == ModeStore && cfg.Hint == sim.HintNonTemporal {
			c.DrainWC() // close the movntq sequence with an sfence
		}
	}
}

// GatherMulti copies the selected fields of src records reached through
// SEVERAL index arrays into one stream: element i of dst holds, for
// each index array j, the fields of src[idxs[j].Idx[idxStart+i]],
// concatenated. This is how streamFEM's GatherCell pulls all three of
// a cell's face fluxes in a single pass: the indices per element are
// spatially close, so one sweep reuses each fetched line instead of
// len(idxs) separate gathers re-fetching it.
func GatherMulti(c *sim.CPU, cfg OpConfig, dst *Stream, dstStart int, src *Array, fields []int,
	idxs []*IndexArray, idxStart, n int, buf SRFBuf) {
	if n == 0 {
		return
	}
	if len(idxs) == 0 {
		panic("svm: GatherMulti needs at least one index array")
	}
	if dst.NumFields() != len(fields)*len(idxs) {
		panic(fmt.Sprintf("svm: GatherMulti stream %s has %d fields, want %d×%d",
			dst.Name, dst.NumFields(), len(fields), len(idxs)))
	}
	checkRange("GatherMulti dst", dstStart, n, dst.N)
	groups := src.Layout.Groups(fields)
	elemBytes := dst.ElemBytes()
	observeOp(c, "gather", n*len(idxs), groupBytes(groups), true, src.Name)

	var pipe *sim.Pipe
	if c != nil {
		pipe = c.NewPipe(cfg.MLP, cfg.IssueCycles, sim.StateMemory)
	}

	nf := len(src.Layout.Fields)
	snf := dst.NumFields()
	per := len(fields)

	// Run coalescing needs every index array to run simultaneously: the
	// batch length is the shortest run among them, each contributing its
	// own delta (streamFEM's face triples often advance in lockstep).
	nrefsPerElem := len(idxs) * (1 + len(groups))
	if buf.Size > 0 {
		nrefsPerElem += len(idxs) * len(groups)
	}
	lower := runLowerable(c, groups, nrefsPerElem)
	var refs []sim.BulkRef
	var ds []int32
	if lower {
		refs = make([]sim.BulkRef, 0, nrefsPerElem)
		ds = make([]int32, len(idxs))
	}
	runElems := 0
	for k := 0; k < n; {
		if lower {
			l := n - k
			ok := true
			for j, ix := range idxs {
				lj, dj := idxRun(ix.Idx, idxStart+k, n-k)
				if lj < l {
					l = lj
				}
				if !runStrideOK(c, dj, src.Layout.Stride) {
					ok = false
					break
				}
				ds[j] = dj
			}
			ok = ok && l >= idxRunMin
			if ok {
				for j, ix := range idxs {
					rec0 := int(ix.Idx[idxStart+k])
					if rec0 < 0 || rec0+(l-1)*int(ds[j]) >= src.N {
						ok = false
						break
					}
				}
			}
			if ok {
				refs = refs[:0]
				for j, ix := range idxs {
					refs = append(refs, sim.BulkRef{Base: ix.ElemAddr(idxStart + k),
						Size: IndexElemBytes, Stride: IndexElemBytes, Hint: cfg.Hint})
					rec0 := int(ix.Idx[idxStart+k])
					for _, g := range groups {
						refs = append(refs, sim.BulkRef{Base: src.RecordAddr(rec0) + uint64(g.Offset),
							Size: g.Size, Stride: int(ds[j]) * src.Layout.Stride, Hint: cfg.Hint})
						if buf.Size > 0 {
							refs = append(refs, sim.BulkRef{Base: buf.ElemAddr(k, elemBytes),
								Size: g.Size, Stride: elemBytes, Write: true, Hint: sim.HintNone})
						}
					}
				}
				pipe.AccessBulk(l, refs...)
				for e := 0; e < l; e++ {
					for j, ix := range idxs {
						rec := int(ix.Idx[idxStart+k+e])
						df := j * per
						for _, g := range groups {
							for _, fi := range g.Fields {
								dst.Data[(dstStart+k+e)*snf+df] = src.Data[rec*nf+fi]
								df++
							}
						}
					}
				}
				runElems += l * len(idxs)
				k += l
				continue
			}
		}
		for j, ix := range idxs {
			if c != nil {
				pipe.Access(ix.ElemAddr(idxStart+k), IndexElemBytes, false, cfg.Hint)
			}
			rec := int(ix.Idx[idxStart+k])
			if rec < 0 || rec >= src.N {
				panic(fmt.Sprintf("svm: GatherMulti index %d out of array %s [0,%d)", rec, src.Name, src.N))
			}
			df := j * per
			for _, g := range groups {
				if c != nil {
					pipe.Access(src.RecordAddr(rec)+uint64(g.Offset), g.Size, false, cfg.Hint)
					if buf.Size > 0 {
						pipe.Access(buf.ElemAddr(k, elemBytes), g.Size, true, sim.HintNone)
					}
				}
				for _, fi := range g.Fields {
					dst.Data[(dstStart+k)*snf+df] = src.Data[rec*nf+fi]
					df++
				}
			}
		}
		k++
	}
	observeRuns(c, "gather", uint64(runElems), uint64(n*len(idxs)))
	if c != nil {
		pipe.Drain()
	}
}

// CopyStream copies n elements between streams (a producer-consumer
// forward entirely inside the SRF; functionally a memcpy, timed as
// cache-resident traffic folded into kernel cost — i.e. free here).
func CopyStream(dst *Stream, dstStart int, src *Stream, srcStart, n int) {
	if dst.NumFields() != src.NumFields() {
		panic(fmt.Sprintf("svm: CopyStream field mismatch %s(%d) vs %s(%d)",
			dst.Name, dst.NumFields(), src.Name, src.NumFields()))
	}
	checkRange("CopyStream dst", dstStart, n, dst.N)
	checkRange("CopyStream src", srcStart, n, src.N)
	nf := src.NumFields()
	copy(dst.Data[dstStart*nf:(dstStart+n)*nf], src.Data[srcStart*nf:(srcStart+n)*nf])
}

func checkRange(what string, start, n, limit int) {
	if start < 0 || n < 0 || start+n > limit {
		panic(fmt.Sprintf("svm: %s range [%d,%d) out of [0,%d)", what, start, start+n, limit))
	}
}
