package svm

import (
	"fmt"

	"streamgpp/internal/sim"
)

// groupBytes returns the array-side bytes one record contributes.
func groupBytes(groups []Group) int {
	total := 0
	for _, g := range groups {
		total += g.Size
	}
	return total
}

// observeOp records one bulk operation's traffic: the strip count, the
// array-side bytes moved, and the sequential/indexed element split,
// per operation and per array. Indexed traffic is also reported to the
// coverage profiler as a BailIndexed event per element — it is issued
// one Access at a time and never reaches AccessBulk, which is why the
// irregular apps (SPAS, streamFEM) see low fast-path coverage. The
// instrument handles are resolved once per registry (see metrics.go).
func observeOp(c *sim.CPU, op string, n, bytesPerRec int, indexed bool, arrayName string) {
	if c == nil {
		return
	}
	if indexed {
		c.CountBail(sim.BailIndexed, uint64(n))
	}
	r := c.Machine().Observer()
	if r == nil {
		return
	}
	cs := countersFor(r)
	oc := &cs.gather
	if op == "scatter" {
		oc = &cs.scatter
	}
	oc.strips.Inc()
	oc.elems.Add(uint64(n))
	oc.arrayBytes.Add(uint64(n * bytesPerRec))
	ac := cs.arrayCounters(r, arrayName)
	ac.elems.Add(uint64(n))
	if indexed {
		oc.idxElems.Add(uint64(n))
		ac.idxElems.Add(uint64(n))
	} else {
		oc.seqElems.Add(uint64(n))
	}
}

// ScatterMode selects how scattered values combine with the array.
type ScatterMode uint8

// Scatter modes.
const (
	// ModeStore overwrites the destination fields.
	ModeStore ScatterMode = iota
	// ModeAdd accumulates into the destination fields (the residual
	// scatter-add of streamFEM/streamCDP).
	ModeAdd
)

// OpConfig tunes the bulk memory operations. The defaults model the
// paper's optimised streamGather/streamScatter library: software
// non-temporal prefetch with a short pipeline of outstanding accesses.
type OpConfig struct {
	// MLP is the number of outstanding array-side accesses the copy
	// loop sustains (software prefetch distance).
	MLP int
	// IssueCycles is the per-access issue cost of the copy loop.
	IssueCycles uint64
	// Hint is the cacheability hint for the array side. Non-temporal
	// keeps array traffic from displacing the SRF.
	Hint sim.Hint
}

// DefaultOps returns the configuration used by the stream runtime.
func DefaultOps() OpConfig {
	return OpConfig{MLP: 2, IssueCycles: 1, Hint: sim.HintNonTemporal}
}

// Gather copies the selected fields of n records of src into dst
// elements [dstStart, dstStart+n), reading records sequentially from
// srcStart or through index entries idx[idxStart:idxStart+n]. buf is
// the SRF strip buffer that receives the data (timing only; pass the
// zero SRFBuf to skip SRF-side traffic). c may be nil for a purely
// functional run (tests and reference results).
//
// Timing: array-side reads use cfg.Hint (non-temporal by default, so
// the SRF stays pinned); SRF-side writes are temporal stores that hit
// in cache. Contiguous selected fields move as one block copy per
// record (the paper's field-alignment optimisation).
func Gather(c *sim.CPU, cfg OpConfig, dst *Stream, dstStart int, src *Array, fields []int,
	srcStart int, idx *IndexArray, idxStart, n int, buf SRFBuf) {
	if n == 0 {
		return
	}
	checkRange("Gather dst", dstStart, n, dst.N)
	groups := src.Layout.Groups(fields)
	elemBytes := dst.ElemBytes()
	observeOp(c, "gather", n, groupBytes(groups), idx != nil, src.Name)

	var pipe *sim.Pipe
	if c != nil {
		pipe = c.NewPipe(cfg.MLP, cfg.IssueCycles, sim.StateMemory)
	}

	nf := len(src.Layout.Fields)
	snf := dst.NumFields()
	seq := idx == nil
	if c != nil && seq {
		// A sequential gather is a fixed set of constant-stride
		// reference streams — one per contiguous field group, each
		// paired with its SRF-side store — which the simulator
		// coalesces on the cycle-exact bulk fast path. The access
		// order is identical to the indexed loop below.
		refs := make([]sim.BulkRef, 0, 2*len(groups))
		base := src.RecordAddr(srcStart)
		for _, g := range groups {
			refs = append(refs, sim.BulkRef{Base: base + uint64(g.Offset), Size: g.Size,
				Stride: src.Layout.Stride, Hint: cfg.Hint})
			if buf.Size > 0 {
				refs = append(refs, sim.BulkRef{Base: buf.Base, Size: g.Size,
					Stride: elemBytes, Write: true, Hint: sim.HintNone})
			}
		}
		pipe.AccessBulk(n, refs...)
	}
	for k := 0; k < n; k++ {
		rec := srcStart + k
		if idx != nil {
			if c != nil {
				// The index entries themselves stream sequentially.
				pipe.Access(idx.ElemAddr(idxStart+k), IndexElemBytes, false, cfg.Hint)
			}
			rec = int(idx.Idx[idxStart+k])
		}
		if rec < 0 || rec >= src.N {
			panic(fmt.Sprintf("svm: Gather index %d out of array %s [0,%d)", rec, src.Name, src.N))
		}
		df := 0
		for _, g := range groups {
			if c != nil && !seq {
				pipe.Access(src.RecordAddr(rec)+uint64(g.Offset), g.Size, false, cfg.Hint)
				if buf.Size > 0 {
					pipe.Access(buf.ElemAddr(k, elemBytes), g.Size, true, sim.HintNone)
				}
			}
			for _, fi := range g.Fields {
				dst.Data[(dstStart+k)*snf+df] = src.Data[rec*nf+fi]
				df++
			}
		}
	}
	if c != nil {
		pipe.Drain()
	}
}

// Scatter writes dst fields from stream elements [srcStart, srcStart+n)
// into n records of the array, sequentially from dstStart or through
// idx[idxStart:idxStart+n]. mode selects overwrite or accumulate. buf
// is the SRF strip the data comes from (timing only).
//
// Timing: SRF-side reads hit in cache; array-side stores use cfg.Hint
// (movntq-style write combining by default). ModeAdd must read the old
// value, so the array side degenerates to temporal read-modify-write —
// exactly why the paper's scatter-adds are expensive.
func Scatter(c *sim.CPU, cfg OpConfig, src *Stream, srcStart int, dst *Array, fields []int,
	dstStart int, idx *IndexArray, idxStart, n int, mode ScatterMode, buf SRFBuf) {
	if n == 0 {
		return
	}
	checkRange("Scatter src", srcStart, n, src.N)
	groups := dst.Layout.Groups(fields)
	elemBytes := src.ElemBytes()
	observeOp(c, "scatter", n, groupBytes(groups), idx != nil, dst.Name)

	var pipe *sim.Pipe
	if c != nil {
		pipe = c.NewPipe(cfg.MLP, cfg.IssueCycles, sim.StateMemory)
	}

	nf := len(dst.Layout.Fields)
	snf := src.NumFields()
	seq := idx == nil
	if c != nil && seq {
		// Sequential scatter: constant-stride streams per field group,
		// in the same per-record order as the indexed loop below (SRF
		// read, then array RMW or store).
		refs := make([]sim.BulkRef, 0, 3*len(groups))
		base := dst.RecordAddr(dstStart)
		for _, g := range groups {
			if buf.Size > 0 {
				refs = append(refs, sim.BulkRef{Base: buf.Base, Size: g.Size,
					Stride: elemBytes, Hint: sim.HintNone})
			}
			if mode == ModeAdd {
				refs = append(refs,
					sim.BulkRef{Base: base + uint64(g.Offset), Size: g.Size,
						Stride: dst.Layout.Stride, Hint: sim.HintNone},
					sim.BulkRef{Base: base + uint64(g.Offset), Size: g.Size,
						Stride: dst.Layout.Stride, Write: true, Hint: sim.HintNone})
			} else {
				refs = append(refs, sim.BulkRef{Base: base + uint64(g.Offset), Size: g.Size,
					Stride: dst.Layout.Stride, Write: true, Hint: cfg.Hint})
			}
		}
		pipe.AccessBulk(n, refs...)
	}
	for k := 0; k < n; k++ {
		rec := dstStart + k
		if idx != nil {
			if c != nil {
				pipe.Access(idx.ElemAddr(idxStart+k), IndexElemBytes, false, cfg.Hint)
			}
			rec = int(idx.Idx[idxStart+k])
		}
		if rec < 0 || rec >= dst.N {
			panic(fmt.Sprintf("svm: Scatter index %d out of array %s [0,%d)", rec, dst.Name, dst.N))
		}
		sf := 0
		for _, g := range groups {
			if c != nil && !seq {
				if buf.Size > 0 {
					pipe.Access(buf.ElemAddr(k, elemBytes), g.Size, false, sim.HintNone)
				}
				if mode == ModeAdd {
					// Read-modify-write: the old values must come in
					// temporally before the sum goes out.
					pipe.Access(dst.RecordAddr(rec)+uint64(g.Offset), g.Size, false, sim.HintNone)
					pipe.Access(dst.RecordAddr(rec)+uint64(g.Offset), g.Size, true, sim.HintNone)
				} else {
					pipe.Access(dst.RecordAddr(rec)+uint64(g.Offset), g.Size, true, cfg.Hint)
				}
			}
			for _, fi := range g.Fields {
				v := src.Data[(srcStart+k)*snf+sf]
				if mode == ModeAdd {
					dst.Data[rec*nf+fi] += v
				} else {
					dst.Data[rec*nf+fi] = v
				}
				sf++
			}
		}
	}
	if c != nil {
		pipe.Drain()
		if mode == ModeStore && cfg.Hint == sim.HintNonTemporal {
			c.DrainWC() // close the movntq sequence with an sfence
		}
	}
}

// GatherMulti copies the selected fields of src records reached through
// SEVERAL index arrays into one stream: element i of dst holds, for
// each index array j, the fields of src[idxs[j].Idx[idxStart+i]],
// concatenated. This is how streamFEM's GatherCell pulls all three of
// a cell's face fluxes in a single pass: the indices per element are
// spatially close, so one sweep reuses each fetched line instead of
// len(idxs) separate gathers re-fetching it.
func GatherMulti(c *sim.CPU, cfg OpConfig, dst *Stream, dstStart int, src *Array, fields []int,
	idxs []*IndexArray, idxStart, n int, buf SRFBuf) {
	if n == 0 {
		return
	}
	if len(idxs) == 0 {
		panic("svm: GatherMulti needs at least one index array")
	}
	if dst.NumFields() != len(fields)*len(idxs) {
		panic(fmt.Sprintf("svm: GatherMulti stream %s has %d fields, want %d×%d",
			dst.Name, dst.NumFields(), len(fields), len(idxs)))
	}
	checkRange("GatherMulti dst", dstStart, n, dst.N)
	groups := src.Layout.Groups(fields)
	elemBytes := dst.ElemBytes()
	observeOp(c, "gather", n*len(idxs), groupBytes(groups), true, src.Name)

	var pipe *sim.Pipe
	if c != nil {
		pipe = c.NewPipe(cfg.MLP, cfg.IssueCycles, sim.StateMemory)
	}

	nf := len(src.Layout.Fields)
	snf := dst.NumFields()
	per := len(fields)
	for k := 0; k < n; k++ {
		for j, ix := range idxs {
			if c != nil {
				pipe.Access(ix.ElemAddr(idxStart+k), IndexElemBytes, false, cfg.Hint)
			}
			rec := int(ix.Idx[idxStart+k])
			if rec < 0 || rec >= src.N {
				panic(fmt.Sprintf("svm: GatherMulti index %d out of array %s [0,%d)", rec, src.Name, src.N))
			}
			df := j * per
			for _, g := range groups {
				if c != nil {
					pipe.Access(src.RecordAddr(rec)+uint64(g.Offset), g.Size, false, cfg.Hint)
					if buf.Size > 0 {
						pipe.Access(buf.ElemAddr(k, elemBytes), g.Size, true, sim.HintNone)
					}
				}
				for _, fi := range g.Fields {
					dst.Data[(dstStart+k)*snf+df] = src.Data[rec*nf+fi]
					df++
				}
			}
		}
	}
	if c != nil {
		pipe.Drain()
	}
}

// CopyStream copies n elements between streams (a producer-consumer
// forward entirely inside the SRF; functionally a memcpy, timed as
// cache-resident traffic folded into kernel cost — i.e. free here).
func CopyStream(dst *Stream, dstStart int, src *Stream, srcStart, n int) {
	if dst.NumFields() != src.NumFields() {
		panic(fmt.Sprintf("svm: CopyStream field mismatch %s(%d) vs %s(%d)",
			dst.Name, dst.NumFields(), src.Name, src.NumFields()))
	}
	checkRange("CopyStream dst", dstStart, n, dst.N)
	checkRange("CopyStream src", srcStart, n, src.N)
	nf := src.NumFields()
	copy(dst.Data[dstStart*nf:(dstStart+n)*nf], src.Data[srcStart*nf:(srcStart+n)*nf])
}

func checkRange(what string, start, n, limit int) {
	if start < 0 || n < 0 || start+n > limit {
		panic(fmt.Sprintf("svm: %s range [%d,%d) out of [0,%d)", what, start, start+n, limit))
	}
}
