package svm

import (
	"fmt"

	"streamgpp/internal/sim"
)

// Kernel is a computation kernel: a function over stream strips that
// only touches SRF-resident data (never global memory), plus a cost
// model. Paper kernels "typically have several hundred operations" per
// element; OpsPerElem expresses that.
type Kernel struct {
	Name string
	// OpsPerElem is the compute cost per element (issue-slot cycles
	// when running alone), including the SRF loads/stores the kernel
	// body performs — those always hit in cache, so they behave like
	// ordinary pipelined instructions.
	OpsPerElem int64
	// Fn computes output elements [start, start+n) from the input
	// streams. It may return a non-zero op count to override
	// OpsPerElem*n (for data-dependent control flow, like streamCDP's
	// face conditional).
	Fn func(ins, outs []*Stream, start, n int) int64
}

// Run executes the kernel on elements [start, start+n), performing the
// functional computation and charging compute time on c (nil c skips
// timing).
func (k *Kernel) Run(c *sim.CPU, ins, outs []*Stream, start, n int) {
	if n == 0 {
		return
	}
	if k.Fn == nil {
		panic(fmt.Sprintf("svm: kernel %s has no body", k.Name))
	}
	for _, s := range ins {
		checkRange("kernel "+k.Name+" input "+s.Name, start, n, s.N)
	}
	for _, s := range outs {
		checkRange("kernel "+k.Name+" output "+s.Name, start, n, s.N)
	}
	ops := k.Fn(ins, outs, start, n)
	if ops == 0 {
		ops = k.OpsPerElem * int64(n)
	}
	if c != nil {
		c.Compute(ops)
	}
}

// Fuse combines two kernels that share the same iteration space into
// one (the paper's kernel-fusion optimisation, applied to streamFEM's
// GatherCell/AdvanceCell pair). The fused kernel runs a then b over the
// same strip; the streams of both are concatenated (inputs of b that a
// produces are passed through positionally by the caller's wiring).
func Fuse(name string, a, b *Kernel, aIns, aOuts, bIns, bOuts int) *Kernel {
	return &Kernel{
		Name:       name,
		OpsPerElem: a.OpsPerElem + b.OpsPerElem,
		Fn: func(ins, outs []*Stream, start, n int) int64 {
			if len(ins) != aIns+bIns || len(outs) != aOuts+bOuts {
				panic(fmt.Sprintf("svm: fused kernel %s wired with %d/%d streams, want %d/%d",
					name, len(ins), len(outs), aIns+bIns, aOuts+bOuts))
			}
			opsA := a.Fn(ins[:aIns], outs[:aOuts], start, n)
			if opsA == 0 {
				opsA = a.OpsPerElem * int64(n)
			}
			opsB := b.Fn(ins[aIns:], outs[aOuts:], start, n)
			if opsB == 0 {
				opsB = b.OpsPerElem * int64(n)
			}
			return opsA + opsB
		},
	}
}
