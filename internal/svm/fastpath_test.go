package svm

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"streamgpp/internal/obs"
	"streamgpp/internal/sim"
)

// TestBulkOpsFastPathMatchesReference sweeps every bulk-operation shape
// — {sequential, strided, indexed} × {temporal, non-temporal} × {load,
// store, scatter-add} — and asserts that the simulator's bulk fast path
// reports exactly the cycles, MachineStats and obs-registry contents of
// the per-access reference path.
func TestBulkOpsFastPathMatchesReference(t *testing.T) {
	type variant struct {
		pattern string // "seq", "strided", "indexed"
		hint    sim.Hint
		op      string // "load", "store", "scatter-add"
	}
	var variants []variant
	for _, pattern := range []string{"seq", "strided", "indexed"} {
		for _, hint := range []sim.Hint{sim.HintNone, sim.HintNonTemporal} {
			for _, op := range []string{"load", "store", "scatter-add"} {
				variants = append(variants, variant{pattern, hint, op})
			}
		}
	}

	const n = 3000
	runOne := func(v variant, fast bool) (uint64, sim.MachineStats, obs.Snapshot) {
		m := sim.MustNew(sim.PentiumD8300())
		m.SetFastPath(fast)
		reg := obs.NewRegistry()
		m.SetObserver(reg)

		layout := Layout("rec", F("a", 8), F("b", 8), F("pad", 8))
		if v.pattern == "strided" {
			layout = layout.WithStride(56)
		}
		arr := NewArray(m, "arr", layout, 2*n)
		srf := DefaultSRF(m)
		buf, err := srf.Alloc("strip", 16*n)
		if err != nil {
			t.Fatal(err)
		}
		str := NewStream("s", n, F("a", 8), F("b", 8))
		for i := range str.Data {
			str.Data[i] = float64(i)
		}
		var idx *IndexArray
		if v.pattern == "indexed" {
			idx = NewIndexArray(m, "idx", n)
			for i := range idx.Idx {
				idx.Idx[i] = int32((i * 7919) % (2 * n)) // deterministic pseudo-random
			}
		}

		cfg := DefaultOps()
		cfg.Hint = v.hint
		fields := []int{0, 1}

		stats := m.Run(func(c *sim.CPU) {
			switch v.op {
			case "load":
				Gather(c, cfg, str, 0, arr, fields, 17, idx, 0, n, buf)
			case "store":
				Scatter(c, cfg, str, 0, arr, fields, 17, idx, 0, n, ModeStore, buf)
			case "scatter-add":
				Scatter(c, cfg, str, 0, arr, fields, 17, idx, 0, n, ModeAdd, buf)
			}
		})
		return stats.Cycles, m.StatsSnapshot(), reg.Snapshot()
	}

	for _, v := range variants {
		name := fmt.Sprintf("%s-%s-%s", v.pattern, hintName(v.hint), v.op)
		t.Run(name, func(t *testing.T) {
			fc, fs, fr := runOne(v, true)
			rc, rs, rr := runOne(v, false)
			if fc != rc {
				t.Errorf("cycles diverge: fast=%d ref=%d", fc, rc)
			}
			// Coverage counters record which path served each access and
			// legitimately differ between the modes; their mode-invariant
			// total must agree, and everything else — including every
			// bw.* bandwidth gauge — must be identical.
			for i := range fs.Cov {
				if got, want := fs.Cov[i].Accesses(), rs.Cov[i].Accesses(); got != want {
					t.Errorf("ctx%d coverage access totals diverge: fast %d, ref %d", i, got, want)
				}
			}
			fs.Cov, rs.Cov = [2]sim.CoverageStats{}, [2]sim.CoverageStats{}
			if fs != rs {
				t.Errorf("MachineStats diverge:\nfast: %+v\nref:  %+v", fs, rs)
			}
			ftot := fr["coverage.fast_accesses"].Value + fr["coverage.slow_accesses"].Value
			rtot := rr["coverage.fast_accesses"].Value + rr["coverage.slow_accesses"].Value
			if ftot != rtot {
				t.Errorf("coverage access totals diverge in registry: fast %v, ref %v", ftot, rtot)
			}
			for k := range fr {
				if strings.HasPrefix(k, "coverage.") {
					delete(fr, k)
					delete(rr, k)
				}
			}
			if !reflect.DeepEqual(fr, rr) {
				t.Errorf("obs snapshots diverge:\nfast: %v\nref:  %v", fr, rr)
			}
		})
	}
}

func hintName(h sim.Hint) string {
	if h == sim.HintNonTemporal {
		return "nt"
	}
	return "temporal"
}
