package svm

import (
	"sync"

	"streamgpp/internal/obs"
)

// opCounters holds the resolved instrument handles for one bulk
// operation kind.
type opCounters struct {
	strips, elems, arrayBytes *obs.Counter
}

// regCounters caches the handles per registry, so the per-strip
// observeOp avoids three registry map lookups and three string
// concatenations on every call.
type regCounters struct {
	gather, scatter opCounters
}

// counterCache maps *obs.Registry → *regCounters. Registries are
// long-lived relative to strips (one per tool invocation or test), so
// the cache stays tiny. sync.Map because independent machines may run
// on concurrent goroutines under the parallel experiment runner.
var counterCache sync.Map

func countersFor(r *obs.Registry) *regCounters {
	if v, ok := counterCache.Load(r); ok {
		return v.(*regCounters)
	}
	rc := &regCounters{
		gather: opCounters{
			strips:     r.Counter("svm.gather.strips"),
			elems:      r.Counter("svm.gather.elems"),
			arrayBytes: r.Counter("svm.gather.array_bytes"),
		},
		scatter: opCounters{
			strips:     r.Counter("svm.scatter.strips"),
			elems:      r.Counter("svm.scatter.elems"),
			arrayBytes: r.Counter("svm.scatter.array_bytes"),
		},
	}
	v, _ := counterCache.LoadOrStore(r, rc)
	return v.(*regCounters)
}
