package svm

import (
	"sync"

	"streamgpp/internal/obs"
)

// opCounters holds the resolved instrument handles for one bulk
// operation kind.
type opCounters struct {
	strips, elems, arrayBytes *obs.Counter
	// seqElems/idxElems split elems by access pattern: sequential
	// (constant-stride, fast-path eligible) versus indexed
	// (data-dependent — see observeOp).
	seqElems, idxElems *obs.Counter
	// runElems counts the indexed elements that the run coalescer
	// lowered to AccessBulk strided refs (a subset of idxElems; the
	// per-element remainder is idxElems − runElems).
	runElems *obs.Counter
}

// arrayCounters holds the per-array traffic handles, keyed by the
// array's name: total elements touched and how many of them arrived
// through an index (the per-array view of the coverage profiler's
// BailIndexed events).
type arrayCounters struct {
	elems, idxElems *obs.Counter
}

// regCounters caches the handles per registry, so the per-strip
// observeOp avoids registry map lookups and string concatenations on
// every call.
type regCounters struct {
	gather, scatter opCounters

	// arrays caches per-array handles. Guarded by mu: strips from the
	// two SMT contexts run on one goroutine each under the engine, but
	// independent machines may share a registry under the parallel
	// experiment runner.
	mu     sync.Mutex
	arrays map[string]*arrayCounters
}

// arrayCounters resolves (and caches) the handles for one array name.
func (rc *regCounters) arrayCounters(r *obs.Registry, name string) *arrayCounters {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if ac, ok := rc.arrays[name]; ok {
		return ac
	}
	ac := &arrayCounters{
		elems:    r.Counter("coverage.array." + name + ".elems"),
		idxElems: r.Counter("coverage.array." + name + ".indexed_elems"),
	}
	rc.arrays[name] = ac
	return ac
}

// counterCache maps *obs.Registry → *regCounters. Registries are
// long-lived relative to strips (one per tool invocation or test), so
// the cache stays tiny. sync.Map because independent machines may run
// on concurrent goroutines under the parallel experiment runner.
var counterCache sync.Map

func countersFor(r *obs.Registry) *regCounters {
	if v, ok := counterCache.Load(r); ok {
		return v.(*regCounters)
	}
	rc := &regCounters{
		gather: opCounters{
			strips:     r.Counter("svm.gather.strips"),
			elems:      r.Counter("svm.gather.elems"),
			arrayBytes: r.Counter("svm.gather.array_bytes"),
			seqElems:   r.Counter("svm.gather.seq_elems"),
			idxElems:   r.Counter("svm.gather.indexed_elems"),
			runElems:   r.Counter("svm.gather.run_elems"),
		},
		scatter: opCounters{
			strips:     r.Counter("svm.scatter.strips"),
			elems:      r.Counter("svm.scatter.elems"),
			arrayBytes: r.Counter("svm.scatter.array_bytes"),
			seqElems:   r.Counter("svm.scatter.seq_elems"),
			idxElems:   r.Counter("svm.scatter.indexed_elems"),
			runElems:   r.Counter("svm.scatter.run_elems"),
		},
		arrays: make(map[string]*arrayCounters),
	}
	v, _ := counterCache.LoadOrStore(r, rc)
	return v.(*regCounters)
}
