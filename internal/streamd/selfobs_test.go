package streamd

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"streamgpp/internal/obs"
)

// GET /sloz must serve the full report as JSON (the default) and as
// the operator table (?format=text), and an idle server is healthy.
func TestSlozEndpoint(t *testing.T) {
	_, hs := newTestServer(t, Options{Workers: 1})

	resp, err := http.Get(hs.URL + "/sloz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/sloz = %d", resp.StatusCode)
	}
	var rep obs.SLOReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Objectives) != len(DefaultSLOs()) {
		t.Fatalf("objectives = %d, want the %d defaults", len(rep.Objectives), len(DefaultSLOs()))
	}
	if !rep.Healthy {
		t.Error("idle server reported unhealthy")
	}
	for _, st := range rep.Objectives {
		if len(st.Windows) == 0 {
			t.Errorf("objective %s without windows", st.Name)
		}
		for _, ws := range st.Windows {
			if ws.SLI != 1 || ws.BurnRate != 0 {
				t.Errorf("%s/%s: SLI=%v burn=%v on an idle server", st.Name, ws.Window, ws.SLI, ws.BurnRate)
			}
		}
	}

	resp2, err := http.Get(hs.URL + "/sloz?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	text, _ := io.ReadAll(resp2.Body)
	if ct := resp2.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("text format Content-Type = %q", ct)
	}
	for _, want := range []string{"SLO report", "run-latency", "availability", "5m", "1h"} {
		if !strings.Contains(string(text), want) {
			t.Errorf("/sloz?format=text missing %q:\n%s", want, text)
		}
	}
}

// lockedBuffer lets concurrent handler goroutines share one slog sink.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// Every request must produce one access-log line carrying the route
// pattern and status, job routes must carry job_id, and the HTTP
// counters the availability SLO reads must advance.
func TestAccessLogAndHTTPMetrics(t *testing.T) {
	var logbuf lockedBuffer
	logger := slog.New(slog.NewJSONHandler(&logbuf, nil))
	s, hs := newTestServer(t, Options{Workers: 1, Logger: logger})

	_, body, _ := submit(t, hs, quickSpec())
	id := body["id"].(string)
	if code, b, _ := fetchResult(t, hs, id); code != http.StatusOK {
		t.Fatalf("run failed (%d): %s", code, b)
	}
	if _, err := http.Get(hs.URL + "/healthz"); err != nil {
		t.Fatal(err)
	}

	type line struct {
		Msg        string  `json:"msg"`
		Method     string  `json:"method"`
		Route      string  `json:"route"`
		Status     int     `json:"status"`
		DurationMs float64 `json:"duration_ms"`
		JobID      string  `json:"job_id"`
		ConfigHash string  `json:"config_hash"`
		State      string  `json:"state"`
	}
	var httpLines, jobLines []line
	for _, raw := range strings.Split(strings.TrimSpace(logbuf.String()), "\n") {
		var l line
		if err := json.Unmarshal([]byte(raw), &l); err != nil {
			t.Fatalf("unparseable log line %q: %v", raw, err)
		}
		switch l.Msg {
		case "http":
			httpLines = append(httpLines, l)
		case "job":
			jobLines = append(jobLines, l)
		}
	}

	want := map[string]string{ // route -> expected job_id ("" = none)
		"POST /jobs":            id,
		"GET /jobs/{id}/result": id,
		"GET /healthz":          "",
	}
	for route, jobID := range want {
		var found bool
		for _, l := range httpLines {
			if l.Route != route {
				continue
			}
			found = true
			if l.Status == 0 || l.DurationMs < 0 {
				t.Errorf("%s: status=%d duration=%v", route, l.Status, l.DurationMs)
			}
			if l.JobID != jobID {
				t.Errorf("%s: job_id=%q, want %q", route, l.JobID, jobID)
			}
		}
		if !found {
			t.Errorf("no access-log line for %s in:\n%s", route, logbuf.String())
		}
	}

	// Lifecycle lines must join on the same keys the events and ledger
	// use, covering the full submit → terminal arc.
	states := map[string]bool{}
	for _, l := range jobLines {
		if l.JobID != id {
			continue
		}
		if l.ConfigHash == "" {
			t.Errorf("job line without config_hash: %+v", l)
		}
		states[l.State] = true
	}
	for _, st := range []string{"queued", "admitted", "running", "done"} {
		if !states[st] {
			t.Errorf("no job log line with state=%s (got %v)", st, states)
		}
	}

	// The SLO's HTTP instruments: all requests counted, none 5xx.
	snap := s.MetricsSnapshot()
	if n := snap["streamd.http.requests"].Value; n < 3 {
		t.Errorf("streamd.http.requests = %v, want >= 3", n)
	}
	if n := snap["streamd.http.responses_5xx"].Value; n != 0 {
		t.Errorf("streamd.http.responses_5xx = %v, want 0", n)
	}
	if snap["streamd.http.latency_ms"].Count == 0 {
		t.Error("streamd.http.latency_ms never observed")
	}
}

// /debug/pprof is flag-gated: absent by default, live with
// EnablePprof — and the goroutine profile must be a real profile.
func TestPprofGated(t *testing.T) {
	_, off := newTestServer(t, Options{Workers: 1})
	resp, err := http.Get(off.URL + "/debug/pprof/goroutine?debug=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof without the flag = %d, want 404", resp.StatusCode)
	}

	_, on := newTestServer(t, Options{Workers: 1, EnablePprof: true})
	resp, err = http.Get(on.URL + "/debug/pprof/goroutine?debug=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Fatalf("goroutine profile = %d, body %q", resp.StatusCode, body[:min(len(body), 80)])
	}
}

// A torn events-file tail that splits a multi-byte rune (the job app
// name is free-form UTF-8) must repair like any other torn tail: the
// partial line dropped, the reopened log appending cleanly after it.
func TestEventsTornTailMultibyteRune(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	l, err := newEventLog(path)
	if err != nil {
		t.Fatal(err)
	}
	l.append(Event{Job: "job-1", Type: EventSubmit, App: "QUICKSTART"})
	if err := l.closeFile(); err != nil {
		t.Fatal(err)
	}

	// Tear mid-rune: write a line whose tail ends inside the UTF-8
	// encoding of 'é' (0xC3 0xA9) — the crash left 0xC3 with no
	// continuation byte.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("{\"seq\":99,\"job\":\"job-caf\xc3")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	events, stats, err := ReadEvents(path)
	if err != nil {
		t.Fatalf("mid-rune torn tail must not fail the read: %v", err)
	}
	if !stats.TornTail || stats.Events != 1 {
		t.Fatalf("stats %+v, want TornTail with 1 surviving event", stats)
	}
	if events[0].Job != "job-1" {
		t.Fatalf("surviving event %+v", events[0])
	}

	// Reopen repairs: the torn bytes are gone, appends parse cleanly.
	l2, err := newEventLog(path)
	if err != nil {
		t.Fatalf("reopen over mid-rune tear: %v", err)
	}
	l2.append(Event{Job: "job-2", Type: EventSubmit})
	if err := l2.closeFile(); err != nil {
		t.Fatal(err)
	}
	events, stats, err = ReadEvents(path)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TornTail || stats.Events != 2 {
		t.Fatalf("after repair: stats %+v, want 2 events and no torn tail", stats)
	}
	if events[1].Job != "job-2" || events[1].Seq <= events[0].Seq {
		t.Fatalf("post-repair append wrong: %+v", events[1])
	}
}
