package streamd

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"streamgpp/internal/obs"
)

// TestSoak drives ≥500 concurrent jobs — mixed cache hits, per-job
// fault injection, deadlines — through the HTTP API against a small
// worker pool with a shallow queue, triggers a drain mid-soak (the
// same code path the SIGTERM handler runs), and asserts the service's
// contracts rather than logging them:
//
//   - admission control sheds load: at least one submission saw 429,
//     and no submission ever blocked or crashed the server;
//   - zero accepted jobs are lost: every job that got a 202 reaches a
//     terminal state by the time Drain returns;
//   - the cache is sound: every hit's bytes and output hash are
//     identical to a fresh out-of-server run of the same spec;
//   - deadline jobs never return partial output;
//   - the ledger is valid JSONL afterwards with one entry per fresh
//     run.
//
// Run it under -race (scripts/check.sh does): the interesting failure
// modes here are synchronisation bugs between workers, clients, the
// cache and the drain.
func TestSoak(t *testing.T) {
	totalJobs := 520
	drainAfter := 260 // accepted jobs before the mid-soak drain fires
	if testing.Short() {
		// check.sh's -race smoke: small enough to finish in tens of
		// seconds, still >10× the worker+queue capacity so saturation
		// (429) and mid-soak drain remain structural.
		totalJobs, drainAfter = 160, 80
	}

	ledger := filepath.Join(t.TempDir(), "soak.jsonl")
	s, err := New(Options{Workers: 4, QueueDepth: 8, LedgerPath: ledger})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	// The spec mix. Indexes < len(cacheable) are deterministic repeat
	// configurations (mostly cache hits); the last two are the fault
	// and deadline mixes.
	cacheable := []JobSpec{
		{App: "QUICKSTART", N: 6000, Comp: 1, Seed: 1},
		{App: "QUICKSTART", N: 6000, Comp: 1, Seed: 2},
		{App: "LD-ST-COMP", N: 8000, Comp: 2, Seed: 3},
		{App: "GAT-SCAT-COMP", N: 5000, Comp: 1, Seed: 4},
		{App: "PROD-CON", N: 5000, Comp: 1, Seed: 5},
		{App: "GAT-SCAT-COMP", N: 5000, Comp: 1, Seed: 6, Fault: "kernel_fault:0.05"},
		{App: "WHATIF", WhatIf: "ident", Quick: true},
	}
	deadlineSpec := JobSpec{App: "QUICKSTART", N: 1_800_000, Comp: 1, Seed: 9, DeadlineMs: 1}
	specFor := func(i int) JobSpec {
		if i%8 == 7 {
			return deadlineSpec
		}
		return cacheable[i%8%len(cacheable)]
	}

	type outcome struct {
		specIdx  int
		id       string // empty if never accepted
		code     int    // result (or final submit) status code
		payload  []byte
		hash     string
		cache    string
		jobState State
	}
	var (
		mu       sync.Mutex
		results  []outcome
		accepted atomic.Int64
		saw429   atomic.Int64
		saw503   atomic.Int64
		drainMu  sync.Mutex
		drained  bool
	)
	record := func(o outcome) {
		mu.Lock()
		results = append(results, o)
		mu.Unlock()
	}

	client := &http.Client{Timeout: 5 * time.Minute}
	var wg sync.WaitGroup
	for i := 0; i < totalJobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			spec := specFor(i)
			body, _ := json.Marshal(spec)

			// Submit with 429 backoff. 503 means the drain beat us: the
			// job was never accepted, which is allowed to lose nothing.
			var id string
			for attempt := 0; ; attempt++ {
				resp, err := client.Post(hs.URL+"/jobs", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Errorf("job %d: submit: %v", i, err)
					record(outcome{specIdx: i, code: -1})
					return
				}
				var sub JobStatus
				dec := json.NewDecoder(resp.Body)
				switch resp.StatusCode {
				case http.StatusAccepted:
					dec.Decode(&sub)
					resp.Body.Close()
					id = sub.ID
				case http.StatusTooManyRequests:
					resp.Body.Close()
					saw429.Add(1)
					if resp.Header.Get("Retry-After") == "" {
						t.Errorf("job %d: 429 without Retry-After", i)
					}
					if attempt > 2000 {
						record(outcome{specIdx: i, code: resp.StatusCode})
						return
					}
					time.Sleep(20 * time.Millisecond)
					continue
				case http.StatusServiceUnavailable:
					resp.Body.Close()
					saw503.Add(1)
					record(outcome{specIdx: i, code: resp.StatusCode})
					return
				default:
					b, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					t.Errorf("job %d: submit code %d: %s", i, resp.StatusCode, b)
					record(outcome{specIdx: i, code: resp.StatusCode})
					return
				}
				break
			}

			// Mid-soak, one client crossing the threshold triggers the
			// drain — from a goroutine, like the signal handler does.
			if accepted.Add(1) == int64(drainAfter) {
				drainMu.Lock()
				if !drained {
					drained = true
					go s.Drain()
				}
				drainMu.Unlock()
			}

			resp, err := client.Get(hs.URL + "/jobs/" + id + "/result?wait=1")
			if err != nil {
				t.Errorf("job %s: result: %v", id, err)
				record(outcome{specIdx: i, id: id, code: -1})
				return
			}
			payload, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			o := outcome{
				specIdx: i, id: id, code: resp.StatusCode,
				payload: payload,
				hash:    resp.Header.Get("X-Streamd-Output-Hash"),
				cache:   resp.Header.Get("X-Streamd-Cache"),
			}
			var st JobStatus
			if sresp, err := client.Get(hs.URL + "/jobs/" + id); err == nil {
				json.NewDecoder(sresp.Body).Decode(&st)
				sresp.Body.Close()
			}
			o.jobState = st.State
			record(o)
		}(i)
	}
	wg.Wait()
	s.Drain() // no-op if the mid-soak drain already ran; waits either way

	stats := s.Stats()
	t.Logf("soak: accepted=%d done=%d timed-out=%d shed=%d failed=%d 429s(client)=%d 503s(client)=%d cache hit/miss=%d/%d ledger=%d",
		stats.Accepted, stats.Done, stats.TimedOut, stats.Shed, stats.Failed,
		saw429.Load(), saw503.Load(), stats.CacheHits, stats.CacheMisses, stats.LedgerEntries)

	// Saturation must have been observed and rejected with 429 — with
	// 520 clients against 4 workers and 8 queue slots this is
	// structural, not incidental.
	if saw429.Load() == 0 || stats.RejectedFull == 0 {
		t.Error("soak never saturated admission control (no 429 observed)")
	}
	if stats.Failed != 0 {
		t.Errorf("%d jobs failed (none should: the mix has no failing specs)", stats.Failed)
	}

	// Zero accepted jobs lost: the server's own accounting must
	// balance, and every accepted job's recorded outcome is terminal.
	if got := stats.Done + stats.Failed + stats.TimedOut + stats.Shed; got != stats.Accepted {
		t.Errorf("accepted %d but terminal states sum to %d", stats.Accepted, got)
	}
	freshRuns := map[int]*artifacts{} // cacheable spec idx → fresh out-of-server run
	for i, spec := range cacheable {
		spec.normalize()
		canonical := spec.Canonical(1)
		a, err := runSpec(context.Background(), spec, canonical, obs.Hash(canonical), 1, nil)
		if err != nil {
			t.Fatalf("fresh run of spec %d: %v", i, err)
		}
		freshRuns[i] = a
	}
	var checkedHits int
	for _, o := range results {
		if o.id == "" {
			continue // never accepted (drain or give-up): nothing to lose
		}
		if o.jobState == "" || !o.jobState.Terminal() {
			t.Errorf("accepted job %s (spec %d) not terminal after drain: %q", o.id, o.specIdx, o.jobState)
			continue
		}
		if o.specIdx%8 == 7 {
			// Deadline jobs: timed out or shed, structured error, no
			// partial output.
			if o.code != http.StatusConflict {
				t.Errorf("deadline job %s: result code %d, want 409", o.id, o.code)
			}
			if o.jobState != StateTimedOut && o.jobState != StateShed {
				t.Errorf("deadline job %s state %s", o.id, o.jobState)
			}
			if bytes.Contains(o.payload, []byte("stream_cycles")) {
				t.Errorf("deadline job %s leaked partial output: %s", o.id, o.payload)
			}
			continue
		}
		// Cacheable jobs must succeed with the fresh run's exact bytes.
		fresh := freshRuns[o.specIdx%8%len(cacheable)]
		if o.code != http.StatusOK {
			t.Errorf("job %s (spec %d): result code %d: %s", o.id, o.specIdx, o.code, o.payload)
			continue
		}
		if !bytes.Equal(o.payload, fresh.payload) {
			t.Errorf("job %s (spec %d): payload differs from fresh run\ngot:   %s\nfresh: %s",
				o.id, o.specIdx, o.payload, fresh.payload)
		}
		if o.hash != fresh.hash {
			t.Errorf("job %s: output hash %s, fresh run %s", o.id, o.hash, fresh.hash)
		}
		if o.cache == "hit" {
			checkedHits++
		}
	}
	if checkedHits == 0 {
		t.Error("soak produced no verified cache hits")
	}

	// The ledger survived the drain valid, with one entry per fresh
	// completed run.
	entries, lstats, err := obs.ReadLedgerStats(ledger)
	if err != nil {
		t.Fatalf("post-soak ledger: %v", err)
	}
	if lstats.TornTail {
		t.Error("ledger has a torn tail after a clean drain")
	}
	if uint64(len(entries)) != stats.LedgerEntries {
		t.Errorf("ledger has %d entries, server counted %d", len(entries), stats.LedgerEntries)
	}
	for _, e := range entries {
		if e.Source != "streamd" || e.OutputHash == "" {
			t.Errorf("bad ledger entry: %+v", e)
		}
	}

	// After drain: not ready, still healthy.
	resp, err := client.Get(hs.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz after drain: %d", resp.StatusCode)
	}
}
