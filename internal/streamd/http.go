package streamd

import (
	"encoding/json"
	"errors"
	"net/http"
)

// Handler returns the server's HTTP API:
//
//	POST /jobs                submit a JobSpec; 202 + JobStatus,
//	                          400 (bad spec, message names the field),
//	                          429 + Retry-After (queue full),
//	                          503 (draining)
//	GET  /jobs/{id}           job status
//	GET  /jobs/{id}/result    result payload once done; add ?wait=1 to
//	                          block until the job is terminal.
//	                          202 while running, 409 + error for
//	                          failed/timed-out/shed jobs.
//	                          X-Streamd-Cache: hit|miss,
//	                          X-Streamd-Output-Hash: <hash>
//	GET  /jobs/{id}/trace     Perfetto trace (jobs submitted with
//	                          trace=true), else 404
//	GET  /jobs/{id}/coverage  coverage report (coverage=true), else 404
//	GET  /healthz             200 while the process lives
//	GET  /readyz              200 accepting, 503 draining
//	GET  /statz               counters (Stats JSON)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /jobs/{id}/trace", s.handleArtifact("trace"))
	mux.HandleFunc("GET /jobs/{id}/coverage", s.handleArtifact("coverage"))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})
	mux.HandleFunc("GET /statz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string    `json:"error"`
	Job   *JobError `json:"job_error,omitempty"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "streamd: bad job JSON: " + err.Error()})
		return
	}
	job, err := s.Submit(spec)
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, job.Status())
	case errors.Is(err, ErrFull):
		// Admission control: the bounded job queue is full. Retry-After
		// is the clients' backpressure signal.
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
	case errors.Is(err, ErrDraining):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
	default:
		var ve *ValidationError
		if errors.As(err, &ve) {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
	}
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "streamd: no such job " + r.PathValue("id")})
	}
	return j, ok
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

// waitIfAsked blocks until the job is terminal when ?wait is set,
// bounded by the request's own context.
func waitIfAsked(r *http.Request, j *Job) {
	if r.URL.Query().Get("wait") == "" {
		return
	}
	select {
	case <-j.Done():
	case <-r.Context().Done():
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	waitIfAsked(r, j)
	st := j.Status()
	switch {
	case st.State == StateDone:
		a, hit := j.result()
		cacheHeader := "miss"
		if hit {
			cacheHeader = "hit"
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Streamd-Cache", cacheHeader)
		w.Header().Set("X-Streamd-Output-Hash", a.hash)
		w.WriteHeader(http.StatusOK)
		w.Write(a.payload)
	case st.State.Terminal():
		// Failed, timed out or shed: a structured error, never partial
		// output.
		writeJSON(w, http.StatusConflict, errorBody{
			Error: "streamd: job " + j.ID + " " + string(st.State),
			Job:   st.Error,
		})
	default:
		writeJSON(w, http.StatusAccepted, st)
	}
}

// handleArtifact serves the trace or coverage download.
func (s *Server) handleArtifact(kind string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		j, ok := s.job(w, r)
		if !ok {
			return
		}
		waitIfAsked(r, j)
		st := j.Status()
		if !st.State.Terminal() {
			writeJSON(w, http.StatusAccepted, st)
			return
		}
		a, _ := j.result()
		var body []byte
		if a != nil {
			if kind == "trace" {
				body = a.trace
			} else {
				body = a.coverage
			}
		}
		if body == nil {
			writeJSON(w, http.StatusNotFound, errorBody{
				Error: "streamd: job " + j.ID + " has no " + kind + " artifact (submit with \"" + kind + "\": true)",
			})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(body)
	}
}
