package streamd

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	netpprof "net/http/pprof"
	"strconv"
	"time"

	"streamgpp/internal/obs"
)

// Handler returns the server's HTTP API:
//
//	POST /jobs                submit a JobSpec; 202 + JobStatus,
//	                          400 (bad spec, message names the field),
//	                          429 + Retry-After (queue full),
//	                          503 (draining)
//	GET  /jobs/{id}           job status (JobStatus JSON, including the
//	                          latest progress frame once one exists).
//	                          ?wait=1 long-polls until the job is
//	                          terminal; ?wait=1&seq=N returns as soon
//	                          as a progress frame with seq > N lands
//	                          (or the job is terminal) — repeat with
//	                          the returned seq to follow a run without
//	                          busy polling.
//	GET  /jobs/{id}/events    the job's lifecycle event log (JSON
//	                          array of Event: submit/admit/start/
//	                          retry/terminal with monotonic t_ns)
//	GET  /jobs/{id}/stream    Server-Sent Events: one `progress` event
//	                          per frame (coalesced to the latest;
//	                          seq strictly increasing), then a single
//	                          `done` event carrying the terminal
//	                          JobStatus, then a clean close
//	GET  /jobs/{id}/result    result payload once done; add ?wait=1 to
//	                          block until the job is terminal.
//	                          202 while running, 409 + error for
//	                          failed/timed-out/shed jobs.
//	                          X-Streamd-Cache: hit|miss,
//	                          X-Streamd-Output-Hash: <hash>
//	GET  /jobs/{id}/trace     Perfetto trace (jobs submitted with
//	                          trace=true), else 404
//	GET  /jobs/{id}/coverage  coverage report (coverage=true), else 404
//	GET  /healthz             200 while the process lives
//	GET  /readyz              200 accepting, 503 draining
//	GET  /statz               counters (Stats JSON)
//	GET  /metricz             Prometheus text exposition (obs.WriteProm
//	                          over the server registry)
//	GET  /sloz                SLO evaluation (obs.SLOReport JSON:
//	                          per-objective windows, SLIs, burn rates,
//	                          budget spent); ?format=text renders the
//	                          operator table instead
//	GET  /debug/pprof/        net/http/pprof (goroutine, heap, profile,
//	                          trace, ...) — mounted only with
//	                          Options.EnablePprof
//
// Every route is wrapped in an access-log middleware: one structured
// log line per request (method, route pattern, status, duration, job
// id when the route touches one) plus the streamd.http.requests /
// streamd.http.responses_5xx counters and streamd.http.latency_ms
// histogram the availability SLO consumes.
//
// The /statz response is the Stats struct: uptime_sec; the admission
// counters accepted / rejected_full / rejected_draining; terminal
// counters done / failed / timed_out / shed and panics; cache_hits /
// cache_misses / cache_entries; queue_depth, workers, draining;
// jobs_by_state (live per-state occupancy, terminal states
// accumulating); ledger_entries and ledger_torn_tail_repaired. The
// same numbers — plus the queue-wait / admission / run-duration
// histograms with quantiles — are scrapable at /metricz.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	// The mux pattern is passed alongside the handler because the
	// access log wants the route shape ("/jobs/{id}"), not the concrete
	// URL — go.mod still says 1.22, so http.Request.Pattern (1.23+) is
	// off the table.
	handle := func(pattern string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, s.logged(pattern, h))
	}
	handle("POST /jobs", s.handleSubmit)
	handle("GET /jobs/{id}", s.handleStatus)
	handle("GET /jobs/{id}/events", s.handleEvents)
	handle("GET /jobs/{id}/stream", s.handleStream)
	handle("GET /jobs/{id}/result", s.handleResult)
	handle("GET /jobs/{id}/trace", s.handleArtifact("trace"))
	handle("GET /jobs/{id}/coverage", s.handleArtifact("coverage"))
	handle("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	handle("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})
	handle("GET /statz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	handle("GET /metricz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		obs.WriteProm(w, s.MetricsSnapshot())
	})
	handle("GET /sloz", func(w http.ResponseWriter, r *http.Request) {
		rep := s.SLOReport()
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			rep.Render(w)
			return
		}
		writeJSON(w, http.StatusOK, rep)
	})
	if s.opts.EnablePprof {
		// Index also routes the named runtime/pprof profiles
		// (goroutine, heap, block, mutex, ...) under the prefix.
		handle("GET /debug/pprof/", netpprof.Index)
		handle("GET /debug/pprof/cmdline", netpprof.Cmdline)
		handle("GET /debug/pprof/profile", netpprof.Profile)
		handle("GET /debug/pprof/symbol", netpprof.Symbol)
		handle("GET /debug/pprof/trace", netpprof.Trace)
	}
	return mux
}

// statusWriter captures the response status (and any job ID a handler
// notes) for the access log. It implements http.Flusher by delegating,
// so the SSE handler's streaming keeps working through the wrapper.
type statusWriter struct {
	http.ResponseWriter
	code int
	job  string
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.code == 0 {
		sw.code = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.code == 0 {
		sw.code = http.StatusOK
	}
	return sw.ResponseWriter.Write(b)
}

func (sw *statusWriter) Flush() {
	if fl, ok := sw.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

func (sw *statusWriter) noteJob(id string) { sw.job = id }

// jobNoter lets a handler attach a job ID to the access-log line when
// the URL does not carry one (POST /jobs learns the ID only after
// admission).
type jobNoter interface{ noteJob(id string) }

// logged wraps a handler with the access log and the HTTP request
// metrics. pattern is the route as registered on the mux — the label
// the log line and any per-route analysis group by.
func (s *Server) logged(pattern string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		t0 := time.Now()
		h(sw, r)
		if sw.code == 0 {
			sw.code = http.StatusOK // handler wrote nothing: implicit 200
		}
		ms := float64(time.Since(t0)) / float64(time.Millisecond)
		s.reg.Counter("streamd.http.requests").Inc()
		if sw.code >= 500 {
			s.reg.Counter("streamd.http.responses_5xx").Inc()
		}
		s.reg.Histogram("streamd.http.latency_ms").Observe(ms)
		job := sw.job
		if job == "" {
			job = r.PathValue("id")
		}
		attrs := []any{
			"method", r.Method, "route", pattern,
			"status", sw.code, "duration_ms", ms,
		}
		if job != "" {
			attrs = append(attrs, "job_id", job)
		}
		s.log.Info("http", attrs...)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string    `json:"error"`
	Job   *JobError `json:"job_error,omitempty"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "streamd: bad job JSON: " + err.Error()})
		return
	}
	job, err := s.Submit(spec)
	switch {
	case err == nil:
		if n, ok := w.(jobNoter); ok {
			n.noteJob(job.ID)
		}
		writeJSON(w, http.StatusAccepted, job.Status())
	case errors.Is(err, ErrFull):
		// Admission control: the bounded job queue is full. Retry-After
		// is the clients' backpressure signal.
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
	case errors.Is(err, ErrDraining):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
	default:
		var ve *ValidationError
		if errors.As(err, &ve) {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
	}
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "streamd: no such job " + r.PathValue("id")})
	}
	return j, ok
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	q := r.URL.Query()
	if q.Get("wait") != "" {
		// Plain ?wait=1 keeps its original meaning — block until
		// terminal. An explicit seq=N opts into progress-aware
		// unblocking: return on the first frame with Seq > N.
		afterSeq := ^uint64(0)
		if v := q.Get("seq"); v != "" {
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				writeJSON(w, http.StatusBadRequest, errorBody{Error: "streamd: bad seq " + strconv.Quote(v) + ": " + err.Error()})
				return
			}
			afterSeq = n
		}
		waitStatus(r, j, afterSeq)
	}
	writeJSON(w, http.StatusOK, j.Status())
}

// waitStatus blocks until the job is terminal, a progress frame with
// Seq > afterSeq lands, or the request dies. afterSeq == MaxUint64
// (no seq param) can never be exceeded, giving terminal-only waiting.
func waitStatus(r *http.Request, j *Job, afterSeq uint64) {
	for {
		prog, ch := j.progress()
		if prog.Seq > afterSeq {
			return
		}
		select {
		case <-j.Done():
			return
		case <-r.Context().Done():
			return
		case <-ch:
		}
	}
}

// handleEvents serves the job's lifecycle event log.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	events := s.events.jobEvents(j.ID)
	if events == nil {
		events = []Event{}
	}
	writeJSON(w, http.StatusOK, events)
}

// handleStream serves Server-Sent Events for one job: a `progress`
// event per frame — coalesced to the latest when the client or the
// scheduler falls behind, seq strictly increasing — then exactly one
// `done` event with the terminal JobStatus, then EOF. A client
// connecting mid-run immediately receives the latest frame (if any)
// before blocking for the next; connecting after the job is terminal
// yields just the `done` event.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	fl, canFlush := w.(http.Flusher)
	if !canFlush {
		writeJSON(w, http.StatusNotImplemented, errorBody{Error: "streamd: connection does not support streaming"})
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	var sent uint64 // seq of the last frame written
	for {
		prog, ch := j.progress()
		// Terminal wins over a pending frame: once the job is over no
		// progress event is emitted (the done payload carries the final
		// frame in JobStatus.Progress), so a client attaching late gets
		// exactly one done event.
		select {
		case <-j.Done():
			writeSSE(w, "done", j.Status())
			fl.Flush()
			return
		default:
		}
		if prog.Seq > sent {
			sent = prog.Seq
			writeSSE(w, "progress", prog)
			fl.Flush()
			continue // a newer frame may already have landed
		}
		select {
		case <-j.Done():
			writeSSE(w, "done", j.Status())
			fl.Flush()
			return
		case <-r.Context().Done():
			return
		case <-ch:
		}
	}
}

// writeSSE emits one Server-Sent Event with a JSON data payload.
func writeSSE(w io.Writer, event string, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		// Progress and JobStatus always marshal; defensive.
		b = []byte(`{"error":"marshal failure"}`)
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b)
}

// waitIfAsked blocks until the job is terminal when ?wait is set,
// bounded by the request's own context.
func waitIfAsked(r *http.Request, j *Job) {
	if r.URL.Query().Get("wait") == "" {
		return
	}
	select {
	case <-j.Done():
	case <-r.Context().Done():
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	waitIfAsked(r, j)
	st := j.Status()
	switch {
	case st.State == StateDone:
		a, hit := j.result()
		cacheHeader := "miss"
		if hit {
			cacheHeader = "hit"
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Streamd-Cache", cacheHeader)
		w.Header().Set("X-Streamd-Output-Hash", a.hash)
		w.WriteHeader(http.StatusOK)
		w.Write(a.payload)
	case st.State.Terminal():
		// Failed, timed out or shed: a structured error, never partial
		// output.
		writeJSON(w, http.StatusConflict, errorBody{
			Error: "streamd: job " + j.ID + " " + string(st.State),
			Job:   st.Error,
		})
	default:
		writeJSON(w, http.StatusAccepted, st)
	}
}

// handleArtifact serves the trace or coverage download.
func (s *Server) handleArtifact(kind string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		j, ok := s.job(w, r)
		if !ok {
			return
		}
		waitIfAsked(r, j)
		st := j.Status()
		if !st.State.Terminal() {
			writeJSON(w, http.StatusAccepted, st)
			return
		}
		a, _ := j.result()
		var body []byte
		if a != nil {
			if kind == "trace" {
				body = a.trace
			} else {
				body = a.coverage
			}
		}
		if body == nil {
			writeJSON(w, http.StatusNotFound, errorBody{
				Error: "streamd: job " + j.ID + " has no " + kind + " artifact (submit with \"" + kind + "\": true)",
			})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(body)
	}
}
