package streamd

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"streamgpp/internal/bench"
	"streamgpp/internal/exec"
	"streamgpp/internal/fault"
)

// State is a job's position in its lifecycle. The machine is linear up
// to running and then fans out to one terminal state:
//
//	queued → admitted → running → done | failed | timed-out
//	                 ↘  shed                    (deadline burned in the queue)
//
// Transitions only ever move forward; a terminal state is final.
type State string

// The job states.
const (
	StateQueued   State = "queued"    // accepted into the bounded job queue
	StateAdmitted State = "admitted"  // claimed by a worker, pre-flight checks
	StateRunning  State = "running"   // simulator executing
	StateDone     State = "done"      // result available (fresh or cached)
	StateFailed   State = "failed"    // run error or worker panic
	StateTimedOut State = "timed-out" // deadline exceeded mid-run, no partial output
	StateShed     State = "shed"      // deadline expired before the run started
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	switch s {
	case StateDone, StateFailed, StateTimedOut, StateShed:
		return true
	}
	return false
}

// Apps a job may request. WHATIF runs the cross-checked what-if
// analysis instead of a single micro-benchmark.
var jobApps = map[string]bool{
	"QUICKSTART":    true,
	"LD-ST-COMP":    true,
	"GAT-SCAT-COMP": true,
	"PROD-CON":      true,
	"WHATIF":        true,
}

// JobSpec is the client-supplied job description. The zero values of
// the workload knobs are normalised to the quickstart defaults; every
// semantic field participates in the job's canonical identity (and so
// in the result-cache key).
type JobSpec struct {
	// App selects the workload: QUICKSTART, LD-ST-COMP,
	// GAT-SCAT-COMP, PROD-CON or WHATIF.
	App string `json:"app"`
	// N, Comp and Seed parameterise the micro-benchmark (ignored for
	// WHATIF). Zero values normalise to N=60000, Comp=1, Seed=1.
	N    int   `json:"n,omitempty"`
	Comp int   `json:"comp,omitempty"`
	Seed int64 `json:"seed,omitempty"`
	// WhatIf is the scenario list for WHATIF jobs (bench.ParseWhatIf
	// grammar, e.g. "ident,dram=0.5,1ctx"); Quick selects the reduced
	// problem size.
	WhatIf string `json:"whatif,omitempty"`
	Quick  bool   `json:"quick,omitempty"`
	// Fault is a fault.ParseSpec injection spec ("kernel_fault:0.01").
	// FaultSeed is the base seed the job's injector seed is derived
	// from (0 = the server's base seed); the effective seed is
	// fault.DeriveSeed(base, canonical identity), never the job ID, so
	// identical specs replay identical fault schedules and the result
	// cache stays sound.
	Fault     string `json:"fault,omitempty"`
	FaultSeed uint64 `json:"fault_seed,omitempty"`
	// DeadlineMs bounds the job's total latency, queue wait included.
	// 0 means no deadline.
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
	// Trace requests a Perfetto trace artifact; Coverage a fast-path
	// coverage report. Micro-benchmark jobs only.
	Trace    bool `json:"trace,omitempty"`
	Coverage bool `json:"coverage,omitempty"`
}

// normalize fills workload defaults in place.
func (s *JobSpec) normalize() {
	if s.App != "WHATIF" {
		if s.N == 0 {
			s.N = 60000
		}
		if s.Comp == 0 {
			s.Comp = 1
		}
		if s.Seed == 0 {
			s.Seed = 1
		}
	}
}

// Validate rejects malformed specs. maxN bounds the per-job problem
// size (admission control for memory, not just queue slots). The
// returned errors are client errors: the HTTP layer maps them to 400
// and the message must name the offending field.
func (s *JobSpec) Validate(maxN int) error {
	if !jobApps[s.App] {
		return fmt.Errorf("streamd: unknown app %q (want QUICKSTART, LD-ST-COMP, GAT-SCAT-COMP, PROD-CON or WHATIF)", s.App)
	}
	if s.App == "WHATIF" {
		if s.WhatIf == "" {
			return errors.New("streamd: WHATIF job without a whatif scenario list")
		}
		if _, err := bench.ParseWhatIf(s.WhatIf); err != nil {
			return fmt.Errorf("streamd: %w", err)
		}
		if s.Trace || s.Coverage {
			return errors.New("streamd: trace/coverage artifacts are not available for WHATIF jobs")
		}
	} else {
		if s.N < 1 || s.N > maxN {
			return fmt.Errorf("streamd: n=%d out of range [1, %d]", s.N, maxN)
		}
		if s.Comp < 0 || s.Comp > 1024 {
			return fmt.Errorf("streamd: comp=%d out of range [0, 1024]", s.Comp)
		}
	}
	if s.Fault != "" {
		// ParseSpec names the offending token, so a 400 from here tells
		// the client exactly which entry to fix.
		if _, err := fault.ParseSpec(s.Fault); err != nil {
			return err
		}
	}
	if s.DeadlineMs < 0 {
		return fmt.Errorf("streamd: deadline_ms=%d is negative", s.DeadlineMs)
	}
	return nil
}

// Canonical renders the job's semantic identity as a stable string:
// every field that can change the run's output (or its artifacts),
// and nothing that cannot (job ID, deadline, submission time). The
// result cache keys on its hash — sound because the simulator is
// deterministic: equal canonical strings imply byte-equal results.
func (s JobSpec) Canonical(baseFaultSeed uint64) string {
	base := s.FaultSeed
	if base == 0 {
		base = baseFaultSeed
	}
	return fmt.Sprintf("app=%s n=%d comp=%d seed=%d whatif=%s quick=%v fault=%s faultbase=%d trace=%v coverage=%v",
		s.App, s.N, s.Comp, s.Seed, s.WhatIf, s.Quick, s.Fault, base, s.Trace, s.Coverage)
}

// JobError is the structured, JSON-renderable form of a job failure,
// derived from exec.RunError when the executor produced one. A
// timed-out job reports TimedOut=true and carries the abort site; it
// never carries partial output.
type JobError struct {
	Op       string `json:"op,omitempty"`   // exec op, "panic", or "shed"
	Task     string `json:"task,omitempty"` // task name at the abort site
	Phase    int    `json:"phase"`
	Strip    int    `json:"strip"`
	Cycle    uint64 `json:"cycle,omitempty"`
	Message  string `json:"message"`
	TimedOut bool   `json:"timed_out,omitempty"`
}

// toJobError converts a run failure into its wire form.
func toJobError(err error) *JobError {
	je := &JobError{Phase: -1, Strip: -1, Message: err.Error()}
	var re *exec.RunError
	if errors.As(err, &re) {
		je.Op = re.Op
		je.Task = re.Task
		je.Phase = re.Phase
		je.Strip = re.Strip
		je.Cycle = re.Cycle
		je.TimedOut = re.Cancelled()
	}
	return je
}

// Progress is the wire form of a mid-run progress report, derived
// from exec.ProgressFrame. Seq increases by one per frame the job
// records; readers use it both to detect a new frame (long-poll
// ?wait=1&seq=N) and to keep SSE emission strictly ordered.
type Progress struct {
	Seq     uint64 `json:"seq"`
	Done    int    `json:"done"`
	Total   int    `json:"total"`
	Phase   int    `json:"phase"`
	Strip   int    `json:"strip"`
	Cycle   uint64 `json:"cycle"`
	Retries uint64 `json:"retries"`
}

// Job is one accepted submission.
type Job struct {
	ID        string
	Spec      JobSpec
	Canonical string // canonical identity string
	Key       string // obs.Hash(Canonical) — the cache and ledger key

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{} // closed on the transition to a terminal state

	// onState, when set (the server wires it at admission), observes
	// every state transition. Called outside j.mu, after the new state
	// is visible; for terminal transitions it runs *before* done is
	// closed, so by the time a waiter unblocks the transition has been
	// logged and counted.
	onState func(j *Job, from, to State)

	mu       sync.Mutex
	state    State
	err      *JobError
	res      *artifacts
	cacheHit bool

	tSubmit time.Time // set at newJob
	tAdmit  time.Time // set entering admitted
	tRun    time.Time // set entering running (zero for cache hits / shed)

	prog   Progress
	progCh chan struct{} // closed and replaced on every new frame
}

// setState advances a non-terminal job.
func (j *Job) setState(s State) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		panic(fmt.Sprintf("streamd: job %s transition %s → %s after terminal", j.ID, j.state, s))
	}
	from := j.state
	j.state = s
	switch s {
	case StateAdmitted:
		j.tAdmit = time.Now()
	case StateRunning:
		j.tRun = time.Now()
	}
	hook := j.onState
	j.mu.Unlock()
	if hook != nil {
		hook(j, from, s)
	}
}

// finish moves the job to a terminal state, recording its result or
// error, and releases the deadline context and waiters.
func (j *Job) finish(s State, res *artifacts, cacheHit bool, jerr *JobError) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		panic(fmt.Sprintf("streamd: job %s finished twice (%s then %s)", j.ID, j.state, s))
	}
	from := j.state
	j.state = s
	j.res = res
	j.cacheHit = cacheHit
	j.err = jerr
	hook := j.onState
	j.mu.Unlock()
	if hook != nil {
		hook(j, from, s)
	}
	j.cancel()
	close(j.done)
}

// noteProgress records one frame from the executor's hook and wakes
// every watcher (long-poll and SSE readers block on progCh). Frames
// arriving after the terminal transition are dropped — the job's
// story is over; waking watchers then could make them observe a
// progress update on a job already reported done.
func (j *Job) noteProgress(f exec.ProgressFrame) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.prog = Progress{
		Seq: j.prog.Seq + 1, Done: f.Done, Total: f.Total,
		Phase: f.Phase, Strip: f.Strip, Cycle: f.Cycle, Retries: f.Retries,
	}
	ch := j.progCh
	j.progCh = make(chan struct{})
	j.mu.Unlock()
	close(ch)
}

// progress returns the latest frame plus a channel closed when a newer
// one lands. Watchers that fall behind coalesce to the latest frame —
// progress is a gauge, not a queue — and select on Done() alongside
// the returned channel, since no frame follows the terminal state.
func (j *Job) progress() (Progress, <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.prog, j.progCh
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// JobStatus is the wire form of a job's current state.
type JobStatus struct {
	ID         string    `json:"id"`
	App        string    `json:"app"`
	Key        string    `json:"key"`
	State      State     `json:"state"`
	CacheHit   bool      `json:"cache_hit,omitempty"`
	OutputHash string    `json:"output_hash,omitempty"`
	Error      *JobError `json:"error,omitempty"`
	// Progress is the latest mid-run frame, present once the run has
	// reported at least one (and retained on terminal status).
	Progress *Progress `json:"progress,omitempty"`
}

// Status snapshots the job.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{ID: j.ID, App: j.Spec.App, Key: j.Key, State: j.state, CacheHit: j.cacheHit, Error: j.err}
	if j.res != nil {
		st.OutputHash = j.res.hash
	}
	if j.prog.Seq > 0 {
		p := j.prog
		st.Progress = &p
	}
	return st
}

// result returns the terminal result (nil unless done) and whether it
// came from the cache.
func (j *Job) result() (*artifacts, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.res, j.cacheHit
}

// newJob builds an accepted job with its deadline context. The clock
// starts at submission: queue wait counts against the deadline, which
// is what lets a saturated server shed stale work instead of running
// jobs nobody is waiting for anymore.
func newJob(id string, spec JobSpec, canonical, key string) *Job {
	j := &Job{
		ID:        id,
		Spec:      spec,
		Canonical: canonical,
		Key:       key,
		state:     StateQueued,
		done:      make(chan struct{}),
		tSubmit:   time.Now(),
		progCh:    make(chan struct{}),
	}
	if spec.DeadlineMs > 0 {
		j.ctx, j.cancel = context.WithTimeout(context.Background(), time.Duration(spec.DeadlineMs)*time.Millisecond)
	} else {
		j.ctx, j.cancel = context.WithCancel(context.Background())
	}
	return j
}
