package streamd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"streamgpp/internal/exec"
	"streamgpp/internal/obs"
)

// newTestServer starts a server (and its HTTP front) that is drained
// at cleanup.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		s.Drain()
		hs.Close()
	})
	return s, hs
}

// submit posts a spec and returns the response code and decoded body.
func submit(t *testing.T, hs *httptest.Server, spec any) (int, map[string]any, http.Header) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(hs.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, out, resp.Header
}

// fetchResult blocks on the result endpoint and returns status, body
// bytes and headers.
func fetchResult(t *testing.T, hs *httptest.Server, id string) (int, []byte, http.Header) {
	t.Helper()
	resp, err := http.Get(hs.URL + "/jobs/" + id + "/result?wait=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b, resp.Header
}

func quickSpec() JobSpec {
	return JobSpec{App: "QUICKSTART", N: 20000, Comp: 1, Seed: 1}
}

func TestSubmitRunResult(t *testing.T) {
	_, hs := newTestServer(t, Options{Workers: 2})
	code, body, _ := submit(t, hs, quickSpec())
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202 (%v)", code, body)
	}
	id := body["id"].(string)
	if body["state"] != string(StateQueued) {
		t.Errorf("fresh job state %v, want queued", body["state"])
	}

	code, payload, hdr := fetchResult(t, hs, id)
	if code != http.StatusOK {
		t.Fatalf("result = %d: %s", code, payload)
	}
	if got := hdr.Get("X-Streamd-Cache"); got != "miss" {
		t.Errorf("first run cache header %q, want miss", got)
	}
	var pr ResultPayload
	if err := json.Unmarshal(payload, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.App != "QUICKSTART" || pr.StreamCycles == 0 || pr.RegularCycles == 0 || pr.Speedup <= 0 {
		t.Errorf("implausible payload: %+v", pr)
	}
	if hdr.Get("X-Streamd-Output-Hash") != obs.Hash(string(payload)) {
		t.Error("output hash header does not hash the payload bytes")
	}

	// Status endpoint agrees.
	resp, err := http.Get(hs.URL + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if st.State != StateDone || st.OutputHash == "" {
		t.Errorf("status after done: %+v", st)
	}
}

// The tentpole cache guarantee: a second submission of the same spec
// is a hit whose bytes are identical to the fresh run's — on this
// server and on a brand-new one.
func TestCacheHitByteIdentity(t *testing.T) {
	spec := JobSpec{App: "GAT-SCAT-COMP", N: 15000, Comp: 2, Seed: 3, Fault: "kernel_fault:0.02"}

	_, hs := newTestServer(t, Options{Workers: 2})
	_, body1, _ := submit(t, hs, spec)
	code, fresh, hdr1 := fetchResult(t, hs, body1["id"].(string))
	if code != http.StatusOK {
		t.Fatalf("fresh run failed (%d): %s", code, fresh)
	}
	if hdr1.Get("X-Streamd-Cache") != "miss" {
		t.Fatalf("first run was a %s", hdr1.Get("X-Streamd-Cache"))
	}

	_, body2, _ := submit(t, hs, spec)
	code, cached, hdr2 := fetchResult(t, hs, body2["id"].(string))
	if code != http.StatusOK {
		t.Fatalf("cached run failed (%d): %s", code, cached)
	}
	if hdr2.Get("X-Streamd-Cache") != "hit" {
		t.Fatalf("second run was a %s, want hit", hdr2.Get("X-Streamd-Cache"))
	}
	if !bytes.Equal(fresh, cached) {
		t.Fatalf("cache hit is not byte-identical:\nfresh:  %s\ncached: %s", fresh, cached)
	}
	if hdr1.Get("X-Streamd-Output-Hash") != hdr2.Get("X-Streamd-Output-Hash") {
		t.Fatal("output hashes differ between fresh and cached")
	}

	// A brand-new server (empty cache) must reproduce the same bytes —
	// determinism is what makes content addressing sound.
	_, hs2 := newTestServer(t, Options{Workers: 1})
	_, body3, _ := submit(t, hs2, spec)
	code, fresh2, _ := fetchResult(t, hs2, body3["id"].(string))
	if code != http.StatusOK {
		t.Fatalf("second server run failed (%d): %s", code, fresh2)
	}
	if !bytes.Equal(fresh, fresh2) {
		t.Fatalf("fresh runs on two servers differ:\nA: %s\nB: %s", fresh, fresh2)
	}
}

// A malformed fault spec must come back as 400 naming the offending
// token, so the client knows what to fix.
func TestBadSpec400(t *testing.T) {
	_, hs := newTestServer(t, Options{Workers: 1})
	for _, tc := range []struct {
		spec any
		want string
	}{
		{JobSpec{App: "QUICKSTART", Fault: "kernel_fault:0.5x"}, `"0.5x"`},
		{JobSpec{App: "QUICKSTART", Fault: "latency_spike:0.1,bogus:0.2"}, `"bogus"`},
		{JobSpec{App: "NOPE"}, `"NOPE"`},
		{JobSpec{App: "QUICKSTART", N: -4}, "n=-4"},
		{JobSpec{App: "WHATIF", WhatIf: "dram=zero"}, `"dram=zero"`},
		{JobSpec{App: "QUICKSTART", DeadlineMs: -1}, "deadline_ms=-1"},
		{map[string]any{"app": "QUICKSTART", "bogus_field": 1}, "bogus_field"},
	} {
		code, body, _ := submit(t, hs, tc.spec)
		if code != http.StatusBadRequest {
			t.Errorf("%+v: code %d, want 400", tc.spec, code)
			continue
		}
		if msg, _ := body["error"].(string); !strings.Contains(msg, tc.want) {
			t.Errorf("%+v: error %q does not name %s", tc.spec, msg, tc.want)
		}
	}
}

// blockingServer installs a run function that parks jobs until
// released, for deterministic saturation and drain tests. The
// returned release function is idempotent and also registered as a
// cleanup (it must run before the server's drain, or drain would wait
// on parked jobs forever).
func blockingServer(t *testing.T, opts Options) (*Server, *httptest.Server, func()) {
	t.Helper()
	s, hs := newTestServer(t, opts)
	ch := make(chan struct{})
	var once sync.Once
	release := func() { once.Do(func() { close(ch) }) }
	t.Cleanup(release)
	s.run = func(ctx context.Context, spec JobSpec, canonical, key string, base uint64, progress func(exec.ProgressFrame)) (*artifacts, error) {
		select {
		case <-ch:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		p := []byte(`{"app":"` + spec.App + `"}`)
		return &artifacts{payload: p, hash: obs.Hash(string(p))}, nil
	}
	return s, hs, release
}

// Saturation: workers busy and queue full → 429 with Retry-After; a
// freed slot admits again.
func TestAdmissionControl429(t *testing.T) {
	s, hs, release := blockingServer(t, Options{Workers: 1, QueueDepth: 2})

	// Distinct seeds: each job must be a distinct canonical config, or
	// cache hits would mask admission behaviour.
	spec := func(i int) JobSpec { return JobSpec{App: "QUICKSTART", N: 1000, Seed: int64(i + 1)} }

	// Capacity is 1 running + QueueDepth queued. Park the first job on
	// the worker (waiting until it is claimed, so later submits don't
	// race it for a queue slot), then fill both queue slots.
	var ids []string
	code, body, _ := submit(t, hs, spec(0))
	if code != http.StatusAccepted {
		t.Fatalf("job 0: code %d, want 202", code)
	}
	ids = append(ids, body["id"].(string))
	deadline := time.Now().Add(5 * time.Second)
	for len(s.queue) > 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never claimed the first job")
		}
		time.Sleep(time.Millisecond)
	}
	for i := 1; i < 3; i++ {
		code, body, _ := submit(t, hs, spec(i))
		if code != http.StatusAccepted {
			t.Fatalf("job %d: code %d, want 202", i, code)
		}
		ids = append(ids, body["id"].(string))
	}

	code, body, hdr := submit(t, hs, spec(4))
	if code != http.StatusTooManyRequests {
		t.Fatalf("saturated submit: code %d (%v), want 429", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if msg, _ := body["error"].(string); !strings.Contains(msg, "full") {
		t.Errorf("429 error %q does not mention fullness", msg)
	}
	if st := s.Stats(); st.RejectedFull == 0 {
		t.Error("RejectedFull not counted")
	}

	// Release everything: all accepted jobs must finish.
	release()
	for _, id := range ids {
		code, b, _ := fetchResult(t, hs, id)
		if code != http.StatusOK {
			t.Errorf("job %s after release: %d %s", id, code, b)
		}
	}
}

// A deadline that expires mid-run times the job out with a structured
// RunError-derived error and no partial output.
func TestDeadlineMidRunTimesOut(t *testing.T) {
	_, hs := newTestServer(t, Options{Workers: 1})
	spec := JobSpec{App: "QUICKSTART", N: 1_500_000, DeadlineMs: 30}
	code, body, _ := submit(t, hs, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d (%v)", code, body)
	}
	id := body["id"].(string)
	code, res, _ := fetchResult(t, hs, id)
	if code != http.StatusConflict {
		t.Fatalf("result of timed-out job: %d %s, want 409", code, res)
	}
	var eb struct {
		Error string    `json:"error"`
		Job   *JobError `json:"job_error"`
	}
	if err := json.Unmarshal(res, &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Job == nil {
		t.Fatalf("no structured job error: %s", res)
	}
	// The run had started (queue was empty), so the executor's cancel
	// path produced the error: timed_out with the exec op recorded.
	if !eb.Job.TimedOut {
		t.Errorf("job error not marked timed out: %+v", eb.Job)
	}
	if eb.Job.Op != "cancel" && eb.Job.Op != "shed" {
		t.Errorf("op %q, want cancel (or shed if the queue was slow)", eb.Job.Op)
	}
	if strings.Contains(eb.Error, "partial") || bytes.Contains(res, []byte("stream_cycles")) {
		t.Errorf("timed-out job leaked output: %s", res)
	}
}

// A deadline burned entirely in the queue sheds the job without
// running it.
func TestQueuedPastDeadlineShed(t *testing.T) {
	s, hs, release := blockingServer(t, Options{Workers: 1, QueueDepth: 4})

	// Park the worker, then queue a job with a tiny deadline.
	if _, err := s.Submit(JobSpec{App: "QUICKSTART", N: 1000, Seed: 100}); err != nil {
		t.Fatal(err)
	}
	code, body, _ := submit(t, hs, JobSpec{App: "QUICKSTART", N: 1000, Seed: 101, DeadlineMs: 20})
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	id := body["id"].(string)
	time.Sleep(50 * time.Millisecond) // burn the deadline in the queue
	release()

	code, res, _ := fetchResult(t, hs, id)
	if code != http.StatusConflict {
		t.Fatalf("shed job result: %d %s, want 409", code, res)
	}
	j, _ := s.Job(id)
	if st := j.Status(); st.State != StateShed || st.Error == nil || !st.Error.TimedOut {
		t.Errorf("want shed with timed-out error, got %+v", st)
	}
	if st := s.Stats(); st.Shed == 0 {
		t.Error("Shed not counted")
	}
}

// A panicking job run must fail that job only; the worker and server
// survive and keep serving.
func TestPanicIsolation(t *testing.T) {
	s, hs := newTestServer(t, Options{Workers: 1})
	s.run = func(ctx context.Context, spec JobSpec, canonical, key string, base uint64, progress func(exec.ProgressFrame)) (*artifacts, error) {
		if spec.Seed == 666 {
			panic("synthetic job crash")
		}
		return runSpec(ctx, spec, canonical, key, base, progress)
	}

	code, body, _ := submit(t, hs, JobSpec{App: "QUICKSTART", N: 1000, Seed: 666})
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	code, res, _ := fetchResult(t, hs, body["id"].(string))
	if code != http.StatusConflict {
		t.Fatalf("panicked job result: %d %s", code, res)
	}
	if !bytes.Contains(res, []byte("synthetic job crash")) {
		t.Errorf("panic message lost: %s", res)
	}
	if st := s.Stats(); st.Panics != 1 || st.Failed != 1 {
		t.Errorf("stats after panic: %+v", st)
	}

	// The server still runs jobs.
	code, body, _ = submit(t, hs, quickSpec())
	if code != http.StatusAccepted {
		t.Fatalf("post-panic submit: %d", code)
	}
	if code, res, _ := fetchResult(t, hs, body["id"].(string)); code != http.StatusOK {
		t.Fatalf("post-panic job: %d %s", code, res)
	}
}

// Drain finishes accepted jobs, rejects new ones and flips readiness.
func TestDrainLifecycle(t *testing.T) {
	s, hs := newTestServer(t, Options{Workers: 2})
	var ids []string
	for i := 0; i < 4; i++ {
		code, body, _ := submit(t, hs, JobSpec{App: "QUICKSTART", N: 5000, Seed: int64(i + 1)})
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: %d", i, code)
		}
		ids = append(ids, body["id"].(string))
	}
	s.Drain()

	// Every accepted job reached a terminal state.
	for _, id := range ids {
		j, ok := s.Job(id)
		if !ok {
			t.Fatalf("accepted job %s lost", id)
		}
		if st := j.Status(); !st.State.Terminal() {
			t.Errorf("job %s state %s after drain", id, st.State)
		}
	}

	// New submissions are rejected with 503; readiness flips.
	code, body, _ := submit(t, hs, quickSpec())
	if code != http.StatusServiceUnavailable {
		t.Errorf("submit while draining: %d (%v), want 503", code, body)
	}
	resp, err := http.Get(hs.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining: %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz while draining: %d, want 200 (process lives)", resp.StatusCode)
	}
	// Drain again: must be idempotent.
	s.Drain()
}

// Trace and coverage artifacts download for jobs that asked for them,
// 404 otherwise.
func TestArtifactDownloads(t *testing.T) {
	_, hs := newTestServer(t, Options{Workers: 1})
	code, body, _ := submit(t, hs, JobSpec{App: "QUICKSTART", N: 20000, Trace: true, Coverage: true})
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	id := body["id"].(string)
	if code, res, _ := fetchResult(t, hs, id); code != http.StatusOK {
		t.Fatalf("job failed: %d %s", code, res)
	}

	get := func(path string) (int, []byte) {
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, b
	}

	code, trace := get("/jobs/" + id + "/trace?wait=1")
	if code != http.StatusOK {
		t.Fatalf("trace: %d %s", code, trace)
	}
	if !bytes.Contains(trace, []byte("traceEvents")) {
		t.Errorf("trace is not Chrome trace JSON: %.120s", trace)
	}
	code, cov := get("/jobs/" + id + "/coverage?wait=1")
	if code != http.StatusOK {
		t.Fatalf("coverage: %d %s", code, cov)
	}
	var covObj map[string]any
	if err := json.Unmarshal(cov, &covObj); err != nil || covObj["fast_accesses"] == nil {
		t.Errorf("coverage report malformed (%v): %.120s", err, cov)
	}

	// A job without artifacts 404s.
	code, body2, _ := submit(t, hs, quickSpec())
	if code != http.StatusAccepted {
		t.Fatal("submit")
	}
	id2 := body2["id"].(string)
	fetchResult(t, hs, id2)
	if code, msg := get("/jobs/" + id2 + "/trace"); code != http.StatusNotFound {
		t.Errorf("trace without trace=true: %d %s", code, msg)
	}
	if code, _ := get("/jobs/nope"); code != http.StatusNotFound {
		t.Errorf("unknown job: %d", code)
	}
}

// WHATIF jobs run the cross-checked analysis and cache like any other
// job.
func TestWhatIfJob(t *testing.T) {
	_, hs := newTestServer(t, Options{Workers: 1})
	spec := JobSpec{App: "WHATIF", WhatIf: "ident,1ctx", Quick: true}
	code, body, _ := submit(t, hs, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d (%v)", code, body)
	}
	code, res, _ := fetchResult(t, hs, body["id"].(string))
	if code != http.StatusOK {
		t.Fatalf("whatif job: %d %s", code, res)
	}
	var pr ResultPayload
	if err := json.Unmarshal(res, &pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.WhatIf) != 2 || pr.WhatIfFailed != 0 {
		t.Errorf("whatif rows: %+v", pr)
	}
	if !strings.Contains(pr.Report, "What-if") || !strings.Contains(pr.Report, "1ctx") {
		t.Errorf("report table missing:\n%s", pr.Report)
	}

	_, body2, _ := submit(t, hs, spec)
	_, res2, hdr := fetchResult(t, hs, body2["id"].(string))
	if hdr.Get("X-Streamd-Cache") != "hit" || !bytes.Equal(res, res2) {
		t.Error("whatif result did not cache byte-identically")
	}
}

// The server writes one valid ledger entry per fresh run and repairs a
// torn tail at startup.
func TestLedgerWriteAndStartupRepair(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "streamd.jsonl")

	s, hs := newTestServer(t, Options{Workers: 1, LedgerPath: path})
	spec := quickSpec()
	_, body, _ := submit(t, hs, spec)
	if code, res, _ := fetchResult(t, hs, body["id"].(string)); code != http.StatusOK {
		t.Fatalf("job: %d %s", code, res)
	}
	// A cache hit must not append (it records no new run).
	_, body2, _ := submit(t, hs, spec)
	fetchResult(t, hs, body2["id"].(string))
	s.Drain()

	entries, stats, err := obs.ReadLedgerStats(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || stats.TornTail {
		t.Fatalf("want 1 clean entry, got %d (torn=%v)", len(entries), stats.TornTail)
	}
	e := entries[0]
	if e.Source != "streamd" || e.Experiment != "streamd/QUICKSTART" || e.OutputHash == "" || e.ConfigHash == "" {
		t.Errorf("ledger entry: %+v", e)
	}

	// Tear the tail (a killed writer) and restart: New must repair.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(f, `{"schema":2,"experiment":"streamd/trunc`)
	f.Close()

	s2, err := New(Options{Workers: 1, LedgerPath: path})
	if err != nil {
		t.Fatalf("restart over torn ledger: %v", err)
	}
	defer s2.Drain()
	if !s2.Stats().LedgerTornTail {
		t.Error("startup repair not reported in stats")
	}
	entries2, stats2, err := obs.ReadLedgerStats(path)
	if err != nil || len(entries2) != 1 || stats2.TornTail {
		t.Fatalf("repaired ledger: %d entries, torn=%v, err=%v", len(entries2), stats2.TornTail, err)
	}
}

// Per-job fault derivation: two specs differing only in fault base
// seed produce different schedules (and different payloads), while the
// same spec replays identically — the replayability contract.
func TestFaultSeedDerivation(t *testing.T) {
	ctx := context.Background()
	spec := JobSpec{App: "QUICKSTART", N: 30000, Comp: 1, Seed: 1, Fault: "kernel_fault:0.05"}
	spec.normalize()

	runOnce := func(sp JobSpec, base uint64) *artifacts {
		canonical := sp.Canonical(base)
		a, err := runSpec(ctx, sp, canonical, obs.Hash(canonical), base, nil)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	a1 := runOnce(spec, 1)
	a2 := runOnce(spec, 1)
	if !bytes.Equal(a1.payload, a2.payload) {
		t.Fatal("same spec and base seed did not replay byte-identically")
	}
	var p1 ResultPayload
	json.Unmarshal(a1.payload, &p1)
	if p1.FaultSeed == 0 {
		t.Fatal("payload does not record the derived fault seed")
	}
	a3 := runOnce(spec, 2)
	var p3 ResultPayload
	json.Unmarshal(a3.payload, &p3)
	if p3.FaultSeed == p1.FaultSeed {
		t.Error("different base seeds derived the same injector seed")
	}
}
