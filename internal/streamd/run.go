package streamd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"

	"streamgpp/internal/apps/micro"
	"streamgpp/internal/bench"
	"streamgpp/internal/covreport"
	"streamgpp/internal/exec"
	"streamgpp/internal/fault"
	"streamgpp/internal/obs"
	"streamgpp/internal/sim"
)

// artifacts is everything one completed run produced. The payload is
// deterministic JSON — no timestamps, no job IDs, maps only with
// sorted-key encoding — so two runs of the same canonical spec yield
// byte-identical payloads, which is the invariant the content-addressed
// cache serves under.
type artifacts struct {
	payload  []byte // ResultPayload JSON
	hash     string // obs.Hash of the payload bytes
	trace    []byte // Perfetto JSON, nil unless requested
	coverage []byte // covreport JSON, nil unless requested

	// Ledger-only facts (not part of the cached payload identity).
	simCycles uint64
	metrics   map[string]float64
}

// ResultPayload is the JSON result of a completed job.
type ResultPayload struct {
	App       string `json:"app"`
	Canonical string `json:"canonical"`
	Key       string `json:"key"`

	// Micro-benchmark results.
	RegularCycles uint64    `json:"regular_cycles,omitempty"`
	StreamCycles  uint64    `json:"stream_cycles,omitempty"`
	Speedup       float64   `json:"speedup,omitempty"`
	KindCycles    [3]uint64 `json:"kind_cycles,omitempty"` // gather, kernel, scatter

	// Fault-injection and recovery accounting (zero without -fault).
	FaultSeed      uint64 `json:"fault_seed,omitempty"` // effective derived seed
	FaultsInjected uint64 `json:"faults_injected,omitempty"`
	Retries        uint64 `json:"retries,omitempty"`
	Degraded       bool   `json:"degraded,omitempty"`

	// What-if results (WHATIF jobs only).
	WhatIf       []bench.WhatIfRow `json:"whatif,omitempty"`
	WhatIfFailed int               `json:"whatif_failed,omitempty"`
	Report       string            `json:"report,omitempty"` // rendered verdict table
}

// runSpec executes a validated job spec under ctx and returns its
// artifacts. It is a pure function of (spec, baseFaultSeed): the
// context only decides whether the run completes, never what it
// computes — a cancelled run returns an error and no artifacts. The
// progress hook (may be nil) is likewise non-semantic: it is
// clock-neutral by the executor's contract (exec.ProgressFrame), so
// attaching it changes neither cycles nor payload bytes. WHATIF jobs
// run several scenarios back to back; their frames restart Done/Total
// per scenario.
func runSpec(ctx context.Context, spec JobSpec, canonical, key string, baseFaultSeed uint64, progress func(exec.ProgressFrame)) (*artifacts, error) {
	ecfg := exec.Defaults()
	ecfg.Ctx = ctx
	ecfg.Progress = progress

	pay := ResultPayload{App: spec.App, Canonical: canonical, Key: key}

	if spec.Fault != "" {
		fcfg, err := fault.ParseSpec(spec.Fault)
		if err != nil {
			return nil, err // validated at admission; defensive
		}
		base := spec.FaultSeed
		if base == 0 {
			base = baseFaultSeed
		}
		// Derived from the canonical identity, not the job ID: every
		// submission of this spec replays the same fault schedule, so
		// cached and fresh results agree even under injection.
		fcfg.Seed = fault.DeriveSeed(base, canonical)
		ecfg.Fault = fault.New(fcfg)
		pay.FaultSeed = fcfg.Seed
	}

	var tr *exec.Trace
	if spec.Trace {
		tr = &exec.Trace{}
		ecfg.Trace = tr
	}
	reg := obs.NewRegistry()

	var streamCycles uint64
	switch spec.App {
	case "WHATIF":
		specs, err := bench.ParseWhatIf(spec.WhatIf)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		res, err := bench.RunWhatIfExec(&buf, spec.Quick, specs, ecfg)
		if err != nil {
			return nil, err
		}
		pay.WhatIf = res.Rows
		pay.WhatIfFailed = res.Failed
		pay.Report = buf.String()
		for _, r := range res.Rows {
			streamCycles += r.Empirical
		}
	default:
		run := micro.RunQuickstart
		if spec.App != "QUICKSTART" {
			run = micro.Runners[spec.App]
		}
		res, err := run(micro.Params{N: spec.N, Comp: spec.Comp, Seed: spec.Seed, Observer: reg}, ecfg)
		if err != nil {
			return nil, err
		}
		pay.RegularCycles = res.Regular.Cycles
		pay.StreamCycles = res.Stream.Cycles
		pay.Speedup = res.Speedup
		pay.KindCycles = res.Stream.KindCycles
		pay.FaultsInjected = res.Stream.Recovery.FaultsInjected
		pay.Retries = res.Stream.Recovery.Retries
		pay.Degraded = res.Stream.Recovery.Degraded
		streamCycles = res.Stream.Cycles
	}

	a := &artifacts{simCycles: streamCycles, metrics: obs.FlattenSnapshot(reg.Snapshot())}
	var err error
	if a.payload, err = json.Marshal(pay); err != nil {
		return nil, fmt.Errorf("streamd: marshalling result: %w", err)
	}
	a.hash = obs.Hash(string(a.payload))

	if spec.Trace {
		var buf bytes.Buffer
		if err := tr.WritePerfetto(&buf, spec.App, sim.PentiumD8300().FreqHz/1e6); err != nil {
			return nil, fmt.Errorf("streamd: trace export: %w", err)
		}
		a.trace = buf.Bytes()
	}
	if spec.Coverage {
		rep := covreport.New(a.metrics, streamCycles, sim.PentiumD8300())
		if a.coverage, err = json.Marshal(rep); err != nil {
			return nil, fmt.Errorf("streamd: coverage export: %w", err)
		}
	}
	return a, nil
}
