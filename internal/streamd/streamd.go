// Package streamd is the fault-tolerant job service over the
// simulator: an HTTP/JSON server that accepts simulation and what-if
// jobs, schedules them on a bounded worker pool with admission
// control and per-job deadlines, serves repeated configurations from a
// content-addressed result cache, and drains gracefully on SIGTERM —
// accepted jobs finish, new ones are rejected, the run ledger is left
// valid. See DESIGN.md §15 for the job state machine and the cache
// soundness argument.
package streamd

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"sync"
	"time"

	"streamgpp/internal/exec"
	"streamgpp/internal/obs"
	"streamgpp/internal/sim"
	"streamgpp/internal/wq"
)

// ErrFull is the admission-control rejection: every job-queue slot is
// in use. It aliases wq.ErrFull deliberately — the job layer applies
// the same bounded-queue discipline the strip layer got, one level up;
// the HTTP layer maps it to 429 + Retry-After.
var ErrFull = wq.ErrFull

// ErrDraining rejects submissions during shutdown (HTTP 503).
var ErrDraining = errors.New("streamd: server draining, not accepting jobs")

// Options configures a Server. Zero values take the documented
// defaults.
type Options struct {
	// Workers is the job-worker pool size (default 4).
	Workers int
	// QueueDepth bounds queued-but-not-running jobs (default 64, the
	// work queue's slot count — the same admission bound one level up).
	QueueDepth int
	// CacheEntries bounds the result cache (default 1024 entries).
	CacheEntries int
	// MaxN bounds a single job's problem size (default 2,000,000
	// elements — admission control for memory, not just queue slots).
	MaxN int
	// LedgerPath, when non-empty, appends one obs ledger entry per
	// fresh (non-cached) completed run. The file is repaired at
	// startup if a previous process died mid-append (torn tail).
	LedgerPath string
	// EventsPath, when non-empty, persists the job lifecycle event log
	// (JSONL, one record per state transition) at that path. Defaults
	// to LedgerPath+".events" when a ledger is configured; with
	// neither, events are held in memory only (still served at
	// GET /jobs/{id}/events). Like the ledger, an existing file is
	// repaired at startup if its final line was torn.
	EventsPath string
	// BaseFaultSeed seeds per-job fault derivation for specs that do
	// not carry their own (default 1).
	BaseFaultSeed uint64
	// Logger receives the structured access and job-lifecycle log
	// lines (log/slog). Every line about a job carries job_id and
	// config_hash, the same keys the events JSONL and the ledger use,
	// so the three records join. Nil discards.
	Logger *slog.Logger
	// EnablePprof mounts net/http/pprof under /debug/pprof/ on the
	// Handler. Off by default: live profiling is opt-in.
	EnablePprof bool
	// SLOs are the service-level objectives the /sloz engine evaluates
	// (burn-rate gauges also ride /metricz). Nil takes DefaultSLOs.
	SLOs []obs.SLOObjective
}

func (o *Options) setDefaults() {
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = wq.DefaultCapacity
	}
	if o.CacheEntries <= 0 {
		o.CacheEntries = 1024
	}
	if o.MaxN <= 0 {
		o.MaxN = 2_000_000
	}
	if o.BaseFaultSeed == 0 {
		o.BaseFaultSeed = 1
	}
	if o.EventsPath == "" && o.LedgerPath != "" {
		o.EventsPath = o.LedgerPath + ".events"
	}
	if o.Logger == nil {
		o.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if o.SLOs == nil {
		o.SLOs = DefaultSLOs()
	}
}

// DefaultSLOs are the objectives a server evaluates when the caller
// declares none: job runs under 2s at p95, queue wait under 500ms at
// p99, and three-nines non-5xx availability. Latency thresholds sit on
// histogram bucket bounds (powers of two) so the conservative
// bucket-rounding in the SLO engine costs nothing.
func DefaultSLOs() []obs.SLOObjective {
	return []obs.SLOObjective{
		{Name: "run-latency", Class: obs.SLOLatency,
			Metric: "streamd.run_ms", ThresholdMs: 2048, Target: 0.95},
		{Name: "queue-wait", Class: obs.SLOLatency,
			Metric: "streamd.queue_wait_ms", ThresholdMs: 512, Target: 0.99},
		{Name: "availability", Class: obs.SLORatio,
			Metric: "streamd.http.responses_5xx", Total: "streamd.http.requests",
			Target: 0.999},
	}
}

// Stats is a snapshot of the server's counters, served at /statz.
type Stats struct {
	UptimeSec      float64        `json:"uptime_sec"`
	Accepted       uint64         `json:"accepted"`
	RejectedFull   uint64         `json:"rejected_full"`
	RejectedDrain  uint64         `json:"rejected_draining"`
	Done           uint64         `json:"done"`
	Failed         uint64         `json:"failed"`
	TimedOut       uint64         `json:"timed_out"`
	Shed           uint64         `json:"shed"`
	Panics         uint64         `json:"panics"`
	CacheHits      uint64         `json:"cache_hits"`
	CacheMisses    uint64         `json:"cache_misses"`
	CacheEntries   int            `json:"cache_entries"`
	QueueDepth     int            `json:"queue_depth"`
	Workers        int            `json:"workers"`
	Draining       bool           `json:"draining"`
	JobsByState    map[string]int `json:"jobs_by_state"`
	LedgerEntries  uint64         `json:"ledger_entries"`
	LedgerTornTail bool           `json:"ledger_torn_tail_repaired"`
	EventsDropped  uint64         `json:"events_dropped,omitempty"`
	// BuildInfo is the process's build identity (Go version, VCS
	// revision) — the /statz twin of the streamd_build_info gauge.
	BuildInfo       map[string]string `json:"build_info,omitempty"`
	RepairedAtStart bool              `json:"-"`
}

// Server is the streamd job service.
type Server struct {
	opts      Options
	cache     *cache
	queue     chan *Job
	start     time.Time
	reg       *obs.Registry // /metricz instruments
	events    *eventLog
	log       *slog.Logger
	rt        *obs.RuntimeCollector
	buildInfo map[string]string

	sloMu sync.Mutex // serialises SLO evaluate/record (engine is not concurrency-safe)
	slo   *obs.SLOEngine

	mu          sync.Mutex
	jobs        map[string]*Job
	draining    bool
	nextID      uint64
	stats       Stats
	stateCounts map[State]int // live jobs per state (terminal states accumulate)

	ledgerMu sync.Mutex // serialises ledger appends

	workers sync.WaitGroup
	// run executes one job spec; tests substitute it to script
	// saturation, panics and deadlines deterministically. The progress
	// callback (may be nil) receives the executor's mid-run frames.
	run func(ctx context.Context, spec JobSpec, canonical, key string, baseFaultSeed uint64, progress func(exec.ProgressFrame)) (*artifacts, error)
}

// New builds and starts a server: the ledger is repaired if a previous
// process tore its final line, and the worker pool is running on
// return.
func New(opts Options) (*Server, error) {
	opts.setDefaults()
	s := &Server{
		opts:        opts,
		cache:       newCache(opts.CacheEntries),
		queue:       make(chan *Job, opts.QueueDepth),
		start:       time.Now(),
		reg:         obs.NewRegistry(),
		jobs:        make(map[string]*Job),
		stateCounts: make(map[State]int),
		run:         runSpec,
		log:         opts.Logger,
		buildInfo:   obs.BuildInfoLabels(),
	}
	s.stats.Workers = opts.Workers
	s.rt = obs.NewRuntimeCollector(s.reg)
	s.slo = obs.NewSLOEngine(s.start, opts.SLOs)
	s.reg.Info("streamd.build_info", s.buildInfo)
	events, err := newEventLog(opts.EventsPath)
	if err != nil {
		return nil, err
	}
	s.events = events
	if opts.LedgerPath != "" {
		if _, err := os.Stat(opts.LedgerPath); err == nil {
			repaired, err := obs.RepairLedger(opts.LedgerPath)
			if err != nil {
				return nil, fmt.Errorf("streamd: ledger %s unusable: %w", opts.LedgerPath, err)
			}
			s.stats.RepairedAtStart = repaired
			s.stats.LedgerTornTail = repaired
		}
	}
	s.workers.Add(opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		go s.worker()
	}
	return s, nil
}

// Submit validates and admits a job. On success the job is queued (its
// deadline clock already running). Admission errors: a validation
// error (client's fault, HTTP 400), ErrFull (saturated, HTTP 429) or
// ErrDraining (shutting down, HTTP 503).
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	spec.normalize()
	if err := spec.Validate(s.opts.MaxN); err != nil {
		return nil, &ValidationError{Err: err}
	}
	canonical := spec.Canonical(s.opts.BaseFaultSeed)
	key := obs.Hash(canonical)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.stats.RejectedDrain++
		s.reg.Counter("streamd.jobs_rejected_draining").Inc()
		s.log.Warn("job", "event", "reject", "reason", "draining",
			"app", spec.App, "config_hash", key)
		return nil, ErrDraining
	}
	// The ID is burned whether or not admission succeeds: a rejected
	// submission still gets a reject event under its own ID, and IDs
	// are never reused, so the event log's per-job histories never
	// collide.
	s.nextID++
	job := newJob(fmt.Sprintf("job-%06d", s.nextID), spec, canonical, key)
	job.onState = s.onTransition
	// The submit event is appended *before* the queue send: the moment
	// the job is in the channel a worker can claim it, and its admit
	// event must sort after submit.
	s.events.append(Event{Job: job.ID, Type: EventSubmit, State: StateQueued, App: spec.App, Key: key})
	select {
	case s.queue <- job:
	default:
		job.cancel()
		s.stats.RejectedFull++
		s.reg.Counter("streamd.jobs_rejected_full").Inc()
		s.events.append(Event{Job: job.ID, Type: EventReject, App: spec.App, Key: key})
		s.log.Warn("job", "job_id", job.ID, "event", "reject", "reason", "full",
			"app", spec.App, "config_hash", key)
		return nil, ErrFull
	}
	s.jobs[job.ID] = job
	s.stats.Accepted++
	s.reg.Counter("streamd.jobs_accepted").Inc()
	s.log.Info("job", "job_id", job.ID, "event", "submit", "state", string(StateQueued),
		"app", spec.App, "config_hash", key)
	s.stateCounts[StateQueued]++
	s.reg.Gauge("streamd.jobs_by_state.queued").Set(float64(s.stateCounts[StateQueued]))
	return job, nil
}

// onTransition is the job state-machine observer (wired as Job.onState
// at admission): it maintains the per-state gauges, feeds the latency
// histograms — queue_wait_ms at admit, admission_ms at run start,
// run_ms at the terminal edge — and appends the lifecycle event. It
// runs on the transitioning goroutine with j.mu released; for
// terminal transitions it completes before the job's Done channel
// closes, so a waiter never observes a terminal status whose event is
// missing from the log.
func (s *Server) onTransition(j *Job, from, to State) {
	s.mu.Lock()
	s.stateCounts[from]--
	s.stateCounts[to]++
	// Gauges live under jobs_by_state so that after PromName flattens
	// '.' to '_' they cannot collide with the terminal counters below
	// ("streamd.jobs.done" and "streamd.jobs_done" would otherwise both
	// become the Prometheus family "streamd_jobs_done" with conflicting
	// types, which a scraper rejects wholesale).
	s.reg.Gauge("streamd.jobs_by_state." + promStateName(from)).Set(float64(s.stateCounts[from]))
	s.reg.Gauge("streamd.jobs_by_state." + promStateName(to)).Set(float64(s.stateCounts[to]))
	s.mu.Unlock()

	st := j.Status()
	ev := Event{Job: j.ID, Type: "", State: to, App: j.Spec.App, Key: j.Key}
	if st.Progress != nil {
		ev.Retries = st.Progress.Retries
	}
	switch {
	case to == StateAdmitted:
		ev.Type = EventAdmit
		s.reg.Histogram("streamd.queue_wait_ms").Observe(float64(j.tAdmit.Sub(j.tSubmit)) / float64(time.Millisecond))
	case to == StateRunning:
		ev.Type = EventStart
		ev.Cache = "miss"
		s.reg.Counter("streamd.cache.misses").Inc()
		s.reg.Histogram("streamd.admission_ms").Observe(float64(j.tRun.Sub(j.tAdmit)) / float64(time.Millisecond))
	case to.Terminal():
		ev.Type = EventTerminal
		ev.Error = st.Error
		if st.CacheHit {
			ev.Cache = "hit"
			s.reg.Counter("streamd.cache.hits").Inc()
		} else if from == StateRunning {
			ev.Cache = "miss"
			s.reg.Histogram("streamd.run_ms").Observe(float64(time.Since(j.tRun)) / float64(time.Millisecond))
		}
		s.reg.Counter("streamd.jobs_" + promStateName(to)).Inc()
	}
	s.events.append(ev)

	// The slog line mirrors the event record key-for-key (job_id,
	// config_hash, state) so grep-by-hash lands on the same runs in
	// logs, events JSONL and ledger.
	attrs := []any{
		"job_id", j.ID, "event", ev.Type, "state", string(to),
		"app", j.Spec.App, "config_hash", j.Key,
	}
	if ev.Cache != "" {
		attrs = append(attrs, "cache", ev.Cache)
	}
	if ev.Retries > 0 {
		attrs = append(attrs, "retries", ev.Retries)
	}
	if ev.Error != nil {
		attrs = append(attrs, "error", ev.Error.Message)
		s.log.Error("job", attrs...)
		return
	}
	s.log.Info("job", attrs...)
}

// promStateName maps a State to its counter suffix ("timed-out" →
// "timed_out" — obs.PromName would do it too, but doing it here keeps
// the registry's dotted names consistent).
func promStateName(st State) string {
	switch st {
	case StateTimedOut:
		return "timed_out"
	default:
		return string(st)
	}
}

// ValidationError marks a client error (HTTP 400).
type ValidationError struct{ Err error }

func (e *ValidationError) Error() string { return e.Err.Error() }
func (e *ValidationError) Unwrap() error { return e.Err }

// Job returns the job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Draining reports whether the server has begun shutdown.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain stops admission and waits until every accepted job has reached
// a terminal state. Safe to call more than once and from multiple
// goroutines; all callers return once the pool is idle. The ledger
// needs no separate flush: entries are appended (and synced by the OS)
// per run, so after Drain the file is a complete, valid JSONL record
// of every fresh run.
func (s *Server) Drain() {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue) // workers exit after finishing what was accepted
	}
	s.mu.Unlock()
	s.workers.Wait()
	// Every worker has exited, so no event can follow: the JSONL event
	// log is complete and its tail line whole.
	s.events.closeFile()
}

// Stats snapshots the counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	st := s.stats
	st.Draining = s.draining
	st.QueueDepth = len(s.queue)
	st.JobsByState = make(map[string]int, len(s.stateCounts))
	for state, n := range s.stateCounts {
		if n != 0 {
			st.JobsByState[string(state)] = n
		}
	}
	s.mu.Unlock()
	st.UptimeSec = time.Since(s.start).Seconds()
	st.CacheHits, st.CacheMisses, st.CacheEntries = s.cache.stats()
	st.EventsDropped = s.events.dropped()
	st.BuildInfo = s.buildInfo
	return st
}

// MetricsSnapshot refreshes the point-in-time gauges (uptime, queue
// depth, cache size, drain flag), samples the Go runtime collector,
// evaluates the SLO engine into its burn-rate gauges and returns the
// registry snapshot /metricz encodes. Counters and histograms are
// updated at the edges that define them (admission, state
// transitions), not here — scrape time is when the derived, host-side
// views refresh.
func (s *Server) MetricsSnapshot() obs.Snapshot {
	st := s.Stats()
	s.reg.Gauge("streamd.uptime_sec").Set(st.UptimeSec)
	s.reg.Gauge("streamd.queue.depth").Set(float64(st.QueueDepth))
	s.reg.Gauge("streamd.cache.entries").Set(float64(st.CacheEntries))
	s.reg.Gauge("streamd.workers").Set(float64(st.Workers))
	s.reg.Gauge("streamd.events.dropped").Set(float64(st.EventsDropped))
	var draining float64
	if st.Draining {
		draining = 1
	}
	s.reg.Gauge("streamd.draining").Set(draining)
	s.rt.Collect()
	s.sloEval()
	return s.reg.Snapshot()
}

// sloEval runs one SLO evaluation cycle: report against the current
// registry state, mirror the page-relevant numbers into gauges
// (slo.<objective>.burn_<window>, .sli_<window>, .budget_used_pct,
// slo.healthy), and record the snapshot as a future window baseline.
func (s *Server) sloEval() obs.SLOReport {
	now := time.Now()
	s.sloMu.Lock()
	snap := s.reg.Snapshot()
	rep := s.slo.Report(now, snap)
	s.slo.Record(now, snap)
	s.sloMu.Unlock()
	rep.Now = now.UTC().Format(time.RFC3339)
	for _, o := range rep.Objectives {
		prefix := "slo." + o.Name + "."
		s.reg.Gauge(prefix + "budget_used_pct").Set(o.BudgetUsedPct)
		for _, ws := range o.Windows {
			s.reg.Gauge(prefix + "burn_" + ws.Window).Set(ws.BurnRate)
			s.reg.Gauge(prefix + "sli_" + ws.Window).Set(ws.SLI)
		}
	}
	var healthy float64
	if rep.Healthy {
		healthy = 1
	}
	s.reg.Gauge("slo.healthy").Set(healthy)
	return rep
}

// SLOReport evaluates the service-level objectives right now — the
// GET /sloz payload. Each evaluation also feeds the burn-rate gauges
// and records a baseline sample, exactly like a /metricz scrape.
func (s *Server) SLOReport() obs.SLOReport {
	return s.sloEval()
}

// worker is the job-worker loop. The pool drains the queue until
// Drain closes it.
func (s *Server) worker() {
	defer s.workers.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// count bumps one terminal-state counter.
func (s *Server) count(st State, panicked bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch st {
	case StateDone:
		s.stats.Done++
	case StateFailed:
		s.stats.Failed++
	case StateTimedOut:
		s.stats.TimedOut++
	case StateShed:
		s.stats.Shed++
	}
	if panicked {
		s.stats.Panics++
		s.reg.Counter("streamd.panics").Inc()
	}
}

// runJob takes one accepted job to a terminal state. Panics are
// isolated here: a crashing run marks its job failed and the worker
// (and server) live on.
func (s *Server) runJob(j *Job) {
	defer func() {
		if r := recover(); r != nil {
			j.finish(StateFailed, nil, false, &JobError{
				Op: "panic", Phase: -1, Strip: -1,
				Message: fmt.Sprintf("job worker panic: %v", r),
			})
			s.count(StateFailed, true)
		}
	}()

	j.setState(StateAdmitted)

	// A deadline burned entirely in the queue sheds the job: running it
	// would return a result nobody is waiting for, and under overload
	// shedding stale work is what keeps the queue moving.
	if err := j.ctx.Err(); err != nil {
		j.finish(StateShed, nil, false, &JobError{
			Op: "shed", Phase: -1, Strip: -1,
			Message:  "deadline expired while queued: " + err.Error(),
			TimedOut: errors.Is(err, context.DeadlineExceeded),
		})
		s.count(StateShed, false)
		return
	}

	// Content-addressed hit: the stored bytes are, by determinism, the
	// bytes this run would have produced.
	if a, ok := s.cache.get(j.Key); ok {
		j.finish(StateDone, a, true, nil)
		s.count(StateDone, false)
		return
	}

	j.setState(StateRunning)
	// The progress callback runs on this worker goroutine, inside the
	// simulator's task loop: it must stay cheap and never block. It
	// publishes the frame for long-poll/SSE watchers and logs a retry
	// event whenever the run's recovery tally grows.
	var lastRetries uint64
	progress := func(f exec.ProgressFrame) {
		if f.Retries > lastRetries {
			lastRetries = f.Retries
			s.events.append(Event{
				Job: j.ID, Type: EventRetry, State: StateRunning,
				App: j.Spec.App, Key: j.Key, Retries: f.Retries,
			})
		}
		j.noteProgress(f)
	}
	t0 := time.Now()
	a, err := s.run(j.ctx, j.Spec, j.Canonical, j.Key, s.opts.BaseFaultSeed, progress)
	wall := time.Since(t0)
	if err != nil {
		je := toJobError(err)
		st := StateFailed
		if je.TimedOut {
			st = StateTimedOut
		}
		j.finish(st, nil, false, je)
		s.count(st, false)
		return
	}
	s.cache.put(j.Key, a)
	j.finish(StateDone, a, false, nil)
	s.count(StateDone, false)
	s.appendLedger(j, a, wall)
}

// appendLedger records one fresh run. Serialised: concurrent workers
// must not interleave appends to the JSONL file.
func (s *Server) appendLedger(j *Job, a *artifacts, wall time.Duration) {
	if s.opts.LedgerPath == "" {
		return
	}
	entry := obs.LedgerEntry{
		Schema:     obs.LedgerSchema,
		Time:       time.Now().UTC().Format(time.RFC3339),
		Experiment: "streamd/" + j.Spec.App,
		Config:     j.Canonical,
		ConfigHash: j.Key,
		FastPath:   sim.DefaultFastPath(),
		Quick:      j.Spec.Quick,
		WallNs:     wall.Nanoseconds(),
		SimCycles:  a.simCycles,
		OutputHash: a.hash,
		Metrics:    a.metrics,
		Source:     "streamd",
		Extra:      map[string]string{"job": j.ID},
	}
	if wall > 0 {
		entry.SimCyclesPerSec = float64(a.simCycles) / wall.Seconds()
	}
	s.ledgerMu.Lock()
	err := obs.AppendLedger(s.opts.LedgerPath, entry)
	s.ledgerMu.Unlock()
	// A ledger append failure must not fail the job: the result is
	// already computed and cached. Successful appends are counted so
	// /statz (and the drain smoke) can cross-check the file.
	if err == nil {
		s.mu.Lock()
		s.stats.LedgerEntries++
		s.mu.Unlock()
		s.reg.Counter("streamd.ledger.entries").Inc()
	}
}
