package streamd

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// This file is the job lifecycle event log: one structured record per
// state-machine edge, kept in memory for GET /jobs/{id}/events and
// appended as JSONL next to the run ledger so a crashed server's last
// moments are reconstructable. The format follows the ledger's
// crash-consistency discipline exactly — whole-line appends, torn
// final line tolerated on read, repaired before reopening for append
// (DESIGN.md §16).

// The event types, in the order a job can emit them. A cache-hit job
// goes submit → admit → terminal (no start); a shed job likewise.
// reject is emitted for submissions refused at admission (queue full):
// the job ID is burned but the job never enters the state machine.
const (
	EventSubmit   = "submit"   // accepted into the job queue
	EventReject   = "reject"   // refused at admission, no job created
	EventAdmit    = "admit"    // claimed by a worker
	EventStart    = "start"    // simulator running (always a cache miss)
	EventRetry    = "retry"    // a strip retry inside the run (fault recovery)
	EventTerminal = "terminal" // reached a terminal state
)

// Event is one job lifecycle record.
//
// Timestamps: TNs is monotonic nanoseconds since *this server process*
// started — durations between a job's events are exact, but TNs is not
// comparable across restarts. Seq is file-global and strictly
// increasing, surviving restarts (a reopened log continues from the
// last persisted Seq), so Seq — not TNs — is the cross-restart order.
// Time is wall-clock RFC3339Nano for humans and is not used for
// ordering anywhere.
type Event struct {
	Seq  uint64 `json:"seq"`
	TNs  int64  `json:"t_ns"`
	Time string `json:"time,omitempty"`
	Job  string `json:"job"`
	Type string `json:"type"`
	// State is the job's state after the transition (terminal events
	// carry the terminal state: done, failed, timed-out or shed).
	State State  `json:"state,omitempty"`
	App   string `json:"app,omitempty"`
	Key   string `json:"key,omitempty"` // canonical config hash
	// Cache is the disposition on terminal events: "hit" or "miss".
	Cache string `json:"cache,omitempty"`
	// Retries is the run's cumulative strip-retry count at the event.
	Retries uint64 `json:"retries,omitempty"`
	// Error carries the structured failure on failed/timed-out/shed
	// terminal events.
	Error *JobError `json:"error,omitempty"`
}

// validate rejects records that cannot have been written by this log.
func (e *Event) validate() error {
	if e.Job == "" {
		return fmt.Errorf("streamd: event seq %d without a job ID", e.Seq)
	}
	if e.Type == "" {
		return fmt.Errorf("streamd: event seq %d without a type", e.Seq)
	}
	return nil
}

// In-memory retention: the per-job index exists to serve GET
// /jobs/{id}/events, and a fault-storm job can emit one retry event
// per recovered strip — thousands of events on a big run. The index
// therefore keeps at most maxJobEvents per job: the first
// jobEventsHead events (submit/admit/start always survive) plus the
// most recent tail (the terminal event always survives), evicting the
// oldest mid-history event — in practice a retry — once the cap is
// hit. Eviction touches only the in-memory view; every event is still
// written to the JSONL file, so the persistent record stays complete
// and `streamtrace -events` sees the full history.
const (
	maxJobEvents  = 512
	jobEventsHead = 64
)

// eventLog is the in-process log: an in-memory per-job index serving
// GET /jobs/{id}/events plus an optional JSONL append file. Appends
// are whole-line single writes, so a crash leaves at most one torn
// final line — the same recoverable artifact the ledger leaves.
type eventLog struct {
	mu      sync.Mutex
	f       *os.File // nil when persistence is disabled
	start   time.Time
	seq     uint64
	byJob   map[string][]Event
	errs    uint64 // append write failures (events dropped from the file, never from memory)
	evicted uint64 // events aged out of the in-memory index (never from the file)
	closed  bool
}

// newEventLog opens the log. A non-empty path enables persistence:
// an existing file is repaired (torn tail truncated) before appending
// — appending after a torn line would glue two records together and
// turn a recoverable crash artifact into corruption — and Seq resumes
// after the highest persisted value.
func newEventLog(path string) (*eventLog, error) {
	l := &eventLog{start: time.Now(), byJob: make(map[string][]Event)}
	if path == "" {
		return l, nil
	}
	if _, err := os.Stat(path); err == nil {
		old, stats, err := ReadEvents(path)
		if err != nil {
			return nil, fmt.Errorf("streamd: event log %s unusable: %w", path, err)
		}
		if len(old) > 0 {
			l.seq = old[len(old)-1].Seq
		}
		if stats.TornTail {
			if err := rewriteEvents(path, old); err != nil {
				return nil, err
			}
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("streamd: opening event log: %w", err)
	}
	l.f = f
	return l, nil
}

// rewriteEvents replaces the file with only its valid entries.
func rewriteEvents(path string, events []Event) error {
	tmp := path + ".repair"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("streamd: repairing event log: %w", err)
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			f.Close()
			return fmt.Errorf("streamd: repairing event log: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("streamd: repairing event log: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("streamd: repairing event log: %w", err)
	}
	return os.Rename(tmp, path)
}

// append stamps and records one event. The write failure mode is
// asymmetric by design: a full disk drops the event from the *file*
// (counted in errs) but not from memory — the live API stays
// available while the persistent record degrades, exactly like the
// run ledger's append-failure policy. The converse asymmetry is the
// retention cap above: memory may age out old mid-history events
// (counted in evicted) while the file keeps everything.
func (l *eventLog) append(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	e.Seq = l.seq
	e.TNs = time.Since(l.start).Nanoseconds()
	e.Time = time.Now().UTC().Format(time.RFC3339Nano)
	hist := append(l.byJob[e.Job], e)
	if len(hist) > maxJobEvents {
		copy(hist[jobEventsHead:], hist[jobEventsHead+1:])
		hist = hist[:len(hist)-1]
		l.evicted++
	}
	l.byJob[e.Job] = hist
	if l.f == nil || l.closed {
		return
	}
	line, err := json.Marshal(e)
	if err != nil {
		l.errs++
		return
	}
	if _, err := l.f.Write(append(line, '\n')); err != nil {
		l.errs++
	}
}

// jobEvents returns the job's events in emission order.
func (l *eventLog) jobEvents(id string) []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, len(l.byJob[id]))
	copy(out, l.byJob[id])
	return out
}

// dropped reports file-append failures.
func (l *eventLog) dropped() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.errs
}

// closeFile stops persistence (called from Drain, after the last
// worker exits — no event can follow it).
func (l *eventLog) closeFile() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}

// EventStats reports what a lenient event-log read encountered.
type EventStats struct {
	Events int // valid events read
	Jobs   int // distinct job IDs seen
	// TornTail is true when the final line was unparseable — the
	// torn-write signature of a writer killed mid-append — and was
	// skipped; TornLine is its 1-based line number.
	TornTail bool
	TornLine int
}

// ReadEvents parses the JSONL event log at path, oldest first. The
// tolerance contract matches obs.ReadLedgerStats: a malformed *final*
// line is the torn-write signature of a writer killed mid-append and
// is skipped (reported in stats); malformed JSON anywhere earlier, or
// a well-formed record failing validation, is corruption and fails.
func ReadEvents(path string) ([]Event, EventStats, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, EventStats{}, fmt.Errorf("streamd: opening event log: %w", err)
	}
	defer f.Close()
	return ParseEvents(f)
}

// ParseEvents is ReadEvents over an io.Reader.
func ParseEvents(r io.Reader) ([]Event, EventStats, error) {
	var out []Event
	var stats EventStats
	jobs := make(map[string]bool)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineno := 0
	// A parse failure is held pending until we know whether more
	// content follows: at EOF it is a tolerated torn tail, mid-file it
	// is corruption.
	var pendingErr error
	pendingLine := 0
	for sc.Scan() {
		lineno++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if pendingErr != nil {
			return out, stats, fmt.Errorf("streamd: event log line %d: %w", pendingLine, pendingErr)
		}
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			pendingErr, pendingLine = err, lineno
			continue
		}
		if err := e.validate(); err != nil {
			return out, stats, fmt.Errorf("streamd: event log line %d: %w", lineno, err)
		}
		out = append(out, e)
		jobs[e.Job] = true
	}
	if err := sc.Err(); err != nil {
		return out, stats, fmt.Errorf("streamd: reading event log: %w", err)
	}
	if pendingErr != nil {
		stats.TornTail = true
		stats.TornLine = pendingLine
	}
	stats.Events = len(out)
	stats.Jobs = len(jobs)
	return out, stats, nil
}
