package streamd

import "sync"

// cache is the content-addressed result store: canonical-config hash →
// artifacts. Determinism makes this sound — a key collision is the
// same run, so serving the stored bytes is indistinguishable from
// re-running. Bounded FIFO: when full, the oldest entry is evicted
// (an evicted key simply re-runs on its next miss; correctness never
// depends on residency).
type cache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*artifacts
	order   []string // insertion order, for eviction
	hits    uint64
	misses  uint64
}

func newCache(max int) *cache {
	return &cache{max: max, entries: make(map[string]*artifacts)}
}

// get returns the cached artifacts for key, counting the hit or miss.
func (c *cache) get(key string) (*artifacts, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	a, ok := c.entries[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return a, ok
}

// put stores the artifacts, evicting the oldest entry when full. A
// concurrent duplicate run storing the same key is harmless: the
// simulator is deterministic, so both values are byte-identical.
func (c *cache) put(key string, a *artifacts) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		c.entries[key] = a
		return
	}
	for len(c.order) >= c.max {
		delete(c.entries, c.order[0])
		c.order = c.order[1:]
	}
	c.entries[key] = a
	c.order = append(c.order, key)
}

// stats returns hit/miss counters and the resident entry count.
func (c *cache) stats() (hits, misses uint64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, len(c.entries)
}
