package streamd

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"streamgpp/internal/exec"
	"streamgpp/internal/obs"
)

// eventTypes projects the type sequence for order assertions.
func eventTypes(events []Event) []string {
	out := make([]string, len(events))
	for i, e := range events {
		out[i] = e.Type
	}
	return out
}

func getEvents(t *testing.T, hs string, id string) []Event {
	t.Helper()
	resp, err := http.Get(hs + "/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events endpoint = %d", resp.StatusCode)
	}
	var events []Event
	if err := json.NewDecoder(resp.Body).Decode(&events); err != nil {
		t.Fatal(err)
	}
	return events
}

// The lifecycle log end to end: a fresh run logs submit → admit →
// start → terminal(miss); a cache hit logs submit → admit →
// terminal(hit) with no start; the persisted JSONL round-trips, and a
// torn tail is tolerated on read and repaired on reopen.
func TestEventLogLifecycle(t *testing.T) {
	ledger := filepath.Join(t.TempDir(), "ledger.jsonl")
	s, hs := newTestServer(t, Options{Workers: 1, LedgerPath: ledger})
	eventsPath := ledger + ".events"

	spec := quickSpec()
	_, body, _ := submit(t, hs, spec)
	id := body["id"].(string)
	if code, b, _ := fetchResult(t, hs, id); code != http.StatusOK {
		t.Fatalf("fresh run failed (%d): %s", code, b)
	}

	fresh := getEvents(t, hs.URL, id)
	want := []string{EventSubmit, EventAdmit, EventStart, EventTerminal}
	if got := eventTypes(fresh); strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("fresh-run events %v, want %v", got, want)
	}
	for i, e := range fresh {
		if e.Job != id {
			t.Errorf("event %d carries job %q, want %q", i, e.Job, id)
		}
		if e.Key == "" {
			t.Errorf("event %d without a config key", i)
		}
		if i > 0 {
			if e.Seq <= fresh[i-1].Seq {
				t.Errorf("seq not strictly increasing at event %d: %d after %d", i, e.Seq, fresh[i-1].Seq)
			}
			if e.TNs < fresh[i-1].TNs {
				t.Errorf("t_ns went backwards at event %d: %d after %d", i, e.TNs, fresh[i-1].TNs)
			}
		}
	}
	if term := fresh[3]; term.State != StateDone || term.Cache != "miss" || term.Error != nil {
		t.Fatalf("terminal event wrong: %+v", term)
	}

	// Same spec again: content-addressed hit, so no start event.
	_, body2, _ := submit(t, hs, spec)
	id2 := body2["id"].(string)
	if code, b, _ := fetchResult(t, hs, id2); code != http.StatusOK {
		t.Fatalf("cached run failed (%d): %s", code, b)
	}
	hit := getEvents(t, hs.URL, id2)
	if got := eventTypes(hit); strings.Join(got, ",") != "submit,admit,terminal" {
		t.Fatalf("cache-hit events %v, want [submit admit terminal]", got)
	}
	if term := hit[2]; term.Cache != "hit" || term.State != StateDone {
		t.Fatalf("cache-hit terminal event wrong: %+v", term)
	}

	// Drain closes the file; the JSONL must round-trip completely.
	s.Drain()
	all, stats, err := ReadEvents(eventsPath)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TornTail || stats.Events != 7 || stats.Jobs != 2 {
		t.Fatalf("persisted log stats %+v, want 7 events over 2 jobs, no torn tail", stats)
	}
	lastSeq := all[len(all)-1].Seq

	// A torn final line — the crash signature — is skipped on read…
	f, err := os.OpenFile(eventsPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":999,"job":"job-tor`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	_, stats, err = ReadEvents(eventsPath)
	if err != nil {
		t.Fatalf("torn tail must not fail the read: %v", err)
	}
	if !stats.TornTail || stats.Events != 7 {
		t.Fatalf("after tearing: stats %+v, want TornTail with 7 events", stats)
	}

	// …and repaired on reopen, with Seq continuing past the last
	// persisted value (never reused).
	l, err := newEventLog(eventsPath)
	if err != nil {
		t.Fatal(err)
	}
	l.append(Event{Job: "job-next", Type: EventSubmit})
	if err := l.closeFile(); err != nil {
		t.Fatal(err)
	}
	all, stats, err = ReadEvents(eventsPath)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TornTail {
		t.Fatal("reopen did not repair the torn tail")
	}
	if got := all[len(all)-1].Seq; got != lastSeq+1 {
		t.Fatalf("seq after reopen = %d, want %d (continue, never reuse)", got, lastSeq+1)
	}

	// Mid-file garbage is corruption, not a torn write: hard error.
	if _, _, err := ParseEvents(strings.NewReader("{garbage\n" + `{"seq":1,"job":"j","type":"submit"}` + "\n")); err == nil {
		t.Fatal("mid-file corruption was silently tolerated")
	}
}

// The in-memory per-job index is capped: a fault-storm job emitting
// thousands of retry events keeps bounded memory, retaining the head
// (submit/admit/start) and the most recent tail (the terminal event),
// while the JSONL file keeps the complete history.
func TestEventLogInMemoryCap(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	l, err := newEventLog(path)
	if err != nil {
		t.Fatal(err)
	}
	const retries = 2000
	l.append(Event{Job: "job-storm", Type: EventSubmit})
	l.append(Event{Job: "job-storm", Type: EventAdmit})
	l.append(Event{Job: "job-storm", Type: EventStart})
	for i := 0; i < retries; i++ {
		l.append(Event{Job: "job-storm", Type: EventRetry, State: StateRunning})
	}
	l.append(Event{Job: "job-storm", Type: EventTerminal, State: StateDone})
	if err := l.closeFile(); err != nil {
		t.Fatal(err)
	}
	const total = retries + 4

	got := l.jobEvents("job-storm")
	if len(got) != maxJobEvents {
		t.Fatalf("in-memory history = %d events, want capped at %d", len(got), maxJobEvents)
	}
	if head := eventTypes(got[:3]); strings.Join(head, ",") != "submit,admit,start" {
		t.Fatalf("head lifecycle events evicted: %v", head)
	}
	if last := got[len(got)-1]; last.Type != EventTerminal {
		t.Fatalf("terminal event evicted: %+v", last)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Seq <= got[i-1].Seq {
			t.Fatalf("retained events out of order at %d: seq %d after %d", i, got[i].Seq, got[i-1].Seq)
		}
	}
	if want := uint64(total - maxJobEvents); l.evicted != want {
		t.Fatalf("evicted = %d, want %d", l.evicted, want)
	}

	// The file is exempt from the cap: every event persists.
	all, stats, err := ReadEvents(path)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Events != total || all[len(all)-1].Type != EventTerminal {
		t.Fatalf("persisted %d events (last %q), want the full %d ending in terminal",
			stats.Events, all[len(all)-1].Type, total)
	}
}

// scripted installs a run function the test drives through channels:
// it emits the first frame immediately, the rest after step closes,
// and returns after release closes.
func scripted(t *testing.T, s *Server, frames []exec.ProgressFrame) (step, release func()) {
	t.Helper()
	stepCh, relCh := make(chan struct{}), make(chan struct{})
	var stepOnce, relOnce sync.Once
	step = func() { stepOnce.Do(func() { close(stepCh) }) }
	// release implies step: the run cannot return while still parked on
	// the step gate.
	release = func() { step(); relOnce.Do(func() { close(relCh) }) }
	t.Cleanup(release)
	s.run = func(ctx context.Context, spec JobSpec, canonical, key string, base uint64, progress func(exec.ProgressFrame)) (*artifacts, error) {
		progress(frames[0])
		<-stepCh
		for _, f := range frames[1:] {
			progress(f)
		}
		<-relCh
		p := []byte(`{"app":"` + spec.App + `"}`)
		return &artifacts{payload: p, hash: obs.Hash(string(p))}, nil
	}
	return step, release
}

// sseReader parses a text/event-stream body one event at a time.
type sseReader struct{ r *bufio.Reader }

func (s *sseReader) next() (event, data string, err error) {
	for {
		line, err := s.r.ReadString('\n')
		if err != nil {
			return "", "", err
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if event != "" || data != "" {
				return event, data, nil
			}
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		}
	}
}

// The SSE contract: progress frames with strictly increasing seq
// (coalesced to the latest under backlog), then exactly one done event
// with the terminal status, then a clean EOF.
func TestSSEStream(t *testing.T) {
	s, hs := newTestServer(t, Options{Workers: 1})
	step, release := scripted(t, s, []exec.ProgressFrame{
		{Done: 1, Total: 3}, {Done: 2, Total: 3}, {Done: 3, Total: 3},
	})

	_, body, _ := submit(t, hs, quickSpec())
	id := body["id"].(string)

	resp, err := http.Get(hs.URL + "/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q, want text/event-stream", ct)
	}
	sse := &sseReader{r: bufio.NewReader(resp.Body)}

	// First frame replays on connect (it was emitted at run start,
	// possibly before the stream attached).
	ev, data, err := sse.next()
	if err != nil {
		t.Fatal(err)
	}
	var prog Progress
	if err := json.Unmarshal([]byte(data), &prog); err != nil {
		t.Fatalf("bad progress payload %q: %v", data, err)
	}
	if ev != "progress" || prog.Done != 1 || prog.Total != 3 {
		t.Fatalf("first event %s %+v, want progress Done=1/3", ev, prog)
	}
	lastSeq := prog.Seq

	// Release the remaining frames and read until the latest (Done=3)
	// arrives; intermediate frames may coalesce away, but seq must
	// only ever increase.
	step()
	for prog.Done != 3 {
		ev, data, err = sse.next()
		if err != nil {
			t.Fatal(err)
		}
		if ev != "progress" {
			t.Fatalf("event %q before the final frame", ev)
		}
		if err := json.Unmarshal([]byte(data), &prog); err != nil {
			t.Fatal(err)
		}
		if prog.Seq <= lastSeq {
			t.Fatalf("seq not strictly increasing: %d after %d", prog.Seq, lastSeq)
		}
		lastSeq = prog.Seq
	}

	// Terminal: one done event carrying the final status, then EOF —
	// the server closes the stream, not the client.
	release()
	ev, data, err = sse.next()
	if err != nil {
		t.Fatal(err)
	}
	if ev != "done" {
		t.Fatalf("event after terminal = %q, want done", ev)
	}
	var st JobStatus
	if err := json.Unmarshal([]byte(data), &st); err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || st.ID != id {
		t.Fatalf("done payload %+v", st)
	}
	if _, _, err := sse.next(); err != io.EOF {
		t.Fatalf("after done: err = %v, want clean EOF", err)
	}
}

// A client connecting after the job is terminal gets just the done
// event.
func TestSSEAfterTerminal(t *testing.T) {
	s, hs := newTestServer(t, Options{Workers: 1})
	step, release := scripted(t, s, []exec.ProgressFrame{{Done: 1, Total: 1}})
	_, body, _ := submit(t, hs, quickSpec())
	id := body["id"].(string)
	step()
	release()
	if code, _, _ := fetchResult(t, hs, id); code != http.StatusOK {
		t.Fatal("job did not finish")
	}

	resp, err := http.Get(hs.URL + "/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sse := &sseReader{r: bufio.NewReader(resp.Body)}
	ev, _, err := sse.next()
	if err != nil || ev != "done" {
		t.Fatalf("first event on a terminal job = %q (%v), want done", ev, err)
	}
	if _, _, err := sse.next(); err != io.EOF {
		t.Fatalf("want clean EOF, got %v", err)
	}
}

// ?wait=1&seq=N long-polls for the next progress frame; plain ?wait=1
// still means terminal-only.
func TestStatusLongPollSeq(t *testing.T) {
	s, hs := newTestServer(t, Options{Workers: 1})
	_, release := scripted(t, s, []exec.ProgressFrame{{Done: 1, Total: 2}, {Done: 2, Total: 2}})
	_, body, _ := submit(t, hs, quickSpec())
	id := body["id"].(string)

	// seq=0 unblocks on the first frame, while the job still runs.
	resp, err := http.Get(hs.URL + "/jobs/" + id + "?wait=1&seq=0")
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if st.State.Terminal() {
		t.Fatalf("seq=0 poll returned a terminal state %s — it waited for the end, not the frame", st.State)
	}
	if st.Progress == nil || st.Progress.Seq < 1 || st.Progress.Done != 1 {
		t.Fatalf("seq=0 poll without the frame: %+v", st.Progress)
	}

	// A malformed seq is a client error.
	resp, err = http.Get(hs.URL + "/jobs/" + id + "?wait=1&seq=banana")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("seq=banana → %d, want 400", resp.StatusCode)
	}

	// Plain ?wait=1 blocks to terminal even though frames exist.
	done := make(chan JobStatus, 1)
	go func() {
		resp, err := http.Get(hs.URL + "/jobs/" + id + "?wait=1")
		if err != nil {
			done <- JobStatus{}
			return
		}
		var st JobStatus
		json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		done <- st
	}()
	release()
	if st := <-done; st.State != StateDone {
		t.Fatalf("?wait=1 returned state %s, want done", st.State)
	}
}

// /metricz serves a parseable Prometheus exposition whose counters
// agree with /statz, and /statz carries the new uptime and per-state
// occupancy fields.
func TestMetriczAndStatz(t *testing.T) {
	s, hs := newTestServer(t, Options{Workers: 1})
	step, release := scripted(t, s, []exec.ProgressFrame{{Done: 1, Total: 1}})
	spec := quickSpec()
	_, b1, _ := submit(t, hs, spec)
	step()
	release()
	if code, _, _ := fetchResult(t, hs, b1["id"].(string)); code != http.StatusOK {
		t.Fatal("fresh job failed")
	}
	_, b2, _ := submit(t, hs, spec) // content-addressed hit
	if code, _, _ := fetchResult(t, hs, b2["id"].(string)); code != http.StatusOK {
		t.Fatal("cached job failed")
	}

	resp, err := http.Get(hs.URL + "/metricz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type %q lacks the exposition version", ct)
	}
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"streamd_jobs_accepted 2",
		"streamd_jobs_done 2",
		"streamd_jobs_by_state_done 2",
		"streamd_cache_hits 1",
		"streamd_cache_misses 1",
		"# TYPE streamd_queue_wait_ms histogram",
		`streamd_run_ms_bucket{le="+Inf"}`,
		"streamd_run_ms_p95",
		"streamd_uptime_sec",
		"streamd_queue_depth 0",
		// The self-observation plane rides the same scrape: build
		// identity, Go runtime telemetry and the SLO burn gauges.
		"streamd_build_info{",
		"go_goroutines ",
		"go_heap_inuse_bytes ",
		"# TYPE go_gc_pause_us histogram",
		"slo_run_latency_burn_5m ",
		"slo_availability_sli_1h ",
		"slo_healthy 1",
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("/metricz missing %q", want)
		}
	}

	// A Prometheus scraper rejects the whole exposition if two metric
	// families share a name (PromName is lossy: dotted registry names
	// can flatten onto each other), so every # TYPE line must be
	// unique. This is the regression guard for the per-state gauges
	// vs terminal counters collision (streamd.jobs.done vs
	// streamd.jobs_done → streamd_jobs_done).
	families := make(map[string]string)
	for _, line := range strings.Split(string(text), "\n") {
		if !strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 4 {
			t.Errorf("malformed TYPE line %q", line)
			continue
		}
		name, kind := fields[2], fields[3]
		if prev, dup := families[name]; dup {
			t.Errorf("duplicate metric family %q (%s and %s)", name, prev, kind)
		}
		families[name] = kind
	}

	resp, err = http.Get(hs.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	var stats Stats
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.UptimeSec <= 0 {
		t.Errorf("uptime_sec = %v, want > 0", stats.UptimeSec)
	}
	if stats.JobsByState["done"] != 2 {
		t.Errorf("jobs_by_state %v, want done:2", stats.JobsByState)
	}
	if stats.CacheHits != 1 || stats.CacheMisses != 1 {
		t.Errorf("cache stats %d/%d, want 1 hit 1 miss", stats.CacheHits, stats.CacheMisses)
	}
	if stats.BuildInfo["goversion"] == "" {
		t.Errorf("statz build_info missing goversion: %v", stats.BuildInfo)
	}
}
