package wq

import (
	"strings"
	"testing"

	"streamgpp/internal/fault"
	"streamgpp/internal/sim"
)

// TestConcurrentScrubDiagnoseUnderFaults drives one queue from two
// simulated contexts — a producer enqueuing a dependency chain under
// injected dropped dependence-clears, and a consumer draining both
// queues while running the Scrub/Diagnose watchdog path whenever
// progress stalls. Simulated threads are real goroutines serialised by
// the engine's channel handoffs, so under -race this test checks the
// happens-before edges that make the queue's "no Go-level locking"
// design sound; scripts/check.sh runs this package in its race section.
func TestConcurrentScrubDiagnoseUnderFaults(t *testing.T) {
	const n = 400

	fcfg := fault.Config{Seed: 42}
	fcfg.Rate[fault.DroppedDepClear] = 0.3

	q := New(16)
	q.Fault = fault.New(fcfg)

	var (
		completed  int
		enqRetries int
		staleSeen  bool
	)

	// Producer: enqueue a three-kind chain where every task depends on
	// its predecessor, plus a two-back edge every fourth task — enough
	// fan-in that a dropped clear reliably wedges a waiter. ErrFull (the
	// queue's admission backpressure) is handled the way the executors
	// do: idle a little and retry.
	producer := func(c *sim.CPU) {
		for id := 0; id < n; id++ {
			kind := [...]Kind{Gather, KernelRun, Scatter}[id%3]
			tk := Task{ID: id, Name: "t", Kind: kind, Run: func(*sim.CPU) {}}
			if id > 0 {
				tk.Deps = append(tk.Deps, id-1)
			}
			if id%4 == 0 && id > 1 {
				tk.Deps = append(tk.Deps, id-2)
			}
			for q.Enqueue(tk) == ErrFull {
				enqRetries++
				c.Idle(20)
			}
			c.Idle(2)
		}
	}

	// Consumer: drain both queues. When neither queue has a ready task
	// (either genuinely empty or wedged on a stale bit), run the
	// watchdog path — Diagnose then Scrub — exactly as the executors'
	// progress watchdog does.
	consumer := func(c *sim.CPU) {
		for completed < n {
			ran := false
			for _, qid := range []QueueID{MemQueue, ComputeQueue} {
				if slot, tk, ok := q.NextReady(qid); ok {
					tk.Run(c)
					c.Idle(5)
					q.Complete(slot)
					completed++
					ran = true
				}
			}
			if !ran {
				diag := q.Diagnose()
				if strings.Contains(diag, "stale") {
					staleSeen = true
				}
				q.Scrub()
				c.Idle(10)
			}
		}
	}

	m := sim.MustNew(sim.PentiumD8300())
	m.Run(producer, consumer)

	if completed != n {
		t.Fatalf("completed %d of %d tasks", completed, n)
	}
	if q.InFlight() != 0 {
		t.Fatalf("%d tasks still in flight after drain", q.InFlight())
	}
	if q.Completed() != n {
		t.Fatalf("queue counted %d completions, want %d", q.Completed(), n)
	}
	if q.DroppedClears() == 0 {
		t.Fatal("fault injection never dropped a dependence clear (rate 0.3 over 400 completions)")
	}
	if q.Scrubbed() == 0 {
		t.Fatal("Scrub never recovered a stale bit despite dropped clears")
	}
	if !staleSeen {
		t.Error("Diagnose never reported the stale-bit hint while wedged")
	}

	// The final diagnosis of a drained queue reports counts only — no
	// blocked tasks.
	diag := q.Diagnose()
	if strings.Contains(diag, "blocked") {
		t.Errorf("drained queue still reports blocked tasks:\n%s", diag)
	}
	t.Logf("enqueue retries %d, dropped clears %d, scrubbed %d",
		enqRetries, q.DroppedClears(), q.Scrubbed())
}
