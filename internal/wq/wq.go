// Package wq implements the paper's distributed work queue (§III-B.1,
// Fig. 7): two bounded queues — one holding bulk memory tasks
// (gathers/scatters), one holding compute tasks (kernels) — whose
// entries carry their outstanding dependencies as bit-vectors over the
// in-flight slots. The control thread enqueues tasks in schedule order;
// the memory and compute threads dequeue the oldest task whose
// dependency vector is clear, so execution proceeds out of order within
// each queue exactly as the Fig. 7 snapshot shows.
//
// The queue is deliberately lock-free in the trivial sense: it is only
// ever touched by simulated threads, which the sim engine serialises in
// virtual time, so no Go-level synchronisation is needed (and the cheap
// or/and bit-vector operations mirror the paper's implementation).
package wq

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"streamgpp/internal/bitvec"
	"streamgpp/internal/fault"
	"streamgpp/internal/obs"
	"streamgpp/internal/sim"
)

// Kind classifies a task.
type Kind uint8

// Task kinds, as in Fig. 7's G/K/S labels.
const (
	Gather Kind = iota
	KernelRun
	Scatter
)

// String returns the Fig. 7 letter for the kind.
func (k Kind) String() string { return [...]string{"G", "K", "S"}[k] }

// QueueID selects one of the two queues.
type QueueID uint8

// The two queues of the distributed work queue.
const (
	MemQueue QueueID = iota
	ComputeQueue
)

// Queue returns which queue the kind belongs to.
func (k Kind) Queue() QueueID {
	if k == KernelRun {
		return ComputeQueue
	}
	return MemQueue
}

// Task is one unit of work. IDs must be unique and enqueued in
// strictly increasing order; Deps may only reference earlier IDs.
type Task struct {
	ID   int
	Name string
	Kind Kind
	// Phase and Strip attribute the task to its position in the
	// compiled schedule, for tracing (see exec.TraceEvent).
	Phase int
	Strip int
	Deps  []int
	Run   func(c *sim.CPU)
}

// DefaultCapacity bounds in-flight tasks so dependence bit-vectors stay
// small — 64, the paper's choice.
const DefaultCapacity = 64

// ErrFull reports that every slot is in use; the control thread should
// wait for completions.
var ErrFull = errors.New("wq: queue full")

type slotState uint8

const (
	slotFree slotState = iota
	slotPending
	slotRunning
	slotDone // completed but not yet freed (transient)
)

type slot struct {
	state slotState
	task  Task
	deps  bitvec.Vec
	seq   uint64 // enqueue order, for oldest-first dequeue

	// depID[b] records which task ID the set bit b of deps stands for.
	// Slot indices are reused, so a dependence bit alone cannot be
	// audited after the fact; the ID lets Scrub prove a bit stale
	// (its task completed but the clear was lost) and lets Blocked
	// name the unresolved dependencies of a wedged schedule.
	depID []int
}

// DWQ is the distributed work queue.
type DWQ struct {
	slots []slot
	byID  map[int]int // in-flight task ID → slot index

	// free marks unoccupied slots; pending[qid] marks slots holding a
	// not-yet-claimed task of that queue. Both mirror the slot states
	// so the hot scans (Enqueue's free-slot search, NextReady,
	// Complete's dependence clearing) walk words instead of slots.
	free    bitvec.Vec
	pending [2]bitvec.Vec

	seq          uint64
	maxID        int          // highest ID ever enqueued (-1 initially)
	doneBelow    int          // all IDs < doneBelow have completed
	doneAbove    map[int]bool // completed IDs ≥ doneBelow
	inflight     int
	totalDone    uint64
	maxOccupancy int

	// Fault, when non-nil, drives the queue's fault hooks: a
	// transient enqueue failure (fault.EnqueueFull) and a lost
	// dependence-clear on completion (fault.DroppedDepClear). The
	// executors attach the machine's injector here.
	Fault *fault.Injector

	droppedClears uint64 // completions whose dependence clear was lost
	scrubbed      uint64 // stale dependence bits recovered by Scrub

	// Obs, when non-nil, receives wq.* metrics: a depth histogram
	// sampled at every enqueue and completion, and task counters by
	// kind. The executors attach the machine's registry here.
	Obs *obs.Registry

	// Instrument handles resolved from Obs, cached so the per-task hot
	// path skips the registry's name lookups. Rebuilt whenever Obs
	// differs from obsReg (the registry they were resolved from).
	obsReg    *obs.Registry
	obsDepth  *obs.Histogram
	obsMaxOcc *obs.Gauge
	obsEnq    [3]*obs.Counter // by Kind
	obsDone   [3]*obs.Counter // by Kind
}

// refreshObs re-resolves the cached instrument handles after Obs
// changed. Kept out of line so the hot-path check inlines.
func (q *DWQ) refreshObs() {
	q.obsReg = q.Obs
	if q.Obs == nil {
		q.obsDepth, q.obsMaxOcc = nil, nil
		q.obsEnq, q.obsDone = [3]*obs.Counter{}, [3]*obs.Counter{}
		return
	}
	q.obsDepth = q.Obs.Histogram("wq.depth")
	q.obsMaxOcc = q.Obs.Gauge("wq.max_occupancy")
	for k := Gather; k <= Scatter; k++ {
		q.obsEnq[k] = q.Obs.Counter("wq.enqueued." + k.String())
		q.obsDone[k] = q.Obs.Counter("wq.completed." + k.String())
	}
}

// New returns an empty queue with the given slot capacity.
func New(capacity int) *DWQ {
	if capacity <= 0 {
		panic(fmt.Sprintf("wq: capacity %d", capacity))
	}
	q := &DWQ{
		slots:     make([]slot, capacity),
		byID:      make(map[int]int),
		free:      bitvec.New(capacity),
		pending:   [2]bitvec.Vec{bitvec.New(capacity), bitvec.New(capacity)},
		maxID:     -1,
		doneAbove: map[int]bool{},
	}
	for i := range q.slots {
		q.slots[i].deps = bitvec.New(capacity)
		q.slots[i].depID = make([]int, capacity)
		q.free.Set(i)
	}
	return q
}

// Capacity returns the slot count.
func (q *DWQ) Capacity() int { return len(q.slots) }

// InFlight returns the number of occupied slots.
func (q *DWQ) InFlight() int { return q.inflight }

// Completed returns the number of tasks completed so far.
func (q *DWQ) Completed() uint64 { return q.totalDone }

// MaxOccupancy returns the high-water mark of occupied slots.
func (q *DWQ) MaxOccupancy() int { return q.maxOccupancy }

// isDone reports whether the task ID has completed.
func (q *DWQ) isDone(id int) bool {
	return id < q.doneBelow || q.doneAbove[id]
}

// Enqueue inserts a task, translating its dependencies into the slot
// bit-vector. Dependencies on already-completed tasks are dropped.
// Returns ErrFull when no slot is free.
func (q *DWQ) Enqueue(t Task) error {
	if t.ID <= q.maxID {
		return fmt.Errorf("wq: task %d enqueued after %d — IDs must be strictly increasing", t.ID, q.maxID)
	}
	if t.Run == nil {
		return fmt.Errorf("wq: task %d (%s) has no body", t.ID, t.Name)
	}
	if q.Fault != nil && q.Fault.Roll(fault.EnqueueFull, 0) {
		// A transient reservation failure: indistinguishable from a
		// genuinely full queue, so the control thread's ordinary
		// backpressure path (wait, retry) is the recovery.
		q.Fault.Annotate("wq.enqueue:" + t.Name)
		return ErrFull
	}
	free := q.free.NextSet(0)
	if free < 0 {
		return ErrFull
	}
	s := &q.slots[free]
	s.deps.Reset()
	for _, d := range t.Deps {
		if d >= t.ID {
			return fmt.Errorf("wq: task %d depends forward on %d", t.ID, d)
		}
		if q.isDone(d) {
			continue
		}
		si, ok := q.byID[d]
		if !ok {
			return fmt.Errorf("wq: task %d depends on %d which was never enqueued", t.ID, d)
		}
		s.deps.Set(si)
		s.depID[si] = d
	}
	s.state = slotPending
	s.task = t
	q.free.Clear(free)
	q.pending[t.Kind.Queue()].Set(free)
	q.seq++
	s.seq = q.seq
	q.byID[t.ID] = free
	q.maxID = t.ID
	q.inflight++
	if q.inflight > q.maxOccupancy {
		q.maxOccupancy = q.inflight
	}
	if q.Obs != nil {
		if q.Obs != q.obsReg {
			q.refreshObs()
		}
		q.obsDepth.Observe(float64(q.inflight))
		q.obsEnq[t.Kind].Inc()
		q.obsMaxOcc.Set(float64(q.maxOccupancy))
	}
	return nil
}

// NextReady claims the oldest pending task in the given queue whose
// dependencies have all completed, marking it running. ok is false when
// no task is ready.
func (q *DWQ) NextReady(qid QueueID) (slotIdx int, t Task, ok bool) {
	best := -1
	for i := q.pending[qid].NextSet(0); i >= 0; i = q.pending[qid].NextSet(i + 1) {
		s := &q.slots[i]
		if s.deps.Any() {
			continue
		}
		if best < 0 || s.seq < q.slots[best].seq {
			best = i
		}
	}
	if best < 0 {
		return 0, Task{}, false
	}
	q.slots[best].state = slotRunning
	q.pending[qid].Clear(best)
	return best, q.slots[best].task, true
}

// Complete marks the claimed slot's task done, clears its bit in every
// waiting slot's dependence vector and frees the slot.
func (q *DWQ) Complete(slotIdx int) {
	if slotIdx < 0 || slotIdx >= len(q.slots) {
		panic(fmt.Sprintf("wq: Complete(%d) out of range", slotIdx))
	}
	s := &q.slots[slotIdx]
	if s.state != slotRunning {
		panic(fmt.Sprintf("wq: Complete on slot %d in state %d", slotIdx, s.state))
	}
	id := s.task.ID
	if q.Fault != nil && q.Fault.Roll(fault.DroppedDepClear, 0) {
		// The completing task's dependence-clear update is lost:
		// waiters keep their (now stale) bit and look blocked until
		// Scrub audits them against the completion watermark. The
		// slot is still freed and the watermark still advances — it
		// is only the broadcast to the waiting slots that is dropped.
		q.Fault.Annotate("wq.complete:" + s.task.Name)
		q.droppedClears++
	} else {
		for _, pv := range q.pending {
			for i := pv.NextSet(0); i >= 0; i = pv.NextSet(i + 1) {
				q.slots[i].deps.Clear(slotIdx)
			}
		}
	}
	kind := s.task.Kind
	delete(q.byID, id)
	s.state = slotFree
	s.task = Task{}
	q.free.Set(slotIdx)
	q.inflight--
	q.totalDone++
	if q.Obs != nil {
		if q.Obs != q.obsReg {
			q.refreshObs()
		}
		q.obsDepth.Observe(float64(q.inflight))
		q.obsDone[kind].Inc()
	}

	// Advance the completion watermark.
	q.doneAbove[id] = true
	for q.doneAbove[q.doneBelow] {
		delete(q.doneAbove, q.doneBelow)
		q.doneBelow++
	}
}

// LiveDeps returns the dependency task IDs still gating the in-flight
// task — the subset of its declared Deps that had not completed when it
// was enqueued, read back from the slot's dependence bit-vector and the
// per-bit ID provenance. Called right after Enqueue it is exact; later
// calls see only the bits that remain set. The critical-path profiler
// records this at admission time as the task's true gating edges
// (dependencies on already-completed tasks never constrain the
// schedule). Returns nil when the ID is not in flight.
func (q *DWQ) LiveDeps(id int) []int {
	si, ok := q.byID[id]
	if !ok {
		return nil
	}
	s := &q.slots[si]
	var out []int
	for b := s.deps.NextSet(0); b >= 0; b = s.deps.NextSet(b + 1) {
		out = append(out, s.depID[b])
	}
	sort.Ints(out)
	return out
}

// PendingIn counts tasks waiting (not running) in the given queue.
func (q *DWQ) PendingIn(qid QueueID) int {
	return q.pending[qid].Count()
}

// ReadyIn counts pending tasks in the queue whose dependencies are
// clear.
func (q *DWQ) ReadyIn(qid QueueID) int {
	n := 0
	for i := q.pending[qid].NextSet(0); i >= 0; i = q.pending[qid].NextSet(i + 1) {
		if q.slots[i].deps.None() {
			n++
		}
	}
	return n
}

// Scrub audits every pending slot's dependence vector against the
// completion watermark, clearing bits whose recorded task ID has in
// fact completed (a dependence-clear that was lost). It returns the
// number of stale bits recovered. Scrub never clears a live
// dependence: a bit is only removed when its recorded task is proven
// done, so recovery can only advance readiness, never reorder it. The
// executors call it from their progress watchdog.
func (q *DWQ) Scrub() int {
	n := 0
	for qi := range q.pending {
		pv := &q.pending[qi]
		for i := pv.NextSet(0); i >= 0; i = pv.NextSet(i + 1) {
			s := &q.slots[i]
			for b := s.deps.NextSet(0); b >= 0; b = s.deps.NextSet(b + 1) {
				if q.isDone(s.depID[b]) {
					s.deps.Clear(b)
					n++
				}
			}
		}
	}
	if n > 0 {
		q.scrubbed += uint64(n)
		if q.Obs != nil {
			q.Obs.Counter("wq.scrubbed_deps").Add(uint64(n))
		}
	}
	return n
}

// DroppedClears returns how many completions lost their dependence
// clear (only non-zero under fault injection).
func (q *DWQ) DroppedClears() uint64 { return q.droppedClears }

// Scrubbed returns how many stale dependence bits Scrub has recovered.
func (q *DWQ) Scrubbed() uint64 { return q.scrubbed }

// BlockedTask describes one pending task that cannot run yet and which
// task IDs it is still waiting on.
type BlockedTask struct {
	ID        int
	Name      string
	Kind      Kind
	WaitingOn []int // unresolved dependency task IDs, ascending
}

// Blocked returns every pending task whose dependence vector is
// non-empty, with the task IDs it is waiting on, oldest first — the
// structured deadlock diagnosis a progress watchdog reports.
func (q *DWQ) Blocked() []BlockedTask {
	var out []BlockedTask
	for qi := range q.pending {
		pv := &q.pending[qi]
		for i := pv.NextSet(0); i >= 0; i = pv.NextSet(i + 1) {
			s := &q.slots[i]
			if s.deps.None() {
				continue
			}
			bt := BlockedTask{ID: s.task.ID, Name: s.task.Name, Kind: s.task.Kind}
			for b := s.deps.NextSet(0); b >= 0; b = s.deps.NextSet(b + 1) {
				bt.WaitingOn = append(bt.WaitingOn, s.depID[b])
			}
			sort.Ints(bt.WaitingOn)
			out = append(out, bt)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Diagnose renders the queue's progress state for a watchdog report:
// completion counts, per-queue pending/ready depth, and each blocked
// task with its unresolved dependencies.
func (q *DWQ) Diagnose() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "wq: %d done, %d in flight; mem %d pending/%d ready, compute %d pending/%d ready",
		q.totalDone, q.inflight,
		q.PendingIn(MemQueue), q.ReadyIn(MemQueue),
		q.PendingIn(ComputeQueue), q.ReadyIn(ComputeQueue))
	if q.droppedClears > 0 || q.scrubbed > 0 {
		fmt.Fprintf(&sb, "; %d dep-clears dropped, %d bits scrubbed", q.droppedClears, q.scrubbed)
	}
	for _, bt := range q.Blocked() {
		done := ""
		for _, d := range bt.WaitingOn {
			if q.isDone(d) {
				done = " (some deps completed but unclear — stale bits, run Scrub)"
				break
			}
		}
		fmt.Fprintf(&sb, "\n  task %d %s%s blocked on %v%s", bt.ID, bt.Kind, bt.Name, bt.WaitingOn, done)
	}
	return sb.String()
}

// Snapshot renders the queue contents in Fig. 7 style: per queue, the
// tasks from oldest to newest with markers for head (last enqueued),
// tail (running) and tail_depend (oldest not yet executed).
func (q *DWQ) Snapshot() string {
	var sb strings.Builder
	for _, qid := range []QueueID{MemQueue, ComputeQueue} {
		name := "memory"
		if qid == ComputeQueue {
			name = "compute"
		}
		type ent struct {
			seq  uint64
			text string
		}
		var ents []ent
		for i := range q.slots {
			s := &q.slots[i]
			if s.state == slotFree || s.task.Kind.Queue() != qid {
				continue
			}
			marker := ""
			switch {
			case s.state == slotRunning:
				marker = "*" // tail: currently executing
			case s.deps.Any():
				marker = "!" // blocked (candidate for tail_depend)
			}
			ents = append(ents, ent{s.seq, fmt.Sprintf("%s%s%s", s.task.Kind, s.task.Name, marker)})
		}
		for i := 1; i < len(ents); i++ {
			for j := i; j > 0 && ents[j].seq < ents[j-1].seq; j-- {
				ents[j], ents[j-1] = ents[j-1], ents[j]
			}
		}
		fmt.Fprintf(&sb, "%s queue:", name)
		for _, e := range ents {
			fmt.Fprintf(&sb, " %s", e.text)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
