package wq

import (
	"math/rand"
	"strings"
	"testing"

	"streamgpp/internal/sim"
)

func nop(*sim.CPU) {}

func task(id int, kind Kind, deps ...int) Task {
	return Task{ID: id, Name: "t", Kind: kind, Deps: deps, Run: nop}
}

func TestKindQueues(t *testing.T) {
	if Gather.Queue() != MemQueue || Scatter.Queue() != MemQueue || KernelRun.Queue() != ComputeQueue {
		t.Fatal("kind→queue mapping wrong")
	}
	if Gather.String() != "G" || KernelRun.String() != "K" || Scatter.String() != "S" {
		t.Fatal("kind letters wrong")
	}
}

func TestEnqueueDequeueComplete(t *testing.T) {
	q := New(8)
	mustEnq(t, q, task(0, Gather))
	mustEnq(t, q, task(1, KernelRun, 0))
	mustEnq(t, q, task(2, Scatter, 1))

	if _, _, ok := q.NextReady(ComputeQueue); ok {
		t.Fatal("kernel ready before its gather completed")
	}
	slot, tk, ok := q.NextReady(MemQueue)
	if !ok || tk.ID != 0 {
		t.Fatalf("want gather 0, got %+v ok=%v", tk, ok)
	}
	// The scatter (dep on 1) must not be ready even though it is in the
	// memory queue.
	if _, _, ok := q.NextReady(MemQueue); ok {
		t.Fatal("scatter ready before kernel")
	}
	q.Complete(slot)

	slot, tk, ok = q.NextReady(ComputeQueue)
	if !ok || tk.ID != 1 {
		t.Fatalf("kernel not ready after gather: %+v ok=%v", tk, ok)
	}
	q.Complete(slot)

	slot, tk, ok = q.NextReady(MemQueue)
	if !ok || tk.ID != 2 {
		t.Fatalf("scatter not ready: %+v ok=%v", tk, ok)
	}
	q.Complete(slot)
	if q.InFlight() != 0 || q.Completed() != 3 {
		t.Fatalf("final state inflight=%d done=%d", q.InFlight(), q.Completed())
	}
}

func mustEnq(t *testing.T, q *DWQ, tk Task) {
	t.Helper()
	if err := q.Enqueue(tk); err != nil {
		t.Fatalf("enqueue %d: %v", tk.ID, err)
	}
}

func TestErrFull(t *testing.T) {
	q := New(2)
	mustEnq(t, q, task(0, Gather))
	mustEnq(t, q, task(1, Gather))
	if err := q.Enqueue(task(2, Gather)); err != ErrFull {
		t.Fatalf("want ErrFull, got %v", err)
	}
	slot, _, _ := q.NextReady(MemQueue)
	q.Complete(slot)
	mustEnq(t, q, task(2, Gather))
}

func TestOutOfOrderWithinQueue(t *testing.T) {
	// Fig. 7's scenario: an old scatter blocked on a kernel must not
	// stop newer gathers from executing.
	q := New(8)
	mustEnq(t, q, task(0, KernelRun))  // K2_0, slow
	mustEnq(t, q, task(1, Scatter, 0)) // Sy_0 blocked on it
	mustEnq(t, q, task(2, Gather))     // Ga_1
	mustEnq(t, q, task(3, Gather))     // Gb_1

	_, tk, ok := q.NextReady(MemQueue)
	if !ok || tk.ID != 2 {
		t.Fatalf("want gather 2 to skip blocked scatter, got %+v", tk)
	}
	_, tk, ok = q.NextReady(MemQueue)
	if !ok || tk.ID != 3 {
		t.Fatalf("want gather 3 next, got %+v", tk)
	}
}

func TestOldestFirstAmongReady(t *testing.T) {
	q := New(8)
	mustEnq(t, q, task(0, Gather))
	mustEnq(t, q, task(1, Gather))
	_, tk, _ := q.NextReady(MemQueue)
	if tk.ID != 0 {
		t.Fatalf("want oldest ready first, got %d", tk.ID)
	}
}

func TestDependencyOnCompletedDropped(t *testing.T) {
	q := New(4)
	mustEnq(t, q, task(0, Gather))
	slot, _, _ := q.NextReady(MemQueue)
	q.Complete(slot)
	// Task 1 depends on the already-completed 0: ready immediately.
	mustEnq(t, q, task(1, KernelRun, 0))
	if _, _, ok := q.NextReady(ComputeQueue); !ok {
		t.Fatal("dep on completed task not dropped")
	}
}

func TestEnqueueErrors(t *testing.T) {
	q := New(4)
	mustEnq(t, q, task(5, Gather))
	if err := q.Enqueue(task(5, Gather)); err == nil {
		t.Fatal("duplicate ID accepted")
	}
	if err := q.Enqueue(task(3, Gather)); err == nil {
		t.Fatal("decreasing ID accepted")
	}
	if err := q.Enqueue(task(6, Gather, 7)); err == nil {
		t.Fatal("forward dep accepted")
	}
	if err := q.Enqueue(task(7, Gather, 2)); err == nil {
		t.Fatal("dep on never-enqueued task accepted")
	}
	if err := q.Enqueue(Task{ID: 8, Kind: Gather}); err == nil {
		t.Fatal("nil Run accepted")
	}
}

func TestCompleteErrors(t *testing.T) {
	q := New(4)
	for _, idx := range []int{-1, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Complete(%d) did not panic", idx)
				}
			}()
			q.Complete(idx)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Complete on free slot did not panic")
			}
		}()
		q.Complete(0)
	}()
}

func TestCountsAndSnapshot(t *testing.T) {
	q := New(8)
	mustEnq(t, q, task(0, Gather))
	mustEnq(t, q, task(1, KernelRun, 0))
	mustEnq(t, q, task(2, Scatter, 1))
	if q.PendingIn(MemQueue) != 2 || q.PendingIn(ComputeQueue) != 1 {
		t.Fatalf("pending %d/%d", q.PendingIn(MemQueue), q.PendingIn(ComputeQueue))
	}
	if q.ReadyIn(MemQueue) != 1 || q.ReadyIn(ComputeQueue) != 0 {
		t.Fatalf("ready %d/%d", q.ReadyIn(MemQueue), q.ReadyIn(ComputeQueue))
	}
	q.NextReady(MemQueue) // mark running
	snap := q.Snapshot()
	if !strings.Contains(snap, "memory queue:") || !strings.Contains(snap, "compute queue:") {
		t.Fatalf("snapshot missing queues:\n%s", snap)
	}
	if !strings.Contains(snap, "*") || !strings.Contains(snap, "!") {
		t.Fatalf("snapshot missing markers:\n%s", snap)
	}
	if q.MaxOccupancy() != 3 {
		t.Fatalf("max occupancy %d", q.MaxOccupancy())
	}
}

func TestNewPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

// Property: random DAG schedules always respect dependencies and drain
// completely through a bounded queue.
func TestRandomScheduleRespectsDeps(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		const n = 300
		type spec struct {
			kind Kind
			deps []int
		}
		specs := make([]spec, n)
		for i := range specs {
			specs[i].kind = Kind(rng.Intn(3))
			for d := 0; d < rng.Intn(3); d++ {
				lo := i - 20 // keep deps near so the window can drain
				if lo < 0 {
					lo = 0
				}
				if i > lo {
					specs[i].deps = append(specs[i].deps, lo+rng.Intn(i-lo))
				}
			}
		}

		q := New(32)
		done := make([]bool, n)
		next := 0
		completed := 0
		for completed < n {
			// Fill.
			for next < n {
				if err := q.Enqueue(Task{ID: next, Kind: specs[next].kind, Deps: specs[next].deps, Run: nop}); err != nil {
					if err == ErrFull {
						break
					}
					t.Fatalf("seed %d enqueue %d: %v", seed, next, err)
				}
				next++
			}
			// Drain one task from either queue.
			progressed := false
			for _, qid := range []QueueID{MemQueue, ComputeQueue} {
				slot, tk, ok := q.NextReady(qid)
				if !ok {
					continue
				}
				for _, d := range tk.Deps {
					if !done[d] {
						t.Fatalf("seed %d: task %d ran before dep %d", seed, tk.ID, d)
					}
				}
				done[tk.ID] = true
				q.Complete(slot)
				completed++
				progressed = true
			}
			if !progressed && completed < n {
				t.Fatalf("seed %d: stuck at %d/%d", seed, completed, n)
			}
		}
	}
}
