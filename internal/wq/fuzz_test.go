package wq

import (
	"testing"

	"streamgpp/internal/fault"
)

// FuzzDependencyOrder builds a random dependency DAG from the fuzz
// input and drives it through a small queue under a fuzzed interleaving
// of enqueues, claims and completions — optionally with dropped
// dependence-clears injected and recovered by Scrub. The invariant
// under test is the queue's one guarantee: no task is ever claimed
// before every task it depends on has completed, and the whole DAG
// drains.
func FuzzDependencyOrder(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	f.Add([]byte{255, 0, 255, 0, 255, 0, 255, 0})
	f.Add([]byte{7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		// Byte 0 arms the dropped-clear fault; the rest seed the DAG.
		inject := data[0]%2 == 1
		const nTasks, capacity = 24, 4
		q := New(capacity)
		if inject {
			cfg := fault.Config{Seed: uint64(data[1]) + 1}
			cfg.Rate[fault.DroppedDepClear] = 0.5
			q.Fault = fault.New(cfg)
		}

		// Task i depends on a byte-selected subset of the previous
		// tasks (window bounded so the DAG fits the queue's capacity
		// backpressure without wedging the generator).
		deps := make([][]int, nTasks)
		for i := 1; i < nTasks; i++ {
			mask := data[1+i%(len(data)-1)]
			for b := 0; b < 3; b++ {
				if mask&(1<<b) != 0 {
					d := i - 1 - b
					if d >= 0 {
						deps[i] = append(deps[i], d)
					}
				}
			}
		}
		kinds := []Kind{Gather, KernelRun, Scatter}

		completed := map[int]bool{}
		type claimed struct {
			slot int
			id   int
		}
		var running []claimed
		next := 0
		pick := 0
		byteAt := func() byte {
			pick++
			return data[pick%len(data)]
		}

		claim := func(qid QueueID) bool {
			slot, tk, ok := q.NextReady(qid)
			if !ok {
				return false
			}
			for _, d := range deps[tk.ID] {
				if !completed[d] {
					t.Fatalf("task %d claimed before dep %d completed", tk.ID, d)
				}
			}
			running = append(running, claimed{slot, tk.ID})
			return true
		}
		finish := func(i int) {
			q.Complete(running[i].slot)
			completed[running[i].id] = true
			running = append(running[:i], running[i+1:]...)
		}

		stuck := 0
		for len(completed) < nTasks {
			progressed := false
			// Fuzzed choice: enqueue, claim from a queue, or complete.
			switch byteAt() % 4 {
			case 0:
				if next < nTasks {
					err := q.Enqueue(Task{ID: next, Name: "f", Kind: kinds[next%3], Deps: deps[next], Run: nop})
					if err == nil {
						next++
						progressed = true
					} else if err != ErrFull {
						t.Fatalf("enqueue %d: %v", next, err)
					}
				}
			case 1:
				progressed = claim(MemQueue)
			case 2:
				progressed = claim(ComputeQueue)
			case 3:
				if len(running) > 0 {
					finish(int(byteAt()) % len(running))
					progressed = true
				}
			}
			if progressed {
				stuck = 0
				continue
			}
			stuck++
			if stuck < 16 {
				continue
			}
			// Deterministic drain: the fuzzed interleaving starved; make
			// forward progress directly. With injection on, stale bits
			// may be the blocker — exactly what Scrub exists for.
			if q.Scrub() > 0 {
				stuck = 0
				continue
			}
			if len(running) > 0 {
				finish(0)
				stuck = 0
				continue
			}
			if claim(MemQueue) || claim(ComputeQueue) {
				stuck = 0
				continue
			}
			if next < nTasks && q.Enqueue(Task{ID: next, Name: "f", Kind: kinds[next%3], Deps: deps[next], Run: nop}) == nil {
				next++
				stuck = 0
				continue
			}
			t.Fatalf("wedged with %d/%d completed, %d in flight:\n%s",
				len(completed), nTasks, q.InFlight(), q.Diagnose())
		}
		if q.InFlight() != 0 {
			t.Fatalf("drained DAG left %d in flight", q.InFlight())
		}
	})
}
