package wq

import (
	"strings"
	"testing"

	"streamgpp/internal/fault"
)

// always returns an injector that fires kind k exactly max times.
func always(k fault.Kind, max uint64) *fault.Injector {
	cfg := fault.Config{Seed: 1}
	cfg.Rate[k] = 1
	cfg.MaxPerKind[k] = max
	return fault.New(cfg)
}

// An injected enqueue failure is indistinguishable from a full queue:
// the caller sees ErrFull, and a bare retry succeeds once the fault
// budget is spent.
func TestInjectedEnqueueFull(t *testing.T) {
	q := New(8)
	q.Fault = always(fault.EnqueueFull, 1)
	if err := q.Enqueue(task(0, Gather)); err != ErrFull {
		t.Fatalf("want injected ErrFull, got %v", err)
	}
	if q.InFlight() != 0 {
		t.Fatal("failed enqueue must not occupy a slot")
	}
	mustEnq(t, q, task(0, Gather)) // budget spent: the retry lands
	if q.Fault.Injected(fault.EnqueueFull) != 1 {
		t.Fatalf("injected count %d, want 1", q.Fault.Injected(fault.EnqueueFull))
	}
}

// A dropped dependence-clear leaves the waiter blocked on a completed
// task; Scrub proves the bit stale from the recorded ID and the
// completion watermark, and the waiter becomes ready.
func TestDroppedDepClearRecoveredByScrub(t *testing.T) {
	q := New(8)
	q.Fault = always(fault.DroppedDepClear, 1)
	mustEnq(t, q, task(0, Gather))
	mustEnq(t, q, task(1, KernelRun, 0))

	slot, tk, ok := q.NextReady(MemQueue)
	if !ok || tk.ID != 0 {
		t.Fatalf("gather not ready: %+v", tk)
	}
	q.Complete(slot) // the clear broadcast is dropped here

	if _, _, ok := q.NextReady(ComputeQueue); ok {
		t.Fatal("kernel ran despite the (stale) dependence bit")
	}
	if q.DroppedClears() != 1 {
		t.Fatalf("dropped clears %d, want 1", q.DroppedClears())
	}

	// The diagnosis must name the wedged task and hint at staleness.
	diag := q.Diagnose()
	if !strings.Contains(diag, "blocked on [0]") || !strings.Contains(diag, "stale") {
		t.Fatalf("diagnosis missing blocked task or stale hint:\n%s", diag)
	}

	if n := q.Scrub(); n != 1 {
		t.Fatalf("Scrub recovered %d bits, want 1", n)
	}
	if _, tk, ok := q.NextReady(ComputeQueue); !ok || tk.ID != 1 {
		t.Fatal("kernel still blocked after Scrub")
	}
	if q.Scrubbed() != 1 {
		t.Fatalf("scrubbed count %d, want 1", q.Scrubbed())
	}
}

// Scrub must never clear a live dependence: with the producer still
// running, the waiter stays blocked.
func TestScrubKeepsLiveDeps(t *testing.T) {
	q := New(8)
	mustEnq(t, q, task(0, Gather))
	mustEnq(t, q, task(1, KernelRun, 0))
	q.NextReady(MemQueue) // claim the gather but do not complete it
	if n := q.Scrub(); n != 0 {
		t.Fatalf("Scrub cleared %d live bits", n)
	}
	if _, _, ok := q.NextReady(ComputeQueue); ok {
		t.Fatal("kernel ran before its dependence completed")
	}
}

// Blocked reports each wedged task with its unresolved dependency IDs.
func TestBlockedReport(t *testing.T) {
	q := New(8)
	mustEnq(t, q, task(0, Gather))
	mustEnq(t, q, task(1, Gather))
	mustEnq(t, q, task(2, KernelRun, 0, 1))
	bl := q.Blocked()
	if len(bl) != 1 || bl[0].ID != 2 {
		t.Fatalf("blocked = %+v, want task 2 only", bl)
	}
	if len(bl[0].WaitingOn) != 2 || bl[0].WaitingOn[0] != 0 || bl[0].WaitingOn[1] != 1 {
		t.Fatalf("waiting on %v, want [0 1]", bl[0].WaitingOn)
	}
}
