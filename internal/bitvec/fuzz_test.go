package bitvec

import (
	"testing"
)

// FuzzVec drives a Vec and a map-based oracle through the same random
// operation sequence and checks every observable (Test, Count, Any,
// NextSet iteration) agrees after each step. The op stream is decoded
// from the fuzz input two bytes at a time: opcode, then bit index
// reduced mod the capacity.
func FuzzVec(f *testing.F) {
	f.Add([]byte{0, 3, 1, 3, 0, 70, 2, 0, 4, 0})
	f.Add([]byte{0, 0, 0, 63, 0, 64, 1, 64, 3, 0})
	f.Fuzz(func(t *testing.T, ops []byte) {
		const n = 130 // spans three words, last one partial
		v := New(n)
		oracle := map[int]bool{}
		for k := 0; k+1 < len(ops); k += 2 {
			i := int(ops[k+1]) % n
			switch ops[k] % 5 {
			case 0:
				v.Set(i)
				oracle[i] = true
			case 1:
				v.Clear(i)
				delete(oracle, i)
			case 2:
				v.Reset()
				oracle = map[int]bool{}
			case 3:
				if got := v.Test(i); got != oracle[i] {
					t.Fatalf("Test(%d) = %v, oracle %v", i, got, oracle[i])
				}
			case 4:
				c := v.Clone()
				c.Set(i)
				if !oracle[i] && v.Test(i) {
					t.Fatalf("Clone shares storage: Set(%d) on clone leaked", i)
				}
			}
			if v.Count() != len(oracle) {
				t.Fatalf("Count = %d, oracle %d", v.Count(), len(oracle))
			}
			if v.Any() != (len(oracle) > 0) {
				t.Fatalf("Any = %v, oracle has %d bits", v.Any(), len(oracle))
			}
			// NextSet must enumerate exactly the oracle's set, in order.
			seen := 0
			prev := -1
			for i := v.NextSet(0); i >= 0; i = v.NextSet(i + 1) {
				if i <= prev {
					t.Fatalf("NextSet not ascending: %d after %d", i, prev)
				}
				if !oracle[i] {
					t.Fatalf("NextSet yielded %d, not in oracle", i)
				}
				prev = i
				seen++
			}
			if seen != len(oracle) {
				t.Fatalf("NextSet enumerated %d bits, oracle has %d", seen, len(oracle))
			}
		}
	})
}
