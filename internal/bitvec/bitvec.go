// Package bitvec implements small fixed-capacity bit vectors.
//
// The distributed work queue (internal/wq) encodes the dependencies of
// every in-flight task as a bit vector, exactly as described in §III-B.1
// of the paper: "Each element of the queue maintains a bit-vector
// indicating which tasks it depends on ... setting and clearing
// dependence information could be performed rapidly (using simple or
// and and instructions)". The queue bounds the number of in-flight
// tasks (64 in the paper) so a vector fits in one or two machine words.
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Vec is a bit vector with a fixed capacity chosen at construction.
// The zero value is unusable; use New. Vec values with the same
// capacity may be combined with And/Or.
type Vec struct {
	n     int
	words []uint64
}

// New returns an empty vector able to hold bits [0, n).
func New(n int) Vec {
	if n < 0 {
		panic(fmt.Sprintf("bitvec: negative capacity %d", n))
	}
	return Vec{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// Len returns the capacity of the vector in bits.
func (v Vec) Len() int { return v.n }

func (v Vec) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.n))
	}
}

// Set sets bit i.
func (v Vec) Set(i int) {
	v.check(i)
	v.words[i/wordBits] |= 1 << (i % wordBits)
}

// Clear clears bit i.
func (v Vec) Clear(i int) {
	v.check(i)
	v.words[i/wordBits] &^= 1 << (i % wordBits)
}

// Test reports whether bit i is set.
func (v Vec) Test(i int) bool {
	v.check(i)
	return v.words[i/wordBits]&(1<<(i%wordBits)) != 0
}

// Any reports whether any bit is set.
func (v Vec) Any() bool {
	for _, w := range v.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// None reports whether no bit is set.
func (v Vec) None() bool { return !v.Any() }

// Count returns the number of set bits.
func (v Vec) Count() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// AndNot clears every bit of v that is set in o (v &^= o).
// It panics if the capacities differ.
func (v Vec) AndNot(o Vec) {
	v.same(o)
	for i, w := range o.words {
		v.words[i] &^= w
	}
}

// Or sets every bit of v that is set in o (v |= o).
// It panics if the capacities differ.
func (v Vec) Or(o Vec) {
	v.same(o)
	for i, w := range o.words {
		v.words[i] |= w
	}
}

// Intersects reports whether v and o share a set bit.
func (v Vec) Intersects(o Vec) bool {
	v.same(o)
	for i, w := range o.words {
		if v.words[i]&w != 0 {
			return true
		}
	}
	return false
}

func (v Vec) same(o Vec) {
	if v.n != o.n {
		panic(fmt.Sprintf("bitvec: capacity mismatch %d vs %d", v.n, o.n))
	}
}

// Reset clears all bits.
func (v Vec) Reset() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// Clone returns an independent copy of v.
func (v Vec) Clone() Vec {
	w := New(v.n)
	copy(w.words, v.words)
	return w
}

// NextSet returns the index of the first set bit at or after i, or -1
// if there is none. It skips empty words with one comparison each, so
// iterating a sparse vector costs O(words), not O(bits):
//
//	for i := v.NextSet(0); i >= 0; i = v.NextSet(i + 1) { ... }
func (v Vec) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= v.n {
		return -1
	}
	wi := i / wordBits
	w := v.words[wi] >> (i % wordBits)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(v.words); wi++ {
		if v.words[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(v.words[wi])
		}
	}
	return -1
}

// ForEach calls f for every set bit, in ascending order.
func (v Vec) ForEach(f func(i int)) {
	for wi, w := range v.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			f(wi*wordBits + b)
			w &^= 1 << b
		}
	}
}

// String renders the set bits as "{1, 5, 63}".
func (v Vec) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	first := true
	v.ForEach(func(i int) {
		if !first {
			sb.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&sb, "%d", i)
	})
	sb.WriteByte('}')
	return sb.String()
}
