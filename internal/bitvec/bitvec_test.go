package bitvec

import (
	"testing"
	"testing/quick"
)

func TestSetTestClear(t *testing.T) {
	v := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 128, 129} {
		if v.Test(i) {
			t.Fatalf("bit %d set in fresh vector", i)
		}
		v.Set(i)
		if !v.Test(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
		v.Clear(i)
		if v.Test(i) {
			t.Fatalf("bit %d set after Clear", i)
		}
	}
}

func TestOutOfRangePanics(t *testing.T) {
	v := New(10)
	for _, i := range []int{-1, 10, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Test(%d) did not panic", i)
				}
			}()
			v.Test(i)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("New(-1) did not panic")
			}
		}()
		New(-1)
	}()
}

func TestAnyNoneCount(t *testing.T) {
	v := New(64)
	if v.Any() || !v.None() || v.Count() != 0 {
		t.Fatal("fresh vector not empty")
	}
	v.Set(3)
	v.Set(63)
	if !v.Any() || v.None() || v.Count() != 2 {
		t.Fatalf("Any=%v None=%v Count=%d", v.Any(), v.None(), v.Count())
	}
}

func TestAndNotOr(t *testing.T) {
	a, b := New(70), New(70)
	a.Set(1)
	a.Set(65)
	b.Set(65)
	b.Set(2)
	a.AndNot(b)
	if a.Test(65) || !a.Test(1) {
		t.Fatal("AndNot wrong")
	}
	a.Or(b)
	if !a.Test(2) || !a.Test(65) || !a.Test(1) {
		t.Fatal("Or wrong")
	}
}

func TestIntersects(t *testing.T) {
	a, b := New(70), New(70)
	a.Set(69)
	if a.Intersects(b) {
		t.Fatal("empty intersection reported")
	}
	b.Set(69)
	if !a.Intersects(b) {
		t.Fatal("intersection missed")
	}
}

func TestMismatchedCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on capacity mismatch")
		}
	}()
	New(10).Or(New(20))
}

func TestForEachOrder(t *testing.T) {
	v := New(130)
	want := []int{0, 7, 64, 129}
	for _, i := range want {
		v.Set(i)
	}
	var got []int
	v.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	v := New(10)
	v.Set(5)
	w := v.Clone()
	w.Clear(5)
	if !v.Test(5) {
		t.Fatal("Clone shares storage")
	}
}

func TestResetAndString(t *testing.T) {
	v := New(10)
	v.Set(1)
	v.Set(5)
	if s := v.String(); s != "{1, 5}" {
		t.Fatalf("String = %q", s)
	}
	v.Reset()
	if v.Any() {
		t.Fatal("Reset left bits")
	}
	if s := v.String(); s != "{}" {
		t.Fatalf("empty String = %q", s)
	}
}

func TestZeroCapacity(t *testing.T) {
	v := New(0)
	if v.Any() || v.Count() != 0 || v.Len() != 0 {
		t.Fatal("zero-capacity vector misbehaves")
	}
}

// nextSetRef is the bit-by-bit reference implementation of NextSet.
func nextSetRef(v Vec, i int) int {
	if i < 0 {
		i = 0
	}
	for ; i < v.Len(); i++ {
		if v.Test(i) {
			return i
		}
	}
	return -1
}

func TestNextSet(t *testing.T) {
	v := New(130)
	for _, i := range []int{0, 7, 63, 64, 65, 129} {
		v.Set(i)
	}
	for _, tc := range []struct{ from, want int }{
		{-5, 0}, {0, 0}, {1, 7}, {7, 7}, {8, 63}, {63, 63}, {64, 64},
		{65, 65}, {66, 129}, {129, 129}, {130, -1}, {1000, -1},
	} {
		if got := v.NextSet(tc.from); got != tc.want {
			t.Errorf("NextSet(%d) = %d, want %d", tc.from, got, tc.want)
		}
	}
	if got := New(64).NextSet(0); got != -1 {
		t.Errorf("empty NextSet(0) = %d, want -1", got)
	}
	if got := New(0).NextSet(0); got != -1 {
		t.Errorf("zero-capacity NextSet(0) = %d, want -1", got)
	}
}

// Property: NextSet agrees with the bit-by-bit reference at every
// starting index, so iterating with it visits exactly the set bits.
func TestNextSetMatchesReference(t *testing.T) {
	f := func(idx []uint8, starts []uint8) bool {
		v := New(200)
		for _, i := range idx {
			if int(i) < v.Len() {
				v.Set(int(i))
			}
		}
		for s := -1; s <= v.Len()+1; s++ {
			if v.NextSet(s) != nextSetRef(v, s) {
				return false
			}
		}
		var got []int
		for i := v.NextSet(0); i >= 0; i = v.NextSet(i + 1) {
			got = append(got, i)
		}
		var want []int
		v.ForEach(func(i int) { want = append(want, i) })
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Count equals the number of distinct set indices.
func TestCountMatchesDistinctSets(t *testing.T) {
	f := func(idx []uint8) bool {
		v := New(256)
		distinct := map[int]bool{}
		for _, i := range idx {
			v.Set(int(i))
			distinct[int(i)] = true
		}
		return v.Count() == len(distinct)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: AndNot(x, x) empties any vector.
func TestSelfAndNotEmpties(t *testing.T) {
	f := func(idx []uint8) bool {
		v := New(256)
		for _, i := range idx {
			v.Set(int(i))
		}
		v.AndNot(v)
		return v.None()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
