package cdp

import (
	"testing"

	"streamgpp/internal/exec"
)

func TestParamsValidate(t *testing.T) {
	if err := (Params{Dims: []int{64}, Steps: 1}).Validate(); err == nil {
		t.Error("1D accepted")
	}
	if err := (Params{Dims: []int{4, 4, 4, 4}, Steps: 1}).Validate(); err == nil {
		t.Error("4D accepted")
	}
	if err := (Params{Dims: []int{4, 1}, Steps: 1}).Validate(); err == nil {
		t.Error("degenerate dimension accepted")
	}
	if err := (Params{Dims: []int{8, 8}, Steps: 0}).Validate(); err == nil {
		t.Error("Steps=0 accepted")
	}
}

func TestPaperConfigShapes(t *testing.T) {
	for _, tc := range []struct {
		p     Params
		cells int
		name  string
	}{
		{Grid4n4096, 4096, "4n-4096"},
		{Grid4n8192, 8192, "4n-8192"},
		{Grid6n4096, 4096, "6n-4096"},
		{Grid6n8192, 8192, "6n-8192"},
	} {
		if tc.p.Cells() != tc.cells || tc.p.Name() != tc.name {
			t.Errorf("%v: cells=%d name=%s", tc.p.Dims, tc.p.Cells(), tc.p.Name())
		}
	}
}

func TestGridConnectivity(t *testing.T) {
	inst, err := NewInstance(Params{Dims: []int{4, 3, 2}, Steps: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Interior faces: (4-1)*3*2 + 4*(3-1)*2 + 4*3*(2-1) = 18+16+12 = 46.
	if inst.F != 46 {
		t.Fatalf("faces %d, want 46", inst.F)
	}
	// Neighbour maps stay in range and are symmetric-ish: lo of hi == self
	// away from boundaries.
	for c := 0; c < inst.N; c++ {
		for i := 0; i < 2*inst.D; i++ {
			nb := int(inst.Nbr[i].Idx[c])
			if nb < 0 || nb >= inst.N {
				t.Fatalf("cell %d neighbour %d out of range", c, nb)
			}
		}
	}
	for f := 0; f < inst.F; f++ {
		l, r := int(inst.LeftIdx.Idx[f]), int(inst.RightIdx.Idx[f])
		if l == r {
			t.Fatalf("face %d degenerate", f)
		}
		if l < 0 || l >= inst.N || r < 0 || r >= inst.N {
			t.Fatalf("face %d out of range", f)
		}
	}
}

func TestStreamMatchesRegularSmall(t *testing.T) {
	for _, dims := range [][]int{{16, 12}, {8, 6, 5}} {
		res, err := Run(Params{Dims: dims, Steps: 2}, exec.Defaults())
		if err != nil {
			t.Fatal(err)
		}
		if res.Regular.Cycles == 0 || res.Stream.Cycles == 0 {
			t.Fatal("zero cycles")
		}
	}
}

func TestPhiEvolvesAndMaxResPositive(t *testing.T) {
	inst, err := NewInstance(Params{Dims: []int{16, 16}, Steps: 1})
	if err != nil {
		t.Fatal(err)
	}
	before := inst.Phi.CloneData()
	inst.RunRegular(exec.Defaults())
	if inst.MaxRes <= 0 {
		t.Fatal("max residual not positive")
	}
	changed := false
	for i := range before {
		if before[i] != inst.Phi.Data[i] {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("phi did not evolve")
	}
}

func TestPaperBandAndTrend(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	// Fig. 11(b): 0.94×–1.27×, improving with more neighbours and more
	// elements.
	results := map[string]float64{}
	for _, p := range []Params{Grid4n4096, Grid4n8192, Grid6n4096, Grid6n8192} {
		res, err := Run(p, exec.Defaults())
		if err != nil {
			t.Fatal(err)
		}
		results[p.Name()] = res.Speedup
		t.Logf("%s: %.3f", p.Name(), res.Speedup)
	}
	if results["4n-4096"] < 0.80 || results["4n-4096"] > 1.15 {
		t.Errorf("4n-4096 speedup %.2f, paper ~0.94", results["4n-4096"])
	}
	if results["6n-8192"] <= results["4n-4096"] {
		t.Errorf("6n-8192 (%.2f) should beat 4n-4096 (%.2f)", results["6n-8192"], results["4n-4096"])
	}
	if results["4n-8192"] < results["4n-4096"]-0.05 {
		t.Errorf("larger mesh should not reduce the 4n speedup: %.2f -> %.2f", results["4n-4096"], results["4n-8192"])
	}
}
