// Package cdp implements streamCDP (§IV-C.2, Fig. 10(b)): a transport
// advective-equation solver with second-order WENO-style face
// reconstruction, used for large eddy simulations. The paper evaluates
// a square grid (4 neighbours) and a cubic mesh (6 neighbours) at 4096
// and 8192 elements.
//
// The kernel structure follows Fig. 10(b):
//
//	ComputeCell     (cells) — per-cell preprocessing
//	ComputePhiGrad  (cells) — gradients from neighbour phis
//	ComputeFace     (faces) — upwind WENO flux with a data-dependent
//	                          conditional; residuals scatter-add back
//	FindMaxAndUpdate (cells) — max residual, state update
//
// ComputeCell→ComputePhiGrad exhibit the only direct producer-consumer
// locality; everything else crosses phases through arrays with indexed
// access, which the paper calls out as what made streamCDP challenging.
package cdp

import (
	"fmt"
	"math"

	"streamgpp/internal/compiler"
	"streamgpp/internal/exec"
	"streamgpp/internal/sdf"
	"streamgpp/internal/sim"
	"streamgpp/internal/svm"
)

// Params selects a grid.
type Params struct {
	// Dims is the grid shape: 2 entries = square grid (4 neighbours),
	// 3 entries = cubic mesh (6 neighbours).
	Dims []int
	// Steps is the number of time steps.
	Steps int
}

// The paper's four configurations (Fig. 11(b)).
var (
	Grid4n4096 = Params{Dims: []int{64, 64}, Steps: 3}
	Grid4n8192 = Params{Dims: []int{128, 64}, Steps: 3}
	Grid6n4096 = Params{Dims: []int{16, 16, 16}, Steps: 3}
	Grid6n8192 = Params{Dims: []int{32, 16, 16}, Steps: 3}
)

// Name returns the Fig. 11(b) label.
func (p Params) Name() string {
	n := 1
	for _, d := range p.Dims {
		n *= d
	}
	return fmt.Sprintf("%dn-%d", 2*len(p.Dims), n)
}

// Validate reports invalid parameters.
func (p Params) Validate() error {
	if len(p.Dims) != 2 && len(p.Dims) != 3 {
		return fmt.Errorf("cdp: Dims must have 2 or 3 entries, got %d", len(p.Dims))
	}
	for _, d := range p.Dims {
		if d < 2 {
			return fmt.Errorf("cdp: dimension %d too small", d)
		}
	}
	if p.Steps <= 0 {
		return fmt.Errorf("cdp: Steps must be positive")
	}
	return nil
}

// Cells returns the element count.
func (p Params) Cells() int {
	n := 1
	for _, d := range p.Dims {
		n *= d
	}
	return n
}

const dt = 5e-3

// Cost model (abstract ops).
const (
	cellOps    = 20 // ComputeCell per cell
	gradOpsDim = 18 // ComputePhiGrad per dimension
	faceOpsUp  = 46 // ComputeFace, upwind branch
	faceOpsDn  = 52 // ComputeFace, downwind branch (extra limiter work)
	updateOps  = 24 // FindMaxAndUpdate per cell
)

// Instance is one materialised problem.
type Instance struct {
	P Params
	M *sim.Machine
	D int // dimensions
	N int // cells
	F int // interior faces

	Phi      *svm.Array // cell scalar (1 field)
	CellData *svm.Array // vol + per-dimension WENO weights (1+2D fields)
	Grad     *svm.Array // phi gradients (D fields)
	Res      *svm.Array // residual (1 field)
	CellVal  *svm.Array // the regular version's ComputeCell intermediate

	FaceGeom *svm.Array        // vel, area, axis (3 fields per face)
	LeftIdx  *svm.IndexArray   // face → left cell
	RightIdx *svm.IndexArray   // face → right cell
	Nbr      []*svm.IndexArray // 2D arrays cell → neighbour (lo/hi per dim)

	// MaxRes is the FindMaxAndUpdate reduction of the last run step.
	MaxRes float64
}

// NewInstance builds the grid.
func NewInstance(p Params) (*Instance, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m := sim.MustNew(sim.PentiumD8300())
	d := len(p.Dims)
	n := p.Cells()

	cdFields := make([]svm.Field, 1+2*d)
	cdFields[0] = svm.F("vol", 8)
	for i := 0; i < 2*d; i++ {
		cdFields[1+i] = svm.F(fmt.Sprintf("w%d", i), 8)
	}
	gFields := make([]svm.Field, d)
	for i := range gFields {
		gFields[i] = svm.F(fmt.Sprintf("g%d", i), 8)
	}

	inst := &Instance{
		P: p, M: m, D: d, N: n,
		Phi:      svm.NewArray(m, "phi", svm.Layout("phi", svm.F("v", 8)), n),
		CellData: svm.NewArray(m, "celldata", svm.Layout("cd", cdFields...), n),
		Grad:     svm.NewArray(m, "grad", svm.Layout("grad", gFields...), n),
		Res:      svm.NewArray(m, "res", svm.Layout("res", svm.F("v", 8)), n),
		CellVal:  svm.NewArray(m, "cellval", svm.Layout("cv", svm.F("v", 8)), n),
	}

	// Strides for linearising the grid.
	stride := make([]int, d)
	stride[d-1] = 1
	for i := d - 2; i >= 0; i-- {
		stride[i] = stride[i+1] * p.Dims[i+1]
	}
	coord := func(c, dim int) int { return (c / stride[dim]) % p.Dims[dim] }

	// Neighbour maps (lo/hi per dimension; boundaries map to self).
	inst.Nbr = make([]*svm.IndexArray, 2*d)
	for i := range inst.Nbr {
		inst.Nbr[i] = svm.NewIndexArray(m, fmt.Sprintf("nbr%d", i), n)
	}
	for c := 0; c < n; c++ {
		for dim := 0; dim < d; dim++ {
			lo, hi := c, c
			if coord(c, dim) > 0 {
				lo = c - stride[dim]
			}
			if coord(c, dim) < p.Dims[dim]-1 {
				hi = c + stride[dim]
			}
			inst.Nbr[2*dim].Idx[c] = int32(lo)
			inst.Nbr[2*dim+1].Idx[c] = int32(hi)
		}
	}

	// Interior faces per dimension.
	var left, right []int32
	var vel, axis []float64
	for dim := 0; dim < d; dim++ {
		for c := 0; c < n; c++ {
			if coord(c, dim) == p.Dims[dim]-1 {
				continue
			}
			left = append(left, int32(c))
			right = append(right, int32(c+stride[dim]))
			x := float64(coord(c, dim)) / float64(p.Dims[dim])
			vel = append(vel, math.Sin(2*math.Pi*x+float64(dim))+0.25)
			axis = append(axis, float64(dim))
		}
	}
	inst.F = len(left)
	inst.FaceGeom = svm.NewArray(m, "face", svm.Layout("face", svm.F("vel", 8), svm.F("area", 8), svm.F("axis", 8)), inst.F)
	inst.LeftIdx = svm.NewIndexArray(m, "left", inst.F)
	inst.RightIdx = svm.NewIndexArray(m, "right", inst.F)
	for f := 0; f < inst.F; f++ {
		inst.LeftIdx.Idx[f] = left[f]
		inst.RightIdx.Idx[f] = right[f]
		inst.FaceGeom.Set(f, 0, vel[f])
		inst.FaceGeom.Set(f, 1, 1)
		inst.FaceGeom.Set(f, 2, axis[f])
	}

	// Initial condition: a smooth blob plus per-cell data.
	for c := 0; c < n; c++ {
		r := 0.0
		for dim := 0; dim < d; dim++ {
			x := float64(coord(c, dim))/float64(p.Dims[dim]) - 0.5
			r += x * x
		}
		inst.Phi.Set(c, 0, math.Exp(-20*r))
		inst.CellData.Set(c, 0, 1) // vol
		for i := 0; i < 2*d; i++ {
			inst.CellData.Set(c, 1+i, 0.5+0.1*float64((c+i)%5)/5)
		}
	}
	return inst, nil
}

// Shared per-element maths (identical in both versions).

func computeCellVal(phi, vol float64) float64 {
	return phi * (1 + 0.05*vol) / (1 + 0.02*phi*phi)
}

func computeGrad(cv float64, wLo, wHi, phiLo, phiHi, phi float64) float64 {
	g := 0.5 * (wHi*(phiHi-phi) + wLo*(phi-phiLo))
	return g * (1 + 0.01*cv)
}

// computeFaceFlux is the data-dependent upwind reconstruction: the
// branch (and its cost) depends on the velocity sign.
func computeFaceFlux(v, area, phiL, phiR, gradL, gradR float64) (flux float64, ops int64) {
	beta := (phiR - phiL) * (phiR - phiL)
	w := 1 / (1e-6 + beta)
	if v > 0 {
		phiFace := phiL + 0.5*gradL*w/(1+w)
		return v * phiFace * area, faceOpsUp
	}
	phiFace := phiR - 0.5*gradR*w/(1+w) - 0.01*beta
	return v * phiFace * area, faceOpsDn
}

func updateCell(phi, res, vol float64) (phiNew, absRes float64) {
	return phi - dt*res/vol, math.Abs(res)
}

// RunRegular executes the conventional four-loop formulation.
func (inst *Instance) RunRegular(ecfg exec.Config) exec.Result {
	d, n := inst.D, inst.N

	cellLoop := exec.Loop{
		Name: "ComputeCell", N: n,
		Ops: func(i int) int64 { return cellOps },
		Refs: func(c int, emit func(sim.Addr, int, bool)) {
			emit(inst.Phi.FieldAddr(c, 0), 8, false)
			emit(inst.CellData.FieldAddr(c, 0), 8, false)
			emit(inst.CellVal.FieldAddr(c, 0), 8, true)
		},
		Body: func(c int) {
			inst.CellVal.Set(c, 0, computeCellVal(inst.Phi.At(c, 0), inst.CellData.At(c, 0)))
		},
	}
	gradLoop := exec.Loop{
		Name: "ComputePhiGrad", N: n,
		Ops: func(i int) int64 { return int64(gradOpsDim * d) },
		Refs: func(c int, emit func(sim.Addr, int, bool)) {
			emit(inst.CellVal.FieldAddr(c, 0), 8, false)
			emit(inst.Phi.FieldAddr(c, 0), 8, false)
			emit(inst.CellData.FieldAddr(c, 1), 8*2*d, false)
			for i := 0; i < 2*d; i++ {
				emit(inst.Nbr[i].ElemAddr(c), svm.IndexElemBytes, false)
				emit(inst.Phi.FieldAddr(int(inst.Nbr[i].Idx[c]), 0), 8, false)
			}
			emit(inst.Grad.RecordAddr(c), 8*d, true)
		},
		Body: func(c int) {
			cv := inst.CellVal.At(c, 0)
			phi := inst.Phi.At(c, 0)
			for dim := 0; dim < d; dim++ {
				g := computeGrad(cv,
					inst.CellData.At(c, 1+2*dim), inst.CellData.At(c, 2+2*dim),
					inst.Phi.At(int(inst.Nbr[2*dim].Idx[c]), 0),
					inst.Phi.At(int(inst.Nbr[2*dim+1].Idx[c]), 0), phi)
				inst.Grad.Set(c, dim, g)
			}
		},
	}
	var faceOpsVar int64
	faceLoop := exec.Loop{
		Name: "ComputeFace", N: inst.F,
		Ops: func(f int) int64 { return faceOpsVar },
		Refs: func(f int, emit func(sim.Addr, int, bool)) {
			emit(inst.LeftIdx.ElemAddr(f), svm.IndexElemBytes, false)
			emit(inst.RightIdx.ElemAddr(f), svm.IndexElemBytes, false)
			emit(inst.FaceGeom.RecordAddr(f), 24, false)
			l, r := int(inst.LeftIdx.Idx[f]), int(inst.RightIdx.Idx[f])
			emit(inst.Phi.FieldAddr(l, 0), 8, false)
			emit(inst.Phi.FieldAddr(r, 0), 8, false)
			emit(inst.Grad.RecordAddr(l), 8*d, false)
			emit(inst.Grad.RecordAddr(r), 8*d, false)
			emit(inst.Res.FieldAddr(l, 0), 8, false)
			emit(inst.Res.FieldAddr(l, 0), 8, true)
			emit(inst.Res.FieldAddr(r, 0), 8, false)
			emit(inst.Res.FieldAddr(r, 0), 8, true)
		},
		Body: func(f int) {
			l, r := int(inst.LeftIdx.Idx[f]), int(inst.RightIdx.Idx[f])
			axis := int(inst.FaceGeom.At(f, 2))
			flux, ops := computeFaceFlux(inst.FaceGeom.At(f, 0), inst.FaceGeom.At(f, 1),
				inst.Phi.At(l, 0), inst.Phi.At(r, 0),
				inst.Grad.At(l, axis), inst.Grad.At(r, axis))
			faceOpsVar = ops
			inst.Res.Add(l, 0, -flux)
			inst.Res.Add(r, 0, +flux)
		},
	}
	updateLoop := exec.Loop{
		Name: "FindMaxAndUpdate", N: n,
		Ops: func(i int) int64 { return updateOps },
		Refs: func(c int, emit func(sim.Addr, int, bool)) {
			emit(inst.Res.FieldAddr(c, 0), 8, false)
			emit(inst.Phi.FieldAddr(c, 0), 8, false)
			emit(inst.CellData.FieldAddr(c, 0), 8, false)
			emit(inst.Phi.FieldAddr(c, 0), 8, true)
			emit(inst.Res.FieldAddr(c, 0), 8, true)
		},
		Body: func(c int) {
			phiNew, ar := updateCell(inst.Phi.At(c, 0), inst.Res.At(c, 0), inst.CellData.At(c, 0))
			if ar > inst.MaxRes {
				inst.MaxRes = ar
			}
			inst.Phi.Set(c, 0, phiNew)
			inst.Res.Set(c, 0, 0)
		},
	}

	var total exec.Result
	for s := 0; s < inst.P.Steps; s++ {
		inst.MaxRes = 0
		r := exec.RunRegular(inst.M, ecfg, cellLoop, gradLoop, faceLoop, updateLoop)
		total.Cycles += r.Cycles
		total.Run = r.Run
	}
	return total
}

// Graph builds the streamCDP SDF graph of Fig. 10(b).
func (inst *Instance) Graph() *sdf.Graph {
	d, n := inst.D, inst.N

	computeCell := &svm.Kernel{
		Name: "ComputeCell", OpsPerElem: cellOps,
		Fn: func(ins, outs []*svm.Stream, start, cnt int) int64 {
			phis, cds := ins[0], ins[1]
			cvs := outs[0]
			for i := start; i < start+cnt; i++ {
				cvs.Set(i, 0, computeCellVal(phis.At(i, 0), cds.At(i, 0)))
			}
			return 0
		},
	}
	computePhiGrad := &svm.Kernel{
		Name: "ComputePhiGrad", OpsPerElem: int64(gradOpsDim * d),
		Fn: func(ins, outs []*svm.Stream, start, cnt int) int64 {
			cvs, phis, wts, phiN := ins[0], ins[1], ins[2], ins[3]
			grads := outs[0]
			for i := start; i < start+cnt; i++ {
				cv, phi := cvs.At(i, 0), phis.At(i, 0)
				for dim := 0; dim < d; dim++ {
					g := computeGrad(cv, wts.At(i, 2*dim), wts.At(i, 2*dim+1),
						phiN.At(i, 2*dim), phiN.At(i, 2*dim+1), phi)
					grads.Set(i, dim, g)
				}
			}
			return 0
		},
	}
	computeFace := &svm.Kernel{
		Name: "ComputeFace", OpsPerElem: faceOpsUp,
		Fn: func(ins, outs []*svm.Stream, start, cnt int) int64 {
			phiLR, gradLR, fg := ins[0], ins[1], ins[2]
			fpos, fneg := outs[0], outs[1]
			var total int64
			for i := start; i < start+cnt; i++ {
				axis := int(fg.At(i, 2))
				flux, ops := computeFaceFlux(fg.At(i, 0), fg.At(i, 1),
					phiLR.At(i, 0), phiLR.At(i, 1),
					gradLR.At(i, axis), gradLR.At(i, d+axis))
				total += ops
				fpos.Set(i, 0, -flux)
				fneg.Set(i, 0, +flux)
			}
			return total
		},
	}
	findMaxAndUpdate := &svm.Kernel{
		Name: "FindMaxAndUpdate", OpsPerElem: updateOps,
		Fn: func(ins, outs []*svm.Stream, start, cnt int) int64 {
			ress, phis, vols := ins[0], ins[1], ins[2]
			phiNew, rzero := outs[0], outs[1]
			for i := start; i < start+cnt; i++ {
				pn, ar := updateCell(phis.At(i, 0), ress.At(i, 0), vols.At(i, 0))
				if ar > inst.MaxRes {
					inst.MaxRes = ar
				}
				phiNew.Set(i, 0, pn)
				rzero.Set(i, 0, 0)
			}
			return 0
		},
	}

	g := sdf.New("streamCDP-" + inst.P.Name())

	// Phase 1 (cells): ComputeCell feeds ComputePhiGrad directly — the
	// producer-consumer locality the paper found; the gradients go back
	// to memory because the face phase gathers them by index.
	phis := g.Input(svm.StreamOf("phis", n, inst.Phi.Layout, inst.Phi.Layout.AllFields()), sdf.Bind(inst.Phi))
	vols := g.Input(svm.StreamOf("vols", n, inst.CellData.Layout, inst.CellData.Layout.Select("vol")), sdf.Bind(inst.CellData, "vol"))
	cv := g.AddKernel(computeCell, []*sdf.Edge{phis, vols},
		[]*svm.Stream{svm.NewStream("cvs", n, svm.F("v", 8))})

	wnames := make([]string, 2*d)
	for i := range wnames {
		wnames[i] = fmt.Sprintf("w%d", i)
	}
	wts := g.Input(svm.StreamOf("wts", n, inst.CellData.Layout, inst.CellData.Layout.Select(wnames...)), sdf.Bind(inst.CellData, wnames...))
	phiNFields := make([]svm.Field, 2*d)
	for i := range phiNFields {
		phiNFields[i] = svm.F(fmt.Sprintf("pn%d", i), 8)
	}
	phiN := g.Input(svm.NewStream("phiN", n, phiNFields...), sdf.Bind(inst.Phi).MultiIndexed(inst.Nbr...))
	gFields := make([]svm.Field, d)
	for i := range gFields {
		gFields[i] = svm.F(fmt.Sprintf("g%d", i), 8)
	}
	grad := g.AddKernel(computePhiGrad, []*sdf.Edge{cv[0], phis, wts, phiN},
		[]*svm.Stream{svm.NewStream("grads", n, gFields...)})
	g.Output(grad[0], sdf.Bind(inst.Grad))

	// Phase 2 (faces): multi-index gathers of phi and gradients for
	// both sides, upwind flux, residual scatter-add.
	phiLR := g.Input(svm.NewStream("phiLR", inst.F, svm.F("pl", 8), svm.F("pr", 8)),
		sdf.Bind(inst.Phi).MultiIndexed(inst.LeftIdx, inst.RightIdx))
	gradLRFields := make([]svm.Field, 2*d)
	for i := range gradLRFields {
		gradLRFields[i] = svm.F(fmt.Sprintf("glr%d", i), 8)
	}
	gradLR := g.Input(svm.NewStream("gradLR", inst.F, gradLRFields...),
		sdf.Bind(inst.Grad).MultiIndexed(inst.LeftIdx, inst.RightIdx))
	fg := g.Input(svm.StreamOf("fg", inst.F, inst.FaceGeom.Layout, inst.FaceGeom.Layout.AllFields()), sdf.Bind(inst.FaceGeom))
	flux := g.AddKernel(computeFace, []*sdf.Edge{phiLR, gradLR, fg}, []*svm.Stream{
		svm.NewStream("Fpos", inst.F, svm.F("v", 8)),
		svm.NewStream("Fneg", inst.F, svm.F("v", 8)),
	})
	g.Output(flux[0], sdf.Bind(inst.Res).Indexed(inst.LeftIdx).Accumulate())
	g.Output(flux[1], sdf.Bind(inst.Res).Indexed(inst.RightIdx).Accumulate())

	// Phase 3 (cells): FindMaxAndUpdate.
	ress := g.Input(svm.StreamOf("ress", n, inst.Res.Layout, inst.Res.Layout.AllFields()), sdf.Bind(inst.Res))
	phis2 := g.Input(svm.StreamOf("phis2", n, inst.Phi.Layout, inst.Phi.Layout.AllFields()), sdf.Bind(inst.Phi))
	vols2 := g.Input(svm.StreamOf("vols2", n, inst.CellData.Layout, inst.CellData.Layout.Select("vol")), sdf.Bind(inst.CellData, "vol"))
	upd := g.AddKernel(findMaxAndUpdate, []*sdf.Edge{ress, phis2, vols2}, []*svm.Stream{
		svm.NewStream("phiNew", n, svm.F("v", 8)),
		svm.NewStream("rzero", n, svm.F("v", 8)),
	})
	g.Output(upd[0], sdf.Bind(inst.Phi))
	g.Output(upd[1], sdf.Bind(inst.Res))
	return g
}

// RunStream compiles and runs the stream version.
func (inst *Instance) RunStream(ecfg exec.Config) (exec.Result, error) {
	prog, err := compiler.Compile(inst.Graph(), compiler.DefaultOptions(svm.DefaultSRF(inst.M)))
	if err != nil {
		return exec.Result{}, err
	}
	var total exec.Result
	for s := 0; s < inst.P.Steps; s++ {
		inst.MaxRes = 0
		r, err := exec.RunStream2Ctx(inst.M, prog, ecfg)
		if err != nil {
			return total, err
		}
		total.Cycles += r.Cycles
		total.Run = r.Run
		total.Queue = r.Queue
		for k := range r.KindCycles {
			total.KindCycles[k] += r.KindCycles[k]
		}
	}
	return total, nil
}

// Result is one regular-vs-stream comparison.
type Result struct {
	Params  Params
	Regular exec.Result
	Stream  exec.Result
	Speedup float64
	// Graph is the stream version's dataflow graph, for post-run
	// analysis (advisor calibration against the critical path).
	Graph *sdf.Graph
}

// Run executes both versions on separate machines and verifies the
// final fields and max residuals agree.
func Run(p Params, ecfg exec.Config) (Result, error) {
	reg, err := NewInstance(p)
	if err != nil {
		return Result{}, err
	}
	regRes := reg.RunRegular(ecfg)
	if err := ecfg.Aborted("stage"); err != nil {
		return Result{}, err
	}

	str, err := NewInstance(p)
	if err != nil {
		return Result{}, err
	}
	strRes, err := str.RunStream(ecfg)
	if err != nil {
		return Result{}, err
	}

	for i := range reg.Phi.Data {
		a, b := reg.Phi.Data[i], str.Phi.Data[i]
		scale := math.Max(math.Abs(a), 1)
		if math.Abs(a-b)/scale > 1e-9 {
			return Result{}, fmt.Errorf("cdp %s: phi[%d] differs: %v vs %v", p.Name(), i, a, b)
		}
	}
	if math.Abs(reg.MaxRes-str.MaxRes) > 1e-9*math.Max(reg.MaxRes, 1) {
		return Result{}, fmt.Errorf("cdp %s: max residual differs: %v vs %v", p.Name(), reg.MaxRes, str.MaxRes)
	}
	return Result{Params: p, Regular: regRes, Stream: strRes, Speedup: exec.Speedup(regRes, strRes), Graph: str.Graph()}, nil
}
