package neo

import (
	"math"
	"testing"

	"streamgpp/internal/exec"
)

func TestParamsValidate(t *testing.T) {
	if err := (Params{}).Validate(); err == nil {
		t.Error("zero elements accepted")
	}
	if err := (Params{Elements: 10}).Validate(); err != nil {
		t.Error(err)
	}
}

func TestComputePKIdentity(t *testing.T) {
	// F = I: J = 1, lnJ = 0, P = 0, C⁻¹ = I, DG = 0.
	f := []float64{1, 0, 0, 0, 1, 0, 0, 0, 1}
	var pk, cgt, dg [9]float64
	lnJ := computePK(f, 2.0, 3.0, pk[:], cgt[:], dg[:])
	if lnJ != 0 {
		t.Fatalf("lnJ = %v", lnJ)
	}
	for i := 0; i < 9; i++ {
		if pk[i] != 0 || dg[i] != 0 {
			t.Fatalf("P or DG nonzero at identity: %v %v", pk[i], dg[i])
		}
		want := 0.0
		if i%4 == 0 {
			want = 1
		}
		if math.Abs(cgt[i]-want) > 1e-12 {
			t.Fatalf("C⁻¹[%d] = %v", i, cgt[i])
		}
	}
}

func TestComputePKInverseProperty(t *testing.T) {
	// C⁻¹ must be symmetric positive for a well-conditioned F.
	f := []float64{1.1, 0.02, -0.03, 0.01, 0.95, 0.04, -0.02, 0.03, 1.05}
	var pk, cgt, dg [9]float64
	lnJ := computePK(f, 1.5, 2.5, pk[:], cgt[:], dg[:])
	if math.IsNaN(lnJ) || math.IsInf(lnJ, 0) {
		t.Fatalf("lnJ = %v", lnJ)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if math.Abs(cgt[i*3+j]-cgt[j*3+i]) > 1e-12 {
				t.Fatalf("C⁻¹ not symmetric at (%d,%d)", i, j)
			}
		}
		if cgt[i*3+i] <= 0 {
			t.Fatalf("C⁻¹ diagonal not positive")
		}
	}
}

func TestTangentSymmetricShape(t *testing.T) {
	cgt := []float64{1, 0, 0, 0, 1, 0, 0, 0, 1}
	dg := make([]float64, 9)
	out := make([]float64, 21)
	computeTangent(cgt, dg, 1, 2, 0, out)
	for _, v := range out {
		if math.IsNaN(v) {
			t.Fatal("NaN in tangent")
		}
	}
	// λC⁻¹⊗C⁻¹ + μ' terms at identity: entry (0,0) = λ + μ'.
	if math.Abs(out[0]-(2+2*1)) > 1e-12 {
		t.Fatalf("tangent (0,0) = %v", out[0])
	}
}

func TestStreamMatchesRegular(t *testing.T) {
	res, err := Run(Params{Elements: 5000, Seed: 1}, exec.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if res.Regular.Cycles == 0 || res.Stream.Cycles == 0 {
		t.Fatal("zero cycles")
	}
	if res.SavedBytes != 5000*144 {
		t.Fatalf("SavedBytes %d", res.SavedBytes)
	}
}

func TestSpeedupInPaperBand(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	// Fig. 11(c): 1.21×–1.23× across element counts, driven by
	// producer-consumer locality.
	for _, n := range []int{32768, 65536} {
		res, err := Run(Params{Elements: n, Seed: 2}, exec.Defaults())
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("elements=%d speedup %.3f", n, res.Speedup)
		if res.Speedup < 1.05 || res.Speedup > 1.55 {
			t.Errorf("elements=%d: speedup %.2f, paper band 1.21–1.23", n, res.Speedup)
		}
	}
}

func TestGraphSavesIntermediateWriteback(t *testing.T) {
	inst, err := NewInstance(Params{Elements: 1000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	g := inst.Graph()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// CGT, DG and lnJ streams stay internal: 19 fields × 8 bytes.
	saved := g.SavedWritebackBytes()
	if saved != 1000*19*8 {
		t.Fatalf("saved writeback %d, want %d", saved, 1000*19*8)
	}
}
