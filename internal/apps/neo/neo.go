// Package neo implements the neo-hookean finite-elasticity application
// (§IV-C.3, Fig. 10(c)): per element, material properties and the
// deformation gradient feed ComputePK, which produces the first
// Piola-Kirchhoff stress (written back) plus two intermediate streams —
// the inverse right Cauchy-Green tensor and the displacement gradient,
// 18 values ≈ 144 bytes per element — that ComputeTangent consumes to
// build the constitutive tangent. The intermediates never reach memory
// in the stream version: the paper credits the 1.21–1.23× speedups to
// exactly this producer-consumer locality ("approximately Number of
// elements * 144 bytes" of bandwidth saved).
package neo

import (
	"fmt"
	"math"

	"streamgpp/internal/compiler"
	"streamgpp/internal/exec"
	"streamgpp/internal/sdf"
	"streamgpp/internal/sim"
	"streamgpp/internal/svm"
)

// Params selects a problem size.
type Params struct {
	// Elements is the element count (Fig. 11(c) sweeps this).
	Elements int
	// Seed drives the synthetic deformation field.
	Seed int64
}

// Validate reports invalid parameters.
func (p Params) Validate() error {
	if p.Elements <= 0 {
		return fmt.Errorf("neo: Elements must be positive, got %d", p.Elements)
	}
	return nil
}

// Cost model (abstract ops per element).
const (
	pkOps      = 900  // det, inverse, PK stress, C⁻¹, DG over the element's quadrature points
	tangentOps = 1260 // 21 tangent entries from C⁻¹ and DG
)

// IntermediateBytes is the per-element size of the two streams that
// stay inside the SRF (the paper's 144 bytes).
const IntermediateBytes = 18 * 8

// Instance is one materialised problem on one machine.
type Instance struct {
	P Params
	M *sim.Machine

	// E: per-element input record: deformation gradient F (9) and
	// material constants mu, lambda (2).
	E *svm.Array
	// P9: output PK stress (9 fields).
	P9 *svm.Array
	// Tan: output tangent (21 fields, symmetric 6×6 in Voigt form).
	Tan *svm.Array
	// CGT, DG: the regular version's intermediate arrays (9 fields
	// each); the stream version never touches them.
	CGT, DG *svm.Array
}

func kfieldLayout(name, prefix string, n int) svm.RecordLayout {
	fields := make([]svm.Field, n)
	for i := range fields {
		fields[i] = svm.F(fmt.Sprintf("%s%d", prefix, i), 8)
	}
	return svm.Layout(name, fields...)
}

// NewInstance allocates and initialises the problem.
func NewInstance(p Params) (*Instance, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m := sim.MustNew(sim.PentiumD8300())
	efields := make([]svm.Field, 11)
	for i := 0; i < 9; i++ {
		efields[i] = svm.F(fmt.Sprintf("F%d", i), 8)
	}
	efields[9] = svm.F("mu", 8)
	efields[10] = svm.F("lambda", 8)

	inst := &Instance{
		P: p, M: m,
		E:   svm.NewArray(m, "E", svm.Layout("elem", efields...), p.Elements),
		P9:  svm.NewArray(m, "P", kfieldLayout("pk", "p", 9), p.Elements),
		Tan: svm.NewArray(m, "Tan", kfieldLayout("tan", "t", 21), p.Elements),
		CGT: svm.NewArray(m, "CGT", kfieldLayout("cgt", "c", 9), p.Elements),
		DG:  svm.NewArray(m, "DG", kfieldLayout("dg", "d", 9), p.Elements),
	}
	// Deformation gradients near identity with deterministic
	// perturbations (so J > 0 everywhere), per-element material.
	for e := 0; e < p.Elements; e++ {
		h := uint64(e)*2654435761 + uint64(p.Seed)
		rnd := func() float64 {
			h ^= h << 13
			h ^= h >> 7
			h ^= h << 17
			return float64(h%1000)/1000 - 0.5
		}
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				v := 0.08 * rnd()
				if i == j {
					v += 1
				}
				inst.E.Set(e, i*3+j, v)
			}
		}
		inst.E.Set(e, 9, 1.0+0.5*rnd())  // mu
		inst.E.Set(e, 10, 2.0+0.5*rnd()) // lambda
	}
	return inst, nil
}

// computePK performs the per-element constitutive update: given F, mu,
// lambda it returns PK stress P = mu(F - F⁻ᵀ) + lambda·ln(J)·F⁻ᵀ, the
// inverse right Cauchy-Green tensor C⁻¹ = F⁻¹F⁻ᵀ and the displacement
// gradient DG = F - I.
func computePK(f []float64, mu, lambda float64, pOut, cgtOut, dgOut []float64) (lnJ float64) {
	// det(F)
	det := f[0]*(f[4]*f[8]-f[5]*f[7]) - f[1]*(f[3]*f[8]-f[5]*f[6]) + f[2]*(f[3]*f[7]-f[4]*f[6])
	inv := 1 / det
	// F⁻¹ via adjugate.
	var fi [9]float64
	fi[0] = (f[4]*f[8] - f[5]*f[7]) * inv
	fi[1] = (f[2]*f[7] - f[1]*f[8]) * inv
	fi[2] = (f[1]*f[5] - f[2]*f[4]) * inv
	fi[3] = (f[5]*f[6] - f[3]*f[8]) * inv
	fi[4] = (f[0]*f[8] - f[2]*f[6]) * inv
	fi[5] = (f[2]*f[3] - f[0]*f[5]) * inv
	fi[6] = (f[3]*f[7] - f[4]*f[6]) * inv
	fi[7] = (f[1]*f[6] - f[0]*f[7]) * inv
	fi[8] = (f[0]*f[4] - f[1]*f[3]) * inv
	lnJ = math.Log(det)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			fit := fi[j*3+i] // F⁻ᵀ
			pOut[i*3+j] = mu*(f[i*3+j]-fit) + lambda*lnJ*fit
			// C⁻¹ = F⁻¹ F⁻ᵀ
			cgtOut[i*3+j] = fi[i*3+0]*fi[j*3+0] + fi[i*3+1]*fi[j*3+1] + fi[i*3+2]*fi[j*3+2]
			dgOut[i*3+j] = f[i*3+j]
			if i == j {
				dgOut[i*3+j]--
			}
		}
	}
	return lnJ
}

// voigt maps the symmetric index pairs of the 6×6 tangent.
var voigt = [6][2]int{{0, 0}, {1, 1}, {2, 2}, {0, 1}, {1, 2}, {0, 2}}

// computeTangent builds the 21 upper-triangle entries of the material
// tangent c = λ' C⁻¹⊗C⁻¹ + 2(μ − λ lnJ) C⁻¹⊙C⁻¹, with a displacement-
// gradient correction term.
func computeTangent(cgt, dg []float64, mu, lambda, lnJ float64, out []float64) {
	lp := lambda
	mp := 2 * (mu - lambda*lnJ)
	k := 0
	for a := 0; a < 6; a++ {
		for b := a; b < 6; b++ {
			i, j := voigt[a][0], voigt[a][1]
			l, mm := voigt[b][0], voigt[b][1]
			t := lp*cgt[i*3+j]*cgt[l*3+mm] +
				0.5*mp*(cgt[i*3+l]*cgt[j*3+mm]+cgt[i*3+mm]*cgt[j*3+l]) +
				0.01*dg[i*3+l]*dg[j*3+mm]
			out[k] = t
			k++
		}
	}
}

// RunRegular executes the conventional two-loop formulation: loop 1
// stores the intermediates to the CGT and DG arrays, loop 2 reads them
// back — the memory round trip the stream version avoids.
func (inst *Instance) RunRegular(ecfg exec.Config) exec.Result {
	n := inst.P.Elements
	lnJs := make([]float64, n)
	loop1 := exec.Loop{
		Name: "ComputePK", N: n,
		Ops: func(i int) int64 { return pkOps },
		Refs: func(e int, emit func(sim.Addr, int, bool)) {
			emit(inst.E.RecordAddr(e), 11*8, false)
			emit(inst.P9.RecordAddr(e), 9*8, true)
			emit(inst.CGT.RecordAddr(e), 9*8, true)
			emit(inst.DG.RecordAddr(e), 9*8, true)
		},
		Body: func(e int) {
			var f, pk, cgt, dg [9]float64
			for i := 0; i < 9; i++ {
				f[i] = inst.E.At(e, i)
			}
			lnJs[e] = computePK(f[:], inst.E.At(e, 9), inst.E.At(e, 10), pk[:], cgt[:], dg[:])
			for i := 0; i < 9; i++ {
				inst.P9.Set(e, i, pk[i])
				inst.CGT.Set(e, i, cgt[i])
				inst.DG.Set(e, i, dg[i])
			}
		},
	}
	loop2 := exec.Loop{
		Name: "ComputeTangent", N: n,
		Ops: func(i int) int64 { return tangentOps },
		Refs: func(e int, emit func(sim.Addr, int, bool)) {
			emit(inst.CGT.RecordAddr(e), 9*8, false)
			emit(inst.DG.RecordAddr(e), 9*8, false)
			emit(inst.E.FieldAddr(e, 9), 16, false) // mu, lambda
			emit(inst.Tan.RecordAddr(e), 21*8, true)
		},
		Body: func(e int) {
			var cgt, dg [9]float64
			var tan [21]float64
			for i := 0; i < 9; i++ {
				cgt[i] = inst.CGT.At(e, i)
				dg[i] = inst.DG.At(e, i)
			}
			computeTangent(cgt[:], dg[:], inst.E.At(e, 9), inst.E.At(e, 10), lnJs[e], tan[:])
			for i := 0; i < 21; i++ {
				inst.Tan.Set(e, i, tan[i])
			}
		},
	}
	return exec.RunRegular(inst.M, ecfg, loop1, loop2)
}

// Graph builds the stream program of Fig. 10(c): E is read
// sequentially, ComputePK produces the PK stress (scattered out) plus
// the CGT⁻¹ and DG streams, which ComputeTangent consumes directly —
// they never touch memory.
func (inst *Instance) Graph() *sdf.Graph {
	n := inst.P.Elements
	lnJStream := svm.NewStream("lnJ", n, svm.F("lnJ", 8))

	computePKKernel := &svm.Kernel{
		Name: "ComputePK", OpsPerElem: pkOps,
		Fn: func(ins, outs []*svm.Stream, start, cnt int) int64 {
			es := ins[0]
			pks, cgts, dgs, lnjs := outs[0], outs[1], outs[2], outs[3]
			for i := start; i < start+cnt; i++ {
				var f, pk, cgt, dg [9]float64
				for k := 0; k < 9; k++ {
					f[k] = es.At(i, k)
				}
				lnJ := computePK(f[:], es.At(i, 9), es.At(i, 10), pk[:], cgt[:], dg[:])
				for k := 0; k < 9; k++ {
					pks.Set(i, k, pk[k])
					cgts.Set(i, k, cgt[k])
					dgs.Set(i, k, dg[k])
				}
				lnjs.Set(i, 0, lnJ)
			}
			return 0
		},
	}
	computeTangentKernel := &svm.Kernel{
		Name: "ComputeTangent", OpsPerElem: tangentOps,
		Fn: func(ins, outs []*svm.Stream, start, cnt int) int64 {
			cgts, dgs, lnjs, es := ins[0], ins[1], ins[2], ins[3]
			tans := outs[0]
			for i := start; i < start+cnt; i++ {
				var cgt, dg [9]float64
				var tan [21]float64
				for k := 0; k < 9; k++ {
					cgt[k] = cgts.At(i, k)
					dg[k] = dgs.At(i, k)
				}
				computeTangent(cgt[:], dg[:], es.At(i, 0), es.At(i, 1), lnjs.At(i, 0), tan[:])
				for k := 0; k < 21; k++ {
					tans.Set(i, k, tan[k])
				}
			}
			return 0
		},
	}

	g := sdf.New("neo-hookean")
	es := g.Input(svm.StreamOf("Es", n, inst.E.Layout, inst.E.Layout.AllFields()), sdf.Bind(inst.E))
	pkOut := g.AddKernel(computePKKernel, []*sdf.Edge{es}, []*svm.Stream{
		svm.NewStream("PKs", n, kfieldLayout("", "p", 9).Fields...),
		svm.NewStream("CGTs", n, kfieldLayout("", "c", 9).Fields...),
		svm.NewStream("DGs", n, kfieldLayout("", "d", 9).Fields...),
		lnJStream,
	})
	g.Output(pkOut[0], sdf.Bind(inst.P9))
	// The material constants come in again for the tangent (selected
	// fields only: mu and lambda of the 88-byte record).
	matS := g.Input(svm.StreamOf("Mat", n, inst.E.Layout, inst.E.Layout.Select("mu", "lambda")),
		sdf.Bind(inst.E, "mu", "lambda"))
	tanOut := g.AddKernel(computeTangentKernel,
		[]*sdf.Edge{pkOut[1], pkOut[2], pkOut[3], matS},
		[]*svm.Stream{svm.NewStream("Tans", n, kfieldLayout("", "t", 21).Fields...)})
	g.Output(tanOut[0], sdf.Bind(inst.Tan))
	return g
}

// RunStream compiles and runs the stream version on both contexts.
func (inst *Instance) RunStream(ecfg exec.Config) (exec.Result, error) {
	prog, err := compiler.Compile(inst.Graph(), compiler.DefaultOptions(svm.DefaultSRF(inst.M)))
	if err != nil {
		return exec.Result{}, err
	}
	return exec.RunStream2Ctx(inst.M, prog, ecfg)
}

// Result is one regular-vs-stream comparison.
type Result struct {
	Params  Params
	Regular exec.Result
	Stream  exec.Result
	Speedup float64
	// SavedBytes is the intermediate traffic producer-consumer locality
	// avoided (the paper's elements×144 bytes).
	SavedBytes uint64
	// Graph is the stream version's dataflow graph, for post-run
	// analysis (advisor calibration against the critical path).
	Graph *sdf.Graph
}

// Run executes both versions on separate machines and verifies the
// outputs agree exactly (identical per-element arithmetic).
func Run(p Params, ecfg exec.Config) (Result, error) {
	reg, err := NewInstance(p)
	if err != nil {
		return Result{}, err
	}
	regRes := reg.RunRegular(ecfg)
	if err := ecfg.Aborted("stage"); err != nil {
		return Result{}, err
	}

	str, err := NewInstance(p)
	if err != nil {
		return Result{}, err
	}
	strRes, err := str.RunStream(ecfg)
	if err != nil {
		return Result{}, err
	}

	for i := range reg.Tan.Data {
		if reg.Tan.Data[i] != str.Tan.Data[i] {
			return Result{}, fmt.Errorf("neo: tangent %d differs: %v vs %v", i, reg.Tan.Data[i], str.Tan.Data[i])
		}
	}
	for i := range reg.P9.Data {
		if reg.P9.Data[i] != str.P9.Data[i] {
			return Result{}, fmt.Errorf("neo: PK %d differs", i)
		}
	}
	return Result{
		Params:     p,
		Regular:    regRes,
		Stream:     strRes,
		Speedup:    exec.Speedup(regRes, strRes),
		SavedBytes: uint64(p.Elements) * IntermediateBytes,
		Graph:      str.Graph(),
	}, nil
}
