package micro

import (
	"testing"

	"streamgpp/internal/exec"
	"streamgpp/internal/sim"
)

// The improved micro-architecture of §V-A (bigger TLB, more NT ways,
// deeper prefetch) must speed up the stream versions of the
// random-access micro-benchmarks — the paper's closing claim.
func TestImprovedMachineHelpsStreamGATSCAT(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	base, err := RunGATSCAT(Params{N: 100000, Comp: 2, Seed: 9}, exec.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	improved := sim.ImprovedStream()
	fut, err := RunGATSCAT(Params{N: 100000, Comp: 2, Seed: 9, Machine: &improved}, exec.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	gain := float64(base.Stream.Cycles) / float64(fut.Stream.Cycles)
	t.Logf("stream cycles: 2005=%d future=%d (gain %.2fx)", base.Stream.Cycles, fut.Stream.Cycles, gain)
	if gain < 1.05 {
		t.Errorf("improved machine gained only %.2fx on stream GAT-SCAT", gain)
	}
}

func TestMicroResultsIndependentOfMachineOverride(t *testing.T) {
	// Functional outputs must not depend on the timing model.
	improved := sim.ImprovedStream()
	a, err := RunLDST(Params{N: 20000, Comp: 2, Seed: 5}, exec.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunLDST(Params{N: 20000, Comp: 2, Seed: 5, Machine: &improved}, exec.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	// Run() already verified regular == stream internally on each
	// machine; cross-check the cycle counts differ (the timing model
	// did change) to make sure the override took effect.
	if a.Stream.Cycles == b.Stream.Cycles && a.Regular.Cycles == b.Regular.Cycles {
		t.Error("machine override had no effect")
	}
}
