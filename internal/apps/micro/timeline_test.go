package micro

import (
	"strings"
	"testing"

	"streamgpp/internal/exec"
	"streamgpp/internal/obs"
	"streamgpp/internal/sim"
)

// sampleRun executes one micro-benchmark with a fresh timeline attached
// and returns the timeline's deterministic text dump.
func sampleRun(t *testing.T, runner string, fastPath bool) string {
	t.Helper()
	tl := obs.NewTimeline(2000)
	sim.SetDefaultTimeline(tl)
	defer sim.SetDefaultTimeline(nil)
	sim.SetDefaultFastPath(fastPath)
	defer sim.SetDefaultFastPath(true)

	if _, err := Runners[runner](Params{N: 30000, Comp: 1, Seed: 3}, exec.Defaults()); err != nil {
		t.Fatalf("%s: %v", runner, err)
	}
	var b strings.Builder
	if _, err := tl.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// The timeline's byte-identity claim: identical seeds and configuration
// produce byte-identical sampled series whether the bulk fast path is
// on or off. The sampling sites are chosen so both modes visit them
// with identical clocks (DRAM misses and Drain always take the
// reference path; task boundaries are mode-invariant), and this test
// enforces that end to end over a sequential and an irregular workload.
func TestTimelineByteIdenticalAcrossFastPath(t *testing.T) {
	for _, runner := range []string{"QUICKSTART", "GAT-SCAT-COMP"} {
		fast := sampleRun(t, runner, true)
		slow := sampleRun(t, runner, false)
		if fast != slow {
			t.Errorf("%s: timeline differs across fast-path modes\nfast:\n%s\nreference:\n%s",
				runner, fast, slow)
		}
		if !strings.Contains(fast, `series "srf occupancy"`) ||
			!strings.Contains(fast, `series "mlp outstanding"`) ||
			!strings.Contains(fast, `series "wq mem pending"`) ||
			!strings.Contains(fast, `series "overlap efficiency"`) {
			t.Errorf("%s: timeline missing expected series:\n%s", runner, fast)
		}
	}
}

// Repeating an identical run must reproduce the identical dump — the
// determinism the regression gate's config hashing assumes.
func TestTimelineDeterministicAcrossRuns(t *testing.T) {
	a := sampleRun(t, "QUICKSTART", true)
	b := sampleRun(t, "QUICKSTART", true)
	if a != b {
		t.Errorf("timeline differs across identical runs:\n%s\nvs:\n%s", a, b)
	}
}

// A run without a timeline must not create one implicitly: the nil
// default is the zero-cost path the benchmarks rely on.
func TestNoTimelineByDefault(t *testing.T) {
	m := sim.MustNew(sim.PentiumD8300())
	if m.Timeline() != nil {
		t.Fatal("machine has a timeline without SetDefaultTimeline")
	}
}
