package micro

import (
	"streamgpp/internal/compiler"
	"streamgpp/internal/exec"
	"streamgpp/internal/sdf"
	"streamgpp/internal/sim"
	"streamgpp/internal/svm"
)

// QUICKSTART is the documentation's worked example and the observability
// smoke workload: a sequential axpy-style loop (out = comp(2.5·a + b))
// small enough to trace end to end, with the same structure as
// LD-ST-COMP so its timeline shows every counter track — SRF occupancy,
// queue depths, outstanding misses, overlap — in a few seconds.

// RunQuickstart runs QUICKSTART in both styles and verifies they agree.
func RunQuickstart(p Params, ecfg exec.Config) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	comp := p.Comp

	reg := newLDST(p)
	regRes := exec.RunRegular(reg.m, ecfg, exec.Loop{
		Name: "quickstart", N: p.N,
		Ops: func(i int) int64 { return opsPerElem(comp) },
		Refs: func(i int, emit func(sim.Addr, int, bool)) {
			emit(reg.a.FieldAddr(i, 0), 8, false)
			emit(reg.b.FieldAddr(i, 0), 8, false)
			emit(reg.o.FieldAddr(i, 0), 8, true)
		},
		Body: func(i int) {
			reg.o.Set(i, 0, compFn(2.5*reg.a.At(i, 0)+reg.b.At(i, 0), comp))
		},
	})

	if err := ecfg.Aborted("stage"); err != nil {
		return Result{}, err
	}

	str := newLDST(p)
	l := str.a.Layout
	k := &svm.Kernel{
		Name: "quickstart", OpsPerElem: opsPerElem(comp),
		Fn: func(ins, outs []*svm.Stream, start, n int) int64 {
			for i := start; i < start+n; i++ {
				outs[0].Set(i, 0, compFn(2.5*ins[0].At(i, 0)+ins[1].At(i, 0), comp))
			}
			return 0
		},
	}
	g := sdf.New("quickstart")
	as := g.Input(svm.StreamOf("as", p.N, l, l.AllFields()), sdf.Bind(str.a))
	bs := g.Input(svm.StreamOf("bs", p.N, l, l.AllFields()), sdf.Bind(str.b))
	os := g.AddKernel(k, []*sdf.Edge{as, bs}, []*svm.Stream{svm.NewStream("os", p.N, svm.F("v", 8))})
	g.Output(os[0], sdf.Bind(str.o))
	prog, err := compiler.Compile(g, p.compileOptions(svm.DefaultSRF(str.m)))
	if err != nil {
		return Result{}, err
	}
	strRes, err := p.runStream(str.m, prog, ecfg)
	if err != nil {
		return Result{}, err
	}

	if err := checkEqual("QUICKSTART", reg.o.Data, str.o.Data); err != nil {
		return Result{}, err
	}
	return Result{Name: "QUICKSTART", Params: p, Regular: regRes, Stream: strRes, Speedup: exec.Speedup(regRes, strRes), Graph: g}, nil
}

func init() {
	Runners["QUICKSTART"] = RunQuickstart
}
