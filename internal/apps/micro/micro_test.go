package micro

import (
	"testing"

	"streamgpp/internal/exec"
)

// Small-N smoke tests verify functional equivalence cheaply; shape
// tests use cache-exceeding arrays at a couple of COMP points.

func TestParamsValidate(t *testing.T) {
	if err := (Params{N: 0, Comp: 1}).Validate(); err == nil {
		t.Error("N=0 accepted")
	}
	if err := (Params{N: 10, Comp: -1}).Validate(); err == nil {
		t.Error("negative Comp accepted")
	}
	if err := (Params{N: 10}).Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
}

func TestAllMicrosAgreeFunctionally(t *testing.T) {
	for name, run := range Runners {
		for _, comp := range []int{0, 1, 4} {
			res, err := run(Params{N: 20000, Comp: comp, Seed: 42}, exec.Defaults())
			if err != nil {
				t.Fatalf("%s comp=%d: %v", name, comp, err)
			}
			if res.Regular.Cycles == 0 || res.Stream.Cycles == 0 {
				t.Fatalf("%s comp=%d: zero cycles", name, comp)
			}
		}
	}
}

func TestLDSTSpeedupHighWhenMemoryBound(t *testing.T) {
	// Fig. 9: LD-ST-COMP shows the largest gains at low COMP (bulk
	// sequential transfers beat intermixed loads), up to ~1.9x.
	res, err := RunLDST(Params{N: 300000, Comp: 1, Seed: 1}, exec.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("LD-ST-COMP comp=1 speedup %.2f", res.Speedup)
	if res.Speedup < 1.2 {
		t.Errorf("speedup %.2f, want >= 1.2 at COMP=1", res.Speedup)
	}
	if res.Speedup > 2.3 {
		t.Errorf("speedup %.2f suspiciously high (paper max 1.92)", res.Speedup)
	}
}

func TestLDSTSpeedupDecaysWithComp(t *testing.T) {
	lo, err := RunLDST(Params{N: 200000, Comp: 1, Seed: 1}, exec.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	hi, err := RunLDST(Params{N: 200000, Comp: 16, Seed: 1}, exec.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("LD-ST-COMP comp=1 %.2f, comp=16 %.2f", lo.Speedup, hi.Speedup)
	if hi.Speedup >= lo.Speedup {
		t.Errorf("speedup should decay with COMP: %.2f -> %.2f", lo.Speedup, hi.Speedup)
	}
	if hi.Speedup < 0.85 || hi.Speedup > 1.3 {
		t.Errorf("compute-bound speedup %.2f, want ~1.0", hi.Speedup)
	}
}

func TestGATSCATSpeedupPeaksMidComp(t *testing.T) {
	// Fig. 9: GAT-SCAT-COMP improves as COMP grows (overlap pays off)
	// and converges back toward 1 at very large COMP.
	lo, err := RunGATSCAT(Params{N: 150000, Comp: 1, Seed: 2}, exec.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	mid, err := RunGATSCAT(Params{N: 150000, Comp: 4, Seed: 2}, exec.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	hi, err := RunGATSCAT(Params{N: 150000, Comp: 16, Seed: 2}, exec.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("GAT-SCAT comp=1 %.2f, comp=4 %.2f, comp=16 %.2f", lo.Speedup, mid.Speedup, hi.Speedup)
	if mid.Speedup < lo.Speedup-0.05 {
		t.Errorf("GAT-SCAT speedup should not fall from COMP=1 to COMP=4: %.2f -> %.2f", lo.Speedup, mid.Speedup)
	}
	if hi.Speedup >= mid.Speedup {
		t.Errorf("GAT-SCAT speedup should decay at large COMP: %.2f -> %.2f", mid.Speedup, hi.Speedup)
	}
	// Worst case in the paper is a 4% slowdown.
	if lo.Speedup < 0.80 {
		t.Errorf("GAT-SCAT comp=1 speedup %.2f, paper's worst case is ~0.96", lo.Speedup)
	}
}

func TestPRODCONBeatsGATSCAT(t *testing.T) {
	// Fig. 9: PROD-CON exceeds GAT-SCAT-COMP thanks to the memory
	// bandwidth saved by producer-consumer locality.
	p := Params{N: 150000, Comp: 4, Seed: 3}
	gs, err := RunGATSCAT(p, exec.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	pc, err := RunPRODCON(p, exec.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("GAT-SCAT %.2f vs PROD-CON %.2f", gs.Speedup, pc.Speedup)
	if pc.Speedup <= gs.Speedup {
		t.Errorf("PROD-CON (%.2f) should beat GAT-SCAT (%.2f)", pc.Speedup, gs.Speedup)
	}
}

func TestMicroDeterminism(t *testing.T) {
	p := Params{N: 30000, Comp: 2, Seed: 7}
	r1, err := RunLDST(p, exec.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunLDST(p, exec.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stream.Cycles != r2.Stream.Cycles || r1.Regular.Cycles != r2.Regular.Cycles {
		t.Error("micro-benchmark runs are nondeterministic")
	}
}
