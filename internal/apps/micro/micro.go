// Package micro implements the paper's three micro-benchmarks (§IV-B,
// Fig. 9), each in regular and streaming style:
//
//   - LD-ST-COMP: sequential loads of two arrays, compute, sequential
//     store (the behaviour of streamFEM's AdvanceCell).
//   - GAT-SCAT-COMP: the same with indexed (random) gathers and
//     scatters (streamSPAS / streamFEM's GatherCell).
//   - PROD-CON: two chained loops with random inputs and outputs whose
//     intermediate array disappears into producer-consumer locality in
//     the stream version (neo-hookean's pattern).
//
// The COMP knob scales the per-element computation; COMP=1 corresponds
// to roughly 50 cycles per loaded value, as the paper states.
package micro

import (
	"fmt"
	"math/rand"

	"streamgpp/internal/compiler"
	"streamgpp/internal/exec"
	"streamgpp/internal/obs"
	"streamgpp/internal/sdf"
	"streamgpp/internal/sim"
	"streamgpp/internal/svm"
)

// CompUnitOps is the compute cost of COMP=1, in abstract ops
// (≈ cycles): "COMP = 1 roughly corresponds to an execution time of 50
// cycles" (Fig. 9 caption).
const CompUnitOps = 50

// Params selects a micro-benchmark configuration.
type Params struct {
	// N is the number of elements per array. The paper's speedups need
	// arrays much larger than the 1 MB L2.
	N int
	// Comp is the COMP knob (≥ 0).
	Comp int
	// Seed drives the random index patterns.
	Seed int64
	// Machine overrides the simulated machine (nil = the paper's
	// Pentium 4), for the improved-microarchitecture experiments.
	Machine *sim.Config
	// NoDoubleBuffer disables buffer renaming in the stream compile —
	// the serialised-pipeline ablation used by streamtrace and the
	// stalls experiment.
	NoDoubleBuffer bool
	// StripScale rescales the compiler's strip size (0 or 1 = as
	// chosen). Scales below 1 are always safe; the what-if machinery
	// uses them for its empirical strip-size re-runs.
	StripScale float64
	// SingleCtx runs the stream version on one hardware context (no
	// gather/compute overlap) — the 1ctx what-if counterfactual.
	SingleCtx bool
	// Observer, when non-nil, is attached to this run's machines so
	// the caller can read their metrics afterwards. Unlike
	// sim.SetDefaultObserver it is scoped to the run, so concurrent
	// benchmarks cannot observe each other's machines.
	Observer *obs.Registry
}

// compileOptions returns the stream compile options for this run.
func (p Params) compileOptions(srf *svm.SRF) compiler.Options {
	opt := compiler.DefaultOptions(srf)
	if p.NoDoubleBuffer {
		opt.DoubleBuffer = false
	}
	opt.StripScale = p.StripScale
	return opt
}

// runStream executes the compiled stream program on the mapping the
// parameters select: both hardware contexts (the paper's default) or a
// single context for the 1ctx counterfactual.
func (p Params) runStream(m *sim.Machine, prog *compiler.Program, ecfg exec.Config) (exec.Result, error) {
	if p.SingleCtx {
		return exec.RunStream1Ctx(m, prog, ecfg)
	}
	return exec.RunStream2Ctx(m, prog, ecfg)
}

// newMachine builds the machine the benchmark runs on.
func (p Params) newMachine() *sim.Machine {
	cfg := sim.PentiumD8300()
	if p.Machine != nil {
		cfg = *p.Machine
	}
	m := sim.MustNew(cfg)
	if p.Observer != nil {
		m.SetObserver(p.Observer)
	}
	return m
}

// Validate reports invalid parameters.
func (p Params) Validate() error {
	if p.N <= 0 {
		return fmt.Errorf("micro: N must be positive, got %d", p.N)
	}
	if p.Comp < 0 {
		return fmt.Errorf("micro: Comp must be non-negative, got %d", p.Comp)
	}
	return nil
}

// Result reports one regular-vs-stream comparison.
type Result struct {
	Name    string
	Params  Params
	Regular exec.Result
	Stream  exec.Result
	Speedup float64
	// Graph is the stream version's dataflow graph, kept for post-run
	// analysis (the advisor's static estimate, critical-path
	// calibration).
	Graph *sdf.Graph
}

// compFn is the per-element computation both versions share: a short
// dependent chain whose length scales with COMP.
func compFn(x float64, comp int) float64 {
	r := x
	for k := 0; k < comp; k++ {
		r = r*0.9995 + 0.25
	}
	return r
}

// opsPerElem is the charged compute cost for a given COMP.
func opsPerElem(comp int) int64 {
	ops := int64(comp) * CompUnitOps
	if ops < 4 {
		ops = 4 // the add/store glue around the chain
	}
	return ops
}

func fillRandom(rng *rand.Rand, a *svm.Array) {
	a.Fill(func(i, f int) float64 { return rng.Float64() })
}

func randomIndices(rng *rand.Rand, idx *svm.IndexArray, limit int) {
	for i := range idx.Idx {
		idx.Idx[i] = int32(rng.Intn(limit))
	}
}

// checkEqual compares two float slices exactly (both versions perform
// the identical arithmetic in the same order per element).
func checkEqual(name string, a, b []float64) error {
	if len(a) != len(b) {
		return fmt.Errorf("micro: %s: length %d vs %d", name, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("micro: %s: element %d differs: %v vs %v", name, i, a[i], b[i])
		}
	}
	return nil
}

// ldstInstance holds one machine's arrays for LD-ST-COMP.
type ldstInstance struct {
	m       *sim.Machine
	a, b, o *svm.Array
}

func newLDST(p Params) *ldstInstance {
	m := p.newMachine()
	l := svm.Layout("rec", svm.F("v", 8))
	inst := &ldstInstance{
		m: m,
		a: svm.NewArray(m, "a", l, p.N),
		b: svm.NewArray(m, "b", l, p.N),
		o: svm.NewArray(m, "o", l, p.N),
	}
	rng := rand.New(rand.NewSource(p.Seed))
	fillRandom(rng, inst.a)
	fillRandom(rng, inst.b)
	return inst
}

// RunLDST runs LD-ST-COMP in both styles and verifies they agree.
func RunLDST(p Params, ecfg exec.Config) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	comp := p.Comp

	// Regular: one loop, loads and stores intermixed.
	reg := newLDST(p)
	regRes := exec.RunRegular(reg.m, ecfg, exec.Loop{
		Name: "ldst", N: p.N,
		Ops: func(i int) int64 { return opsPerElem(comp) },
		AffineRefs: []sim.BulkRef{
			{Base: reg.a.FieldAddr(0, 0), Size: 8, Stride: reg.a.Layout.Stride},
			{Base: reg.b.FieldAddr(0, 0), Size: 8, Stride: reg.b.Layout.Stride},
			{Base: reg.o.FieldAddr(0, 0), Size: 8, Stride: reg.o.Layout.Stride, Write: true},
		},
		Body: func(i int) {
			reg.o.Set(i, 0, compFn(reg.a.At(i, 0)+reg.b.At(i, 0), comp))
		},
	})

	// Stage boundary: a job cancelled during the regular baseline must
	// not start the stream phase (and returns no partial result).
	if err := ecfg.Aborted("stage"); err != nil {
		return Result{}, err
	}

	// Stream: gather a, b → kernel → scatter o.
	str := newLDST(p)
	l := str.a.Layout
	k := &svm.Kernel{
		Name: "ldstcomp", OpsPerElem: opsPerElem(comp),
		Fn: func(ins, outs []*svm.Stream, start, n int) int64 {
			for i := start; i < start+n; i++ {
				outs[0].Set(i, 0, compFn(ins[0].At(i, 0)+ins[1].At(i, 0), comp))
			}
			return 0
		},
	}
	g := sdf.New("ldst")
	as := g.Input(svm.StreamOf("as", p.N, l, l.AllFields()), sdf.Bind(str.a))
	bs := g.Input(svm.StreamOf("bs", p.N, l, l.AllFields()), sdf.Bind(str.b))
	os := g.AddKernel(k, []*sdf.Edge{as, bs}, []*svm.Stream{svm.NewStream("os", p.N, svm.F("v", 8))})
	g.Output(os[0], sdf.Bind(str.o))
	prog, err := compiler.Compile(g, p.compileOptions(svm.DefaultSRF(str.m)))
	if err != nil {
		return Result{}, err
	}
	strRes, err := p.runStream(str.m, prog, ecfg)
	if err != nil {
		return Result{}, err
	}

	if err := checkEqual("LD-ST-COMP", reg.o.Data, str.o.Data); err != nil {
		return Result{}, err
	}
	return Result{Name: "LD-ST-COMP", Params: p, Regular: regRes, Stream: strRes, Speedup: exec.Speedup(regRes, strRes), Graph: g}, nil
}

// gatscatInstance holds one machine's arrays for GAT-SCAT-COMP.
type gatscatInstance struct {
	m          *sim.Machine
	a, b, o    *svm.Array
	ia, ib, io *svm.IndexArray
}

func newGATSCAT(p Params) *gatscatInstance {
	m := p.newMachine()
	l := svm.Layout("rec", svm.F("v", 8))
	inst := &gatscatInstance{
		m:  m,
		a:  svm.NewArray(m, "a", l, p.N),
		b:  svm.NewArray(m, "b", l, p.N),
		o:  svm.NewArray(m, "o", l, p.N),
		ia: svm.NewIndexArray(m, "ia", p.N),
		ib: svm.NewIndexArray(m, "ib", p.N),
		io: svm.NewIndexArray(m, "io", p.N),
	}
	rng := rand.New(rand.NewSource(p.Seed))
	fillRandom(rng, inst.a)
	fillRandom(rng, inst.b)
	randomIndices(rng, inst.ia, p.N)
	randomIndices(rng, inst.ib, p.N)
	// The scatter must not write one element twice (the two styles
	// would disagree on the winner): use a random permutation.
	perm := rng.Perm(p.N)
	for i, v := range perm {
		inst.io.Idx[i] = int32(v)
	}
	return inst
}

// RunGATSCAT runs GAT-SCAT-COMP in both styles and verifies they agree.
func RunGATSCAT(p Params, ecfg exec.Config) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	comp := p.Comp

	reg := newGATSCAT(p)
	regRes := exec.RunRegular(reg.m, ecfg, exec.Loop{
		Name: "gatscat", N: p.N,
		Ops: func(i int) int64 { return opsPerElem(comp) },
		Refs: func(i int, emit func(sim.Addr, int, bool)) {
			emit(reg.ia.ElemAddr(i), svm.IndexElemBytes, false)
			emit(reg.ib.ElemAddr(i), svm.IndexElemBytes, false)
			emit(reg.io.ElemAddr(i), svm.IndexElemBytes, false)
			emit(reg.a.FieldAddr(int(reg.ia.Idx[i]), 0), 8, false)
			emit(reg.b.FieldAddr(int(reg.ib.Idx[i]), 0), 8, false)
			emit(reg.o.FieldAddr(int(reg.io.Idx[i]), 0), 8, true)
		},
		Body: func(i int) {
			v := compFn(reg.a.At(int(reg.ia.Idx[i]), 0)+reg.b.At(int(reg.ib.Idx[i]), 0), comp)
			reg.o.Set(int(reg.io.Idx[i]), 0, v)
		},
	})

	if err := ecfg.Aborted("stage"); err != nil {
		return Result{}, err
	}

	str := newGATSCAT(p)
	l := str.a.Layout
	k := &svm.Kernel{
		Name: "gatscatcomp", OpsPerElem: opsPerElem(comp),
		Fn: func(ins, outs []*svm.Stream, start, n int) int64 {
			for i := start; i < start+n; i++ {
				outs[0].Set(i, 0, compFn(ins[0].At(i, 0)+ins[1].At(i, 0), comp))
			}
			return 0
		},
	}
	g := sdf.New("gatscat")
	as := g.Input(svm.StreamOf("as", p.N, l, l.AllFields()), sdf.Bind(str.a).Indexed(str.ia))
	bs := g.Input(svm.StreamOf("bs", p.N, l, l.AllFields()), sdf.Bind(str.b).Indexed(str.ib))
	os := g.AddKernel(k, []*sdf.Edge{as, bs}, []*svm.Stream{svm.NewStream("os", p.N, svm.F("v", 8))})
	g.Output(os[0], sdf.Bind(str.o).Indexed(str.io))
	prog, err := compiler.Compile(g, p.compileOptions(svm.DefaultSRF(str.m)))
	if err != nil {
		return Result{}, err
	}
	strRes, err := p.runStream(str.m, prog, ecfg)
	if err != nil {
		return Result{}, err
	}

	if err := checkEqual("GAT-SCAT-COMP", reg.o.Data, str.o.Data); err != nil {
		return Result{}, err
	}
	return Result{Name: "GAT-SCAT-COMP", Params: p, Regular: regRes, Stream: strRes, Speedup: exec.Speedup(regRes, strRes), Graph: g}, nil
}

// prodconFields is the width of PROD-CON's intermediate record. The
// benchmark exists to vary "the amount of producer/consumer locality",
// so the intermediate is a fat record (32 bytes, in the spirit of
// neo-hookean's 144-byte intermediates): the regular version must write
// it back and re-read it; the stream version keeps it in the SRF.
const prodconFields = 4

func prodconLayout() svm.RecordLayout {
	return svm.Layout("t", svm.F("t0", 8), svm.F("t1", 8), svm.F("t2", 8), svm.F("t3", 8))
}

// prodconInstance holds one machine's arrays for PROD-CON.
type prodconInstance struct {
	m          *sim.Machine
	a, b, c, o *svm.Array
	t          *svm.Array // the regular code's intermediate
	ia, ib, ic *svm.IndexArray
	io         *svm.IndexArray
}

func newPRODCON(p Params) *prodconInstance {
	m := p.newMachine()
	l := svm.Layout("rec", svm.F("v", 8))
	inst := &prodconInstance{
		m:  m,
		a:  svm.NewArray(m, "a", l, p.N),
		b:  svm.NewArray(m, "b", l, p.N),
		c:  svm.NewArray(m, "c", l, p.N),
		o:  svm.NewArray(m, "o", l, p.N),
		t:  svm.NewArray(m, "t", prodconLayout(), p.N),
		ia: svm.NewIndexArray(m, "ia", p.N),
		ib: svm.NewIndexArray(m, "ib", p.N),
		ic: svm.NewIndexArray(m, "ic", p.N),
		io: svm.NewIndexArray(m, "io", p.N),
	}
	rng := rand.New(rand.NewSource(p.Seed))
	fillRandom(rng, inst.a)
	fillRandom(rng, inst.b)
	fillRandom(rng, inst.c)
	randomIndices(rng, inst.ia, p.N)
	randomIndices(rng, inst.ib, p.N)
	randomIndices(rng, inst.ic, p.N)
	perm := rng.Perm(p.N)
	for i, v := range perm {
		inst.io.Idx[i] = int32(v)
	}
	return inst
}

// RunPRODCON runs PROD-CON in both styles and verifies they agree. The
// stream version's intermediate never reaches memory (producer-consumer
// locality); the regular version writes and re-reads array t.
func RunPRODCON(p Params, ecfg exec.Config) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	comp := p.Comp

	// The shared per-element maths.
	produce := func(a, b float64, set func(f int, v float64)) {
		t0 := compFn(a+b, comp)
		set(0, t0)
		set(1, t0*0.5)
		set(2, t0+1)
		set(3, t0*t0)
	}
	consume := func(t0, t1, t2, t3, c float64) float64 {
		return compFn((t0+t1+t2+t3)*0.25+c, comp)
	}

	reg := newPRODCON(p)
	regRes := exec.RunRegular(reg.m, ecfg,
		exec.Loop{
			Name: "prod", N: p.N,
			Ops: func(i int) int64 { return opsPerElem(comp) },
			Refs: func(i int, emit func(sim.Addr, int, bool)) {
				emit(reg.ia.ElemAddr(i), svm.IndexElemBytes, false)
				emit(reg.ib.ElemAddr(i), svm.IndexElemBytes, false)
				emit(reg.a.FieldAddr(int(reg.ia.Idx[i]), 0), 8, false)
				emit(reg.b.FieldAddr(int(reg.ib.Idx[i]), 0), 8, false)
				emit(reg.t.FieldAddr(i, 0), 8*prodconFields, true)
			},
			Body: func(i int) {
				produce(reg.a.At(int(reg.ia.Idx[i]), 0), reg.b.At(int(reg.ib.Idx[i]), 0),
					func(f int, v float64) { reg.t.Set(i, f, v) })
			},
		},
		exec.Loop{
			Name: "con", N: p.N,
			Ops: func(i int) int64 { return opsPerElem(comp) },
			Refs: func(i int, emit func(sim.Addr, int, bool)) {
				emit(reg.t.FieldAddr(i, 0), 8*prodconFields, false)
				emit(reg.ic.ElemAddr(i), svm.IndexElemBytes, false)
				emit(reg.io.ElemAddr(i), svm.IndexElemBytes, false)
				emit(reg.c.FieldAddr(int(reg.ic.Idx[i]), 0), 8, false)
				emit(reg.o.FieldAddr(int(reg.io.Idx[i]), 0), 8, true)
			},
			Body: func(i int) {
				v := consume(reg.t.At(i, 0), reg.t.At(i, 1), reg.t.At(i, 2), reg.t.At(i, 3),
					reg.c.At(int(reg.ic.Idx[i]), 0))
				reg.o.Set(int(reg.io.Idx[i]), 0, v)
			},
		},
	)

	if err := ecfg.Aborted("stage"); err != nil {
		return Result{}, err
	}

	str := newPRODCON(p)
	l := str.a.Layout
	k1 := &svm.Kernel{
		Name: "prod", OpsPerElem: opsPerElem(comp),
		Fn: func(ins, outs []*svm.Stream, start, n int) int64 {
			for i := start; i < start+n; i++ {
				produce(ins[0].At(i, 0), ins[1].At(i, 0),
					func(f int, v float64) { outs[0].Set(i, f, v) })
			}
			return 0
		},
	}
	k2 := &svm.Kernel{
		Name: "con", OpsPerElem: opsPerElem(comp),
		Fn: func(ins, outs []*svm.Stream, start, n int) int64 {
			for i := start; i < start+n; i++ {
				outs[0].Set(i, 0, consume(ins[0].At(i, 0), ins[0].At(i, 1), ins[0].At(i, 2), ins[0].At(i, 3), ins[1].At(i, 0)))
			}
			return 0
		},
	}
	g := sdf.New("prodcon")
	as := g.Input(svm.StreamOf("as", p.N, l, l.AllFields()), sdf.Bind(str.a).Indexed(str.ia))
	bs := g.Input(svm.StreamOf("bs", p.N, l, l.AllFields()), sdf.Bind(str.b).Indexed(str.ib))
	ts := g.AddKernel(k1, []*sdf.Edge{as, bs}, []*svm.Stream{svm.NewStream("ts", p.N,
		svm.F("t0", 8), svm.F("t1", 8), svm.F("t2", 8), svm.F("t3", 8))})
	cs := g.Input(svm.StreamOf("cs", p.N, l, l.AllFields()), sdf.Bind(str.c).Indexed(str.ic))
	os := g.AddKernel(k2, []*sdf.Edge{ts[0], cs}, []*svm.Stream{svm.NewStream("os", p.N, svm.F("v", 8))})
	g.Output(os[0], sdf.Bind(str.o).Indexed(str.io))
	prog, err := compiler.Compile(g, p.compileOptions(svm.DefaultSRF(str.m)))
	if err != nil {
		return Result{}, err
	}
	strRes, err := p.runStream(str.m, prog, ecfg)
	if err != nil {
		return Result{}, err
	}

	if err := checkEqual("PROD-CON", reg.o.Data, str.o.Data); err != nil {
		return Result{}, err
	}
	return Result{Name: "PROD-CON", Params: p, Regular: regRes, Stream: strRes, Speedup: exec.Speedup(regRes, strRes), Graph: g}, nil
}

// Runners maps benchmark names to their entry points, for harnesses.
var Runners = map[string]func(Params, exec.Config) (Result, error){
	"LD-ST-COMP":    RunLDST,
	"GAT-SCAT-COMP": RunGATSCAT,
	"PROD-CON":      RunPRODCON,
}
