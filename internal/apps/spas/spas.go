// Package spas implements streamSPAS (§IV-C.4, Fig. 10(d)): sparse
// matrix-vector multiplication over compressed sparse row storage,
// with the ratio of non-zeros to rows held at the paper's ≈46.
//
// The stream version gathers one copy of the input vector entry for
// every non-zero ("several elements are copied multiple times ... to
// keep the input vector data contiguous in the SRF"), multiplies it
// against the sequentially-loaded values, and accumulates the products
// into the result. Because the gathers are non-temporal, the stream
// version cannot exploit a cache-resident input vector — which is why
// the paper measures a slowdown on small meshes and a recovery as the
// matrix outgrows the cache.
package spas

import (
	"fmt"
	"math"
	"math/rand"

	"streamgpp/internal/compiler"
	"streamgpp/internal/exec"
	"streamgpp/internal/sdf"
	"streamgpp/internal/sim"
	"streamgpp/internal/svm"
)

// Params selects a matrix.
type Params struct {
	// Rows is the matrix dimension (square).
	Rows int
	// NNZPerRow is the non-zeros per row; the paper holds this at ~46.
	NNZPerRow int
	// Seed drives the sparsity pattern.
	Seed int64
}

// PaperNNZPerRow is the paper's constant non-zeros-to-rows ratio.
const PaperNNZPerRow = 46

// Validate reports invalid parameters.
func (p Params) Validate() error {
	if p.Rows <= 0 {
		return fmt.Errorf("spas: Rows must be positive, got %d", p.Rows)
	}
	if p.NNZPerRow <= 0 || p.NNZPerRow > p.Rows {
		return fmt.Errorf("spas: NNZPerRow %d out of range (1..%d)", p.NNZPerRow, p.Rows)
	}
	return nil
}

// Cost model: a multiply-accumulate per non-zero.
const macOps = 4

// Instance is one materialised SpMV problem.
type Instance struct {
	P   Params
	M   *sim.Machine
	NNZ int

	Vals   *svm.Array      // non-zero values, sequential
	X      *svm.Array      // input vector
	Y      *svm.Array      // result vector
	ColIdx *svm.IndexArray // column of each non-zero
	RowOf  *svm.IndexArray // row of each non-zero (non-decreasing)
	RowPtr []int32         // CSR row pointers (regular version)
}

// NewInstance builds a matrix with a 3D-FEM-like sparsity pattern:
// most entries cluster in a band around the diagonal, a fraction reach
// far (the paper's matrices "come from 3D FEM discretization").
func NewInstance(p Params) (*Instance, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m := sim.MustNew(sim.PentiumD8300())
	nnz := p.Rows * p.NNZPerRow
	inst := &Instance{
		P: p, M: m, NNZ: nnz,
		Vals:   svm.NewArray(m, "vals", svm.Layout("val", svm.F("v", 8)), nnz),
		X:      svm.NewArray(m, "x", svm.Layout("x", svm.F("v", 8)), p.Rows),
		Y:      svm.NewArray(m, "y", svm.Layout("y", svm.F("v", 8)), p.Rows),
		ColIdx: svm.NewIndexArray(m, "colidx", nnz),
		RowOf:  svm.NewIndexArray(m, "rowof", nnz),
		RowPtr: make([]int32, p.Rows+1),
	}
	rng := rand.New(rand.NewSource(p.Seed))
	// A 3D FEM discretisation couples nodes within a surface-sized
	// bandwidth: ~n^(2/3) for n unknowns. Relative to the matrix, the
	// band narrows as the mesh grows — the paper's "the mesh gets
	// sparser" observation.
	band := int(math.Pow(float64(p.Rows), 2.0/3))
	if band < p.NNZPerRow {
		band = p.NNZPerRow
	}
	k := 0
	for r := 0; r < p.Rows; r++ {
		inst.RowPtr[r] = int32(k)
		rowStart := k
		for j := 0; j < p.NNZPerRow; j++ {
			var c int32
		draw:
			for {
				if rng.Float64() < 0.98 {
					c = int32(r + rng.Intn(2*band+1) - band)
				} else {
					c = int32(rng.Intn(p.Rows))
				}
				if c < 0 {
					c = -c
				}
				if int(c) >= p.Rows {
					c = int32(2*p.Rows-2) - c
				}
				// Row-local duplicate check: the row's chosen columns so
				// far are ColIdx[rowStart:k]; a scan over ≤NNZPerRow
				// entries beats a per-row map (and draws the same random
				// sequence, so the matrix is unchanged).
				for _, prev := range inst.ColIdx.Idx[rowStart:k] {
					if prev == c {
						continue draw
					}
				}
				break
			}
			inst.ColIdx.Idx[k] = c
			inst.RowOf.Idx[k] = int32(r)
			inst.Vals.Set(k, 0, rng.Float64()*2-1)
			k++
		}
	}
	inst.RowPtr[p.Rows] = int32(k)
	for i := 0; i < p.Rows; i++ {
		inst.X.Set(i, 0, rng.Float64()*2-1)
	}
	return inst, nil
}

// RunRegular executes the classic CSR loop: for each row, accumulate
// vals[k]*x[colidx[k]] in a register and store y[r].
func (inst *Instance) RunRegular(ecfg exec.Config) exec.Result {
	p := inst.P
	loop := exec.Loop{
		Name: "spmv", N: p.Rows,
		Ops: func(r int) int64 {
			return int64(inst.RowPtr[r+1]-inst.RowPtr[r]) * macOps
		},
		Refs: func(r int, emit func(sim.Addr, int, bool)) {
			for k := inst.RowPtr[r]; k < inst.RowPtr[r+1]; k++ {
				emit(inst.ColIdx.ElemAddr(int(k)), svm.IndexElemBytes, false)
				emit(inst.Vals.FieldAddr(int(k), 0), 8, false)
				emit(inst.X.FieldAddr(int(inst.ColIdx.Idx[k]), 0), 8, false)
			}
			emit(inst.Y.FieldAddr(r, 0), 8, true)
		},
		Body: func(r int) {
			var acc float64
			for k := inst.RowPtr[r]; k < inst.RowPtr[r+1]; k++ {
				acc += inst.Vals.At(int(k), 0) * inst.X.At(int(inst.ColIdx.Idx[k]), 0)
			}
			inst.Y.Set(r, 0, acc)
		},
	}
	return exec.RunRegular(inst.M, ecfg, loop)
}

// Graph builds the stream program: gather x[colidx[k]] per non-zero
// (the duplicating copy of Fig. 10(d)), stream the values sequentially,
// multiply in the SpMatVec kernel, and accumulate the products into y
// through the non-decreasing row index.
func (inst *Instance) Graph() *sdf.Graph {
	spMatVec := &svm.Kernel{
		Name: "SpMatVec", OpsPerElem: macOps,
		Fn: func(ins, outs []*svm.Stream, start, n int) int64 {
			xv, vals := ins[0], ins[1]
			prod := outs[0]
			for i := start; i < start+n; i++ {
				prod.Set(i, 0, xv.At(i, 0)*vals.At(i, 0))
			}
			return 0
		},
	}
	g := sdf.New("streamSPAS")
	xv := g.Input(svm.StreamOf("xv", inst.NNZ, inst.X.Layout, inst.X.Layout.AllFields()),
		sdf.Bind(inst.X).Indexed(inst.ColIdx))
	vals := g.Input(svm.StreamOf("vals", inst.NNZ, inst.Vals.Layout, inst.Vals.Layout.AllFields()),
		sdf.Bind(inst.Vals))
	prod := g.AddKernel(spMatVec, []*sdf.Edge{xv, vals},
		[]*svm.Stream{svm.NewStream("prod", inst.NNZ, svm.F("p", 8))})
	g.Output(prod[0], sdf.Bind(inst.Y).Indexed(inst.RowOf).Accumulate())
	return g
}

// RunStream compiles and runs the stream version. y must be zeroed
// before the scatter-add accumulates into it.
func (inst *Instance) RunStream(ecfg exec.Config) (exec.Result, error) {
	for i := 0; i < inst.P.Rows; i++ {
		inst.Y.Set(i, 0, 0)
	}
	prog, err := compiler.Compile(inst.Graph(), compiler.DefaultOptions(svm.DefaultSRF(inst.M)))
	if err != nil {
		return exec.Result{}, err
	}
	return exec.RunStream2Ctx(inst.M, prog, ecfg)
}

// Result is one regular-vs-stream comparison.
type Result struct {
	Params  Params
	NNZ     int
	Regular exec.Result
	Stream  exec.Result
	Speedup float64
	// Graph is the stream version's dataflow graph, for post-run
	// analysis (advisor calibration against the critical path).
	Graph *sdf.Graph
}

// Run executes both versions on separate machines and verifies the
// results agree (scatter-add reorder makes the sums differ in the last
// bits, so a tight relative tolerance applies).
func Run(p Params, ecfg exec.Config) (Result, error) {
	reg, err := NewInstance(p)
	if err != nil {
		return Result{}, err
	}
	regRes := reg.RunRegular(ecfg)
	if err := ecfg.Aborted("stage"); err != nil {
		return Result{}, err
	}

	str, err := NewInstance(p)
	if err != nil {
		return Result{}, err
	}
	strRes, err := str.RunStream(ecfg)
	if err != nil {
		return Result{}, err
	}

	for i := 0; i < p.Rows; i++ {
		a, b := reg.Y.At(i, 0), str.Y.At(i, 0)
		scale := math.Max(math.Abs(a), 1)
		if math.Abs(a-b)/scale > 1e-9 {
			return Result{}, fmt.Errorf("spas: y[%d] differs: %v vs %v", i, a, b)
		}
	}
	return Result{Params: p, NNZ: reg.NNZ, Regular: regRes, Stream: strRes, Speedup: exec.Speedup(regRes, strRes), Graph: str.Graph()}, nil
}
