package spas

import (
	"testing"

	"streamgpp/internal/exec"
)

func TestParamsValidate(t *testing.T) {
	if err := (Params{Rows: 0, NNZPerRow: 4}).Validate(); err == nil {
		t.Error("Rows=0 accepted")
	}
	if err := (Params{Rows: 10, NNZPerRow: 11}).Validate(); err == nil {
		t.Error("NNZPerRow > Rows accepted")
	}
	if err := (Params{Rows: 100, NNZPerRow: 46}).Validate(); err != nil {
		t.Error(err)
	}
}

func TestMatrixStructure(t *testing.T) {
	inst, err := NewInstance(Params{Rows: 500, NNZPerRow: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if inst.NNZ != 5000 {
		t.Fatalf("nnz %d", inst.NNZ)
	}
	// Row pointers consistent, columns in range, RowOf non-decreasing.
	prev := int32(-1)
	for k := 0; k < inst.NNZ; k++ {
		c := inst.ColIdx.Idx[k]
		if c < 0 || int(c) >= 500 {
			t.Fatalf("colidx[%d] = %d", k, c)
		}
		r := inst.RowOf.Idx[k]
		if r < prev {
			t.Fatalf("RowOf decreasing at %d", k)
		}
		prev = r
	}
	for r := 0; r < 500; r++ {
		if inst.RowPtr[r+1]-inst.RowPtr[r] != 10 {
			t.Fatalf("row %d has %d nnz", r, inst.RowPtr[r+1]-inst.RowPtr[r])
		}
	}
	// No duplicate columns within a row.
	for r := 0; r < 500; r++ {
		seen := map[int32]bool{}
		for k := inst.RowPtr[r]; k < inst.RowPtr[r+1]; k++ {
			if seen[inst.ColIdx.Idx[k]] {
				t.Fatalf("row %d repeats column %d", r, inst.ColIdx.Idx[k])
			}
			seen[inst.ColIdx.Idx[k]] = true
		}
	}
}

func TestStreamMatchesRegular(t *testing.T) {
	res, err := Run(Params{Rows: 2000, NNZPerRow: 20, Seed: 2}, exec.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if res.Regular.Cycles == 0 || res.Stream.Cycles == 0 {
		t.Fatal("zero cycles")
	}
}

func TestSlowdownSmallMeshRecoveryLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	// Fig. 11(d): a slowdown for small meshes (the cache serves the
	// regular code's input vector; the stream version's NT gathers
	// cannot use it) recovering as the matrix outgrows the cache.
	small, err := Run(Params{Rows: 2000, NNZPerRow: PaperNNZPerRow, Seed: 3}, exec.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	large, err := Run(Params{Rows: 48000, NNZPerRow: PaperNNZPerRow, Seed: 3}, exec.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("rows=2000: %.3f, rows=48000: %.3f", small.Speedup, large.Speedup)
	if small.Speedup >= 1.02 {
		t.Errorf("small mesh speedup %.2f, want <= ~1 (paper: slowdown)", small.Speedup)
	}
	if large.Speedup <= small.Speedup {
		t.Errorf("large mesh (%.2f) should improve over small (%.2f)", large.Speedup, small.Speedup)
	}
}
