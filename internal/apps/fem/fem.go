package fem

import (
	"fmt"
	"math"

	"streamgpp/internal/compiler"
	"streamgpp/internal/exec"
	"streamgpp/internal/sdf"
	"streamgpp/internal/sim"
	"streamgpp/internal/svm"
)

// Params selects a streamFEM configuration (§IV-C.1).
type Params struct {
	// Mesh is the triangular mesh; nil selects the paper's 4816 cells.
	Mesh *Mesh
	// NPDE is the number of PDEs: 4 for Euler, 6 for MHD.
	NPDE int
	// Dof is the polynomial degrees of freedom: 3 linear, 10 quadratic.
	Dof int
	// Steps is the number of time steps to run.
	Steps int
	// Fuse enables the GatherCell/AdvanceCell kernel fusion the paper
	// applies (on by default through DefaultOptions; exposed for the
	// ablation bench).
	NoFuse bool
}

// Standard configurations from Fig. 11(a).
var (
	EulerLin  = Params{NPDE: 4, Dof: 3, Steps: 3}
	EulerQuad = Params{NPDE: 4, Dof: 10, Steps: 3}
	MHDLin    = Params{NPDE: 6, Dof: 3, Steps: 3}
	MHDQuad   = Params{NPDE: 6, Dof: 10, Steps: 3}
)

// Name returns the Fig. 11(a) label for the configuration.
func (p Params) Name() string {
	pde := "Euler"
	if p.NPDE == 6 {
		pde = "MHD"
	} else if p.NPDE != 4 {
		pde = fmt.Sprintf("PDE%d", p.NPDE)
	}
	space := "lin"
	if p.Dof == 10 {
		space = "quad"
	} else if p.Dof != 3 {
		space = fmt.Sprintf("dof%d", p.Dof)
	}
	return pde + "-" + space
}

// Validate reports invalid parameters.
func (p Params) Validate() error {
	if p.NPDE <= 0 || p.Dof <= 0 {
		return fmt.Errorf("fem: NPDE and Dof must be positive (%d, %d)", p.NPDE, p.Dof)
	}
	if p.Steps <= 0 {
		return fmt.Errorf("fem: Steps must be positive (%d)", p.Steps)
	}
	return nil
}

// K returns the per-cell field count (nPDE × dof).
func (p Params) K() int { return p.NPDE * p.Dof }

// FieldIndex maps (pde k, mode m) to the physical field index of the
// mode-major record layout: all mode-0 coefficients first, then the
// higher modes. This is the paper's record-reorganisation optimisation
// (§II-B): the flux kernel reads only mode-0 values, and mode-major
// order makes them one contiguous block the gather can move with a
// single block copy.
func (p Params) FieldIndex(k, m int) int {
	if m == 0 {
		return k
	}
	return p.NPDE + k*(p.Dof-1) + (m - 1)
}

const dt = 1e-3

// Cost model constants (abstract ops): tuned so arithmetic intensity
// scales with the configuration as in the paper — linear spaces are
// memory-bound, quadratic ones compute-bound (the mass-matrix solve is
// O(dof²) per PDE, so quadratic spaces do ~11× the cell work on ~3×
// the data).
const (
	fluxOpsPerPDE  = 20 // Rusanov flux evaluation per equation
	expandOpsPerK  = 4  // mode projection per (pde, mode) pair
	advanceOpsPerK = 6  // state update per field
	faceGeomOps    = 8  // per-face geometry handling
)

func fluxKernelOps(p Params) int64 {
	return int64(faceGeomOps + fluxOpsPerPDE*p.NPDE + expandOpsPerK*p.K()*2)
}

// massSolveOps is the per-cell cost of applying the dof×dof inverse
// mass matrix to every PDE's residual.
func massSolveOps(p Params) int64 {
	return int64(2 * p.NPDE * p.Dof * p.Dof)
}

// massInv returns the (m, m') entry of the synthetic inverse mass
// matrix stored per cell (diagonally dominant, mode-coupled).
func massInv(m, mp int) float64 {
	v := 1 / float64(1+m+mp)
	if m != mp {
		v *= 0.1
	}
	return v
}

// flux computes the Rusanov numerical flux for one face and one PDE.
func flux(uL, uR, v, length float64) float64 {
	return (0.5*v*(uL+uR) - 0.5*math.Abs(v)*(uR-uL)) * length
}

// modeWeight projects a face flux onto polynomial mode m.
func modeWeight(m int) float64 { return 1 / float64(1+m) }

// Instance is one materialised FEM problem on one machine.
type Instance struct {
	P    Params
	Mesh *Mesh
	M    *sim.Machine

	U, R     *svm.Array // cell state and residual, K fields each
	Uold     *svm.Array // previous-level state (two-level integrator)
	Aux      *svm.Array // per-cell dof×dof inverse mass matrix
	FaceGeom *svm.Array // vel, len per face
	CellGeom *svm.Array // area per cell
	LeftIdx  *svm.IndexArray
	RightIdx *svm.IndexArray

	// Stream-version structures (Fig. 10(a)): per-face fluxes stored
	// sequentially, then gathered per cell through the cell→face map.
	Flux     *svm.Array // K fields per face
	Sign     *svm.Array // 3 fields per cell: flux orientation
	CellFace [3]*svm.IndexArray
}

// NewInstance allocates and initialises the problem on a fresh machine.
func NewInstance(p Params) (*Instance, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	mesh := p.Mesh
	if mesh == nil {
		mesh = PaperMesh()
	}
	m := sim.MustNew(sim.PentiumD8300())
	K := p.K()

	ufields := make([]svm.Field, K)
	for i := range ufields {
		ufields[i] = svm.F(fmt.Sprintf("u%d", i), 8)
	}
	afields := make([]svm.Field, p.Dof*p.Dof)
	for i := range afields {
		afields[i] = svm.F(fmt.Sprintf("m%d", i), 8)
	}
	inst := &Instance{
		P: p, Mesh: mesh, M: m,
		U:        svm.NewArray(m, "U", svm.Layout("cell", ufields...), mesh.Cells),
		Uold:     svm.NewArray(m, "Uold", svm.Layout("old", ufields...), mesh.Cells),
		R:        svm.NewArray(m, "R", svm.Layout("res", ufields...), mesh.Cells),
		Aux:      svm.NewArray(m, "Aux", svm.Layout("aux", afields...), mesh.Cells),
		FaceGeom: svm.NewArray(m, "face", svm.Layout("face", svm.F("vel", 8), svm.F("len", 8)), mesh.Faces),
		CellGeom: svm.NewArray(m, "geom", svm.Layout("geom", svm.F("area", 8)), mesh.Cells),
		LeftIdx:  svm.NewIndexArray(m, "left", mesh.Faces),
		RightIdx: svm.NewIndexArray(m, "right", mesh.Faces),
	}
	for f := 0; f < mesh.Faces; f++ {
		inst.LeftIdx.Idx[f] = mesh.Left[f]
		inst.RightIdx.Idx[f] = mesh.Right[f]
		inst.FaceGeom.Set(f, 0, mesh.Vel[f])
		inst.FaceGeom.Set(f, 1, mesh.Len[f])
	}
	for c := 0; c < mesh.Cells; c++ {
		inst.CellGeom.Set(c, 0, mesh.Area[c])
		// Per-cell mass matrices, perturbed by a cell-dependent factor
		// (on a real unstructured mesh every cell's matrix differs).
		jac := 1 + 0.1*float64(c%7)/7
		for mm := 0; mm < p.Dof; mm++ {
			for mp := 0; mp < p.Dof; mp++ {
				inst.Aux.Set(c, mm*p.Dof+mp, massInv(mm, mp)*jac)
			}
		}
	}
	setPhys := func(a *svm.Array) func(int, int, float64) {
		return func(c, f int, v float64) {
			a.Set(c, p.FieldIndex(f/p.Dof, f%p.Dof), v)
		}
	}
	mesh.InitBlastWave(p.NPDE, p.Dof, setPhys(inst.U))
	mesh.InitBlastWave(p.NPDE, p.Dof, setPhys(inst.Uold))
	return inst, nil
}

// modeZeroFields returns the field indices of the mode-0 coefficient of
// every PDE — the only fields the flux kernel reads, so gathers copy
// just those (the paper's selective field copy).
func (p Params) modeZeroFields() []int {
	out := make([]int, p.NPDE)
	for k := range out {
		out[k] = p.FieldIndex(k, 0)
	}
	return out
}

// RunRegular executes Steps time steps in conventional style:
// interleaved loops over faces and cells.
func (inst *Instance) RunRegular(ecfg exec.Config) exec.Result {
	p, mesh := inst.P, inst.Mesh
	K := p.K()
	m0 := p.modeZeroFields()

	faceLoop := exec.Loop{
		Name: "faces", N: mesh.Faces,
		Ops: func(i int) int64 { return fluxKernelOps(p) },
		Refs: func(f int, emit func(sim.Addr, int, bool)) {
			emit(inst.LeftIdx.ElemAddr(f), svm.IndexElemBytes, false)
			emit(inst.RightIdx.ElemAddr(f), svm.IndexElemBytes, false)
			emit(inst.FaceGeom.RecordAddr(f), 16, false)
			l, r := int(inst.LeftIdx.Idx[f]), int(inst.RightIdx.Idx[f])
			_ = m0
			emit(inst.U.FieldAddr(l, 0), 8*p.NPDE, false)
			emit(inst.U.FieldAddr(r, 0), 8*p.NPDE, false)
			// Residual read-modify-write on both sides, all K fields.
			emit(inst.R.RecordAddr(l), K*8, false)
			emit(inst.R.RecordAddr(l), K*8, true)
			emit(inst.R.RecordAddr(r), K*8, false)
			emit(inst.R.RecordAddr(r), K*8, true)
		},
		Body: func(f int) {
			l, r := int(inst.LeftIdx.Idx[f]), int(inst.RightIdx.Idx[f])
			v, ln := inst.FaceGeom.At(f, 0), inst.FaceGeom.At(f, 1)
			for k := 0; k < p.NPDE; k++ {
				fl := flux(inst.U.At(l, p.FieldIndex(k, 0)), inst.U.At(r, p.FieldIndex(k, 0)), v, ln)
				for md := 0; md < p.Dof; md++ {
					w := fl * modeWeight(md)
					inst.R.Add(l, p.FieldIndex(k, md), -w)
					inst.R.Add(r, p.FieldIndex(k, md), +w)
				}
			}
		},
	}
	cellLoop := exec.Loop{
		Name: "cells", N: mesh.Cells,
		Ops: func(i int) int64 { return massSolveOps(p) + int64(advanceOpsPerK*K) },
		AffineRefs: []sim.BulkRef{
			{Base: inst.CellGeom.RecordAddr(0), Size: 8, Stride: inst.CellGeom.Layout.Stride},
			{Base: inst.Aux.RecordAddr(0), Size: p.Dof * p.Dof * 8, Stride: inst.Aux.Layout.Stride},
			{Base: inst.R.RecordAddr(0), Size: K * 8, Stride: inst.R.Layout.Stride},
			{Base: inst.U.RecordAddr(0), Size: K * 8, Stride: inst.U.Layout.Stride},
			{Base: inst.Uold.RecordAddr(0), Size: K * 8, Stride: inst.Uold.Layout.Stride},
			{Base: inst.U.RecordAddr(0), Size: K * 8, Stride: inst.U.Layout.Stride, Write: true},
			{Base: inst.Uold.RecordAddr(0), Size: K * 8, Stride: inst.Uold.Layout.Stride, Write: true},
			{Base: inst.R.RecordAddr(0), Size: K * 8, Stride: inst.R.Layout.Stride, Write: true},
		},
		Body: func(c int) {
			area := inst.CellGeom.At(c, 0)
			for k := 0; k < p.NPDE; k++ {
				for md := 0; md < p.Dof; md++ {
					var acc float64
					for mp := 0; mp < p.Dof; mp++ {
						acc += inst.Aux.At(c, md*p.Dof+mp) * inst.R.At(c, p.FieldIndex(k, mp))
					}
					kk := p.FieldIndex(k, md)
					u := inst.U.At(c, kk)
					inst.U.Set(c, kk, 0.6*u+0.4*inst.Uold.At(c, kk)+dt*acc/area)
					inst.Uold.Set(c, kk, u)
				}
			}
			for k := 0; k < K; k++ {
				inst.R.Set(c, k, 0)
			}
		},
	}

	var total exec.Result
	for s := 0; s < p.Steps; s++ {
		r := exec.RunRegular(inst.M, ecfg, faceLoop, cellLoop)
		total.Cycles += r.Cycles
		total.Run = r.Run
	}
	return total
}

// Graph builds the streamFEM SDF graph of Fig. 10(a): a face phase
// (one multi-index gather pulls both cells' mode-0 coefficients per
// face, ComputeFlux evaluates the Rusanov fluxes, and the per-mode
// contributions scatter-add into the residual array through the
// left/right index arrays) and a cell phase whose GatherCell and
// AdvanceCell kernels — fused by the compiler, the optimisation
// §IV-C.1 credits — apply the inverse mass matrix and advance the
// two-level state. The residual scatter-adds stay temporal (a
// read-modify-write cannot use movntq), which is why the SRF is sized
// to leave them cache room.
func (inst *Instance) Graph() *sdf.Graph {
	p, mesh := inst.P, inst.Mesh
	K := p.K()
	m0 := p.modeZeroFields()

	kfields := func(prefix string) []svm.Field {
		out := make([]svm.Field, K)
		for i := range out {
			out[i] = svm.F(fmt.Sprintf("%s%d", prefix, i), 8)
		}
		return out
	}

	computeFlux := &svm.Kernel{
		Name: "ComputeFlux", OpsPerElem: fluxKernelOps(p),
		Fn: func(ins, outs []*svm.Stream, start, n int) int64 {
			ulr, fg := ins[0], ins[1] // ulr: left fields then right fields
			fpos, fneg := outs[0], outs[1]
			for i := start; i < start+n; i++ {
				v, ln := fg.At(i, 0), fg.At(i, 1)
				for k := 0; k < p.NPDE; k++ {
					fl := flux(ulr.At(i, k), ulr.At(i, p.NPDE+k), v, ln)
					for md := 0; md < p.Dof; md++ {
						w := fl * modeWeight(md)
						fi := p.FieldIndex(k, md)
						fpos.Set(i, fi, -w)
						fneg.Set(i, fi, +w)
					}
				}
			}
			return 0
		},
	}
	gatherCell := &svm.Kernel{
		Name: "GatherCell", OpsPerElem: massSolveOps(p),
		Fn: func(ins, outs []*svm.Stream, start, n int) int64 {
			rs, geom, aux := ins[0], ins[1], ins[2]
			delta := outs[0]
			for i := start; i < start+n; i++ {
				area := geom.At(i, 0)
				for k := 0; k < p.NPDE; k++ {
					for md := 0; md < p.Dof; md++ {
						var acc float64
						for mp := 0; mp < p.Dof; mp++ {
							acc += aux.At(i, md*p.Dof+mp) * rs.At(i, p.FieldIndex(k, mp))
						}
						delta.Set(i, p.FieldIndex(k, md), dt*acc/area)
					}
				}
			}
			return 0
		},
	}
	advanceCell := &svm.Kernel{
		Name: "AdvanceCell", OpsPerElem: int64(advanceOpsPerK * K),
		Fn: func(ins, outs []*svm.Stream, start, n int) int64 {
			us, uold, delta := ins[0], ins[1], ins[2]
			unew, uoldNew, rzero := outs[0], outs[1], outs[2]
			for i := start; i < start+n; i++ {
				for k := 0; k < K; k++ {
					u := us.At(i, k)
					unew.Set(i, k, 0.6*u+0.4*uold.At(i, k)+delta.At(i, k))
					uoldNew.Set(i, k, u)
					rzero.Set(i, k, 0)
				}
			}
			return 0
		},
	}

	g := sdf.New("streamFEM-" + inst.P.Name())

	// Face phase: one multi-index gather pulls both sides' mode-0
	// coefficients per face (the mode-major record layout makes them a
	// single contiguous block; left and right cells sit on nearby
	// lines, so one pass reuses them).
	ulrFields := make([]svm.Field, 2*p.NPDE)
	for k := 0; k < p.NPDE; k++ {
		ulrFields[k] = svm.F(fmt.Sprintf("ul%d", k), 8)
		ulrFields[p.NPDE+k] = svm.F(fmt.Sprintf("ur%d", k), 8)
	}
	ulr := g.Input(svm.NewStream("ULR", mesh.Faces, ulrFields...),
		sdf.Bind(inst.U, fieldNames(inst.U.Layout, m0)...).MultiIndexed(inst.LeftIdx, inst.RightIdx))
	fgS := svm.StreamOf("FG", mesh.Faces, inst.FaceGeom.Layout, inst.FaceGeom.Layout.AllFields())
	fg := g.Input(fgS, sdf.Bind(inst.FaceGeom))
	fluxOut := g.AddKernel(computeFlux, []*sdf.Edge{ulr, fg}, []*svm.Stream{
		svm.NewStream("Fpos", mesh.Faces, kfields("fp")...),
		svm.NewStream("Fneg", mesh.Faces, kfields("fn")...),
	})
	g.Output(fluxOut[0], sdf.Bind(inst.R).Indexed(inst.LeftIdx).Accumulate())
	g.Output(fluxOut[1], sdf.Bind(inst.R).Indexed(inst.RightIdx).Accumulate())

	// Cell phase.
	rs := g.Input(svm.StreamOf("Rs", mesh.Cells, inst.R.Layout, inst.R.Layout.AllFields()), sdf.Bind(inst.R))
	geom := g.Input(svm.StreamOf("Geom", mesh.Cells, inst.CellGeom.Layout, inst.CellGeom.Layout.AllFields()), sdf.Bind(inst.CellGeom))
	aux := g.Input(svm.StreamOf("Mass", mesh.Cells, inst.Aux.Layout, inst.Aux.Layout.AllFields()), sdf.Bind(inst.Aux))
	delta := g.AddKernel(gatherCell, []*sdf.Edge{rs, geom, aux},
		[]*svm.Stream{svm.NewStream("Delta", mesh.Cells, kfields("d")...)})
	us := g.Input(svm.StreamOf("Us", mesh.Cells, inst.U.Layout, inst.U.Layout.AllFields()), sdf.Bind(inst.U))
	uolds := g.Input(svm.StreamOf("Uolds", mesh.Cells, inst.Uold.Layout, inst.Uold.Layout.AllFields()), sdf.Bind(inst.Uold))
	adv := g.AddKernel(advanceCell, []*sdf.Edge{us, uolds, delta[0]}, []*svm.Stream{
		svm.NewStream("Unew", mesh.Cells, kfields("un")...),
		svm.NewStream("Uoldnew", mesh.Cells, kfields("uo")...),
		svm.NewStream("Rzero", mesh.Cells, kfields("rz")...),
	})
	g.Output(adv[0], sdf.Bind(inst.U))
	g.Output(adv[1], sdf.Bind(inst.Uold))
	g.Output(adv[2], sdf.Bind(inst.R))
	return g
}

func fieldNames(l svm.RecordLayout, idx []int) []string {
	out := make([]string, len(idx))
	for i, fi := range idx {
		out[i] = l.Fields[fi].Name
	}
	return out
}

// RunStream executes Steps time steps of the compiled stream program on
// both hardware contexts.
func (inst *Instance) RunStream(ecfg exec.Config) (exec.Result, error) {
	opt := compiler.DefaultOptions(svm.DefaultSRF(inst.M))
	opt.FuseKernels = !inst.P.NoFuse
	return inst.RunStreamWith(ecfg, opt)
}

// RunStreamWith executes with explicit compiler options, for the
// ablation benches (double buffering, fusion, strip sizes).
func (inst *Instance) RunStreamWith(ecfg exec.Config, opt compiler.Options) (exec.Result, error) {
	g := inst.Graph()
	prog, err := compiler.Compile(g, opt)
	if err != nil {
		return exec.Result{}, err
	}
	var total exec.Result
	for s := 0; s < inst.P.Steps; s++ {
		r, err := exec.RunStream2Ctx(inst.M, prog, ecfg)
		if err != nil {
			return total, err
		}
		total.Cycles += r.Cycles
		total.Run = r.Run
		total.Queue = r.Queue
		total.Recovery.Accumulate(r.Recovery)
		for k := range r.KindCycles {
			total.KindCycles[k] += r.KindCycles[k]
		}
	}
	return total, nil
}

// Result is one regular-vs-stream comparison.
type Result struct {
	Params  Params
	Regular exec.Result
	Stream  exec.Result
	Speedup float64
	// Graph is the stream version's dataflow graph, for post-run
	// analysis (advisor calibration against the critical path).
	Graph *sdf.Graph
}

// Run executes the configuration in both styles on separate machines
// and verifies the final states agree.
func Run(p Params, ecfg exec.Config) (Result, error) {
	reg, err := NewInstance(p)
	if err != nil {
		return Result{}, err
	}
	regRes := reg.RunRegular(ecfg)
	if err := ecfg.Aborted("stage"); err != nil {
		return Result{}, err
	}

	str, err := NewInstance(p)
	if err != nil {
		return Result{}, err
	}
	strRes, err := str.RunStream(ecfg)
	if err != nil {
		return Result{}, err
	}

	if err := compareStates("fem "+p.Name(), reg.U.Data, str.U.Data, 1e-9); err != nil {
		return Result{}, err
	}
	return Result{Params: p, Regular: regRes, Stream: strRes, Speedup: exec.Speedup(regRes, strRes), Graph: str.Graph()}, nil
}

// compareStates checks relative agreement between two runs (scatter-add
// order differs between the styles, so exact equality is too strict).
func compareStates(what string, a, b []float64, tol float64) error {
	if len(a) != len(b) {
		return fmt.Errorf("%s: state lengths %d vs %d", what, len(a), len(b))
	}
	for i := range a {
		diff := math.Abs(a[i] - b[i])
		scale := math.Max(math.Abs(a[i]), math.Abs(b[i]))
		if scale < 1 {
			scale = 1
		}
		if diff/scale > tol {
			return fmt.Errorf("%s: element %d differs: %v vs %v", what, i, a[i], b[i])
		}
	}
	return nil
}
