package fem

import (
	"strings"
	"testing"

	"streamgpp/internal/exec"
	"streamgpp/internal/sdf"
)

func TestGraphValidatesForAllConfigs(t *testing.T) {
	for _, p := range []Params{EulerLin, EulerQuad, MHDLin, MHDQuad} {
		inst, err := NewInstance(p)
		if err != nil {
			t.Fatal(err)
		}
		g := inst.Graph()
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		phases, err := g.Phases()
		if err != nil {
			t.Fatal(err)
		}
		if len(phases) != 2 {
			t.Fatalf("%s: %d phases, want 2 (faces, cells)", p.Name(), len(phases))
		}
		// The face phase iterates faces, the cell phase cells.
		if phases[0].N != inst.Mesh.Faces || phases[1].N != inst.Mesh.Cells {
			t.Fatalf("%s: phase sizes %d/%d", p.Name(), phases[0].N, phases[1].N)
		}
	}
}

func TestGraphDotMentionsKernels(t *testing.T) {
	inst, err := NewInstance(EulerLin)
	if err != nil {
		t.Fatal(err)
	}
	dot := inst.Graph().Dot()
	for _, want := range []string{"ComputeFlux", "GatherCell", "AdvanceCell", "color=red"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("dot missing %q", want)
		}
	}
}

func TestFieldIndexBijective(t *testing.T) {
	for _, p := range []Params{EulerLin, MHDQuad} {
		seen := map[int]bool{}
		for k := 0; k < p.NPDE; k++ {
			for m := 0; m < p.Dof; m++ {
				fi := p.FieldIndex(k, m)
				if fi < 0 || fi >= p.K() {
					t.Fatalf("%s: FieldIndex(%d,%d)=%d out of range", p.Name(), k, m, fi)
				}
				if seen[fi] {
					t.Fatalf("%s: FieldIndex collision at %d", p.Name(), fi)
				}
				seen[fi] = true
			}
		}
		// Mode-0 fields must be the leading contiguous block (the
		// record-reorganisation optimisation the gathers rely on).
		for k := 0; k < p.NPDE; k++ {
			if p.FieldIndex(k, 0) != k {
				t.Fatalf("%s: mode-0 of pde %d at %d", p.Name(), k, p.FieldIndex(k, 0))
			}
		}
	}
}

func TestFusionAblationStillCorrect(t *testing.T) {
	p := Params{Mesh: NewMesh(10, 10), NPDE: 2, Dof: 2, Steps: 2, NoFuse: true}
	res, err := Run(p, exec.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stream.Cycles == 0 {
		t.Fatal("no cycles")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() uint64 {
		inst, err := NewInstance(Params{Mesh: NewMesh(12, 12), NPDE: 2, Dof: 2, Steps: 1})
		if err != nil {
			t.Fatal(err)
		}
		res, err := inst.RunStream(exec.Defaults())
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %d vs %d", a, b)
	}
}

// The stream program never references the regular version's residual
// array: the flux accumulation happens through the scatter-adds only.
func TestGraphBindingsConsistent(t *testing.T) {
	inst, err := NewInstance(EulerLin)
	if err != nil {
		t.Fatal(err)
	}
	g := inst.Graph()
	adds := 0
	for _, e := range g.Edges {
		if e.Scatter != nil && e.Scatter.Mode != 0 {
			adds++
			if e.Scatter.Array != inst.R {
				t.Fatal("scatter-add to a non-residual array")
			}
		}
		if e.Gather != nil && e.Gather.Index == nil && len(e.Gather.Multi) == 0 {
			// Sequential gathers must cover whole arrays.
			if e.Stream.N > e.Gather.Array.N {
				t.Fatalf("sequential gather %s overruns", e.Name())
			}
		}
	}
	if adds != 2 { // Fpos and Fneg
		t.Fatalf("%d scatter-adds, want 2", adds)
	}
	_ = sdf.Binding{}
}
