package fem

import (
	"math"
	"testing"

	"streamgpp/internal/exec"
)

func TestMeshConstruction(t *testing.T) {
	m := NewMesh(4, 5)
	if m.Cells != 40 {
		t.Fatalf("cells %d", m.Cells)
	}
	// Faces: diag (20) + bottom (20) + right (20) + top boundary (5) +
	// left boundary (4).
	if m.Faces != 69 {
		t.Fatalf("faces %d", m.Faces)
	}
	for f := 0; f < m.Faces; f++ {
		if m.Left[f] < 0 || int(m.Left[f]) >= m.Cells || m.Right[f] < 0 || int(m.Right[f]) >= m.Cells {
			t.Fatalf("face %d references cell out of range", f)
		}
		if m.Boundary[f] && m.Left[f] != m.Right[f] {
			t.Fatalf("boundary face %d has distinct sides", f)
		}
	}
}

func TestMeshEveryCellHasFaces(t *testing.T) {
	m := NewMesh(6, 7)
	touch := make([]int, m.Cells)
	for f := 0; f < m.Faces; f++ {
		touch[m.Left[f]]++
		if m.Right[f] != m.Left[f] {
			touch[m.Right[f]]++
		}
	}
	for c, n := range touch {
		if n < 2 {
			t.Fatalf("cell %d touched by only %d faces", c, n)
		}
	}
}

func TestPaperMeshSize(t *testing.T) {
	m := PaperMesh()
	if m.Cells != 4816 {
		t.Fatalf("paper mesh has %d cells, want 4816", m.Cells)
	}
}

func TestMeshForCells(t *testing.T) {
	for _, n := range []int{100, 1000, 4816, 20000} {
		m := MeshForCells(n)
		if m.Cells < n*8/10 || m.Cells > n*13/10 {
			t.Fatalf("MeshForCells(%d) = %d cells", n, m.Cells)
		}
	}
}

func TestParamsValidateAndName(t *testing.T) {
	if EulerLin.Name() != "Euler-lin" || MHDQuad.Name() != "MHD-quad" {
		t.Fatalf("names %s %s", EulerLin.Name(), MHDQuad.Name())
	}
	if err := (Params{NPDE: 0, Dof: 3, Steps: 1}).Validate(); err == nil {
		t.Error("NPDE=0 accepted")
	}
	if err := (Params{NPDE: 4, Dof: 3, Steps: 0}).Validate(); err == nil {
		t.Error("Steps=0 accepted")
	}
	if EulerQuad.K() != 40 || MHDQuad.K() != 60 {
		t.Fatalf("K: %d %d", EulerQuad.K(), MHDQuad.K())
	}
}

func TestConservation(t *testing.T) {
	// Interior fluxes cancel and boundary faces are reflective, so the
	// residual sums to zero per mode; the per-cell mass matrices then
	// redistribute it, so the mode-0 total is conserved only up to the
	// matrix variation. Guard against gross sign/accounting errors.
	p := Params{Mesh: NewMesh(8, 8), NPDE: 2, Dof: 2, Steps: 5}
	inst, err := NewInstance(p)
	if err != nil {
		t.Fatal(err)
	}
	total0 := 0.0
	for c := 0; c < inst.Mesh.Cells; c++ {
		total0 += inst.U.At(c, 0)
	}
	inst.RunRegular(exec.Defaults())
	total1 := 0.0
	for c := 0; c < inst.Mesh.Cells; c++ {
		total1 += inst.U.At(c, 0)
	}
	if math.Abs(total1-total0) > 1e-3*math.Abs(total0) {
		t.Fatalf("mode-0 mass drifted: %v -> %v", total0, total1)
	}
}

func TestStateEvolves(t *testing.T) {
	p := Params{Mesh: NewMesh(8, 8), NPDE: 2, Dof: 2, Steps: 2}
	inst, _ := NewInstance(p)
	before := inst.U.CloneData()
	inst.RunRegular(exec.Defaults())
	same := true
	for i := range before {
		if before[i] != inst.U.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("state did not evolve")
	}
}

func TestStreamMatchesRegularSmall(t *testing.T) {
	p := Params{Mesh: NewMesh(10, 10), NPDE: 3, Dof: 2, Steps: 3}
	res, err := Run(p, exec.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if res.Regular.Cycles == 0 || res.Stream.Cycles == 0 {
		t.Fatal("zero cycles")
	}
}

func TestAllPaperConfigsAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-size configs are slow")
	}
	for _, p := range []Params{EulerLin, EulerQuad, MHDLin, MHDQuad} {
		p.Steps = 1
		res, err := Run(p, exec.Defaults())
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		t.Logf("%s: speedup %.3f (reg %d, str %d)", p.Name(), res.Speedup, res.Regular.Cycles, res.Stream.Cycles)
	}
}

func TestSpeedupInPaperBand(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-size configs are slow")
	}
	// Fig. 11(a): 1.13x–1.26x, with smaller speedups for the
	// compute-bound quadratic spaces.
	lin, err := Run(EulerLin, exec.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	quad, err := Run(EulerQuad, exec.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("Euler-lin %.3f, Euler-quad %.3f", lin.Speedup, quad.Speedup)
	if lin.Speedup < 1.02 || lin.Speedup > 1.6 {
		t.Errorf("Euler-lin speedup %.2f, paper band 1.13–1.26", lin.Speedup)
	}
	if quad.Speedup > lin.Speedup+0.02 {
		t.Errorf("quadratic (%.2f) should not beat linear (%.2f): it is compute-bound", quad.Speedup, lin.Speedup)
	}
}
