// Package fem implements streamFEM (§IV-C.1, Fig. 10(a)): a simplified
// discontinuous-Galerkin conservation-law solver on an unstructured
// triangular mesh, in regular and streaming style.
//
// The paper's test case is a blast-wave computation over 4816
// triangular cells, run for two PDE sets (Euler: 4 equations, MHD: 6)
// and two polynomial spaces (linear: 3 degrees of freedom, quadratic:
// 10). Those four parameters fix what matters for the mapping study —
// record sizes (nPDE×dof×8 bytes per cell, 96 B to 480 B) and
// arithmetic intensity — so this implementation keeps them as knobs
// while simplifying the physics to per-field Rusanov fluxes with
// mode-weighted residual projection (the real DG quadrature adds
// arithmetic but no new access patterns; see DESIGN.md).
package fem

import (
	"fmt"
	"math"
)

// Mesh is an unstructured triangular mesh produced by triangulating a
// rows×cols quad grid (two triangles per quad), matching the paper's
// 4816-cell test case at 56×43.
type Mesh struct {
	Cells int
	Faces int
	// Left and Right are the cells adjacent to each face. Boundary
	// faces use Right == Left (a ghost mirror), which makes their net
	// flux contribution cancel — a reflective wall.
	Left, Right []int32
	// Vel is the face-normal advection velocity; Len the face length.
	Vel, Len []float64
	// Area is the cell area.
	Area []float64
	// Boundary marks ghost faces.
	Boundary []bool
	// CellFaces lists each cell's three faces and Signs the side the
	// cell is on (-1 = left/outflow, +1 = right/inflow, 0 = boundary,
	// whose two ghost contributions cancel). This is the cell→face map
	// streamFEM's GatherCell kernel uses to accumulate residuals by
	// gathering fluxes instead of scatter-adding them (Fig. 10(a)).
	CellFaces [][3]int32
	Signs     [][3]float64
}

// NewMesh triangulates a rows×cols quad grid. Cells = 2×rows×cols.
func NewMesh(rows, cols int) *Mesh {
	if rows <= 0 || cols <= 0 {
		panic("fem: mesh dimensions must be positive")
	}
	m := &Mesh{Cells: 2 * rows * cols}
	// Cell ids: quad (r,c) holds triangle A = 2*(r*cols+c) (lower
	// right: bottom and right edges) and B = A+1 (upper left: top and
	// left edges), separated by the diagonal.
	triA := func(r, c int) int32 { return int32(2 * (r*cols + c)) }
	triB := func(r, c int) int32 { return triA(r, c) + 1 }

	addFace := func(l, r int32, vel, length float64) {
		boundary := r < 0
		if boundary {
			r = l
		}
		m.Left = append(m.Left, l)
		m.Right = append(m.Right, r)
		m.Vel = append(m.Vel, vel)
		m.Len = append(m.Len, length)
		m.Boundary = append(m.Boundary, boundary)
	}

	// A deterministic, smoothly varying velocity field.
	vel := func(r, c int, dir int) float64 {
		x := float64(c)/float64(cols) - 0.5
		y := float64(r)/float64(rows) - 0.5
		switch dir {
		case 0: // horizontal face: normal is y
			return math.Sin(2*math.Pi*x) + 0.3
		case 1: // vertical face: normal is x
			return math.Cos(2*math.Pi*y) - 0.2
		default: // diagonal
			return 0.5 * (math.Sin(2*math.Pi*x) + math.Cos(2*math.Pi*y))
		}
	}

	diag := math.Sqrt2
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			// Diagonal face between the quad's two triangles.
			addFace(triA(r, c), triB(r, c), vel(r, c, 2), diag)
			// Bottom face: A(r,c) against B(r-1,c).
			if r > 0 {
				addFace(triA(r, c), triB(r-1, c), vel(r, c, 0), 1)
			} else {
				addFace(triA(r, c), -1, vel(r, c, 0), 1)
			}
			// Right face: A(r,c) against B(r,c+1).
			if c+1 < cols {
				addFace(triA(r, c), triB(r, c+1), vel(r, c, 1), 1)
			} else {
				addFace(triA(r, c), -1, vel(r, c, 1), 1)
			}
			// Grid-boundary top/left faces (owned by B).
			if r == rows-1 {
				addFace(triB(r, c), -1, vel(r+1, c, 0), 1)
			}
			if c == 0 {
				addFace(triB(r, c), -1, vel(r, c-1, 1), 1)
			}
		}
	}
	m.Faces = len(m.Left)
	m.Area = make([]float64, m.Cells)
	for i := range m.Area {
		m.Area[i] = 0.5
	}

	// Invert the face list into the per-cell map.
	m.CellFaces = make([][3]int32, m.Cells)
	m.Signs = make([][3]float64, m.Cells)
	count := make([]int, m.Cells)
	attach := func(cell int32, face int, sign float64) {
		c := int(cell)
		if count[c] >= 3 {
			panic(fmt.Sprintf("fem: cell %d has more than 3 faces", c))
		}
		m.CellFaces[c][count[c]] = int32(face)
		m.Signs[c][count[c]] = sign
		count[c]++
	}
	for f := 0; f < m.Faces; f++ {
		if m.Boundary[f] {
			attach(m.Left[f], f, 0) // ghost contributions cancel
			continue
		}
		attach(m.Left[f], f, -1)
		attach(m.Right[f], f, +1)
	}
	for c, n := range count {
		if n != 3 {
			panic(fmt.Sprintf("fem: cell %d has %d faces, want 3", c, n))
		}
	}
	return m
}

// PaperMesh returns the 4816-cell mesh of the paper's evaluation
// (56 × 43 quads).
func PaperMesh() *Mesh { return NewMesh(56, 43) }

// MeshForCells picks grid dimensions giving approximately n cells.
func MeshForCells(n int) *Mesh {
	if n < 2 {
		n = 2
	}
	side := int(math.Sqrt(float64(n) / 2))
	if side < 1 {
		side = 1
	}
	cols := (n/2 + side - 1) / side
	return NewMesh(side, cols)
}

// InitBlastWave sets a blast-wave initial condition: field values are a
// background level with a strong pulse near the mesh centre, the
// paper's shock-capturing test case.
func (m *Mesh) InitBlastWave(k, dof int, set func(cell, field int, v float64)) {
	centre := m.Cells / 2
	for c := 0; c < m.Cells; c++ {
		d := float64(c-centre) / float64(m.Cells)
		pulse := math.Exp(-d * d * 400)
		for p := 0; p < k; p++ {
			for mmode := 0; mmode < dof; mmode++ {
				v := 0.1 + pulse*(1+0.1*float64(p))
				if mmode > 0 {
					v *= 0.05 / float64(mmode) // higher modes start small
				}
				set(c, p*dof+mmode, v)
			}
		}
	}
}
