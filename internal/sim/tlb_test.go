package sim

import (
	"testing"
	"testing/quick"
)

func TestTLBHitAfterInstall(t *testing.T) {
	tlb := NewTLB(4, 4096)
	if tlb.Translate(0x1000) {
		t.Fatal("hit in empty TLB")
	}
	if !tlb.Translate(0x1fff) {
		t.Fatal("miss within installed page")
	}
	if tlb.Translate(0x2000) {
		t.Fatal("hit in uninstalled page")
	}
}

func TestTLBLRUReplacement(t *testing.T) {
	tlb := NewTLB(2, 4096)
	tlb.Translate(0x0000) // page 0
	tlb.Translate(0x1000) // page 1
	tlb.Translate(0x0000) // touch page 0: page 1 is LRU
	tlb.Translate(0x2000) // evicts page 1
	if !tlb.Translate(0x0000) {
		t.Fatal("page 0 evicted out of LRU order")
	}
	if tlb.Translate(0x1000) {
		t.Fatal("page 1 should have been evicted")
	}
}

func TestTLBCoverage(t *testing.T) {
	tlb := NewTLB(64, 4096)
	if got := tlb.Coverage(); got != 64*4096 {
		t.Fatalf("coverage %d", got)
	}
}

func TestTLBFlush(t *testing.T) {
	tlb := NewTLB(4, 4096)
	tlb.Translate(0)
	tlb.Flush()
	if tlb.Translate(0) {
		t.Fatal("hit after flush")
	}
}

func TestTLBStats(t *testing.T) {
	tlb := NewTLB(4, 4096)
	tlb.Translate(0)
	tlb.Translate(0)
	tlb.Translate(4096)
	if tlb.Stats.Hits != 1 || tlb.Stats.Misses != 2 {
		t.Fatalf("stats %+v", tlb.Stats)
	}
}

// Property: within capacity, every installed page stays resident.
func TestTLBNoSpuriousEvictions(t *testing.T) {
	f := func(pages []uint8) bool {
		tlb := NewTLB(256, 4096)
		seen := map[uint64]bool{}
		for _, p := range pages {
			addr := uint64(p) * 4096
			hit := tlb.Translate(addr)
			if seen[uint64(p)] && !hit {
				return false // evicted despite fitting (≤256 distinct pages)
			}
			seen[uint64(p)] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBusRowLocality(t *testing.T) {
	cfg := PentiumD8300()
	bus := NewBus(cfg)
	// Two transfers in the same row: second has no row-miss overhead.
	d1 := bus.Acquire(0, 0, 0, 128, xferFill)
	d2 := bus.Acquire(0, d1, 128, 128, xferFill)
	sameRow := d2 - d1
	d3 := bus.Acquire(0, d2, 1<<20, 128, xferFill) // far away: row miss
	rowMiss := d3 - d2
	if rowMiss <= sameRow {
		t.Fatalf("row miss (%d) should cost more than row hit (%d)", rowMiss, sameRow)
	}
	if rowMiss-sameRow < cfg.RowMissOverhead {
		t.Fatalf("row switch overhead %d, want >= %d", rowMiss-sameRow, cfg.RowMissOverhead)
	}
}

func TestBusSerialisesTransfers(t *testing.T) {
	bus := NewBus(PentiumD8300())
	d1 := bus.Acquire(0, 0, 0, 128, xferFill)
	// A transfer requested at time 0 while the bus is busy starts after d1.
	d2 := bus.Acquire(0, 0, 128, 128, xferFill)
	if d2 <= d1 {
		t.Fatalf("concurrent transfer finished at %d, before first at %d", d2, d1)
	}
}

func TestBusMemMemPenalty(t *testing.T) {
	cfg := PentiumD8300()
	bus := NewBus(cfg)
	// Context 0 streams; then context 1 transfers within the window.
	bus.Acquire(0, 0, 0, 128, xferFill)
	d1 := bus.Acquire(1, bus.BusyUntil(), 128, 128, xferFill)
	occWith := d1 - 0 // includes penalty

	bus2 := NewBus(cfg)
	bus2.Acquire(1, 0, 0, 128, xferFill)
	start := bus2.BusyUntil() + cfg.MemMemWindow + 1
	d2 := bus2.Acquire(1, start, 128, 128, xferFill)
	occWithout := d2 - start
	_ = occWith
	if occWithout == 0 {
		t.Fatal("zero occupancy")
	}
}

func TestBusStats(t *testing.T) {
	bus := NewBus(PentiumD8300())
	bus.Acquire(0, 0, 0, 128, xferFill)
	bus.Acquire(0, 0, 128, 128, xferFill)
	if bus.Stats.Transfers != 2 || bus.Stats.Bytes != 256 {
		t.Fatalf("stats %+v", bus.Stats)
	}
}

func TestAddrSpaceDisjointAllocations(t *testing.T) {
	as := NewAddrSpace(4096)
	r1 := as.Alloc("a", 100)
	r2 := as.Alloc("b", 5000)
	r3 := as.Alloc("c", 1)
	regs := []Region{r1, r2, r3}
	for i := range regs {
		if regs[i].Base == 0 {
			t.Fatal("allocation at address 0")
		}
		if regs[i].Base%4096 != 0 {
			t.Fatalf("region %d not page aligned: %#x", i, regs[i].Base)
		}
		for j := i + 1; j < len(regs); j++ {
			if regs[i].Base < regs[j].End() && regs[j].Base < regs[i].End() {
				t.Fatalf("regions %d and %d overlap", i, j)
			}
		}
	}
	if !r1.Contains(r1.Base) || r1.Contains(r1.End()) {
		t.Fatal("Contains boundary conditions wrong")
	}
	if len(as.Regions()) != 3 {
		t.Fatalf("Regions() len %d", len(as.Regions()))
	}
}

func TestAddrSpaceZeroSize(t *testing.T) {
	as := NewAddrSpace(4096)
	r := as.Alloc("z", 0)
	if r.Size == 0 {
		t.Fatal("zero-size region")
	}
}

func TestConfigValidate(t *testing.T) {
	good := PentiumD8300()
	if err := good.Validate(); err != nil {
		t.Fatalf("preset invalid: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.FreqHz = 0 },
		func(c *Config) { c.L1Bytes = 0 },
		func(c *Config) { c.L1Bytes = 1000 },
		func(c *Config) { c.L2Ways = 0 },
		func(c *Config) { c.L2NTWays = c.L2Ways + 1 },
		func(c *Config) { c.L1Line = 48 },
		func(c *Config) { c.TLBEntries = 0 },
		func(c *Config) { c.BusBytesPerCycle = 0 },
		func(c *Config) { c.BusEff = 1.5 },
		func(c *Config) { c.RowBytes = 3000 },
		func(c *Config) { c.CPI = 0 },
		func(c *Config) { c.Quantum = 0 },
		func(c *Config) { c.SMTComputeFactor = 0 },
		func(c *Config) { c.SMTComputeMemFactor = 2 },
		func(c *Config) { c.PausePenalty = -1 },
		func(c *Config) { c.MemMemPenalty = 0.5 },
		func(c *Config) { c.NTSeqLoadFactor = 0 },
		func(c *Config) { c.PFTrain = 0 },
		func(c *Config) { c.PauseLoopCycles = 0 },
	}
	for i, mut := range mutations {
		c := PentiumD8300()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d validated", i)
		}
	}
}

func TestPrefetcherTrainsOnSequential(t *testing.T) {
	cfg := PentiumD8300()
	pf := NewPrefetcher(cfg)
	bus := NewBus(cfg)
	line := uint64(cfg.L2Line)
	for i := uint64(0); i < 4; i++ {
		pf.Advance(0, bus, 0, i*line, cfg.L2Line, true)
	}
	if pf.Stats.Trained != 1 {
		t.Fatalf("trained %d streams, want 1", pf.Stats.Trained)
	}
	if pf.Stats.Issued == 0 {
		t.Fatal("no prefetches issued")
	}
	if _, ok := pf.Claim(4 * line); !ok {
		t.Fatal("next line not prefetched")
	}
}

func TestPrefetcherIgnoresRandom(t *testing.T) {
	cfg := PentiumD8300()
	pf := NewPrefetcher(cfg)
	bus := NewBus(cfg)
	addrs := []uint64{0, 7 << 14, 3 << 18, 9 << 16, 1 << 20, 5 << 13}
	for _, a := range addrs {
		pf.Advance(0, bus, 0, a, cfg.L2Line, true)
	}
	if pf.Stats.Trained != 0 || pf.Stats.Issued != 0 {
		t.Fatalf("random misses trained the prefetcher: %+v", pf.Stats)
	}
}

func TestPrefetcherThrashesOnIntermixedStreams(t *testing.T) {
	cfg := PentiumD8300() // 2 detectors
	pf := NewPrefetcher(cfg)
	bus := NewBus(cfg)
	line := uint64(cfg.L2Line)
	base := []uint64{0, 1 << 24, 2 << 24} // three interleaved streams
	for i := uint64(0); i < 20; i++ {
		for _, b := range base {
			pf.Advance(0, bus, 0, b+i*line, cfg.L2Line, true)
		}
	}
	if pf.Stats.Trained != 0 {
		t.Fatalf("3 interleaved streams trained %d detectors (table holds %d)", pf.Stats.Trained, cfg.PFStreams)
	}
	if pf.Stats.Evicted == 0 {
		t.Fatal("no detector thrashing recorded")
	}
}

func TestPrefetcherHitKeepsStreamAlive(t *testing.T) {
	cfg := PentiumD8300()
	pf := NewPrefetcher(cfg)
	bus := NewBus(cfg)
	line := uint64(cfg.L2Line)
	// Train, then advance via prefetch hits: the stream must keep
	// issuing new prefetches as long as its detector survives.
	for i := uint64(0); i < 2; i++ {
		pf.Advance(0, bus, 0, i*line, cfg.L2Line, true)
	}
	issuedAfterTrain := pf.Stats.Issued
	if issuedAfterTrain == 0 {
		t.Fatal("training issued nothing")
	}
	if _, ok := pf.Claim(2 * line); !ok {
		t.Fatal("line 2 not prefetched")
	}
	pf.Advance(0, bus, 0, 2*line, cfg.L2Line, false) // prefetch hit
	if pf.Stats.Issued <= issuedAfterTrain {
		t.Fatal("prefetch hit did not extend the stream")
	}
}

func TestPrefetcherDeadStreamStopsExtending(t *testing.T) {
	cfg := PentiumD8300()
	pf := NewPrefetcher(cfg)
	bus := NewBus(cfg)
	line := uint64(cfg.L2Line)
	for i := uint64(0); i < 2; i++ {
		pf.Advance(0, bus, 0, i*line, cfg.L2Line, true)
	}
	// Evict the detector with other random miss streams.
	for i := uint64(0); i < 8; i++ {
		pf.Advance(0, bus, 0, (100+i*37)<<20, cfg.L2Line, true)
	}
	issued := pf.Stats.Issued
	// A prefetch hit for the dead stream must NOT extend it.
	if _, ok := pf.Claim(2 * line); ok {
		pf.Advance(0, bus, 0, 2*line, cfg.L2Line, false)
	}
	if pf.Stats.Issued != issued {
		t.Fatal("dead stream kept extending after its detector was evicted")
	}
}

func TestLevelString(t *testing.T) {
	for l, want := range map[Level]string{LevelL1: "L1", LevelL2: "L2", LevelPF: "PF", LevelMem: "MEM", LevelWC: "WC"} {
		if l.String() != want {
			t.Errorf("Level %d = %q", l, l.String())
		}
	}
	if Level(9).String() == "" {
		t.Error("unknown level empty")
	}
}
