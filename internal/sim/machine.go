package sim

import (
	"fmt"
	"sort"

	"streamgpp/internal/fault"
	"streamgpp/internal/obs"
)

// ProcState describes what a hardware context is doing; the engine uses
// it to resolve SMT resource interference between the two contexts.
type ProcState uint8

// Context activity states.
const (
	StateIdle    ProcState = iota
	StateCompute           // executing a kernel / ALU-bound burst
	StateMemory            // driving bulk memory traffic
	StateSpin              // busy-waiting with PAUSE (consumes issue slots)
	StateSleep             // MWAIT/OS-descheduled (consumes nothing)
	StateDone              // thread returned
)

// String returns a short name for the state.
func (s ProcState) String() string {
	return [...]string{"idle", "compute", "memory", "spin", "sleep", "done"}[s]
}

// Machine is a two-context SMT processor plus its memory system. Create
// one with New, allocate simulated arrays from AS, then Run one or two
// thread functions. Threads are ordinary goroutines; the engine
// serialises them in virtual time (only the context with the smallest
// local clock runs), so thread functions may freely share Go data
// structures without locks — exactly one runs at any instant.
type Machine struct {
	cfg Config
	Mem *MemSystem
	AS  *AddrSpace
	obs *obs.Registry // optional metrics registry (see SetObserver)
	tl  *obs.Timeline // optional timeline sampler (see SetTimeline)

	procs  []*proc
	nlive  int
	epoch  uint64 // virtual time at which the current Run started
	events []*Event

	// fastPath enables the cycle-exact bulk shortcut (see bulk.go).
	// Disabling it forces every bulk access through the per-access
	// reference path; differential tests compare the two.
	fastPath bool

	// flt, when non-nil, is the deterministic fault injector driving
	// the machine-level fault hooks (see fault.go). nil disables every
	// hook with zero timing effect.
	flt *fault.Injector

	// wakeupTimeouts counts engine-level deadline wakes (see
	// WakeupTimeouts).
	wakeupTimeouts uint64

	// Cov accumulates per-context fast-path coverage counters (see
	// coverage.go). Indexed by context id; each context writes only
	// its own slot.
	Cov [2]CoverageStats

	// pinsets holds each context's persistent fast-path pin state (see
	// bulk.go). It lives on the machine, not the Pipe, so pins warmed
	// by one strip's Pipe serve the next strip's: the cache lines and
	// TLB entries they point into are machine-lifetime allocations,
	// validated by generation counters on every use.
	pinsets [2]pinSet
}

type proc struct {
	id     int
	now    uint64
	state  ProcState
	yield  chan struct{}
	resume chan struct{}

	sleeping  bool
	waitEvent *Event
	wakeLat   uint64
	panicVal  any

	// deadline, when non-zero, is the absolute cycle at which a
	// sleeping context must be woken even without a signal (a
	// WaitBudget in force). timedOut tells the woken Wait loop that it
	// was the deadline, not a signal, that woke it.
	deadline uint64
	timedOut bool

	computeCycles uint64 // cycles spent in StateCompute
	memCycles     uint64
	spinCycles    uint64
	sleepCycles   uint64
}

// Event is a simulated inter-thread notification cell (the cache line a
// MONITOR arms, or the word a PAUSE loop polls). Waiters additionally
// re-check a caller-supplied condition, so an Event works like a
// condition variable over the (engine-serialised) shared state.
type Event struct {
	m      *Machine
	seq    uint64
	lastAt uint64
}

// WaitPolicy selects the busy-wait mechanism of §III-B.2.
type WaitPolicy uint8

// Wait policies evaluated in Fig. 8.
const (
	// PolicyPause spins with the PAUSE instruction: ~175-cycle
	// dispatch, but the spinning context steals issue slots from its
	// sibling.
	PolicyPause WaitPolicy = iota
	// PolicyMwait sleeps with MONITOR/MWAIT: ~680-cycle dispatch,
	// negligible interference.
	PolicyMwait
	// PolicyOS deschedules via the operating system: tens of thousands
	// of cycles to wake, no interference.
	PolicyOS
)

// String returns the policy name.
func (p WaitPolicy) String() string {
	return [...]string{"pause", "mwait", "os"}[p]
}

// New returns a machine with cold caches and an empty address space.
func New(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Machine{cfg: cfg, Mem: NewMemSystem(cfg), AS: NewAddrSpace(cfg.PageBytes),
		obs: defaultObserver, tl: defaultTimeline, fastPath: defaultFastPath, flt: defaultInjector}, nil
}

// MustNew is New, panicking on config errors. For tests and examples.
func MustNew(cfg Config) *Machine {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// NewEvent returns a fresh notification cell.
func (m *Machine) NewEvent() *Event {
	e := &Event{m: m}
	m.events = append(m.events, e)
	return e
}

// RunStats summarises one Run call.
type RunStats struct {
	// Cycles is the makespan: the largest context-local clock advance.
	Cycles uint64
	// ProcCycles holds each context's local clock advance.
	ProcCycles []uint64
	// Busy time split per context.
	ComputeCycles []uint64
	MemCycles     []uint64
	SpinCycles    []uint64
	SleepCycles   []uint64
}

// Run executes the given thread functions, one per hardware context
// (at most two), co-simulated in virtual time. It returns when all
// threads have returned. Timing state (clocks) continues from the
// previous Run; caches stay warm. Use ResetTiming/ColdStart between
// independent experiments.
func (m *Machine) Run(threads ...func(*CPU)) RunStats {
	if len(threads) == 0 || len(threads) > 2 {
		panic(fmt.Sprintf("sim: Run wants 1 or 2 threads, got %d", len(threads)))
	}
	m.procs = m.procs[:0]
	start := m.epoch
	for i, fn := range threads {
		p := &proc{id: i, now: start, yield: make(chan struct{}), resume: make(chan struct{})}
		m.procs = append(m.procs, p)
		cpu := &CPU{m: m, p: p}
		go func(fn func(*CPU)) {
			<-p.resume
			defer func() {
				if r := recover(); r != nil {
					p.panicVal = r
				}
				p.state = StateDone
				p.yield <- struct{}{}
			}()
			fn(cpu)
		}(fn)
	}
	m.nlive = len(m.procs)
	m.schedule()

	stats := RunStats{}
	for _, p := range m.procs {
		adv := p.now - start
		if adv > stats.Cycles {
			stats.Cycles = adv
		}
		stats.ProcCycles = append(stats.ProcCycles, adv)
		stats.ComputeCycles = append(stats.ComputeCycles, p.computeCycles)
		stats.MemCycles = append(stats.MemCycles, p.memCycles)
		stats.SpinCycles = append(stats.SpinCycles, p.spinCycles)
		stats.SleepCycles = append(stats.SleepCycles, p.sleepCycles)
	}
	m.epoch = start + stats.Cycles
	m.procs = m.procs[:0]
	if m.obs != nil {
		// Keep the registry's sim.* gauges current with the cumulative
		// counters as of this run's end. The counter accumulates across
		// every machine sharing the registry, so a whole experiment's
		// simulated-cycle total (and cycles/s) can be read as a delta.
		m.StatsSnapshot().Publish(m.obs)
		m.obs.Counter("sim.run_cycles_total").Add(stats.Cycles)
	}
	return stats
}

// schedule is the engine loop: resume the runnable context with the
// smallest local clock until every thread is done.
func (m *Machine) schedule() {
	for {
		var next *proc
		done := 0
		for _, p := range m.procs {
			switch {
			case p.state == StateDone:
				done++
			case p.sleeping:
				// not runnable
			default:
				if next == nil || p.now < next.now || (p.now == next.now && p.id < next.id) {
					next = p
				}
			}
		}
		if done == len(m.procs) {
			return
		}
		if next == nil {
			// Every live context is asleep. If any sleeper carries a
			// wait-budget deadline, wake the earliest one there: the
			// signal it was waiting for was lost (only possible under
			// fault injection), and the budget is its recovery path.
			// With no deadlines this is a genuine engine invariant
			// violation and we panic with the machine state.
			if s := m.earliestDeadline(); s != nil {
				m.wakeupTimeouts++
				if s.deadline > s.now {
					s.sleepCycles += s.deadline - s.now
					s.now = s.deadline
				}
				s.sleeping = false
				s.waitEvent = nil
				s.deadline = 0
				s.timedOut = true
				continue
			}
			m.deadlock()
		}
		next.resume <- struct{}{}
		<-next.yield
		if next.panicVal != nil {
			// Re-panic on the caller's goroutine so tests and callers
			// can recover. Other simulated threads stay parked.
			panic(next.panicVal)
		}
	}
}

// earliestDeadline returns the sleeping context with the smallest
// non-zero wait-budget deadline (ties to the smaller id), or nil.
func (m *Machine) earliestDeadline() *proc {
	var best *proc
	for _, p := range m.procs {
		if p.state == StateDone || !p.sleeping || p.deadline == 0 {
			continue
		}
		if best == nil || p.deadline < best.deadline ||
			(p.deadline == best.deadline && p.id < best.id) {
			best = p
		}
	}
	return best
}

func (m *Machine) deadlock() {
	msg := "sim: deadlock — all live contexts are sleeping:"
	for _, p := range m.procs {
		msg += fmt.Sprintf(" ctx%d(state=%s now=%d sleeping=%v)", p.id, p.state, p.now, p.sleeping)
	}
	panic(msg)
}

// sibling returns the other context's proc, or nil in single-thread
// (ST) mode — where, as on the real machine, the running context gets
// every core resource.
func (m *Machine) sibling(id int) *proc {
	for _, p := range m.procs {
		if p.id != id {
			return p
		}
	}
	return nil
}

// signal wakes every context sleeping on e.
func (m *Machine) signal(e *Event, at uint64) {
	if m.flt != nil && m.flt.Roll(fault.DroppedWakeup, at) {
		// The store never reaches the monitored line: sleepers stay
		// asleep (their wait-budget deadline recovers them) and
		// spinners simply re-poll their condition.
		m.flt.Annotate("sim.signal")
		return
	}
	e.seq++
	e.lastAt = at
	for _, p := range m.procs {
		if p.sleeping && p.waitEvent == e {
			p.sleeping = false
			p.waitEvent = nil
			p.deadline = 0
			wake := at + p.wakeLat
			if wake > p.now {
				p.sleepCycles += wake - p.now
				p.now = wake
			}
		}
	}
}

// ResetTiming rewinds all clocks and shared-resource reservations to
// zero and zeroes statistics, keeping cache/TLB contents warm. Address
// space allocations survive.
func (m *Machine) ResetTiming() {
	if len(m.procs) != 0 {
		panic("sim: ResetTiming during Run")
	}
	m.epoch = 0
	m.Mem.Bus.busyUntil = 0
	m.Mem.Bus.hasRow = false
	m.Mem.Bus.lastUse = [2]uint64{}
	m.Mem.walkerBusy = 0
	m.ResetStats()
	for i := range m.Mem.PF {
		m.Mem.PF[i].pending = make(map[Addr]uint64)
	}
	for _, e := range m.events {
		e.lastAt = 0
	}
}

// ColdStart is ResetTiming plus flushing caches, TLB, prefetchers and
// write-combining buffers: the state of a freshly booted experiment.
func (m *Machine) ColdStart() {
	m.ResetTiming()
	m.Mem.FlushAll()
}

// Describe returns a short multi-line description of the machine, for
// experiment headers.
func (m *Machine) Describe() string {
	c := m.cfg
	return fmt.Sprintf("simulated CPU: %.1f GHz, L1 %dKB/%d-way/%dB, L2 %dKB/%d-way/%dB (hit %d cyc), TLB %d entries, FSB %.1f GB/s",
		c.FreqHz/1e9, c.L1Bytes>>10, c.L1Ways, c.L1Line,
		c.L2Bytes>>10, c.L2Ways, c.L2Line, c.L2HitLat,
		c.TLBEntries, c.BusBytesPerCycle*c.FreqHz/1e9)
}

// sortedRegions is a debugging helper listing allocations by base.
func (m *Machine) sortedRegions() []Region {
	rs := append([]Region(nil), m.AS.Regions()...)
	sort.Slice(rs, func(i, j int) bool { return rs[i].Base < rs[j].Base })
	return rs
}
