package sim

// TLB models a fully-associative translation lookaside buffer with LRU
// replacement. The paper identifies the hardware page-table walk — not
// the cache miss itself — as the dominant cost of random gathers and
// scatters on the Pentium 4 (§III-A), so the walk penalty is charged on
// every TLB miss before the memory access can issue.
type TLB struct {
	pageBits uint
	entries  []tlbEntry
	tick     uint64

	Stats TLBStats
}

type tlbEntry struct {
	page  uint64
	valid bool
	lru   uint64
}

// TLBStats counts translation events.
type TLBStats struct {
	Hits   uint64
	Misses uint64
}

// NewTLB returns a TLB with the given entry count and page size.
func NewTLB(entries, pageBytes int) *TLB {
	if entries <= 0 || !isPow2(pageBytes) {
		panic("sim: bad TLB geometry")
	}
	bits := uint(0)
	for 1<<bits != pageBytes {
		bits++
	}
	return &TLB{pageBits: bits, entries: make([]tlbEntry, entries)}
}

// Translate looks up the page containing addr, returning true on a hit.
// A miss installs the translation (the caller charges the walk).
func (t *TLB) Translate(addr Addr) bool {
	page := addr >> t.pageBits
	t.tick++
	victim, best := 0, uint64(1<<64-1)
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.page == page {
			e.lru = t.tick
			t.Stats.Hits++
			return true
		}
		score := e.lru
		if !e.valid {
			score = 0
		}
		if score < best {
			best, victim = score, i
		}
	}
	t.Stats.Misses++
	t.entries[victim] = tlbEntry{page: page, valid: true, lru: t.tick}
	return false
}

// Flush invalidates all entries.
func (t *TLB) Flush() {
	for i := range t.entries {
		t.entries[i] = tlbEntry{}
	}
}

// Coverage returns the bytes of address space the TLB can map at once.
func (t *TLB) Coverage() uint64 {
	return uint64(len(t.entries)) << t.pageBits
}
