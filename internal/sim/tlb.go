package sim

// TLB models a fully-associative translation lookaside buffer with LRU
// replacement. The paper identifies the hardware page-table walk — not
// the cache miss itself — as the dominant cost of random gathers and
// scatters on the Pentium 4 (§III-A), so the walk penalty is charged on
// every TLB miss before the memory access can issue.
type TLB struct {
	pageBits uint
	entries  []tlbEntry
	tick     uint64

	// gen counts installs and flushes; any cached *tlbEntry pointer
	// (the memo below, or a bulk fast-path pin) is only trustworthy
	// while gen is unchanged, because an install may repurpose the
	// entry it points at.
	gen uint64

	// memo is a tiny MRU front-end over the fully-associative scan.
	// Bulk copies alternate between a handful of pages (array, SRF,
	// indices), so almost every lookup resolves here instead of
	// scanning all entries. A memo hit performs exactly the mutations
	// a scan hit would, so timing and statistics are unchanged.
	memo     [tlbMemoWays]tlbMemo
	memoNext int

	Stats TLBStats
}

const tlbMemoWays = 4

type tlbMemo struct {
	page uint64
	e    *tlbEntry
}

type tlbEntry struct {
	page  uint64
	valid bool
	lru   uint64
}

// TLBStats counts translation events.
type TLBStats struct {
	Hits   uint64
	Misses uint64
}

// NewTLB returns a TLB with the given entry count and page size. The
// geometry panic is an internal invariant: Config.Validate (enforced
// by sim.New) rejects configurations that could trip it.
func NewTLB(entries, pageBytes int) *TLB {
	if entries <= 0 || !isPow2(pageBytes) {
		panic("sim: bad TLB geometry")
	}
	bits := uint(0)
	for 1<<bits != pageBytes {
		bits++
	}
	return &TLB{pageBits: bits, entries: make([]tlbEntry, entries)}
}

// Translate looks up the page containing addr, returning true on a hit.
// A miss installs the translation (the caller charges the walk).
func (t *TLB) Translate(addr Addr) bool {
	page := addr >> t.pageBits
	t.tick++
	for i := range t.memo {
		if m := &t.memo[i]; m.e != nil && m.page == page {
			m.e.lru = t.tick
			t.Stats.Hits++
			return true
		}
	}
	victim, best := 0, uint64(1<<64-1)
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.page == page {
			e.lru = t.tick
			t.Stats.Hits++
			t.remember(page, e)
			return true
		}
		score := e.lru
		if !e.valid {
			score = 0
		}
		if score < best {
			best, victim = score, i
		}
	}
	t.Stats.Misses++
	e := &t.entries[victim]
	*e = tlbEntry{page: page, valid: true, lru: t.tick}
	t.gen++
	for i := range t.memo {
		if t.memo[i].e == e {
			t.memo[i] = tlbMemo{}
		}
	}
	t.remember(page, e)
	return false
}

func (t *TLB) remember(page uint64, e *tlbEntry) {
	t.memo[t.memoNext] = tlbMemo{page: page, e: e}
	t.memoNext = (t.memoNext + 1) % tlbMemoWays
}

// probe returns the entry currently mapping page, with no statistics or
// LRU effects, or nil when the page is not resident. The memo is
// consulted first: probe runs right after an access translated the same
// page, so the scan is almost always skipped.
func (t *TLB) probe(page uint64) *tlbEntry {
	for i := range t.memo {
		if m := &t.memo[i]; m.e != nil && m.page == page {
			return m.e
		}
	}
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.page == page {
			return e
		}
	}
	return nil
}

// Flush invalidates all entries.
func (t *TLB) Flush() {
	for i := range t.entries {
		t.entries[i] = tlbEntry{}
	}
	t.memo = [tlbMemoWays]tlbMemo{}
	t.memoNext = 0
	t.gen++
}

// Coverage returns the bytes of address space the TLB can map at once.
func (t *TLB) Coverage() uint64 {
	return uint64(len(t.entries)) << t.pageBits
}
