package sim

import (
	"fmt"
	"sort"
	"strings"
	"testing"
)

// dumpMachine renders every piece of timing-relevant machine state so
// the differential tests can assert the fast path leaves the machine
// bit-identical to the reference path — not just same-looking results.
// Memo/pin caches are deliberately excluded: they are pure lookup
// accelerators whose contents never influence observable behaviour.
func dumpMachine(m *Machine) string {
	var sb strings.Builder
	ms := m.Mem
	dumpCache := func(name string, c *Cache) {
		fmt.Fprintf(&sb, "%s tick=%d stats=%+v\n", name, c.tick, c.Stats)
		for s := range c.sets {
			for w := range c.sets[s] {
				ln := c.sets[s][w]
				if ln.valid {
					fmt.Fprintf(&sb, "  set=%d way=%d tag=%x dirty=%v nt=%v lru=%d\n",
						s, w, ln.tag, ln.dirty, ln.nt, ln.lru)
				}
			}
		}
	}
	dumpCache("L1", ms.L1)
	dumpCache("L2", ms.L2)
	fmt.Fprintf(&sb, "TLB tick=%d stats=%+v\n", ms.TLB.tick, ms.TLB.Stats)
	for i, e := range ms.TLB.entries {
		if e.valid {
			fmt.Fprintf(&sb, "  tlb[%d] page=%x lru=%d\n", i, e.page, e.lru)
		}
	}
	b := ms.Bus
	fmt.Fprintf(&sb, "bus busy=%d row=%x hasRow=%v lastUse=%v stats=%+v\n",
		b.busyUntil, b.lastRow, b.hasRow, b.lastUse, b.Stats)
	fmt.Fprintf(&sb, "walkerBusy=%d wc=%+v memStats=%+v\n", ms.walkerBusy, ms.wc, ms.Stats)
	for i, pf := range ms.PF {
		fmt.Fprintf(&sb, "PF%d tick=%d streams=%+v stats=%+v pending=[", i, pf.tick, pf.streams, pf.Stats)
		lines := make([]Addr, 0, len(pf.pending))
		for l := range pf.pending {
			lines = append(lines, l)
		}
		sort.Slice(lines, func(a, b int) bool { return lines[a] < lines[b] })
		for _, l := range lines {
			fmt.Fprintf(&sb, " %x:%d", l, pf.pending[l])
		}
		fmt.Fprintf(&sb, " ]\n")
	}
	fmt.Fprintf(&sb, "epoch=%d\n", m.epoch)
	return sb.String()
}

// bulkScenario drives one machine through a scripted workload mixing
// bulk patterns with scalar traffic, and returns per-run summaries.
type bulkScenario struct {
	name string
	run  func(m *Machine, base Addr) []RunStats
}

func bulkScenarios() []bulkScenario {
	// All scenarios below allocate from a single large region whose
	// base the caller passes in, so both machines see identical
	// addresses.
	seqRefs := func(base Addr, elem, stride int, hint Hint) []BulkRef {
		return []BulkRef{
			{Base: base, Size: elem, Stride: stride, Write: false, Hint: hint},
			{Base: base + 1<<20, Size: elem, Stride: elem, Write: true, Hint: HintNone},
		}
	}
	return []bulkScenario{
		{"seq-gather-nt", func(m *Machine, base Addr) []RunStats {
			st := m.Run(func(c *CPU) {
				p := c.NewPipe(2, 1, StateMemory)
				p.AccessBulk(4000, seqRefs(base, 8, 8, HintNonTemporal)...)
				p.Drain()
			})
			return []RunStats{st}
		}},
		{"seq-gather-temporal", func(m *Machine, base Addr) []RunStats {
			st := m.Run(func(c *CPU) {
				p := c.NewPipe(4, 1, StateMemory)
				p.AccessBulk(4000, seqRefs(base, 8, 8, HintNone)...)
				p.Drain()
			})
			return []RunStats{st}
		}},
		{"strided-gather", func(m *Machine, base Addr) []RunStats {
			st := m.Run(func(c *CPU) {
				p := c.NewPipe(2, 1, StateMemory)
				// Record stride larger than the field: a strided walk
				// with both aligned and line-crossing field sizes.
				p.AccessBulk(1500, seqRefs(base+4, 12, 40, HintNonTemporal)...)
				p.Drain()
			})
			return []RunStats{st}
		}},
		{"nt-scatter-store", func(m *Machine, base Addr) []RunStats {
			st := m.Run(func(c *CPU) {
				p := c.NewPipe(2, 1, StateMemory)
				p.AccessBulk(4000,
					BulkRef{Base: base + 2<<20, Size: 8, Stride: 8, Write: false, Hint: HintNone},
					BulkRef{Base: base, Size: 8, Stride: 8, Write: true, Hint: HintNonTemporal})
				p.Drain()
				c.DrainWC()
			})
			return []RunStats{st}
		}},
		{"scatter-add", func(m *Machine, base Addr) []RunStats {
			st := m.Run(func(c *CPU) {
				p := c.NewPipe(2, 1, StateMemory)
				p.AccessBulk(3000,
					BulkRef{Base: base + 2<<20, Size: 8, Stride: 8, Write: false, Hint: HintNone},
					BulkRef{Base: base, Size: 8, Stride: 8, Write: false, Hint: HintNone},
					BulkRef{Base: base, Size: 8, Stride: 8, Write: true, Hint: HintNone})
				p.Drain()
			})
			return []RunStats{st}
		}},
		{"unaligned-odd-sizes", func(m *Machine, base Addr) []RunStats {
			st := m.Run(func(c *CPU) {
				p := c.NewPipe(3, 2, StateMemory)
				// Misaligned base and a size that periodically crosses
				// both L1 lines and pages.
				p.AccessBulk(2000, BulkRef{Base: base + 3, Size: 24, Stride: 24, Write: false, Hint: HintNonTemporal})
				p.AccessBulk(2000, BulkRef{Base: base + 5, Size: 20, Stride: 52, Write: true, Hint: HintNonTemporal})
				p.Drain()
				c.DrainWC()
			})
			return []RunStats{st}
		}},
		{"bulk-interleaved-scalar", func(m *Machine, base Addr) []RunStats {
			st := m.Run(func(c *CPU) {
				p := c.NewPipe(2, 1, StateMemory)
				for rep := 0; rep < 8; rep++ {
					p.AccessBulk(300, seqRefs(base+Addr(rep*2400), 8, 8, HintNonTemporal)...)
					// Indexed-style scalar traffic between strips, reusing
					// pages the bulk pattern touched.
					for i := 0; i < 50; i++ {
						p.Access(base+Addr((i*7919)%40000), 8, i%3 == 0, HintNone)
					}
					c.Compute(500)
				}
				p.Drain()
			})
			return []RunStats{st}
		}},
		{"two-ctx-overlap", func(m *Machine, base Addr) []RunStats {
			st := m.Run(
				func(c *CPU) {
					p := c.NewPipe(2, 1, StateMemory)
					for rep := 0; rep < 6; rep++ {
						p.AccessBulk(500, seqRefs(base, 8, 8, HintNonTemporal)...)
						c.Compute(800)
					}
					p.Drain()
				},
				func(c *CPU) {
					p := c.NewPipe(2, 1, StateMemory)
					for rep := 0; rep < 6; rep++ {
						p.AccessBulk(500,
							BulkRef{Base: base + 3<<20, Size: 8, Stride: 8, Write: true, Hint: HintNonTemporal})
						c.Compute(300)
					}
					p.Drain()
					c.DrainWC()
				})
			return []RunStats{st}
		}},
		{"two-ctx-shared-lines", func(m *Machine, base Addr) []RunStats {
			// Both contexts stream over the same region, so one
			// context's fills and evictions invalidate the other's
			// pinned lines mid-bulk.
			st := m.Run(
				func(c *CPU) {
					p := c.NewPipe(2, 1, StateMemory)
					p.AccessBulk(3000, seqRefs(base, 8, 8, HintNone)...)
					p.Drain()
				},
				func(c *CPU) {
					p := c.NewPipe(2, 1, StateMemory)
					p.AccessBulk(3000, seqRefs(base+64, 8, 8, HintNone)...)
					p.Drain()
				})
			return []RunStats{st}
		}},
		{"regular-loop", func(m *Machine, base Addr) []RunStats {
			st := m.Run(func(c *CPU) {
				p := c.NewPipe(2, 1, StateCompute)
				refs := []BulkRef{
					{Base: base, Size: 8, Stride: 8},
					{Base: base + 1<<20, Size: 8, Stride: 8},
					{Base: base + 2<<20, Size: 8, Stride: 8, Write: true},
				}
				sum := 0
				p.AccessLoop(4000, refs, 12, 60, func(i int) { sum += i })
				p.Drain()
				if sum != 4000*3999/2 {
					panic("AccessLoop body skipped an iteration")
				}
			})
			return []RunStats{st}
		}},
		{"regular-loop-shapes", func(m *Machine, base Addr) []RunStats {
			st := m.Run(func(c *CPU) {
				p := c.NewPipe(2, 1, StateCompute)
				// Record stride with a line-straddling field: every batch
				// probe must bail (ref_shape) yet stay bit-identical.
				p.AccessLoop(500, []BulkRef{
					{Base: base + 4, Size: 12, Stride: 96},
					{Base: base + 1<<20, Size: 8, Stride: 8, Write: true},
				}, 8, 60, nil)
				// Pure-load loop with zero ops: no compute quantum at all.
				p.AccessLoop(2000, []BulkRef{{Base: base + 3<<20, Size: 4, Stride: 4}}, 0, 0, nil)
				p.Drain()
			})
			return []RunStats{st}
		}},
		{"reset-between-runs", func(m *Machine, base Addr) []RunStats {
			var out []RunStats
			out = append(out, m.Run(func(c *CPU) {
				p := c.NewPipe(2, 1, StateMemory)
				p.AccessBulk(1000, seqRefs(base, 8, 8, HintNonTemporal)...)
				p.Drain()
			}))
			m.ResetTiming()
			out = append(out, m.Run(func(c *CPU) {
				p := c.NewPipe(2, 1, StateMemory)
				p.AccessBulk(1000, seqRefs(base, 8, 8, HintNonTemporal)...)
				p.Drain()
			}))
			m.ColdStart()
			out = append(out, m.Run(func(c *CPU) {
				p := c.NewPipe(2, 1, StateMemory)
				p.AccessBulk(1000, seqRefs(base, 8, 8, HintNonTemporal)...)
				p.Drain()
			}))
			return out
		}},
	}
}

// TestAccessBulkMatchesReference is the fast path's oracle: for every
// scenario, a machine with the fast path enabled must end in exactly
// the same state — every cache line, LRU tick, TLB entry, bus
// reservation, WC buffer, prefetcher detector and statistic — as a
// machine that took the per-access reference path.
func TestAccessBulkMatchesReference(t *testing.T) {
	for _, cfg := range []struct {
		name string
		cfg  Config
	}{
		{"pentium", PentiumD8300()},
		{"improved", ImprovedStream()},
	} {
		for _, sc := range bulkScenarios() {
			t.Run(cfg.name+"/"+sc.name, func(t *testing.T) {
				run := func(fast bool) (*Machine, []RunStats) {
					m := MustNew(cfg.cfg)
					m.SetFastPath(fast)
					base := m.AS.Alloc("work", 8<<20).Base
					return m, sc.run(m, base)
				}
				fastM, fastStats := run(true)
				refM, refStats := run(false)

				if got, want := fmt.Sprintf("%+v", fastStats), fmt.Sprintf("%+v", refStats); got != want {
					t.Errorf("RunStats diverge:\nfast: %s\nref:  %s", got, want)
				}
				fastSnap, refSnap := fastM.StatsSnapshot(), refM.StatsSnapshot()
				// Coverage counters record which path served each access,
				// so the fast/slow split legitimately differs between the
				// modes; the mode-invariant part — total accesses per
				// context — must agree, and every other block (including
				// the per-level bandwidth attribution) must be identical.
				for i := range fastSnap.Cov {
					if got, want := fastSnap.Cov[i].Accesses(), refSnap.Cov[i].Accesses(); got != want {
						t.Errorf("ctx%d coverage access totals diverge: fast %d, ref %d", i, got, want)
					}
				}
				fastSnap.Cov, refSnap.Cov = [2]CoverageStats{}, [2]CoverageStats{}
				if fastSnap != refSnap {
					t.Errorf("MachineStats diverge:\nfast: %+v\nref:  %+v", fastSnap, refSnap)
				}
				fastDump, refDump := dumpMachine(fastM), dumpMachine(refM)
				if fastDump != refDump {
					t.Errorf("machine state diverges:\n%s", firstDiff(fastDump, refDump))
				}
			})
		}
	}
}

// firstDiff returns the first differing line pair of two dumps.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) || i < len(bl); i++ {
		av, bv := "<eof>", "<eof>"
		if i < len(al) {
			av = al[i]
		}
		if i < len(bl) {
			bv = bl[i]
		}
		if av != bv {
			return fmt.Sprintf("line %d:\nfast: %s\nref:  %s", i, av, bv)
		}
	}
	return "no textual diff (lengths equal?)"
}
