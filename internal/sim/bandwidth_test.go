package sim

import (
	"math/rand"
	"testing"
)

// These tests calibrate the memory system against §III-A's measured
// behaviour (Fig. 5). They drive the raw hierarchy the same way the
// svm gather/scatter operations do.

// probe measures GB/s of useful data for a gather/scatter of 4-byte
// fields from records of recordBytes, across an array much larger than
// the L2 and the TLB coverage.
func probe(t *testing.T, recordBytes int, random, write, nt bool) float64 {
	t.Helper()
	m := MustNew(PentiumD8300())
	const fieldBytes = 4
	totalBytes := uint64(16 << 20)
	n := int(totalBytes) / recordBytes

	reg := m.AS.Alloc("arr", totalBytes)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	if random {
		rng := rand.New(rand.NewSource(1))
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
	}

	// The copy loop sustains a couple of outstanding misses whether the
	// hints are non-temporal (software prefetch distance) or not (the
	// OoO window); the hint changes cache policy and latency, not MLP.
	const mlp = 2
	hint := HintNone
	if nt {
		hint = HintNonTemporal
	}

	var cycles uint64
	m.Run(func(c *CPU) {
		pipe := c.NewPipe(mlp, 1, StateMemory)
		for _, idx := range order {
			addr := reg.Base + uint64(idx*recordBytes)
			pipe.Access(addr, fieldBytes, write, hint)
		}
		pipe.Drain()
		if write && nt {
			c.DrainWC()
		}
		cycles = c.Now()
	})
	useful := uint64(n * fieldBytes)
	return m.Config().BandwidthGBs(useful, cycles)
}

func TestSequentialLoadBandwidthFallsWithRecordSize(t *testing.T) {
	var prev float64
	for i, rec := range []int{4, 8, 16, 32, 64, 128} {
		bw := probe(t, rec, false, false, false)
		t.Logf("seq load rec=%3d: %.3f GB/s", rec, bw)
		if i > 0 && bw >= prev {
			t.Errorf("bandwidth should fall with record size: rec=%d %.3f >= %.3f", rec, bw, prev)
		}
		prev = bw
	}
}

func TestSequentialLoadBandwidthCalibration(t *testing.T) {
	// Paper: ~bus speed at 4-byte records, ~141 MB/s at 128-byte
	// records. Accept a generous band around both.
	bw4 := probe(t, 4, false, false, false)
	if bw4 < 2.5 || bw4 > 6.4 {
		t.Errorf("seq load rec=4: %.3f GB/s, want 2.5–6.4 (paper: near bus speed)", bw4)
	}
	bw128 := probe(t, 128, false, false, false)
	if bw128 < 0.08 || bw128 > 0.30 {
		t.Errorf("seq load rec=128: %.3f GB/s, want 0.08–0.30 (paper: 0.141)", bw128)
	}
}

func TestRandomGatherBandwidthCalibration(t *testing.T) {
	// Paper: ~63 MB/s for random 4-byte gathers, dominated by TLB
	// walks rather than the cache miss itself.
	bw := probe(t, 128, true, false, false)
	if bw < 0.030 || bw > 0.120 {
		t.Errorf("random gather: %.3f GB/s, want 0.030–0.120 (paper: 0.063)", bw)
	}
	// TLB walks must dominate: nearly every access should walk.
	m := MustNew(PentiumD8300())
	reg := m.AS.Alloc("arr", 16<<20)
	rng := rand.New(rand.NewSource(2))
	m.Run(func(c *CPU) {
		for i := 0; i < 20000; i++ {
			c.Read(reg.Base+uint64(rng.Intn(1<<17))*128, 4, HintNone)
		}
	})
	if walkFrac := float64(m.Mem.Stats.TLBWalks) / 20000; walkFrac < 0.5 {
		t.Errorf("TLB walk fraction %.2f, want > 0.5 for random access over 16MB", walkFrac)
	}
}

func TestSequentialStoreHalfOfLoadBandwidth(t *testing.T) {
	ld := probe(t, 4, false, false, false)
	st := probe(t, 4, false, true, false)
	ratio := st / ld
	if ratio < 0.35 || ratio > 0.75 {
		t.Errorf("store/load ratio %.2f, want ~0.5 (RFO halves store bandwidth)", ratio)
	}
}

func TestNonTemporalHurtsSequentialLoads(t *testing.T) {
	plain := probe(t, 4, false, false, false)
	ntb := probe(t, 4, false, false, true)
	if ntb >= plain {
		t.Errorf("NT sequential load %.3f should be below plain %.3f", ntb, plain)
	}
	if ntb < plain*0.4 {
		t.Errorf("NT sequential load %.3f too far below plain %.3f", ntb, plain)
	}
}

func TestNonTemporalHelpsRandomGather(t *testing.T) {
	plain := probe(t, 128, true, false, false)
	ntb := probe(t, 128, true, false, true)
	gain := ntb/plain - 1
	if gain < 0.10 || gain > 0.80 {
		t.Errorf("NT random gather gain %.0f%%, want ~32%%", gain*100)
	}
}

func TestNonTemporalHelpsRandomScatter(t *testing.T) {
	plain := probe(t, 128, true, true, false)
	ntb := probe(t, 128, true, true, true)
	if ntb <= plain {
		t.Errorf("NT random scatter %.3f should beat plain %.3f", ntb, plain)
	}
}

func TestRandomBelowSequential(t *testing.T) {
	for _, rec := range []int{4, 32, 128} {
		seq := probe(t, rec, false, false, false)
		rnd := probe(t, rec, true, false, false)
		if rnd >= seq {
			t.Errorf("rec=%d: random %.3f >= sequential %.3f", rec, rnd, seq)
		}
	}
}

// Intermixing several sequential streams in one loop must defeat the
// hardware prefetcher and the DRAM open row — the effect that makes the
// paper's bulk gathers beat the regular baseline on LD-ST-COMP.
func TestIntermixedStreamsSlowerThanBulk(t *testing.T) {
	cfg := PentiumD8300()
	const n = 1 << 16 // 4-byte elements per array
	run := func(intermixed bool) uint64 {
		m := MustNew(cfg)
		a := m.AS.Alloc("a", n*4)
		b := m.AS.Alloc("b", n*4)
		cc := m.AS.Alloc("c", n*4)
		var cycles uint64
		m.Run(func(c *CPU) {
			pipe := c.NewPipe(2, 1, StateMemory)
			if intermixed {
				for i := 0; i < n; i++ {
					pipe.Access(a.Base+uint64(i*4), 4, false, HintNone)
					pipe.Access(b.Base+uint64(i*4), 4, false, HintNone)
					pipe.Access(cc.Base+uint64(i*4), 4, false, HintNone)
				}
			} else {
				for _, r := range []Region{a, b, cc} {
					for i := 0; i < n; i++ {
						pipe.Access(r.Base+uint64(i*4), 4, false, HintNone)
					}
				}
			}
			pipe.Drain()
			cycles = c.Now()
		})
		return cycles
	}
	inter, bulk := run(true), run(false)
	if float64(inter) < 1.3*float64(bulk) {
		t.Errorf("intermixed %d cycles vs bulk %d: want >= 1.3x slower", inter, bulk)
	}
}

func TestBandwidthConversions(t *testing.T) {
	cfg := PentiumD8300()
	if s := cfg.CyclesToSeconds(3_400_000_000); s < 0.999 || s > 1.001 {
		t.Fatalf("3.4e9 cycles = %v s, want 1", s)
	}
	if bw := cfg.BandwidthGBs(6_400_000_000, 3_400_000_000); bw < 6.39 || bw > 6.41 {
		t.Fatalf("bandwidth %v, want 6.4", bw)
	}
	if bw := cfg.BandwidthGBs(1, 0); bw != 0 {
		t.Fatalf("zero cycles bandwidth %v", bw)
	}
}
