package sim

import "fmt"

// Addr is a simulated physical address. Simulated programs keep their
// functional data in ordinary Go slices; only the addresses flow
// through the cache/TLB/bus models.
type Addr = uint64

// AddrSpace hands out non-overlapping, page-aligned regions of the
// simulated address space. The first page is never allocated so that 0
// can serve as a "nil" address.
type AddrSpace struct {
	pageBytes uint64
	next      Addr
	regions   []Region
}

// Region describes one allocation.
type Region struct {
	Name string
	Base Addr
	Size uint64
}

// NewAddrSpace returns an allocator that aligns regions to pageBytes.
func NewAddrSpace(pageBytes int) *AddrSpace {
	if pageBytes <= 0 || !isPow2(pageBytes) {
		panic(fmt.Sprintf("sim: page size %d must be a positive power of two", pageBytes))
	}
	return &AddrSpace{pageBytes: uint64(pageBytes), next: uint64(pageBytes)}
}

// Alloc reserves size bytes and returns the region. Name is for
// diagnostics only.
func (a *AddrSpace) Alloc(name string, size uint64) Region {
	if size == 0 {
		size = 1
	}
	base := a.next
	a.next += (size + a.pageBytes - 1) &^ (a.pageBytes - 1)
	r := Region{Name: name, Base: base, Size: size}
	a.regions = append(a.regions, r)
	return r
}

// Regions returns all allocations in order.
func (a *AddrSpace) Regions() []Region { return a.regions }

// Contains reports whether addr falls inside the region.
func (r Region) Contains(addr Addr) bool {
	return addr >= r.Base && addr < r.Base+r.Size
}

// End returns one past the last byte of the region.
func (r Region) End() Addr { return r.Base + r.Size }
