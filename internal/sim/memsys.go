package sim

import "fmt"

// Level identifies where an access was satisfied.
type Level uint8

// Access service levels, from fastest to slowest.
const (
	LevelL1 Level = iota
	LevelL2
	LevelPF  // satisfied by an in-flight hardware prefetch
	LevelMem // demand miss to DRAM
	LevelWC  // posted into a write-combining buffer
)

// String returns a short name for the level.
func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelPF:
		return "PF"
	case LevelMem:
		return "MEM"
	case LevelWC:
		return "WC"
	}
	return fmt.Sprintf("Level(%d)", uint8(l))
}

// AccessResult reports when an access completes and where it hit.
type AccessResult struct {
	Done  uint64
	Level Level
}

// MemSystem composes the shared L1, L2, TLB, bus/DRAM, per-context
// prefetchers and per-context write-combining buffers into the memory
// hierarchy seen by both hardware contexts.
type MemSystem struct {
	cfg Config
	L1  *Cache
	L2  *Cache
	TLB *TLB
	Bus *Bus
	PF  [2]*Prefetcher

	wc [2]wcBuffer

	// The Pentium 4 has a single hardware page walker; concurrent TLB
	// misses serialise on it, which caps random-access throughput for
	// stream and regular code alike.
	walkerBusy uint64

	Stats MemStats

	// BW attributes bytes moved and cycles occupied per level to the
	// requesting context (see coverage.go). Indexed by context id.
	BW [2]BWStats
}

// wcBuffer is a one-line write-combining buffer (movntq path).
type wcBuffer struct {
	line  Addr
	bytes int
	open  bool
}

// MemStats aggregates access counts by service level.
type MemStats struct {
	Accesses  uint64
	ByLevel   [5]uint64
	TLBWalks  uint64
	WCFlushes uint64
	WCPartial uint64
}

// NewMemSystem builds the hierarchy from cfg. cfg must validate.
func NewMemSystem(cfg Config) *MemSystem {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	ms := &MemSystem{
		cfg: cfg,
		L1:  NewCache("L1", cfg.L1Bytes, cfg.L1Ways, cfg.L1Line, 1),
		L2:  NewCache("L2", cfg.L2Bytes, cfg.L2Ways, cfg.L2Line, cfg.L2NTWays),
		TLB: NewTLB(cfg.TLBEntries, cfg.PageBytes),
		Bus: NewBus(cfg),
	}
	ms.PF[0] = NewPrefetcher(cfg)
	ms.PF[1] = NewPrefetcher(cfg)
	ms.Bus.bw = &ms.BW
	return ms
}

// Config returns the machine configuration.
func (ms *MemSystem) Config() Config { return ms.cfg }

// Access performs one memory access for hardware context ctx, ready to
// issue at start. It models the full hierarchy and returns the
// completion time plus the level that satisfied the access. Accesses
// larger than an L1 line are split; the slowest chunk dominates.
//
// Semantics by (write, hint):
//   - read, HintNone: demand load; trains the hardware prefetcher.
//   - read, HintNonTemporal: software prefetchnta-style load. Fills
//     only the restricted NT ways of L2 (so the pinned SRF survives),
//     does not train the hardware prefetcher, and — because software
//     prefetch runs ahead of the consuming copy loop — hides the
//     demand lookup/lead latency, paying only translation plus bus
//     occupancy.
//   - write, HintNone: write-allocate store; a miss performs a
//     read-for-ownership line fill (this is what halves sequential
//     store bandwidth, Fig. 5c).
//   - write, HintNonTemporal: movntq-style store posted into a
//     write-combining buffer; completes immediately, with the buffer
//     flushed to the bus on line switch or DrainWC.
func (ms *MemSystem) Access(ctx int, start uint64, addr Addr, size int, write bool, hint Hint) AccessResult {
	if size <= 0 {
		panic(fmt.Sprintf("sim: access size %d", size))
	}
	res := AccessResult{Done: start, Level: LevelL1}
	lineSz := uint64(ms.cfg.L1Line)
	for cur := addr; cur < addr+uint64(size); {
		chunkEnd := (cur &^ (lineSz - 1)) + lineSz
		if end := addr + uint64(size); chunkEnd > end {
			chunkEnd = end
		}
		r := ms.accessChunk(ctx, start, cur, int(chunkEnd-cur), write, hint)
		if r.Done > res.Done {
			res.Done = r.Done
		}
		if r.Level > res.Level {
			res.Level = r.Level
		}
		cur = chunkEnd
	}
	return res
}

// accessChunk handles an access confined to one L1 line. Besides the
// machine-global MemStats it attributes bytes and occupied cycles to
// the requesting context per service level (BW); DRAM occupancy is
// attributed inside Bus.Acquire, so the LevelMem row here records
// nothing directly.
func (ms *MemSystem) accessChunk(ctx int, start uint64, addr Addr, size int, write bool, hint Hint) AccessResult {
	ms.Stats.Accesses++
	bw := &ms.BW[ctx]

	// Non-temporal stores bypass the cache hierarchy entirely.
	if write && hint == HintNonTemporal {
		done := ms.ntStore(ctx, start, addr, size)
		ms.Stats.ByLevel[LevelWC]++
		bw.Bytes[LevelWC] += uint64(size)
		bw.Cycles[LevelWC]++ // posted: one cycle to lodge in the buffer
		return AccessResult{Done: done, Level: LevelWC}
	}

	t := ms.translate(ctx, start, addr)

	if ms.L1.Lookup(addr, write) {
		ms.Stats.ByLevel[LevelL1]++
		bw.Bytes[LevelL1] += uint64(size)
		bw.Cycles[LevelL1] += ms.cfg.L1HitLat
		return AccessResult{Done: t + ms.cfg.L1HitLat, Level: LevelL1}
	}

	l2line := ms.L2.LineAddr(addr)
	if ms.L2.Lookup(addr, write) {
		ms.fillL1(ctx, addr, write)
		ms.Stats.ByLevel[LevelL2]++
		bw.Bytes[LevelL2] += uint64(ms.cfg.L1Line)
		bw.Cycles[LevelL2] += ms.cfg.L2HitLat
		return AccessResult{Done: t + ms.cfg.L2HitLat, Level: LevelL2}
	}

	// An in-flight hardware prefetch may cover this line. The hit
	// advances the stream's detector so the prefetcher stays PFDepth
	// lines ahead — as long as the detector survives the table.
	if arrival, ok := ms.PF[ctx].Claim(l2line); ok {
		ms.PF[ctx].Advance(ctx, ms.Bus, t, l2line, ms.cfg.L2Line, false)
		ms.fillL2(ctx, l2line, write, HintNone)
		ms.fillL1(ctx, addr, write)
		ms.Stats.ByLevel[LevelPF]++
		bw.Bytes[LevelPF] += uint64(ms.cfg.L2Line)
		bw.Cycles[LevelPF] += ms.cfg.L2HitLat
		return AccessResult{Done: max64(t, arrival) + ms.cfg.L2HitLat, Level: LevelPF}
	}

	// Demand miss to DRAM.
	ms.Stats.ByLevel[LevelMem]++
	var done uint64
	if hint == HintNonTemporal && !write {
		// Software-prefetched stream: latency already hidden by
		// prefetch distance; only translation + bus occupancy remain.
		busDone := ms.Bus.Acquire(ctx, t, l2line, ms.cfg.L2Line, xferNTFetch)
		done = busDone
	} else {
		lookupDone := t + ms.cfg.L2HitLat
		busDone := ms.Bus.Acquire(ctx, lookupDone, l2line, ms.cfg.L2Line, xferFill)
		done = busDone + ms.cfg.DRAMLat
		ms.PF[ctx].Advance(ctx, ms.Bus, done, l2line, ms.cfg.L2Line, true)
	}
	ms.fillL2(ctx, l2line, write, hint)
	ms.fillL1(ctx, addr, write)
	return AccessResult{Done: done, Level: LevelMem}
}

// translate charges TLB behaviour and returns the time after
// translation. Page walks serialise on the single hardware walker;
// each walk's latency is attributed to the requesting context.
func (ms *MemSystem) translate(ctx int, start uint64, addr Addr) uint64 {
	if ms.TLB.Translate(addr) {
		return start
	}
	ms.Stats.TLBWalks++
	bw := &ms.BW[ctx]
	bw.TLBWalks++
	bw.TLBWalkCycles += ms.cfg.TLBWalkLat
	walkStart := max64(start, ms.walkerBusy)
	done := walkStart + ms.cfg.TLBWalkLat
	ms.walkerBusy = done
	return done
}

// fillL2 installs a line its caller just missed on, issuing a writeback
// for any dirty victim.
func (ms *MemSystem) fillL2(ctx int, line Addr, write bool, hint Hint) {
	ev := ms.L2.fillMiss(line, write, hint)
	if ev.Valid && ev.Dirty {
		ms.Bus.Acquire(ctx, ms.Bus.BusyUntil(), ev.Line, ms.cfg.L2Line, xferWB)
	}
}

// fillL1 installs the L1 line for addr, which the caller just missed
// on. Dirty L1 victims write back into L2 (modelled as free: L2 is
// inclusive enough for our purposes).
func (ms *MemSystem) fillL1(ctx int, addr Addr, write bool) {
	ms.L1.fillMiss(ms.L1.LineAddr(addr), write, HintNone)
}

// ntStore posts a non-temporal store into the context's write-combining
// buffer. Stores complete immediately (posted); flushes reserve bus
// occupancy asynchronously.
func (ms *MemSystem) ntStore(ctx int, start uint64, addr Addr, size int) uint64 {
	t := ms.translate(ctx, start, addr)
	line := ms.L2.LineAddr(addr)
	wc := &ms.wc[ctx]
	if wc.open && wc.line == line {
		wc.bytes += size
		if wc.bytes >= ms.cfg.L2Line {
			ms.flushWC(ctx, t)
		}
		return t + 1
	}
	if wc.open {
		ms.flushWC(ctx, t)
	}
	*wc = wcBuffer{line: line, bytes: size, open: true}
	return t + 1
}

// flushWC empties the context's write-combining buffer onto the bus.
func (ms *MemSystem) flushWC(ctx int, now uint64) {
	wc := &ms.wc[ctx]
	if !wc.open {
		return
	}
	kind := xferWCFull
	bytes := ms.cfg.L2Line
	if wc.bytes < ms.cfg.L2Line {
		// A partial flush becomes a read-modify-write at the memory
		// controller: dearer than a full-line burst.
		kind = xferWCPart
		ms.Stats.WCPartial++
	}
	ms.Stats.WCFlushes++
	ms.Bus.Acquire(ctx, now, wc.line, bytes, kind)
	wc.open = false
}

// DrainWC flushes the context's write-combining buffer (an sfence at
// the end of a scatter) and returns when the bus transfer completes.
func (ms *MemSystem) DrainWC(ctx int, now uint64) uint64 {
	ms.flushWC(ctx, now)
	return max64(now, ms.Bus.BusyUntil())
}

// FlushAll empties caches, TLB, prefetchers and WC buffers, for
// independent back-to-back experiments on one machine.
func (ms *MemSystem) FlushAll() {
	ms.L1.Flush()
	ms.L2.Flush()
	ms.TLB.Flush()
	ms.PF[0].Reset()
	ms.PF[1].Reset()
	ms.wc[0] = wcBuffer{}
	ms.wc[1] = wcBuffer{}
}
