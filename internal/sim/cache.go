package sim

import "fmt"

// cacheLine is one way of one set.
type cacheLine struct {
	tag   uint64
	valid bool
	dirty bool
	nt    bool   // filled with a non-temporal hint
	lru   uint64 // larger = more recently used
}

// Cache is a set-associative write-back, write-allocate cache with true
// LRU replacement and a non-temporal insertion policy: NT fills are
// confined to the ntWays lowest-numbered ways of each set and are
// inserted with minimal LRU priority, so they can never displace the
// temporally-filled (SRF) lines. This reproduces how the paper pins the
// SRF in L2 while gather/scatter traffic streams past it (§III-A).
type Cache struct {
	name     string
	lineSize int
	ways     int
	nsets    int
	ntWays   int
	sets     [][]cacheLine
	tick     uint64

	// Precomputed shift/mask forms of the geometry (everything is a
	// power of two), so the hot index() avoids integer division.
	lineShift uint
	setShift  uint
	setMask   uint64

	// gen counts whole-cache invalidations and setGen[s] counts
	// installs into set s. Any cached *cacheLine pointer (the memo
	// below, or a bulk fast-path pin) is only trustworthy while both
	// generations are unchanged.
	gen    uint64
	setGen []uint64

	// memo is a tiny MRU front-end over the set scan: bulk copies
	// touch the same few lines (array, SRF, indices) repeatedly, so
	// most lookups resolve here. A memo hit performs exactly the
	// mutations a scan hit would, so timing and statistics are
	// unchanged. Only caches wider than the memo use it — for a cache
	// whose set scan is no longer than the memo scan (the 4-way L1)
	// the front-end is pure overhead on misses.
	memo     [cacheMemoWays]cacheMemo
	memoNext int
	useMemo  bool

	// lastHit stashes the line of the most recent scan hit *or* miss
	// fill so the bulk fast path can re-arm a pin without re-scanning
	// the set (after a fill, the just-installed line is the one the pin
	// wants). Like any cached *cacheLine it is only trustworthy while
	// gen and setGen[lastHitSet] are unchanged (checked by the
	// consumer).
	lastHit       *cacheLine
	lastHitLine   Addr
	lastHitSet    int
	lastHitGen    uint64
	lastHitSetGen uint64

	// CacheStats accumulates since construction or the last reset.
	Stats CacheStats
}

const cacheMemoWays = 4

type cacheMemo struct {
	line Addr
	ln   *cacheLine
}

// CacheStats counts cache events.
type CacheStats struct {
	Hits       uint64
	Misses     uint64
	NTFills    uint64
	Evictions  uint64
	DirtyEvict uint64
}

// NewCache builds a cache from total size, associativity and line size.
// The geometry panics below are internal invariants: Config.Validate
// (enforced by sim.New) rejects every configuration that could trip
// them, so they are reachable only by constructing a Cache directly
// with unvalidated parameters.
func NewCache(name string, totalBytes, ways, lineSize, ntWays int) *Cache {
	if totalBytes <= 0 || ways <= 0 || lineSize <= 0 || totalBytes%(ways*lineSize) != 0 {
		panic(fmt.Sprintf("sim: bad cache geometry %s: %d/%d/%d", name, totalBytes, ways, lineSize))
	}
	if ntWays < 0 || ntWays > ways {
		panic(fmt.Sprintf("sim: ntWays %d out of range for %d-way cache", ntWays, ways))
	}
	nsets := totalBytes / (ways * lineSize)
	if !isPow2(nsets) || !isPow2(lineSize) {
		panic(fmt.Sprintf("sim: cache %s sets (%d) and line (%d) must be powers of two", name, nsets, lineSize))
	}
	sets := make([][]cacheLine, nsets)
	backing := make([]cacheLine, nsets*ways)
	for i := range sets {
		sets[i] = backing[i*ways : (i+1)*ways : (i+1)*ways]
	}
	c := &Cache{name: name, lineSize: lineSize, ways: ways, nsets: nsets, ntWays: ntWays,
		sets: sets, setGen: make([]uint64, nsets), setMask: uint64(nsets - 1),
		useMemo: ways > cacheMemoWays}
	for 1<<c.lineShift != lineSize {
		c.lineShift++
	}
	for 1<<c.setShift != nsets {
		c.setShift++
	}
	return c
}

// LineSize returns the cache line size in bytes.
func (c *Cache) LineSize() int { return c.lineSize }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.nsets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// SizeBytes returns the total capacity.
func (c *Cache) SizeBytes() int { return c.nsets * c.ways * c.lineSize }

// LineAddr returns the address of the line containing addr.
func (c *Cache) LineAddr(addr Addr) Addr { return addr &^ uint64(c.lineSize-1) }

func (c *Cache) index(line Addr) (set int, tag uint64) {
	l := line >> c.lineShift
	return int(l & c.setMask), l >> c.setShift
}

// Lookup probes the cache without filling. On a hit it refreshes LRU
// state and applies the write's dirty bit.
func (c *Cache) Lookup(addr Addr, write bool) bool {
	line := addr &^ uint64(c.lineSize-1)
	if c.useMemo {
		for i := range c.memo {
			if m := &c.memo[i]; m.ln != nil && m.line == line {
				c.tick++
				m.ln.lru = c.tick
				if write {
					m.ln.dirty = true
				}
				c.Stats.Hits++
				return true
			}
		}
	}
	set, tag := c.index(line)
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if ln.valid && ln.tag == tag {
			c.tick++
			ln.lru = c.tick
			if write {
				ln.dirty = true
			}
			c.Stats.Hits++
			c.remember(line, ln)
			c.lastHit = ln
			c.lastHitLine = line
			c.lastHitSet = set
			c.lastHitGen = c.gen
			c.lastHitSetGen = c.setGen[set]
			return true
		}
	}
	c.Stats.Misses++
	return false
}

func (c *Cache) remember(line Addr, ln *cacheLine) {
	if !c.useMemo {
		return
	}
	c.memo[c.memoNext] = cacheMemo{line: line, ln: ln}
	c.memoNext = (c.memoNext + 1) % cacheMemoWays
}

// findLine returns the resident line with the given set and tag, with
// no statistics or LRU effects, or nil.
func (c *Cache) findLine(set int, tag uint64) *cacheLine {
	ways := c.sets[set]
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			return &ways[i]
		}
	}
	return nil
}

// Evicted describes a line displaced by a fill.
type Evicted struct {
	Line  Addr
	Dirty bool
	Valid bool
}

// Fill inserts the line containing addr. hint selects the insertion
// policy; write marks the new line dirty (write-allocate). It returns
// the displaced line, if any. Filling a line that is already present
// only refreshes its state.
func (c *Cache) Fill(addr Addr, write bool, hint Hint) Evicted {
	line := c.LineAddr(addr)
	set, tag := c.index(line)

	// Already present (e.g. a prefetch landed before the demand fill).
	if ln := c.findLine(set, tag); ln != nil {
		c.tick++
		ln.lru = c.tick
		if write {
			ln.dirty = true
		}
		return Evicted{}
	}
	return c.fillMiss(line, write, hint)
}

// fillMiss is Fill for a line the caller has just proven absent (by a
// failed Lookup with no intervening installs), skipping the
// already-present scan. Mutations are identical to Fill's miss case.
func (c *Cache) fillMiss(line Addr, write bool, hint Hint) Evicted {
	set, tag := c.index(line)
	ways := c.sets[set]

	lo, hi := 0, c.ways // candidate victim ways
	if hint == HintNonTemporal && c.ntWays > 0 {
		lo, hi = 0, c.ntWays
		c.Stats.NTFills++
	}

	// Victim priority: an invalid way, else the LRU non-temporal line,
	// else the LRU temporal line. NT fills are confined to the NT ways,
	// which therefore behave as a small LRU sub-cache for streamed
	// data; temporal fills prefer recycling NT lines over evicting the
	// (SRF) working set.
	victim := -1
	var bestNT, bestT uint64 = 1<<64 - 1, 1<<64 - 1
	ntVictim, tVictim := -1, -1
	for i := lo; i < hi; i++ {
		ln := &ways[i]
		if !ln.valid {
			victim = i
			break
		}
		if ln.nt {
			if ln.lru < bestNT {
				bestNT, ntVictim = ln.lru, i
			}
		} else if ln.lru < bestT {
			bestT, tVictim = ln.lru, i
		}
	}
	if victim < 0 {
		if ntVictim >= 0 {
			victim = ntVictim
		} else {
			victim = tVictim
		}
	}

	old := ways[victim]
	ev := Evicted{}
	if old.valid {
		c.Stats.Evictions++
		if old.dirty {
			c.Stats.DirtyEvict++
		}
		ev = Evicted{Line: c.lineFromSetTag(set, old.tag), Dirty: old.dirty, Valid: true}
	}
	c.tick++
	ways[victim] = cacheLine{tag: tag, valid: true, dirty: write, nt: hint == HintNonTemporal, lru: c.tick}
	c.setGen[set]++
	c.lastHit = &ways[victim]
	c.lastHitLine = line
	c.lastHitSet = set
	c.lastHitGen = c.gen
	c.lastHitSetGen = c.setGen[set]
	if c.useMemo {
		for i := range c.memo {
			if c.memo[i].ln == &ways[victim] {
				c.memo[i] = cacheMemo{}
			}
		}
	}
	return ev
}

func (c *Cache) lineFromSetTag(set int, tag uint64) Addr {
	return (tag<<c.setShift | uint64(set)) << c.lineShift
}

// Contains reports whether the line holding addr is resident (no LRU
// update, no stats).
func (c *Cache) Contains(addr Addr) bool {
	set, tag := c.index(c.LineAddr(addr))
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if ln.valid && ln.tag == tag {
			return true
		}
	}
	return false
}

// ResidentBytes returns how many bytes of [base, base+size) are
// currently resident, for SRF pinning diagnostics.
func (c *Cache) ResidentBytes(base Addr, size uint64) uint64 {
	var n uint64
	for line := c.LineAddr(base); line < base+size; line += uint64(c.lineSize) {
		if c.Contains(line) {
			n += uint64(c.lineSize)
		}
	}
	return n
}

// Flush invalidates the whole cache, returning the number of dirty
// lines dropped. Used between independent experiments.
func (c *Cache) Flush() (dirty int) {
	for s := range c.sets {
		for w := range c.sets[s] {
			if c.sets[s][w].valid && c.sets[s][w].dirty {
				dirty++
			}
			c.sets[s][w] = cacheLine{}
		}
	}
	c.memo = [cacheMemoWays]cacheMemo{}
	c.memoNext = 0
	c.gen++
	return dirty
}
